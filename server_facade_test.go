package autotune_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autotune"
	"autotune/internal/export"
	"autotune/internal/server"
)

// TestServiceEndToEnd is the tuning-service acceptance test: a real
// HTTP server on an ephemeral port takes concurrent submissions from
// several tenants, deduplicates identical searches, enforces tenant
// quotas, and serves fronts that are byte-identical to direct library
// runs at the same seed. Run it under -race; every client goroutine
// hits the orchestrator concurrently.
func TestServiceEndToEnd(t *testing.T) {
	var block atomic.Bool
	release := make(chan struct{})
	orch, err := server.NewOrchestrator(server.Config{
		StateDir:            t.TempDir(),
		Workers:             4,
		MaxQueuedPerTenant:  2,
		MaxRunningPerTenant: 1,
		EvalHook: func(id string, n int) {
			if block.Load() {
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.New(orch).Serve(ctx, l) }()
	defer func() {
		cancel()
		select {
		case err := <-serveErr:
			if err != nil && err != http.ErrServerClosed {
				t.Errorf("serve: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Error("server never shut down")
		}
	}()
	c := &server.Client{BaseURL: "http://" + l.Addr().String()}

	// Phase 1: three search groups (one kernel + seed each), submitted
	// twice by different tenants at the same time. Each pair must
	// collapse onto one search and both submitters must read the same
	// front.
	groups := []struct {
		kernel string
		seed   int64
	}{
		{"mm", 100},
		{"2mm", 101},
		{"atax", 102},
	}
	req := func(g int) *server.JobRequest {
		return &server.JobRequest{
			Kernel: groups[g].kernel, Seed: groups[g].seed,
			PopSize: 8, MaxIterations: 2,
		}
	}
	type submission struct {
		st  server.JobStatus
		err error
	}
	subs := make([]submission, 2*len(groups))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := req(i % len(groups))
			r.Tenant = fmt.Sprintf("tenant-%d", i)
			subs[i].st, subs[i].err = c.Submit(context.Background(), r)
		}(i)
	}
	wg.Wait()
	deduped := 0
	for i, s := range subs {
		if s.err != nil {
			t.Fatalf("submission %d: %v", i, s.err)
		}
		if s.st.Deduped {
			deduped++
		}
		if pair := subs[(i+len(groups))%len(subs)]; s.st.ID != pair.st.ID {
			t.Fatalf("identical submissions got distinct searches: %s vs %s", s.st.ID, pair.st.ID)
		}
	}
	if deduped != len(groups) {
		t.Fatalf("deduped %d of %d identical submissions, want %d", deduped, len(subs), len(groups))
	}

	// Every group's served front must equal the direct library export
	// at the same seed, byte for byte; both submitters of a pair read
	// identical bytes by construction (same job).
	for g, grp := range groups {
		wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
		st, err := c.Wait(wctx, subs[g].st.ID, 20*time.Millisecond)
		wcancel()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != server.StateDone {
			t.Fatalf("group %d: %s (%s)", g, st.State, st.Error)
		}
		served, err := c.Front(context.Background(), st.ID)
		if err != nil {
			t.Fatal(err)
		}
		res, err := autotune.Tune(grp.kernel,
			autotune.WithMachine("Westmere"),
			autotune.WithMethod(autotune.RSGDE3),
			autotune.WithSeed(grp.seed),
			autotune.WithOptimizerOptions(autotune.OptimizerOptions{
				PopSize: 8, MaxIterations: 2, Seed: grp.seed,
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		var direct bytes.Buffer
		if err := export.FrontJSON(&direct, res.Front, res.Unit.ObjectiveNames); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(served, direct.Bytes()) {
			t.Fatalf("group %d (%s seed %d): served front differs from the direct library run:\nserved:\n%s\ndirect:\n%s",
				g, grp.kernel, grp.seed, served, direct.Bytes())
		}
	}

	// Phase 2: quota enforcement. Stall evaluations so tenant "q"'s
	// first job occupies its single running slot, fill its queue to the
	// cap, and require a 429 on the overflow — while another tenant
	// remains unaffected.
	block.Store(true)
	qreq := func(seed int64) *server.JobRequest {
		return &server.JobRequest{Kernel: "mm", Seed: seed, PopSize: 8, MaxIterations: 2, Tenant: "q"}
	}
	first, err := c.Submit(context.Background(), qreq(900))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Status(context.Background(), first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == server.StateRunning {
			break
		}
		if time.Now().After(waitRunning) {
			t.Fatalf("quota job never started (state %s)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for seed := int64(901); seed <= 902; seed++ {
		if _, err := c.Submit(context.Background(), qreq(seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if _, err := c.Submit(context.Background(), qreq(903)); server.StatusCode(err) != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %v", err)
	}
	other := qreq(903)
	other.Tenant = "unrelated"
	last, err := c.Submit(context.Background(), other)
	if err != nil {
		t.Fatalf("other tenant hit by q's quota: %v", err)
	}
	block.Store(false)
	close(release)
	wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer wcancel()
	if _, err := c.Wait(wctx, last.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
