package autotune

import (
	"testing"
)

// TestWithSurrogateFacade drives surrogate-assisted pre-screening end
// to end through the public Tune entry point: the screened run spends
// fewer real evaluations than the identical unscreened run and still
// produces a runnable unit.
func TestWithSurrogateFacade(t *testing.T) {
	small := OptimizerOptions{PopSize: 12, MaxIterations: 15, Seed: 1}
	base, err := Tune("mm", WithMachineSpec(Westmere()), WithOptimizerOptions(small))
	if err != nil {
		t.Fatal(err)
	}
	scr, err := Tune("mm",
		WithMachineSpec(Westmere()),
		WithOptimizerOptions(small),
		WithSurrogate(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if scr.Evaluations >= base.Evaluations {
		t.Fatalf("screened E=%d not below baseline E=%d", scr.Evaluations, base.Evaluations)
	}
	if len(scr.Front) == 0 || scr.Unit == nil || len(scr.Unit.Versions) == 0 {
		t.Fatal("screened tuning produced no usable unit")
	}
	rt, err := NewRuntime(scr.Unit, WeightedSum{Weights: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(); err != nil {
		t.Fatal(err)
	}
}

// TestWithSurrogateRejectsNegativeTopK: the option validates input.
func TestWithSurrogateRejectsNegativeTopK(t *testing.T) {
	if _, err := Tune("mm", WithSurrogate(-1)); err == nil {
		t.Fatal("negative top-K accepted")
	}
}

// TestWithSurrogateRejectsBruteForce: an exhaustive sweep under a
// screen is refused at the driver level.
func TestWithSurrogateRejectsBruteForce(t *testing.T) {
	_, err := Tune("mm",
		WithMethod(BruteForce),
		WithGridPoints([]int{2, 2}),
		WithSurrogate(0),
	)
	if err == nil {
		t.Fatal("brute force + surrogate accepted")
	}
}

// TestGridSearchFacade: the grid method is reachable through the
// public API and respects the budget.
func TestGridSearchFacade(t *testing.T) {
	res, err := Tune("mm",
		WithMethod(GridSearch),
		WithRandomBudget(64),
		WithMachineSpec(Westmere()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations == 0 || res.Evaluations > 64 {
		t.Fatalf("grid consumed %d evaluations, budget 64", res.Evaluations)
	}
	if len(res.Front) == 0 {
		t.Fatal("grid search produced no front")
	}
}
