// Integration tests: cross-package, full-budget checks of the paper's
// headline claims. Quick unit-level variants live in the individual
// packages; these tests run the paper-scale experiment budgets.
package autotune_test

import (
	"testing"

	"autotune"
	"autotune/internal/experiments"
	"autotune/internal/kernels"
	"autotune/internal/machine"
	"autotune/internal/rts"
)

// The abstract's claim: "Our static optimizer finds solutions matching
// or surpassing those determined by exhaustively sampling the search
// space on a regular grid, while using less than 4% of the
// computational effort on average."
func TestClaimEvaluationReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-budget experiment")
	}
	mm, err := kernels.ByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*machine.Machine{machine.Westmere(), machine.Barcelona()} {
		row, _, err := experiments.Table6Kernel(mm, m, experiments.Full, 3)
		if err != nil {
			t.Fatal(err)
		}
		ratio := row.RSGDE3.E / row.BruteForce.E
		// §V-C: "between 99% and 90% lower than the evaluations
		// required by brute force".
		if ratio > 0.10 {
			t.Errorf("%s: RS-GDE3 used %.1f%% of brute-force evaluations, want <= 10%%",
				m.Name, 100*ratio)
		}
		// Hypervolume comparable to brute force...
		if row.RSGDE3.V < 0.85*row.BruteForce.V {
			t.Errorf("%s: RS-GDE3 V=%.3f well below brute force V=%.3f", m.Name, row.RSGDE3.V, row.BruteForce.V)
		}
		// ...and clearly above random search at equal budget.
		if row.RSGDE3.V <= row.Random.V {
			t.Errorf("%s: RS-GDE3 V=%.3f not above random V=%.3f", m.Name, row.RSGDE3.V, row.Random.V)
		}
		// More solutions than brute force (§V-C conclusion 1).
		if row.RSGDE3.S < row.BruteForce.S {
			t.Errorf("%s: RS-GDE3 |S|=%.1f below brute force |S|=%.0f", m.Name, row.RSGDE3.S, row.BruteForce.S)
		}
	}
}

// The abstract's claim: "parallelism-aware multi-versioning approaches
// like our own gain a performance improvement of up to 70% over
// solutions tuned for only one specific number of threads" and the
// conclusion's "failing to do so can decrease performance by up to a
// factor of 4".
func TestClaimThreadSpecificTuningMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("full-budget experiment")
	}
	mm, err := kernels.ByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	worstLoss := 0.0
	for _, m := range []*machine.Machine{machine.Westmere(), machine.Barcelona()} {
		t2, err := experiments.Table2(mm, m, experiments.Full)
		if err != nil {
			t.Fatal(err)
		}
		for i := range t2.Loss {
			for j := range t2.Loss[i] {
				if t2.Loss[i][j] > worstLoss {
					worstLoss = t2.Loss[i][j]
				}
			}
		}
	}
	// "up to 70%" — our model should show at least a 30% worst case
	// for mm across both machines (the factor-4 cases come from
	// n-body, checked below).
	if worstLoss < 0.3 {
		t.Errorf("worst mm cross-thread loss = %.1f%%, want substantial (>= 30%%)", 100*worstLoss)
	}
}

// Table V's asymmetry at full budget: n-body flat on Westmere (fits
// the 30 MB L3), catastrophic on Barcelona (2 MB L3), with a 1tmax
// loss in the "factor of 4" territory.
func TestClaimNBodyCacheAsymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("full-budget experiment")
	}
	nb, err := kernels.ByName("n-body")
	if err != nil {
		t.Fatal(err)
	}
	tW, err := experiments.Table2(nb, machine.Westmere(), experiments.Full)
	if err != nil {
		t.Fatal(err)
	}
	tB, err := experiments.Table2(nb, machine.Barcelona(), experiments.Full)
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(r *experiments.Table2Result) float64 {
		m := 0.0
		for i := range r.Loss {
			for j := range r.Loss[i] {
				if r.Loss[i][j] > m {
					m = r.Loss[i][j]
				}
			}
		}
		return m
	}
	avgOf := func(r *experiments.Table2Result) float64 {
		sum, n := 0.0, 0
		for i := range r.Loss {
			for j := range r.Loss[i] {
				if i != j {
					sum += r.Loss[i][j]
					n++
				}
			}
		}
		return sum / float64(n)
	}
	wMax, bMax := maxOf(tW), maxOf(tB)
	wAvg, bAvg := avgOf(tW), avgOf(tB)
	// Westmere: near-flat landscape — residual losses come only from
	// tie-breaking on the load-balance granularity (see
	// EXPERIMENTS.md); Barcelona: the 2 MB L3 forces large i-tiles at
	// low thread counts that collapse under load imbalance and cache
	// crowding at 32 threads.
	if wMax > 0.6 {
		t.Errorf("Westmere n-body max cross loss = %.1f%%, want mild (< 60%%)", 100*wMax)
	}
	if bMax < 1.0 {
		t.Errorf("Barcelona n-body max cross loss = %.1f%%, want the factor-of-4 class (> 100%%)", 100*bMax)
	}
	if bMax < 3*wMax {
		t.Errorf("max-loss asymmetry too weak: Barcelona %.2f vs Westmere %.2f", bMax, wMax)
	}
	if bAvg < 2.5*wAvg {
		t.Errorf("avg-loss asymmetry too weak: Barcelona %.3f vs Westmere %.3f", bAvg, wAvg)
	}
}

// End-to-end pipeline: tune, serialize, reload, bind real kernel
// entries, execute under the runtime with changing policies.
func TestEndToEndPipelineWithRealExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("executes real kernels")
	}
	res, err := autotune.Tune("mm",
		autotune.WithProblemSize(128),
		autotune.WithSeed(3),
		autotune.WithOptimizerOptions(autotune.OptimizerOptions{PopSize: 12, Seed: 3, MaxIterations: 12}),
	)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := res.Unit.Encode()
	if err != nil {
		t.Fatal(err)
	}
	unit, err := autotune.DecodeUnit(blob)
	if err != nil {
		t.Fatal(err)
	}
	mm, _ := kernels.ByName("mm")
	err = unit.Bind(func(m autotune.Meta) (autotune.Entry, error) {
		tiles := append([]int64(nil), m.Tiles...)
		threads := m.Threads
		return func() error {
			_, err := mm.Run(128, tiles, threads)
			return err
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := autotune.NewRuntime(unit, autotune.WeightedSum{Weights: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetPolicy(rts.WeightedSum{Weights: []float64{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Invocations != 2 {
		t.Fatalf("stats = %+v", rt.Stats())
	}
}

// The Fig. 2 observation at full grid density: the optimal (t1, t2)
// combination depends on the thread count.
func TestClaimTileOptimaShiftAcrossThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("full-budget experiment")
	}
	mm, err := kernels.ByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	bestsW, err := experiments.Table2(mm, machine.Westmere(), experiments.Full)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, b := range bestsW.Bests {
		key := ""
		for _, t := range b.Tiles {
			key += "/" + string(rune(t))
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Error("optimal tiles identical across all thread counts; Fig. 2's premise absent")
	}
}
