package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autotune/internal/machine"
	"autotune/internal/tunedb"
)

// seedDB creates a database under dir with one eval-only key and one
// key carrying a front, and returns both keys.
func seedDB(t *testing.T, dir string) (evalOnly, withFront tunedb.Key) {
	t.Helper()
	sig := machine.SignatureOf(machine.Westmere())
	evalOnly = tunedb.Key{
		Fingerprint: "pgaaaaaaaaaaaaaaaa",
		MachineSig:  sig.Key(),
		Objectives:  "time+resources",
		SpaceHash:   "sp0000000000000001",
	}
	withFront = evalOnly
	withFront.Fingerprint = "pgbbbbbbbbbbbbbbbb"

	db, err := tunedb.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	if err := db.PutEval(evalOnly, []int64{4, 8}, []float64{1.5, 2}); err != nil {
		t.Fatalf("PutEval: %v", err)
	}
	if err := db.PutEval(withFront, []int64{2, 2}, []float64{0.5, 4}); err != nil {
		t.Fatalf("PutEval: %v", err)
	}
	rec := tunedb.FrontRecord{
		Key:            withFront,
		Machine:        sig,
		ObjectiveNames: []string{"time", "resources"},
		Points: []tunedb.FrontPoint{
			{Config: []int64{2, 2}, Objectives: []float64{0.5, 4}},
			{Config: []int64{8, 1}, Objectives: []float64{0.9, 1}},
		},
		Evaluations: 2,
		Iterations:  1,
	}
	if err := db.PutFront(rec); err != nil {
		t.Fatalf("PutFront: %v", err)
	}
	return evalOnly, withFront
}

// runCmd invokes one subcommand and returns stdout; it fails the test
// on error unless wantErr is true, in which case it returns the error
// message.
func runCmd(t *testing.T, dir, cmd string, args []string, wantErr bool) string {
	t.Helper()
	var stdout, stderr strings.Builder
	err := run(dir, cmd, args, &stdout, &stderr)
	if wantErr {
		if err == nil {
			t.Fatalf("%s %v: expected error, got none", cmd, args)
		}
		return err.Error()
	}
	if err != nil {
		t.Fatalf("%s %v: %v", cmd, args, err)
	}
	return stdout.String()
}

func TestRunSubcommands(t *testing.T) {
	dir := t.TempDir()
	evalOnly, withFront := seedDB(t, dir)

	out := runCmd(t, dir, "ls", nil, false)
	for _, want := range []string{evalOnly.Fingerprint, withFront.Fingerprint, "evals", "front"} {
		if !strings.Contains(out, want) {
			t.Errorf("ls output missing %q:\n%s", want, out)
		}
	}

	out = runCmd(t, dir, "show", []string{withFront.Fingerprint}, false)
	if !strings.Contains(out, withFront.String()) || !strings.Contains(out, "2 Pareto points") {
		t.Errorf("show output unexpected:\n%s", out)
	}

	out = runCmd(t, dir, "export", nil, false) // only one stored front: no prefix needed
	for _, want := range []string{`"time"`, `"resources"`, `"value"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export output missing %q:\n%s", want, out)
		}
	}

	out = runCmd(t, dir, "compact", nil, false)
	if !strings.Contains(out, "compacted") {
		t.Errorf("compact output unexpected: %q", out)
	}

	other := t.TempDir()
	seedDB(t, other)
	out = runCmd(t, dir, "merge", []string{other}, false)
	if !strings.Contains(out, "merged 0 evaluations and 0 fronts") {
		t.Errorf("merge of identical database should adopt nothing: %q", out)
	}
}

func TestStatsSubcommand(t *testing.T) {
	dir := t.TempDir()
	seedDB(t, dir)
	out := runCmd(t, dir, "stats", nil, false)
	for _, want := range []string{"shard", "segments", "live", "dead", "bloomFPR", "total:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	// 2 keys: 2 evals + 1 front + 2 registry entries = 5 live keys.
	if !strings.Contains(out, "5 live keys") {
		t.Errorf("stats live-key count unexpected:\n%s", out)
	}
}

func TestScanSubcommand(t *testing.T) {
	dir := t.TempDir()
	evalOnly, withFront := seedDB(t, dir)

	// A program-fingerprint prefix selects only that program.
	out := runCmd(t, dir, "scan", []string{evalOnly.Fingerprint}, false)
	if !strings.Contains(out, evalOnly.Fingerprint) {
		t.Errorf("scan output missing %q:\n%s", evalOnly.Fingerprint, out)
	}
	if strings.Contains(out, withFront.Fingerprint) {
		t.Errorf("scan leaked non-matching key:\n%s", out)
	}
	// No prefix lists everything.
	out = runCmd(t, dir, "scan", nil, false)
	if !strings.Contains(out, evalOnly.Fingerprint) || !strings.Contains(out, withFront.Fingerprint) {
		t.Errorf("unprefixed scan incomplete:\n%s", out)
	}
	// An unmatched prefix says so.
	out = runCmd(t, dir, "scan", []string{"pgzzzz"}, false)
	if !strings.Contains(out, "no keys match") {
		t.Errorf("unmatched scan output: %q", out)
	}
}

func TestFsckSubcommand(t *testing.T) {
	dir := t.TempDir()
	seedDB(t, dir)

	out := runCmd(t, dir, "fsck", nil, false)
	if !strings.Contains(out, "fsck: ok") || !strings.Contains(out, "shard 00: ok") {
		t.Errorf("clean fsck output unexpected:\n%s", out)
	}

	// Flip one byte inside a segment's data region: fsck must detect it
	// and exit nonzero.
	segs, err := filepath.Glob(filepath.Join(dir, "store", "shard-*", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files to corrupt: %v", err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if msg := runCmd(t, dir, "fsck", nil, true); !strings.Contains(msg, "corruption detected") {
		t.Errorf("fsck on corrupted store: %s", msg)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	seedDB(t, dir)

	if msg := runCmd(t, dir, "frobnicate", nil, true); !strings.Contains(msg, "unknown command") {
		t.Errorf("unexpected error: %s", msg)
	}
	if msg := runCmd(t, dir, "show", []string{"nope"}, true); !strings.Contains(msg, "no stored front") {
		t.Errorf("unexpected error: %s", msg)
	}
	if msg := runCmd(t, dir, "merge", nil, true); !strings.Contains(msg, "exactly one source") {
		t.Errorf("unexpected error: %s", msg)
	}

	// An ambiguous prefix must be rejected, not silently resolved.
	db, err := tunedb.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sig := machine.SignatureOf(machine.Barcelona())
	second := tunedb.Key{
		Fingerprint: "pgbbbbbbbbbbbbbbbb",
		MachineSig:  sig.Key(),
		Objectives:  "time+resources",
		SpaceHash:   "sp0000000000000001",
	}
	if err := db.PutFront(tunedb.FrontRecord{
		Key: second, Machine: sig,
		ObjectiveNames: []string{"time", "resources"},
		Points:         []tunedb.FrontPoint{{Config: []int64{1, 1}, Objectives: []float64{1, 1}}},
	}); err != nil {
		t.Fatalf("PutFront: %v", err)
	}
	db.Close()
	if msg := runCmd(t, dir, "show", []string{"pgbbbb"}, true); !strings.Contains(msg, "ambiguous") {
		t.Errorf("unexpected error: %s", msg)
	}
}
