// Command tunedb inspects and maintains a persistent tuning database
// (the -db directory of cmd/autotune).
//
// Usage:
//
//	tunedb -db DIR ls                 # list stored keys with eval/front counts
//	tunedb -db DIR show KEYPREFIX     # print the stored front for a key
//	tunedb -db DIR compact            # merge segments, dropping dead records
//	tunedb -db DIR merge OTHERDIR     # adopt records from another database
//	tunedb -db DIR export KEYPREFIX   # write the stored front as JSON to stdout
//	tunedb -db DIR stats              # storage-engine state per shard
//	tunedb -db DIR scan PGPREFIX      # list keys matching a program prefix
//	tunedb -db DIR fsck               # offline integrity check (exit 1 on corruption)
//
// KEYPREFIX matches any stored key whose canonical string starts with
// it; an ambiguous prefix is an error, so a unique fingerprint prefix
// suffices.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"autotune/internal/export"
	"autotune/internal/pareto"
	"autotune/internal/skeleton"
	"autotune/internal/tunedb"
)

func main() {
	dir := flag.String("db", "", "tuning database directory (required)")
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tunedb -db DIR {ls|show KEY|compact|merge OTHERDIR|export KEY|stats|scan PREFIX|fsck}")
		os.Exit(2)
	}
	if err := run(*dir, flag.Arg(0), flag.Args()[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tunedb:", err)
		os.Exit(1)
	}
}

// run dispatches one subcommand against the database at dir. It is
// separate from main so the CLI surface is testable without a process
// boundary.
func run(dir, cmd string, args []string, stdout, stderr io.Writer) error {
	if cmd == "fsck" {
		// Dispatched before Open on purpose: fsck must work on stores
		// too corrupt to open (and must not repair anything — open
		// truncates torn WAL tails; fsck only reports them).
		return fsck(dir, stdout)
	}
	db, err := tunedb.Open(dir)
	if err != nil {
		return err
	}
	defer db.Close()

	switch cmd {
	case "ls":
		ls(db, stdout)
		return nil
	case "show":
		rec, err := resolveFront(db, args, stderr)
		if err != nil {
			return err
		}
		printFront(rec, stdout)
		return nil
	case "compact":
		if err := db.Compact(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "database compacted")
		return nil
	case "stats":
		return stats(db, stdout)
	case "scan":
		prefix := ""
		if len(args) > 0 {
			prefix = args[0]
		}
		return scan(db, prefix, stdout)
	case "merge":
		if len(args) != 1 {
			return fmt.Errorf("merge wants exactly one source directory")
		}
		evals, fronts, err := db.Merge(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "merged %d evaluations and %d fronts from %s\n", evals, fronts, args[0])
		return nil
	case "export":
		rec, err := resolveFront(db, args, stderr)
		if err != nil {
			return err
		}
		front := make([]pareto.Point, len(rec.Points))
		for i, p := range rec.Points {
			front[i] = pareto.Point{
				Payload:    skeleton.Config(p.Config),
				Objectives: p.Objectives,
			}
		}
		return export.FrontJSON(stdout, front, rec.ObjectiveNames)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// ls prints one row per stored key.
// fsck verifies every shard's WAL frames, segment checksums, sort
// order, bloom filters and sparse indexes offline, printing a
// per-shard verdict. Corruption returns an error (exit 1); benign
// crash leftovers (torn WAL tails, temp files) are warnings.
func fsck(dir string, w io.Writer) error {
	rep, err := tunedb.Fsck(dir)
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep.String())
	if !rep.OK() {
		return fmt.Errorf("fsck: corruption detected in %s", dir)
	}
	fmt.Fprintln(w, "fsck: ok")
	return nil
}

func ls(db *tunedb.DB, w io.Writer) {
	keys := db.Keys()
	if len(keys) == 0 {
		fmt.Fprintln(w, "database is empty")
		return
	}
	fmt.Fprintf(w, "%-20s %-30s %-16s %6s %6s\n", "fingerprint", "machine", "objectives", "evals", "front")
	for _, k := range keys {
		frontSize := 0
		if rec, ok := db.Front(k); ok {
			frontSize = len(rec.Points)
		}
		fmt.Fprintf(w, "%-20s %-30s %-16s %6d %6d\n",
			k.Fingerprint, trim(k.MachineSig, 30), k.Objectives, db.EvalCount(k), frontSize)
	}
}

// stats prints the storage engine's physical state: per-shard segment
// counts, live/dead record ratios and bloom-filter effectiveness.
func stats(db *tunedb.DB, w io.Writer) error {
	s, err := db.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %9s %9s %9s %9s %10s %9s\n",
		"shard", "segments", "records", "live", "dead", "disk", "bloomFPR")
	for _, ss := range s.Shards {
		if ss.Segments == 0 && ss.MemtableEntries == 0 && ss.LiveKeys == 0 {
			continue
		}
		fpr := "-"
		if ss.BloomFPREstimate > 0 {
			fpr = fmt.Sprintf("%.4f", ss.BloomFPREstimate)
		}
		fmt.Fprintf(w, "%-6d %9d %9d %9d %9d %10d %9s\n",
			ss.Shard, ss.Segments, int(ss.SegmentRecords)+ss.MemtableEntries,
			ss.LiveKeys, ss.DeadRecords, ss.DiskBytes, fpr)
	}
	live := float64(1)
	if tot := s.SegmentRecords + uint64(s.MemtableEntries); tot > 0 {
		live = float64(s.LiveKeys) / float64(tot)
	}
	fmt.Fprintf(w, "total: %d segments, %d live keys, %d dead records (%.1f%% live), %d bytes on disk\n",
		s.Segments, s.LiveKeys, s.DeadRecords, 100*live, s.DiskBytes)
	return nil
}

// scan lists every stored key whose canonical string starts with the
// given prefix (typically a program fingerprint), with record counts —
// a single-shard range scan, not a full database walk.
func scan(db *tunedb.DB, prefix string, w io.Writer) error {
	keys, err := db.ScanKeys(prefix)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		fmt.Fprintf(w, "no keys match %q\n", prefix)
		return nil
	}
	fmt.Fprintf(w, "%-20s %-30s %-16s %6s %6s\n", "fingerprint", "machine", "objectives", "evals", "front")
	for _, k := range keys {
		frontSize := 0
		if rec, ok := db.Front(k); ok {
			frontSize = len(rec.Points)
		}
		fmt.Fprintf(w, "%-20s %-30s %-16s %6d %6d\n",
			k.Fingerprint, trim(k.MachineSig, 30), k.Objectives, db.EvalCount(k), frontSize)
	}
	return nil
}

// resolveFront finds the unique stored front whose key matches the
// given prefix (or the only stored front when no prefix is given).
func resolveFront(db *tunedb.DB, args []string, stderr io.Writer) (tunedb.FrontRecord, error) {
	prefix := ""
	if len(args) > 0 {
		prefix = args[0]
	}
	var matches []tunedb.FrontRecord
	for _, k := range db.Keys() {
		rec, ok := db.Front(k)
		if !ok {
			continue
		}
		if prefix == "" || hasPrefix(k.String(), prefix) {
			matches = append(matches, rec)
		}
	}
	switch len(matches) {
	case 0:
		return tunedb.FrontRecord{}, fmt.Errorf("no stored front matches %q", prefix)
	case 1:
		return matches[0], nil
	default:
		for _, m := range matches {
			fmt.Fprintln(stderr, "  "+m.Key.String())
		}
		return tunedb.FrontRecord{}, fmt.Errorf("%q is ambiguous (%d matches)", prefix, len(matches))
	}
}

func printFront(rec tunedb.FrontRecord, w io.Writer) {
	fmt.Fprintf(w, "key:        %s\n", rec.Key.String())
	fmt.Fprintf(w, "machine:    %s\n", rec.Key.MachineSig)
	fmt.Fprintf(w, "objectives: %s\n", rec.Key.Objectives)
	fmt.Fprintf(w, "search:     %d evaluations, %d iterations, %d Pareto points\n",
		rec.Evaluations, rec.Iterations, len(rec.Points))
	for i, p := range rec.Points {
		fmt.Fprintf(w, "%-4d config %v  objectives %v\n", i, p.Config, p.Objectives)
	}
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
