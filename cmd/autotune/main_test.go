package main

import (
	"strings"
	"testing"

	"autotune"
)

func TestValidateChoicesAcceptsEveryRegisteredName(t *testing.T) {
	for _, m := range autotune.Methods() {
		if err := validateChoices(m, nil); err != nil {
			t.Fatalf("method %q rejected: %v", m, err)
		}
	}
	if err := validateChoices("race", autotune.Strategies()); err != nil {
		t.Fatalf("full contender set rejected: %v", err)
	}
}

func TestValidateChoicesListsValidNames(t *testing.T) {
	err := validateChoices("alien", nil)
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	for _, m := range autotune.Methods() {
		if !strings.Contains(err.Error(), m) {
			t.Fatalf("method error %q does not mention %q", err, m)
		}
	}

	err = validateChoices("race", []string{"grid", "alien"})
	if err == nil {
		t.Fatal("unknown race strategy accepted")
	}
	for _, s := range autotune.Strategies() {
		if !strings.Contains(err.Error(), s) {
			t.Fatalf("strategy error %q does not mention %q", err, s)
		}
	}
}

func TestSplitStrategies(t *testing.T) {
	got := splitStrategies(" grid, random ,,rs-gde3 ")
	want := []string{"grid", "random", "rs-gde3"}
	if len(got) != len(want) {
		t.Fatalf("splitStrategies = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitStrategies = %v, want %v", got, want)
		}
	}
	if splitStrategies("") != nil {
		t.Fatal("empty list should parse to nil")
	}
}

func TestValidateScreenTopK(t *testing.T) {
	// Implicit 0 is the automatic default and always fine.
	if err := validateScreenTopK(0, false); err != nil {
		t.Fatalf("implicit default rejected: %v", err)
	}
	if err := validateScreenTopK(5, true); err != nil {
		t.Fatalf("positive cap rejected: %v", err)
	}
	// An explicit zero or negative cap would silently screen out
	// everything; reject it upfront.
	for _, k := range []int{0, -1, -100} {
		if err := validateScreenTopK(k, true); err == nil {
			t.Fatalf("explicit -screen-topk %d accepted", k)
		}
	}
}
