// Command autotune tunes one of the built-in kernels for multiple
// objectives and prints (or saves) the resulting multi-versioned unit.
//
// Usage:
//
//	autotune -kernel mm -machine Westmere [-method rs-gde3|gde3|nsga2|motpe|random|grid|brute-force|race]
//	         [-islands W] [-migrate M] [-seed N] [-n N] [-energy] [-measured]
//	         [-surrogate] [-screen-topk K]
//	         [-race-interval N] [-race-budget E] [-race-strategies a,b,c]
//	         [-deadline D] [-eval-timeout D] [-retries N]
//	         [-checkpoint FILE] [-resume FILE]
//	         [-db DIR] [-warm=false] [-o unit.json] [-code]
//
// The search is interruptible: SIGINT/SIGTERM (or an elapsed
// -deadline) stops it gracefully at the next generation boundary and
// prints the best-so-far partial front. With -checkpoint, an
// interrupted run resumes exactly via -resume, finishing with the same
// front as an uninterrupted run.
//
// Example:
//
//	autotune -kernel mm -machine Barcelona -seed 1
//	autotune -kernel jacobi-2d -energy -o jacobi.json
//	autotune -kernel mm -checkpoint mm.ckpt   # interrupt with ^C ...
//	autotune -kernel mm -resume mm.ckpt       # ... and finish later
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"autotune"
	"autotune/internal/export"
	"autotune/internal/machine"
)

func main() {
	kernel := flag.String("kernel", "mm", "kernel to tune ("+strings.Join(autotune.Kernels(), ", ")+")")
	machineName := flag.String("machine", "Westmere", "target machine (Westmere, Barcelona)")
	method := flag.String("method", string(autotune.RSGDE3), "search method ("+strings.Join(autotune.Methods(), ", ")+")")
	islands := flag.Int("islands", 1, "parallel search islands (1 = serial)")
	migrate := flag.Int("migrate", 0, "generations between island migrations (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	n := flag.Int64("n", 0, "problem size (0 = kernel default)")
	energy := flag.Bool("energy", false, "add the energy objective (3-objective tuning)")
	measured := flag.Bool("measured", false, "tune by timing the real Go kernels instead of the model")
	out := flag.String("o", "", "write the multi-versioned unit JSON to this file")
	showCode := flag.Bool("code", false, "print the generated code listing of each version")
	machineFile := flag.String("machine-file", "", "load a custom machine description from this JSON file")
	unroll := flag.Bool("unroll", false, "add the innermost-loop unroll factor as a tuning dimension")
	emitC := flag.String("emit-c", "", "write the multi-versioned C translation unit to this file")
	programFile := flag.String("program", "", "tune a MiniIR text program from this file instead of a built-in kernel")
	faultDemo := flag.Int("fault-demo", 0, "after tuning, drive N runtime invocations with faults injected into the fastest version")
	faultRate := flag.Float64("fault-rate", 0.3, "per-invocation error rate for -fault-demo")
	dbDir := flag.String("db", "", "persistent tuning database directory (results are journaled; inspect with cmd/tunedb)")
	warm := flag.Bool("warm", true, "with -db: warm-start from stored results (cache priming + population seeding)")
	deadline := flag.Duration("deadline", 0, "stop the search gracefully after this long, keeping the best-so-far front (0 = unbounded)")
	evalTimeout := flag.Duration("eval-timeout", 0, "abandon any single evaluation exceeding this and record it as failed (0 = no watchdog)")
	retries := flag.Int("retries", 0, "retry transiently faulted evaluations this many times with exponential backoff")
	checkpoint := flag.String("checkpoint", "", "journal a crash-safe search snapshot to this file after every generation")
	resume := flag.String("resume", "", "resume an interrupted search from this checkpoint file (options must match the interrupted run)")
	raceInterval := flag.Int("race-interval", 0, "with -method race: generations between scoring/elimination rounds (0 = default 5)")
	raceBudget := flag.Int("race-budget", 0, "with -method race: cap on total distinct evaluations (0 = race until every survivor stops)")
	raceStrategies := flag.String("race-strategies", "", "with -method race: comma-separated contender strategies (empty = all registered)")
	surrogate := flag.Bool("surrogate", false, "pre-screen candidates with an online surrogate model: only the most promising reach the real evaluator")
	screenTopK := flag.Int("screen-topk", 0, "with -surrogate: admitted new candidates per screened batch (0 = automatic; implies -surrogate when set)")
	frontJSON := flag.String("front-json", "", "write the Pareto front as byte-stable JSON to this file (diffable against the tuning service's /front)")
	flag.Parse()

	if err := validateChoices(*method, splitStrategies(*raceStrategies)); err != nil {
		fmt.Fprintln(os.Stderr, "autotune:", err)
		os.Exit(2)
	}
	screenTopKSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "screen-topk" {
			screenTopKSet = true
		}
	})
	if err := validateScreenTopK(*screenTopK, screenTopKSet); err != nil {
		fmt.Fprintln(os.Stderr, "autotune:", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the search context: the search stops at the
	// next generation boundary, the last completed generation stays
	// checkpointed, and the partial front is still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	opts := []autotune.Option{
		autotune.WithMethod(autotune.Method(*method)),
		autotune.WithSeed(*seed),
		autotune.WithNoise(0.01),
		autotune.WithContext(ctx),
	}
	if autotune.Method(*method) == autotune.MethodRace || *raceInterval > 0 || *raceBudget > 0 || *raceStrategies != "" {
		opts = append(opts, autotune.WithRace(autotune.RaceOptions{
			Strategies: splitStrategies(*raceStrategies),
			Interval:   *raceInterval,
			Budget:     *raceBudget,
		}))
	}
	if *surrogate || *screenTopK > 0 {
		opts = append(opts, autotune.WithSurrogate(*screenTopK))
	}
	if *evalTimeout > 0 {
		opts = append(opts, autotune.WithEvalTimeout(*evalTimeout))
	}
	if *retries > 0 {
		opts = append(opts, autotune.WithRetries(*retries))
	}
	switch {
	case *resume != "":
		opts = append(opts, autotune.WithResume(*resume))
	case *checkpoint != "":
		opts = append(opts, autotune.WithCheckpoint(*checkpoint))
	}
	if *machineFile != "" {
		data, err := os.ReadFile(*machineFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
		m, err := machine.FromJSON(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
		opts = append(opts, autotune.WithMachineSpec(m))
		*machineName = m.Name
	} else {
		opts = append(opts, autotune.WithMachine(*machineName))
	}
	if *unroll {
		opts = append(opts, autotune.WithUnrollDimension())
	}
	if *islands > 1 {
		opts = append(opts, autotune.WithIslands(*islands, *migrate))
	}
	if *n > 0 {
		opts = append(opts, autotune.WithProblemSize(*n))
	}
	if *energy {
		opts = append(opts, autotune.WithEnergyObjective())
	}
	if *measured {
		opts = append(opts, autotune.WithMeasuredExecution(3))
	}
	if *dbDir != "" {
		db, err := autotune.OpenDB(*dbDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
		defer func() {
			if err := db.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "autotune: closing tuning database:", err)
			}
		}()
		opts = append(opts, autotune.WithDB(db))
		if *warm {
			opts = append(opts, autotune.WithWarmStart())
		}
	}

	var res *autotune.TuneResult
	var err error
	target := *kernel
	if *programFile != "" {
		src, rerr := os.ReadFile(*programFile)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "autotune:", rerr)
			os.Exit(1)
		}
		res, err = autotune.TuneSource(string(src), opts...)
		target = *programFile
	} else {
		res, err = autotune.Tune(*kernel, opts...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "autotune:", err)
		os.Exit(1)
	}

	fmt.Printf("%s on %s via %s: %d evaluations, %d iterations, %d Pareto-optimal versions\n",
		target, *machineName, *method, res.Evaluations, res.Iterations, len(res.Unit.Versions))
	if res.Partial {
		fmt.Println("search interrupted: the front below is the best found so far, not the final one")
		ckpt := *checkpoint
		if *resume != "" {
			ckpt = *resume
		}
		if ckpt != "" {
			fmt.Printf("finish the search with: -resume %s (keep the other flags identical)\n", ckpt)
		}
	}
	fmt.Printf("%-4s %-18s %-8s %s\n", "#", "tiles", "threads", strings.Join(res.Unit.ObjectiveNames, " / "))
	for i, v := range res.Unit.Versions {
		objs := make([]string, len(v.Meta.Objectives))
		for j, o := range v.Meta.Objectives {
			objs[j] = fmt.Sprintf("%.4g", o)
		}
		tiles := make([]string, len(v.Meta.Tiles))
		for j, t := range v.Meta.Tiles {
			tiles[j] = fmt.Sprint(t)
		}
		fmt.Printf("%-4d %-18s %-8d %s\n", i, strings.Join(tiles, "x"), v.Meta.Threads, strings.Join(objs, " / "))
		if *showCode {
			fmt.Println(indent(v.Code, "     | "))
		}
	}

	if *frontJSON != "" {
		f, err := os.Create(*frontJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
		err = export.FrontJSON(f, res.Front, res.Unit.ObjectiveNames)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
		fmt.Printf("Pareto front JSON written to %s\n", *frontJSON)
	}

	if *emitC != "" {
		code, err := res.EmitC(strings.ReplaceAll(*kernel, "-", "_"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*emitC, []byte(code), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
		fmt.Printf("C translation unit written to %s\n", *emitC)
	}

	if *faultDemo > 0 {
		if err := runFaultDemo(res.Unit, *faultDemo, *faultRate, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
	}

	if *out != "" {
		data, err := res.Unit.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
		fmt.Printf("multi-versioned unit written to %s\n", *out)
	}
}

// runFaultDemo exercises the runtime's fault-tolerance layer on the
// freshly tuned unit: the fastest version gets an injected error rate,
// a time-priority policy keeps preferring it, and the fallback +
// quarantine machinery has to absorb every failure.
func runFaultDemo(unit *autotune.Unit, n int, rate float64, seed int64) error {
	if err := unit.Bind(func(m autotune.Meta) (autotune.Entry, error) {
		return func() error { return nil }, nil
	}); err != nil {
		return err
	}
	rt, err := autotune.NewRuntime(unit, autotune.WeightedSum{Weights: []float64{1, 0}})
	if err != nil {
		return err
	}
	fastest := 0
	for i, v := range unit.Versions {
		if v.Meta.Objectives[0] < unit.Versions[fastest].Meta.Objectives[0] {
			fastest = i
		}
	}
	rt.SetFaultInjector(&autotune.FaultInjector{ErrorRate: rate, Versions: []int{fastest}, Seed: seed})

	fmt.Printf("\nfault demo: %d invocations, %.0f%% error rate on version %d\n", n, rate*100, fastest)
	callerErrors := 0
	for i := 0; i < n; i++ {
		if _, err := rt.Invoke(); err != nil {
			callerErrors++
		}
	}
	st := rt.Stats()
	fmt.Printf("caller errors %d | failures absorbed %d | fallbacks %d | quarantines %d | readmissions %d\n",
		callerErrors, st.Failures, st.Fallbacks, st.Quarantines, st.Readmissions)
	return nil
}

// validateScreenTopK rejects a meaningless surrogate screen upfront:
// an explicitly passed -screen-topk must be positive — 0 is only valid
// as the implicit "size the screen automatically" default, and a
// negative cap would silently admit nothing.
func validateScreenTopK(topK int, explicit bool) error {
	if explicit && topK <= 0 {
		return fmt.Errorf("-screen-topk must be > 0 (got %d); omit it to let -surrogate size the screen automatically", topK)
	}
	return nil
}

// splitStrategies parses the -race-strategies comma list.
func splitStrategies(s string) []string {
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// validateChoices rejects unknown -method and -race-strategies values
// upfront, listing the valid names instead of failing deep inside the
// search with a bare "unknown strategy" error.
func validateChoices(method string, raceStrategies []string) error {
	knownMethod := false
	for _, m := range autotune.Methods() {
		if m == method {
			knownMethod = true
			break
		}
	}
	if !knownMethod {
		return fmt.Errorf("unknown method %q (valid: %s)", method, strings.Join(autotune.Methods(), ", "))
	}
	valid := map[string]bool{}
	for _, s := range autotune.Strategies() {
		valid[s] = true
	}
	for _, name := range raceStrategies {
		if !valid[name] {
			return fmt.Errorf("unknown race strategy %q (valid: %s)", name, strings.Join(autotune.Strategies(), ", "))
		}
	}
	return nil
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
