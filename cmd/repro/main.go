// Command repro regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	repro [-exp all|fig1|fig2|table1|table2|table3|table4|table5|table6|fig8|fig9|island|warmstart|race|surrogate]
//	      [-machine Westmere|Barcelona|all] [-kernel mm|...]
//	      [-mode quick|full] [-reps N]
//
// The default regenerates everything at full (paper-scale) budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"autotune/internal/experiments"
	"autotune/internal/export"
	"autotune/internal/kernels"
	"autotune/internal/machine"
	"autotune/internal/pareto"
)

// paretoPoint aliases the front point type for the export helpers.
type paretoPoint = pareto.Point

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (all, fig1, fig2, fig8, fig9, table1..table6, island, warmstart, race, surrogate, resume, extended, validate)")
	machName := flag.String("machine", "all", "target machine (Westmere, Barcelona, all)")
	kernName := flag.String("kernel", "mm", "kernel for single-kernel experiments")
	modeName := flag.String("mode", "full", "evaluation budget (quick, full)")
	reps := flag.Int("reps", 5, "repetitions for stochastic strategies (Table VI)")
	exportDir := flag.String("export", "", "also write figure data (CSV) and gnuplot scripts to this directory (fig2, fig8, fig9)")
	flag.Parse()

	mode := experiments.Full
	if *modeName == "quick" {
		mode = experiments.Quick
	}

	var machines []*machine.Machine
	if *machName == "all" {
		machines = []*machine.Machine{machine.Westmere(), machine.Barcelona()}
	} else {
		m, err := machine.ByName(*machName)
		if err != nil {
			fatal(err)
		}
		machines = []*machine.Machine{m}
	}
	k, err := kernels.ByName(*kernName)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	switch *exp {
	case "all":
		if err := experiments.RunAll(w, mode, *reps); err != nil {
			fatal(err)
		}
	case "table1":
		experiments.Table1(w)
	case "table4":
		experiments.Table4(w)
	case "fig1":
		for _, m := range machines {
			r, err := experiments.Fig1(k, m, mode)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
		}
	case "fig2":
		for _, m := range machines {
			threads := experiments.ThreadCounts(m)
			points := 12
			if mode == experiments.Quick {
				points = 7
			}
			for _, th := range []int{threads[0], threads[len(threads)-1]} {
				r, err := experiments.Fig2(k, m, th, 9, points)
				if err != nil {
					fatal(err)
				}
				r.Render(w)
				fmt.Fprintln(w)
				if *exportDir != "" {
					base := fmt.Sprintf("fig2_%s_%dt", m.Name, th)
					if err := exportHeatmap(*exportDir, base, r); err != nil {
						fatal(err)
					}
				}
			}
		}
	case "table2":
		for _, m := range machines {
			r, err := experiments.Table2(k, m, mode)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
	case "table3":
		for _, m := range machines {
			r, err := experiments.Table3(k, m, mode)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
	case "table5":
		for _, m := range machines {
			r, err := experiments.Table5(m, mode)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
	case "table6":
		for _, m := range machines {
			r, err := experiments.Table6(m, mode, *reps)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
	case "fig8":
		for _, m := range machines {
			r, err := experiments.Fig8(k, m, mode)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
			if *exportDir != "" {
				f, err := os.Create(filepath.Join(*exportDir, "fig8_"+m.Name+".csv"))
				if err != nil {
					fatal(err)
				}
				if err := export.SeriesCSV(f, r.Series); err != nil {
					fatal(err)
				}
				f.Close()
			}
		}
	case "island":
		for _, m := range machines {
			r, err := experiments.IslandComparison(k, m, mode)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
	case "warmstart":
		for _, m := range machines {
			r, err := experiments.WarmStartComparison(k, m, mode)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
	case "race":
		for _, m := range machines {
			r, err := experiments.RaceComparison(k, m, mode)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
	case "surrogate":
		for _, m := range machines {
			r, err := experiments.SurrogateComparison(k, m, mode)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
	case "resume":
		names := []string{k.Name}
		if k.Name != "jacobi-2d" {
			names = append(names, "jacobi-2d")
		} else {
			names = append(names, "mm")
		}
		for _, m := range machines {
			r, err := experiments.ResumeComparison(names, m, mode)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
	case "extended":
		for _, m := range machines {
			r, err := experiments.Extended(m, mode, 1)
			if err != nil {
				fatal(err)
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
	case "validate":
		r, err := experiments.Validation()
		if err != nil {
			fatal(err)
		}
		r.Render(w)
	case "fig9":
		for _, m := range machines {
			_, f9, err := experiments.Table6Kernel(k, m, mode, 1)
			if err != nil {
				fatal(err)
			}
			f9.Render(w)
			fmt.Fprintln(w)
			if *exportDir != "" {
				if err := exportFig9(*exportDir, m.Name, f9); err != nil {
					fatal(err)
				}
			}
		}
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}

// exportHeatmap writes a Fig. 2 panel as CSV plus a gnuplot script.
func exportHeatmap(dir, base string, r *experiments.Fig2Result) error {
	csvPath := filepath.Join(dir, base+".csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := export.HeatmapCSV(f, r.T1, r.T2, r.RelTime); err != nil {
		f.Close()
		return err
	}
	f.Close()
	g, err := os.Create(filepath.Join(dir, base+".gp"))
	if err != nil {
		return err
	}
	defer g.Close()
	title := fmt.Sprintf("relative time, %d threads (%s)", r.Threads, r.Machine.Name)
	return export.GnuplotHeatmap(g, title, csvPath)
}

// exportFig9 writes each strategy's front as CSV plus a combined
// gnuplot script.
func exportFig9(dir, machineName string, f9 *experiments.Fig9Result) error {
	fronts := map[string][]paretoPoint{
		"bruteforce": f9.BruteForce,
		"random":     f9.Random,
		"rsgde3":     f9.RSGDE3,
	}
	files := map[string]string{}
	for name, front := range fronts {
		path := filepath.Join(dir, fmt.Sprintf("fig9_%s_%s.csv", machineName, name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = export.FrontCSV(f, front, nil, []string{"time", "resources"})
		f.Close()
		if err != nil {
			return err
		}
		files[name] = path
	}
	g, err := os.Create(filepath.Join(dir, "fig9_"+machineName+".gp"))
	if err != nil {
		return err
	}
	defer g.Close()
	return export.GnuplotFronts(g, "Pareto fronts ("+machineName+")", files)
}
