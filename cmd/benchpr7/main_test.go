package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuick(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	if err := run(out, "Westmere", "mm", "quick", &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "Surrogate pre-screening: mm") {
		t.Errorf("rendered output missing surrogate table:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "cells with >= 2x") {
		t.Errorf("rendered output missing the cell tally:\n%s", sb.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var report struct {
		Benchmark string `json:"benchmark"`
		Runs      []struct {
			Kernel        string  `json:"kernel"`
			Label         string  `json:"label"`
			Machine       string  `json:"machine"`
			Evaluations   int     `json:"evaluations"`
			Hypervolume   float64 `json:"hypervolume"`
			EvalsToTarget int     `json:"evals_to_target"`
			EvalSpeedup   float64 `json:"eval_speedup"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	// Four runs per cell: baseline/surrogate, cold/warm.
	if len(report.Runs) != 4 {
		t.Fatalf("want 4 runs for one cell, got %d", len(report.Runs))
	}
	wantLabels := []string{"baseline cold", "surrogate cold", "baseline warm", "surrogate warm"}
	for i, run := range report.Runs {
		if run.Label != wantLabels[i] {
			t.Fatalf("run %d label = %q, want %q", i, run.Label, wantLabels[i])
		}
		if run.Evaluations <= 0 || run.Hypervolume <= 0 {
			t.Errorf("run %q has no work recorded: %+v", run.Label, run)
		}
	}
	// Baselines reach their own final hypervolume by construction.
	if report.Runs[0].EvalsToTarget == 0 || report.Runs[2].EvalsToTarget == 0 {
		t.Errorf("baseline evals_to_target missing: %+v", report.Runs)
	}
	if report.Runs[0].EvalSpeedup != 0 || report.Runs[2].EvalSpeedup != 0 {
		t.Errorf("baseline rows carry a speedup: %+v", report.Runs)
	}
}

func TestRunBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run("x.json", "NoSuchMachine", "mm", "quick", &sb); err == nil {
		t.Error("unknown machine: expected error")
	}
	if err := run("x.json", "Westmere", "nosuchkernel", "quick", &sb); err == nil {
		t.Error("unknown kernel: expected error")
	}
}
