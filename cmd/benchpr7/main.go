// Command benchpr7 runs the surrogate pre-screening benchmark: for
// each kernel and machine preset, an unscreened baseline search and a
// surrogate-screened search run with identical budgets, cold and warm
// (warm = cache primed and population seeded from a different-seed
// priming run). The JSON report records, per run, the real evaluation
// count (E), front size, hypervolume against the cell's shared
// reference, and the evaluations-to-equal-hypervolume metric: how many
// real evaluations each run spent before its front first matched the
// baseline's final hypervolume. Surrogate rows carry the resulting
// speedup. The committed BENCH_pr7.json at the repository root is
// regenerated with:
//
//	go run ./cmd/benchpr7 -o BENCH_pr7.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"autotune/internal/experiments"
	"autotune/internal/kernels"
	"autotune/internal/machine"
)

func main() {
	out := flag.String("o", "BENCH_pr7.json", "output file")
	machList := flag.String("machines", "Westmere,Barcelona", "comma-separated machine presets")
	kernList := flag.String("kernels", "mm,2mm,jacobi-2d", "comma-separated kernels")
	modeName := flag.String("mode", "full", "evaluation budget (quick, full)")
	flag.Parse()

	if err := run(*out, *machList, *kernList, *modeName, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchpr7:", err)
		os.Exit(1)
	}
}

// run executes the benchmark and writes the JSON report to out; the
// rendered tables go to w. Separate from main so it is testable.
func run(out, machList, kernList, modeName string, w io.Writer) error {
	mode := experiments.ModeByName(modeName)
	report := experiments.NewBenchReport(
		"surrogate pre-screening: online model screens candidates before real evaluation, cold and warm-started",
		machList, modeName)

	cells, twofold := 0, 0
	for _, mName := range experiments.SplitList(machList) {
		m, err := machine.ByName(mName)
		if err != nil {
			return err
		}
		for _, name := range experiments.SplitList(kernList) {
			k, err := kernels.ByName(name)
			if err != nil {
				return err
			}
			res, err := experiments.SurrogateComparison(k, m, mode)
			if err != nil {
				return err
			}
			report.AddSurrogateRuns(k.Name, m.Name, res)
			res.Render(w)
			fmt.Fprintln(w)
			cells++
			if res.SpeedupCold >= 2 || res.SpeedupWarm >= 2 {
				twofold++
			}
		}
	}
	fmt.Fprintf(w, "cells with >= 2x evaluations-to-equal-HV speedup: %d of %d\n", twofold, cells)

	if err := report.WriteFile(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "benchmark report written to %s\n", out)
	return nil
}
