// Command bruteforce exhaustively sweeps the tile/thread grid of one
// kernel on one machine, printing per-thread-count optima and the full
// Pareto front — the paper's §V-B.1 "brute force" methodology as a
// standalone tool.
//
// Usage:
//
//	bruteforce -kernel mm -machine Westmere [-points 24] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autotune/internal/experiments"
	"autotune/internal/export"
	"autotune/internal/kernels"
	"autotune/internal/machine"
)

func main() {
	kernel := flag.String("kernel", "mm", "kernel to sweep ("+strings.Join(kernels.Names(), ", ")+")")
	machineName := flag.String("machine", "Westmere", "target machine")
	mode := flag.String("mode", "full", "grid density (quick, full)")
	csv := flag.Bool("csv", false, "emit the Fig. 8 point cloud as CSV on stdout")
	flag.Parse()

	k, err := kernels.ByName(*kernel)
	if err != nil {
		fatal(err)
	}
	m, err := machine.ByName(*machineName)
	if err != nil {
		fatal(err)
	}
	md := experiments.Full
	if *mode == "quick" {
		md = experiments.Quick
	}

	if *csv {
		f8, err := experiments.Fig8(k, m, md)
		if err != nil {
			fatal(err)
		}
		if err := export.SeriesCSV(os.Stdout, f8.Series); err != nil {
			fatal(err)
		}
		return
	}

	t2, err := experiments.Table2(k, m, md)
	if err != nil {
		fatal(err)
	}
	t2.Render(os.Stdout)
	fmt.Println()
	t3, err := experiments.Table3(k, m, md)
	if err != nil {
		fatal(err)
	}
	t3.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bruteforce:", err)
	os.Exit(1)
}
