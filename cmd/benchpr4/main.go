// Command benchpr4 runs the persistent-tuning-database warm-start
// benchmark: for each kernel, a cold search populates a fresh database,
// an identical rerun warm-starts from it, and a clock/bandwidth variant
// of the machine measures cross-machine transfer. The JSON report
// records the new-evaluation counts (E), the warm runs' evaluation
// reduction and the per-machine normalized hypervolumes. The committed
// BENCH_pr4.json at the repository root is regenerated with:
//
//	go run ./cmd/benchpr4 -o BENCH_pr4.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"autotune/internal/experiments"
	"autotune/internal/kernels"
	"autotune/internal/machine"
)

func main() {
	out := flag.String("o", "BENCH_pr4.json", "output file")
	machName := flag.String("machine", "Westmere", "target machine")
	kernList := flag.String("kernels", "mm,jacobi-2d", "comma-separated kernels")
	modeName := flag.String("mode", "full", "evaluation budget (quick, full)")
	flag.Parse()

	if err := run(*out, *machName, *kernList, *modeName, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchpr4:", err)
		os.Exit(1)
	}
}

// run executes the benchmark and writes the JSON report to out; the
// rendered tables go to w. Separate from main so it is testable.
func run(out, machName, kernList, modeName string, w io.Writer) error {
	m, err := machine.ByName(machName)
	if err != nil {
		return err
	}
	mode := experiments.ModeByName(modeName)
	report := experiments.NewBenchReport(
		"persistent tuning database: cold vs warm-started search and cross-machine transfer",
		m.Name, modeName)

	for _, name := range experiments.SplitList(kernList) {
		k, err := kernels.ByName(name)
		if err != nil {
			return err
		}
		res, err := experiments.WarmStartComparison(k, m, mode)
		if err != nil {
			return err
		}
		report.AddWarmStartRuns(k.Name, res)
		res.Render(w)
		fmt.Fprintln(w)
	}

	if err := report.WriteFile(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "benchmark report written to %s\n", out)
	return nil
}
