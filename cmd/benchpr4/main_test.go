package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuick(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	if err := run(out, "Westmere", "mm", "quick", &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "Warm-start comparison: mm") {
		t.Errorf("rendered output missing comparison table:\n%s", sb.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var report struct {
		Benchmark string `json:"benchmark"`
		Runs      []struct {
			Kernel           string  `json:"kernel"`
			Label            string  `json:"label"`
			Evaluations      int     `json:"evaluations"`
			EvalReductionPct float64 `json:"eval_reduction_pct"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(report.Runs) != 4 {
		t.Fatalf("want 4 runs (cold, warm, variant cold, transfer), got %d", len(report.Runs))
	}
	if report.Runs[1].EvalReductionPct <= 0 {
		t.Errorf("warm rerun should report a positive eval reduction, got %v", report.Runs[1].EvalReductionPct)
	}
}

func TestRunBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run("x.json", "NoSuchMachine", "mm", "quick", &sb); err == nil {
		t.Error("unknown machine: expected error")
	}
	if err := run("x.json", "Westmere", "nosuchkernel", "quick", &sb); err == nil {
		t.Error("unknown kernel: expected error")
	}
}
