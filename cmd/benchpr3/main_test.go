package main

import (
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	cases := map[string][]string{
		"mm,jacobi-2d": {"mm", "jacobi-2d"},
		"mm":           {"mm"},
		"":             nil,
		",mm,,lu,":     {"mm", "lu"},
	}
	for in, want := range cases {
		if got := splitList(in); !reflect.DeepEqual(got, want) {
			t.Errorf("splitList(%q) = %v, want %v", in, got, want)
		}
	}
}
