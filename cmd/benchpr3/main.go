// Command benchpr3 runs the island-model serial-vs-parallel benchmark
// and writes the results as JSON (wall-clock, evaluation counts and
// hypervolume per configuration). The committed BENCH_pr3.json at the
// repository root is regenerated with:
//
//	go run ./cmd/benchpr3 -o BENCH_pr3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"autotune/internal/experiments"
	"autotune/internal/kernels"
	"autotune/internal/machine"
)

type runJSON struct {
	Kernel      string  `json:"kernel"`
	Label       string  `json:"label"`
	Islands     int     `json:"islands"`
	Generations int     `json:"generations"`
	WallClockMS float64 `json:"wall_clock_ms"`
	Speedup     float64 `json:"speedup_vs_serial"`
	Evaluations int     `json:"evaluations"`
	FrontSize   int     `json:"front_size"`
	Hypervolume float64 `json:"hypervolume"`
}

type reportJSON struct {
	Benchmark   string    `json:"benchmark"`
	Machine     string    `json:"machine"`
	Mode        string    `json:"mode"`
	EvalDelayMS float64   `json:"eval_delay_ms"`
	GoMaxProcs  int       `json:"gomaxprocs"`
	Runs        []runJSON `json:"runs"`
}

func main() {
	out := flag.String("o", "BENCH_pr3.json", "output file")
	machName := flag.String("machine", "Westmere", "target machine")
	kernList := flag.String("kernels", "mm,jacobi-2d", "comma-separated kernels")
	modeName := flag.String("mode", "full", "evaluation budget (quick, full)")
	flag.Parse()

	mode := experiments.Full
	if *modeName == "quick" {
		mode = experiments.Quick
	}
	m, err := machine.ByName(*machName)
	if err != nil {
		fatal(err)
	}

	report := reportJSON{
		Benchmark:  "island-model RS-GDE3: serial vs parallel at equal generation budget",
		Machine:    m.Name,
		Mode:       *modeName,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, name := range splitList(*kernList) {
		k, err := kernels.ByName(name)
		if err != nil {
			fatal(err)
		}
		res, err := experiments.IslandComparison(k, m, mode)
		if err != nil {
			fatal(err)
		}
		report.EvalDelayMS = float64(res.EvalDelay.Microseconds()) / 1000
		serial := res.Runs[0].WallClock
		for _, run := range res.Runs {
			speedup := 0.0
			if run.WallClock > 0 {
				speedup = float64(serial) / float64(run.WallClock)
			}
			report.Runs = append(report.Runs, runJSON{
				Kernel:      k.Name,
				Label:       run.Label,
				Islands:     run.Islands,
				Generations: run.Generations,
				WallClockMS: float64(run.WallClock.Microseconds()) / 1000,
				Speedup:     speedup,
				Evaluations: run.Evaluations,
				FrontSize:   run.FrontSize,
				Hypervolume: run.HV,
			})
		}
		res.Render(os.Stdout)
		fmt.Println()
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark report written to %s\n", *out)
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpr3:", err)
	os.Exit(1)
}
