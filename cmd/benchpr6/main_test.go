package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuick(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	if err := run(out, "Westmere", "mm", "quick", &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "Strategy race: mm") {
		t.Errorf("rendered output missing race table:\n%s", sb.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var report struct {
		Benchmark string `json:"benchmark"`
		Runs      []struct {
			Kernel      string  `json:"kernel"`
			Label       string  `json:"label"`
			Machine     string  `json:"machine"`
			Evaluations int     `json:"evaluations"`
			Hypervolume float64 `json:"hypervolume"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	// One run per registered strategy plus the race itself.
	if len(report.Runs) != 6 {
		t.Fatalf("want 6 runs (5 strategies + race), got %d", len(report.Runs))
	}
	race := report.Runs[len(report.Runs)-1]
	if !strings.HasPrefix(race.Label, "race") {
		t.Fatalf("last run is %q, want the race", race.Label)
	}
	if race.Evaluations <= 0 || race.Hypervolume <= 0 {
		t.Errorf("race run has no work recorded: %+v", race)
	}
}

func TestRunBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run("x.json", "NoSuchMachine", "mm", "quick", &sb); err == nil {
		t.Error("unknown machine: expected error")
	}
	if err := run("x.json", "Westmere", "nosuchkernel", "quick", &sb); err == nil {
		t.Error("unknown kernel: expected error")
	}
}
