// Command benchpr6 runs the strategy-racing benchmark: for each kernel
// and machine preset, every registered strategy runs alone at its full
// budget, then the racing meta-optimizer runs all of them over one
// shared evaluation cache with a hard cap equal to the largest single
// run's evaluation count. The JSON report records, per run, the
// distinct successful evaluations (E), the front size, and the
// hypervolume normalized over the pooled objective bounds — equal-E
// evidence that the race meets or beats the best single strategy. The
// committed BENCH_pr6.json at the repository root is regenerated with:
//
//	go run ./cmd/benchpr6 -o BENCH_pr6.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"autotune/internal/experiments"
	"autotune/internal/kernels"
	"autotune/internal/machine"
)

func main() {
	out := flag.String("o", "BENCH_pr6.json", "output file")
	machList := flag.String("machines", "Westmere,Barcelona", "comma-separated machine presets")
	kernList := flag.String("kernels", "mm,2mm", "comma-separated kernels")
	modeName := flag.String("mode", "full", "evaluation budget (quick, full)")
	flag.Parse()

	if err := run(*out, *machList, *kernList, *modeName, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchpr6:", err)
		os.Exit(1)
	}
}

// run executes the benchmark and writes the JSON report to out; the
// rendered tables go to w. Separate from main so it is testable.
func run(out, machList, kernList, modeName string, w io.Writer) error {
	mode := experiments.ModeByName(modeName)
	report := experiments.NewBenchReport(
		"strategy racing: portfolio meta-optimizer vs each single strategy at an equal evaluation budget",
		machList, modeName)

	for _, mName := range experiments.SplitList(machList) {
		m, err := machine.ByName(mName)
		if err != nil {
			return err
		}
		for _, name := range experiments.SplitList(kernList) {
			k, err := kernels.ByName(name)
			if err != nil {
				return err
			}
			res, err := experiments.RaceComparison(k, m, mode)
			if err != nil {
				return err
			}
			report.AddRaceRuns(k.Name, m.Name, res)
			res.Render(w)
			fmt.Fprintln(w)
		}
	}

	if err := report.WriteFile(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "benchmark report written to %s\n", out)
	return nil
}
