package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunQuick executes the full benchmark pipeline at its smallest
// size — both engines populated, measured and merged, crash sweeps run,
// JSON report written — and checks the report's acceptance shape.
func TestRunQuick(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf strings.Builder
	if err := run(out, "quick", &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Sizes) != 1 {
		t.Fatalf("quick mode ran %d sizes", len(report.Sizes))
	}
	res := report.Sizes[0]
	if res.Records < 9000 {
		t.Fatalf("quick size = %d records", res.Records)
	}
	// The headline claim: opening the store reads segment metadata, not
	// the whole database; at 10^4 records it must already be >= 10x
	// faster than replaying the v1 journal.
	if res.OpenSpeedup < 10 {
		t.Fatalf("open speedup %.1fx, want >= 10x", res.OpenSpeedup)
	}
	if res.V1.GetUS <= 0 || res.Store.GetUS <= 0 || res.Store.IterMS <= 0 {
		t.Fatalf("missing measurements: %+v", res)
	}
	for name, status := range report.CrashSweeps {
		if status != "pass" {
			t.Fatalf("crash sweep %s: %s", name, status)
		}
	}
	if len(report.CrashSweeps) != 2 {
		t.Fatalf("expected 2 crash sweeps, got %v", report.CrashSweeps)
	}
	if !strings.Contains(buf.String(), "open speedup") {
		t.Fatalf("rendered output incomplete:\n%s", buf.String())
	}
}

func TestSweepsDirectly(t *testing.T) {
	if err := walTruncateSweep(); err != nil {
		t.Fatal(err)
	}
	if err := segmentTruncateSweep(); err != nil {
		t.Fatal(err)
	}
}
