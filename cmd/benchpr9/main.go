// Command benchpr9 benchmarks the tunedb storage engines against each
// other: the frozen v1 append-only JSONL journal (internal/tunedb/v1)
// versus the live sharded LSM store (internal/tunedb on
// internal/store). For each database size it populates both engines
// with an identical synthetic workload (100 evaluations plus one
// Pareto front per program key) and measures populate, open, point-get,
// full-iteration and merge latency, plus the heap retained by an open
// database and its disk footprint. The report also runs two quick
// crash sweeps — WAL truncate-at-every-byte and segment
// truncate-at-every-stride — so the durability claims are checked by
// the same binary that makes the performance ones.
//
// The committed BENCH_pr9.json at the repository root is regenerated
// with:
//
//	go run ./cmd/benchpr9 -o BENCH_pr9.json
//
// CI runs the quick mode (-mode quick: the smallest size only).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"autotune/internal/machine"
	"autotune/internal/skeleton"
	"autotune/internal/store"
	"autotune/internal/tunedb"
	v1 "autotune/internal/tunedb/v1"
)

func main() {
	out := flag.String("o", "BENCH_pr9.json", "output file")
	modeName := flag.String("mode", "full", "sizes to run (quick: 1e4; full: 1e4,1e5,1e6)")
	flag.Parse()
	if err := run(*out, *modeName, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchpr9:", err)
		os.Exit(1)
	}
}

// EngineResult is one engine's measurements at one database size.
type EngineResult struct {
	PopulateMS float64 `json:"populate_ms"`
	OpenMS     float64 `json:"open_ms"`
	OpenHeapMB float64 `json:"open_heap_mb"`
	GetUS      float64 `json:"get_us"`
	IterMS     float64 `json:"iter_ms"`
	MergeMS    float64 `json:"merge_ms"`
	DiskBytes  int64   `json:"disk_bytes"`
}

// SizeResult compares both engines at one database size.
type SizeResult struct {
	Records     int          `json:"records"`
	V1          EngineResult `json:"v1"`
	Store       EngineResult `json:"store"`
	OpenSpeedup float64      `json:"open_speedup"`
}

// Report is the benchpr9 JSON schema.
type Report struct {
	Description string `json:"description"`
	Mode        string `json:"mode"`
	GoVersion   string `json:"go_version"`

	Sizes []SizeResult `json:"sizes"`

	// StoreGetFlatness is max/min point-get latency for the store
	// engine across sizes: the scalability claim is that lookups stay
	// flat (within 2x) as the database grows 100x.
	StoreGetFlatness float64 `json:"store_get_flatness"`

	CrashSweeps map[string]string `json:"crash_sweeps"`
}

func run(out, modeName string, w io.Writer) error {
	sizes := []int{10_000, 100_000, 1_000_000}
	if modeName == "quick" {
		sizes = []int{10_000}
	}
	report := Report{
		Description: "tunedb storage engines: v1 JSONL journal vs sharded LSM store (populate/open/get/iter/merge, open-heap, disk)",
		Mode:        modeName,
		GoVersion:   runtime.Version(),
		CrashSweeps: map[string]string{},
	}

	for _, n := range sizes {
		fmt.Fprintf(w, "== %d records ==\n", n)
		res, err := benchSize(n)
		if err != nil {
			return err
		}
		report.Sizes = append(report.Sizes, res)
		render(w, res)
	}
	minGet, maxGet := report.Sizes[0].Store.GetUS, report.Sizes[0].Store.GetUS
	for _, s := range report.Sizes {
		if s.Store.GetUS < minGet {
			minGet = s.Store.GetUS
		}
		if s.Store.GetUS > maxGet {
			maxGet = s.Store.GetUS
		}
	}
	if minGet > 0 {
		report.StoreGetFlatness = maxGet / minGet
	}
	fmt.Fprintf(w, "store point-get flatness across sizes: %.2fx\n", report.StoreGetFlatness)

	fmt.Fprintln(w, "== crash sweeps ==")
	report.CrashSweeps["wal_truncate_every_byte"] = sweepStatus(walTruncateSweep())
	report.CrashSweeps["segment_truncate"] = sweepStatus(segmentTruncateSweep())
	for name, status := range report.CrashSweeps {
		fmt.Fprintf(w, "%-28s %s\n", name, status)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "benchmark report written to %s\n", out)
	return nil
}

func render(w io.Writer, res SizeResult) {
	fmt.Fprintf(w, "%-8s %12s %12s %12s %10s %10s %10s %12s\n",
		"engine", "populate", "open", "open-heap", "get", "iter", "merge", "disk")
	for _, row := range []struct {
		name string
		r    EngineResult
	}{{"v1", res.V1}, {"store", res.Store}} {
		fmt.Fprintf(w, "%-8s %10.1fms %10.1fms %10.2fMB %8.2fus %8.1fms %8.1fms %12d\n",
			row.name, row.r.PopulateMS, row.r.OpenMS, row.r.OpenHeapMB,
			row.r.GetUS, row.r.IterMS, row.r.MergeMS, row.r.DiskBytes)
	}
	fmt.Fprintf(w, "open speedup: %.1fx\n\n", res.OpenSpeedup)
}

func sweepStatus(err error) string {
	if err != nil {
		return "FAIL: " + err.Error()
	}
	return "pass"
}

// workload describes the synthetic dataset: nKeys program keys with
// evalsPerKey evaluations and one front each.
const evalsPerKey = 99 // +1 front = 100 records per key

func benchKey(i int) tunedb.Key {
	return tunedb.Key{
		Fingerprint: fmt.Sprintf("pg%016x", i+1),
		MachineSig:  machine.SignatureOf(machine.Westmere()).Key(),
		Objectives:  "time+resources",
		SpaceHash:   "sp0000000000000001",
	}
}

func benchFront(key tunedb.Key) tunedb.FrontRecord {
	return tunedb.FrontRecord{
		Key:            key,
		Machine:        machine.SignatureOf(machine.Westmere()),
		ObjectiveNames: []string{"time", "resources"},
		Points: []tunedb.FrontPoint{
			{Config: []int64{64, 64, 8}, Objectives: []float64{0.5, 8}},
			{Config: []int64{32, 32, 16}, Objectives: []float64{0.3, 16}},
		},
		Evaluations: evalsPerKey,
		Iterations:  10,
	}
}

func benchCfg(i int) skeleton.Config { return skeleton.Config{int64(i + 1), 64, 8} }
func benchObjs(i int) []float64      { return []float64{float64(i) * 0.01, 8} }

// putter is the write surface both engines share.
type putter interface {
	PutEval(key tunedb.Key, cfg skeleton.Config, objs []float64) error
	PutFront(rec tunedb.FrontRecord) error
}

// populate writes nKeys*(evalsPerKey+1) records. keyOff offsets the
// fingerprints so merge sources are disjoint from the main dataset.
func populate(db putter, nKeys, keyOff int) error {
	for k := 0; k < nKeys; k++ {
		key := benchKey(k + keyOff)
		for i := 0; i < evalsPerKey; i++ {
			if err := db.PutEval(key, benchCfg(i), benchObjs(i)); err != nil {
				return err
			}
		}
		if err := db.PutFront(benchFront(key)); err != nil {
			return err
		}
	}
	return nil
}

func dirBytes(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total
}

// heapMB returns retained heap after a GC, in MiB.
func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

func benchSize(records int) (SizeResult, error) {
	nKeys := records / (evalsPerKey + 1)
	if nKeys < 1 {
		nKeys = 1
	}
	res := SizeResult{Records: nKeys * (evalsPerKey + 1)}
	rng := rand.New(rand.NewSource(9))
	getSamples := 2000
	if getSamples > records {
		getSamples = records
	}

	root, err := os.MkdirTemp("", "benchpr9-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(root)

	// ---- v1 engine ----
	{
		dir := filepath.Join(root, "v1")
		start := time.Now()
		db, err := v1.Open(dir)
		if err != nil {
			return res, err
		}
		if err := populate(db, nKeys, 0); err != nil {
			return res, err
		}
		if err := db.Close(); err != nil {
			return res, err
		}
		res.V1.PopulateMS = msSince(start)
		res.V1.DiskBytes = dirBytes(dir)

		before := heapMB()
		start = time.Now()
		db, err = v1.Open(dir)
		if err != nil {
			return res, err
		}
		res.V1.OpenMS = msSince(start)
		res.V1.OpenHeapMB = heapMB() - before

		start = time.Now()
		for i := 0; i < getSamples; i++ {
			key := benchKey(rng.Intn(nKeys))
			if _, ok := db.GetEval(key, benchCfg(rng.Intn(evalsPerKey))); !ok {
				return res, fmt.Errorf("v1 get miss")
			}
		}
		res.V1.GetUS = usSince(start) / float64(getSamples)

		start = time.Now()
		count := 0
		db.ScanEvals(func(string, skeleton.Config, []float64) bool { count++; return true })
		res.V1.IterMS = msSince(start)
		if count != nKeys*evalsPerKey {
			return res, fmt.Errorf("v1 iter saw %d evals, want %d", count, nKeys*evalsPerKey)
		}

		// Merge a disjoint source a tenth the size, v1-style: adopt
		// record by record through the public API.
		srcDir := filepath.Join(root, "v1-src")
		src, err := v1.Open(srcDir)
		if err != nil {
			return res, err
		}
		srcKeys := nKeys/10 + 1
		if err := populate(src, srcKeys, nKeys); err != nil {
			return res, err
		}
		srcByKS := map[string]tunedb.Key{}
		for _, k := range src.Keys() {
			srcByKS[k.String()] = k
		}
		start = time.Now()
		err = nil
		src.ScanEvals(func(ks string, cfg skeleton.Config, objs []float64) bool {
			if k, ok := srcByKS[ks]; ok {
				if _, exists := db.GetEval(k, cfg); !exists {
					err = db.PutEval(k, cfg, objs)
				}
			}
			return err == nil
		})
		if err != nil {
			return res, err
		}
		for _, k := range src.Keys() {
			if rec, ok := src.Front(k); ok {
				if _, exists := db.Front(k); !exists {
					if err := db.PutFront(rec); err != nil {
						return res, err
					}
				}
			}
		}
		res.V1.MergeMS = msSince(start)
		src.Close()
		if err := db.Close(); err != nil {
			return res, err
		}
	}

	// ---- store engine ----
	{
		dir := filepath.Join(root, "store")
		start := time.Now()
		db, err := tunedb.Open(dir)
		if err != nil {
			return res, err
		}
		if err := populate(db, nKeys, 0); err != nil {
			return res, err
		}
		if err := db.Close(); err != nil {
			return res, err
		}
		res.Store.PopulateMS = msSince(start)
		res.Store.DiskBytes = dirBytes(dir)

		before := heapMB()
		start = time.Now()
		db, err = tunedb.Open(dir)
		if err != nil {
			return res, err
		}
		res.Store.OpenMS = msSince(start)
		res.Store.OpenHeapMB = heapMB() - before

		start = time.Now()
		for i := 0; i < getSamples; i++ {
			key := benchKey(rng.Intn(nKeys))
			if _, ok := db.GetEval(key, benchCfg(rng.Intn(evalsPerKey))); !ok {
				return res, fmt.Errorf("store get miss")
			}
		}
		res.Store.GetUS = usSince(start) / float64(getSamples)

		start = time.Now()
		count := 0
		if err := db.ScanEvals("", func(string, skeleton.Config, []float64) bool { count++; return true }); err != nil {
			return res, err
		}
		res.Store.IterMS = msSince(start)
		if count != nKeys*evalsPerKey {
			return res, fmt.Errorf("store iter saw %d evals, want %d", count, nKeys*evalsPerKey)
		}

		srcDir := filepath.Join(root, "store-src")
		src, err := tunedb.Open(srcDir)
		if err != nil {
			return res, err
		}
		srcKeys := nKeys/10 + 1
		if err := populate(src, srcKeys, nKeys); err != nil {
			return res, err
		}
		if err := src.Close(); err != nil {
			return res, err
		}
		start = time.Now()
		if _, _, err := db.Merge(srcDir); err != nil {
			return res, err
		}
		res.Store.MergeMS = msSince(start)
		if err := db.Close(); err != nil {
			return res, err
		}
	}

	if res.Store.OpenMS > 0 {
		res.OpenSpeedup = res.V1.OpenMS / res.Store.OpenMS
	}
	return res, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }
func usSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1000 }

// walTruncateSweep is the in-binary durability check: a small store's
// WAL is truncated at every byte; each cut must open cleanly and keep
// every record whose frame lies wholly before the cut.
func walTruncateSweep() error {
	root, err := os.MkdirTemp("", "benchpr9-sweep-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	opt := store.Options{Shards: 1, NoBackgroundCompaction: true}
	ref := filepath.Join(root, "ref")
	st, err := store.Open(ref, opt)
	if err != nil {
		return err
	}
	const n = 6
	frameLens := make([]int, n)
	for i := 0; i < n; i++ {
		k, v := fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i)
		frameLens[i] = 8 + 4 + len(k) + 4 + len(v)
		if err := st.Put(k, []byte(v)); err != nil {
			return err
		}
	}
	if err := st.Sync(); err != nil {
		return err
	}
	walPath := filepath.Join(ref, "shard-00", "wal.log")
	wal, err := os.ReadFile(walPath)
	if err != nil {
		return err
	}
	// Close AFTER capturing the WAL image (close flushes it away).
	if err := st.Close(); err != nil {
		return err
	}
	for cut := 0; cut <= len(wal); cut++ {
		dir := filepath.Join(root, fmt.Sprintf("cut-%04d", cut))
		if err := os.MkdirAll(filepath.Join(dir, "shard-00"), 0o755); err != nil {
			return err
		}
		if err := copyFile(filepath.Join(ref, "meta.json"), filepath.Join(dir, "meta.json")); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "shard-00", "wal.log"), wal[:cut], 0o644); err != nil {
			return err
		}
		st, err := store.Open(dir, opt)
		if err != nil {
			return fmt.Errorf("cut %d: %w", cut, err)
		}
		want := 0
		for sum := 0; want < n && sum+frameLens[want] <= cut; want++ {
			sum += frameLens[want]
		}
		got := 0
		it := st.Iter("")
		for it.Next() {
			got++
		}
		iterErr := it.Err()
		it.Close()
		st.Close()
		if iterErr != nil {
			return fmt.Errorf("cut %d: %w", cut, iterErr)
		}
		if got != want {
			return fmt.Errorf("cut %d: recovered %d records, want %d", cut, got, want)
		}
		os.RemoveAll(dir)
	}
	return nil
}

// segmentTruncateSweep truncates a segment file at every 64-byte stride
// (and every byte of the last 128): open must fail cleanly, never
// panic or silently serve partial data.
func segmentTruncateSweep() error {
	root, err := os.MkdirTemp("", "benchpr9-sweep-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	opt := store.Options{Shards: 1, NoBackgroundCompaction: true}
	ref := filepath.Join(root, "ref")
	st, err := store.Open(ref, opt)
	if err != nil {
		return err
	}
	for i := 0; i < 50; i++ {
		if err := st.Put(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf("value-%04d", i))); err != nil {
			return err
		}
	}
	if err := st.Close(); err != nil { // close flushes to one segment
		return err
	}
	shardDir := filepath.Join(ref, "shard-00")
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		return err
	}
	segPath := ""
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			segPath = filepath.Join(shardDir, e.Name())
		}
	}
	if segPath == "" {
		return fmt.Errorf("no segment written")
	}
	seg, err := os.ReadFile(segPath)
	if err != nil {
		return err
	}
	for cut := 0; cut < len(seg); cut++ {
		if cut%64 != 0 && cut < len(seg)-128 {
			continue
		}
		dir := filepath.Join(root, "cut")
		os.RemoveAll(dir)
		if err := os.MkdirAll(filepath.Join(dir, "shard-00"), 0o755); err != nil {
			return err
		}
		if err := copyFile(filepath.Join(ref, "meta.json"), filepath.Join(dir, "meta.json")); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "shard-00", filepath.Base(segPath)), seg[:cut], 0o644); err != nil {
			return err
		}
		if st, err := store.Open(dir, opt); err == nil {
			st.Close()
			return fmt.Errorf("truncated segment (cut %d/%d) opened without error", cut, len(seg))
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}
