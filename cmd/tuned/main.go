// Command tuned is the multi-tenant tuning service: a long-running
// HTTP server that schedules concurrent auto-tuning searches over a
// bounded worker pool, plus the matching command-line client.
//
// Server:
//
//	tuned serve -addr 127.0.0.1:8080 -state ./tuned-state
//
// Clients submit jobs, poll or stream progress, and fetch finished
// Pareto fronts:
//
//	tuned submit -server http://127.0.0.1:8080 -kernel mm -seed 1 -wait
//	tuned status -server http://127.0.0.1:8080 -id j000000
//	tuned front  -server http://127.0.0.1:8080 -id j000000
//	tuned drain  -server http://127.0.0.1:8080
//
// SIGTERM (or POST /v1/drain) drains the server gracefully: running
// searches checkpoint at their next generation boundary, queued jobs
// stay persisted, and the next `tuned serve` over the same -state
// directory resumes every interrupted job to a byte-identical front.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autotune/internal/server"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches one CLI invocation; main_test drives it in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch cmd := args[0]; cmd {
	case "serve":
		err = runServe(ctx, args[1:], stdout, stderr)
	case "submit":
		err = runSubmit(ctx, args[1:], stdout, stderr)
	case "status":
		err = runStatus(ctx, args[1:], stdout, stderr)
	case "front":
		err = runFront(ctx, args[1:], stdout, stderr)
	case "drain":
		err = runDrain(ctx, args[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "tuned: unknown command %q\n\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 2
		}
		fmt.Fprintln(stderr, "tuned:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `tuned - multi-tenant tuning service

Usage:
  tuned serve  -addr HOST:PORT -state DIR [-workers N] [-max-queued N] [-max-running N] [-no-warm]
  tuned submit -server URL (-kernel NAME | -program FILE) [search flags] [-wait]
  tuned status -server URL [-id JOB]
  tuned front  -server URL -id JOB
  tuned drain  -server URL

Run "tuned COMMAND -h" for each command's flags.
`)
}

// notifyListening and serveConfigHook are in-process test seams:
// the first receives the bound address once the server listens, the
// second may adjust the orchestrator configuration (production keeps
// both nil).
var (
	notifyListening func(net.Addr)
	serveConfigHook func(*server.Config)
)

func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tuned serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	state := fs.String("state", "tuned-state", "durable state directory: job records, checkpoints, shared tuning database")
	workers := fs.Int("workers", 0, "concurrently running searches (0 = default 2)")
	maxQueued := fs.Int("max-queued", 0, "per-tenant queued-job quota, 429 beyond it (0 = default 16)")
	maxRunning := fs.Int("max-running", 0, "per-tenant running-search quota (0 = workers)")
	noWarm := fs.Bool("no-warm", false, "disable warm starts from the shared tuning database")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := server.Config{
		StateDir:            *state,
		Workers:             *workers,
		MaxQueuedPerTenant:  *maxQueued,
		MaxRunningPerTenant: *maxRunning,
		NoWarmStart:         *noWarm,
	}
	if serveConfigHook != nil {
		serveConfigHook(&cfg)
	}
	orch, err := server.NewOrchestrator(cfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		orch.Drain()
		return err
	}
	fmt.Fprintf(stdout, "tuned: serving on http://%s (state %s)\n", l.Addr(), *state)
	// SIGTERM/SIGINT begin the graceful drain; Serve returns once the
	// running searches have checkpointed and the listener is closed.
	sctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Announce the address only once the signal handler is installed,
	// so a test may SIGTERM as soon as it learns where to connect.
	if notifyListening != nil {
		notifyListening(l.Addr())
	}
	err = server.New(orch).Serve(sctx, l)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "tuned: drained, state persisted")
	return nil
}

func runSubmit(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tuned submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	srv := fs.String("server", "http://127.0.0.1:8080", "server base URL")
	tenant := fs.String("tenant", "", "tenant name for quota accounting (empty = default)")
	kernel := fs.String("kernel", "", "built-in kernel to tune")
	program := fs.String("program", "", "MiniIR program file to tune instead of a built-in kernel")
	machineName := fs.String("machine", "", "target machine (empty = Westmere)")
	method := fs.String("method", "", "search method (empty = rs-gde3)")
	seed := fs.Int64("seed", 0, "random seed")
	n := fs.Int64("n", 0, "problem size (0 = kernel default)")
	pop := fs.Int("pop", 0, "population size (0 = library default)")
	iters := fs.Int("iterations", 0, "max optimizer iterations (0 = library default)")
	stagnation := fs.Int("stagnation", 0, "stagnation window (0 = library default)")
	islands := fs.Int("islands", 0, "parallel search islands")
	migrate := fs.Int("migrate", 0, "generations between island migrations")
	budget := fs.Int("budget", 0, "random/grid evaluation budget")
	energy := fs.Bool("energy", false, "add the energy objective")
	surrogate := fs.Bool("surrogate", false, "surrogate pre-screening")
	screenTopK := fs.Int("screen-topk", 0, "with -surrogate: admitted candidates per batch")
	noise := fs.Float64("noise", 0, "simulated measurement-noise amplitude")
	deadline := fs.String("deadline", "", "per-job search deadline (Go duration, e.g. 30s)")
	noWarm := fs.Bool("no-warm", false, "disable the warm start for this job")
	force := fs.Bool("force", false, "run a fresh search even if an identical one exists")
	wait := fs.Bool("wait", false, "poll until the job finishes")
	poll := fs.Duration("poll", 200*time.Millisecond, "with -wait: polling interval")
	retries := fs.Int("retries", 0, "retry shed submissions (429/503) with jittered backoff, honoring Retry-After (0 = fail fast)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := &server.JobRequest{
		Tenant:        *tenant,
		Kernel:        *kernel,
		Machine:       *machineName,
		Method:        *method,
		Seed:          *seed,
		N:             *n,
		PopSize:       *pop,
		MaxIterations: *iters,
		Stagnation:    *stagnation,
		Islands:       *islands,
		Migrate:       *migrate,
		RandomBudget:  *budget,
		Energy:        *energy,
		Surrogate:     *surrogate,
		ScreenTopK:    *screenTopK,
		Noise:         *noise,
		Deadline:      *deadline,
		Force:         *force,
	}
	if *program != "" {
		src, err := os.ReadFile(*program)
		if err != nil {
			return err
		}
		req.Source = string(src)
	}
	if *noWarm {
		f := false
		req.WarmStart = &f
	}
	c := &server.Client{BaseURL: *srv}
	var st server.JobStatus
	var err error
	if *retries > 0 {
		// Safe to retry: identical requests share a dedup key, so a
		// retry racing an accepted submission joins the existing job.
		st, err = c.SubmitRetry(ctx, req, server.RetryPolicy{MaxAttempts: 1 + *retries})
	} else {
		st, err = c.Submit(ctx, req)
	}
	if err != nil {
		return err
	}
	dedup := ""
	if st.Deduped {
		dedup = " deduped"
	}
	fmt.Fprintf(stdout, "%s %s%s\n", st.ID, st.State, dedup)
	if !*wait {
		return nil
	}
	st, err = c.Wait(ctx, st.ID, *poll)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s %s evaluations=%d\n", st.ID, st.State, st.Evaluations)
	if st.State == server.StateFailed {
		return fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	return nil
}

func runStatus(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tuned status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	srv := fs.String("server", "http://127.0.0.1:8080", "server base URL")
	id := fs.String("id", "", "job ID (empty = list every job)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := &server.Client{BaseURL: *srv}
	if *id != "" {
		st, err := c.Status(ctx, *id)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	jobs, err := c.List(ctx)
	if err != nil {
		return err
	}
	for _, st := range jobs {
		extra := ""
		if st.Error != "" {
			extra = "  " + st.Error
		}
		fmt.Fprintf(stdout, "%-8s %-12s %-11s evaluations=%d%s\n",
			st.ID, st.Tenant, st.State, st.Evaluations, extra)
	}
	return nil
}

func runFront(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tuned front", flag.ContinueOnError)
	fs.SetOutput(stderr)
	srv := fs.String("server", "http://127.0.0.1:8080", "server base URL")
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("front: -id is required")
	}
	c := &server.Client{BaseURL: *srv}
	front, err := c.Front(ctx, *id)
	if err != nil {
		return err
	}
	_, err = stdout.Write(front)
	return err
}

func runDrain(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tuned drain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	srv := fs.String("server", "http://127.0.0.1:8080", "server base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := &server.Client{BaseURL: *srv}
	if err := c.Drain(ctx); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "draining")
	return nil
}
