package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"autotune/internal/server"
)

// syncBuffer is a mutex-guarded buffer: the serve goroutine writes
// while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunUsageAndErrors(t *testing.T) {
	ctx := context.Background()
	var out, errb bytes.Buffer
	if code := run(ctx, nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	if code := run(ctx, []string{"bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown command: exit %d", code)
	}
	if code := run(ctx, []string{"help"}, &out, &errb); code != 0 {
		t.Fatalf("help: exit %d", code)
	}
	if !strings.Contains(out.String(), "tuned serve") {
		t.Fatalf("help text missing serve usage:\n%s", out.String())
	}
	// A client command against a dead server is an error, not a hang.
	if code := run(ctx, []string{"status", "-server", "http://127.0.0.1:1"}, &out, &errb); code != 1 {
		t.Fatalf("dead server: exit %d", code)
	}
	if code := run(ctx, []string{"front", "-server", "http://127.0.0.1:1"}, &out, &errb); code != 1 {
		t.Fatalf("front without -id: exit %d\n%s", code, errb.String())
	}
}

// startServe launches `tuned serve` in-process on an ephemeral port
// and returns the base URL plus the command's exit-code channel.
func startServe(t *testing.T, state string, hook func(*server.Config)) (string, chan int) {
	t.Helper()
	addrc := make(chan net.Addr, 1)
	notifyListening = func(a net.Addr) { addrc <- a }
	serveConfigHook = hook
	t.Cleanup(func() { notifyListening = nil; serveConfigHook = nil })
	exit := make(chan int, 1)
	var out syncBuffer
	go func() {
		exit <- run(context.Background(),
			[]string{"serve", "-addr", "127.0.0.1:0", "-state", state, "-workers", "1", "-no-warm"},
			&out, io.Discard)
	}()
	select {
	case a := <-addrc:
		return "http://" + a.String(), exit
	case code := <-exit:
		t.Fatalf("serve exited early with %d:\n%s", code, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("serve never started listening")
	}
	return "", nil
}

// cliFront fetches a job's front through the CLI client and returns
// the raw bytes it printed.
func cliFront(t *testing.T, url, id string) []byte {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"front", "-server", url, "-id", id}, &out, &errb); code != 0 {
		t.Fatalf("front: exit %d\n%s", code, errb.String())
	}
	return out.Bytes()
}

// TestServeSIGTERMDrainResume is the CLI-level acceptance test: a
// SIGTERM mid-search drains the server gracefully (the search
// checkpoints), and a restarted `tuned serve` over the same state
// directory resumes the job to the front an uninterrupted server
// produces, byte for byte.
func TestServeSIGTERMDrainResume(t *testing.T) {
	ctx := context.Background()
	submitArgs := func(url string, wait bool) []string {
		args := []string{"submit", "-server", url, "-kernel", "mm", "-seed", "7",
			"-pop", "24", "-iterations", "40", "-stagnation", "40"}
		if wait {
			args = append(args, "-wait", "-poll", "10ms")
		}
		return args
	}

	// Reference: the same job on a fresh server, uninterrupted.
	refURL, refExit := startServe(t, t.TempDir(), nil)
	var out, errb bytes.Buffer
	if code := run(ctx, submitArgs(refURL, true), &out, &errb); code != 0 {
		t.Fatalf("reference submit: exit %d\n%s", code, errb.String())
	}
	id := strings.Fields(out.String())[0]
	refFront := cliFront(t, refURL, id)
	if code := run(ctx, []string{"drain", "-server", refURL}, &out, &errb); code != 0 {
		t.Fatalf("drain: exit %d\n%s", code, errb.String())
	}
	select {
	case <-refExit:
	case <-time.After(60 * time.Second):
		t.Fatal("reference server never exited after drain")
	}

	// Interrupted run: stall the search once it is past the first full
	// generation so the SIGTERM lands mid-search with a complete
	// checkpoint snapshot on disk.
	state := t.TempDir()
	var once sync.Once
	gateHit := make(chan struct{})
	release := make(chan struct{})
	url, exit := startServe(t, state, func(cfg *server.Config) {
		cfg.EvalHook = func(jobID string, n int) {
			if n >= 50 {
				once.Do(func() { close(gateHit) })
				<-release
			}
		}
	})
	if code := run(ctx, submitArgs(url, false), &out, &errb); code != 0 {
		t.Fatalf("submit: exit %d\n%s", code, errb.String())
	}
	select {
	case <-gateHit:
	case <-time.After(60 * time.Second):
		t.Fatal("search never reached the gate")
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Wait for the drain to cancel the running search before letting
	// the stalled evaluations go.
	c := &server.Client{BaseURL: url}
	deadline := time.Now().Add(60 * time.Second)
	for {
		status, err := c.Healthz(ctx)
		if err == nil && status == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported draining (last %q, %v)", status, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("SIGTERM drain exited with %d", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server never exited after SIGTERM")
	}

	// Restart over the same state: the interrupted job resumes from
	// its checkpoint and finishes.
	url2, exit2 := startServe(t, state, nil)
	c2 := &server.Client{BaseURL: url2}
	wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	st, err := c2.Wait(wctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("resumed job: %s (%s)", st.State, st.Error)
	}
	got := cliFront(t, url2, id)
	if !bytes.Equal(got, refFront) {
		t.Fatalf("resumed front differs from the uninterrupted server's:\nresumed:\n%s\nreference:\n%s", got, refFront)
	}
	out.Reset()
	if code := run(ctx, []string{"status", "-server", url2}, &out, &errb); code != 0 {
		t.Fatalf("status list: exit %d\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), id) || !strings.Contains(out.String(), "done") {
		t.Fatalf("status listing missing the finished job:\n%s", out.String())
	}
	if code := run(ctx, []string{"drain", "-server", url2}, &out, &errb); code != 0 {
		t.Fatalf("final drain: exit %d\n%s", code, errb.String())
	}
	select {
	case <-exit2:
	case <-time.After(60 * time.Second):
		t.Fatal("restarted server never exited after drain")
	}
}
