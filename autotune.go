// Package autotune is the public API of the multi-objective
// auto-tuning framework for parallel codes — a reproduction of Jordan
// et al., "A Multi-Objective Auto-Tuning Framework for Parallel Codes"
// (SC 2012).
//
// The framework tunes parallel loop nests for several conflicting
// objectives at once (execution time, parallel efficiency/resource
// usage, optionally energy). Its static optimizer, RS-GDE3, combines
// Generalized Differential Evolution 3 with a Rough-Set-based
// search-space reduction and returns a Pareto set of configurations;
// the multi-versioning backend packages one specialized code version
// per Pareto point into a Unit whose version is chosen at run time by
// a configurable policy.
//
// Quick start:
//
//	res, err := autotune.Tune("mm", autotune.WithMachine("Westmere"))
//	// res.Unit holds the Pareto-optimal versions with metadata.
//	rt, err := autotune.NewRuntime(res.Unit, autotune.WeightedSum{Weights: []float64{1, 1}})
//	rt.Invoke() // selects and executes a version
//
// Six benchmark kernels are built in (the paper's mm, dsyrk,
// jacobi-2d, 3d-stencil and n-body plus a 2mm extension), each
// available both as an analytical performance-model target
// (deterministic, fast — the paper-replication path) and as a real
// goroutine-parallel implementation for measured tuning. Custom search
// problems plug in through Optimize (any parameter Space and
// Evaluator); arbitrary loop nests plug in through TuneSource (a text
// program format with an automatically derived model); several regions
// tune simultaneously through TuneAll.
package autotune

import (
	"context"
	"fmt"
	"time"

	"autotune/internal/codegen"
	"autotune/internal/driver"
	"autotune/internal/ir"
	"autotune/internal/irparse"
	"autotune/internal/kernels"
	"autotune/internal/machine"
	"autotune/internal/multiversion"
	"autotune/internal/objective"
	"autotune/internal/optimizer"
	"autotune/internal/pareto"
	"autotune/internal/rts"
	"autotune/internal/skeleton"
	"autotune/internal/tunedb"
)

// Re-exported core types. The aliases make the internal packages'
// documented types part of the public surface without duplication.
type (
	// Machine describes a tuning target system.
	Machine = machine.Machine
	// Unit is a multi-versioned compilation result: one code version
	// per Pareto point plus selection metadata.
	Unit = multiversion.Unit
	// Version is one specialized code version within a Unit.
	Version = multiversion.Version
	// Meta is the per-version trade-off metadata.
	Meta = multiversion.Meta
	// Entry is an executable version entry point.
	Entry = multiversion.Entry
	// Space is an integer parameter search space.
	Space = skeleton.Space
	// Param is one tunable dimension of a Space.
	Param = skeleton.Param
	// Config assigns a value to every Space parameter.
	Config = skeleton.Config
	// Evaluator maps configurations to minimized objective vectors.
	Evaluator = objective.Evaluator
	// Point couples a configuration with its objective vector.
	Point = pareto.Point
	// OptimizerOptions tunes the evolutionary search (population size,
	// CR, F, stagnation window, seed).
	OptimizerOptions = optimizer.Options
	// OptimizerResult is the outcome of a search.
	OptimizerResult = optimizer.Result
	// IslandOptions configures the island-model parallel search
	// (worker-island count, migration interval, migrant count).
	IslandOptions = optimizer.IslandOptions
	// Runtime dispatches invocations of a multi-versioned unit.
	Runtime = rts.Runtime
	// Policy selects the version to execute.
	Policy = rts.Policy
	// WeightedSum selects by a user-weighted sum over normalized
	// objectives (the paper's runtime policy).
	WeightedSum = rts.WeightedSum
	// FastestWithinBudget selects the best `Optimize` objective among
	// versions within a budget on the `Constrain` objective.
	FastestWithinBudget = rts.FastestWithinBudget
	// FixedPolicy pins one version.
	FixedPolicy = rts.Fixed
	// AdaptivePolicy refines version selection with measured
	// execution times (epsilon-greedy feedback).
	AdaptivePolicy = rts.Adaptive
	// RuntimeContext carries dynamic conditions (available cores).
	RuntimeContext = rts.Context
	// RuntimeRanker is the optional Policy refinement exposing the
	// full preference order, enabling fallback on version failure.
	RuntimeRanker = rts.Ranker
	// FaultInjector injects deterministic errors and latency spikes
	// into version entries, for testing the fault-tolerance layer.
	FaultInjector = rts.FaultInjector
	// HealthConfig tunes the per-version quarantine circuit breaker.
	HealthConfig = rts.HealthConfig
	// VersionHealth snapshots one version's circuit-breaker state.
	VersionHealth = rts.VersionHealth
	// RuntimeEvent is a structured trace record of the runtime's
	// fault handling (failure, fallback, quarantine, readmit).
	RuntimeEvent = rts.Event
	// RuntimeEventType classifies RuntimeEvents.
	RuntimeEventType = rts.EventType
	// Parameterized is the single-body alternative to multi-versioning
	// (runtime tile/thread parameters instead of specialized code).
	Parameterized = multiversion.Parameterized
	// TuningDB is the persistent tuning database: a durable store of
	// evaluation results and Pareto fronts keyed by (program, machine,
	// objectives, search space). Open one with OpenDB and pass it to
	// Tune via WithDB.
	TuningDB = tunedb.DB
	// TuningKey identifies one tuning problem in a TuningDB.
	TuningKey = tunedb.Key
	// StoredFront is a Pareto front stored in a TuningDB.
	StoredFront = tunedb.FrontRecord
	// MachineSignature summarizes a machine's resource geometry for
	// database keying and nearest-machine transfer.
	MachineSignature = machine.Signature
)

// OpenDB opens (creating if necessary) a persistent tuning database in
// dir, recovering automatically from a torn journal tail. Close it
// when done.
func OpenDB(dir string) (*TuningDB, error) { return tunedb.Open(dir) }

// OnlineTuner refines a parameterized region at run time by randomized
// hill climbing seeded from a compile-time configuration.
type OnlineTuner = rts.OnlineTuner

// NewOnlineTuner builds an online tuner over a parameterized region
// with per-parameter inclusive bounds (layout [tiles..., threads]),
// seeded from the metadata table at seedIdx.
func NewOnlineTuner(region *Parameterized, lo, hi []int64, seedIdx int, seed int64) (*OnlineTuner, error) {
	return rts.NewOnlineTuner(region, lo, hi, seedIdx, seed)
}

// InvokeTimed runs one invocation through the runtime and feeds the
// measured wall time back into the adaptive policy.
func InvokeTimed(rt *Runtime, a *AdaptivePolicy) (int, float64, error) {
	return rts.InvokeTimed(rt, a)
}

// ParameterizedFromUnit derives a parameterized region from a
// multi-versioned unit (see the §IV trade-off discussion).
func ParameterizedFromUnit(u *Unit, entry multiversion.ParamEntry) (*Parameterized, error) {
	return multiversion.FromUnit(u, entry)
}

// Method names a search strategy.
type Method = driver.Method

// Search strategies accepted by WithMethod.
const (
	// RSGDE3 is the paper's contribution: GDE3 + rough-set reduction.
	RSGDE3 = driver.MethodRSGDE3
	// GDE3 disables the rough-set reduction (ablation).
	GDE3 = driver.MethodGDE3
	// NSGA2 is the classic genetic-algorithm baseline.
	NSGA2 = driver.MethodNSGA2
	// MOTPE is the multi-objective Tree-structured Parzen Estimator
	// sampler (cheap Bayesian strategy).
	MOTPE = driver.MethodMOTPE
	// RandomSearch is the random baseline.
	RandomSearch = driver.MethodRandom
	// GridSearch sweeps a deterministic coarse grid subsample of the
	// space in a low-discrepancy order, capped by WithRandomBudget —
	// the systematic counterpart of RandomSearch, and a contender the
	// race can include.
	GridSearch = driver.MethodGrid
	// BruteForce exhaustively sweeps a regular grid.
	BruteForce = driver.MethodBruteForce
	// MethodRace races several strategies concurrently over one shared
	// evaluation cache, reallocating budget toward the leaders every
	// scoring interval (see WithRace).
	MethodRace = driver.MethodRace
)

// RaceOptions configures MethodRace (see WithRace).
type RaceOptions = driver.RaceOptions

// Methods lists every search method accepted by WithMethod, sorted.
func Methods() []string { return driver.ValidMethods() }

// Strategies lists every registered optimizer strategy — the valid
// contender names for RaceOptions.Strategies, sorted.
func Strategies() []string { return optimizer.StrategyNames() }

// Westmere returns the simulated 4-socket Intel system of the paper's
// Table I (40 cores, 30 MB shared L3 per socket).
func Westmere() *Machine { return machine.Westmere() }

// Barcelona returns the simulated 8-socket AMD system of the paper's
// Table I (32 cores, 2 MB shared L3 per socket).
func Barcelona() *Machine { return machine.Barcelona() }

// MachineByName resolves "Westmere" or "Barcelona".
func MachineByName(name string) (*Machine, error) { return machine.ByName(name) }

// Kernels lists the built-in benchmark kernels.
func Kernels() []string { return kernels.Names() }

// TuneResult is the outcome of tuning one kernel.
type TuneResult struct {
	// Unit is the emitted multi-versioned unit (one version per
	// Pareto point, sorted by the first objective).
	Unit *Unit
	// Front is the raw Pareto set.
	Front []Point
	// Evaluations is the number of configurations evaluated (the
	// paper's E metric).
	Evaluations int
	// Iterations is the number of optimizer iterations.
	Iterations int
	// Partial reports that the search was interrupted (context
	// cancelled or deadline exceeded) and the front is the best
	// mutually non-dominated set found so far rather than the final
	// one. Resume an interrupted checkpointed search with WithResume.
	Partial bool

	output *driver.Output // retained for code emission
	n      int64
}

// EmitC renders the tuned region as a complete multi-versioned
// C/OpenMP translation unit: one specialized function per Pareto
// point, the version table as static data, and a dispatch function.
// funcName is the base name of the generated functions (default
// "kernel").
func (r *TuneResult) EmitC(funcName string) (string, error) {
	if r.output == nil {
		return "", fmt.Errorf("autotune: result carries no region information")
	}
	prog := r.output.Region.Outline(r.output.Kernel.IR(r.n))
	programs := make([]*ir.Program, 0, len(r.Unit.Versions))
	for _, v := range r.Unit.Versions {
		tp, _, err := r.output.Region.Skeleton.Apply(prog, v.Meta.Config)
		if err != nil {
			return "", err
		}
		programs = append(programs, tp)
	}
	return codegen.EmitUnit(r.Unit, programs, codegen.Options{FuncName: funcName})
}

type tuneConfig struct {
	opts driver.Options
}

// Option customizes Tune.
type Option func(*tuneConfig) error

// WithMachine selects a predefined target machine by name.
func WithMachine(name string) Option {
	return func(c *tuneConfig) error {
		m, err := machine.ByName(name)
		if err != nil {
			return err
		}
		c.opts.Machine = m
		return nil
	}
}

// WithMachineSpec selects a custom target machine.
func WithMachineSpec(m *Machine) Option {
	return func(c *tuneConfig) error {
		if err := m.Validate(); err != nil {
			return err
		}
		c.opts.Machine = m
		return nil
	}
}

// WithMethod selects the search strategy (default RSGDE3).
func WithMethod(m Method) Option {
	return func(c *tuneConfig) error {
		c.opts.Method = m
		return nil
	}
}

// WithSeed fixes the random seed of stochastic strategies.
func WithSeed(seed int64) Option {
	return func(c *tuneConfig) error {
		c.opts.Optimizer.Seed = seed
		return nil
	}
}

// WithIslands runs the evolutionary search methods as `islands`
// parallel islands over one shared, deduplicating evaluation cache:
// each island evolves an independently seeded sub-population and
// donates elite individuals to its ring successor every
// `migrationInterval` generations (0 picks the default of 5). Results
// merge into a single Pareto front. The search is deterministic for a
// fixed (seed, islands, migrationInterval) regardless of GOMAXPROCS.
// islands <= 1 selects the serial algorithm.
func WithIslands(islands, migrationInterval int) Option {
	return func(c *tuneConfig) error {
		if islands < 0 || migrationInterval < 0 {
			return fmt.Errorf("autotune: island parameters must be non-negative")
		}
		c.opts.Islands = islands
		c.opts.MigrationInterval = migrationInterval
		return nil
	}
}

// WithDB journals every evaluation and the final Pareto front of the
// tuning run into the persistent tuning database, keyed by (program
// fingerprint, machine signature, objective set, search-space hash).
// Combine with WithWarmStart to also reuse stored results.
func WithDB(db *TuningDB) Option {
	return func(c *tuneConfig) error {
		if db == nil {
			return fmt.Errorf("autotune: nil tuning database")
		}
		c.opts.DB = db
		return nil
	}
}

// WithWarmStart makes the search start from the database instead of
// from scratch: the evaluation cache is primed with every stored
// result for the exact key — repeated or overlapping searches pay only
// for new configurations, and the reported Evaluations count only
// those — and the initial population is seeded from the stored Pareto
// front (the exact key's, or the nearest-machine-signature
// transferable one). Requires WithDB.
func WithWarmStart() Option {
	return func(c *tuneConfig) error {
		c.opts.WarmStart = true
		return nil
	}
}

// WithOptimizerOptions overrides all evolutionary-search parameters.
func WithOptimizerOptions(o OptimizerOptions) Option {
	return func(c *tuneConfig) error {
		c.opts.Optimizer = o
		return nil
	}
}

// WithProblemSize overrides the kernel's default problem size.
func WithProblemSize(n int64) Option {
	return func(c *tuneConfig) error {
		if n < 1 {
			return fmt.Errorf("autotune: problem size must be positive")
		}
		c.opts.N = n
		return nil
	}
}

// WithNoise adds deterministic pseudo measurement noise of the given
// relative amplitude to the simulated evaluator (medians over
// repetitions are taken automatically).
func WithNoise(amp float64) Option {
	return func(c *tuneConfig) error {
		if amp < 0 {
			return fmt.Errorf("autotune: noise amplitude must be non-negative")
		}
		c.opts.NoiseAmp = amp
		return nil
	}
}

// WithEnergyObjective tunes for three objectives: time, resources and
// modeled energy.
func WithEnergyObjective() Option {
	return func(c *tuneConfig) error {
		c.opts.Objectives = []objective.ObjectiveKind{
			objective.TimeObjective,
			objective.ResourceObjective,
			objective.EnergyObjective,
		}
		return nil
	}
}

// WithMeasuredExecution switches from the analytical performance model
// to timing the real goroutine-parallel kernel implementations. Use
// small problem sizes; every candidate configuration is executed.
func WithMeasuredExecution(reps int) Option {
	return func(c *tuneConfig) error {
		c.opts.Measured = true
		c.opts.MeasuredReps = reps
		return nil
	}
}

// WithUnrollDimension adds the innermost-loop unroll factor (1..8) as
// one more tuning dimension (simulated evaluation only). Emitted code
// carries the chosen factor as an unroll pragma.
func WithUnrollDimension() Option {
	return func(c *tuneConfig) error {
		c.opts.UnrollDim = true
		return nil
	}
}

// WithContext bounds the search with ctx: once it is cancelled or its
// deadline passes, the search stops gracefully at the next evaluation
// or generation boundary and returns the best-so-far front with
// TuneResult.Partial set — never an error with nothing (unless nothing
// at all was evaluated yet).
func WithContext(ctx context.Context) Option {
	return func(c *tuneConfig) error {
		if ctx == nil {
			return fmt.Errorf("autotune: nil context")
		}
		c.opts.Context = ctx
		return nil
	}
}

// WithEvalTimeout watchdogs every configuration evaluation: one that
// exceeds d is abandoned and recorded as a failed configuration (never
// retried, excluded from the Pareto set and from Evaluations), so a
// hung or pathologically slow variant cannot stall the whole search.
func WithEvalTimeout(d time.Duration) Option {
	return func(c *tuneConfig) error {
		if d <= 0 {
			return fmt.Errorf("autotune: evaluation timeout must be positive")
		}
		c.opts.EvalTimeout = d
		return nil
	}
}

// WithRetries retries transiently faulted evaluations up to n times
// with jittered exponential backoff before recording them as failed.
func WithRetries(n int) Option {
	return func(c *tuneConfig) error {
		if n < 0 {
			return fmt.Errorf("autotune: retry count must be non-negative")
		}
		c.opts.Retries = n
		return nil
	}
}

// WithCheckpoint journals a crash-safe snapshot of the search to path
// after every completed generation (evolutionary methods only). An
// interrupted run — cancelled context, SIGINT, crash — resumes from
// the journal with WithResume and finishes with a front byte-identical
// to the same-seed uninterrupted run.
func WithCheckpoint(path string) Option {
	return func(c *tuneConfig) error {
		if path == "" {
			return fmt.Errorf("autotune: empty checkpoint path")
		}
		c.opts.CheckpointPath = path
		return nil
	}
}

// WithResume resumes an interrupted search from the checkpoint journal
// at path (and keeps checkpointing into it). All other options must
// match the interrupted run's; a mismatch is detected and reported.
func WithResume(path string) Option {
	return func(c *tuneConfig) error {
		if path == "" {
			return fmt.Errorf("autotune: empty checkpoint path")
		}
		c.opts.ResumeFrom = path
		return nil
	}
}

// WithRace selects MethodRace and configures it: the named strategies
// (empty = every registered one) run concurrently over one shared
// evaluation cache, are scored every `opts.Interval` generations on
// hypervolume per evaluation against a shared reference point, and the
// trailing half is eliminated so the remaining budget flows to the
// leaders. `opts.Budget` caps the race's total distinct successful
// evaluations. Warm starts seed every contender; cancellation returns
// the merged best-so-far front flagged Partial; a fixed seed yields a
// byte-identical merged front regardless of GOMAXPROCS.
func WithRace(opts RaceOptions) Option {
	return func(c *tuneConfig) error {
		if opts.Interval < 0 {
			return fmt.Errorf("autotune: race interval must be non-negative")
		}
		if opts.Budget < 0 {
			return fmt.Errorf("autotune: race budget must be non-negative")
		}
		c.opts.Method = MethodRace
		c.opts.Race = opts
		return nil
	}
}

// WithSurrogate layers surrogate-assisted pre-screening over the
// evaluator: an online multi-output regression model trains
// incrementally from every real evaluation (and from every stored
// record a warm start primes) and pre-screens each generation's
// candidates, sending only the topK most promising new configurations
// — by predicted Pareto rank plus an uncertainty bonus that keeps
// exploration alive — to the real evaluator. The rest are skipped
// without costing Evaluations. topK = 0 picks an automatic quarter of
// each batch; topK at or above the population size makes the screen an
// exact pass-through. Works with every method except BruteForce.
// Fixed-seed fronts stay byte-identical across GOMAXPROCS.
func WithSurrogate(topK int) Option {
	return func(c *tuneConfig) error {
		if topK < 0 {
			return fmt.Errorf("autotune: surrogate top-K must be non-negative")
		}
		c.opts.Surrogate = true
		c.opts.ScreenTopK = topK
		return nil
	}
}

// WithProgress registers a live-progress callback: fn fires after
// every fresh (non-warm-started) evaluation with the cumulative count
// completed so far. It may be called concurrently from evaluation
// workers and must not block; the tuning-as-a-service front-end uses
// it to stream search progress to clients.
func WithProgress(fn func(evaluations int)) Option {
	return func(c *tuneConfig) error {
		if fn == nil {
			return fmt.Errorf("autotune: nil progress callback")
		}
		c.opts.OnProgress = fn
		return nil
	}
}

// WithRandomBudget sets the evaluation budget of RandomSearch and
// GridSearch.
func WithRandomBudget(budget int) Option {
	return func(c *tuneConfig) error {
		if budget < 1 {
			return fmt.Errorf("autotune: random budget must be positive")
		}
		c.opts.RandomBudget = budget
		return nil
	}
}

// WithGridPoints sets the per-dimension point counts of BruteForce.
func WithGridPoints(points []int) Option {
	return func(c *tuneConfig) error {
		c.opts.GridPoints = points
		return nil
	}
}

// Tune runs the full compiler pipeline (analyze → optimize →
// multi-version) for one built-in kernel. The default machine is
// Westmere and the default method RS-GDE3.
func Tune(kernel string, options ...Option) (*TuneResult, error) {
	c := tuneConfig{}
	for _, o := range options {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	if c.opts.Machine == nil {
		c.opts.Machine = machine.Westmere()
	}
	out, err := driver.TuneKernel(kernel, c.opts)
	if err != nil {
		return nil, err
	}
	n := c.opts.N
	if n == 0 {
		n = out.Kernel.DefaultN
		if c.opts.Measured {
			n = out.Kernel.BenchN
		}
	}
	return &TuneResult{
		Unit:        out.Unit,
		Front:       out.Result.Front,
		Evaluations: out.Result.Evaluations,
		Iterations:  out.Result.Iterations,
		Partial:     out.Result.Partial,
		output:      out,
		n:           n,
	}, nil
}

// TuneSource parses a program in the MiniIR text format (see
// internal/irparse for the grammar) and tunes its first region with an
// automatically derived performance model. The resulting unit carries
// code listings and trade-off metadata but no executable entries —
// bind them with Unit.Bind when an execution vehicle exists.
//
// Example source:
//
//	program mm
//	array A[256][256] elem 8
//	array B[256][256] elem 8
//	array C[256][256] elem 8
//	for i = 0..256 { for j = 0..256 { for k = 0..256 {
//	  C[i][j] = f(C[i][j], A[i][k], B[k][j]) flops 2
//	}}}
func TuneSource(src string, options ...Option) (*TuneResult, error) {
	c := tuneConfig{}
	for _, o := range options {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	if c.opts.Machine == nil {
		c.opts.Machine = machine.Westmere()
	}
	prog, err := irparse.Parse(src)
	if err != nil {
		return nil, err
	}
	out, err := driver.TuneProgram(prog, c.opts)
	if err != nil {
		return nil, err
	}
	return &TuneResult{
		Unit:        out.Unit,
		Front:       out.Result.Front,
		Evaluations: out.Result.Evaluations,
		Iterations:  out.Result.Iterations,
		Partial:     out.Result.Partial,
		output:      out,
		n:           1,
	}, nil
}

// TuneAll tunes several regions (one per named kernel) simultaneously:
// every program execution measures one candidate configuration of
// every region, so the execution budget is shared across regions
// instead of multiplied (paper §III-A). Only simulated evaluation is
// supported. The returned slice holds one TuneResult per kernel; all
// share the same Evaluations count (the joint execution total).
func TuneAll(kernelNames []string, options ...Option) ([]*TuneResult, error) {
	c := tuneConfig{}
	for _, o := range options {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	if c.opts.Machine == nil {
		c.opts.Machine = machine.Westmere()
	}
	multi, err := driver.TuneKernels(kernelNames, c.opts)
	if err != nil {
		return nil, err
	}
	var out []*TuneResult
	for _, o := range multi.Outputs {
		n := c.opts.N
		if n == 0 {
			n = o.Kernel.DefaultN
		}
		out = append(out, &TuneResult{
			Unit:        o.Unit,
			Front:       o.Result.Front,
			Evaluations: multi.Executions,
			Iterations:  multi.Iterations,
			output:      o,
			n:           n,
		})
	}
	return out, nil
}

// Optimize runs RS-GDE3 directly on a custom search problem: any
// integer parameter space and any evaluator. This is the extension
// point for tuning problems beyond the built-in kernels.
func Optimize(space Space, eval Evaluator, opt OptimizerOptions) (*OptimizerResult, error) {
	return optimizer.RSGDE3(space, eval, opt)
}

// OptimizeIslands runs RS-GDE3 as parallel islands over a custom
// search problem: independently seeded sub-populations evolve
// concurrently, share one evaluation cache, exchange elites over a
// migration ring, and merge into a single Pareto front. Deterministic
// for a fixed (seed, islands, migration interval).
func OptimizeIslands(space Space, eval Evaluator, opt OptimizerOptions, iopt IslandOptions) (*OptimizerResult, error) {
	return optimizer.RSGDE3Islands(space, eval, opt, iopt)
}

// OptimizeWithContext is Optimize bounded by ctx: cancellation stops
// the search at the next generation boundary and returns the
// best-so-far front with OptimizerResult.Partial set.
func OptimizeWithContext(ctx context.Context, space Space, eval Evaluator, opt OptimizerOptions) (*OptimizerResult, error) {
	return optimizer.RSGDE3Controlled(space, eval, opt, optimizer.Control{Ctx: ctx})
}

// OptimizeIslandsWithContext is OptimizeIslands bounded by ctx.
func OptimizeIslandsWithContext(ctx context.Context, space Space, eval Evaluator, opt OptimizerOptions, iopt IslandOptions) (*OptimizerResult, error) {
	return optimizer.RSGDE3IslandsControlled(space, eval, opt, iopt, optimizer.Control{Ctx: ctx})
}

// NewRuntime builds a runtime dispatcher for a unit whose versions
// have executable entries bound (units produced by Tune are ready;
// deserialized units need Unit.Bind first).
func NewRuntime(u *Unit, p Policy) (*Runtime, error) { return rts.New(u, p) }

// Runtime fault-handling event kinds, reported through
// Runtime.SetEventHook.
const (
	RuntimeEventFailure    = rts.EventFailure
	RuntimeEventFallback   = rts.EventFallback
	RuntimeEventQuarantine = rts.EventQuarantine
	RuntimeEventReadmit    = rts.EventReadmit
)

// Sentinel errors of the runtime fault-tolerance layer.
var (
	// ErrAllQuarantined is wrapped by Invoke when every ranked
	// version is sitting out a quarantine cool-down.
	ErrAllQuarantined = rts.ErrAllQuarantined
	// ErrInjected marks errors produced by a FaultInjector.
	ErrInjected = rts.ErrInjected
)

// RuntimeManager arbitrates a machine-wide core budget among several
// multi-versioned regions.
type RuntimeManager = rts.Manager

// NewRuntimeManager builds a manager for a machine with the given core
// count; register per-region runtimes with Manager.Register.
func NewRuntimeManager(totalCores int) (*RuntimeManager, error) { return rts.NewManager(totalCores) }

// DecodeUnit deserializes a unit produced by Unit.Encode. Entries are
// unbound; attach them with Unit.Bind.
func DecodeUnit(data []byte) (*Unit, error) { return multiversion.Decode(data) }
