package resilience

import (
	"context"
	"sync"
	"time"

	"autotune/internal/objective"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

// GuardConfig configures the evaluation guard. The zero value is a
// transparent pass-through (no watchdog, no retries).
type GuardConfig struct {
	// EvalTimeout bounds one evaluation attempt. A hung or overlong
	// evaluation is abandoned and recorded as a failed configuration —
	// it is cached and never retried, exactly like an invalid variant —
	// so one pathological point cannot stall the whole search. Zero
	// disables the watchdog.
	EvalTimeout time.Duration
	// Retries is the number of times a transiently faulted evaluation
	// (see Inject) is retried before being recorded as failed.
	Retries int
	// RetryBudget caps the total retries across the whole search; once
	// exhausted, faulted evaluations fail immediately. Zero means
	// unlimited.
	RetryBudget int
	// BaseBackoff is the first retry's backoff delay (default 1ms);
	// subsequent retries back off exponentially.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero means uncapped.
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic jitter source scaling each
	// backoff by a factor in [0.5, 1.5).
	JitterSeed int64
	// Inject, when non-nil, is consulted before every evaluation
	// attempt; a non-nil error marks a transient fault (the retry
	// trigger). It is the composition point for fault injectors — e.g.
	// an rts.FaultInjector's Error hook — and for probing flaky
	// measurement hardware.
	Inject func(cfg skeleton.Config, attempt int) error
}

// GuardStats counts the guard's interventions.
type GuardStats struct {
	// Timeouts is the number of evaluations abandoned by the watchdog.
	Timeouts int
	// Retries is the number of retry attempts performed.
	Retries int
	// Faults is the number of transient faults observed (including ones
	// that were then retried successfully).
	Faults int
	// Exhausted is the number of evaluations recorded as failed because
	// their retries ran out.
	Exhausted int
	// Cancelled is the number of evaluations aborted by context
	// cancellation while guarded.
	Cancelled int
}

// Guard is watchdog/retry middleware for the shared evaluation cache:
// install it with CachingEvaluator.WrapEvalFunc before the search
// starts. Timed-out and retry-exhausted evaluations surface as
// recorded failures (nil objectives, nil error) — cached, skipped by
// the optimizers, excluded from E — while context cancellation
// surfaces as an abort (non-nil error) so a resumed search
// re-evaluates the configuration. A Guard is safe for concurrent use
// by parallel evaluations.
type Guard struct {
	cfg GuardConfig

	mu      sync.Mutex
	jitter  *stats.CountedRand
	stats   GuardStats
	retries int
}

// NewGuard builds a guard from cfg.
func NewGuard(cfg GuardConfig) *Guard {
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = time.Millisecond
	}
	return &Guard{cfg: cfg, jitter: stats.NewCountedRand(cfg.JitterSeed)}
}

// Stats returns a snapshot of the guard's intervention counters.
func (g *Guard) Stats() GuardStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Middleware returns the wrapping function for
// CachingEvaluator.WrapEvalFunc.
func (g *Guard) Middleware() func(objective.CtxEvalFunc) objective.CtxEvalFunc {
	return func(next objective.CtxEvalFunc) objective.CtxEvalFunc {
		return func(ctx context.Context, cfg skeleton.Config) ([]float64, error) {
			return g.run(ctx, cfg, next)
		}
	}
}

// run drives one guarded evaluation: inject-fault retry loop around a
// watchdogged attempt.
func (g *Guard) run(ctx context.Context, cfg skeleton.Config, next objective.CtxEvalFunc) ([]float64, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			g.count(func(s *GuardStats) { s.Cancelled++ })
			return nil, err
		}
		if g.cfg.Inject != nil {
			if ferr := g.cfg.Inject(cfg, attempt); ferr != nil {
				g.count(func(s *GuardStats) { s.Faults++ })
				if attempt >= g.cfg.Retries || !g.takeRetry() {
					g.count(func(s *GuardStats) { s.Exhausted++ })
					return nil, nil
				}
				if !g.sleep(ctx, g.backoffFor(attempt)) {
					g.count(func(s *GuardStats) { s.Cancelled++ })
					return nil, ctx.Err()
				}
				continue
			}
		}
		objs, err, timedOut := g.attempt(ctx, cfg, next)
		if timedOut {
			// A hung variant is a property of the configuration, not of
			// the moment: record it as failed rather than retrying.
			g.count(func(s *GuardStats) { s.Timeouts++ })
			return nil, nil
		}
		if err != nil {
			g.count(func(s *GuardStats) { s.Cancelled++ })
		}
		return objs, err
	}
}

// attempt runs next once under the watchdog. On timeout the evaluation
// goroutine is abandoned (it drains in the background); on context
// cancellation the abort error is propagated so the result stays
// uncached.
func (g *Guard) attempt(ctx context.Context, cfg skeleton.Config, next objective.CtxEvalFunc) (objs []float64, err error, timedOut bool) {
	if g.cfg.EvalTimeout <= 0 {
		objs, err = next(ctx, cfg)
		return objs, err, false
	}
	type result struct {
		objs []float64
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		o, e := next(ctx, cfg)
		ch <- result{o, e}
	}()
	t := time.NewTimer(g.cfg.EvalTimeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.objs, r.err, false
	case <-t.C:
		return nil, nil, true
	case <-ctx.Done():
		return nil, ctx.Err(), false
	}
}

// takeRetry consumes one unit of the global retry budget.
func (g *Guard) takeRetry() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cfg.RetryBudget > 0 && g.retries >= g.cfg.RetryBudget {
		return false
	}
	g.retries++
	g.stats.Retries++
	return true
}

// backoffFor computes the jittered exponential backoff for a retry
// following the given attempt.
func (g *Guard) backoffFor(attempt int) time.Duration {
	d := g.cfg.BaseBackoff
	for i := 0; i < attempt && d < time.Minute; i++ {
		d *= 2
	}
	if g.cfg.MaxBackoff > 0 && d > g.cfg.MaxBackoff {
		d = g.cfg.MaxBackoff
	}
	g.mu.Lock()
	scale := 0.5 + g.jitter.Float64()
	g.mu.Unlock()
	return time.Duration(float64(d) * scale)
}

// sleep waits for d or until the context is done, reporting whether the
// full wait elapsed.
func (g *Guard) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (g *Guard) count(f func(*GuardStats)) {
	g.mu.Lock()
	f(&g.stats)
	g.mu.Unlock()
}
