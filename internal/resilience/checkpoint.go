package resilience

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"autotune/internal/optimizer"
	"autotune/internal/tunedb"
)

// recSnapshot is the journal record type of one generation snapshot.
const recSnapshot = "snap"

// Checkpoint is a crash-safe, append-only journal of search snapshots,
// framed with the tuning database's CRC-32C envelope. It implements
// optimizer.Checkpointer: every completed generation appends one
// snapshot record and syncs, so a crash at any instant loses at most
// the generation in flight. Loading folds the journal — the latest
// complete snapshot wins, with the evaluation traces of every record
// accumulated for cache priming — and truncates a torn tail exactly
// like the tuning database does.
type Checkpoint struct {
	path string

	mu sync.Mutex
	f  *os.File
}

// CreateCheckpoint starts a fresh checkpoint journal at path,
// truncating any existing file.
func CreateCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: creating checkpoint: %w", err)
	}
	return &Checkpoint{path: path, f: f}, nil
}

// ResumeCheckpoint opens an existing checkpoint journal for
// continuation: it folds the journal into the latest resumable
// snapshot (with the full accumulated evaluation history for cache
// priming), truncates a torn tail left by a crash mid-append, and
// reopens the file so subsequent snapshots append after the fold
// point.
func ResumeCheckpoint(path string) (*Checkpoint, *optimizer.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("resilience: reading checkpoint: %w", err)
	}
	snap, validLen, err := foldSnapshots(data, -1)
	if err != nil {
		return nil, nil, err
	}
	if snap == nil {
		return nil, nil, fmt.Errorf("resilience: checkpoint %s holds no complete snapshot", path)
	}
	if validLen < len(data) {
		if err := rewrite(path, data[:validLen]); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("resilience: reopening checkpoint: %w", err)
	}
	return &Checkpoint{path: path, f: f}, snap, nil
}

// LoadCheckpoint folds a checkpoint journal read-only and returns the
// latest complete snapshot with the accumulated evaluation history.
func LoadCheckpoint(path string) (*optimizer.Snapshot, error) {
	return loadAt(path, -1)
}

// LoadCheckpointAt is LoadCheckpoint bounded at generation gen: records
// beyond gen are ignored, reconstructing the journal's state as of that
// generation.
func LoadCheckpointAt(path string, gen int) (*optimizer.Snapshot, error) {
	if gen < 0 {
		return nil, fmt.Errorf("resilience: negative generation %d", gen)
	}
	return loadAt(path, gen)
}

func loadAt(path string, maxGen int) (*optimizer.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("resilience: reading checkpoint: %w", err)
	}
	snap, _, err := foldSnapshots(data, maxGen)
	if err != nil {
		return nil, err
	}
	if snap == nil {
		return nil, fmt.Errorf("resilience: checkpoint %s holds no complete snapshot", path)
	}
	return snap, nil
}

// TrimCheckpoint cuts a checkpoint journal back to generation gen
// inclusive, discarding all later records — a deterministic stand-in
// for a crash at that point, used by the resume experiments and the
// crash-sweep tests.
func TrimCheckpoint(path string, gen int) error {
	if gen < 0 {
		return fmt.Errorf("resilience: negative generation %d", gen)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("resilience: reading checkpoint: %w", err)
	}
	snap, validLen, err := foldSnapshots(data, gen)
	if err != nil {
		return err
	}
	if snap == nil {
		return fmt.Errorf("resilience: checkpoint %s has no snapshot at or before generation %d", path, gen)
	}
	return rewrite(path, data[:validLen])
}

// Save implements optimizer.Checkpointer: one framed snapshot record is
// appended and synced to stable storage before the search continues.
func (c *Checkpoint) Save(s *optimizer.Snapshot) error {
	line, err := tunedb.EncodeRecord(recSnapshot, s)
	if err != nil {
		return fmt.Errorf("resilience: encoding snapshot: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return errors.New("resilience: checkpoint is closed")
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("resilience: writing snapshot: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("resilience: syncing checkpoint: %w", err)
	}
	return nil
}

// Path returns the journal's file path.
func (c *Checkpoint) Path() string { return c.path }

// Close flushes and closes the journal. The checkpoint must not be
// used after.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Sync()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	return err
}

// errFoldStop ends a bounded fold at the first record beyond the
// generation limit.
var errFoldStop = errors.New("resilience: fold stop")

// foldSnapshots scans a journal image and folds its snapshot records:
// the latest snapshot's state wins, with the evaluation traces of all
// folded records accumulated into its Evals. maxGen < 0 folds
// everything; otherwise records beyond maxGen are excluded and validLen
// marks the byte offset just before the first excluded record (the trim
// point). A torn tail stops the fold cleanly at validLen; interior
// corruption is an error.
func foldSnapshots(data []byte, maxGen int) (snap *optimizer.Snapshot, validLen int, err error) {
	var evals []optimizer.EvalState
	validLen, err = tunedb.ScanJournal(data, func(t string, payload json.RawMessage) error {
		if t != recSnapshot {
			return fmt.Errorf("resilience: unexpected record type %q in checkpoint", t)
		}
		var s optimizer.Snapshot
		if err := json.Unmarshal(payload, &s); err != nil {
			return fmt.Errorf("resilience: decoding snapshot: %w", err)
		}
		if maxGen >= 0 && s.Generation > maxGen {
			return errFoldStop
		}
		evals = append(evals, s.Evals...)
		s.Evals = nil
		snap = &s
		return nil
	})
	if errors.Is(err, errFoldStop) {
		err = nil
	}
	if err != nil {
		return nil, validLen, err
	}
	if snap != nil {
		snap.Evals = evals
	}
	return snap, validLen, nil
}

// rewrite atomically replaces the journal file's contents.
func rewrite(path string, data []byte) error {
	if err := os.WriteFile(path+".tmp", data, 0o644); err != nil {
		return fmt.Errorf("resilience: rewriting checkpoint: %w", err)
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		return fmt.Errorf("resilience: rewriting checkpoint: %w", err)
	}
	return nil
}
