// Package resilience hardens long-running searches against hangs,
// transient faults and interruptions: a watchdog/retry middleware for
// the shared evaluation cache (Guard), a generic call timeout for
// runtime entry points (RunWithTimeout), and crash-safe checkpoint
// journals that let an interrupted search resume exactly where it
// stopped (Checkpoint).
package resilience

import (
	"errors"
	"time"
)

// ErrTimedOut reports that a watchdogged call exceeded its deadline and
// was abandoned.
var ErrTimedOut = errors.New("resilience: timed out")

// RunWithTimeout runs fn, waiting at most d for it to finish. On
// timeout it returns ErrTimedOut immediately; the abandoned fn
// goroutine runs to completion in the background (Go cannot kill it),
// so fn must not hold locks the caller needs. A non-positive d runs fn
// inline with no watchdog.
func RunWithTimeout(d time.Duration, fn func() error) error {
	if d <= 0 {
		return fn()
	}
	done := make(chan error, 1)
	go func() { done <- fn() }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return ErrTimedOut
	}
}
