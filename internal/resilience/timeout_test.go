package resilience_test

import (
	"errors"
	"testing"
	"time"

	"autotune/internal/resilience"
)

func TestRunWithTimeoutPassesThrough(t *testing.T) {
	sentinel := errors.New("inner")
	if err := resilience.RunWithTimeout(time.Second, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the function's own error", err)
	}
	if err := resilience.RunWithTimeout(0, func() error { return nil }); err != nil {
		t.Fatalf("disabled watchdog returned %v", err)
	}
}

func TestRunWithTimeoutAbandonsHang(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	start := time.Now()
	err := resilience.RunWithTimeout(10*time.Millisecond, func() error {
		<-hang
		return nil
	})
	if !errors.Is(err, resilience.ErrTimedOut) {
		t.Fatalf("err = %v, want ErrTimedOut", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("watchdog failed to abandon the hung call promptly")
	}
}
