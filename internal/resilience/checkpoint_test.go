package resilience_test

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autotune/internal/objective"
	"autotune/internal/optimizer"
	"autotune/internal/pareto"
	"autotune/internal/resilience"
	"autotune/internal/skeleton"
)

func ckptSpace() skeleton.Space {
	return skeleton.Space{Params: []skeleton.Param{
		{Name: "t1", Kind: skeleton.TileSize, Min: 1, Max: 64},
		{Name: "t2", Kind: skeleton.TileSize, Min: 1, Max: 64},
		{Name: "threads", Kind: skeleton.ThreadCount, Min: 1, Max: 16},
	}}
}

func ckptFn(c skeleton.Config) []float64 {
	if len(c) != 3 {
		return nil
	}
	a, b, th := float64(c[0]), float64(c[1]), float64(c[2])
	return []float64{math.Abs(a-20) + math.Abs(b-30) + 100/th, a + b + 3*th}
}

func newCkptEval() *objective.CachingEvaluator {
	return objective.NewCachingEvaluator([]string{"f1", "f2"}, 8, ckptFn)
}

func ckptFingerprint(front []pareto.Point) string {
	var sb strings.Builder
	for _, p := range front {
		cfg, _ := p.Payload.(skeleton.Config)
		fmt.Fprintf(&sb, "%s=%v;", cfg.Key(), p.Objectives)
	}
	return sb.String()
}

// TestCheckpointRoundtrip saves snapshots through the journal and folds
// them back: the latest snapshot's state must win while the evaluation
// traces of every record accumulate for cache priming.
func TestCheckpointRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.ckpt")
	cp, err := resilience.CreateCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(gen, e int, evals ...int64) *optimizer.Snapshot {
		s := &optimizer.Snapshot{
			Method: "rs-gde3", Fingerprint: "fp", Generation: gen, Evaluations: e,
			States: []optimizer.IslandState{{Stagnant: gen, Draws: uint64(10 * gen)}},
		}
		for _, v := range evals {
			s.Evals = append(s.Evals, optimizer.EvalState{Config: []int64{v}, Objs: []float64{float64(v)}})
		}
		return s
	}
	for gen, evals := range [][]int64{{1, 2}, {3}, {4, 5, 6}} {
		if err := cp.Save(mk(gen, 2*(gen+1), evals...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := resilience.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 2 || snap.Evaluations != 6 {
		t.Fatalf("folded to gen %d / E %d, want latest (2, 6)", snap.Generation, snap.Evaluations)
	}
	if snap.States[0].Draws != 20 {
		t.Fatalf("state draws = %d, want the latest snapshot's 20", snap.States[0].Draws)
	}
	if len(snap.Evals) != 6 {
		t.Fatalf("accumulated %d eval traces, want all 6 across records", len(snap.Evals))
	}
	for i, es := range snap.Evals {
		if es.Config[0] != int64(i+1) {
			t.Fatalf("eval trace %d = %v, want config %d (journal order)", i, es.Config, i+1)
		}
	}

	// Bounded loads reconstruct earlier states.
	at, err := resilience.LoadCheckpointAt(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if at.Generation != 1 || len(at.Evals) != 3 {
		t.Fatalf("LoadCheckpointAt(1) = gen %d with %d traces, want gen 1 with 3", at.Generation, len(at.Evals))
	}
	if _, err := resilience.LoadCheckpointAt(path, -1); err == nil {
		t.Fatal("negative generation accepted")
	}
}

// TestCheckpointCrashSweep truncates a real search's journal at every
// byte offset — simulating a crash at any instant of the write — and
// requires each cut to either report a clean no-snapshot error or
// resume into a search whose final front and evaluation count are
// byte-identical to the uninterrupted run.
func TestCheckpointCrashSweep(t *testing.T) {
	dir := t.TempDir()
	space := ckptSpace()
	opt := optimizer.Options{PopSize: 10, MaxIterations: 5, Seed: 3}

	path := filepath.Join(dir, "full.ckpt")
	cp, err := resilience.CreateCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	full, err := optimizer.RSGDE3Controlled(space, newCkptEval(), opt, optimizer.Control{Checkpointer: cp})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	wantFront := ckptFingerprint(full.Front)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty journal")
	}

	// Sweep every truncation point, classifying each cut by the
	// generation it folds back to; one resumed search per distinct
	// recovery point proves the fold exact. Short mode strides the
	// sweep but still lands on every record boundary.
	stride := 1
	if testing.Short() {
		stride = 17
	}
	cuts := map[int]bool{0: true, len(data): true}
	for cut := 0; cut < len(data); cut += stride {
		cuts[cut] = true
	}
	for off, b := range data {
		if b == '\n' {
			cuts[off] = true
			cuts[off+1] = true
		}
	}
	resumedGens := map[int]bool{}
	for cut := 0; cut <= len(data); cut++ {
		if !cuts[cut] {
			continue
		}
		cutPath := filepath.Join(dir, "cut.ckpt")
		if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cp2, snap, err := resilience.ResumeCheckpoint(cutPath)
		if err != nil {
			if !strings.Contains(err.Error(), "no complete snapshot") {
				t.Fatalf("cut at %d: unexpected error %v", cut, err)
			}
			continue
		}
		if resumedGens[snap.Generation] {
			cp2.Close()
			continue
		}
		resumedGens[snap.Generation] = true
		res, err := optimizer.RSGDE3Controlled(space, newCkptEval(), opt,
			optimizer.Control{Checkpointer: cp2, Resume: snap})
		cp2.Close()
		if err != nil {
			t.Fatalf("cut at %d (gen %d): resume failed: %v", cut, snap.Generation, err)
		}
		if got := ckptFingerprint(res.Front); got != wantFront {
			t.Fatalf("cut at %d (gen %d): resumed front diverged\n got: %s\nwant: %s",
				cut, snap.Generation, got, wantFront)
		}
		if res.Evaluations != full.Evaluations {
			t.Fatalf("cut at %d (gen %d): E = %d, want %d",
				cut, snap.Generation, res.Evaluations, full.Evaluations)
		}
	}
	// Every checkpointed generation (0 = initial population through the
	// final one) must have been recoverable from some cut.
	for gen := 0; gen <= opt.MaxIterations; gen++ {
		if !resumedGens[gen] {
			t.Fatalf("no truncation point recovered generation %d (got %v)", gen, resumedGens)
		}
	}
}

// TestCheckpointTornTailTruncated: resuming a journal with a torn final
// record rewrites the file down to its valid prefix so subsequent
// appends start clean.
func TestCheckpointTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.ckpt")
	cp, err := resilience.CreateCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	snap := &optimizer.Snapshot{Method: "rs-gde3", Fingerprint: "fp", Generation: 0,
		States: []optimizer.IslandState{{}}}
	if err := cp.Save(snap); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, clean...), []byte(`{"v":1,"t":"snap","crc":12,"d":{"trunc`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	cp2, got, err := resilience.ResumeCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if got.Generation != 0 {
		t.Fatalf("resumed generation %d, want 0", got.Generation)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != len(clean) {
		t.Fatalf("journal is %d bytes after resume, want torn tail truncated to %d", len(onDisk), len(clean))
	}
}

// TestCheckpointLifecycleErrors covers the journal's edge and error
// paths: path accessors, double close, saving into a closed journal,
// and opening paths that do not exist.
func TestCheckpointLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "life.ckpt")
	cp, err := resilience.CreateCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Path() != path {
		t.Fatalf("Path() = %q", cp.Path())
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatalf("second close errored: %v", err)
	}
	snap := &optimizer.Snapshot{Method: "rs-gde3", States: []optimizer.IslandState{{}}}
	if err := cp.Save(snap); err == nil {
		t.Fatal("save into a closed journal succeeded")
	}
	if _, err := resilience.CreateCheckpoint(filepath.Join(dir, "no/such/dir/x.ckpt")); err == nil {
		t.Fatal("checkpoint created under a missing directory")
	}
	if _, err := resilience.LoadCheckpoint(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("load of a missing journal succeeded")
	}
	if _, _, err := resilience.ResumeCheckpoint(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("resume of a missing journal succeeded")
	}
}

// TestCheckpointInteriorCorruption: a corrupted record followed by
// valid ones cannot be explained by a crash mid-append and must be
// reported, not silently folded around.
func TestCheckpointInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.ckpt")
	cp, err := resilience.CreateCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 3; gen++ {
		s := &optimizer.Snapshot{Method: "rs-gde3", Fingerprint: "fp", Generation: gen,
			States: []optimizer.IslandState{{}}}
		if err := cp.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside the first record's payload.
	i := strings.Index(string(data), `"generation":0`)
	if i < 0 {
		t.Fatal("payload marker not found")
	}
	data[i+len(`"generation":`)] = '9'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := resilience.ResumeCheckpoint(path); err == nil {
		t.Fatal("interior corruption went undetected")
	}
	if _, err := resilience.LoadCheckpoint(path); err == nil {
		t.Fatal("interior corruption went undetected on read-only load")
	}
}

// TestTrimCheckpoint cuts a journal back to a generation and verifies
// both the trimmed load and the guard rails.
func TestTrimCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trim.ckpt")
	cp, err := resilience.CreateCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 4; gen++ {
		s := &optimizer.Snapshot{Method: "rs-gde3", Fingerprint: "fp", Generation: gen,
			States: []optimizer.IslandState{{}},
			Evals:  []optimizer.EvalState{{Config: []int64{int64(gen)}, Objs: []float64{1}}}}
		if err := cp.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := resilience.TrimCheckpoint(path, 1); err != nil {
		t.Fatal(err)
	}
	snap, err := resilience.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 1 || len(snap.Evals) != 2 {
		t.Fatalf("trimmed journal folds to gen %d with %d traces, want gen 1 with 2", snap.Generation, len(snap.Evals))
	}
	if err := resilience.TrimCheckpoint(path, -1); err == nil {
		t.Fatal("negative trim generation accepted")
	}
	if err := resilience.TrimCheckpoint(filepath.Join(dir, "missing.ckpt"), 1); err == nil {
		t.Fatal("trim of a missing journal succeeded")
	}
	// Trimming below the earliest snapshot leaves nothing to resume.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := resilience.TrimCheckpoint(path, 2); err == nil {
		t.Fatal("trim of an empty journal succeeded")
	}
	if _, _, err := resilience.ResumeCheckpoint(path); err == nil {
		t.Fatal("resume of an empty journal succeeded")
	}
}
