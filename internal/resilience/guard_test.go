package resilience_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"autotune/internal/objective"
	"autotune/internal/resilience"
	"autotune/internal/rts"
	"autotune/internal/skeleton"
)

func cfg(vals ...int64) skeleton.Config { return skeleton.Config(vals) }

// TestWatchdogRecordsHangingEvaluation: a configuration whose
// evaluation hangs forever must come back as a recorded failure within
// the timeout — cached, excluded from E — while healthy configurations
// evaluate normally.
func TestWatchdogRecordsHangingEvaluation(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	eval := objective.NewCachingEvaluator([]string{"f"}, 4, func(c skeleton.Config) []float64 {
		if c[0] == 13 {
			<-hang
		}
		return []float64{float64(c[0])}
	})
	guard := resilience.NewGuard(resilience.GuardConfig{EvalTimeout: 20 * time.Millisecond})
	eval.WrapEvalFunc(guard.Middleware())

	start := time.Now()
	out := eval.Evaluate([]skeleton.Config{cfg(13), cfg(1), cfg(2)})
	if out[0] != nil {
		t.Fatalf("hung configuration returned %v, want recorded failure", out[0])
	}
	if out[1] == nil || out[2] == nil {
		t.Fatal("healthy configurations failed")
	}
	if eval.Evaluations() != 2 {
		t.Fatalf("E = %d, want 2 (the hung variant must not count)", eval.Evaluations())
	}
	if guard.Stats().Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", guard.Stats().Timeouts)
	}
	// The failure is cached: re-requesting must not wait out a second
	// timeout.
	again := time.Now()
	if out := eval.EvaluateOne(cfg(13)); out != nil {
		t.Fatalf("cached failure returned %v", out)
	}
	if d := time.Since(again); d > 15*time.Millisecond {
		t.Fatalf("cached failure took %v — it was re-evaluated", d)
	}
	_ = start
}

// TestRetriesTransientFaults: injected transient faults are retried
// with backoff until the configured attempt count, and a fault that
// clears mid-way still produces a successful evaluation.
func TestRetriesTransientFaults(t *testing.T) {
	var attempts int32
	guard := resilience.NewGuard(resilience.GuardConfig{
		Retries:     3,
		BaseBackoff: time.Microsecond,
		Inject: func(_ skeleton.Config, attempt int) error {
			atomic.AddInt32(&attempts, 1)
			if attempt < 2 {
				return errors.New("flaky measurement")
			}
			return nil
		},
	})
	eval := objective.NewCachingEvaluator([]string{"f"}, 1, func(c skeleton.Config) []float64 {
		return []float64{float64(c[0])}
	})
	eval.WrapEvalFunc(guard.Middleware())
	if out := eval.EvaluateOne(cfg(7)); out == nil || out[0] != 7 {
		t.Fatalf("retried evaluation returned %v, want [7]", out)
	}
	st := guard.Stats()
	if st.Faults != 2 || st.Retries != 2 || st.Exhausted != 0 {
		t.Fatalf("stats = %+v, want 2 faults, 2 retries, 0 exhausted", st)
	}
	if eval.Evaluations() != 1 {
		t.Fatalf("E = %d, want 1", eval.Evaluations())
	}
}

// TestRetryExhaustionRecordsFailure: a persistently faulted
// configuration is recorded as failed once its retries run out.
func TestRetryExhaustionRecordsFailure(t *testing.T) {
	guard := resilience.NewGuard(resilience.GuardConfig{
		Retries:     2,
		BaseBackoff: time.Microsecond,
		Inject: func(skeleton.Config, int) error {
			return errors.New("dead measurement rig")
		},
	})
	eval := objective.NewCachingEvaluator([]string{"f"}, 1, func(c skeleton.Config) []float64 {
		return []float64{1}
	})
	eval.WrapEvalFunc(guard.Middleware())
	if out := eval.EvaluateOne(cfg(1)); out != nil {
		t.Fatalf("exhausted evaluation returned %v, want recorded failure", out)
	}
	st := guard.Stats()
	if st.Exhausted != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 1 exhausted after 2 retries", st)
	}
	if eval.Evaluations() != 0 {
		t.Fatalf("E = %d, want 0", eval.Evaluations())
	}
}

// TestRetryBudgetCapsGlobalRetries: the cross-search retry budget stops
// retrying once spent, independent of the per-evaluation allowance.
func TestRetryBudgetCapsGlobalRetries(t *testing.T) {
	guard := resilience.NewGuard(resilience.GuardConfig{
		Retries:     5,
		RetryBudget: 2,
		BaseBackoff: time.Microsecond,
		Inject: func(skeleton.Config, int) error {
			return errors.New("always faulted")
		},
	})
	eval := objective.NewCachingEvaluator([]string{"f"}, 1, func(c skeleton.Config) []float64 {
		return []float64{1}
	})
	eval.WrapEvalFunc(guard.Middleware())
	eval.Evaluate([]skeleton.Config{cfg(1), cfg(2), cfg(3)})
	if st := guard.Stats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want the budget of 2", st.Retries)
	}
}

// TestGuardCancellation: a cancelled context aborts the guarded
// evaluation — before the first attempt, and during a retry backoff —
// and aborts are never cached as failures.
func TestGuardCancellation(t *testing.T) {
	guard := resilience.NewGuard(resilience.GuardConfig{
		Retries:     3,
		BaseBackoff: time.Hour, // cancellation must cut the backoff short
		MaxBackoff:  time.Hour,
		Inject: func(skeleton.Config, int) error {
			return errors.New("flaky")
		},
	})
	eval := objective.NewCachingEvaluator([]string{"f"}, 1, func(c skeleton.Config) []float64 {
		return []float64{float64(c[0])}
	})
	eval.WrapEvalFunc(guard.Middleware())

	ctx, cancel := context.WithCancel(context.Background())
	eval.SetContext(ctx)

	// Cancel shortly after the evaluation enters its first backoff.
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if out := eval.EvaluateOne(cfg(4)); out != nil {
		t.Fatalf("cancelled evaluation returned %v", out)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancellation took %v — the backoff was not interrupted", d)
	}
	if guard.Stats().Cancelled == 0 {
		t.Fatal("no cancellation recorded")
	}

	// With the context already dead, further evaluations abort before
	// the guard is even entered (the evaluator short-circuits them).
	if out := eval.EvaluateOne(cfg(5)); out != nil {
		t.Fatalf("pre-cancelled evaluation returned %v", out)
	}
	if guard.Stats().Exhausted != 0 {
		t.Fatalf("stats = %+v: aborts must not be recorded as exhausted failures", guard.Stats())
	}

	// Aborts were not recorded as failures or evaluations.
	if eval.Evaluations() != 0 {
		t.Fatalf("E = %d, want 0 — nothing succeeded yet", eval.Evaluations())
	}
}

// TestGuardComposesWithFaultInjector wires the runtime system's
// deterministic fault model into the guard's Inject hook — the same
// injector that drives the fault-tolerant runtime tests exercises the
// search-side retry machinery.
func TestGuardComposesWithFaultInjector(t *testing.T) {
	inj := &rts.FaultInjector{ErrorRate: 1.0, Seed: 42}
	var cleared atomic.Bool
	guard := resilience.NewGuard(resilience.GuardConfig{
		Retries:     4,
		BaseBackoff: time.Microsecond,
		Inject: func(_ skeleton.Config, attempt int) error {
			if cleared.Load() {
				return nil
			}
			if attempt >= 1 {
				cleared.Store(true) // the fault clears after one retry
				return nil
			}
			return inj.Apply(0)
		},
	})
	eval := objective.NewCachingEvaluator([]string{"f"}, 1, func(c skeleton.Config) []float64 {
		return []float64{float64(c[0])}
	})
	eval.WrapEvalFunc(guard.Middleware())
	if out := eval.EvaluateOne(cfg(5)); out == nil {
		t.Fatal("evaluation failed despite the fault clearing")
	}
	injected, _ := inj.Counts()
	if injected == 0 {
		t.Fatal("fault injector was never consulted")
	}
	if guard.Stats().Retries == 0 {
		t.Fatal("injected faults triggered no retries")
	}
}
