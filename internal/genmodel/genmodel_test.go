package genmodel

import (
	"math"
	"testing"
	"testing/quick"

	"autotune/internal/analyzer"
	"autotune/internal/ir"
	"autotune/internal/irparse"
	"autotune/internal/kernels"
	"autotune/internal/machine"
	"autotune/internal/perfmodel"
)

func deriveFor(t *testing.T, p *ir.Program) (*perfmodel.KernelModel, analyzer.Region) {
	t.Helper()
	regions, err := analyzer.Analyze(p, analyzer.Options{MaxThreads: 40})
	if err != nil {
		t.Fatal(err)
	}
	km, err := Derive(p, regions[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := km.Validate(); err != nil {
		t.Fatal(err)
	}
	return km, regions[0]
}

func TestDeriveMMBasics(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	p := mm.IR(64)
	km, region := deriveFor(t, p)
	if km.TileDims != 3 || region.Band != 3 {
		t.Fatalf("dims = %d", km.TileDims)
	}
	// Flops: 2 per iteration × 64³.
	if got := km.Flops(0); got != 2*64*64*64 {
		t.Fatalf("flops = %v", got)
	}
	if got := km.Accesses(0); got != 4*64*64*64 {
		t.Fatalf("accesses = %v", got)
	}
	// Working set of a (16,16,16) tile: A 16×16, B 16×16, C 16×16
	// doubles = 3·2048 bytes.
	ws := km.WorkingSet(0, []int64{16, 16, 16})
	if ws != 3*16*16*8 {
		t.Fatalf("working set = %d", ws)
	}
	// Total data: 3 matrices.
	if km.TotalData(0) != 3*8*64*64 {
		t.Fatalf("total data = %d", km.TotalData(0))
	}
	// Parallel iterations with collapse(2): ceil(64/16)² = 16.
	if got := km.ParIters(0, []int64{16, 16, 16}); got != 16 {
		t.Fatalf("par iters = %d", got)
	}
}

func TestDeriveStencilHaloFootprint(t *testing.T) {
	j2, _ := kernels.ByName("jacobi-2d")
	p := j2.IR(64)
	km, _ := deriveFor(t, p)
	// The 5-point stencil reads A[i±1][j±1]: each read's footprint for
	// a (8,8) tile is 8×8 elements (single access), but the per-array
	// max across the shifted accesses is still 8×8; the working set is
	// A tile + B tile.
	ws := km.WorkingSet(0, []int64{8, 8})
	if ws < 2*8*8*8 || ws > 4*8*8*8 {
		t.Fatalf("stencil working set = %d", ws)
	}
}

func TestDeriveLevelTrafficMonotone(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	km, _ := deriveFor(t, mm.IR(96))
	for _, tiles := range [][]int64{{8, 8, 8}, {16, 32, 8}, {48, 48, 48}} {
		prev := math.Inf(1)
		for cap := int64(1 << 10); cap <= 1<<26; cap *= 4 {
			c := perfmodel.Capacity{PerThread: cap, Total: cap, Sharers: 1}
			tr := km.LevelTraffic(0, tiles, c)
			if tr < 0 || tr > prev*1.000001 {
				t.Fatalf("traffic not monotone at cap %d: %v -> %v", cap, prev, tr)
			}
			prev = tr
		}
	}
}

func TestDeriveTiledBeatsUntiledEndToEnd(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	p := mm.IR(256)
	km, _ := deriveFor(t, p)
	mo := perfmodel.New(machine.Westmere())
	tiled, err := mo.Time(km, 0, []int64{32, 32, 32}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	untiled, err := mo.Time(km, 0, []int64{1, 1, 1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tiled >= untiled {
		t.Fatalf("derived model: tiled (%v) not better than untiled (%v)", tiled, untiled)
	}
}

func TestDeriveFromParsedSource(t *testing.T) {
	src := `
program custom
array X[128][128] elem 8
array Y[128][128] elem 8
for i = 0..128 {
  for j = 0..128 {
    Y[i][j] = f(X[i][j], X[j][i]) flops 3
  }
}
`
	p, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	km, _ := deriveFor(t, p)
	if km.Flops(0) != 3*128*128 {
		t.Fatalf("flops = %v", km.Flops(0))
	}
	// X[j][i] is strided in j (the innermost): class 2 → streaming
	// traffic includes a 64-byte term.
	c := perfmodel.Capacity{PerThread: 1, Total: 1, Sharers: 1}
	stream := km.LevelTraffic(0, []int64{8, 8}, c)
	if stream < float64(128*128)*64 {
		t.Fatalf("strided access undercounted: %v", stream)
	}
}

func TestDeriveRejectsNonRectangular(t *testing.T) {
	src := `
program tri
array A[32][32] elem 8
for i = 0..32 {
  for j = 0..i {
    A[i][j] = f(A[i][j]) flops 1
  }
}
`
	p, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	regions, err := analyzer.Analyze(p, analyzer.Options{MaxThreads: 8})
	if err != nil {
		t.Skip("triangular nest not tunable at all (fine)")
	}
	if _, err := Derive(p, regions[0]); err == nil {
		t.Fatal("non-rectangular bounds accepted")
	}
}

func TestDeriveBadRegion(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	p := mm.IR(16)
	regions, _ := analyzer.Analyze(p, analyzer.Options{MaxThreads: 4})
	r := regions[0]
	r.Band = 0
	if _, err := Derive(p, r); err == nil {
		t.Fatal("band 0 accepted")
	}
}

// Property: the derived working set is monotone non-decreasing in
// every tile dimension, and ParIters is monotone non-increasing.
func TestDeriveMonotoneProperty(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	p := mm.IR(128)
	km, _ := deriveFor(t, p)
	f := func(a, b, c uint8) bool {
		t1 := []int64{int64(a%64) + 1, int64(b%64) + 1, int64(c%64) + 1}
		t2 := []int64{t1[0] + 8, t1[1] + 8, t1[2] + 8}
		if km.WorkingSet(0, t2) < km.WorkingSet(0, t1) {
			return false
		}
		if km.ParIters(0, t2) > km.ParIters(0, t1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: derived LevelTraffic stays non-negative and finite for
// arbitrary tiles and capacities.
func TestDeriveTrafficSaneProperty(t *testing.T) {
	j2, _ := kernels.ByName("jacobi-2d")
	km, _ := deriveFor(t, j2.IR(64))
	f := func(a, b uint8, capRaw uint16) bool {
		tiles := []int64{int64(a%64) + 1, int64(b%64) + 1}
		cap := perfmodel.Capacity{
			PerThread: int64(capRaw)*64 + 64,
			Total:     int64(capRaw)*64 + 64,
			Sharers:   1,
		}
		tr := km.LevelTraffic(0, tiles, cap)
		return tr >= 0 && !math.IsInf(tr, 0) && !math.IsNaN(tr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
