// Package genmodel derives an analytical performance model
// (perfmodel.KernelModel) automatically from an analyzed MiniIR
// region, so programs supplied as text (internal/irparse) or built
// ad hoc can be tuned without a hand-written kernel model — the
// generic, compiler-based operation the paper targets ("does not
// depend on any analytical models or heuristics" holds for the
// optimizer; the model here substitutes for the paper's real target
// execution, see DESIGN.md §2).
//
// The derivation is purely structural: per-tile array footprints from
// the affine access coefficients, streaming byte costs from innermost
// stride classes, parallel iteration counts from the collapsed tile
// loops. It is less sharp than the hand-tuned kernel models (no
// cross-visit reuse terms) but preserves the mechanisms the optimizer
// needs: capacity cliffs per cache level, halo/footprint growth for
// small tiles, and load-balance granularity.
package genmodel

import (
	"fmt"

	"autotune/internal/analyzer"
	"autotune/internal/ir"
	"autotune/internal/perfmodel"
)

// access is the pre-analyzed form of one array reference.
type access struct {
	arrayDims []int64
	elemBytes int
	// coeffs[d][l] is |coefficient| of band-loop l in index dim d.
	coeffs [][]int64
	// innerClass classifies the access against the innermost loop:
	// 0 = invariant, 1 = unit stride (last index coeff ±1),
	// 2 = strided (line per access).
	innerClass int
	array      string
}

// derived carries everything the closures need.
type derived struct {
	name      string
	band      int
	trips     []int64 // trip count per band loop
	innerMult int64   // product of non-band loop trips below the band
	iters     float64 // total statement executions
	flopsPerI float64
	accPerI   float64
	accesses  []access
	parDepth  int // collapsed loops (1 or 2)
	totalData int64
	innerTrip func(tiles []int64) float64
}

// Derive builds a KernelModel for the region. Every loop bound in the
// nest must be constant (rectangular); triangular regions are
// rejected.
func Derive(p *ir.Program, region analyzer.Region) (*perfmodel.KernelModel, error) {
	loops := region.Loops
	if region.Band < 1 || region.Band > len(loops) {
		return nil, fmt.Errorf("genmodel: band %d out of range", region.Band)
	}
	d := &derived{name: p.Name, band: region.Band, parDepth: 1}
	if region.Collapsible && region.Band >= 2 {
		d.parDepth = 2
	}
	env := map[string]int64{}
	total := int64(1)
	for _, l := range loops {
		if !l.Lo.IsConst() || !l.Hi.IsConst() {
			return nil, fmt.Errorf("genmodel: loop %s has non-constant bounds", l.Var)
		}
		total *= l.TripCount(env)
	}
	d.iters = float64(total)
	d.innerMult = 1
	for i, l := range loops {
		trip := l.TripCount(env)
		if trip < 1 {
			return nil, fmt.Errorf("genmodel: loop %s has empty range", l.Var)
		}
		if i < region.Band {
			d.trips = append(d.trips, trip)
		} else {
			d.innerMult *= trip
		}
	}

	_, stmts := ir.PerfectNest(region.Root)
	if len(stmts) == 0 {
		return nil, fmt.Errorf("genmodel: region has no statements")
	}
	bandVars := make([]string, region.Band)
	for i := 0; i < region.Band; i++ {
		bandVars[i] = loops[i].Var
	}
	innermost := loops[len(loops)-1].Var
	seenArrays := map[string]int64{}
	for _, s := range stmts {
		d.flopsPerI += float64(s.Flops)
		for _, ac := range s.Accesses() {
			d.accPerI++
			arr, ok := p.ArrayByName(ac.Array)
			if !ok {
				return nil, fmt.Errorf("genmodel: unknown array %s", ac.Array)
			}
			seenArrays[arr.Name] = arr.Bytes()
			a := access{arrayDims: arr.Dims, elemBytes: arr.ElemBytes, array: arr.Name}
			for _, ix := range ac.Indices {
				row := make([]int64, region.Band)
				for l, v := range bandVars {
					c := ix.Coeff(v)
					if c < 0 {
						c = -c
					}
					row[l] = c
				}
				a.coeffs = append(a.coeffs, row)
			}
			// Innermost stride classification on the last index.
			last := ac.Indices[len(ac.Indices)-1]
			c := last.Coeff(innermost)
			if c < 0 {
				c = -c
			}
			switch {
			case c == 0 && !usesVar(ac, innermost):
				a.innerClass = 0
			case c == 1:
				a.innerClass = 1
			default:
				a.innerClass = 2
			}
			d.accesses = append(d.accesses, a)
		}
	}
	for _, b := range seenArrays {
		d.totalData += b
	}
	d.innerTrip = func(tiles []int64) float64 {
		if region.Band == len(loops) {
			t := tiles[region.Band-1]
			trip := d.trips[region.Band-1]
			if t > trip {
				t = trip
			}
			if t < 1 {
				t = 1
			}
			return float64(t)
		}
		return float64(loops[len(loops)-1].TripCount(env))
	}

	band := region.Band
	km := &perfmodel.KernelModel{
		Name:     p.Name,
		TileDims: band,
		Flops:    func(n int64) float64 { return d.iters * d.flopsPerI },
		Accesses: func(n int64) float64 { return d.iters * d.accPerI },
		WorkingSet: func(n int64, tiles []int64) int64 {
			return d.workingSet(tiles)
		},
		LevelTraffic: func(n int64, tiles []int64, c perfmodel.Capacity) float64 {
			return d.levelTraffic(tiles, c)
		},
		ParIters: func(n int64, tiles []int64) int64 {
			iters := int64(1)
			for l := 0; l < d.parDepth && l < band; l++ {
				iters *= ceilDiv(d.trips[l], clampTile(tiles[l], d.trips[l]))
			}
			return iters
		},
		InnerTrip: func(n int64, tiles []int64) float64 { return d.innerTrip(tiles) },
		TotalData: func(n int64) int64 { return d.totalData },
	}
	return km, nil
}

func usesVar(ac ir.Access, v string) bool {
	for _, ix := range ac.Indices {
		if ix.Coeff(v) != 0 {
			return true
		}
	}
	return false
}

func clampTile(t, trip int64) int64 {
	if t < 1 {
		return 1
	}
	if t > trip {
		return trip
	}
	return t
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// footprint returns one access's per-tile byte footprint: per array
// dimension the index sweeps an extent of 1 + Σ_l |c_l|·(T_l − 1)
// elements (clamped by the array dimension) while the band iterators
// move within one tile.
func (a access) footprint(tiles []int64, trips []int64) int64 {
	bytes := int64(a.elemBytes)
	for dim, row := range a.coeffs {
		extent := int64(1)
		for l, c := range row {
			if c == 0 {
				continue
			}
			t := clampTile(tiles[l], trips[l])
			extent += c * (t - 1)
		}
		if dim < len(a.arrayDims) && extent > a.arrayDims[dim] {
			extent = a.arrayDims[dim]
		}
		bytes *= extent
	}
	return bytes
}

// workingSet sums per-array maxima of the tile footprints.
func (d *derived) workingSet(tiles []int64) int64 {
	perArray := map[string]int64{}
	for _, a := range d.accesses {
		fp := a.footprint(tiles, d.trips)
		if fp > perArray[a.array] {
			perArray[a.array] = fp
		}
	}
	total := int64(0)
	for _, fp := range perArray {
		total += fp
	}
	return total
}

// levelTraffic: if the tile working set fits the per-thread share, each
// tile visit loads its footprint once; otherwise accesses stream at
// their innermost stride class cost. The streaming cost also caps the
// tiled cost so the function stays monotone in capacity.
func (d *derived) levelTraffic(tiles []int64, c perfmodel.Capacity) float64 {
	// Streaming bytes per statement execution.
	stream := 0.0
	innerTrip := d.innerTrip(tiles)
	if innerTrip < 1 {
		innerTrip = 1
	}
	for _, a := range d.accesses {
		switch a.innerClass {
		case 0:
			stream += float64(a.elemBytes) / innerTrip
		case 1:
			stream += float64(a.elemBytes)
		default:
			stream += 64
		}
	}
	streamBytes := d.iters * stream

	ws := d.workingSet(tiles)
	if int64(float64(ws)) > c.PerThread {
		return streamBytes
	}
	tileCount := 1.0
	perVisit := 0.0
	perArray := map[string]int64{}
	for _, a := range d.accesses {
		fp := a.footprint(tiles, d.trips)
		if fp > perArray[a.array] {
			perArray[a.array] = fp
		}
	}
	for _, fp := range perArray {
		perVisit += float64(fp)
	}
	for l, trip := range d.trips {
		tileCount *= float64(ceilDiv(trip, clampTile(tiles[l], trip)))
	}
	tiled := tileCount * perVisit
	if tiled > streamBytes {
		return streamBytes
	}
	return tiled
}
