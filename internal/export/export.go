// Package export writes experiment results in formats external tools
// consume: CSV for point clouds and series, JSON for fronts, and
// ready-to-run gnuplot scripts for the paper's figures. It decouples
// the plotting workflow from the text renderings in
// internal/experiments.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

// FrontJSON serializes a Pareto front as a JSON array of
// {config, objectives} records. Objectives are emitted as an ordered
// {name, value} pair list — not a map — so the byte output is fully
// deterministic and preserves objective order: committed artifacts and
// tuning-database exports stay byte-stable across runs.
func FrontJSON(w io.Writer, front []pareto.Point, objectiveNames []string) error {
	type objPair struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	type rec struct {
		Config     []int64   `json:"config,omitempty"`
		Objectives []objPair `json:"objectives"`
	}
	var out []rec
	for _, p := range front {
		var r rec
		if cfg, ok := p.Payload.(skeleton.Config); ok {
			r.Config = append([]int64(nil), cfg...)
		}
		for i, v := range p.Objectives {
			name := fmt.Sprintf("f%d", i)
			if i < len(objectiveNames) {
				name = objectiveNames[i]
			}
			r.Objectives = append(r.Objectives, objPair{Name: name, Value: v})
		}
		out = append(out, r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// FrontCSV writes a front as CSV: config columns then objectives.
func FrontCSV(w io.Writer, front []pareto.Point, paramNames, objectiveNames []string) error {
	header := append(append([]string{}, paramNames...), objectiveNames...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, p := range front {
		var cells []string
		if cfg, ok := p.Payload.(skeleton.Config); ok {
			for _, v := range cfg {
				cells = append(cells, fmt.Sprint(v))
			}
		}
		for _, o := range p.Objectives {
			cells = append(cells, fmt.Sprintf("%g", o))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SeriesCSV writes per-thread-count (x, y) point series as long-format
// CSV: series,x,y.
func SeriesCSV(w io.Writer, series map[int][][2]float64) error {
	if _, err := fmt.Fprintln(w, "threads,time,resources"); err != nil {
		return err
	}
	var keys []int
	for k := range series {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		for _, p := range series[k] {
			if _, err := fmt.Fprintf(w, "%d,%g,%g\n", k, p[0], p[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// HeatmapCSV writes a relative-time matrix as long-format CSV:
// t1,t2,relTime.
func HeatmapCSV(w io.Writer, t1, t2 []int64, rel [][]float64) error {
	if len(rel) != len(t1) {
		return fmt.Errorf("export: %d rows for %d t1 values", len(rel), len(t1))
	}
	if _, err := fmt.Fprintln(w, "t1,t2,relTime"); err != nil {
		return err
	}
	for i := range rel {
		if len(rel[i]) != len(t2) {
			return fmt.Errorf("export: row %d has %d cols for %d t2 values", i, len(rel[i]), len(t2))
		}
		for j := range rel[i] {
			if _, err := fmt.Fprintf(w, "%d,%d,%g\n", t1[i], t2[j], rel[i][j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// GnuplotFronts emits a gnuplot script plotting one or more front CSV
// files (as produced by FrontCSV with time/resources objectives) into
// a Fig. 9-style comparison.
func GnuplotFronts(w io.Writer, title string, csvFiles map[string]string) error {
	if len(csvFiles) == 0 {
		return fmt.Errorf("export: no CSV files")
	}
	fmt.Fprintln(w, "set datafile separator ','")
	fmt.Fprintf(w, "set title %q\n", title)
	fmt.Fprintln(w, "set xlabel 'execution time [s]'")
	fmt.Fprintln(w, "set ylabel 'resource usage'")
	fmt.Fprintln(w, "set key top right")
	var names []string
	for name := range csvFiles {
		names = append(names, name)
	}
	sort.Strings(names)
	// The objectives are the last two columns of each CSV; a stats
	// pass discovers the column count so config columns of any width
	// work.
	var plots []string
	for _, name := range names {
		plots = append(plots, fmt.Sprintf("%q skip 1 using (column(cols-1)):(column(cols)) with linespoints title %q",
			csvFiles[name], name))
	}
	fmt.Fprintf(w, "stats %q skip 1 nooutput\n", csvFiles[names[0]])
	fmt.Fprintln(w, "cols = STATS_columns")
	fmt.Fprintf(w, "plot %s\n", strings.Join(plots, ", \\\n     "))
	return nil
}

// GnuplotHeatmap emits a gnuplot script rendering a HeatmapCSV file as
// a Fig. 2-style map.
func GnuplotHeatmap(w io.Writer, title, csvFile string) error {
	fmt.Fprintln(w, "set datafile separator ','")
	fmt.Fprintf(w, "set title %q\n", title)
	fmt.Fprintln(w, "set xlabel 't2'")
	fmt.Fprintln(w, "set ylabel 't1'")
	fmt.Fprintln(w, "set logscale xy 2")
	fmt.Fprintln(w, "set palette negative")
	fmt.Fprintln(w, "set view map")
	fmt.Fprintf(w, "splot %q skip 1 using 2:1:3 with points pointtype 5 pointsize 2 palette notitle\n", csvFile)
	return nil
}
