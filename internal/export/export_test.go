package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

func sampleFront() []pareto.Point {
	return []pareto.Point{
		{Payload: skeleton.Config{64, 64, 64, 10}, Objectives: []float64{0.12, 1.2}},
		{Payload: skeleton.Config{32, 32, 64, 40}, Objectives: []float64{0.04, 1.6}},
	}
}

func TestFrontJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := FrontJSON(&buf, sampleFront(), []string{"time", "resources"}); err != nil {
		t.Fatal(err)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("records = %d", len(out))
	}
	objs := out[0]["objectives"].([]interface{})
	if len(objs) != 2 {
		t.Fatalf("objectives = %v", objs)
	}
	first := objs[0].(map[string]interface{})
	if first["name"].(string) != "time" || first["value"].(float64) != 0.12 {
		t.Fatalf("objectives = %v", objs)
	}
	cfg := out[1]["config"].([]interface{})
	if len(cfg) != 4 || cfg[3].(float64) != 40 {
		t.Fatalf("config = %v", cfg)
	}
}

// The JSON rendering must be byte-stable: objectives are ordered pairs,
// not maps, so repeated exports of the same front are identical.
func TestFrontJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	names := []string{"time", "resources"}
	if err := FrontJSON(&a, sampleFront(), names); err != nil {
		t.Fatal(err)
	}
	if err := FrontJSON(&b, sampleFront(), names); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("FrontJSON output differs between runs")
	}
	// Objective order must follow the names slice, not string sorting.
	if ti := strings.Index(a.String(), "time"); ti > strings.Index(a.String(), "resources") {
		t.Fatal("objective order not preserved")
	}
}

func TestFrontJSONUnnamedObjectives(t *testing.T) {
	var buf bytes.Buffer
	if err := FrontJSON(&buf, sampleFront(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"f0"`) {
		t.Fatal("fallback objective names missing")
	}
}

func TestFrontCSV(t *testing.T) {
	var buf bytes.Buffer
	err := FrontCSV(&buf, sampleFront(),
		[]string{"t1", "t2", "t3", "threads"}, []string{"time", "resources"})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "t1,t2,t3,threads,time,resources" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "32,32,64,40,0.04,1.6" {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := SeriesCSV(&buf, map[int][][2]float64{
		10: {{0.1, 1.0}},
		1:  {{1.0, 1.0}, {2.0, 2.0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	// Sorted by thread count.
	if !strings.HasPrefix(lines[1], "1,") || !strings.HasPrefix(lines[3], "10,") {
		t.Fatalf("ordering wrong: %v", lines)
	}
}

func TestHeatmapCSV(t *testing.T) {
	var buf bytes.Buffer
	err := HeatmapCSV(&buf,
		[]int64{1, 2}, []int64{10, 20},
		[][]float64{{1.0, 1.5}, {2.0, 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2,20,2.5") {
		t.Fatalf("csv = %s", buf.String())
	}
	// Shape validation.
	if err := HeatmapCSV(&buf, []int64{1}, []int64{1}, nil); err == nil {
		t.Error("row mismatch accepted")
	}
	if err := HeatmapCSV(&buf, []int64{1}, []int64{1, 2}, [][]float64{{1}}); err == nil {
		t.Error("col mismatch accepted")
	}
}

func TestGnuplotFronts(t *testing.T) {
	var buf bytes.Buffer
	err := GnuplotFronts(&buf, "Fig 9", map[string]string{
		"rs-gde3":     "rs.csv",
		"brute-force": "bf.csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"set title \"Fig 9\"", "stats", "plot", "\"rs.csv\"", "\"bf.csv\"", "linespoints"} {
		if !strings.Contains(s, want) {
			t.Errorf("script missing %q:\n%s", want, s)
		}
	}
	if err := GnuplotFronts(&buf, "x", nil); err == nil {
		t.Error("empty file set accepted")
	}
}

func TestGnuplotHeatmap(t *testing.T) {
	var buf bytes.Buffer
	if err := GnuplotHeatmap(&buf, "Fig 2", "hm.csv"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"set view map", "splot", "\"hm.csv\"", "palette"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("script missing %q", want)
		}
	}
}
