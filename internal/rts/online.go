package rts

import (
	"errors"
	"fmt"
	"time"

	"autotune/internal/multiversion"
	"autotune/internal/resilience"
	"autotune/internal/stats"
)

// OnlineTuner refines a parameterized region while the application
// runs — the "online tuning of program parameters" approach the paper
// contrasts with its offline search (§I). It needs the parameterized
// code path (multiversion.Parameterized), because multi-versioned
// units can only execute their compiled Pareto points; parameterized
// code can execute arbitrary neighbours.
//
// The tuner performs randomized hill climbing seeded from a
// compile-time configuration: every Step proposes a neighbour of the
// incumbent (one parameter nudged geometrically), measures it, and
// accepts improvements. Combining both worlds — offline RS-GDE3 for
// the seed, online refinement for drift (input changes, co-runners) —
// is exactly the hybrid the paper's future work sketches.
type OnlineTuner struct {
	region *multiversion.Parameterized
	lo, hi []int64 // inclusive bounds per parameter [tiles..., threads]

	// Measure times one configuration; the default executes the
	// region's entry and returns the wall time. Injectable for tests
	// and for model-backed simulations.
	Measure func(tiles []int64, threads int) (float64, error)

	// Timeout bounds one measurement: a configuration that runs longer
	// is abandoned with resilience.ErrTimedOut and tolerated like any
	// other failed measurement (counted in Failures, rejected as a
	// candidate), so a pathological neighbour cannot stall online
	// tuning. Zero disables the bound.
	Timeout time.Duration

	rng       interface{ Intn(n int) int }
	rngF      interface{ Float64() float64 }
	best      []int64
	bestTime  float64
	steps     int
	accepted  int
	failures  int
	haveFirst bool
}

// NewOnlineTuner builds a tuner over the parameterized region with the
// given per-parameter inclusive bounds (layout [tiles..., threads]) and
// the seed configuration taken from the metadata table at seedIdx.
func NewOnlineTuner(region *multiversion.Parameterized, lo, hi []int64, seedIdx int, seed int64) (*OnlineTuner, error) {
	if region == nil || region.Entry == nil {
		return nil, errors.New("rts: online tuner needs a parameterized region")
	}
	if len(lo) != len(hi) || len(lo) == 0 {
		return nil, errors.New("rts: online tuner needs aligned bounds")
	}
	for i := range lo {
		if lo[i] > hi[i] || lo[i] < 1 {
			return nil, fmt.Errorf("rts: bad bound [%d, %d] at parameter %d", lo[i], hi[i], i)
		}
	}
	if seedIdx < 0 || seedIdx >= len(region.Metas) {
		return nil, fmt.Errorf("rts: seed index %d out of range", seedIdx)
	}
	meta := region.Metas[seedIdx]
	cfg := append(append([]int64{}, meta.Tiles...), int64(meta.Threads))
	if len(cfg) != len(lo) {
		return nil, fmt.Errorf("rts: seed has %d parameters, bounds have %d", len(cfg), len(lo))
	}
	r := stats.NewRand(seed)
	o := &OnlineTuner{
		region: region,
		lo:     append([]int64{}, lo...),
		hi:     append([]int64{}, hi...),
		rng:    r,
		rngF:   r,
		best:   cfg,
	}
	o.Measure = func(tiles []int64, threads int) (float64, error) {
		start := time.Now()
		if err := region.InvokeConfig(tiles, threads); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	return o, nil
}

// Best returns the incumbent configuration and its measured time
// (NaN-free only after the first Step).
func (o *OnlineTuner) Best() (tiles []int64, threads int, seconds float64) {
	n := len(o.best)
	return append([]int64{}, o.best[:n-1]...), int(o.best[n-1]), o.bestTime
}

// Stats returns (steps performed, proposals accepted).
func (o *OnlineTuner) Stats() (steps, accepted int) { return o.steps, o.accepted }

// Failures returns how many failed measurements were tolerated so far.
// Failures never displace the incumbent and never abort a Run; the
// tuner simply rejects the faulty proposal (or retries the seed
// measurement on the next step).
func (o *OnlineTuner) Failures() int { return o.failures }

// Step measures the incumbent on the first call; afterwards it
// proposes one nudged neighbour, measures it, and keeps it when
// faster. It returns whether the incumbent improved. Failed
// measurements are tolerated: they count in Failures and reject only
// the faulty proposal.
func (o *OnlineTuner) Step() (bool, error) {
	o.steps++
	if !o.haveFirst {
		t, err := o.measure(o.best)
		if err != nil {
			// Tolerate a faulty seed measurement; retry next step.
			o.failures++
			return false, nil
		}
		o.bestTime = t
		o.haveFirst = true
		return true, nil
	}
	cand := append([]int64{}, o.best...)
	dim := o.rng.Intn(len(cand))
	// Geometric nudge: multiply or divide by a factor in (1, 2].
	factor := 1 + o.rngF.Float64()
	v := float64(cand[dim])
	if o.rngF.Float64() < 0.5 {
		v /= factor
	} else {
		v *= factor
	}
	nv := int64(v + 0.5)
	if nv < o.lo[dim] {
		nv = o.lo[dim]
	}
	if nv > o.hi[dim] {
		nv = o.hi[dim]
	}
	if nv == cand[dim] {
		return false, nil // degenerate proposal; costs nothing
	}
	cand[dim] = nv
	t, err := o.measure(cand)
	if err != nil {
		// A failing configuration is simply rejected.
		o.failures++
		return false, nil
	}
	if t < o.bestTime {
		o.best = cand
		o.bestTime = t
		o.accepted++
		return true, nil
	}
	return false, nil
}

// Run performs n steps and returns the number of improvements.
func (o *OnlineTuner) Run(n int) (int, error) {
	improved := 0
	for i := 0; i < n; i++ {
		ok, err := o.Step()
		if err != nil {
			return improved, err
		}
		if ok {
			improved++
		}
	}
	return improved, nil
}

func (o *OnlineTuner) measure(cfg []int64) (float64, error) {
	n := len(cfg)
	var t float64
	err := resilience.RunWithTimeout(o.Timeout, func() error {
		var merr error
		t, merr = o.Measure(cfg[:n-1], int(cfg[n-1]))
		return merr
	})
	if err != nil {
		return 0, err
	}
	return t, nil
}
