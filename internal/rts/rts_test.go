package rts

import (
	"errors"
	"testing"

	"autotune/internal/multiversion"
	"autotune/internal/skeleton"
)

func boundUnit(t *testing.T) (*multiversion.Unit, *[]int) {
	t.Helper()
	u := &multiversion.Unit{
		Region:         "mm#0",
		ObjectiveNames: []string{"time", "resources"},
		Versions: []multiversion.Version{
			{Meta: multiversion.Meta{Config: skeleton.Config{64, 1}, Tiles: []int64{64}, Threads: 1, Objectives: []float64{1.0, 1.0}}},
			{Meta: multiversion.Meta{Config: skeleton.Config{32, 10}, Tiles: []int64{32}, Threads: 10, Objectives: []float64{0.12, 1.2}}},
			{Meta: multiversion.Meta{Config: skeleton.Config{16, 40}, Tiles: []int64{16}, Threads: 40, Objectives: []float64{0.04, 1.6}}},
		},
	}
	executed := &[]int{}
	if err := u.Bind(func(m multiversion.Meta) (multiversion.Entry, error) {
		threads := m.Threads
		return func() error {
			*executed = append(*executed, threads)
			return nil
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	return u, executed
}

func TestNewValidation(t *testing.T) {
	u, _ := boundUnit(t)
	if _, err := New(u, nil); err == nil {
		t.Error("nil policy accepted")
	}
	unbound := &multiversion.Unit{
		Region:         "r",
		ObjectiveNames: []string{"t"},
		Versions:       []multiversion.Version{{Meta: multiversion.Meta{Threads: 1, Objectives: []float64{1}}}},
	}
	if _, err := New(unbound, Fixed{}); err == nil {
		t.Error("unbound entries accepted")
	}
	if _, err := New(u, Fixed{}); err != nil {
		t.Errorf("valid unit rejected: %v", err)
	}
}

func TestInvokeWeightedSum(t *testing.T) {
	u, executed := boundUnit(t)
	rt, err := New(u, WeightedSum{Weights: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := rt.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("time-priority selection = %d, want 2", idx)
	}
	if len(*executed) != 1 || (*executed)[0] != 40 {
		t.Fatalf("executed = %v", *executed)
	}
}

func TestPolicySwapChangesSelection(t *testing.T) {
	u, executed := boundUnit(t)
	rt, _ := New(u, WeightedSum{Weights: []float64{1, 0}})
	if _, err := rt.Invoke(); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetPolicy(WeightedSum{Weights: []float64{0, 1}}); err != nil {
		t.Fatal(err)
	}
	idx, err := rt.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("efficiency-priority selection = %d, want 0", idx)
	}
	if len(*executed) != 2 || (*executed)[1] != 1 {
		t.Fatalf("executed = %v", *executed)
	}
	if err := rt.SetPolicy(nil); err == nil {
		t.Error("nil policy swap accepted")
	}
}

func TestContextCoreBudgetRestrictsSelection(t *testing.T) {
	u, _ := boundUnit(t)
	rt, _ := New(u, WeightedSum{Weights: []float64{1, 0}})
	rt.SetContext(Context{AvailableCores: 12})
	idx, err := rt.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("12-core selection = %d, want 1 (10 threads)", idx)
	}
	rt.SetContext(Context{})
	idx, _ = rt.Invoke()
	if idx != 2 {
		t.Fatalf("unrestricted selection = %d, want 2", idx)
	}
}

func TestWeightedSumNoFeasibleVersion(t *testing.T) {
	u, _ := boundUnit(t)
	p := WeightedSum{Weights: []float64{1, 0}}
	if _, err := p.Select(u, Context{AvailableCores: 0}); err != nil {
		t.Fatal(err)
	}
	// Versions need at least 1 core; AvailableCores is positive but
	// lower than every version's thread count cannot happen here (min
	// is 1), so shrink the table.
	solo := &multiversion.Unit{Region: "r", ObjectiveNames: []string{"t", "r"},
		Versions: u.Versions[2:]}
	if _, err := p.Select(solo, Context{AvailableCores: 8}); err == nil {
		t.Error("expected no-feasible-version error")
	}
}

func TestFastestWithinBudgetPolicy(t *testing.T) {
	u, _ := boundUnit(t)
	p := FastestWithinBudget{Optimize: 0, Constrain: 1, Budget: 1.3}
	idx, err := p.Select(u, Context{})
	if err != nil || idx != 1 {
		t.Fatalf("selection = %d, %v", idx, err)
	}
	// Core restriction overrides.
	idx, err = p.Select(u, Context{AvailableCores: 1})
	if err != nil || idx != 0 {
		t.Fatalf("restricted selection = %d, %v", idx, err)
	}
	if p.Name() == "" {
		t.Error("policy name empty")
	}
}

func TestFixedPolicy(t *testing.T) {
	u, _ := boundUnit(t)
	idx, err := Fixed{Index: 1}.Select(u, Context{})
	if err != nil || idx != 1 {
		t.Fatalf("fixed selection = %d, %v", idx, err)
	}
	if _, err := (Fixed{Index: 9}).Select(u, Context{}); err == nil {
		t.Error("out-of-range fixed index accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	u, _ := boundUnit(t)
	rt, _ := New(u, Fixed{Index: 1})
	for i := 0; i < 3; i++ {
		if _, err := rt.Invoke(); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats()
	if st.Invocations != 3 || st.PerVersion[1] != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Stats are a copy.
	st.PerVersion[1] = 99
	if rt.Stats().PerVersion[1] != 3 {
		t.Fatal("Stats leaked internal map")
	}
	if rt.Unit() != u {
		t.Fatal("Unit accessor wrong")
	}
}

func TestInvokeEntryFailurePropagates(t *testing.T) {
	u, _ := boundUnit(t)
	u.Versions[0].Entry = func() error { return errors.New("boom") }
	rt, _ := New(u, Fixed{Index: 0})
	if _, err := rt.Invoke(); err == nil {
		t.Fatal("entry failure swallowed")
	}
	if rt.Stats().Invocations != 0 {
		t.Fatal("failed invocation counted")
	}
}
