// Package rts is the runtime-system component of the framework (label
// 6 in the paper's Fig. 3): when a multi-versioned region is invoked,
// the runtime selects one of its code versions according to a
// dynamically configurable policy, executes it, and records invocation
// statistics.
//
// Policies implement the strategies sketched in the paper: a
// user-supplied weighted sum over the objective metadata, constraint
// policies ("fastest within a resource budget"), and adaptation to a
// changing number of available cores. The policy may be swapped at any
// time — the trade-off decision is deferred until execution, which is
// the point of multi-versioning.
package rts

import (
	"errors"
	"fmt"
	"sync"

	"autotune/internal/multiversion"
)

// Context carries the runtime conditions a policy may react to.
type Context struct {
	// AvailableCores caps the thread count of eligible versions;
	// 0 means unrestricted.
	AvailableCores int
}

// Policy selects a version index from a unit under a runtime context.
type Policy interface {
	// Select returns the chosen version index.
	Select(u *multiversion.Unit, ctx Context) (int, error)
	// Name identifies the policy in logs and stats.
	Name() string
}

// WeightedSum implements the paper's Σ w_c·f_c(v) selection.
type WeightedSum struct {
	Weights []float64
}

// Name implements Policy.
func (p WeightedSum) Name() string { return "weighted-sum" }

// Select implements Policy. When the context restricts the core
// budget, versions needing more threads are excluded before the
// weighted scoring.
func (p WeightedSum) Select(u *multiversion.Unit, ctx Context) (int, error) {
	if ctx.AvailableCores <= 0 {
		return u.SelectWeighted(p.Weights)
	}
	// Restrict to feasible versions by building a filtered view.
	var feasible []int
	for i, v := range u.Versions {
		if v.Meta.Threads <= ctx.AvailableCores {
			feasible = append(feasible, i)
		}
	}
	if len(feasible) == 0 {
		return 0, fmt.Errorf("rts: no version fits %d cores", ctx.AvailableCores)
	}
	sub := &multiversion.Unit{Region: u.Region, ObjectiveNames: u.ObjectiveNames}
	for _, i := range feasible {
		sub.Versions = append(sub.Versions, u.Versions[i])
	}
	j, err := sub.SelectWeighted(p.Weights)
	if err != nil {
		return 0, err
	}
	return feasible[j], nil
}

// FastestWithinBudget selects the version with the lowest value of the
// Optimize objective among versions whose Constrain objective stays
// within Budget.
type FastestWithinBudget struct {
	Optimize  int
	Constrain int
	Budget    float64
}

// Name implements Policy.
func (p FastestWithinBudget) Name() string { return "fastest-within-budget" }

// Select implements Policy.
func (p FastestWithinBudget) Select(u *multiversion.Unit, ctx Context) (int, error) {
	idx, err := u.SelectConstrained(p.Optimize, p.Constrain, p.Budget)
	if err != nil {
		return 0, err
	}
	if ctx.AvailableCores > 0 && u.Versions[idx].Meta.Threads > ctx.AvailableCores {
		if j, ok := u.SelectMaxThreads(ctx.AvailableCores, p.Optimize); ok {
			return j, nil
		}
		return 0, fmt.Errorf("rts: no version fits %d cores", ctx.AvailableCores)
	}
	return idx, nil
}

// Fixed always selects one version — useful for pinning and tests.
type Fixed struct{ Index int }

// Name implements Policy.
func (p Fixed) Name() string { return "fixed" }

// Select implements Policy.
func (p Fixed) Select(u *multiversion.Unit, ctx Context) (int, error) {
	if p.Index < 0 || p.Index >= len(u.Versions) {
		return 0, fmt.Errorf("rts: fixed index %d out of range", p.Index)
	}
	return p.Index, nil
}

// InvocationStats records which versions ran.
type InvocationStats struct {
	Invocations int
	// PerVersion counts invocations per version index.
	PerVersion map[int]int
}

// Runtime dispatches invocations of a multi-versioned region.
type Runtime struct {
	mu     sync.Mutex
	unit   *multiversion.Unit
	policy Policy
	ctx    Context
	stats  InvocationStats
}

// New builds a runtime for the unit with the given initial policy.
// Every version must have an executable entry bound.
func New(u *multiversion.Unit, p Policy) (*Runtime, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	for i, v := range u.Versions {
		if v.Entry == nil {
			return nil, fmt.Errorf("rts: version %d has no entry bound", i)
		}
	}
	if p == nil {
		return nil, errors.New("rts: nil policy")
	}
	return &Runtime{unit: u, policy: p, stats: InvocationStats{PerVersion: map[int]int{}}}, nil
}

// SetPolicy swaps the selection policy; takes effect on the next
// invocation.
func (r *Runtime) SetPolicy(p Policy) error {
	if p == nil {
		return errors.New("rts: nil policy")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policy = p
	return nil
}

// SetContext updates the runtime conditions (e.g. a shrunk core
// budget).
func (r *Runtime) SetContext(ctx Context) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ctx = ctx
}

// Invoke selects a version under the current policy and context,
// executes it, and returns the selected index.
func (r *Runtime) Invoke() (int, error) {
	r.mu.Lock()
	policy, ctx := r.policy, r.ctx
	r.mu.Unlock()
	idx, err := policy.Select(r.unit, ctx)
	if err != nil {
		return 0, err
	}
	if idx < 0 || idx >= len(r.unit.Versions) {
		return 0, fmt.Errorf("rts: policy %s selected invalid version %d", policy.Name(), idx)
	}
	if err := r.unit.Versions[idx].Entry(); err != nil {
		return idx, fmt.Errorf("rts: version %d failed: %w", idx, err)
	}
	r.mu.Lock()
	r.stats.Invocations++
	r.stats.PerVersion[idx]++
	r.mu.Unlock()
	return idx, nil
}

// Stats returns a copy of the invocation statistics.
func (r *Runtime) Stats() InvocationStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := InvocationStats{Invocations: r.stats.Invocations, PerVersion: map[int]int{}}
	for k, v := range r.stats.PerVersion {
		out.PerVersion[k] = v
	}
	return out
}

// Unit returns the underlying multi-versioned unit.
func (r *Runtime) Unit() *multiversion.Unit { return r.unit }
