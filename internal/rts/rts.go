// Package rts is the runtime-system component of the framework (label
// 6 in the paper's Fig. 3): when a multi-versioned region is invoked,
// the runtime selects one of its code versions according to a
// dynamically configurable policy, executes it, and records invocation
// statistics.
//
// Policies implement the strategies sketched in the paper: a
// user-supplied weighted sum over the objective metadata, constraint
// policies ("fastest within a resource budget"), and adaptation to a
// changing number of available cores. The policy may be swapped at any
// time — the trade-off decision is deferred until execution, which is
// the point of multi-versioning.
//
// The runtime is fault tolerant: policies expose their full preference
// ranking (Ranker), so when a selected version's entry fails the
// invocation falls back to the next-ranked feasible version instead of
// failing the caller. A per-version circuit breaker (health.go)
// quarantines versions that fail repeatedly, and an injectable fault
// model (faults.go) makes the whole machinery testable end-to-end.
package rts

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"autotune/internal/multiversion"
	"autotune/internal/resilience"
)

// Context carries the runtime conditions a policy may react to.
type Context struct {
	// AvailableCores caps the thread count of eligible versions;
	// 0 means unrestricted.
	AvailableCores int
}

// Policy selects a version index from a unit under a runtime context.
type Policy interface {
	// Select returns the chosen version index.
	Select(u *multiversion.Unit, ctx Context) (int, error)
	// Name identifies the policy in logs and stats.
	Name() string
}

// Ranker is an optional Policy refinement: policies that can order the
// whole version table let the runtime fall back to the next-best
// version when the preferred one fails. Rank returns feasible version
// indices in descending preference; its first element must agree with
// what Select would pick under the same conditions (modulo randomized
// exploration). Policies without Rank get single-attempt semantics.
type Ranker interface {
	Rank(u *multiversion.Unit, ctx Context) ([]int, error)
}

// WeightedSum implements the paper's Σ w_c·f_c(v) selection.
type WeightedSum struct {
	Weights []float64
}

// Name implements Policy.
func (p WeightedSum) Name() string { return "weighted-sum" }

// Select implements Policy. When the context restricts the core
// budget, versions needing more threads are excluded before the
// weighted scoring.
func (p WeightedSum) Select(u *multiversion.Unit, ctx Context) (int, error) {
	order, err := p.Rank(u, ctx)
	if err != nil {
		return 0, err
	}
	return order[0], nil
}

// Rank implements Ranker: all feasible versions by ascending weighted
// score.
func (p WeightedSum) Rank(u *multiversion.Unit, ctx Context) ([]int, error) {
	if ctx.AvailableCores <= 0 {
		return u.RankWeighted(p.Weights)
	}
	// Restrict to feasible versions by building a filtered view; the
	// objective normalization then spans only the feasible table,
	// matching the original Select semantics.
	var feasible []int
	for i, v := range u.Versions {
		if v.Meta.Threads <= ctx.AvailableCores {
			feasible = append(feasible, i)
		}
	}
	if len(feasible) == 0 {
		return nil, fmt.Errorf("rts: no version fits %d cores", ctx.AvailableCores)
	}
	sub := &multiversion.Unit{Region: u.Region, ObjectiveNames: u.ObjectiveNames}
	for _, i := range feasible {
		sub.Versions = append(sub.Versions, u.Versions[i])
	}
	order, err := sub.RankWeighted(p.Weights)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(order))
	for k, j := range order {
		out[k] = feasible[j]
	}
	return out, nil
}

// FastestWithinBudget selects the version with the lowest value of the
// Optimize objective among versions whose Constrain objective stays
// within Budget.
type FastestWithinBudget struct {
	Optimize  int
	Constrain int
	Budget    float64
}

// Name implements Policy.
func (p FastestWithinBudget) Name() string { return "fastest-within-budget" }

// Select implements Policy.
func (p FastestWithinBudget) Select(u *multiversion.Unit, ctx Context) (int, error) {
	idx, err := u.SelectConstrained(p.Optimize, p.Constrain, p.Budget)
	if err != nil {
		return 0, err
	}
	if ctx.AvailableCores > 0 && u.Versions[idx].Meta.Threads > ctx.AvailableCores {
		if j, ok := u.SelectMaxThreads(ctx.AvailableCores, p.Optimize); ok {
			return j, nil
		}
		return 0, fmt.Errorf("rts: no version fits %d cores", ctx.AvailableCores)
	}
	return idx, nil
}

// Rank implements Ranker: within-budget versions by ascending Optimize
// objective, then the rest by ascending Constrain objective, filtered
// to the core budget.
func (p FastestWithinBudget) Rank(u *multiversion.Unit, ctx Context) ([]int, error) {
	order, err := u.RankConstrained(p.Optimize, p.Constrain, p.Budget)
	if err != nil {
		return nil, err
	}
	if ctx.AvailableCores <= 0 {
		return order, nil
	}
	var out []int
	for _, i := range order {
		if u.Versions[i].Meta.Threads <= ctx.AvailableCores {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rts: no version fits %d cores", ctx.AvailableCores)
	}
	return out, nil
}

// Fixed always selects one version — useful for pinning and tests.
type Fixed struct{ Index int }

// Name implements Policy.
func (p Fixed) Name() string { return "fixed" }

// Select implements Policy.
func (p Fixed) Select(u *multiversion.Unit, ctx Context) (int, error) {
	if p.Index < 0 || p.Index >= len(u.Versions) {
		return 0, fmt.Errorf("rts: fixed index %d out of range", p.Index)
	}
	return p.Index, nil
}

// Rank implements Ranker. A pinned version has no fallback: failing it
// fails the invocation, as before.
func (p Fixed) Rank(u *multiversion.Unit, ctx Context) ([]int, error) {
	idx, err := p.Select(u, ctx)
	if err != nil {
		return nil, err
	}
	return []int{idx}, nil
}

// EventType classifies runtime fault-handling events.
type EventType int

const (
	// EventFailure is one version-entry failure (possibly recovered
	// by fallback).
	EventFailure EventType = iota
	// EventFallback is an invocation completed by a version other
	// than the policy's first choice.
	EventFallback
	// EventQuarantine is a version entering (or, after a failed
	// probe, re-entering) quarantine.
	EventQuarantine
	// EventReadmit is a quarantined version re-admitted after a
	// successful probe.
	EventReadmit
)

// String returns the event label.
func (t EventType) String() string {
	switch t {
	case EventFailure:
		return "failure"
	case EventFallback:
		return "fallback"
	case EventQuarantine:
		return "quarantine"
	case EventReadmit:
		return "readmit"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is a structured trace record of the runtime's fault handling.
type Event struct {
	Type    EventType
	Region  string
	Version int
	// Attempt is the 0-based position of the version in the policy
	// ranking for this invocation.
	Attempt int
	// Err is the triggering error (EventFailure only).
	Err error
}

// ErrAllQuarantined is returned (wrapped) when every version the
// policy ranked is sitting out a quarantine cool-down.
var ErrAllQuarantined = errors.New("all versions quarantined")

// InvocationStats records which versions ran and how the runtime's
// fault handling intervened.
type InvocationStats struct {
	// Invocations counts successfully completed invocations.
	Invocations int
	// PerVersion counts completed invocations per version index.
	PerVersion map[int]int
	// Failures counts version-entry failures observed, including
	// those recovered by fallback.
	Failures int
	// PerVersionFailures counts entry failures per version index.
	PerVersionFailures map[int]int
	// Fallbacks counts invocations completed by a version other than
	// the policy's first choice.
	Fallbacks int
	// Quarantines counts quarantine transitions (including failed
	// probes re-entering cool-down).
	Quarantines int
	// Readmissions counts versions re-admitted after a successful
	// probe.
	Readmissions int
}

func newInvocationStats() *InvocationStats {
	return &InvocationStats{PerVersion: map[int]int{}, PerVersionFailures: map[int]int{}}
}

// clone deep-copies the stats so callers cannot mutate internal maps.
func (s InvocationStats) clone() InvocationStats {
	out := s
	out.PerVersion = make(map[int]int, len(s.PerVersion))
	for k, v := range s.PerVersion {
		out.PerVersion[k] = v
	}
	out.PerVersionFailures = make(map[int]int, len(s.PerVersionFailures))
	for k, v := range s.PerVersionFailures {
		out.PerVersionFailures[k] = v
	}
	return out
}

// Runtime dispatches invocations of a multi-versioned region.
type Runtime struct {
	mu           sync.Mutex
	unit         *multiversion.Unit
	policy       Policy
	ctx          Context
	stats        *InvocationStats
	health       *healthTracker
	faults       *FaultInjector
	onEvent      func(Event)
	entryTimeout time.Duration
}

// New builds a runtime for the unit with the given initial policy.
// Every version must have an executable entry bound.
func New(u *multiversion.Unit, p Policy) (*Runtime, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	for i, v := range u.Versions {
		if v.Entry == nil {
			return nil, fmt.Errorf("rts: version %d has no entry bound", i)
		}
	}
	if p == nil {
		return nil, errors.New("rts: nil policy")
	}
	return &Runtime{
		unit:   u,
		policy: p,
		stats:  newInvocationStats(),
		health: newHealthTracker(HealthConfig{}),
	}, nil
}

// SetPolicy swaps the selection policy; takes effect on the next
// invocation.
func (r *Runtime) SetPolicy(p Policy) error {
	if p == nil {
		return errors.New("rts: nil policy")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policy = p
	return nil
}

// SetContext updates the runtime conditions (e.g. a shrunk core
// budget).
func (r *Runtime) SetContext(ctx Context) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ctx = ctx
}

// SetHealthConfig replaces the circuit-breaker configuration. Existing
// quarantine state is kept.
func (r *Runtime) SetHealthConfig(cfg HealthConfig) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.health.cfg = cfg.withDefaults()
}

// SetFaultInjector attaches (or, with nil, removes) a fault model that
// every entry attempt is rolled through.
func (r *Runtime) SetFaultInjector(f *FaultInjector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = f
}

// SetEventHook installs a tracing callback for fault-handling events.
// The hook runs synchronously on the invoking goroutine without
// runtime locks held; it must be fast and must not call back into the
// runtime's Invoke path.
func (r *Runtime) SetEventHook(hook func(Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onEvent = hook
}

// Health snapshots the per-version circuit-breaker state.
func (r *Runtime) Health() map[int]VersionHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health.snapshot()
}

// Invoke selects a version under the current policy and context,
// executes it, and returns the executed index. If the selected
// version's entry fails, the invocation falls back to the next-ranked
// feasible version (for policies implementing Ranker); only when every
// eligible version fails does the caller see an error.
func (r *Runtime) Invoke() (int, error) {
	r.mu.Lock()
	ctx := r.ctx
	r.mu.Unlock()
	return r.invokeRanked(ctx, r.recordOwn, nil)
}

func (r *Runtime) recordOwn(mut func(*InvocationStats)) {
	r.mu.Lock()
	mut(r.stats)
	r.mu.Unlock()
}

// rankVersions resolves the policy's preference order, degrading to
// the single Select choice for policies without Rank.
func rankVersions(p Policy, u *multiversion.Unit, ctx Context) ([]int, error) {
	var order []int
	var err error
	if rk, ok := p.(Ranker); ok {
		order, err = rk.Rank(u, ctx)
	} else {
		var idx int
		idx, err = p.Select(u, ctx)
		order = []int{idx}
	}
	if err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("rts: policy %s ranked no versions", p.Name())
	}
	for _, idx := range order {
		if idx < 0 || idx >= len(u.Versions) {
			return nil, fmt.Errorf("rts: policy %s selected invalid version %d", p.Name(), idx)
		}
	}
	return order, nil
}

// invokeRanked is the shared fallback engine behind Runtime.Invoke and
// Manager.Invoke. record applies a stats mutation under the stats
// owner's lock (the runtime records into its own stats, the manager
// into its per-region stats). acquire, when non-nil, claims resources
// for a candidate before it runs and returns a release func, or an
// error to skip the candidate (e.g. its cores were claimed by a
// concurrent invocation).
func (r *Runtime) invokeRanked(ctx Context, record func(func(*InvocationStats)), acquire func(idx int) (func(), error)) (int, error) {
	r.mu.Lock()
	policy := r.policy
	hook := r.onEvent
	r.health.tick++
	r.mu.Unlock()

	ranking, err := rankVersions(policy, r.unit, ctx)
	if err != nil {
		return 0, err
	}

	r.mu.Lock()
	eligible := ranking[:0:0]
	for _, idx := range ranking {
		if r.health.eligible(idx) {
			eligible = append(eligible, idx)
		}
	}
	r.mu.Unlock()
	if len(eligible) == 0 {
		return 0, fmt.Errorf("rts: %w", ErrAllQuarantined)
	}

	var lastErr, lastAcquireErr error
	for attempt, idx := range eligible {
		var release func()
		if acquire != nil {
			release, err = acquire(idx)
			if err != nil {
				lastAcquireErr = err
				continue
			}
		}
		runErr := r.runEntry(idx)
		if release != nil {
			release()
		}
		if runErr == nil {
			fellBack := idx != ranking[0]
			r.mu.Lock()
			readmitted := r.health.success(idx)
			r.mu.Unlock()
			record(func(st *InvocationStats) {
				st.Invocations++
				st.PerVersion[idx]++
				if fellBack {
					st.Fallbacks++
				}
				if readmitted {
					st.Readmissions++
				}
			})
			if hook != nil {
				if readmitted {
					hook(Event{Type: EventReadmit, Region: r.unit.Region, Version: idx, Attempt: attempt})
				}
				if fellBack {
					hook(Event{Type: EventFallback, Region: r.unit.Region, Version: idx, Attempt: attempt})
				}
			}
			return idx, nil
		}
		lastErr = fmt.Errorf("rts: version %d failed: %w", idx, runErr)
		r.mu.Lock()
		quarantined := r.health.failure(idx)
		r.mu.Unlock()
		record(func(st *InvocationStats) {
			st.Failures++
			if st.PerVersionFailures == nil {
				st.PerVersionFailures = map[int]int{}
			}
			st.PerVersionFailures[idx]++
			if quarantined {
				st.Quarantines++
			}
		})
		if hook != nil {
			hook(Event{Type: EventFailure, Region: r.unit.Region, Version: idx, Attempt: attempt, Err: runErr})
			if quarantined {
				hook(Event{Type: EventQuarantine, Region: r.unit.Region, Version: idx, Attempt: attempt})
			}
		}
	}
	if lastErr == nil {
		// Every candidate was skipped by acquire.
		return 0, lastAcquireErr
	}
	return 0, fmt.Errorf("rts: all %d eligible versions failed, last: %w", len(eligible), lastErr)
}

// SetEntryTimeout bounds every version entry attempt (including any
// fault-injected latency): an attempt exceeding d fails with
// resilience.ErrTimedOut, which counts as an ordinary version failure —
// the runtime falls back along the policy ranking and the health
// tracker quarantines persistent offenders. Zero or negative disables
// the bound. The abandoned entry goroutine drains in the background.
func (r *Runtime) SetEntryTimeout(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entryTimeout = d
}

// runEntry executes one version's entry through the fault injector and
// the entry watchdog, without holding the runtime lock.
func (r *Runtime) runEntry(idx int) error {
	r.mu.Lock()
	f := r.faults
	timeout := r.entryTimeout
	r.mu.Unlock()
	return resilience.RunWithTimeout(timeout, func() error {
		if err := f.Apply(idx); err != nil {
			return err
		}
		return r.unit.Versions[idx].Entry()
	})
}

// Stats returns a copy of the invocation statistics.
func (r *Runtime) Stats() InvocationStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats.clone()
}

// Unit returns the underlying multi-versioned unit.
func (r *Runtime) Unit() *multiversion.Unit { return r.unit }
