package rts

import (
	"sync/atomic"
	"testing"
	"time"

	"autotune/internal/multiversion"
	"autotune/internal/skeleton"
)

// hangingBestUnit binds a unit whose policy-best version (highest
// thread count under time-priority ranking) blocks forever; the others
// return immediately.
func hangingBestUnit(t *testing.T, hang chan struct{}) *multiversion.Unit {
	t.Helper()
	u := &multiversion.Unit{
		Region:         "hang#0",
		ObjectiveNames: []string{"time", "resources"},
		Versions: []multiversion.Version{
			{Meta: multiversion.Meta{Config: skeleton.Config{64, 1}, Tiles: []int64{64}, Threads: 1, Objectives: []float64{1.0, 1.0}}},
			{Meta: multiversion.Meta{Config: skeleton.Config{32, 10}, Tiles: []int64{32}, Threads: 10, Objectives: []float64{0.12, 1.2}}},
			{Meta: multiversion.Meta{Config: skeleton.Config{16, 40}, Tiles: []int64{16}, Threads: 40, Objectives: []float64{0.04, 1.6}}},
		},
	}
	if err := u.Bind(func(m multiversion.Meta) (multiversion.Entry, error) {
		threads := m.Threads
		return func() error {
			if threads == 40 {
				<-hang
			}
			return nil
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	return u
}

// TestEntryTimeoutFallsBack: a hung best-ranked version trips the entry
// watchdog and the runtime falls back along the ranking instead of
// blocking the caller forever.
func TestEntryTimeoutFallsBack(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	rt, err := New(hangingBestUnit(t, hang), WeightedSum{Weights: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetEntryTimeout(15 * time.Millisecond)

	start := time.Now()
	idx, err := rt.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if idx == 2 {
		t.Fatal("the hung version reported success")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("invoke took %v — the watchdog never fired", d)
	}
	st := rt.Stats()
	if st.Failures != 1 || st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 failure and 1 fallback", st)
	}
	if st.PerVersionFailures[2] != 1 {
		t.Fatalf("per-version failures = %v, want the hung version charged", st.PerVersionFailures)
	}
}

// TestOnlineTunerTimeoutCountsFailure: a measurement that hangs past
// OnlineTuner.Timeout is tolerated like any failed measurement —
// counted in Failures, never accepted — and tuning continues.
func TestOnlineTunerTimeoutCountsFailure(t *testing.T) {
	p := paramRegion(t)
	o, err := NewOnlineTuner(p, []int64{1, 1, 1}, []int64{1024, 1024, 40}, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	hang := make(chan struct{})
	defer close(hang)
	var measurements atomic.Int64
	o.Timeout = 15 * time.Millisecond
	o.Measure = func(tiles []int64, threads int) (float64, error) {
		if measurements.Add(1) == 1 {
			<-hang
		}
		return bowl(tiles, threads)
	}
	if _, err := o.Run(5); err != nil {
		t.Fatal(err)
	}
	if o.Failures() != 1 {
		t.Fatalf("failures = %d, want 1 (the hung measurement)", o.Failures())
	}
	if _, _, best := o.Best(); best <= 0 {
		t.Fatalf("tuning made no progress after the timeout: best = %v", best)
	}
}

// TestManagerInvokeTimeoutPropagates: the manager's invoke bound
// reaches runtimes registered both before and after it is set.
func TestManagerInvokeTimeoutPropagates(t *testing.T) {
	m, err := NewManager(40)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := New(namedUnit(t, "before", nil), WeightedSum{Weights: []float64{1, 0}})
	if err := m.Register(before); err != nil {
		t.Fatal(err)
	}
	m.SetInvokeTimeout(25 * time.Millisecond)
	after, _ := New(namedUnit(t, "after", nil), WeightedSum{Weights: []float64{1, 0}})
	if err := m.Register(after); err != nil {
		t.Fatal(err)
	}
	for _, rt := range []*Runtime{before, after} {
		rt.mu.Lock()
		d := rt.entryTimeout
		rt.mu.Unlock()
		if d != 25*time.Millisecond {
			t.Fatalf("runtime %q entry timeout = %v, want 25ms", rt.Unit().Region, d)
		}
	}

	// Behavioural check: a region whose versions all hang fails fast
	// instead of wedging the manager.
	hang := make(chan struct{})
	defer close(hang)
	stuck, _ := New(namedUnit(t, "stuck", hang), WeightedSum{Weights: []float64{1, 0}})
	if err := m.Register(stuck); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := m.Invoke("stuck"); err == nil {
		t.Fatal("fully hung region reported success")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("manager invoke took %v — the watchdog never fired", d)
	}
}
