package rts

import (
	"errors"
	"sync"
	"testing"

	"autotune/internal/multiversion"
	"autotune/internal/skeleton"
)

// flakyUnit builds the standard three-version table where selected
// versions fail on demand. failing maps version index -> error to
// return; entries append their index to attempts.
func flakyUnit(t *testing.T, failing map[int]error) (*multiversion.Unit, *[]int) {
	t.Helper()
	u := &multiversion.Unit{
		Region:         "mm#0",
		ObjectiveNames: []string{"time", "resources"},
		Versions: []multiversion.Version{
			{Meta: multiversion.Meta{Config: skeleton.Config{64, 1}, Tiles: []int64{64}, Threads: 1, Objectives: []float64{1.0, 1.0}}},
			{Meta: multiversion.Meta{Config: skeleton.Config{32, 10}, Tiles: []int64{32}, Threads: 10, Objectives: []float64{0.12, 1.2}}},
			{Meta: multiversion.Meta{Config: skeleton.Config{16, 40}, Tiles: []int64{16}, Threads: 40, Objectives: []float64{0.04, 1.6}}},
		},
	}
	attempts := &[]int{}
	var mu sync.Mutex
	for i := range u.Versions {
		idx := i
		u.Versions[i].Entry = func() error {
			mu.Lock()
			*attempts = append(*attempts, idx)
			mu.Unlock()
			return failing[idx]
		}
	}
	return u, attempts
}

var errBoom = errors.New("boom")

func TestInvokeFallsBackOnEntryFailure(t *testing.T) {
	u, attempts := flakyUnit(t, map[int]error{2: errBoom})
	rt, err := New(u, WeightedSum{Weights: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := rt.Invoke()
	if err != nil {
		t.Fatalf("fallback did not recover: %v", err)
	}
	if idx != 1 {
		t.Fatalf("fallback selected %d, want 1 (next-ranked)", idx)
	}
	if got := *attempts; len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("attempt order = %v, want [2 1]", got)
	}
	st := rt.Stats()
	if st.Invocations != 1 || st.PerVersion[1] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Failures != 1 || st.PerVersionFailures[2] != 1 || st.Fallbacks != 1 {
		t.Fatalf("failure stats = %+v", st)
	}
}

func TestFallbackOrderFollowsWeightedSum(t *testing.T) {
	u, attempts := flakyUnit(t, map[int]error{0: errBoom, 1: errBoom, 2: errBoom})
	rt, _ := New(u, WeightedSum{Weights: []float64{1, 0}})
	if _, err := rt.Invoke(); err == nil {
		t.Fatal("all-versions failure swallowed")
	}
	// Time-priority ranking: fastest first.
	if got := *attempts; len(got) != 3 || got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("attempt order = %v, want [2 1 0]", got)
	}
	st := rt.Stats()
	if st.Invocations != 0 || st.Failures != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFallbackOrderFollowsFastestWithinBudget(t *testing.T) {
	u, attempts := flakyUnit(t, map[int]error{0: errBoom, 1: errBoom, 2: errBoom})
	rt, _ := New(u, FastestWithinBudget{Optimize: 0, Constrain: 1, Budget: 1.3})
	if _, err := rt.Invoke(); err == nil {
		t.Fatal("all-versions failure swallowed")
	}
	// Within budget 1.3 by time: v1 then v0; out-of-budget v2 last.
	if got := *attempts; len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("attempt order = %v, want [1 0 2]", got)
	}
}

// singleChoice implements Policy but not Ranker: single-attempt
// semantics, no fallback.
type singleChoice struct{ idx int }

func (p singleChoice) Name() string { return "single-choice" }
func (p singleChoice) Select(u *multiversion.Unit, ctx Context) (int, error) {
	return p.idx, nil
}

func TestNonRankerPolicyHasNoFallback(t *testing.T) {
	u, attempts := flakyUnit(t, map[int]error{2: errBoom})
	rt, _ := New(u, singleChoice{idx: 2})
	if _, err := rt.Invoke(); err == nil {
		t.Fatal("single-attempt failure swallowed")
	}
	if len(*attempts) != 1 {
		t.Fatalf("attempts = %v, want exactly one", *attempts)
	}
}

func TestQuarantineProbeAndReadmission(t *testing.T) {
	failing := map[int]error{0: errBoom}
	u, _ := flakyUnit(t, failing)
	rt, _ := New(u, Fixed{Index: 0})
	rt.SetHealthConfig(HealthConfig{FailureThreshold: 2, Cooldown: 3})

	// Two failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := rt.Invoke(); err == nil {
			t.Fatal("failure swallowed")
		}
	}
	h := rt.Health()[0]
	if !h.Quarantined || h.ConsecutiveFailures != 2 {
		t.Fatalf("health after threshold = %+v", h)
	}

	// During cool-down the only version is ineligible.
	for i := 0; i < 2; i++ {
		_, err := rt.Invoke()
		if !errors.Is(err, ErrAllQuarantined) {
			t.Fatalf("cool-down invoke %d: %v, want ErrAllQuarantined", i, err)
		}
	}

	// Cool-down expired: the next invocation probes. Heal the entry
	// so the probe succeeds and the version is re-admitted.
	delete(failing, 0)
	idx, err := rt.Invoke()
	if err != nil || idx != 0 {
		t.Fatalf("probe = %d, %v", idx, err)
	}
	if h := rt.Health()[0]; h.Quarantined || h.ConsecutiveFailures != 0 {
		t.Fatalf("health after probe = %+v", h)
	}
	st := rt.Stats()
	if st.Quarantines != 1 || st.Readmissions != 1 || st.Failures != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailedProbeReQuarantines(t *testing.T) {
	u, attempts := flakyUnit(t, map[int]error{0: errBoom})
	rt, _ := New(u, Fixed{Index: 0})
	rt.SetHealthConfig(HealthConfig{FailureThreshold: 1, Cooldown: 2})

	if _, err := rt.Invoke(); err == nil { // quarantined immediately
		t.Fatal("failure swallowed")
	}
	if _, err := rt.Invoke(); !errors.Is(err, ErrAllQuarantined) {
		t.Fatalf("cool-down: %v", err)
	}
	if _, err := rt.Invoke(); err == nil || errors.Is(err, ErrAllQuarantined) {
		t.Fatalf("probe should run the entry and fail: %v", err)
	}
	if got := len(*attempts); got != 2 {
		t.Fatalf("entry ran %d times, want 2 (initial + probe)", got)
	}
	st := rt.Stats()
	if st.Quarantines != 2 {
		t.Fatalf("failed probe did not re-quarantine: %+v", st)
	}
	// Back in cool-down right after the failed probe.
	if _, err := rt.Invoke(); !errors.Is(err, ErrAllQuarantined) {
		t.Fatalf("post-probe cool-down: %v", err)
	}
}

func TestDisabledBreakerNeverQuarantines(t *testing.T) {
	u, _ := flakyUnit(t, map[int]error{0: errBoom})
	rt, _ := New(u, Fixed{Index: 0})
	rt.SetHealthConfig(HealthConfig{FailureThreshold: -1})
	for i := 0; i < 10; i++ {
		if _, err := rt.Invoke(); errors.Is(err, ErrAllQuarantined) {
			t.Fatal("disabled breaker quarantined")
		}
	}
	if st := rt.Stats(); st.Quarantines != 0 || st.Failures != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEventHookSequence(t *testing.T) {
	u, _ := flakyUnit(t, map[int]error{2: errBoom})
	rt, _ := New(u, WeightedSum{Weights: []float64{1, 0}})
	rt.SetHealthConfig(HealthConfig{FailureThreshold: 1, Cooldown: 100})
	var events []Event
	rt.SetEventHook(func(e Event) { events = append(events, e) })

	if _, err := rt.Invoke(); err != nil {
		t.Fatal(err)
	}
	want := []EventType{EventFailure, EventQuarantine, EventFallback}
	if len(events) != len(want) {
		t.Fatalf("events = %+v", events)
	}
	for i, e := range events {
		if e.Type != want[i] {
			t.Fatalf("event %d = %v, want %v", i, e.Type, want[i])
		}
		if e.Region != "mm#0" {
			t.Fatalf("event region = %q", e.Region)
		}
	}
	if events[0].Version != 2 || events[0].Err == nil {
		t.Fatalf("failure event = %+v", events[0])
	}
	if events[2].Version != 1 || events[2].Attempt != 1 {
		t.Fatalf("fallback event = %+v", events[2])
	}
	if EventFailure.String() != "failure" || EventType(99).String() == "" {
		t.Error("event type labels wrong")
	}
}

func TestFaultInjectorDeterministicAndTargeted(t *testing.T) {
	roll := func() []bool {
		f := &FaultInjector{ErrorRate: 0.5, Versions: []int{1}, Seed: 42}
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, f.Apply(1) != nil)
		}
		return out
	}
	a, b := roll(), roll()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fault sequences")
		}
	}
	f := &FaultInjector{ErrorRate: 1, Versions: []int{1}, Seed: 1}
	for i := 0; i < 16; i++ {
		if f.Apply(0) != nil {
			t.Fatal("untargeted version got a fault")
		}
	}
	if err := f.Apply(1); !errors.Is(err, ErrInjected) {
		t.Fatalf("targeted fault = %v", err)
	}
	inj, _ := f.Counts()
	if inj != 1 {
		t.Fatalf("injected count = %d", inj)
	}
	var nilInj *FaultInjector
	if nilInj.Apply(0) != nil {
		t.Fatal("nil injector injected")
	}
}

// TestInjectedFaultAcceptance is the issue's acceptance scenario: a
// 30% per-invocation fault rate on the fastest (first-ranked) version
// over 1000 invocations completes with zero caller-visible errors,
// quarantines the faulty version along the way, and surfaces fallback
// and failure counts in InvocationStats.
func TestInjectedFaultAcceptance(t *testing.T) {
	u, _ := flakyUnit(t, nil)
	rt, err := New(u, WeightedSum{Weights: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetFaultInjector(&FaultInjector{ErrorRate: 0.3, Versions: []int{2}, Seed: 7})

	for i := 0; i < 1000; i++ {
		if _, err := rt.Invoke(); err != nil {
			t.Fatalf("invocation %d surfaced an error: %v", i, err)
		}
	}
	st := rt.Stats()
	if st.Invocations != 1000 {
		t.Fatalf("invocations = %d", st.Invocations)
	}
	if st.Failures == 0 || st.PerVersionFailures[2] != st.Failures {
		t.Fatalf("failure counters = %+v", st)
	}
	if st.Fallbacks == 0 {
		t.Fatalf("no fallbacks recorded: %+v", st)
	}
	if st.Quarantines == 0 {
		t.Fatalf("faulty version never quarantined: %+v", st)
	}
	if st.PerVersion[1] == 0 {
		t.Fatalf("fallback version never ran: %+v", st)
	}
}

func TestConcurrentInvokeWithInjectedFaults(t *testing.T) {
	u, _ := flakyUnit(t, nil)
	rt, _ := New(u, WeightedSum{Weights: []float64{1, 0}})
	rt.SetFaultInjector(&FaultInjector{ErrorRate: 0.3, Versions: []int{1, 2}, Seed: 3})
	rt.SetEventHook(func(Event) {})

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := rt.Invoke(); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	// Version 0 never fails and never quarantines, so every
	// invocation must complete.
	for err := range errs {
		t.Fatalf("concurrent invocation failed: %v", err)
	}
	if st := rt.Stats(); st.Invocations != workers*perWorker {
		t.Fatalf("invocations = %d, want %d", st.Invocations, workers*perWorker)
	}
}

func TestManagerFallbackAndFailureStats(t *testing.T) {
	u, _ := flakyUnit(t, map[int]error{2: errBoom})
	rt, _ := New(u, WeightedSum{Weights: []float64{1, 0}})
	rt.SetHealthConfig(HealthConfig{FailureThreshold: 2, Cooldown: 1000})
	m, _ := NewManager(40)
	if err := m.Register(rt); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		idx, err := m.Invoke("mm#0")
		if err != nil {
			t.Fatalf("manager invoke %d: %v", i, err)
		}
		if idx != 1 {
			t.Fatalf("manager fallback selected %d, want 1", idx)
		}
	}
	st := m.Stats()["mm#0"]
	if st.Invocations != 3 || st.PerVersion[1] != 3 {
		t.Fatalf("manager stats = %+v", st)
	}
	// The first two invocations attempt the broken version; the
	// breaker then quarantines it, so the third never tries it.
	if st.Failures != 2 || st.Fallbacks != 3 || st.Quarantines != 1 {
		t.Fatalf("manager failure stats = %+v", st)
	}
	if m.CoresInUse() != 0 {
		t.Fatalf("cores leaked after failures: %d", m.CoresInUse())
	}
	// Runtime-local stats are untouched by manager invocations;
	// health state is shared.
	if rt.Stats().Invocations != 0 {
		t.Fatal("manager invocations leaked into runtime stats")
	}
	if h := rt.Health()[2]; !h.Quarantined {
		t.Fatalf("health not shared with manager path: %+v", h)
	}
}

func TestStatsCloneIsIndependent(t *testing.T) {
	u, _ := flakyUnit(t, map[int]error{2: errBoom})
	rt, _ := New(u, WeightedSum{Weights: []float64{1, 0}})
	if _, err := rt.Invoke(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	st.PerVersionFailures[2] = 99
	st.PerVersion[1] = 99
	fresh := rt.Stats()
	if fresh.PerVersionFailures[2] != 1 || fresh.PerVersion[1] != 1 {
		t.Fatal("Stats leaked internal maps")
	}
}

func TestAdaptiveRank(t *testing.T) {
	u, _ := boundUnit(t)
	a := &Adaptive{Epsilon: 0, Seed: 1}
	order, err := a.Rank(u, Context{})
	if err != nil {
		t.Fatal(err)
	}
	// Static metadata: ascending time = [2 1 0].
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("rank = %v, want [2 1 0]", order)
	}
	// Measurements override the static order.
	for i := 0; i < 5; i++ {
		a.Observe(2, 0.5)
		a.Observe(1, 0.01)
	}
	order, _ = a.Rank(u, Context{})
	if order[0] != 1 {
		t.Fatalf("post-measurement rank = %v, want 1 first", order)
	}
	// Exploration keeps the ranking a permutation of the feasible set.
	e := &Adaptive{Epsilon: 1, Seed: 7}
	firsts := map[int]bool{}
	for i := 0; i < 100; i++ {
		order, err := e.Rank(u, Context{})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if seen[idx] {
				t.Fatalf("rank %v repeats a version", order)
			}
			seen[idx] = true
		}
		if len(order) != 3 {
			t.Fatalf("rank = %v", order)
		}
		firsts[order[0]] = true
	}
	if len(firsts) != 3 {
		t.Fatalf("exploration first choices = %v, want all 3", firsts)
	}
	// Core budget filters the ranking.
	order, err = a.Rank(u, Context{AvailableCores: 5})
	if err != nil || len(order) != 1 || order[0] != 0 {
		t.Fatalf("restricted rank = %v, %v", order, err)
	}
	if _, err := a.Rank(&multiversion.Unit{Region: "r", ObjectiveNames: []string{"t"},
		Versions: u.Versions[2:]}, Context{AvailableCores: 4}); err == nil {
		t.Error("no feasible version should error")
	}
}

func TestOnlineTunerCountsFailures(t *testing.T) {
	p := paramRegion(t)
	o, _ := NewOnlineTuner(p, []int64{1, 1, 1}, []int64{1024, 1024, 40}, 0, 2)
	calls := 0
	o.Measure = func(tiles []int64, threads int) (float64, error) {
		calls++
		if calls <= 2 {
			return 0, errSentinel // even the seed measurement may fail
		}
		return 1.0, nil
	}
	if _, err := o.Run(10); err != nil {
		t.Fatal(err)
	}
	if o.Failures() != 2 {
		t.Fatalf("failures = %d, want 2", o.Failures())
	}
	if _, _, best := o.Best(); best != 1.0 {
		t.Fatalf("seed eventually measured: %v", best)
	}
}
