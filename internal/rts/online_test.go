package rts

import (
	"math"
	"testing"

	"autotune/internal/multiversion"
	"autotune/internal/skeleton"
)

func paramRegion(t *testing.T) *multiversion.Parameterized {
	t.Helper()
	u := &multiversion.Unit{
		Region:         "r",
		ObjectiveNames: []string{"time", "resources"},
		Versions: []multiversion.Version{
			{Meta: multiversion.Meta{Config: skeleton.Config{64, 64, 4},
				Tiles: []int64{64, 64}, Threads: 4, Objectives: []float64{0.5, 2.0}}},
		},
	}
	p, err := multiversion.FromUnit(u, func(tiles []int64, threads int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// bowl is a synthetic cost landscape with its optimum at
// tiles=(128, 32), threads=8.
func bowl(tiles []int64, threads int) (float64, error) {
	d := func(x int64, opt float64) float64 {
		r := math.Log(float64(x)) - math.Log(opt)
		return r * r
	}
	return 0.01 + d(tiles[0], 128) + d(tiles[1], 32) + d(int64(threads), 8), nil
}

func TestOnlineTunerConvergesOnBowl(t *testing.T) {
	p := paramRegion(t)
	o, err := NewOnlineTuner(p, []int64{1, 1, 1}, []int64{1024, 1024, 40}, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	o.Measure = bowl
	if _, err := o.Run(300); err != nil {
		t.Fatal(err)
	}
	start, _ := bowl([]int64{64, 64}, 4)
	_, _, best := o.Best()
	if best >= start {
		t.Fatalf("online tuning did not improve: %v >= %v", best, start)
	}
	tiles, threads, _ := o.Best()
	// Within a reasonable neighbourhood of the optimum.
	if tiles[0] < 32 || tiles[0] > 512 || threads < 2 || threads > 32 {
		t.Fatalf("converged to implausible config %v/%d", tiles, threads)
	}
	steps, accepted := o.Stats()
	if steps != 300 || accepted == 0 {
		t.Fatalf("stats = %d/%d", steps, accepted)
	}
}

func TestOnlineTunerFirstStepMeasuresSeed(t *testing.T) {
	p := paramRegion(t)
	o, err := NewOnlineTuner(p, []int64{1, 1, 1}, []int64{1024, 1024, 40}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	o.Measure = func(tiles []int64, threads int) (float64, error) {
		calls++
		return 1.0, nil
	}
	improved, err := o.Step()
	if err != nil || !improved {
		t.Fatalf("first step: %v, %v", improved, err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	_, _, best := o.Best()
	if best != 1.0 {
		t.Fatalf("seed time = %v", best)
	}
}

func TestOnlineTunerRejectsFailures(t *testing.T) {
	p := paramRegion(t)
	o, _ := NewOnlineTuner(p, []int64{1, 1, 1}, []int64{1024, 1024, 40}, 0, 2)
	first := true
	o.Measure = func(tiles []int64, threads int) (float64, error) {
		if first {
			first = false
			return 1.0, nil
		}
		return 0, errSentinel
	}
	if _, err := o.Run(20); err != nil {
		t.Fatal(err)
	}
	tiles, threads, best := o.Best()
	if best != 1.0 || tiles[0] != 64 || threads != 4 {
		t.Fatal("failed proposals must not displace the incumbent")
	}
}

var errSentinel = errorString("nope")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestOnlineTunerValidation(t *testing.T) {
	p := paramRegion(t)
	if _, err := NewOnlineTuner(nil, []int64{1}, []int64{2}, 0, 1); err == nil {
		t.Error("nil region accepted")
	}
	if _, err := NewOnlineTuner(p, []int64{1, 1}, []int64{2}, 0, 1); err == nil {
		t.Error("misaligned bounds accepted")
	}
	if _, err := NewOnlineTuner(p, []int64{5, 5, 5}, []int64{2, 2, 2}, 0, 1); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewOnlineTuner(p, []int64{1, 1, 1}, []int64{9, 9, 9}, 7, 1); err == nil {
		t.Error("bad seed index accepted")
	}
	if _, err := NewOnlineTuner(p, []int64{1, 1}, []int64{9, 9}, 0, 1); err == nil {
		t.Error("bound/seed dimension mismatch accepted")
	}
}

func TestOnlineTunerDefaultMeasureTimesEntry(t *testing.T) {
	p := paramRegion(t)
	o, err := NewOnlineTuner(p, []int64{1, 1, 1}, []int64{1024, 1024, 40}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Default Measure wall-times the parameterized entry.
	improved, err := o.Step()
	if err != nil || !improved {
		t.Fatalf("step: %v, %v", improved, err)
	}
	if _, _, best := o.Best(); best < 0 {
		t.Fatal("negative measured time")
	}
}
