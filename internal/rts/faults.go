package rts

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"autotune/internal/stats"
)

// ErrInjected marks errors produced by a FaultInjector, so tests and
// demos can distinguish injected faults from genuine entry failures
// with errors.Is.
var ErrInjected = errors.New("injected fault")

// FaultInjector perturbs version-entry execution with configurable
// failures and latency spikes, driven by a deterministic seed. It
// exists so the runtime's fallback and quarantine machinery can be
// exercised end-to-end without unreliable hardware: attach one to a
// Runtime via SetFaultInjector and every entry attempt first rolls the
// fault model.
//
// A nil *FaultInjector injects nothing, so the runtime can hold one
// unconditionally. The zero value is also inert.
type FaultInjector struct {
	// ErrorRate is the per-attempt probability of an injected error
	// (the entry is then not executed, simulating a crash).
	ErrorRate float64
	// Latency is the extra delay added when a latency spike fires.
	Latency time.Duration
	// LatencyRate is the per-attempt probability of a latency spike.
	LatencyRate float64
	// Versions restricts injection to these version indices; nil
	// targets every version.
	Versions []int
	// Seed makes the injected fault sequence deterministic.
	Seed int64

	once     sync.Once
	mu       sync.Mutex
	rng      interface{ Float64() float64 }
	targets  map[int]bool
	injected int
	spikes   int
}

func (f *FaultInjector) init() {
	f.once.Do(func() {
		f.rng = stats.NewRand(f.Seed)
		if f.Versions != nil {
			f.targets = map[int]bool{}
			for _, v := range f.Versions {
				f.targets[v] = true
			}
		}
	})
}

// Apply rolls the fault model for one attempt of the given version: it
// may sleep (latency spike) and may return an injected error. Safe for
// concurrent use.
func (f *FaultInjector) Apply(version int) error {
	if f == nil {
		return nil
	}
	f.init()
	f.mu.Lock()
	if f.targets != nil && !f.targets[version] {
		f.mu.Unlock()
		return nil
	}
	spike := f.LatencyRate > 0 && f.rng.Float64() < f.LatencyRate
	fail := f.ErrorRate > 0 && f.rng.Float64() < f.ErrorRate
	if spike {
		f.spikes++
	}
	if fail {
		f.injected++
	}
	f.mu.Unlock()
	if spike && f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if fail {
		return fmt.Errorf("rts: version %d: %w", version, ErrInjected)
	}
	return nil
}

// Counts returns how many errors and latency spikes have been injected
// so far.
func (f *FaultInjector) Counts() (injectedErrors, latencySpikes int) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected, f.spikes
}
