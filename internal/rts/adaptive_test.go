package rts

import (
	"testing"
)

func TestAdaptiveExploitsStaticMetadataInitially(t *testing.T) {
	u, _ := boundUnit(t)
	a := &Adaptive{Epsilon: 0, Seed: 1} // pure exploitation
	idx, err := a.Select(u, Context{})
	if err != nil {
		t.Fatal(err)
	}
	// Without measurements the fastest static version (index 2) wins.
	if idx != 2 {
		t.Fatalf("initial selection = %d, want 2", idx)
	}
}

func TestAdaptiveLearnsFromMeasurements(t *testing.T) {
	u, _ := boundUnit(t)
	a := &Adaptive{Epsilon: 0, Seed: 1}
	// The statically fastest version turns out slow in reality; the
	// middle version measures fast.
	for i := 0; i < 5; i++ {
		a.Observe(2, 0.5)
		a.Observe(1, 0.01)
	}
	idx, err := a.Select(u, Context{})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("post-measurement selection = %d, want 1", idx)
	}
	ms := a.Measurements()
	if len(ms[2]) != 5 || len(ms[1]) != 5 {
		t.Fatalf("measurements = %v", ms)
	}
}

func TestAdaptiveWindowBounded(t *testing.T) {
	a := &Adaptive{Window: 3}
	for i := 0; i < 10; i++ {
		a.Observe(0, float64(i))
	}
	ms := a.Measurements()[0]
	if len(ms) != 3 || ms[0] != 7 {
		t.Fatalf("window = %v", ms)
	}
}

func TestAdaptiveRespectsCoreBudget(t *testing.T) {
	u, _ := boundUnit(t)
	a := &Adaptive{Epsilon: 0, Seed: 1}
	idx, err := a.Select(u, Context{AvailableCores: 5})
	if err != nil {
		t.Fatal(err)
	}
	if u.Versions[idx].Meta.Threads > 5 {
		t.Fatalf("selected %d threads under a 5-core budget", u.Versions[idx].Meta.Threads)
	}
	solo := u
	solo.Versions = solo.Versions[2:] // only the 40-thread version
	if _, err := a.Select(solo, Context{AvailableCores: 4}); err == nil {
		t.Error("no feasible version should error")
	}
}

func TestAdaptiveExploration(t *testing.T) {
	u, _ := boundUnit(t)
	a := &Adaptive{Epsilon: 1, Seed: 7} // pure exploration
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		idx, err := a.Select(u, Context{})
		if err != nil {
			t.Fatal(err)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("exploration visited %d/3 versions", len(seen))
	}
}

func TestAdaptiveWithRuntimeInvokeTimed(t *testing.T) {
	u, _ := boundUnit(t)
	a := &Adaptive{Epsilon: 0, Seed: 1}
	rt, err := New(u, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		idx, elapsed, err := InvokeTimed(rt, a)
		if err != nil {
			t.Fatal(err)
		}
		if elapsed < 0 {
			t.Fatal("negative elapsed time")
		}
		if len(a.Measurements()[idx]) == 0 {
			t.Fatal("measurement not recorded")
		}
	}
	if rt.Stats().Invocations != 3 {
		t.Fatalf("stats = %+v", rt.Stats())
	}
	if a.Name() != "adaptive" {
		t.Fatal("name wrong")
	}
}
