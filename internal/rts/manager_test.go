package rts

import (
	"sync"
	"testing"

	"autotune/internal/multiversion"
	"autotune/internal/skeleton"
)

func namedUnit(t *testing.T, region string, block chan struct{}) *multiversion.Unit {
	t.Helper()
	u := &multiversion.Unit{
		Region:         region,
		ObjectiveNames: []string{"time", "resources"},
		Versions: []multiversion.Version{
			{Meta: multiversion.Meta{Config: skeleton.Config{64, 1}, Tiles: []int64{64}, Threads: 1, Objectives: []float64{1.0, 1.0}}},
			{Meta: multiversion.Meta{Config: skeleton.Config{32, 10}, Tiles: []int64{32}, Threads: 10, Objectives: []float64{0.12, 1.2}}},
			{Meta: multiversion.Meta{Config: skeleton.Config{16, 40}, Tiles: []int64{16}, Threads: 40, Objectives: []float64{0.04, 1.6}}},
		},
	}
	if err := u.Bind(func(m multiversion.Meta) (multiversion.Entry, error) {
		return func() error {
			if block != nil {
				<-block
			}
			return nil
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestManagerBasics(t *testing.T) {
	m, err := NewManager(40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(0); err == nil {
		t.Error("0 cores accepted")
	}
	rtA, _ := New(namedUnit(t, "a", nil), WeightedSum{Weights: []float64{1, 0}})
	rtB, _ := New(namedUnit(t, "b", nil), WeightedSum{Weights: []float64{0, 1}})
	if err := m.Register(rtA); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(rtB); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(rtA); err == nil {
		t.Error("duplicate registration accepted")
	}
	names := m.Regions()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("regions = %v", names)
	}
	idx, err := m.Invoke("a")
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("full-machine selection = %d, want 2 (40 threads)", idx)
	}
	if _, err := m.Invoke("zzz"); err == nil {
		t.Error("unknown region accepted")
	}
	if m.Unit("a") == nil || m.Unit("zzz") != nil {
		t.Error("Unit accessor wrong")
	}
	st := m.Stats()
	if st["a"].Invocations != 1 || st["a"].PerVersion[2] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if m.CoresInUse() != 0 {
		t.Fatalf("cores still claimed: %d", m.CoresInUse())
	}
}

func TestManagerConcurrentArbitration(t *testing.T) {
	m, _ := NewManager(40)
	blockA := make(chan struct{})
	rtA, _ := New(namedUnit(t, "a", blockA), WeightedSum{Weights: []float64{1, 0}})
	rtB, _ := New(namedUnit(t, "b", nil), WeightedSum{Weights: []float64{1, 0}})
	if err := m.Register(rtA); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(rtB); err != nil {
		t.Fatal(err)
	}

	// Region a claims 40 cores and blocks inside its entry.
	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		if _, err := m.Invoke("a"); err != nil {
			t.Error(err)
		}
	}()
	<-started
	// Wait until the cores are actually claimed.
	for m.CoresInUse() != 40 {
	}
	// With all cores claimed, region b cannot run at all.
	if _, err := m.Invoke("b"); err == nil {
		t.Error("invocation with zero free cores accepted")
	}
	// Release a; now b selects the full-machine version again.
	close(blockA)
	wg.Wait()
	idx, err := m.Invoke("b")
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("selection after release = %d, want 2", idx)
	}
}

func TestManagerPartialBudgetSelectsSmallerVersion(t *testing.T) {
	m, _ := NewManager(12)
	rtA, _ := New(namedUnit(t, "a", nil), WeightedSum{Weights: []float64{1, 0}})
	if err := m.Register(rtA); err != nil {
		t.Fatal(err)
	}
	// 12-core machine: the 40-thread version never fits; the 10-thread
	// one does.
	idx, err := m.Invoke("a")
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("selection = %d, want 1 (10 threads on a 12-core budget)", idx)
	}
}
