package rts

// Per-version health tracking: a consecutive-failure circuit breaker
// that quarantines flaky versions for a cool-down measured in runtime
// invocations, then re-admits them through a single probe attempt.
// Quarantined versions are skipped by the fallback engine, so a
// persistently broken version stops being tried on every invocation
// while the remaining Pareto versions keep serving.

// Default circuit-breaker parameters, applied when the corresponding
// HealthConfig field is zero.
const (
	DefaultFailureThreshold = 3
	DefaultCooldown         = 20
)

// HealthConfig tunes the per-version circuit breaker.
type HealthConfig struct {
	// FailureThreshold is the number of consecutive failures after
	// which a version is quarantined. 0 means
	// DefaultFailureThreshold; negative disables quarantining.
	FailureThreshold int
	// Cooldown is how many subsequent runtime invocations a
	// quarantined version sits out before one probe attempt is
	// allowed. 0 means DefaultCooldown.
	Cooldown int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = DefaultFailureThreshold
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultCooldown
	}
	return c
}

// VersionHealth is a snapshot of one version's circuit-breaker state.
type VersionHealth struct {
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int
	// Quarantined reports whether the version is sitting out.
	Quarantined bool
	// ProbeIn is how many invocations remain until a quarantined
	// version may probe; 0 when healthy or already probe-eligible.
	ProbeIn int
}

type versionState struct {
	fails       int
	quarantined bool
	probeAt     int
}

// healthTracker implements the circuit breaker. It is not
// self-synchronizing: every method must be called with the owning
// runtime's mutex held.
type healthTracker struct {
	cfg  HealthConfig
	tick int // advanced once per runtime invocation
	vs   map[int]*versionState
}

func newHealthTracker(cfg HealthConfig) *healthTracker {
	return &healthTracker{cfg: cfg.withDefaults(), vs: map[int]*versionState{}}
}

func (h *healthTracker) state(idx int) *versionState {
	s := h.vs[idx]
	if s == nil {
		s = &versionState{}
		h.vs[idx] = s
	}
	return s
}

// eligible reports whether a version may be attempted: healthy, or
// quarantined with an expired cool-down (probe).
func (h *healthTracker) eligible(idx int) bool {
	s := h.vs[idx]
	if s == nil || !s.quarantined {
		return true
	}
	return h.tick >= s.probeAt
}

// success records a successful attempt and reports whether the version
// was re-admitted from quarantine (a successful probe).
func (h *healthTracker) success(idx int) (readmitted bool) {
	s := h.state(idx)
	readmitted = s.quarantined
	s.fails = 0
	s.quarantined = false
	s.probeAt = 0
	return readmitted
}

// failure records a failed attempt and reports whether the version
// entered (or, after a failed probe, re-entered) quarantine.
func (h *healthTracker) failure(idx int) (quarantined bool) {
	s := h.state(idx)
	s.fails++
	if s.quarantined {
		s.probeAt = h.tick + h.cfg.Cooldown
		return true
	}
	if h.cfg.FailureThreshold > 0 && s.fails >= h.cfg.FailureThreshold {
		s.quarantined = true
		s.probeAt = h.tick + h.cfg.Cooldown
		return true
	}
	return false
}

// snapshot copies the tracked state for observability.
func (h *healthTracker) snapshot() map[int]VersionHealth {
	out := make(map[int]VersionHealth, len(h.vs))
	for idx, s := range h.vs {
		vh := VersionHealth{ConsecutiveFailures: s.fails, Quarantined: s.quarantined}
		if s.quarantined && s.probeAt > h.tick {
			vh.ProbeIn = s.probeAt - h.tick
		}
		out[idx] = vh
	}
	return out
}
