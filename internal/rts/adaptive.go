package rts

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"autotune/internal/multiversion"
	"autotune/internal/stats"
)

// Adaptive is a feedback-driven selection policy: it starts from the
// compile-time objective metadata but refines its choice with measured
// execution times of the versions it actually runs — the paper's
// "real-time system monitoring results for their decision-making
// processes" (§IV, Insieme Runtime System). An epsilon-greedy schedule
// balances exploiting the empirically fastest version against
// exploring the others whose static metadata makes them plausible.
//
// Adaptive is stateful: construct one per runtime and share it only
// with that runtime. It is safe for concurrent use.
type Adaptive struct {
	// Epsilon is the exploration probability (default 0.1).
	Epsilon float64
	// TimeObjective is the index of the time objective in the
	// metadata (default 0).
	TimeObjective int
	// Window is how many recent measurements per version are kept
	// (default 8).
	Window int
	// Seed drives exploration.
	Seed int64

	once sync.Once
	mu   sync.Mutex
	rng  interface{ Float64() float64 }
	rsrc interface{ Intn(n int) int }
	meas map[int][]float64
}

// Name implements Policy.
func (a *Adaptive) Name() string { return "adaptive" }

func (a *Adaptive) init() {
	a.once.Do(func() {
		if a.Epsilon == 0 {
			a.Epsilon = 0.1
		}
		if a.Window == 0 {
			a.Window = 8
		}
		r := stats.NewRand(a.Seed)
		a.rng = r
		a.rsrc = r
		a.meas = map[int][]float64{}
	})
}

// Select implements Policy: with probability Epsilon it explores a
// uniformly random feasible version; otherwise it exploits the version
// with the best score, where measured medians override the static
// metadata once available.
func (a *Adaptive) Select(u *multiversion.Unit, ctx Context) (int, error) {
	a.init()
	a.mu.Lock()
	defer a.mu.Unlock()
	feasible := feasibleVersions(u, ctx)
	if len(feasible) == 0 {
		return 0, errors.New("rts: no feasible version")
	}
	if a.rng.Float64() < a.Epsilon {
		return feasible[a.rsrc.Intn(len(feasible))], nil
	}
	best, bestScore := feasible[0], math.Inf(1)
	for _, i := range feasible {
		score := a.score(u, i)
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return best, nil
}

// Rank implements Ranker: feasible versions by ascending score. An
// epsilon roll moves a uniformly random feasible version to the front
// (exploration) while the rest keep the exploitation order, so
// fallback after a failed exploration resumes from the best-known
// versions.
func (a *Adaptive) Rank(u *multiversion.Unit, ctx Context) ([]int, error) {
	a.init()
	a.mu.Lock()
	defer a.mu.Unlock()
	feasible := feasibleVersions(u, ctx)
	if len(feasible) == 0 {
		return nil, errors.New("rts: no feasible version")
	}
	sort.SliceStable(feasible, func(x, y int) bool {
		return a.score(u, feasible[x]) < a.score(u, feasible[y])
	})
	if a.rng.Float64() < a.Epsilon {
		k := a.rsrc.Intn(len(feasible))
		pick := feasible[k]
		copy(feasible[1:k+1], feasible[:k])
		feasible[0] = pick
	}
	return feasible, nil
}

// feasibleVersions lists the version indices fitting the core budget.
func feasibleVersions(u *multiversion.Unit, ctx Context) []int {
	var feasible []int
	for i, v := range u.Versions {
		if ctx.AvailableCores > 0 && v.Meta.Threads > ctx.AvailableCores {
			continue
		}
		feasible = append(feasible, i)
	}
	return feasible
}

// score returns the measured median time when available, falling back
// to the static metadata.
func (a *Adaptive) score(u *multiversion.Unit, idx int) float64 {
	if ms := a.meas[idx]; len(ms) > 0 {
		return stats.MustMedian(ms)
	}
	objs := u.Versions[idx].Meta.Objectives
	if a.TimeObjective < len(objs) {
		return objs[a.TimeObjective]
	}
	return math.Inf(1)
}

// Observe records a measured execution time for a version, displacing
// the oldest sample beyond the window.
func (a *Adaptive) Observe(version int, seconds float64) {
	a.init()
	a.mu.Lock()
	defer a.mu.Unlock()
	ms := append(a.meas[version], seconds)
	if len(ms) > a.Window {
		ms = ms[len(ms)-a.Window:]
	}
	a.meas[version] = ms
}

// Measurements returns a copy of the recorded samples per version.
func (a *Adaptive) Measurements() map[int][]float64 {
	a.init()
	a.mu.Lock()
	defer a.mu.Unlock()
	out := map[int][]float64{}
	for k, v := range a.meas {
		out[k] = append([]float64(nil), v...)
	}
	return out
}

// InvokeTimed runs one invocation through the runtime, feeding the
// measured wall time back into the adaptive policy. It is a
// convenience for the common monitor-and-refine loop.
func InvokeTimed(rt *Runtime, a *Adaptive) (int, float64, error) {
	start := time.Now()
	idx, err := rt.Invoke()
	elapsed := time.Since(start).Seconds()
	if err != nil {
		return idx, elapsed, err
	}
	a.Observe(idx, elapsed)
	return idx, elapsed, nil
}
