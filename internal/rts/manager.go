package rts

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"autotune/internal/multiversion"
)

// Manager arbitrates a machine-wide core budget among several
// multi-versioned regions — the paper's "system wide performance
// settings may be considered" scenario. Each registered region has its
// own runtime and policy; the manager constrains every selection by
// the cores currently unclaimed by other in-flight invocations, so
// concurrently running regions co-exist instead of oversubscribing the
// machine.
type Manager struct {
	totalCores int

	mu            sync.Mutex
	regions       map[string]*Runtime
	inUse         int
	stats         map[string]*InvocationStats
	invokeTimeout time.Duration
}

// NewManager builds a manager for a machine with the given core count.
func NewManager(totalCores int) (*Manager, error) {
	if totalCores < 1 {
		return nil, errors.New("rts: manager needs at least one core")
	}
	return &Manager{
		totalCores: totalCores,
		regions:    map[string]*Runtime{},
		stats:      map[string]*InvocationStats{},
	}, nil
}

// Register adds a region's runtime under its unit's region name.
func (m *Manager) Register(rt *Runtime) error {
	name := rt.Unit().Region
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.regions[name]; dup {
		return fmt.Errorf("rts: region %q already registered", name)
	}
	m.regions[name] = rt
	m.stats[name] = newInvocationStats()
	if m.invokeTimeout > 0 {
		rt.SetEntryTimeout(m.invokeTimeout)
	}
	return nil
}

// SetInvokeTimeout bounds every entry attempt of every registered
// runtime (present and future) — the machine-wide guard against one
// region's hung version stalling a shared-budget invocation. It
// propagates through Runtime.SetEntryTimeout, so a timed-out attempt
// falls back along the policy ranking like any other failure. Zero or
// negative disables the bound.
func (m *Manager) SetInvokeTimeout(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.invokeTimeout = d
	for _, rt := range m.regions {
		rt.SetEntryTimeout(d)
	}
}

// Regions lists the registered region names, sorted.
func (m *Manager) Regions() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for n := range m.regions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CoresInUse returns the cores currently claimed by in-flight
// invocations.
func (m *Manager) CoresInUse() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inUse
}

// Invoke runs one invocation of the named region. The selection is
// constrained to versions fitting the currently free cores; the chosen
// version's cores are claimed for the duration of the execution. When
// a version's entry fails, the invocation falls back down the policy
// ranking, re-negotiating the core claim per candidate; failures and
// fallbacks are recorded in the region's stats. Returns the executed
// version index.
func (m *Manager) Invoke(region string) (int, error) {
	m.mu.Lock()
	rt, ok := m.regions[region]
	if !ok {
		m.mu.Unlock()
		return 0, fmt.Errorf("rts: unknown region %q", region)
	}
	free := m.totalCores - m.inUse
	m.mu.Unlock()
	if free < 1 {
		return 0, fmt.Errorf("rts: no cores free for region %q", region)
	}

	// Constrain the region's policy by the free-core budget; the
	// fallback engine claims each candidate's cores just before it
	// runs and releases them when it returns.
	rt.SetContext(Context{AvailableCores: free})
	record := func(mut func(*InvocationStats)) {
		m.mu.Lock()
		mut(m.stats[region])
		m.mu.Unlock()
	}
	acquire := func(idx int) (func(), error) {
		need := rt.unit.Versions[idx].Meta.Threads
		m.mu.Lock()
		if m.totalCores-m.inUse < need {
			m.mu.Unlock()
			return nil, errors.New("lost cores to a concurrent invocation")
		}
		m.inUse += need
		m.mu.Unlock()
		return func() {
			m.mu.Lock()
			m.inUse -= need
			m.mu.Unlock()
		}, nil
	}
	idx, err := rt.invokeRanked(Context{AvailableCores: free}, record, acquire)
	if err != nil {
		return idx, fmt.Errorf("rts: region %q: %w", region, err)
	}
	return idx, nil
}

// Stats returns a copy of the per-region invocation statistics.
func (m *Manager) Stats() map[string]InvocationStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]InvocationStats{}
	for name, st := range m.stats {
		out[name] = st.clone()
	}
	return out
}

// Unit returns the registered unit for a region (nil if absent) —
// convenience for inspecting metadata.
func (m *Manager) Unit(region string) *multiversion.Unit {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rt, ok := m.regions[region]; ok {
		return rt.Unit()
	}
	return nil
}
