// Package analyzer implements the code-analyzer stage of the framework
// (label 1-2 in the paper's Fig. 3): it decomposes a MiniIR program
// into tunable regions, runs the polyhedral dependence tests to find
// the largest tilable loop band and the legality of collapsing, and
// synthesizes a transformation skeleton with its parameter space for
// each region.
//
// Mirroring the paper's implementation section: "The Analyzer searches
// for nested loops and performs a dependency test (based on the
// polyhedral model) to determine the largest subset of loops which can
// be tiled and optionally collapsed, without sacrificing the
// possibility of parallelizing the resulting loop."
package analyzer

import (
	"fmt"

	"autotune/internal/ir"
	"autotune/internal/polyhedral"
	"autotune/internal/skeleton"
)

// Region is one tunable code region: a perfect loop nest with its
// legality analysis and the synthesized skeleton.
type Region struct {
	// ID is the index of the region within the program.
	ID int
	// RootIndex is the position of the region's nest within the
	// analyzed program's top-level statement list.
	RootIndex int
	// Root is the loop nest (a node of the analyzed program).
	Root *ir.Loop
	// Loops is the perfect nest, outermost first.
	Loops []*ir.Loop
	// Deps are the data dependences among the nest's statements.
	Deps []polyhedral.Dependence
	// Band is the depth of the outermost fully permutable (tilable)
	// band.
	Band int
	// Collapsible reports whether the two outermost loops may be
	// collapsed before parallelization.
	Collapsible bool
	// MaxTile is the derived upper bound for tile-size parameters
	// (the paper uses N/2).
	MaxTile int64
	// Skeleton is the synthesized transformation skeleton; its
	// parameter layout is [t_1 .. t_Band, threads].
	Skeleton *skeleton.Skeleton
}

// Options configures the analysis.
type Options struct {
	// MaxThreads bounds the thread-count parameter (the number of
	// cores of the target machine).
	MaxThreads int
	// MinTripCount skips nests whose outermost trip count is below
	// this bound (not worth parallelizing); 0 means 4.
	MinTripCount int64
}

// Analyze decomposes the program into tunable regions. Nests whose
// outermost loop cannot be parallelized (directly or after tiling) are
// skipped — they are not tunable by this framework.
func Analyze(p *ir.Program, opt Options) ([]Region, error) {
	if opt.MaxThreads < 1 {
		return nil, fmt.Errorf("analyzer: MaxThreads must be >= 1")
	}
	if opt.MinTripCount == 0 {
		opt.MinTripCount = 4
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("analyzer: %w", err)
	}
	var regions []Region
	for rootIdx, n := range p.Root {
		root, ok := n.(*ir.Loop)
		if !ok {
			continue
		}
		loops, stmts := ir.PerfectNest(root)
		if len(loops) == 0 || len(stmts) == 0 {
			continue
		}
		if loops[0].TripCount(map[string]int64{}) < opt.MinTripCount {
			continue
		}
		deps := polyhedral.Analyze(loops, stmts)
		if !polyhedral.ParallelLoop(deps, 0) {
			// The outermost loop carries a dependence; tiling cannot
			// restore outer parallelism under this skeleton.
			continue
		}
		band := polyhedral.MaxTilableBand(deps, len(loops))
		if band == 0 {
			continue
		}
		collapsible := polyhedral.CollapsibleLoops(loops, deps, 0)
		maxTile := loops[0].TripCount(map[string]int64{}) / 2
		if maxTile < 1 {
			maxTile = 1
		}
		id := len(regions)
		sk := skeleton.TiledParallel(
			fmt.Sprintf("%s#%d", p.Name, id),
			band, maxTile, opt.MaxThreads, collapsible,
		)
		regions = append(regions, Region{
			ID:          id,
			RootIndex:   rootIdx,
			Root:        root,
			Loops:       loops,
			Deps:        deps,
			Band:        band,
			Collapsible: collapsible,
			MaxTile:     maxTile,
			Skeleton:    sk,
		})
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("analyzer: no tunable regions in %s", p.Name)
	}
	return regions, nil
}

// Instantiate applies a region's skeleton with the given configuration
// to the outlined region and returns the transformed program plus the
// execution parameters.
func (r *Region) Instantiate(p *ir.Program, cfg skeleton.Config) (*ir.Program, skeleton.Instance, error) {
	return r.Skeleton.Apply(r.Outline(p), cfg)
}

// Outline extracts the region into a standalone single-nest program —
// the paper's backend step of "outlining the selected regions into
// functions" before multi-versioning. The transformations in
// internal/transform target a program's first top-level nest, so
// multi-region programs must outline before instantiating.
func (r *Region) Outline(p *ir.Program) *ir.Program {
	out := p.Clone()
	if r.RootIndex >= 0 && r.RootIndex < len(out.Root) {
		out.Root = []ir.Node{out.Root[r.RootIndex]}
	}
	out.Name = fmt.Sprintf("%s.region%d", p.Name, r.ID)
	return out
}
