package analyzer

import (
	"testing"

	"autotune/internal/ir"
	"autotune/internal/kernels"
	"autotune/internal/skeleton"
)

func TestAnalyzeAllKernels(t *testing.T) {
	for _, k := range kernels.All() {
		p := k.IR(128)
		regions, err := Analyze(p, Options{MaxThreads: 40})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		wantRegions := 1
		if k.Name == "2mm" || k.Name == "atax" {
			wantRegions = 2 // two-stage programs contribute two nests
		}
		if len(regions) != wantRegions {
			t.Fatalf("%s: regions = %d, want %d", k.Name, len(regions), wantRegions)
		}
		r := regions[0]
		if r.Band < k.TileDims {
			t.Errorf("%s: band %d < expected %d", k.Name, r.Band, k.TileDims)
		}
		if r.Collapsible != k.Collapse {
			t.Errorf("%s: collapsible = %v, want %v", k.Name, r.Collapsible, k.Collapse)
		}
		// Space layout: band tile params + threads.
		if r.Skeleton.Space.Dim() != r.Band+1 {
			t.Errorf("%s: space dim = %d, want %d", k.Name, r.Skeleton.Space.Dim(), r.Band+1)
		}
		last := r.Skeleton.Space.Params[r.Band]
		if last.Kind != skeleton.ThreadCount || last.Max != 40 {
			t.Errorf("%s: thread param = %+v", k.Name, last)
		}
	}
}

func TestAnalyzeMaxTileIsHalfTripCount(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	regions, err := Analyze(mm.IR(256), Options{MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if regions[0].MaxTile != 128 {
		t.Fatalf("MaxTile = %d, want 128 (N/2)", regions[0].MaxTile)
	}
}

func TestAnalyzeSkipsNonParallelNest(t *testing.T) {
	// A[i] = A[i-1]: fully sequential.
	stmt := &ir.Stmt{
		Label:  "scan",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i")}}},
		Reads:  []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i").AddConst(-1)}}},
	}
	il := &ir.Loop{Var: "i", Lo: ir.Con(1), Hi: ir.Con(64), Step: 1, Body: []ir.Node{stmt}}
	p := &ir.Program{Name: "scan", Arrays: []ir.Array{{Name: "A", ElemBytes: 8, Dims: []int64{64}}}, Root: []ir.Node{il}}
	if _, err := Analyze(p, Options{MaxThreads: 4}); err == nil {
		t.Fatal("sequential scan must not be tunable")
	}
}

func TestAnalyzeSkipsTinyLoops(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	if _, err := Analyze(mm.IR(2), Options{MaxThreads: 4}); err == nil {
		t.Fatal("trip count 2 should be skipped by MinTripCount")
	}
}

func TestAnalyzeOptionValidation(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	if _, err := Analyze(mm.IR(64), Options{}); err == nil {
		t.Fatal("MaxThreads 0 should fail")
	}
	bad := mm.IR(64)
	bad.Arrays = nil
	if _, err := Analyze(bad, Options{MaxThreads: 4}); err == nil {
		t.Fatal("invalid program should fail")
	}
}

func TestInstantiateProducesValidTransformedProgram(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	p := mm.IR(64)
	regions, err := Analyze(p, Options{MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	out, inst, err := regions[0].Instantiate(p, skeleton.Config{8, 8, 8, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Threads != 4 {
		t.Fatalf("threads = %d", inst.Threads)
	}
	loops, _ := ir.PerfectNest(out.Root[0])
	if !loops[0].Parallel {
		t.Fatal("outermost loop not parallelized")
	}
	if loops[0].Collapse != 2 {
		t.Fatalf("collapse = %d, want 2 for mm", loops[0].Collapse)
	}
}

func TestAnalyzeMultipleRegions(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	p1 := mm.IR(64)
	p2 := mm.IR(64)
	combined := &ir.Program{
		Name:   "two-regions",
		Arrays: p1.Arrays,
		Root:   []ir.Node{p1.Root[0], p2.Root[0]},
	}
	regions, err := Analyze(combined, Options{MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(regions))
	}
	if regions[0].ID == regions[1].ID {
		t.Fatal("region IDs must differ")
	}
}
