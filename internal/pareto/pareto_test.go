package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false},
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{2, 2}, []float64{1, 1}, false},
		{[]float64{1}, []float64{1, 2}, false},
		{nil, nil, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestWeaklyDominates(t *testing.T) {
	if !WeaklyDominates([]float64{1, 1}, []float64{1, 1}) {
		t.Error("equal vectors should weakly dominate")
	}
	if WeaklyDominates([]float64{1, 2}, []float64{2, 1}) {
		t.Error("incomparable vectors should not weakly dominate")
	}
	if WeaklyDominates([]float64{1}, []float64{1, 1}) {
		t.Error("mismatched lengths should not weakly dominate")
	}
}

func pts(vs ...[]float64) []Point {
	out := make([]Point, len(vs))
	for i, v := range vs {
		out[i] = Point{Payload: i, Objectives: v}
	}
	return out
}

func TestNonDominated(t *testing.T) {
	front := NonDominated(pts(
		[]float64{1, 5},
		[]float64{2, 2},
		[]float64{5, 1},
		[]float64{3, 3}, // dominated by (2,2)
		[]float64{2, 2}, // duplicate
	))
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3", len(front))
	}
}

func TestNonDominatedEmpty(t *testing.T) {
	if len(NonDominated(nil)) != 0 {
		t.Fatal("empty input should yield empty front")
	}
}

func TestArchiveAddEvict(t *testing.T) {
	a := NewArchive()
	if !a.Add(Point{Objectives: []float64{3, 3}}) {
		t.Fatal("first point must be kept")
	}
	if !a.Add(Point{Objectives: []float64{1, 5}}) {
		t.Fatal("incomparable point must be kept")
	}
	if a.Add(Point{Objectives: []float64{4, 4}}) {
		t.Fatal("dominated point must be rejected")
	}
	if a.Add(Point{Objectives: []float64{3, 3}}) {
		t.Fatal("duplicate point must be rejected (weak dominance)")
	}
	if !a.Add(Point{Objectives: []float64{2, 2}}) {
		t.Fatal("dominating point must be kept")
	}
	if a.Len() != 2 {
		t.Fatalf("archive size = %d, want 2 ((2,2) evicts (3,3))", a.Len())
	}
	for _, p := range a.Points() {
		if equalVec(p.Objectives, []float64{3, 3}) {
			t.Fatal("(3,3) should have been evicted")
		}
	}
}

func TestArchivePointsIsCopy(t *testing.T) {
	a := NewArchive()
	a.Add(Point{Objectives: []float64{1, 1}})
	ps := a.Points()
	ps[0] = Point{Objectives: []float64{9, 9}}
	if !equalVec(a.Points()[0].Objectives, []float64{1, 1}) {
		t.Fatal("Points() must return a copy")
	}
}

func TestHypervolume1D(t *testing.T) {
	hv, err := Hypervolume([][]float64{{0.2}, {0.5}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hv-0.8) > 1e-12 {
		t.Fatalf("1-D hv = %v, want 0.8", hv)
	}
}

func TestHypervolume2D(t *testing.T) {
	// Single point (0.5, 0.5) with ref (1,1): area 0.25.
	hv, err := Hypervolume([][]float64{{0.5, 0.5}}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hv-0.25) > 1e-12 {
		t.Fatalf("hv = %v, want 0.25", hv)
	}
	// Two-point staircase.
	hv, _ = Hypervolume([][]float64{{0.2, 0.6}, {0.6, 0.2}}, []float64{1, 1})
	want := 0.4*0.4 + 0.4*0.8 // (0.6-0.2)*(1-0.6) + (1-0.6)*(1-0.2) — compute explicitly below
	want = (0.6-0.2)*(1-0.6) + (1-0.6)*(1-0.2)
	if math.Abs(hv-want) > 1e-12 {
		t.Fatalf("hv = %v, want %v", hv, want)
	}
}

func TestHypervolumeIgnoresOutsideAndDominated(t *testing.T) {
	hv1, _ := Hypervolume([][]float64{{0.5, 0.5}}, []float64{1, 1})
	hv2, _ := Hypervolume([][]float64{{0.5, 0.5}, {0.7, 0.7}, {2, 0.1}, {math.NaN(), 0.5}}, []float64{1, 1})
	if hv1 != hv2 {
		t.Fatalf("dominated/outside points changed hv: %v vs %v", hv1, hv2)
	}
}

func TestHypervolume3DCube(t *testing.T) {
	// Point at origin dominates the whole unit cube.
	hv, err := Hypervolume([][]float64{{0, 0, 0}}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hv-1) > 1e-12 {
		t.Fatalf("hv = %v, want 1", hv)
	}
	// Two incomparable points.
	hv, _ = Hypervolume([][]float64{{0, 0.5, 0.5}, {0.5, 0, 0}}, []float64{1, 1, 1})
	// Union volume: A = 1*0.5*0.5 = 0.25, B = 0.5*1*1 = 0.5,
	// intersection = 0.5*0.5*0.5 = 0.125; union = 0.625.
	if math.Abs(hv-0.625) > 1e-12 {
		t.Fatalf("3-D hv = %v, want 0.625", hv)
	}
}

func TestHypervolumeErrors(t *testing.T) {
	if _, err := Hypervolume(nil, nil); err == nil {
		t.Error("empty ref should fail")
	}
	if _, err := Hypervolume([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("dim mismatch should fail")
	}
	hv, err := Hypervolume(nil, []float64{1, 1})
	if err != nil || hv != 0 {
		t.Errorf("empty front hv = %v, %v", hv, err)
	}
}

func TestNormalizedHypervolume(t *testing.T) {
	objs := [][]float64{{10, 200}, {20, 100}}
	hv, err := NormalizedHypervolume(objs, []float64{10, 100}, []float64{20, 200})
	if err != nil {
		t.Fatal(err)
	}
	// Normalized points: (0,1) and (1,0) → each contributes zero area?
	// (0,1): width 1, height 0; (1,0): width 0. hv = 0? No: (0,1)
	// covers x∈[0,1),y∈[1,1] → 0; (1,0) covers nothing. But their
	// staircase: sorted (0,1),(1,0): slab1 (1-0)*(1-1)=0, slab2 point
	// (1,0): (1-1)*(1-0)=0.
	if hv != 0 {
		t.Fatalf("hv = %v, want 0 for corner points", hv)
	}
	hv, err = NormalizedHypervolume([][]float64{{10, 100}}, []float64{10, 100}, []float64{20, 200})
	if err != nil || math.Abs(hv-1) > 1e-12 {
		t.Fatalf("ideal point hv = %v, want 1", hv)
	}
}

func TestNormalizedHypervolumeClampsOutliers(t *testing.T) {
	hv, err := NormalizedHypervolume([][]float64{{-100, -100}}, []float64{0, 0}, []float64{1, 1})
	if err != nil || math.Abs(hv-1) > 1e-12 {
		t.Fatalf("clamped outlier hv = %v, %v", hv, err)
	}
}

func TestNormalizedHypervolumeErrors(t *testing.T) {
	if _, err := NormalizedHypervolume(nil, []float64{0}, []float64{0}); err == nil {
		t.Error("nadir == ideal should fail")
	}
	if _, err := NormalizedHypervolume(nil, []float64{0, 0}, []float64{1}); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := NormalizedHypervolume([][]float64{{1}}, []float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("obj dim mismatch should fail")
	}
}

func TestIdealNadir(t *testing.T) {
	ideal, nadir, err := IdealNadir([][]float64{{1, 5}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !equalVec(ideal, []float64{1, 2}) || !equalVec(nadir, []float64{3, 5}) {
		t.Fatalf("ideal=%v nadir=%v", ideal, nadir)
	}
	if _, _, err := IdealNadir(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, _, err := IdealNadir([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged input should fail")
	}
}

// Property: no point in a NonDominated front dominates another.
func TestNonDominatedMutualProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var points []Point
		for i := 0; i+1 < len(raw); i += 2 {
			points = append(points, Point{Objectives: []float64{float64(raw[i] % 50), float64(raw[i+1] % 50)}})
		}
		front := NonDominated(points)
		for i := range front {
			for j := range front {
				if i != j && Dominates(front[i].Objectives, front[j].Objectives) {
					return false
				}
			}
		}
		// Every input point is weakly dominated by some front point.
		for _, p := range points {
			ok := false
			for _, q := range front {
				if WeaklyDominates(q.Objectives, p.Objectives) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hypervolume is monotone — adding a point never decreases it,
// and the result is within [0, prod(ref)] for points in the unit box.
func TestHypervolumeMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		ref := []float64{1, 1}
		var objs [][]float64
		prev := 0.0
		for i := 0; i < 8; i++ {
			objs = append(objs, []float64{rng.Float64(), rng.Float64()})
			hv, err := Hypervolume(objs, ref)
			if err != nil {
				t.Fatal(err)
			}
			if hv < prev-1e-12 {
				t.Fatalf("hv decreased from %v to %v", prev, hv)
			}
			if hv < 0 || hv > 1+1e-12 {
				t.Fatalf("hv out of range: %v", hv)
			}
			prev = hv
		}
	}
}

// Property: 3-D hypervolume agrees with Monte Carlo estimation.
func TestHypervolume3DMonteCarloProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		var objs [][]float64
		for i := 0; i < 6; i++ {
			objs = append(objs, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		}
		ref := []float64{1, 1, 1}
		hv, err := Hypervolume(objs, ref)
		if err != nil {
			t.Fatal(err)
		}
		const samples = 40000
		hits := 0
		for s := 0; s < samples; s++ {
			x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			for _, o := range objs {
				if WeaklyDominates(o, x) {
					hits++
					break
				}
			}
		}
		mc := float64(hits) / samples
		if math.Abs(hv-mc) > 0.02 {
			t.Fatalf("trial %d: hv = %v, monte carlo = %v", trial, hv, mc)
		}
	}
}

// Property: the archive always remains mutually non-dominated under
// random insertion.
func TestArchiveInvariantProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		a := NewArchive()
		for i := 0; i+1 < len(raw); i += 2 {
			a.Add(Point{Objectives: []float64{float64(raw[i] % 30), float64(raw[i+1] % 30)}})
		}
		ps := a.Points()
		for i := range ps {
			for j := range ps {
				if i != j && WeaklyDominates(ps[i].Objectives, ps[j].Objectives) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedReferenceCoversEveryFront(t *testing.T) {
	a := []Point{{Objectives: []float64{1, 10}}, {Objectives: []float64{3, 4}}}
	b := []Point{{Objectives: []float64{8, 2}}, {Objectives: []float64{0.5, 20}}}
	ref, err := SharedReference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range [][]Point{a, b} {
		for _, p := range f {
			for i := range p.Objectives {
				if p.Objectives[i] >= ref[i] {
					t.Fatalf("reference %v does not strictly cover point %v", ref, p.Objectives)
				}
			}
		}
	}
	// Every point must contribute nonzero volume against the shared
	// reference, including the pooled-nadir extremes.
	for _, f := range [][]Point{a, b} {
		for _, p := range f {
			hv, err := Hypervolume([][]float64{p.Objectives}, ref)
			if err != nil {
				t.Fatal(err)
			}
			if hv <= 0 {
				t.Fatalf("point %v contributes no volume under shared reference %v", p.Objectives, ref)
			}
		}
	}
}

func TestSharedReferenceDegenerateDimension(t *testing.T) {
	// All points share objective 1: a zero range is padded by 1, not 0.
	f := []Point{{Objectives: []float64{1, 7}}, {Objectives: []float64{2, 7}}}
	ref, err := SharedReference(f)
	if err != nil {
		t.Fatal(err)
	}
	if ref[1] != 8 {
		t.Fatalf("degenerate dimension reference = %v, want nadir+1 = 8", ref[1])
	}
}

func TestSharedReferenceErrors(t *testing.T) {
	if _, err := SharedReference(); err == nil {
		t.Fatal("no fronts accepted")
	}
	if _, err := SharedReference([]Point{}, []Point{}); err == nil {
		t.Fatal("empty fronts accepted")
	}
	mixed := []Point{{Objectives: []float64{1, 2}}, {Objectives: []float64{1, 2, 3}}}
	if _, err := SharedReference(mixed); err == nil {
		t.Fatal("mixed dimensionality accepted")
	}
}

// TestSharedReferenceRankingScaleInvariant pins the property the racing
// meta-optimizer depends on: ranking fronts by hypervolume-per-
// evaluation against a SharedReference must not change when the raw
// objectives are rescaled per dimension (e.g. seconds vs milliseconds,
// joules vs kilojoules). The affine map from pooled bounds makes the
// comparison unit-free.
func TestSharedReferenceRankingScaleInvariant(t *testing.T) {
	better := [][]float64{{1, 1}, {0.5, 2}, {2, 0.5}}
	worse := [][]float64{{3, 3}, {2.5, 4}}
	evals := map[string]int{"better": 30, "worse": 20}

	// Score exactly as the race does: raw hypervolume against the one
	// shared reference, divided by the contender's evaluation count.
	score := func(fronts map[string][][]float64) (sb, sw float64) {
		var all []Point
		pts := map[string][]Point{}
		for name, f := range fronts {
			for _, o := range f {
				pts[name] = append(pts[name], Point{Objectives: o})
			}
			all = append(all, pts[name]...)
		}
		ref, err := SharedReference(all)
		if err != nil {
			t.Fatal(err)
		}
		perEval := func(name string) float64 {
			hv, err := Hypervolume(objectivesOf(pts[name]), ref)
			if err != nil {
				t.Fatal(err)
			}
			return hv / float64(evals[name])
		}
		return perEval("better"), perEval("worse")
	}

	for _, scale := range [][]float64{{1, 1}, {1000, 1}, {1, 0.001}, {1e6, 1e-6}} {
		fronts := map[string][][]float64{}
		for name, f := range map[string][][]float64{"better": better, "worse": worse} {
			for _, o := range f {
				fronts[name] = append(fronts[name], []float64{o[0] * scale[0], o[1] * scale[1]})
			}
		}
		sb, sw := score(fronts)
		if sb <= sw {
			t.Fatalf("scale %v flips the ranking: better=%g worse=%g", scale, sb, sw)
		}
	}
}

func objectivesOf(pts []Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Objectives
	}
	return out
}
