// Package pareto provides the multi-objective primitives of the
// framework: dominance tests, Pareto-front extraction, an incremental
// non-dominated archive, and the hypervolume quality metric V(S) used
// in the paper's Table VI.
//
// All objective vectors are minimized component-wise. Callers that
// maximize an objective (e.g. efficiency) convert it to a cost before
// entering this package.
package pareto

import (
	"errors"
	"math"
	"sort"
)

// Dominates reports whether objective vector a dominates b: a is no
// worse in every component and strictly better in at least one. Both
// vectors must have the same length; mismatched lengths never dominate.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// WeaklyDominates reports whether a is no worse than b in every
// component (equality allowed everywhere).
func WeaklyDominates(a, b []float64) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// Point couples an arbitrary payload (typically a configuration) with
// its objective vector.
type Point struct {
	Payload    interface{}
	Objectives []float64
}

// NonDominated returns the subset of points not dominated by any other
// point. Duplicate objective vectors are collapsed to a single
// representative (the first occurrence).
func NonDominated(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if Dominates(q.Objectives, p.Objectives) {
				dominated = true
				break
			}
			// Duplicate vectors: keep only the first.
			if j < i && equalVec(q.Objectives, p.Objectives) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Archive maintains a set of mutually non-dominated points
// incrementally.
type Archive struct {
	points []Point
}

// NewArchive returns an empty archive.
func NewArchive() *Archive { return &Archive{} }

// Len returns the number of archived points.
func (a *Archive) Len() int { return len(a.points) }

// Points returns a copy of the archived points.
func (a *Archive) Points() []Point {
	return append([]Point(nil), a.points...)
}

// Add inserts p unless it is weakly dominated by an archived point; all
// archived points dominated by p are evicted. It reports whether p was
// kept.
func (a *Archive) Add(p Point) bool {
	kept := a.points[:0]
	for _, q := range a.points {
		if WeaklyDominates(q.Objectives, p.Objectives) {
			// Safe early exit: if any earlier point had been dominated
			// by p (and dropped), then by transitivity q would
			// dominate it too — impossible in a mutually non-dominated
			// archive. Hence no element has moved and the backing
			// array still holds the original contents.
			return false
		}
		if !Dominates(p.Objectives, q.Objectives) {
			kept = append(kept, q)
		}
	}
	a.points = append(kept, p)
	return true
}

// ErrBadReference is returned by Hypervolume when the reference point
// does not match the objective dimensionality.
var ErrBadReference = errors.New("pareto: reference point dimension mismatch")

// Hypervolume computes the volume of the objective-space region
// dominated by the given points and bounded by the reference point
// (minimization: every counted point must be component-wise <= ref).
// Points outside the reference box (or with NaN components) are
// SILENTLY DROPPED, not clamped: a front scored against a reference
// that does not cover it loses volume it legitimately dominates.
// Comparing several fronts therefore requires one shared reference
// covering all of them — see SharedReference. Exact for any dimension
// via recursive slicing; intended for the small fronts an auto-tuner
// produces.
func Hypervolume(objs [][]float64, ref []float64) (float64, error) {
	if len(ref) == 0 {
		return 0, ErrBadReference
	}
	var pts [][]float64
	for _, o := range objs {
		if len(o) != len(ref) {
			return 0, ErrBadReference
		}
		inside := true
		for i := range o {
			if o[i] > ref[i] || math.IsNaN(o[i]) {
				inside = false
				break
			}
		}
		if inside {
			pts = append(pts, o)
		}
	}
	pts = nonDominatedVecs(pts)
	return hvRec(pts, ref), nil
}

func nonDominatedVecs(objs [][]float64) [][]float64 {
	var out [][]float64
	for i, p := range objs {
		dominated := false
		for j, q := range objs {
			if i == j {
				continue
			}
			if Dominates(q, p) || (j < i && equalVec(q, p)) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// hvRec computes hypervolume by slicing along the first objective.
// Points must be non-dominated and within ref.
func hvRec(pts [][]float64, ref []float64) float64 {
	if len(pts) == 0 {
		return 0
	}
	d := len(ref)
	if d == 1 {
		best := pts[0][0]
		for _, p := range pts[1:] {
			if p[0] < best {
				best = p[0]
			}
		}
		return ref[0] - best
	}
	if d == 2 {
		// Vertical slab decomposition: points sorted by the first
		// objective ascending have strictly descending second
		// objective on a non-dominated front, so within the slab
		// [x_i, x_{i+1}) the dominated height is ref_y - y_i.
		sorted := append([][]float64(nil), pts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
		vol := 0.0
		for i, p := range sorted {
			nextX := ref[0]
			if i+1 < len(sorted) {
				nextX = sorted[i+1][0]
			}
			vol += (nextX - p[0]) * (ref[1] - p[1])
		}
		return vol
	}
	// General case: sweep the first objective; for each slab, the
	// dominated (d-1)-volume is that of the points already passed.
	sorted := append([][]float64(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	vol := 0.0
	for i := range sorted {
		x0 := sorted[i][0]
		x1 := ref[0]
		if i+1 < len(sorted) {
			x1 = sorted[i+1][0]
		}
		if x1 <= x0 {
			continue
		}
		var proj [][]float64
		for _, q := range sorted[:i+1] {
			proj = append(proj, q[1:])
		}
		proj = nonDominatedVecs(proj)
		vol += (x1 - x0) * hvRec(proj, ref[1:])
	}
	return vol
}

// NormalizedHypervolume computes V(S) in [0,1] as the paper uses it:
// objectives are affinely mapped so that the ideal point becomes the
// origin and the nadir point becomes (1,...,1); the hypervolume is then
// measured against the (1,...,1) reference and divided by the unit
// volume. Points outside the [ideal, nadir] box are clamped into it.
func NormalizedHypervolume(objs [][]float64, ideal, nadir []float64) (float64, error) {
	if len(ideal) != len(nadir) || len(ideal) == 0 {
		return 0, ErrBadReference
	}
	ref := make([]float64, len(ideal))
	for i := range ref {
		ref[i] = 1
		if nadir[i] <= ideal[i] {
			return 0, errors.New("pareto: nadir must exceed ideal in every objective")
		}
	}
	var norm [][]float64
	for _, o := range objs {
		if len(o) != len(ideal) {
			return 0, ErrBadReference
		}
		v := make([]float64, len(o))
		for i := range o {
			x := (o[i] - ideal[i]) / (nadir[i] - ideal[i])
			if x < 0 {
				x = 0
			}
			if x > 1 {
				x = 1
			}
			v[i] = x
		}
		norm = append(norm, v)
	}
	return Hypervolume(norm, ref)
}

// SharedReference derives one reference point covering every point of
// every given front, for hypervolume comparisons across fronts.
// Hypervolume silently drops points outside its reference box, so
// scoring competing strategies against per-strategy references
// compares garbage; a shared reference keeps every front fully inside
// the box and the comparison meaningful. The reference is the pooled
// nadir padded by 5% of the pooled objective range per dimension (so
// boundary points contribute nonzero volume); a degenerate dimension
// (zero range across all fronts) is padded by 1. Returns an error when
// the fronts hold no points or mix objective dimensionalities.
func SharedReference(fronts ...[]Point) ([]float64, error) {
	var pool [][]float64
	for _, f := range fronts {
		for _, p := range f {
			pool = append(pool, p.Objectives)
		}
	}
	if len(pool) == 0 {
		return nil, errors.New("pareto: shared reference needs at least one point")
	}
	ideal, nadir, err := IdealNadir(pool)
	if err != nil {
		return nil, err
	}
	ref := make([]float64, len(nadir))
	for i := range ref {
		pad := 0.05 * (nadir[i] - ideal[i])
		if pad == 0 {
			pad = 1
		}
		ref[i] = nadir[i] + pad
	}
	return ref, nil
}

// IdealNadir returns the component-wise minimum (ideal) and maximum
// (nadir) of the given objective vectors.
func IdealNadir(objs [][]float64) (ideal, nadir []float64, err error) {
	if len(objs) == 0 {
		return nil, nil, errors.New("pareto: no objective vectors")
	}
	d := len(objs[0])
	ideal = append([]float64(nil), objs[0]...)
	nadir = append([]float64(nil), objs[0]...)
	for _, o := range objs[1:] {
		if len(o) != d {
			return nil, nil, ErrBadReference
		}
		for i := range o {
			if o[i] < ideal[i] {
				ideal[i] = o[i]
			}
			if o[i] > nadir[i] {
				nadir[i] = o[i]
			}
		}
	}
	return ideal, nadir, nil
}
