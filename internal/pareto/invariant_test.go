package pareto

import (
	"math/rand"
	"testing"
)

// randomObjs draws n objective vectors with dim components from a
// small discrete range so duplicates and dominance chains both occur.
func randomObjs(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for c := range v {
			v[c] = float64(rng.Intn(10))
		}
		out[i] = v
	}
	return out
}

// TestArchiveFrontMutuallyNonDominating is the core Pareto invariant:
// however points arrive, no archived point may dominate (or duplicate)
// another, and every input must be weakly dominated by some survivor.
func TestArchiveFrontMutuallyNonDominating(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(2)
		objs := randomObjs(rng, 5+rng.Intn(60), dim)
		a := NewArchive()
		for _, o := range objs {
			a.Add(Point{Objectives: o})
		}
		front := a.Points()
		if len(front) == 0 {
			t.Fatalf("seed %d: empty front from %d points", seed, len(objs))
		}
		for i, p := range front {
			for j, q := range front {
				if i == j {
					continue
				}
				if Dominates(p.Objectives, q.Objectives) {
					t.Fatalf("seed %d: archived point %v dominates archived point %v",
						seed, p.Objectives, q.Objectives)
				}
				if equalVec(p.Objectives, q.Objectives) {
					t.Fatalf("seed %d: duplicate objective vector %v in front", seed, p.Objectives)
				}
			}
		}
		for _, o := range objs {
			covered := false
			for _, p := range front {
				if WeaklyDominates(p.Objectives, o) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("seed %d: input %v not weakly dominated by any archived point", seed, o)
			}
		}
	}
}

// TestArchiveMatchesNonDominated checks the incremental archive against
// the batch extraction: both must retain exactly the same objective
// vectors for any insertion order.
func TestArchiveMatchesNonDominated(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		objs := randomObjs(rng, 5+rng.Intn(40), 2)
		points := make([]Point, len(objs))
		for i, o := range objs {
			points[i] = Point{Objectives: o}
		}
		batch := NonDominated(points)
		a := NewArchive()
		for _, p := range points {
			a.Add(p)
		}
		inc := a.Points()
		if len(batch) != len(inc) {
			t.Fatalf("seed %d: batch front has %d points, archive %d", seed, len(batch), len(inc))
		}
		for _, p := range batch {
			found := false
			for _, q := range inc {
				if equalVec(p.Objectives, q.Objectives) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d: batch point %v missing from archive", seed, p.Objectives)
			}
		}
	}
}
