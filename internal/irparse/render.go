package irparse

import (
	"fmt"
	"strings"

	"autotune/internal/ir"
)

// Render emits a MiniIR program in the text grammar this package
// parses, so Parse(Render(p)) reconstructs p. It covers exactly the
// grammar's subset of MiniIR: programs carrying transformation-only
// constructs (bound caps, parallel/collapse annotations, unroll
// pragmas) are rejected, as are names the grammar cannot spell.
//
// Render is the inverse Parse lacks: ir.Program.String() produces a
// pseudo-C listing for human readers, not parseable source.
func Render(p *ir.Program) (string, error) {
	var sb strings.Builder
	if !isIdent(p.Name) {
		return "", fmt.Errorf("irparse: program name %q is not renderable", p.Name)
	}
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	for _, a := range p.Arrays {
		if !isIdent(a.Name) {
			return "", fmt.Errorf("irparse: array name %q is not renderable", a.Name)
		}
		if a.ElemBytes <= 0 || len(a.Dims) == 0 {
			return "", fmt.Errorf("irparse: array %s needs positive element size and dimensions", a.Name)
		}
		fmt.Fprintf(&sb, "array %s", a.Name)
		for _, d := range a.Dims {
			if d <= 0 {
				return "", fmt.Errorf("irparse: array %s has non-positive dimension %d", a.Name, d)
			}
			fmt.Fprintf(&sb, "[%d]", d)
		}
		fmt.Fprintf(&sb, " elem %d\n", a.ElemBytes)
	}
	for _, n := range p.Root {
		if err := renderNode(&sb, n, 0); err != nil {
			return "", err
		}
	}
	return sb.String(), nil
}

func renderNode(sb *strings.Builder, n ir.Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	switch t := n.(type) {
	case *ir.Loop:
		if !isIdent(t.Var) {
			return fmt.Errorf("irparse: iterator name %q is not renderable", t.Var)
		}
		if t.Step <= 0 {
			return fmt.Errorf("irparse: loop %s has non-positive step %d", t.Var, t.Step)
		}
		if len(t.Caps) > 0 || t.Parallel || t.Collapse > 1 || t.UnrollPragma > 1 {
			return fmt.Errorf("irparse: loop %s carries transformation constructs outside the text grammar", t.Var)
		}
		// The for header is whitespace-tokenized by the parser, so the
		// range expressions must be rendered without spaces.
		head := fmt.Sprintf("%sfor %s = %s..%s", indent, t.Var, compactAffine(t.Lo), compactAffine(t.Hi))
		if t.Step != 1 {
			head += fmt.Sprintf(" step %d", t.Step)
		}
		sb.WriteString(head + " {\n")
		for _, c := range t.Body {
			if err := renderNode(sb, c, depth+1); err != nil {
				return err
			}
		}
		sb.WriteString(indent + "}\n")
		return nil
	case *ir.Stmt:
		if len(t.Writes) == 0 {
			return fmt.Errorf("irparse: statement without writes is not renderable")
		}
		if t.Flops < 0 {
			return fmt.Errorf("irparse: statement with negative flops is not renderable")
		}
		writes, err := renderAccesses(t.Writes)
		if err != nil {
			return err
		}
		reads, err := renderAccesses(t.Reads)
		if err != nil {
			return err
		}
		fmt.Fprintf(sb, "%s%s = f(%s) flops %d\n", indent, writes, reads, t.Flops)
		return nil
	default:
		return fmt.Errorf("irparse: unknown node type %T", n)
	}
}

func renderAccesses(acs []ir.Access) (string, error) {
	parts := make([]string, len(acs))
	for i, ac := range acs {
		if !isIdent(ac.Array) {
			return "", fmt.Errorf("irparse: array name %q is not renderable", ac.Array)
		}
		if len(ac.Indices) == 0 {
			return "", fmt.Errorf("irparse: access to %s without indices is not renderable", ac.Array)
		}
		var sb strings.Builder
		sb.WriteString(ac.Array)
		for _, ix := range ac.Indices {
			fmt.Fprintf(&sb, "[%s]", compactAffine(ix))
		}
		parts[i] = sb.String()
	}
	return strings.Join(parts, ", "), nil
}

// compactAffine renders an affine expression without spaces, the form
// parseAffine accepts everywhere (including whitespace-split for
// headers).
func compactAffine(a ir.Affine) string {
	return strings.ReplaceAll(a.String(), " ", "")
}
