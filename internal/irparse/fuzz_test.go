package irparse

import "testing"

// FuzzIRParse asserts the parser never panics on arbitrary input and
// that Parse and Render form a stable round trip: anything that parses
// must render, anything rendered must re-parse, and a second
// render must reproduce the first byte for byte.
func FuzzIRParse(f *testing.F) {
	f.Add("program mm\n" +
		"array A[64][64] elem 8\n" +
		"array B[64][64] elem 8\n" +
		"array C[64][64] elem 8\n" +
		"for i = 0..64 { for j = 0..64 { for k = 0..64 {\n" +
		"  C[i][j] = f(C[i][j], A[i][k], B[k][j]) flops 2\n" +
		"}}}\n")
	f.Add("program p\narray X[8] elem 4\nfor i = 0..8 step 2 {\n  X[i] = f() flops 1\n}\n")
	f.Add("program q\narray A[4][4] elem 8\nfor i = 1..4 {\nfor j = i..4 {\n" +
		"A[i][j], A[j][i] = f(A[i-1][2*j+1]) flops 3\n}\n}\n")
	f.Add("program empty\n")
	f.Add("program x\narray A[2] elem 1\nfor i = 0..2 {\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Parse(src) // must never panic
		if err != nil {
			return
		}
		r1, err := Render(p1)
		if err != nil {
			t.Fatalf("parsed program failed to render: %v\nsource:\n%s", err, src)
		}
		p2, err := Parse(r1)
		if err != nil {
			t.Fatalf("rendered program failed to re-parse: %v\nrendered:\n%s", err, r1)
		}
		r2, err := Render(p2)
		if err != nil {
			t.Fatalf("re-render failed: %v", err)
		}
		if r2 != r1 {
			t.Fatalf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", r1, r2)
		}
	})
}
