// Package irparse parses a compact text format for MiniIR programs, so
// tunable loop nests can be supplied as files rather than Go code —
// the user-facing analogue of the paper's C input path (label 1 in
// Fig. 3).
//
// Grammar (line oriented; '#' starts a comment):
//
//	program <name>
//	array <name>[<dim>][<dim>]... elem <bytes>
//	for <var> = <lo>..<hi> [step <s>] {
//	  <writes> = f(<reads>) flops <n>
//	  ...nested for...
//	}
//
// Bounds are integers or affine expressions over enclosing iterators
// (e.g. "i+1", "2*i", "n" is not supported — sizes are concrete).
// Accesses are A[expr][expr]... with affine index expressions; the
// statement form lists one or more written accesses, then the read
// accesses, e.g.:
//
//	C[i][j] = f(C[i][j], A[i][k], B[k][j]) flops 2
package irparse

import (
	"fmt"
	"strconv"
	"strings"

	"autotune/internal/ir"
)

// Parse builds a MiniIR program from the text format.
func Parse(src string) (*ir.Program, error) {
	p := &parser{}
	p.tokenizeLines(src)
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("irparse: parsed program invalid: %w", err)
	}
	return prog, nil
}

type line struct {
	no   int
	text string
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) tokenizeLines(src string) {
	for i, raw := range strings.Split(src, "\n") {
		text := raw
		if idx := strings.Index(text, "#"); idx >= 0 {
			text = text[:idx]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		// Split trailing '{' or standalone '}' into separate logical
		// lines for a simpler parser.
		for text != "" {
			switch {
			case text == "}":
				p.lines = append(p.lines, line{i + 1, "}"})
				text = ""
			case strings.HasSuffix(text, "{"):
				head := strings.TrimSpace(strings.TrimSuffix(text, "{"))
				if head != "" {
					p.lines = append(p.lines, line{i + 1, head + " {"})
				} else {
					p.lines = append(p.lines, line{i + 1, "{"})
				}
				text = ""
			case strings.HasSuffix(text, "}"):
				p.lines = append(p.lines, line{i + 1, strings.TrimSpace(strings.TrimSuffix(text, "}"))})
				p.lines = append(p.lines, line{i + 1, "}"})
				text = ""
			default:
				p.lines = append(p.lines, line{i + 1, text})
				text = ""
			}
		}
	}
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

func (p *parser) next() (line, bool) {
	l, ok := p.peek()
	if ok {
		p.pos++
	}
	return l, ok
}

func (p *parser) errf(l line, format string, args ...interface{}) error {
	return fmt.Errorf("irparse: line %d: %s", l.no, fmt.Sprintf(format, args...))
}

func (p *parser) parseProgram() (*ir.Program, error) {
	l, ok := p.next()
	if !ok || !strings.HasPrefix(l.text, "program ") {
		return nil, fmt.Errorf("irparse: expected 'program <name>' header")
	}
	prog := &ir.Program{Name: strings.TrimSpace(strings.TrimPrefix(l.text, "program "))}
	if !isIdent(prog.Name) {
		return nil, p.errf(l, "bad program name %q", prog.Name)
	}
	for {
		l, ok := p.peek()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(l.text, "array "):
			p.pos++
			a, err := p.parseArray(l)
			if err != nil {
				return nil, err
			}
			prog.Arrays = append(prog.Arrays, a)
		case strings.HasPrefix(l.text, "for "):
			loop, err := p.parseFor()
			if err != nil {
				return nil, err
			}
			prog.Root = append(prog.Root, loop)
		default:
			return nil, p.errf(l, "expected 'array' or 'for', got %q", l.text)
		}
	}
	return prog, nil
}

// parseArray handles: array A[64][32] elem 8
func (p *parser) parseArray(l line) (ir.Array, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(l.text, "array "))
	elemIdx := strings.Index(rest, " elem ")
	if elemIdx < 0 {
		return ir.Array{}, p.errf(l, "array declaration needs 'elem <bytes>'")
	}
	decl := strings.TrimSpace(rest[:elemIdx])
	elemStr := strings.TrimSpace(rest[elemIdx+len(" elem "):])
	elem, err := strconv.Atoi(elemStr)
	if err != nil || elem <= 0 {
		return ir.Array{}, p.errf(l, "bad element size %q", elemStr)
	}
	open := strings.Index(decl, "[")
	if open < 0 {
		return ir.Array{}, p.errf(l, "array declaration needs dimensions")
	}
	name := strings.TrimSpace(decl[:open])
	if !isIdent(name) {
		return ir.Array{}, p.errf(l, "bad array name %q", name)
	}
	dimsPart := decl[open:]
	dims, err := parseBracketed(dimsPart)
	if err != nil {
		return ir.Array{}, p.errf(l, "%v", err)
	}
	a := ir.Array{Name: name, ElemBytes: elem}
	for _, d := range dims {
		v, err := strconv.ParseInt(strings.TrimSpace(d), 10, 64)
		if err != nil || v <= 0 {
			return ir.Array{}, p.errf(l, "bad dimension %q", d)
		}
		a.Dims = append(a.Dims, v)
	}
	return a, nil
}

// parseBracketed splits "[a][b][c]" into its bracket contents.
func parseBracketed(s string) ([]string, error) {
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		if s[0] != '[' {
			return nil, fmt.Errorf("expected '[' in %q", s)
		}
		close := strings.Index(s, "]")
		if close < 0 {
			return nil, fmt.Errorf("unterminated '[' in %q", s)
		}
		out = append(out, s[1:close])
		s = s[close+1:]
	}
	return out, nil
}

// parseFor handles: for i = 0..64 [step 2] { body }
func (p *parser) parseFor() (*ir.Loop, error) {
	l, _ := p.next()
	header := strings.TrimSuffix(strings.TrimSpace(l.text), "{")
	header = strings.TrimSpace(header)
	fields := strings.Fields(header)
	// for <var> = <lo>..<hi> [step <s>]
	if len(fields) < 4 || fields[0] != "for" || fields[2] != "=" {
		return nil, p.errf(l, "bad for header %q", l.text)
	}
	if !isIdent(fields[1]) {
		return nil, p.errf(l, "bad iterator name %q", fields[1])
	}
	// Only "for v = lo..hi" and "for v = lo..hi step s" are legal;
	// trailing junk is an error, not silently ignored.
	if len(fields) != 4 && (len(fields) != 6 || fields[4] != "step") {
		return nil, p.errf(l, "bad for header %q", l.text)
	}
	loop := &ir.Loop{Var: fields[1], Step: 1}
	rangeStr := fields[3]
	dots := strings.Index(rangeStr, "..")
	if dots < 0 {
		return nil, p.errf(l, "for range needs '..' in %q", rangeStr)
	}
	lo, err := parseAffine(rangeStr[:dots])
	if err != nil {
		return nil, p.errf(l, "bad lower bound: %v", err)
	}
	hi, err := parseAffine(rangeStr[dots+2:])
	if err != nil {
		return nil, p.errf(l, "bad upper bound: %v", err)
	}
	loop.Lo, loop.Hi = lo, hi
	if len(fields) >= 6 && fields[4] == "step" {
		s, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil || s <= 0 {
			return nil, p.errf(l, "bad step %q", fields[5])
		}
		loop.Step = s
	}
	if !strings.HasSuffix(strings.TrimSpace(l.text), "{") {
		return nil, p.errf(l, "for header must end with '{'")
	}
	for {
		nl, ok := p.peek()
		if !ok {
			return nil, p.errf(l, "unterminated for body")
		}
		if nl.text == "}" {
			p.pos++
			return loop, nil
		}
		if strings.HasPrefix(nl.text, "for ") {
			inner, err := p.parseFor()
			if err != nil {
				return nil, err
			}
			loop.Body = append(loop.Body, inner)
			continue
		}
		p.pos++
		stmt, err := p.parseStmt(nl)
		if err != nil {
			return nil, err
		}
		loop.Body = append(loop.Body, stmt)
	}
}

// parseStmt handles: C[i][j], X[i] = f(A[i][k], B[k][j]) flops 2
func (p *parser) parseStmt(l line) (*ir.Stmt, error) {
	text := l.text
	flops := int64(1)
	if idx := strings.LastIndex(text, " flops "); idx >= 0 {
		f, err := strconv.ParseInt(strings.TrimSpace(text[idx+len(" flops "):]), 10, 64)
		if err != nil || f < 0 {
			return nil, p.errf(l, "bad flops count")
		}
		flops = f
		text = strings.TrimSpace(text[:idx])
	}
	eq := strings.Index(text, "=")
	if eq < 0 {
		return nil, p.errf(l, "statement needs '='")
	}
	lhs := strings.TrimSpace(text[:eq])
	rhs := strings.TrimSpace(text[eq+1:])
	if !strings.HasPrefix(rhs, "f(") || !strings.HasSuffix(rhs, ")") {
		return nil, p.errf(l, "statement right-hand side must be f(...)")
	}
	inner := strings.TrimSpace(rhs[2 : len(rhs)-1])
	stmt := &ir.Stmt{Label: l.text, Flops: flops}
	for _, w := range splitTopLevel(lhs) {
		ac, err := parseAccess(w)
		if err != nil {
			return nil, p.errf(l, "bad write %q: %v", w, err)
		}
		stmt.Writes = append(stmt.Writes, ac)
	}
	if inner != "" {
		for _, r := range splitTopLevel(inner) {
			ac, err := parseAccess(r)
			if err != nil {
				return nil, p.errf(l, "bad read %q: %v", r, err)
			}
			stmt.Reads = append(stmt.Reads, ac)
		}
	}
	if len(stmt.Writes) == 0 {
		return nil, p.errf(l, "statement needs at least one write")
	}
	return stmt, nil
}

// splitTopLevel splits a comma-separated list, respecting brackets.
func splitTopLevel(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

// parseAccess handles A[i][2*j+1].
func parseAccess(s string) (ir.Access, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "[")
	if open <= 0 {
		return ir.Access{}, fmt.Errorf("access needs array[index] form")
	}
	name := strings.TrimSpace(s[:open])
	if !isIdent(name) {
		return ir.Access{}, fmt.Errorf("bad array name %q", name)
	}
	idxs, err := parseBracketed(s[open:])
	if err != nil {
		return ir.Access{}, err
	}
	ac := ir.Access{Array: name}
	for _, ix := range idxs {
		e, err := parseAffine(ix)
		if err != nil {
			return ir.Access{}, fmt.Errorf("index %q: %w", ix, err)
		}
		ac.Indices = append(ac.Indices, e)
	}
	return ac, nil
}

// parseAffine parses "2*i + j - 3" style expressions.
func parseAffine(s string) (ir.Affine, error) {
	s = strings.ReplaceAll(s, " ", "")
	if s == "" {
		return ir.Affine{}, fmt.Errorf("empty expression")
	}
	out := ir.Con(0)
	// Split into signed terms.
	terms := []string{}
	cur := strings.Builder{}
	for i, r := range s {
		if (r == '+' || r == '-') && i > 0 && s[i-1] != '*' {
			terms = append(terms, cur.String())
			cur.Reset()
			if r == '-' {
				cur.WriteByte('-')
			}
			continue
		}
		cur.WriteRune(r)
	}
	terms = append(terms, cur.String())
	for _, t := range terms {
		if t == "" {
			return ir.Affine{}, fmt.Errorf("bad expression %q", s)
		}
		sign := int64(1)
		if t[0] == '-' {
			sign = -1
			t = t[1:]
		}
		if t == "" {
			return ir.Affine{}, fmt.Errorf("dangling sign in %q", s)
		}
		if star := strings.Index(t, "*"); star >= 0 {
			coeff, err := strconv.ParseInt(t[:star], 10, 64)
			if err != nil {
				return ir.Affine{}, fmt.Errorf("bad coefficient in %q", t)
			}
			name := t[star+1:]
			if !isIdent(name) {
				return ir.Affine{}, fmt.Errorf("bad iterator in %q", t)
			}
			out = out.Add(ir.Term(name, sign*coeff))
			continue
		}
		if v, err := strconv.ParseInt(t, 10, 64); err == nil {
			out = out.AddConst(sign * v)
			continue
		}
		if !isIdent(t) {
			return ir.Affine{}, fmt.Errorf("bad term %q", t)
		}
		out = out.Add(ir.Term(t, sign))
	}
	return out, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
