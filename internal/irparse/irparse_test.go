package irparse

import (
	"strings"
	"testing"

	"autotune/internal/ir"
	"autotune/internal/polyhedral"
)

const mmSrc = `
# matrix multiply, IJK order
program mm
array A[64][64] elem 8
array B[64][64] elem 8
array C[64][64] elem 8
for i = 0..64 {
  for j = 0..64 {
    for k = 0..64 {
      C[i][j] = f(C[i][j], A[i][k], B[k][j]) flops 2
    }
  }
}
`

func TestParseMM(t *testing.T) {
	p, err := Parse(mmSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mm" || len(p.Arrays) != 3 || len(p.Root) != 1 {
		t.Fatalf("program = %+v", p)
	}
	loops, stmts := ir.PerfectNest(p.Root[0])
	if len(loops) != 3 || len(stmts) != 1 {
		t.Fatalf("nest = %d loops, %d stmts", len(loops), len(stmts))
	}
	s := stmts[0]
	if s.Flops != 2 || len(s.Writes) != 1 || len(s.Reads) != 3 {
		t.Fatalf("stmt = %+v", s)
	}
	// The parsed nest carries the expected dependence structure.
	deps := polyhedral.Analyze(loops, stmts)
	if !polyhedral.ParallelLoop(deps, 0) || polyhedral.ParallelLoop(deps, 2) {
		t.Fatal("parsed mm has wrong dependence structure")
	}
}

func TestParseAffineExpressions(t *testing.T) {
	src := `
program stencil
array A[32][32] elem 8
array B[32][32] elem 8
for i = 1..31 {
  for j = 1..31 {
    B[i][j] = f(A[i-1][j], A[i+1][j], A[i][2*j-8], A[i][j]) flops 4
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := ir.Stmts(p.Root)[0]
	ix := s.Reads[0].Indices[0] // i-1
	if ix.Coeff("i") != 1 || ix.Const != -1 {
		t.Fatalf("A[i-1] parsed as %v", ix)
	}
	ix = s.Reads[2].Indices[1] // 2*j-8
	if ix.Coeff("j") != 2 || ix.Const != -8 {
		t.Fatalf("A[i][2*j-8] parsed as %v", ix)
	}
}

func TestParseStepAndMultiWrite(t *testing.T) {
	src := `
program multi
array A[16] elem 8
array B[16] elem 8
for i = 0..16 step 2 {
  A[i], B[i] = f() flops 1
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	l := p.Root[0].(*ir.Loop)
	if l.Step != 2 {
		t.Fatalf("step = %d", l.Step)
	}
	s := ir.Stmts(p.Root)[0]
	if len(s.Writes) != 2 || len(s.Reads) != 0 {
		t.Fatalf("stmt = %+v", s)
	}
}

func TestParseTriangularBounds(t *testing.T) {
	src := `
program tri
array A[16][16] elem 8
for i = 0..16 {
  for j = 0..i {
    A[i][j] = f(A[i][j]) flops 1
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inner := p.Root[0].(*ir.Loop).Body[0].(*ir.Loop)
	if inner.Hi.Coeff("i") != 1 {
		t.Fatalf("triangular bound parsed as %v", inner.Hi)
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string]string{
		"missing header":    "array A[4] elem 8",
		"empty name":        "program \nfor i = 0..4 {\nA[i] = f() flops 1\n}",
		"bad array":         "program x\narray A elem 8",
		"bad elem":          "program x\narray A[4] elem zero",
		"bad dim":           "program x\narray A[-1] elem 8",
		"bad for":           "program x\narray A[4] elem 8\nfor i 0..4 {\nA[i] = f()\n}",
		"no dots":           "program x\narray A[4] elem 8\nfor i = 0:4 {\nA[i] = f()\n}",
		"unterminated body": "program x\narray A[4] elem 8\nfor i = 0..4 {\nA[i] = f()",
		"no equals":         "program x\narray A[4] elem 8\nfor i = 0..4 {\nA[i] f()\n}",
		"no f()":            "program x\narray A[4] elem 8\nfor i = 0..4 {\nA[i] = A[i]\n}",
		"bad flops":         "program x\narray A[4] elem 8\nfor i = 0..4 {\nA[i] = f() flops many\n}",
		"bad step":          "program x\narray A[4] elem 8\nfor i = 0..4 step 0 {\nA[i] = f()\n}",
		"undeclared array":  "program x\narray A[4] elem 8\nfor i = 0..4 {\nZ[i] = f()\n}",
		"bad index expr":    "program x\narray A[4] elem 8\nfor i = 0..4 {\nA[i**2] = f()\n}",
		"stray token":       "program x\nbanana",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseRoundTripThroughPrinter(t *testing.T) {
	p, err := Parse(mmSrc)
	if err != nil {
		t.Fatal(err)
	}
	listing := p.String()
	for _, want := range []string{"double A[64][64];", "for (k = 0; k < 64; k++)", "C[i][j]"} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestParseBracesOnOwnLines(t *testing.T) {
	src := "program x\narray A[8] elem 8\nfor i = 0..8\n{\nA[i] = f() flops 1\n}"
	// Header must end with '{' on the same logical line; this style is
	// rejected cleanly rather than crashing.
	if _, err := Parse(src); err == nil {
		t.Skip("brace style accepted (fine)")
	}
}

func TestParseInlineClosingBrace(t *testing.T) {
	src := "program x\narray A[8] elem 8\nfor i = 0..8 {\nA[i] = f() flops 1 }"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Stmts(p.Root)) != 1 {
		t.Fatal("inline closing brace mishandled")
	}
}
