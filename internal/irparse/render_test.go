package irparse

import (
	"strings"
	"testing"

	"autotune/internal/ir"
)

func validRenderProgram() *ir.Program {
	return &ir.Program{
		Name:   "mm",
		Arrays: []ir.Array{{Name: "A", ElemBytes: 8, Dims: []int64{64, 64}}},
		Root: []ir.Node{&ir.Loop{
			Var: "i", Lo: ir.Con(0), Hi: ir.Con(64), Step: 2,
			Body: []ir.Node{&ir.Stmt{
				Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Con(0)}}},
				Flops:  2,
			}},
		}},
	}
}

func TestRenderRoundTrip(t *testing.T) {
	text, err := Render(validRenderProgram())
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("rendered program does not parse: %v\n%s", err, text)
	}
	again, err := Render(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if text != again {
		t.Fatalf("render not stable:\nfirst:\n%s\nsecond:\n%s", text, again)
	}
	if !strings.Contains(text, "step 2") {
		t.Fatalf("step clause lost:\n%s", text)
	}
}

// TestRenderRejections exercises each validation error of the
// renderer: everything outside the text grammar must be reported, not
// silently emitted as unparseable output.
func TestRenderRejections(t *testing.T) {
	stmt := func() *ir.Stmt {
		return &ir.Stmt{
			Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Con(0)}}},
			Flops:  1,
		}
	}
	cases := map[string]func(p *ir.Program){
		"program name": func(p *ir.Program) { p.Name = "bad name" },
		"array name":   func(p *ir.Program) { p.Arrays[0].Name = "A B" },
		"elem bytes":   func(p *ir.Program) { p.Arrays[0].ElemBytes = 0 },
		"no dims":      func(p *ir.Program) { p.Arrays[0].Dims = nil },
		"bad dim":      func(p *ir.Program) { p.Arrays[0].Dims = []int64{-4} },
		"iterator name": func(p *ir.Program) {
			p.Root[0].(*ir.Loop).Var = "1i"
		},
		"non-positive step": func(p *ir.Program) {
			p.Root[0].(*ir.Loop).Step = 0
		},
		"parallel construct": func(p *ir.Program) {
			p.Root[0].(*ir.Loop).Parallel = true
		},
		"cap construct": func(p *ir.Program) {
			p.Root[0].(*ir.Loop).Caps = []ir.Affine{ir.Con(8)}
		},
		"unroll pragma": func(p *ir.Program) {
			p.Root[0].(*ir.Loop).UnrollPragma = 4
		},
		"statement without writes": func(p *ir.Program) {
			p.Root[0].(*ir.Loop).Body = []ir.Node{&ir.Stmt{Flops: 1}}
		},
		"negative flops": func(p *ir.Program) {
			s := stmt()
			s.Flops = -1
			p.Root[0].(*ir.Loop).Body = []ir.Node{s}
		},
		"access without indices": func(p *ir.Program) {
			s := stmt()
			s.Writes[0].Indices = nil
			p.Root[0].(*ir.Loop).Body = []ir.Node{s}
		},
		"access array name": func(p *ir.Program) {
			s := stmt()
			s.Reads = []ir.Access{{Array: "no good", Indices: []ir.Affine{ir.Con(0)}}}
			p.Root[0].(*ir.Loop).Body = []ir.Node{s}
		},
	}
	for name, mutate := range cases {
		p := validRenderProgram()
		mutate(p)
		if _, err := Render(p); err == nil {
			t.Errorf("%s: invalid program rendered without error", name)
		}
	}
}
