package optimizer

import (
	"testing"

	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

func TestSeededPopulation(t *testing.T) {
	space := schafferSpace()
	rng := stats.NewRand(1)
	seeds := []skeleton.Config{
		{100, 0},
		{9999, 5}, // out of bounds: clamped
		{1, 2, 3}, // wrong dimensionality: replaced by a random draw
	}
	cfgs := seededPopulation(space, seeds, 6, rng)
	if len(cfgs) != 6 {
		t.Fatalf("population size = %d", len(cfgs))
	}
	if !cfgs[0].Equal(skeleton.Config{100, 0}) {
		t.Fatalf("seed not placed first: %v", cfgs[0])
	}
	if cfgs[1][0] != 1000 {
		t.Fatalf("out-of-bounds seed not clamped: %v", cfgs[1])
	}
	for i, c := range cfgs {
		if !space.In(c) {
			t.Fatalf("member %d outside space: %v", i, c)
		}
	}
	// More seeds than popSize: truncated, never overflowing.
	many := make([]skeleton.Config, 10)
	for i := range many {
		many[i] = skeleton.Config{int64(i), 0}
	}
	if got := seededPopulation(space, many, 4, rng); len(got) != 4 {
		t.Fatalf("oversized seed list produced %d members", len(got))
	}
}

// TestInitialPopulationSeeding: seeds passed through Options must be
// evaluated in generation 0 by every evolutionary method.
func TestInitialPopulationSeeding(t *testing.T) {
	seed := skeleton.Config{123, 7}
	runs := map[string]func(e *funcEvaluator) error{
		"gde3": func(e *funcEvaluator) error {
			_, err := GDE3(schafferSpace(), e, Options{
				PopSize: 8, Seed: 3, MaxIterations: 2, Stagnation: 1,
				InitialPopulation: []skeleton.Config{seed},
			})
			return err
		},
		"rs-gde3": func(e *funcEvaluator) error {
			_, err := RSGDE3(schafferSpace(), e, Options{
				PopSize: 8, Seed: 3, MaxIterations: 2, Stagnation: 1,
				InitialPopulation: []skeleton.Config{seed},
			})
			return err
		},
		"nsga2": func(e *funcEvaluator) error {
			_, err := NSGA2(schafferSpace(), e, NSGA2Options{
				PopSize: 8, Seed: 3, MaxGenerations: 2, Stagnation: 1,
				InitialPopulation: []skeleton.Config{seed},
			})
			return err
		},
	}
	for name, run := range runs {
		e := newFuncEvaluator(schaffer)
		if err := run(e); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		e.mu.Lock()
		_, evaluated := e.seen[seed.Key()]
		e.mu.Unlock()
		if !evaluated {
			t.Fatalf("%s: seed configuration never evaluated", name)
		}
	}
}
