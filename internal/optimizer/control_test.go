package optimizer_test

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autotune/internal/objective"
	"autotune/internal/optimizer"
	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

// memCheckpointer collects every snapshot, JSON round-tripping each one
// so the test also proves the snapshots survive serialization — the
// path the file-based checkpoint journal takes.
type memCheckpointer struct {
	mu    sync.Mutex
	snaps []*optimizer.Snapshot
}

func (m *memCheckpointer) Save(s *optimizer.Snapshot) error {
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	var round optimizer.Snapshot
	if err := json.Unmarshal(data, &round); err != nil {
		return err
	}
	m.mu.Lock()
	m.snaps = append(m.snaps, &round)
	m.mu.Unlock()
	return nil
}

// foldedAt rebuilds the resumable snapshot at index i the way the
// journal loader does: the latest state with the evaluation traces of
// every record up to it accumulated for cache priming.
func (m *memCheckpointer) foldedAt(i int) *optimizer.Snapshot {
	s := *m.snaps[i]
	var evals []optimizer.EvalState
	for j := 0; j <= i; j++ {
		evals = append(evals, m.snaps[j].Evals...)
	}
	s.Evals = evals
	return &s
}

// controlledMethod runs one search method under a Control.
type controlledMethod func(eval objective.Evaluator, seed int64, ctrl optimizer.Control) (*optimizer.Result, error)

func controlledMethods(space skeleton.Space) map[string]controlledMethod {
	gopt := func(seed int64) optimizer.Options {
		return optimizer.Options{PopSize: 12, MaxIterations: 8, Seed: seed}
	}
	nopt := func(seed int64) optimizer.NSGA2Options {
		return optimizer.NSGA2Options{PopSize: 12, MaxGenerations: 8, Seed: seed}
	}
	iopt := optimizer.IslandOptions{Islands: 3, MigrationInterval: 2}
	return map[string]controlledMethod{
		"rs-gde3": func(e objective.Evaluator, seed int64, ctrl optimizer.Control) (*optimizer.Result, error) {
			return optimizer.RSGDE3Controlled(space, e, gopt(seed), ctrl)
		},
		"gde3": func(e objective.Evaluator, seed int64, ctrl optimizer.Control) (*optimizer.Result, error) {
			return optimizer.GDE3Controlled(space, e, gopt(seed), ctrl)
		},
		"nsga2": func(e objective.Evaluator, seed int64, ctrl optimizer.Control) (*optimizer.Result, error) {
			return optimizer.NSGA2Controlled(space, e, nopt(seed), ctrl)
		},
		"rs-gde3-islands": func(e objective.Evaluator, seed int64, ctrl optimizer.Control) (*optimizer.Result, error) {
			return optimizer.RSGDE3IslandsControlled(space, e, gopt(seed), iopt, ctrl)
		},
		"gde3-islands": func(e objective.Evaluator, seed int64, ctrl optimizer.Control) (*optimizer.Result, error) {
			return optimizer.GDE3IslandsControlled(space, e, gopt(seed), iopt, ctrl)
		},
		"nsga2-islands": func(e objective.Evaluator, seed int64, ctrl optimizer.Control) (*optimizer.Result, error) {
			return optimizer.NSGA2IslandsControlled(space, e, nopt(seed), iopt, ctrl)
		},
	}
}

// TestResumeEveryGenerationByteIdentical is the crash-anywhere
// guarantee: for every method and seed, a full checkpointed run is
// "interrupted" at every single generation boundary and resumed from
// that snapshot with a fresh evaluator; the resumed run must reproduce
// the uninterrupted run's front byte for byte and its E exactly.
func TestResumeEveryGenerationByteIdentical(t *testing.T) {
	space := islandSpace()
	for name, run := range controlledMethods(space) {
		for _, seed := range []int64{1, 2} {
			cp := &memCheckpointer{}
			full, err := run(newDetEval(), seed, optimizer.Control{Checkpointer: cp})
			if err != nil {
				t.Fatalf("%s seed %d: full run: %v", name, seed, err)
			}
			if len(cp.snaps) == 0 {
				t.Fatalf("%s seed %d: no snapshots saved", name, seed)
			}
			want := frontFingerprint(full.Front)
			for i := range cp.snaps {
				snap := cp.foldedAt(i)
				res, err := run(newDetEval(), seed, optimizer.Control{Resume: snap})
				if err != nil {
					t.Fatalf("%s seed %d: resume at gen %d: %v", name, seed, snap.Generation, err)
				}
				if got := frontFingerprint(res.Front); got != want {
					t.Errorf("%s seed %d: resume at gen %d: front diverged\nwant %s\ngot  %s",
						name, seed, snap.Generation, want, got)
				}
				if res.Evaluations != full.Evaluations {
					t.Errorf("%s seed %d: resume at gen %d: E = %d, uninterrupted run had %d",
						name, seed, snap.Generation, res.Evaluations, full.Evaluations)
				}
				if res.Iterations != full.Iterations {
					t.Errorf("%s seed %d: resume at gen %d: iterations = %d, want %d",
						name, seed, snap.Generation, res.Iterations, full.Iterations)
				}
			}
		}
	}
}

// TestResumeContinuesCheckpointing verifies a resumed run keeps
// checkpointing: resume from the first snapshot, and the continuation
// must save the remaining generations.
func TestResumeContinuesCheckpointing(t *testing.T) {
	space := islandSpace()
	run := controlledMethods(space)["rs-gde3"]
	cp := &memCheckpointer{}
	full, err := run(newDetEval(), 1, optimizer.Control{Checkpointer: cp})
	if err != nil {
		t.Fatal(err)
	}
	cp2 := &memCheckpointer{}
	res, err := run(newDetEval(), 1, optimizer.Control{Checkpointer: cp2, Resume: cp.foldedAt(0)})
	if err != nil {
		t.Fatal(err)
	}
	if frontFingerprint(res.Front) != frontFingerprint(full.Front) {
		t.Fatal("resumed front diverged")
	}
	if len(cp2.snaps) == 0 {
		t.Fatal("resumed run saved no snapshots")
	}
	last := cp2.snaps[len(cp2.snaps)-1]
	if last.Generation != full.Iterations {
		t.Fatalf("last resumed snapshot at gen %d, want %d", last.Generation, full.Iterations)
	}
	if last.Evaluations != full.Evaluations {
		t.Fatalf("last resumed snapshot E = %d, want %d", last.Evaluations, full.Evaluations)
	}
}

// dominatesAll reports whether a dominates b (all objectives <=, one <).
func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

func assertMutuallyNonDominated(t *testing.T, front []pareto.Point) {
	t.Helper()
	for i := range front {
		for j := range front {
			if i != j && dominates(front[i].Objectives, front[j].Objectives) {
				t.Fatalf("front point %d dominates point %d: partial front is not a valid Pareto set", i, j)
			}
		}
	}
}

// TestCancelReturnsPartialFront cancels the context after a fixed
// number of completed evaluations and requires a graceful, valid
// outcome: no error, Partial set, a mutually non-dominated front, and
// an Evaluations count matching the evaluator's.
func TestCancelReturnsPartialFront(t *testing.T) {
	space := islandSpace()
	for name, run := range controlledMethods(space) {
		eval := newDetEval()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var n int32
		remove := eval.AddObserver(func(skeleton.Config, []float64) {
			if atomic.AddInt32(&n, 1) == 25 {
				cancel()
			}
		})
		res, err := run(eval, 1, optimizer.Control{Ctx: ctx})
		remove()
		if err != nil {
			t.Fatalf("%s: cancelled run returned error: %v", name, err)
		}
		if !res.Partial {
			// The search may legitimately finish before evaluation 25
			// fires the cancel; only a cancelled run must be partial.
			if ctx.Err() != nil && res.Iterations < 8 {
				t.Fatalf("%s: interrupted run did not set Partial", name)
			}
			continue
		}
		if len(res.Front) == 0 {
			t.Fatalf("%s: partial result has an empty front despite completed evaluations", name)
		}
		assertMutuallyNonDominated(t, res.Front)
		if res.Evaluations != eval.Evaluations() {
			t.Fatalf("%s: partial E = %d, evaluator counted %d", name, res.Evaluations, eval.Evaluations())
		}
	}
}

// TestCancelledBeforeStart runs with an already-done context: the
// search must come back immediately, partial, with no error.
func TestCancelledBeforeStart(t *testing.T) {
	space := islandSpace()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := optimizer.RSGDE3Controlled(space, newDetEval(),
		optimizer.Options{PopSize: 8, MaxIterations: 4, Seed: 1}, optimizer.Control{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("pre-cancelled run did not report Partial")
	}
	if len(res.Front) != 0 {
		t.Fatalf("pre-cancelled run evaluated %d front points", len(res.Front))
	}
}

// TestConcurrentCancelDuringMigration exercises cancellation racing
// island steps and ring migrations (run under -race): islands migrate
// every generation while another goroutine cancels mid-flight.
func TestConcurrentCancelDuringMigration(t *testing.T) {
	space := islandSpace()
	var delayed int32
	fn := func(cfg skeleton.Config) []float64 {
		if atomic.AddInt32(&delayed, 1) > 36 { // let the initial populations through fast
			time.Sleep(200 * time.Microsecond)
		}
		return deterministicFn(cfg)
	}
	for trial := 0; trial < 4; trial++ {
		eval := objective.NewCachingEvaluator([]string{"f1", "f2"}, 8, fn)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(2+trial) * time.Millisecond)
			cancel()
		}()
		res, err := optimizer.RSGDE3IslandsControlled(space, eval,
			optimizer.Options{PopSize: 12, MaxIterations: 50, Seed: int64(trial)},
			optimizer.IslandOptions{Islands: 4, MigrationInterval: 1},
			optimizer.Control{Ctx: ctx})
		cancel()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Partial {
			assertMutuallyNonDominated(t, res.Front)
		}
		atomic.StoreInt32(&delayed, 0)
	}
}

// TestResumeFingerprintMismatch resumes a snapshot into a differently
// seeded search and expects a refusal.
func TestResumeFingerprintMismatch(t *testing.T) {
	space := islandSpace()
	cp := &memCheckpointer{}
	if _, err := optimizer.RSGDE3Controlled(space, newDetEval(),
		optimizer.Options{PopSize: 8, MaxIterations: 4, Seed: 1},
		optimizer.Control{Checkpointer: cp}); err != nil {
		t.Fatal(err)
	}
	_, err := optimizer.RSGDE3Controlled(space, newDetEval(),
		optimizer.Options{PopSize: 8, MaxIterations: 4, Seed: 2},
		optimizer.Control{Resume: cp.foldedAt(0)})
	if err == nil {
		t.Fatal("mismatched-seed resume was accepted")
	}
}

// TestBaselinesRejectResume: the one-shot baselines keep no generation
// state and must refuse a resume snapshot.
func TestBaselinesRejectResume(t *testing.T) {
	space := islandSpace()
	snap := &optimizer.Snapshot{}
	if _, err := optimizer.RandomControlled(space, newDetEval(), 100, 1,
		optimizer.Control{Resume: snap}); err == nil {
		t.Fatal("random search accepted a resume snapshot")
	}
	grid := optimizer.Grid{{1}, {1}, {1}}
	if _, err := optimizer.BruteForceControlled(space, newDetEval(), grid,
		optimizer.Control{Resume: snap}); err == nil {
		t.Fatal("brute force accepted a resume snapshot")
	}
}

// TestRandomControlledCancel: the random baseline honours cancellation
// at chunk granularity and reports a partial non-dominated subset.
func TestRandomControlledCancel(t *testing.T) {
	space := islandSpace()
	eval := newDetEval()
	ctx, cancel := context.WithCancel(context.Background())
	var n int32
	remove := eval.AddObserver(func(skeleton.Config, []float64) {
		if atomic.AddInt32(&n, 1) == 70 {
			cancel()
		}
	})
	defer remove()
	res, err := optimizer.RandomControlled(space, eval, 5000, 1, optimizer.Control{Ctx: ctx})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("cancelled random sweep did not report Partial")
	}
	if len(res.Front) == 0 {
		t.Fatal("cancelled random sweep returned an empty front")
	}
	assertMutuallyNonDominated(t, res.Front)
}
