// Island-model parallel drivers for the evolutionary optimizers.
//
// W worker islands evolve independently seeded sub-populations
// concurrently (island i derives its RNG from seed+i) and exchange
// elite individuals every M generations over a synchronous
// unidirectional migration ring (island i donates to island (i+1)%W).
// All islands share one evaluator — typically an
// objective.CachingEvaluator — so a configuration proposed by several
// islands is evaluated once process-wide and the E metric still counts
// distinct successful evaluations globally, keeping search quality per
// evaluation directly comparable to the serial path.
//
// Determinism: island evolution depends only on the island's own RNG,
// its population and the synchronously exchanged migrants; evaluation
// results are deterministic per configuration (the shared cache can
// only change *who* computes a value, never the value). Generations
// run in lockstep with a barrier before every migration, and the final
// fronts are merged in island order and sorted canonically — so a
// fixed (seed, W, M) always yields the same front, bit for bit,
// regardless of scheduling or GOMAXPROCS.
package optimizer

import (
	"fmt"
	"sort"
	"sync"

	"autotune/internal/objective"
	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

// IslandOptions configures the island-model parallel drivers. Zero
// values select the defaults.
type IslandOptions struct {
	// Islands is the worker-island count W (default 4). 1 degrades to
	// the serial algorithm.
	Islands int
	// MigrationInterval is the number of generations M between
	// synchronous elite migrations (default 5).
	MigrationInterval int
	// Migrants is the number of elite individuals each island donates
	// to its ring successor per migration (default 2). Clamped to half
	// the population size so one migration wave can never replace an
	// entire island.
	Migrants int
}

// withDefaults fills the zero fields and clamps Migrants against the
// effective population size: replaceWorst never displaces more than
// half an island's population, so a larger migrant count would be
// silently ignored there while still poisoning fingerprints and
// snapshot compatibility. popSize <= 0 skips the clamp (unknown
// population, e.g. option-only normalization in tests).
func (o IslandOptions) withDefaults(popSize int) IslandOptions {
	if o.Islands == 0 {
		o.Islands = 4
	}
	if o.MigrationInterval == 0 {
		o.MigrationInterval = 5
	}
	if o.Migrants == 0 {
		o.Migrants = 2
	}
	if popSize > 0 {
		limit := popSize / 2
		if limit < 1 {
			limit = 1
		}
		if o.Migrants > limit {
			o.Migrants = limit
		}
	}
	return o
}

func (o IslandOptions) validate() error {
	if o.Islands < 1 {
		return fmt.Errorf("optimizer: island count %d < 1", o.Islands)
	}
	if o.MigrationInterval < 1 {
		return fmt.Errorf("optimizer: migration interval %d < 1", o.MigrationInterval)
	}
	if o.Migrants < 1 {
		return fmt.Errorf("optimizer: migrant count %d < 1", o.Migrants)
	}
	return nil
}

// islandEvolver is the per-island surface the driver needs; gdeIsland
// and nsga2Island both implement it.
type islandEvolver interface {
	// step evolves one generation (trials, shared evaluation, archive
	// update, environmental selection).
	step()
	// done reports whether the island's stagnation rule has fired.
	done() bool
	// population exposes the current individuals for elite selection.
	population() []individual
	// inject replaces the island's worst members with migrants.
	inject(migrants []individual)
	// points returns the island's archived front.
	points() []pareto.Point
	// snapshot serializes the island's complete state for
	// checkpointing.
	snapshot() IslandState
}

// RSGDE3Islands runs W parallel RS-GDE3 islands over a shared
// evaluator and merges their fronts into one Pareto archive.
// Result.Iterations reports lockstep generations (each active island
// stepped once per generation); Result.Evaluations is the global
// distinct-successful-evaluation count.
func RSGDE3Islands(space skeleton.Space, eval objective.Evaluator, opt Options, iopt IslandOptions) (*Result, error) {
	return RSGDE3IslandsControlled(space, eval, opt, iopt, Control{})
}

// GDE3Islands is RSGDE3Islands with the rough-set reduction disabled.
func GDE3Islands(space skeleton.Space, eval objective.Evaluator, opt Options, iopt IslandOptions) (*Result, error) {
	opt.DisableRoughSet = true
	return RSGDE3Islands(space, eval, opt, iopt)
}

// NSGA2Islands runs W parallel NSGA-II islands over a shared evaluator
// and merges their fronts into one Pareto archive.
func NSGA2Islands(space skeleton.Space, eval objective.Evaluator, opt NSGA2Options, iopt IslandOptions) (*Result, error) {
	return NSGA2IslandsControlled(space, eval, opt, iopt, Control{})
}

// spawn runs fn(0..n-1) concurrently and waits for all.
func spawn(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// migrateRing synchronously copies each island's elite individuals to
// its ring successor, replacing the successor's worst members. Elites
// are selected before any injection so migration order cannot leak
// freshly injected migrants onward, and both selection and replacement
// are deterministic (rank, then crowding, then index).
func migrateRing(islands []islandEvolver, migrants int) {
	w := len(islands)
	elites := make([][]individual, w)
	for i, isl := range islands {
		elites[i] = selectElites(isl.population(), migrants)
	}
	for i, isl := range islands {
		donor := elites[(i-1+w)%w]
		if len(donor) > 0 {
			isl.inject(donor)
		}
	}
}

// orderBestToWorst returns population indices ordered by
// non-domination rank (ascending), crowding distance within the rank
// (descending), and original index as the deterministic tie-break.
func orderBestToWorst(pop []individual) []int {
	ranks := nonDominatedSort(pop)
	out := make([]int, 0, len(pop))
	for _, rank := range ranks {
		dist := crowdingDistance(pop, rank)
		order := make([]int, len(rank))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := dist[order[a]], dist[order[b]]
			if da != db {
				return da > db
			}
			return rank[order[a]] < rank[order[b]]
		})
		for _, oi := range order {
			out = append(out, rank[oi])
		}
	}
	return out
}

// selectElites clones the k best individuals of a population that have
// successful evaluations.
func selectElites(pop []individual, k int) []individual {
	if k > len(pop) {
		k = len(pop)
	}
	out := make([]individual, 0, k)
	for _, idx := range orderBestToWorst(pop) {
		if len(out) == k {
			break
		}
		ind := pop[idx]
		if ind.objs == nil {
			continue
		}
		out = append(out, individual{
			cfg:  ind.cfg.Clone(),
			objs: append([]float64(nil), ind.objs...),
		})
	}
	return out
}

// replaceWorst overwrites the worst members of pop with the migrants,
// never displacing more than half the population.
func replaceWorst(pop []individual, migrants []individual) {
	limit := len(pop) / 2
	if limit < 1 {
		limit = 1
	}
	if len(migrants) > limit {
		migrants = migrants[:limit]
	}
	ord := orderBestToWorst(pop)
	for j, mig := range migrants {
		pop[ord[len(ord)-1-j]] = mig
	}
}

// mergeIslands folds every island's front into one global Pareto
// archive (in island order) and sorts the merged front canonically so
// a fixed (seed, W, M) yields a byte-identical result across runs.
func mergeIslands(islands []islandEvolver, eval objective.Evaluator, gens int) *Result {
	global := pareto.NewArchive()
	for _, isl := range islands {
		for _, p := range isl.points() {
			global.Add(p)
		}
	}
	front := global.Points()
	sortFront(front)
	return &Result{
		Front:       front,
		Evaluations: eval.Evaluations(),
		Iterations:  gens,
	}
}

// sortFront orders points lexicographically by objective vector, with
// the configuration key as the final tie-break — a canonical order
// independent of archive insertion history.
func sortFront(front []pareto.Point) {
	sort.Slice(front, func(a, b int) bool {
		oa, ob := front[a].Objectives, front[b].Objectives
		for i := 0; i < len(oa) && i < len(ob); i++ {
			if oa[i] != ob[i] {
				return oa[i] < ob[i]
			}
		}
		if len(oa) != len(ob) {
			return len(oa) < len(ob)
		}
		ca, okA := front[a].Payload.(skeleton.Config)
		cb, okB := front[b].Payload.(skeleton.Config)
		if okA && okB {
			return ca.Key() < cb.Key()
		}
		return false
	})
}
