// Package optimizer implements the static multi-objective optimizers
// of the framework: the paper's core contribution RS-GDE3 (Generalized
// Differential Evolution 3 combined with Rough-Set-based search-space
// reduction, §III-B), plain GDE3 (the rough-set mechanism disabled, for
// ablation), and the two baselines of the evaluation — exhaustive
// brute-force grid search and random search.
//
// All optimizers consume a skeleton.Space describing the tunable
// parameters and an objective.Evaluator computing the (minimized)
// objective vectors, and produce a Pareto set of configurations
// together with the evaluation count E reported in Table VI.
package optimizer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"autotune/internal/objective"
	"autotune/internal/pareto"
	"autotune/internal/roughset"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

// Options configures the evolutionary optimizers. Zero values select
// the paper's defaults.
type Options struct {
	// PopSize is the population size (paper: 30).
	PopSize int
	// CR is the crossover rate of Algorithm 1 (paper: 0.5).
	CR float64
	// F is the differential weight of Algorithm 1 (paper: 0.5).
	F float64
	// Stagnation is the number of consecutive non-improving
	// iterations after which the search stops (paper: 3).
	Stagnation int
	// MaxIterations is a safety cap (default 200).
	MaxIterations int
	// Seed drives all stochastic choices.
	Seed int64
	// DisableRoughSet turns RS-GDE3 into plain GDE3 (the search box
	// stays the full space). Used for the ablation study.
	DisableRoughSet bool
	// InitialPopulation holds configurations injected ahead of the
	// random members of the initial population (warm start from the
	// tuning database). Entries must lie within the space; surplus
	// entries beyond PopSize are dropped. Island runs inject the same
	// configurations into every island.
	InitialPopulation []skeleton.Config
}

func (o Options) withDefaults() Options {
	if o.PopSize == 0 {
		o.PopSize = 30
	}
	if o.CR == 0 {
		o.CR = 0.5
	}
	if o.F == 0 {
		o.F = 0.5
	}
	if o.Stagnation == 0 {
		o.Stagnation = 3
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
	return o
}

// Result is the outcome of one optimizer run.
type Result struct {
	// Front is the final Pareto set; each point's Payload is its
	// skeleton.Config.
	Front []pareto.Point
	// Evaluations is the number of distinct configurations evaluated
	// (the E metric of Table VI).
	Evaluations int
	// Iterations is the number of optimizer iterations performed
	// (0 for the one-shot baselines).
	Iterations int
	// AllPoints holds every successfully evaluated point when the
	// optimizer retains them (brute force does; the evolutionary
	// optimizers do not, to bound memory).
	AllPoints []pareto.Point
	// Partial reports that the search was cut short by a cancelled or
	// expired context (see Control): Front is the best-so-far valid
	// Pareto set and Evaluations is accurate, but the stopping rule
	// never fired.
	Partial bool
}

// Configs extracts the configurations of the front.
func (r *Result) Configs() []skeleton.Config {
	out := make([]skeleton.Config, len(r.Front))
	for i, p := range r.Front {
		out[i] = p.Payload.(skeleton.Config)
	}
	return out
}

type individual struct {
	cfg  skeleton.Config
	objs []float64 // nil = failed evaluation
}

// gdeIsland is one self-contained RS-GDE3 search instance: its own
// population, RNG, archive and rough-set box. The serial RSGDE3 drives
// a single instance; the island-model driver evolves several
// concurrently and migrates elites between them.
type gdeIsland struct {
	space    skeleton.Space
	eval     objective.Evaluator
	opt      Options
	rng      *stats.CountedRand
	pop      []individual
	archive  *pareto.Archive
	box      skeleton.Box
	stagnant int
}

// newGDEIsland seeds and evaluates the initial population. opt must
// already carry defaults.
func newGDEIsland(space skeleton.Space, eval objective.Evaluator, opt Options, seed int64) *gdeIsland {
	g := &gdeIsland{
		space:   space,
		eval:    eval,
		opt:     opt,
		rng:     stats.NewCountedRand(seed),
		archive: pareto.NewArchive(),
		box:     space.FullBox(),
	}
	g.pop = make([]individual, opt.PopSize)
	cfgs := seededPopulation(space, opt.InitialPopulation, opt.PopSize, g.rng.Rand)
	objs := eval.Evaluate(cfgs)
	for i := range g.pop {
		g.pop[i] = individual{cfg: cfgs[i], objs: objs[i]}
		if objs[i] != nil {
			g.archive.Add(pareto.Point{Payload: cfgs[i], Objectives: objs[i]})
		}
	}
	return g
}

// restoreGDEIsland rebuilds an island from its checkpointed state: the
// population, archive and stagnation counter come from the snapshot,
// and the RNG is the original seed fast-forwarded to the checkpointed
// draw count — the island continues exactly where it stopped.
func restoreGDEIsland(space skeleton.Space, eval objective.Evaluator, opt Options, seed int64, st IslandState) *gdeIsland {
	g := &gdeIsland{
		space:    space,
		eval:     eval,
		opt:      opt,
		rng:      stats.NewCountedRand(seed),
		archive:  restoreArchive(st.Archive),
		box:      space.FullBox(),
		stagnant: st.Stagnant,
	}
	g.rng.Skip(st.Draws)
	g.pop = make([]individual, len(st.Pop))
	for i, m := range st.Pop {
		g.pop[i] = restoreMember(m)
	}
	return g
}

// seededPopulation builds an initial population: warm-start seeds
// first (cloned, truncated to popSize), uniform random draws for the
// rest. Seeds outside the space are clamped rather than rejected, so a
// front stored for a slightly different space still contributes.
func seededPopulation(space skeleton.Space, seeds []skeleton.Config, popSize int, rng *rand.Rand) []skeleton.Config {
	cfgs := make([]skeleton.Config, popSize)
	for i := range cfgs {
		if i < len(seeds) && len(seeds[i]) == space.Dim() {
			cfgs[i] = space.Clip(seeds[i])
		} else {
			cfgs[i] = space.Random(rng)
		}
	}
	return cfgs
}

// done reports whether the stagnation stopping rule has fired.
func (g *gdeIsland) done() bool { return g.stagnant >= g.opt.Stagnation }

// step runs one RS-GDE3 generation: recompute the rough-set box,
// generate and evaluate one trial per member (Algorithm 1), update the
// archive and apply the GDE3 replacement rule.
func (g *gdeIsland) step() {
	// Rough-set reduction needs a populated non-dominated region to
	// compute meaningful walls: with very few non-dominated points
	// the box degenerates and every trial collapses onto a handful
	// of (cached) configurations. Keep the full space in that case,
	// and re-expand while the search stagnates so it can escape a
	// prematurely narrowed region — the "gradual steering" the
	// paper describes.
	if !g.opt.DisableRoughSet {
		nonDom, dom := splitPop(g.pop)
		if len(nonDom) >= 3 && g.stagnant == 0 {
			g.box = roughset.Reduce(g.space, nonDom, dom)
		} else {
			g.box = g.space.FullBox()
		}
	}
	// Generate one trial per population member (Algorithm 1).
	trials := make([]skeleton.Config, len(g.pop))
	for i := range g.pop {
		trials[i] = mutate(g.pop[i].cfg, g.pop, i, g.box, g.opt, g.rng)
	}
	trialObjs := g.eval.Evaluate(trials)
	improved := false
	for i := range trials {
		if trialObjs[i] == nil {
			continue
		}
		if g.archive.Add(pareto.Point{Payload: trials[i], Objectives: trialObjs[i]}) {
			improved = true
		}
	}
	g.pop = gde3Select(g.pop, trials, trialObjs, g.opt.PopSize)
	if improved {
		g.stagnant = 0
	} else {
		g.stagnant++
	}
}

// population exposes the current individuals for migration.
func (g *gdeIsland) population() []individual { return g.pop }

// inject replaces the island's worst members with the given migrants.
func (g *gdeIsland) inject(migrants []individual) { replaceWorst(g.pop, migrants) }

// points returns the island's archived front.
func (g *gdeIsland) points() []pareto.Point { return g.archive.Points() }

// snapshot serializes the island's complete state for checkpointing.
func (g *gdeIsland) snapshot() IslandState {
	return snapshotState(g.pop, g.archive, g.stagnant, g.rng.Draws())
}

// RSGDE3 runs the paper's search: differential evolution over the
// (gradually reduced) search box, stopping after Options.Stagnation
// consecutive iterations without archive improvement.
func RSGDE3(space skeleton.Space, eval objective.Evaluator, opt Options) (*Result, error) {
	return RSGDE3Controlled(space, eval, opt, Control{})
}

// GDE3 is RS-GDE3 with the rough-set reduction disabled.
func GDE3(space skeleton.Space, eval objective.Evaluator, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	opt.DisableRoughSet = true
	return RSGDE3(space, eval, opt)
}

// mutate implements Algorithm 1: pick three distinct other members
// b, c, d; per component, with probability CR (or forcedly at one
// random index) take b + F*(c-d), otherwise keep a's value; then map
// the real vector to the closest configuration within the current box.
func mutate(a skeleton.Config, pop []individual, self int, box skeleton.Box, opt Options, rng randInterface) skeleton.Config {
	idx := pickDistinct(rng, len(pop), self, 3)
	b, c, d := pop[idx[0]].cfg, pop[idx[1]].cfg, pop[idx[2]].cfg
	dim := len(a)
	r := make([]float64, dim)
	forced := rng.Intn(dim)
	for i := 0; i < dim; i++ {
		if rng.Float64() < opt.CR || i == forced {
			r[i] = float64(b[i]) + opt.F*float64(c[i]-d[i])
		} else {
			r[i] = float64(a[i])
		}
	}
	return box.ClosestTo(r)
}

// randInterface is the subset of *rand.Rand the optimizer uses; a named
// interface keeps mutate testable with deterministic sequences.
type randInterface interface {
	Float64() float64
	Intn(n int) int
}

// pickDistinct draws k distinct indices from [0,n) avoiding self.
// Algorithm 1 requires b, c, d to differ from a, so self is excluded
// whenever another member exists (n > 1); only a population of one has
// no choice but to return self.
func pickDistinct(rng randInterface, n, self, k int) []int {
	out := make([]int, 0, k)
	if n <= k {
		// Tiny populations: allow repeats rather than spinning, but
		// still never hand back self.
		for len(out) < k {
			x := rng.Intn(n)
			if x == self && n > 1 {
				continue
			}
			out = append(out, x)
		}
		return out
	}
	used := map[int]bool{self: true}
	for len(out) < k {
		x := rng.Intn(n)
		if !used[x] {
			used[x] = true
			out = append(out, x)
		}
	}
	return out
}

// gde3Select applies the GDE3 replacement rule: a trial dominating its
// parent replaces it; a dominated trial is discarded; mutually
// non-dominated pairs keep both, and the grown population is truncated
// back to popSize by non-dominated sorting with crowding distance.
func gde3Select(pop []individual, trials []skeleton.Config, trialObjs [][]float64, popSize int) []individual {
	next := make([]individual, 0, 2*len(pop))
	for i := range pop {
		parent := pop[i]
		trial := individual{cfg: trials[i], objs: trialObjs[i]}
		switch {
		case trial.objs == nil:
			next = append(next, parent)
		case parent.objs == nil:
			next = append(next, trial)
		case pareto.WeaklyDominates(trial.objs, parent.objs):
			next = append(next, trial)
		case pareto.Dominates(parent.objs, trial.objs):
			next = append(next, parent)
		default:
			next = append(next, parent, trial)
		}
	}
	if len(next) <= popSize {
		return next
	}
	return truncate(next, popSize)
}

// truncate keeps popSize individuals preferring lower non-domination
// rank and, within the splitting rank, higher crowding distance.
func truncate(pop []individual, popSize int) []individual {
	ranks := nonDominatedSort(pop)
	out := make([]individual, 0, popSize)
	for _, rank := range ranks {
		if len(out)+len(rank) <= popSize {
			for _, i := range rank {
				out = append(out, pop[i])
			}
			continue
		}
		remaining := popSize - len(out)
		if remaining <= 0 {
			break
		}
		dist := crowdingDistance(pop, rank)
		order := make([]int, len(rank))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return dist[order[a]] > dist[order[b]] })
		for _, oi := range order[:remaining] {
			out = append(out, pop[rank[oi]])
		}
		break
	}
	return out
}

// nonDominatedSort partitions population indices into fronts: rank 0 is
// non-dominated, rank 1 is non-dominated once rank 0 is removed, etc.
// Failed individuals (nil objectives) form the final rank.
func nonDominatedSort(pop []individual) [][]int {
	var failed []int
	alive := make([]int, 0, len(pop))
	for i := range pop {
		if pop[i].objs == nil {
			failed = append(failed, i)
		} else {
			alive = append(alive, i)
		}
	}
	var ranks [][]int
	remaining := alive
	for len(remaining) > 0 {
		var front, rest []int
		for _, i := range remaining {
			dominated := false
			for _, j := range remaining {
				if i != j && pareto.Dominates(pop[j].objs, pop[i].objs) {
					dominated = true
					break
				}
			}
			if dominated {
				rest = append(rest, i)
			} else {
				front = append(front, i)
			}
		}
		if len(front) == 0 {
			// All mutually "dominated" cannot happen with a strict
			// dominance relation, but guard against infinite loops.
			front = remaining
			rest = nil
		}
		ranks = append(ranks, front)
		remaining = rest
	}
	if len(failed) > 0 {
		ranks = append(ranks, failed)
	}
	return ranks
}

// crowdingDistance computes the NSGA-II crowding distance for the
// population members indexed by front.
func crowdingDistance(pop []individual, front []int) []float64 {
	n := len(front)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	m := len(pop[front[0]].objs)
	order := make([]int, n)
	for obj := 0; obj < m; obj++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return pop[front[order[a]]].objs[obj] < pop[front[order[b]]].objs[obj]
		})
		lo := pop[front[order[0]]].objs[obj]
		hi := pop[front[order[n-1]]].objs[obj]
		dist[order[0]] = math.Inf(1)
		dist[order[n-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for k := 1; k < n-1; k++ {
			dist[order[k]] += (pop[front[order[k+1]]].objs[obj] - pop[front[order[k-1]]].objs[obj]) / (hi - lo)
		}
	}
	return dist
}

func splitPop(pop []individual) (nonDom, dom []skeleton.Config) {
	cfgs := make([]skeleton.Config, len(pop))
	objs := make([][]float64, len(pop))
	for i := range pop {
		cfgs[i] = pop[i].cfg
		objs[i] = pop[i].objs
	}
	return roughset.Split(cfgs, objs, pareto.Dominates)
}

// Random implements the paper's random-search baseline: draw `budget`
// random configurations, evaluate them all and return the non-dominated
// subset.
func Random(space skeleton.Space, eval objective.Evaluator, budget int, seed int64) (*Result, error) {
	return RandomControlled(space, eval, budget, seed, Control{})
}

// Grid describes an explicit brute-force sampling grid: one value list
// per space dimension.
type Grid [][]int64

// RegularGrid builds a grid with `points` evenly spaced values per
// dimension (always including both bounds when points >= 2).
func RegularGrid(space skeleton.Space, points []int) (Grid, error) {
	if len(points) != space.Dim() {
		return nil, fmt.Errorf("optimizer: grid wants %d dimension sizes, got %d", space.Dim(), len(points))
	}
	g := make(Grid, space.Dim())
	for d, p := range space.Params {
		k := points[d]
		if k < 1 {
			return nil, fmt.Errorf("optimizer: dimension %s needs >= 1 grid point", p.Name)
		}
		span := p.Max - p.Min
		if int64(k) > span+1 {
			k = int(span + 1)
		}
		vals := make([]int64, 0, k)
		if k == 1 {
			vals = append(vals, p.Min)
		} else {
			for i := 0; i < k; i++ {
				v := p.Min + int64(math.Round(float64(i)*float64(span)/float64(k-1)))
				vals = append(vals, v)
			}
		}
		// Deduplicate after rounding.
		uniq := vals[:1]
		for _, v := range vals[1:] {
			if v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		g[d] = uniq
	}
	return g, nil
}

// Size returns the number of grid configurations.
func (g Grid) Size() int {
	total := 1
	for _, vals := range g {
		total *= len(vals)
	}
	return total
}

// configs enumerates every configuration of the grid in lexicographic
// order.
func (g Grid) configs(space skeleton.Space) []skeleton.Config {
	var cfgs []skeleton.Config
	cur := make(skeleton.Config, space.Dim())
	var rec func(d int)
	rec = func(d int) {
		if d == space.Dim() {
			cfgs = append(cfgs, cur.Clone())
			return
		}
		for _, v := range g[d] {
			cur[d] = v
			rec(d + 1)
		}
	}
	rec(0)
	return cfgs
}

// BruteForce exhaustively evaluates every configuration of the grid and
// returns the Pareto front plus all evaluated points (consumed by the
// Table II / Fig. 8 analyses).
func BruteForce(space skeleton.Space, eval objective.Evaluator, grid Grid) (*Result, error) {
	return BruteForceControlled(space, eval, grid, Control{})
}
