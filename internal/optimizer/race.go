// Racing meta-optimizer: run several registered strategies
// concurrently over one shared evaluation cache, score each strategy
// every Interval generations on hypervolume per evaluation against a
// shared reference point, and eliminate the trailing half
// (successive-halving style) so the remaining evaluation budget flows
// to the leaders. The approach follows the optimizer-portfolio line of
// ComPar (arxiv 2005.13304) and MCompiler (arxiv 1905.12755):
// committing to a single search strategy up front is dominated by
// racing several and reallocating toward whichever wins on THIS
// kernel/machine pair.
//
// Determinism: each contender evolves from its own seeded RNG and its
// own proposals; the shared cache changes who computes a value, never
// the value. Contenders step in fixed order within each round and
// scoring happens at deterministic generation barriers, so a fixed
// seed yields a byte-identical merged front regardless of GOMAXPROCS.
package optimizer

import (
	"fmt"
	"math"
	"sort"

	"autotune/internal/objective"
	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

// RaceOptions configures the racing meta-optimizer. Zero values select
// the defaults.
type RaceOptions struct {
	// Strategies names the registered contenders (default: every
	// registered strategy, in sorted order).
	Strategies []string
	// Interval is the number of lockstep generations between scoring
	// rounds (default 5).
	Interval int
	// Budget is a hard cap on the race's global distinct successful
	// evaluations. Once reached, proposals of configurations not
	// already in the shared cache report as failed and the race stops
	// at the next contender-step boundary — the cap is exact, never
	// overshot. 0 means no cap (the race ends when every surviving
	// contender's stopping rule fires).
	Budget int
	// MinSurvivors is the number of contenders elimination must leave
	// standing (default 1).
	MinSurvivors int
}

func (o RaceOptions) withDefaults() RaceOptions {
	if len(o.Strategies) == 0 {
		o.Strategies = StrategyNames()
	}
	if o.Interval == 0 {
		o.Interval = 5
	}
	if o.MinSurvivors == 0 {
		o.MinSurvivors = 1
	}
	return o
}

func (o RaceOptions) validate() error {
	if o.Interval < 1 {
		return fmt.Errorf("optimizer: race interval %d < 1", o.Interval)
	}
	if o.Budget < 0 {
		return fmt.Errorf("optimizer: race budget %d < 0", o.Budget)
	}
	if o.MinSurvivors < 1 {
		return fmt.Errorf("optimizer: race needs at least one survivor, got %d", o.MinSurvivors)
	}
	if len(o.Strategies) < 2 {
		return fmt.Errorf("optimizer: a race needs at least two strategies, got %v", o.Strategies)
	}
	seen := map[string]bool{}
	for _, name := range o.Strategies {
		if seen[name] {
			return fmt.Errorf("optimizer: strategy %q raced twice", name)
		}
		seen[name] = true
		if _, err := StrategyByName(name); err != nil {
			return err
		}
	}
	return nil
}

// Standing reports one contender's final state.
type Standing struct {
	// Strategy is the registry name.
	Strategy string `json:"strategy"`
	// Evaluations counts the distinct successful configurations this
	// contender proposed (configurations also proposed by another
	// contender count for both — the shared cache makes the overlap
	// free globally, but each strategy is charged for what it asked).
	Evaluations int `json:"evaluations"`
	// Generations is how many lockstep generations the contender ran.
	Generations int `json:"generations"`
	// FrontSize is the contender's own final archive size.
	FrontSize int `json:"front_size"`
	// HV is the contender's final hypervolume against the shared
	// reference point.
	HV float64 `json:"hv"`
	// Score is HV per evaluation — the racing fitness.
	Score float64 `json:"score"`
	// Eliminated reports whether a scoring round stopped this
	// contender; EliminatedAt is the generation barrier that did.
	Eliminated   bool `json:"eliminated"`
	EliminatedAt int  `json:"eliminated_at,omitempty"`
}

// RaceResult couples the merged search result with the per-contender
// standings and the shared reference point behind the final scores.
type RaceResult struct {
	*Result
	// Standings is ordered by final score, best first.
	Standings []Standing `json:"standings"`
	// Reference is the shared hypervolume reference of the final
	// scoring (see pareto.SharedReference).
	Reference []float64 `json:"reference"`
}

// attributedEvaluator charges a contender for the distinct successful
// configurations it proposes while delegating the work (and the
// caching) to the shared evaluator. No mutex: one contender steps
// sequentially, so its own evaluator is never called concurrently.
type attributedEvaluator struct {
	inner objective.Evaluator
	seen  map[string]bool
}

func newAttributedEvaluator(inner objective.Evaluator) *attributedEvaluator {
	return &attributedEvaluator{inner: inner, seen: map[string]bool{}}
}

func (a *attributedEvaluator) Evaluate(cfgs []skeleton.Config) [][]float64 {
	objs := a.inner.Evaluate(cfgs)
	for i, o := range objs {
		if o != nil {
			a.seen[cfgs[i].Key()] = true
		}
	}
	return objs
}

func (a *attributedEvaluator) ObjectiveNames() []string { return a.inner.ObjectiveNames() }

// Evaluations is the contender-attributed E (distinct successful
// proposals of this contender, not the global count).
func (a *attributedEvaluator) Evaluations() int { return len(a.seen) }

// budgetEvaluator hard-caps the global distinct successful evaluation
// count: once the shared evaluator has consumed the budget, uncached
// configurations are no longer evaluated and report as failed (nil
// objectives), which every evolver tolerates. Near the boundary the
// batch is shrunk so the cap is exact rather than approximate; cached
// configurations stay free, so an under-filled sub-batch just loops.
type budgetEvaluator struct {
	inner  objective.Evaluator
	e0     int
	budget int
}

func (b *budgetEvaluator) Evaluate(cfgs []skeleton.Config) [][]float64 {
	objs := make([][]float64, len(cfgs))
	for i := 0; i < len(cfgs); {
		rem := b.budget - (b.inner.Evaluations() - b.e0)
		if rem <= 0 {
			break
		}
		n := len(cfgs) - i
		if n > rem {
			n = rem
		}
		copy(objs[i:], b.inner.Evaluate(cfgs[i:i+n]))
		i += n
	}
	return objs
}

func (b *budgetEvaluator) ObjectiveNames() []string { return b.inner.ObjectiveNames() }
func (b *budgetEvaluator) Evaluations() int         { return b.inner.Evaluations() }

// contender is one racing strategy instance.
type contender struct {
	strat        Strategy
	cfg          StrategyConfig
	eval         *attributedEvaluator
	isl          islandEvolver
	maxGens      int
	gens         int
	eliminated   bool
	eliminatedAt int
}

// live reports whether the contender still receives budget.
func (c *contender) live() bool { return !c.eliminated && !c.isl.done() && c.gens < c.maxGens }

// Race runs the racing meta-optimizer without run control.
func Race(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, ropt RaceOptions) (*RaceResult, error) {
	return RaceControlled(space, eval, cfg, ropt, Control{})
}

// RaceControlled runs registered strategies concurrently over the
// shared evaluator under the given Control. Cancellation returns the
// merged best-so-far front with Result.Partial set. The race keeps
// heterogeneous per-strategy state, so Checkpointer is ignored and
// Resume is an error; checkpoint a single strategy instead.
//
// The merged front folds in EVERY contender's archive — eliminated
// ones included: their evaluations were paid for, and an early leader
// eliminated later may still hold points the survivors never found.
func RaceControlled(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, ropt RaceOptions, ctrl Control) (*RaceResult, error) {
	if ctrl.Resume != nil {
		return nil, fmt.Errorf("optimizer: a race keeps heterogeneous per-strategy state and cannot resume; checkpoint a single strategy instead")
	}
	ctrl.Checkpointer = nil
	ropt = ropt.withDefaults()
	if err := ropt.validate(); err != nil {
		return nil, err
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	run := newControlledRun(eval, ctrl, "race", "")
	defer run.close()

	// The budget is enforced at the evaluator so it can never be
	// overshot: once it is consumed, uncached proposals fail.
	shared := objective.Evaluator(eval)
	if ropt.Budget > 0 {
		shared = &budgetEvaluator{inner: eval, e0: run.e0, budget: ropt.Budget}
	}

	// Build one contender per strategy. Every contender shares the
	// base seed: population-based strategies then start from
	// coinciding initial draws, which the shared cache makes free —
	// the race budget goes into where the strategies differ.
	contenders := make([]*contender, len(ropt.Strategies))
	for i, name := range ropt.Strategies {
		strat, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		ccfg := strat.Normalize(space, cfg)
		maxGens := strat.MaxGenerations(ccfg)
		if ropt.Budget > 0 {
			// With a global budget the budget, not the per-strategy
			// generation cap, is the resource being raced for: a
			// surviving contender keeps evolving past its standalone
			// generation budget until the evaluations run dry or its
			// own stopping rule (stagnation, exhausted walk) fires.
			maxGens = math.MaxInt
		}
		contenders[i] = &contender{
			strat:   strat,
			cfg:     ccfg,
			eval:    newAttributedEvaluator(shared),
			maxGens: maxGens,
		}
	}
	// Initial states evaluate sequentially in contender order: the
	// budget cap reads the global evaluation count, so everything that
	// consumes budget must do so in a defined order. The shared seed
	// keeps this cheap — later contenders hit the cache of the first.
	for _, c := range contenders {
		c.isl = c.strat.New(space, c.eval, c.cfg, c.cfg.Options.Seed)
	}
	// Barrier 0: all contenders' initial states are in; a surrogate
	// screen trains before the first racing round. Contenders share one
	// cache, so they share one model.
	run.sync()

	ctx := ctrl.ctx()
	globalE := func() int { return eval.Evaluations() - run.e0 }
	gens := 0
	partial := false
	for {
		if ctx.Err() != nil {
			partial = true
			break
		}
		if ropt.Budget > 0 && globalE() >= ropt.Budget {
			break
		}
		// One round: step the live contenders in fixed order, checking
		// the budget between steps so the overshoot stays within one
		// population. Steps are sequential across contenders (the
		// budget check needs a defined order for determinism); the
		// shared evaluator still fans each population batch out across
		// its workers.
		stepped := false
		for _, c := range contenders {
			if !c.live() {
				continue
			}
			if ropt.Budget > 0 && globalE() >= ropt.Budget {
				break
			}
			c.isl.step()
			c.gens++
			stepped = true
			if ctx.Err() != nil {
				partial = true
				break
			}
		}
		if partial {
			break
		}
		if !stepped {
			break
		}
		gens++
		// Round barrier: contenders stepped in a fixed sequential
		// order, so syncing the surrogate here is deterministic.
		run.sync()
		// Scoring barrier: eliminate the trailing half of the still-
		// live contenders (successive halving), never dropping below
		// MinSurvivors.
		if gens%ropt.Interval == 0 {
			raceEliminate(contenders, ropt.MinSurvivors, gens)
		}
	}

	// Merge every contender's archive, in fixed contender order, into
	// one canonical front.
	global := pareto.NewArchive()
	for _, c := range contenders {
		for _, p := range c.isl.points() {
			global.Add(p)
		}
	}
	front := global.Points()
	sortFront(front)

	standings, ref := raceStandings(contenders)
	return &RaceResult{
		Result: &Result{
			Front:       front,
			Evaluations: run.totalE(),
			Iterations:  gens,
			Partial:     partial,
		},
		Standings: standings,
		Reference: ref,
	}, nil
}

// raceScores computes HV-per-evaluation for the given contenders
// against a reference shared across all their fronts. A contender
// whose archive is empty (every proposal failed) scores zero.
func raceScores(cs []*contender) (scores, hvs []float64, ref []float64) {
	fronts := make([][]pareto.Point, len(cs))
	for i, c := range cs {
		fronts[i] = c.isl.points()
	}
	ref, err := pareto.SharedReference(fronts...)
	scores = make([]float64, len(cs))
	hvs = make([]float64, len(cs))
	if err != nil {
		return scores, hvs, nil
	}
	for i, c := range cs {
		var objs [][]float64
		for _, p := range fronts[i] {
			objs = append(objs, p.Objectives)
		}
		hv, err := pareto.Hypervolume(objs, ref)
		if err != nil {
			continue
		}
		hvs[i] = hv
		e := c.eval.Evaluations()
		if e < 1 {
			e = 1
		}
		scores[i] = hv / float64(e)
	}
	return scores, hvs, ref
}

// raceEliminate scores the live contenders and eliminates the trailing
// half, keeping at least minSurvivors. Ties break by name so the
// outcome is independent of scheduling.
func raceEliminate(contenders []*contender, minSurvivors, gen int) {
	var live []*contender
	for _, c := range contenders {
		if !c.eliminated {
			live = append(live, c)
		}
	}
	if len(live) <= minSurvivors {
		return
	}
	scores, _, _ := raceScores(live)
	order := make([]int, len(live))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa > sb
		}
		return live[order[a]].strat.Name < live[order[b]].strat.Name
	})
	keep := (len(live) + 1) / 2
	if keep < minSurvivors {
		keep = minSurvivors
	}
	// Elimination doubles as a hand-off: the eliminated contenders'
	// archived fronts migrate into every survivor, so evaluations spent
	// on a losing strategy keep working for the winners (replaceWorst
	// caps the graft at half a population; MOTPE folds the points into
	// its observation history instead).
	var handoff []individual
	for _, oi := range order[keep:] {
		c := live[oi]
		c.eliminated = true
		c.eliminatedAt = gen
		for _, p := range c.isl.points() {
			if cfg, ok := p.Payload.(skeleton.Config); ok {
				handoff = append(handoff, individual{cfg: cfg, objs: p.Objectives})
			}
		}
	}
	if len(handoff) == 0 {
		return
	}
	for _, oi := range order[:keep] {
		live[oi].isl.inject(handoff)
	}
}

// raceStandings builds the final per-contender report, scored against
// a reference shared across every contender's final front.
func raceStandings(contenders []*contender) ([]Standing, []float64) {
	scores, hvs, ref := raceScores(contenders)
	standings := make([]Standing, len(contenders))
	for i, c := range contenders {
		standings[i] = Standing{
			Strategy:     c.strat.Name,
			Evaluations:  c.eval.Evaluations(),
			Generations:  c.gens,
			FrontSize:    len(c.isl.points()),
			HV:           hvs[i],
			Score:        scores[i],
			Eliminated:   c.eliminated,
			EliminatedAt: c.eliminatedAt,
		}
	}
	sort.Slice(standings, func(a, b int) bool {
		if standings[a].Score != standings[b].Score {
			return standings[a].Score > standings[b].Score
		}
		return standings[a].Strategy < standings[b].Strategy
	})
	return standings, ref
}
