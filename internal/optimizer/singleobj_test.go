package optimizer

import (
	"testing"

	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

func TestSingleObjectiveDEFindsWeightedOptimum(t *testing.T) {
	// With all weight on f1 = x², the optimum is x = 0.
	eval := newFuncEvaluator(schaffer)
	res, err := SingleObjectiveDE(schafferSpace(), eval, []float64{1, 0}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) != 1 {
		t.Fatalf("front = %d points, want exactly 1", len(res.Front))
	}
	x := res.Front[0].Payload.(skeleton.Config)[0]
	if x < -20 || x > 20 { // |x/100| close to 0
		t.Fatalf("x = %d, want near 0", x)
	}
	// With all weight on f2 = (x-2)², the optimum is x = 200.
	res2, err := SingleObjectiveDE(schafferSpace(), newFuncEvaluator(schaffer), []float64{0, 1}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x2 := res2.Front[0].Payload.(skeleton.Config)[0]
	if x2 < 180 || x2 > 220 {
		t.Fatalf("x = %d, want near 200", x2)
	}
}

func TestSingleObjectiveDEValidation(t *testing.T) {
	eval := newFuncEvaluator(schaffer)
	if _, err := SingleObjectiveDE(skeleton.Space{}, eval, []float64{1}, Options{}); err == nil {
		t.Error("invalid space accepted")
	}
	if _, err := SingleObjectiveDE(schafferSpace(), eval, nil, Options{}); err == nil {
		t.Error("missing weights accepted")
	}
	if _, err := SingleObjectiveDE(schafferSpace(), eval, []float64{-1, 0}, Options{}); err == nil {
		t.Error("negative weight accepted")
	}
	// All evaluations failing yields an error.
	failing := newFuncEvaluator(func(skeleton.Config) []float64 { return nil })
	if _, err := SingleObjectiveDE(schafferSpace(), failing, []float64{1, 0}, Options{Seed: 2, MaxIterations: 3}); err == nil {
		t.Error("all-failing evaluator should error")
	}
}

// The paper's motivation, quantified: covering K trade-off points with
// a single-objective tuner costs ~K separate runs, while one RS-GDE3
// run covers them all. With equal total budget, the multi-objective
// front must weakly dominate the set of single-objective results.
func TestMultiObjectiveCoversWeightSweep(t *testing.T) {
	weights := [][]float64{{1, 0}, {0.75, 0.25}, {0.5, 0.5}, {0.25, 0.75}, {0, 1}}
	var soPoints [][]float64
	soEvals := 0
	for i, w := range weights {
		eval := newFuncEvaluator(schaffer)
		res, err := SingleObjectiveDE(schafferSpace(), eval, w, Options{Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		soPoints = append(soPoints, res.Front[0].Objectives)
		soEvals += res.Evaluations
	}
	mo, err := RSGDE3(schafferSpace(), newFuncEvaluator(schaffer), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("single-objective sweep: %d evals for %d points; RS-GDE3: %d evals for %d points",
		soEvals, len(soPoints), mo.Evaluations, len(mo.Front))
	// Every single-objective result is weakly dominated by (or ties
	// with) some point of the multi-objective front, within tolerance.
	for i, sp := range soPoints {
		covered := false
		for _, p := range mo.Front {
			if pareto.WeaklyDominates(p.Objectives, []float64{sp[0] + 0.05, sp[1] + 0.05}) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("weight set %d result %v not covered by the multi-objective front", i, sp)
		}
	}
	// And the multi-objective run used fewer evaluations than the
	// whole sweep.
	if mo.Evaluations >= soEvals {
		t.Errorf("RS-GDE3 evals %d not below sweep total %d", mo.Evaluations, soEvals)
	}
}
