// Run control for the evolutionary optimizers: context-based
// cancellation and deadlines, generation-granular checkpointing, and
// exact resume.
//
// The controlled entry points (RSGDE3Controlled, NSGA2Controlled and
// their island variants) accept a Control carrying a context.Context, a
// Checkpointer and an optional resume Snapshot. Cancellation is
// graceful: the search stops at the next evaluation or generation
// boundary and returns the best-so-far valid Pareto front with
// Result.Partial set — never an error with nothing. A Snapshot captures
// the complete search state at a generation boundary — per-island
// populations, archives, stagnation counters, RNG draw counts, and the
// fresh evaluation results of the interval — so a resumed search
// replays nothing and produces a byte-identical final front to the
// same-seed uninterrupted run.
package optimizer

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"autotune/internal/objective"
	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

// Control carries the cross-cutting run controls threaded through a
// search. The zero value is a plain uncontrolled run.
type Control struct {
	// Ctx bounds the search with a deadline and/or cancel signal. Once
	// done, the search stops gracefully at the next evaluation or
	// generation boundary and returns the best-so-far front with
	// Result.Partial set. Nil means never cancelled.
	Ctx context.Context
	// Checkpointer, when non-nil, receives a Snapshot after the initial
	// population and after every completed generation. A generation cut
	// short by cancellation is never checkpointed (its evaluations may
	// have been abandoned mid-flight), so every saved snapshot is an
	// exact resume point.
	Checkpointer Checkpointer
	// Resume restarts the search from a previously saved snapshot
	// instead of a fresh initial population. The snapshot must come
	// from an identically configured search (same space, options, seed
	// and island layout); a mismatch is an error.
	Resume *Snapshot
}

// ctx returns the effective context.
func (c Control) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// Checkpointer persists generation snapshots. Save is called from the
// search goroutine between generations; an error aborts the search.
type Checkpointer interface {
	Save(*Snapshot) error
}

// Member is one serialized individual: its configuration and objective
// vector (nil = failed evaluation).
type Member struct {
	Config []int64   `json:"config"`
	Objs   []float64 `json:"objs"`
}

// IslandState is the complete serialized state of one search island at
// a generation boundary.
type IslandState struct {
	// Pop is the current population in index order.
	Pop []Member `json:"pop"`
	// Archive is the island's Pareto archive in insertion order —
	// re-adding the points in order reproduces the archive exactly.
	Archive []Member `json:"archive"`
	// Stagnant is the stagnation counter.
	Stagnant int `json:"stagnant"`
	// Draws is the island RNG's source draw count; a fresh generator
	// with the island's seed skipped by Draws continues the stream.
	Draws uint64 `json:"draws"`
}

// EvalState is one fresh evaluation result recorded since the previous
// snapshot. Resume primes the evaluation cache with these, so replayed
// proposals are free and E stays accurate across the interruption.
type EvalState struct {
	Config []int64   `json:"config"`
	Objs   []float64 `json:"objs"`
}

// Snapshot is a serializable picture of a search at a generation
// boundary: everything needed to continue as if never interrupted.
type Snapshot struct {
	// Method names the algorithm ("rs-gde3", "nsga2"), informational.
	Method string `json:"method"`
	// Fingerprint hashes the full search configuration (space, options,
	// seed, island layout). Resume refuses a mismatched snapshot.
	Fingerprint string `json:"fingerprint"`
	// Generation is the number of completed generations (0 = initial
	// population evaluated, no generation stepped yet).
	Generation int `json:"generation"`
	// Evaluations is the cumulative E across the original run and all
	// resumed continuations up to this snapshot.
	Evaluations int `json:"evaluations"`
	// States holds one entry per island (one for the serial methods).
	States []IslandState `json:"states"`
	// Evals are the fresh evaluation results since the previous
	// snapshot (the whole history when snapshots are accumulated by a
	// journal loader).
	Evals []EvalState `json:"evals,omitempty"`
}

// fingerprintOf hashes an arbitrary sequence of search-defining values.
func fingerprintOf(parts ...interface{}) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v|", p)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// spaceKey folds a search space into fingerprint material.
func spaceKey(space skeleton.Space) string {
	h := fnv.New64a()
	for _, p := range space.Params {
		fmt.Fprintf(h, "%s/%d/%d/%d|", p.Name, int(p.Kind), p.Min, p.Max)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// gdeFingerprint identifies an RS-GDE3/GDE3 search configuration.
func gdeFingerprint(space skeleton.Space, opt Options, islands int, iopt IslandOptions) string {
	parts := []interface{}{"gde", spaceKey(space), opt.PopSize, opt.CR, opt.F,
		opt.Stagnation, opt.MaxIterations, opt.Seed, opt.DisableRoughSet,
		islands, iopt.MigrationInterval, iopt.Migrants}
	for _, c := range opt.InitialPopulation {
		parts = append(parts, c.Key())
	}
	return fingerprintOf(parts...)
}

// nsga2Fingerprint identifies an NSGA-II search configuration.
func nsga2Fingerprint(space skeleton.Space, opt NSGA2Options, islands int, iopt IslandOptions) string {
	parts := []interface{}{"nsga2", spaceKey(space), opt.PopSize, opt.CrossoverRate,
		opt.MutationRate, opt.Stagnation, opt.MaxGenerations, opt.Seed,
		islands, iopt.MigrationInterval, iopt.Migrants}
	for _, c := range opt.InitialPopulation {
		parts = append(parts, c.Key())
	}
	return fingerprintOf(parts...)
}

// memberOf serializes one individual.
func memberOf(ind individual) Member {
	return Member{Config: append([]int64(nil), ind.cfg...), Objs: append([]float64(nil), ind.objs...)}
}

// restoreMember deserializes one individual.
func restoreMember(m Member) individual {
	return individual{cfg: skeleton.Config(append([]int64(nil), m.Config...)), objs: append([]float64(nil), m.Objs...)}
}

// snapshotState serializes the shared island fields.
func snapshotState(pop []individual, archive *pareto.Archive, stagnant int, draws uint64) IslandState {
	st := IslandState{Stagnant: stagnant, Draws: draws}
	for _, ind := range pop {
		st.Pop = append(st.Pop, memberOf(ind))
	}
	for _, p := range archive.Points() {
		cfg, _ := p.Payload.(skeleton.Config)
		st.Archive = append(st.Archive, Member{
			Config: append([]int64(nil), cfg...),
			Objs:   append([]float64(nil), p.Objectives...),
		})
	}
	return st
}

// restoreArchive rebuilds a Pareto archive from its serialized points.
// The stored points are mutually non-dominated and in insertion order,
// so re-adding them in order reproduces the archive's internal state
// exactly — the front of a resumed run stays byte-identical.
func restoreArchive(members []Member) *pareto.Archive {
	a := pareto.NewArchive()
	for _, m := range members {
		a.Add(pareto.Point{
			Payload:    skeleton.Config(append([]int64(nil), m.Config...)),
			Objectives: append([]float64(nil), m.Objs...),
		})
	}
	return a
}

// evalTrace buffers fresh evaluation results between snapshots.
type evalTrace struct {
	mu      sync.Mutex
	pending []EvalState
}

func (t *evalTrace) record(cfg skeleton.Config, objs []float64) {
	t.mu.Lock()
	t.pending = append(t.pending, EvalState{
		Config: append([]int64(nil), cfg...),
		Objs:   append([]float64(nil), objs...),
	})
	t.mu.Unlock()
}

func (t *evalTrace) drain() []EvalState {
	t.mu.Lock()
	out := t.pending
	t.pending = nil
	t.mu.Unlock()
	return out
}

// controlledRun wires a Control into one search: it binds the context
// to the shared evaluation cache, primes the cache from a resume
// snapshot, traces fresh evaluations for checkpointing, and accounts E
// across interruptions.
type controlledRun struct {
	eval        objective.Evaluator
	ctrl        Control
	method      string
	fingerprint string

	ce        *objective.CachingEvaluator
	trace     *evalTrace
	removeObs func()
	resumed   bool
	baseE     int
	e0        int
}

func newControlledRun(eval objective.Evaluator, ctrl Control, method, fingerprint string) *controlledRun {
	r := &controlledRun{eval: eval, ctrl: ctrl, method: method, fingerprint: fingerprint}
	if sc, ok := eval.(objective.SharedCacher); ok {
		r.ce = sc.SharedCache()
	}
	if r.ce != nil && ctrl.Ctx != nil {
		r.ce.SetContext(ctrl.Ctx)
	}
	if snap := ctrl.Resume; snap != nil {
		r.resumed = true
		r.baseE = snap.Evaluations
		if r.ce != nil {
			for _, e := range snap.Evals {
				r.ce.Prime(skeleton.Config(e.Config), e.Objs)
			}
		}
	}
	r.e0 = eval.Evaluations()
	if ctrl.Checkpointer != nil && r.ce != nil {
		r.trace = &evalTrace{}
		r.removeObs = r.ce.AddObserver(r.trace.record)
	}
	return r
}

// checkResume validates a resume snapshot against this search.
func (r *controlledRun) checkResume(islands int) error {
	snap := r.ctrl.Resume
	if snap == nil {
		return nil
	}
	if snap.Fingerprint != r.fingerprint {
		return fmt.Errorf("optimizer: checkpoint fingerprint %s does not match this search (%s %s): the snapshot was written by a differently configured run",
			snap.Fingerprint, r.method, r.fingerprint)
	}
	if len(snap.States) != islands {
		return fmt.Errorf("optimizer: checkpoint has %d island states, search expects %d", len(snap.States), islands)
	}
	return nil
}

// close detaches the run from the shared cache.
func (r *controlledRun) close() {
	if r.removeObs != nil {
		r.removeObs()
	}
	if r.ce != nil && r.ctrl.Ctx != nil {
		r.ce.SetContext(nil)
	}
}

// sync flushes evaluator layers with per-generation state (the
// surrogate screen) at a generation barrier: observations since the
// last barrier fold into the model in canonical order, so the layer's
// behavior depends on barrier counts, never on evaluation
// interleaving. A no-op for plain evaluators.
func (r *controlledRun) sync() {
	if gs, ok := r.eval.(objective.GenerationSyncer); ok {
		gs.SyncGeneration()
	}
}

// totalE is the cumulative E: for fresh runs the evaluator's absolute
// count (backward compatible with shared evaluators), for resumed runs
// the checkpointed count plus this continuation's fresh evaluations.
func (r *controlledRun) totalE() int {
	if r.resumed {
		return r.baseE + r.eval.Evaluations() - r.e0
	}
	return r.eval.Evaluations()
}

// save checkpoints the current state as generation gen.
func (r *controlledRun) save(islands []islandEvolver, gen int) error {
	if r.ctrl.Checkpointer == nil {
		return nil
	}
	snap := &Snapshot{
		Method:      r.method,
		Fingerprint: r.fingerprint,
		Generation:  gen,
		Evaluations: r.totalE(),
	}
	for _, isl := range islands {
		snap.States = append(snap.States, isl.snapshot())
	}
	if r.trace != nil {
		snap.Evals = r.trace.drain()
	}
	return r.ctrl.Checkpointer.Save(snap)
}

// loop evolves the islands in lockstep under the run's control:
// cancellation checks at every generation boundary, ring migration
// every MigrationInterval generations, and a checkpoint after the
// initial population and after every completed generation. A
// generation in which the context fired is never checkpointed — some
// of its evaluations may have been abandoned. Returns the absolute
// generation count (continuing the snapshot's on resume) and whether
// the run was cut short.
func (r *controlledRun) loop(islands []islandEvolver, maxGens int, iopt IslandOptions) (gens int, partial bool, err error) {
	ctx := r.ctrl.ctx()
	if r.ctrl.Resume != nil {
		gens = r.ctrl.Resume.Generation
	} else if ctx.Err() == nil {
		// Fresh run: checkpoint the evaluated initial population as
		// generation 0, so an interruption during the first
		// generations already has a resume point.
		if err := r.save(islands, 0); err != nil {
			return 0, false, err
		}
	}
	// Barrier 0: the initial populations (and any warm-start priming)
	// are in; train the surrogate before the first generation screens.
	r.sync()
	for gens < maxGens {
		if ctx.Err() != nil {
			return gens, true, nil
		}
		stepped := false
		var wg sync.WaitGroup
		for _, isl := range islands {
			if isl.done() {
				continue
			}
			stepped = true
			wg.Add(1)
			go func(e islandEvolver) {
				defer wg.Done()
				e.step()
			}(isl)
		}
		if !stepped {
			break
		}
		wg.Wait()
		gens++
		r.sync()
		if len(islands) > 1 && gens%iopt.MigrationInterval == 0 {
			migrateRing(islands, iopt.Migrants)
		}
		if ctx.Err() != nil {
			return gens, true, nil
		}
		if err := r.save(islands, gens); err != nil {
			return gens, false, err
		}
	}
	return gens, false, nil
}

// RSGDE3Controlled is RSGDE3 with cancellation, checkpointing and
// resume (see Control). Cancellation returns the best-so-far front
// with Result.Partial set rather than an error.
func RSGDE3Controlled(space skeleton.Space, eval objective.Evaluator, opt Options, ctrl Control) (*Result, error) {
	return runStrategy(methodName(opt), space, eval, StrategyConfig{Options: opt}, IslandOptions{}, false, ctrl)
}

// methodName labels the GDE3 family for snapshots.
func methodName(opt Options) string {
	if opt.DisableRoughSet {
		return "gde3"
	}
	return "rs-gde3"
}

// GDE3Controlled is GDE3 with run control.
func GDE3Controlled(space skeleton.Space, eval objective.Evaluator, opt Options, ctrl Control) (*Result, error) {
	return runStrategy("gde3", space, eval, StrategyConfig{Options: opt}, IslandOptions{}, false, ctrl)
}

// NSGA2Controlled is NSGA2 with run control.
func NSGA2Controlled(space skeleton.Space, eval objective.Evaluator, opt NSGA2Options, ctrl Control) (*Result, error) {
	return runStrategy("nsga2", space, eval, StrategyConfig{NSGA2: opt}, IslandOptions{}, false, ctrl)
}

// MOTPEControlled is the MOTPE sampler with run control.
func MOTPEControlled(space skeleton.Space, eval objective.Evaluator, opt Options, ctrl Control) (*Result, error) {
	return runStrategy("motpe", space, eval, StrategyConfig{Options: opt}, IslandOptions{}, false, ctrl)
}

// MOTPE runs the multi-objective TPE sampler (see motpe.go).
func MOTPE(space skeleton.Space, eval objective.Evaluator, opt Options) (*Result, error) {
	return MOTPEControlled(space, eval, opt, Control{})
}

// RSGDE3IslandsControlled is RSGDE3Islands with run control. On
// resume, every island is restored from its checkpointed state; the
// merged front of the finished run is byte-identical to the same-seed
// uninterrupted run.
func RSGDE3IslandsControlled(space skeleton.Space, eval objective.Evaluator, opt Options, iopt IslandOptions, ctrl Control) (*Result, error) {
	return runStrategy(methodName(opt), space, eval, StrategyConfig{Options: opt}, iopt, true, ctrl)
}

// GDE3IslandsControlled is GDE3Islands with run control.
func GDE3IslandsControlled(space skeleton.Space, eval objective.Evaluator, opt Options, iopt IslandOptions, ctrl Control) (*Result, error) {
	return runStrategy("gde3", space, eval, StrategyConfig{Options: opt}, iopt, true, ctrl)
}

// NSGA2IslandsControlled is NSGA2Islands with run control.
func NSGA2IslandsControlled(space skeleton.Space, eval objective.Evaluator, opt NSGA2Options, iopt IslandOptions, ctrl Control) (*Result, error) {
	return runStrategy("nsga2", space, eval, StrategyConfig{NSGA2: opt}, iopt, true, ctrl)
}

// randomChunk is the evaluation batch size of the one-shot baselines'
// controlled variants — the granularity at which cancellation is
// honored.
const randomChunk = 64

// RandomControlled is Random with cancellation support: the budget is
// evaluated in chunks and a done context stops the sweep at the next
// chunk boundary, returning the non-dominated subset of what was
// evaluated with Result.Partial set. The baselines keep no generation
// state, so Checkpointer and Resume are not supported (Resume is an
// error, Checkpointer is ignored).
func RandomControlled(space skeleton.Space, eval objective.Evaluator, budget int, seed int64, ctrl Control) (*Result, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("optimizer: random search needs a positive budget")
	}
	cfg := StrategyConfig{Options: Options{Seed: seed}, RandomBudget: budget}
	res, err := runStrategy("random", space, eval, cfg, IslandOptions{}, false, ctrl)
	if err != nil {
		return nil, err
	}
	// The one-shot baselines report Iterations as 0 (see Result), even
	// though the chunked sweep steps through the stepping surface.
	res.Iterations = 0
	return res, nil
}

// GridSearchControlled runs the registered "grid" strategy: a
// deterministic coarse grid subsample of at most budget
// configurations, visited in a low-discrepancy strided order and
// evaluated in cancellable chunks. Like the other one-shot baselines
// it supports neither Checkpointer nor Resume.
func GridSearchControlled(space skeleton.Space, eval objective.Evaluator, budget int, ctrl Control) (*Result, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("optimizer: grid search needs a positive budget")
	}
	cfg := StrategyConfig{RandomBudget: budget}
	res, err := runStrategy("grid", space, eval, cfg, IslandOptions{}, false, ctrl)
	if err != nil {
		return nil, err
	}
	res.Iterations = 0
	return res, nil
}

// BruteForceControlled is BruteForce with cancellation support at
// chunk granularity. Like RandomControlled it supports neither
// Checkpointer nor Resume. AllPoints is only populated for complete
// sweeps; a partial grid sweep reports the partial front alone.
func BruteForceControlled(space skeleton.Space, eval objective.Evaluator, grid Grid, ctrl Control) (*Result, error) {
	if ctrl.Resume != nil {
		return nil, fmt.Errorf("optimizer: brute force keeps no generation state; resume needs an evolutionary method")
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if len(grid) != space.Dim() {
		return nil, fmt.Errorf("optimizer: grid dims %d != space dims %d", len(grid), space.Dim())
	}
	run := newControlledRun(eval, ctrl, "brute-force", "")
	defer run.close()
	cfgs := grid.configs(space)
	ctx := ctrl.ctx()
	archive := pareto.NewArchive()
	var all []pareto.Point
	partial := false
	for lo := 0; lo < len(cfgs); lo += randomChunk {
		if ctx.Err() != nil {
			partial = true
			break
		}
		hi := lo + randomChunk
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		objs := eval.Evaluate(cfgs[lo:hi])
		for i, o := range objs {
			if o == nil {
				continue
			}
			p := pareto.Point{Payload: cfgs[lo+i], Objectives: o}
			all = append(all, p)
			archive.Add(p)
		}
	}
	res := &Result{
		Front:       archive.Points(),
		Evaluations: run.totalE(),
		Partial:     partial,
	}
	if !partial {
		res.AllPoints = all
	}
	return res, nil
}
