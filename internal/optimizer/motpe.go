// MOTPE: a multi-objective Tree-structured Parzen Estimator sampler,
// the registry's cheap Bayesian strategy. Instead of evolving a
// population it keeps every observation, splits them into "good" (the
// best quartile under non-dominated sorting) and "bad", models each
// group with a Parzen window (per-dimension gaussian kernels around
// the observed configurations), and proposes the candidates that
// maximize the density ratio l(x)/g(x) — sample where good
// observations cluster and bad ones do not. One step proposes and
// evaluates PopSize candidates, so its per-generation evaluation cost
// matches the evolutionary strategies and racing compares like with
// like.
package optimizer

import (
	"math"

	"autotune/internal/objective"
	"autotune/internal/pareto"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

// motpeCandidates is the number of l(x) draws scored per proposed
// candidate (Optuna's n_ei_candidates, scaled down for cheap steps).
const motpeCandidates = 8

// motpeIsland is one self-contained MOTPE search instance, sharing the
// islandEvolver stepping surface with the evolutionary strategies.
type motpeIsland struct {
	space    skeleton.Space
	eval     objective.Evaluator
	opt      Options
	rng      *stats.CountedRand
	obs      []individual // every observation, in evaluation order
	archive  *pareto.Archive
	stagnant int
}

// newMOTPEIsland seeds and evaluates the initial observations. opt
// must already carry defaults.
func newMOTPEIsland(space skeleton.Space, eval objective.Evaluator, opt Options, seed int64) *motpeIsland {
	m := &motpeIsland{
		space:   space,
		eval:    eval,
		opt:     opt,
		rng:     stats.NewCountedRand(seed),
		archive: pareto.NewArchive(),
	}
	cfgs := seededPopulation(space, opt.InitialPopulation, opt.PopSize, m.rng.Rand)
	objs := eval.Evaluate(cfgs)
	for i := range cfgs {
		m.obs = append(m.obs, individual{cfg: cfgs[i], objs: objs[i]})
		if objs[i] != nil {
			m.archive.Add(pareto.Point{Payload: cfgs[i], Objectives: objs[i]})
		}
	}
	return m
}

// restoreMOTPEIsland rebuilds an instance from its checkpointed state:
// observations, archive and stagnation come from the snapshot and the
// RNG is fast-forwarded to the checkpointed draw count.
func restoreMOTPEIsland(space skeleton.Space, eval objective.Evaluator, opt Options, seed int64, st IslandState) *motpeIsland {
	m := &motpeIsland{
		space:    space,
		eval:     eval,
		opt:      opt,
		rng:      stats.NewCountedRand(seed),
		archive:  restoreArchive(st.Archive),
		stagnant: st.Stagnant,
	}
	m.rng.Skip(st.Draws)
	m.obs = make([]individual, len(st.Pop))
	for i, mem := range st.Pop {
		m.obs[i] = restoreMember(mem)
	}
	return m
}

// motpeFingerprint identifies a MOTPE search configuration.
func motpeFingerprint(space skeleton.Space, opt Options, islands int, iopt IslandOptions) string {
	parts := []interface{}{"motpe", spaceKey(space), opt.PopSize, opt.Stagnation,
		opt.MaxIterations, opt.Seed, islands, iopt.MigrationInterval, iopt.Migrants}
	for _, c := range opt.InitialPopulation {
		parts = append(parts, c.Key())
	}
	return fingerprintOf(parts...)
}

// done reports whether the stagnation stopping rule has fired.
func (m *motpeIsland) done() bool { return m.stagnant >= m.opt.Stagnation }

// splitObservations partitions the successful observations into the
// good set (best quartile, at least 2) and the bad set, using the same
// rank/crowding order the migration machinery uses.
func (m *motpeIsland) splitObservations() (good, bad []skeleton.Config) {
	var ok []individual
	for _, o := range m.obs {
		if o.objs != nil {
			ok = append(ok, o)
		}
	}
	if len(ok) < 4 {
		return nil, nil
	}
	nGood := (len(ok) + 3) / 4
	if nGood < 2 {
		nGood = 2
	}
	for i, idx := range orderBestToWorst(ok) {
		if i < nGood {
			good = append(good, ok[idx].cfg)
		} else {
			bad = append(bad, ok[idx].cfg)
		}
	}
	return good, bad
}

// bandwidths returns the per-dimension Parzen kernel width for a set
// of centers: a fraction of the parameter span that narrows as the set
// grows, never below one integer step.
func (m *motpeIsland) bandwidths(n int) []float64 {
	bw := make([]float64, m.space.Dim())
	shrink := 2 * math.Cbrt(float64(n))
	for d, p := range m.space.Params {
		w := float64(p.Max-p.Min) / shrink
		if w < 1 {
			w = 1
		}
		bw[d] = w
	}
	return bw
}

// logParzen evaluates the log-density of cfg under a Parzen mixture of
// per-dimension gaussian kernels centered on the given configurations,
// via log-sum-exp for numerical stability.
func logParzen(cfg skeleton.Config, centers []skeleton.Config, bw []float64) float64 {
	best := math.Inf(-1)
	logs := make([]float64, len(centers))
	for i, c := range centers {
		ll := 0.0
		for d := range cfg {
			z := (float64(cfg[d]) - float64(c[d])) / bw[d]
			ll += -0.5*z*z - math.Log(bw[d])
		}
		logs[i] = ll
		if ll > best {
			best = ll
		}
	}
	if math.IsInf(best, -1) {
		return best
	}
	sum := 0.0
	for _, ll := range logs {
		sum += math.Exp(ll - best)
	}
	return best + math.Log(sum/float64(len(centers)))
}

// step proposes and evaluates PopSize candidates: each candidate is
// the best of motpeCandidates draws from the good-set Parzen model,
// scored by the density ratio l(x)/g(x). With too few observations to
// split, proposals fall back to uniform random exploration.
func (m *motpeIsland) step() {
	good, bad := m.splitObservations()
	cands := make([]skeleton.Config, m.opt.PopSize)
	if len(good) == 0 || len(bad) == 0 {
		for i := range cands {
			cands[i] = m.space.Random(m.rng.Rand)
		}
	} else {
		bwGood := m.bandwidths(len(good))
		bwBad := m.bandwidths(len(bad))
		for i := range cands {
			var pick skeleton.Config
			bestScore := math.Inf(-1)
			for k := 0; k < motpeCandidates; k++ {
				center := good[m.rng.Intn(len(good))]
				draw := make(skeleton.Config, len(center))
				for d := range draw {
					draw[d] = center[d] + int64(math.Round(m.rng.NormFloat64()*bwGood[d]))
				}
				draw = m.space.Clip(draw)
				score := logParzen(draw, good, bwGood) - logParzen(draw, bad, bwBad)
				if score > bestScore {
					bestScore = score
					pick = draw
				}
			}
			cands[i] = pick
		}
	}
	objs := m.eval.Evaluate(cands)
	improved := false
	for i := range cands {
		m.obs = append(m.obs, individual{cfg: cands[i], objs: objs[i]})
		if objs[i] != nil &&
			m.archive.Add(pareto.Point{Payload: cands[i], Objectives: objs[i]}) {
			improved = true
		}
	}
	if improved {
		m.stagnant = 0
	} else {
		m.stagnant++
	}
}

// population exposes the observations for elite selection.
func (m *motpeIsland) population() []individual { return m.obs }

// inject records migrants as observations, steering the good set.
func (m *motpeIsland) inject(migrants []individual) {
	for _, mig := range migrants {
		m.obs = append(m.obs, individual{
			cfg:  mig.cfg.Clone(),
			objs: append([]float64(nil), mig.objs...),
		})
		if mig.objs != nil {
			m.archive.Add(pareto.Point{Payload: m.obs[len(m.obs)-1].cfg, Objectives: m.obs[len(m.obs)-1].objs})
		}
	}
}

// points returns the archived front.
func (m *motpeIsland) points() []pareto.Point { return m.archive.Points() }

// snapshot serializes the complete state for checkpointing; the
// observation list travels as the snapshot's population.
func (m *motpeIsland) snapshot() IslandState {
	return snapshotState(m.obs, m.archive, m.stagnant, m.rng.Draws())
}
