// First-class strategy registry: every search strategy the framework
// knows is registered by name with a constructor, a resume hook and an
// options fingerprint. The public optimizer entry points
// (RSGDE3Controlled, NSGA2Controlled, RandomControlled and the island
// variants) are thin wrappers over registry lookups, and the racing
// meta-optimizer (race.go) draws its heterogeneous contenders from the
// same table — one registration serves both the single-strategy and
// the portfolio path.
package optimizer

import (
	"fmt"
	"sort"
	"sync"

	"autotune/internal/objective"
	"autotune/internal/pareto"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

// StrategyConfig is the strategy-agnostic configuration handed to
// every registered constructor. Options carries the shared knobs
// (PopSize, Seed, Stagnation, MaxIterations, InitialPopulation) plus
// the GDE3-family parameters; NSGA2 overrides the NSGA-II-specific
// rates (zero fields derive from Options); RandomBudget is the total
// proposal budget of the "random" strategy (default 1000).
type StrategyConfig struct {
	Options      Options
	NSGA2        NSGA2Options
	RandomBudget int
}

// Strategy is one registered search strategy: a name, a constructor
// producing stepping search instances, and an options fingerprint.
// Registered strategies share the islandEvolver stepping surface, so
// the controlled generation loop, the island-model driver and the
// racing meta-optimizer can all drive any of them.
type Strategy struct {
	// Name is the registry key and the method label used in snapshots
	// and results ("rs-gde3", "gde3", "nsga2", "random", "motpe").
	Name string
	// New builds one search instance with its own RNG stream derived
	// from seed. The returned evolver has already evaluated its
	// initial state. cfg has been normalized.
	New func(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, seed int64) islandEvolver
	// Restore rebuilds an instance from a checkpointed island state.
	// Nil marks a strategy without checkpoint/resume support (the
	// one-shot baselines); such strategies ignore Control.Checkpointer
	// and reject Control.Resume.
	Restore func(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, seed int64, st IslandState) islandEvolver
	// Fingerprint hashes the search-defining configuration (space,
	// options, seed, island layout); resume refuses a mismatch.
	Fingerprint func(space skeleton.Space, cfg StrategyConfig, islands int, iopt IslandOptions) string
	// MaxGenerations is the generation cap of an instance under cfg
	// (chunk count for the chunked baselines).
	MaxGenerations func(cfg StrategyConfig) int
	// Normalize applies the strategy's defaults to cfg. It must leave
	// cfg.Options.PopSize and cfg.Options.Seed at their effective
	// values, whichever option struct they came from.
	Normalize func(space skeleton.Space, cfg StrategyConfig) StrategyConfig
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Strategy{}
)

// RegisterStrategy adds a strategy to the registry. Registering a
// duplicate or an incomplete entry panics: registration happens at
// package init time and a bad entry is a programming error.
func RegisterStrategy(s Strategy) {
	if s.Name == "" || s.New == nil || s.Fingerprint == nil || s.MaxGenerations == nil || s.Normalize == nil {
		panic(fmt.Sprintf("optimizer: incomplete strategy registration %q", s.Name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, ok := registry[s.Name]; ok {
		panic(fmt.Sprintf("optimizer: strategy %q registered twice", s.Name))
	}
	registry[s.Name] = s
}

// StrategyByName resolves a registered strategy.
func StrategyByName(name string) (Strategy, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return Strategy{}, fmt.Errorf("optimizer: unknown strategy %q (registered: %v)", name, strategyNamesLocked())
	}
	return s, nil
}

// StrategyNames lists the registered strategies in sorted order.
func StrategyNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return strategyNamesLocked()
}

func strategyNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// runStrategy is the shared engine behind the single-strategy entry
// points: resolve the registry entry, normalize the options, wire the
// run control, build (or restore) the search islands and drive the
// controlled generation loop. parallel selects the island-model layout
// (iopt is then defaulted, validated and clamped against the effective
// population size, and the merged front is sorted canonically); serial
// runs keep the single archive's insertion order, exactly as the
// pre-registry entry points did.
func runStrategy(name string, space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, iopt IslandOptions, parallel bool, ctrl Control) (*Result, error) {
	strat, err := StrategyByName(name)
	if err != nil {
		return nil, err
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	cfg = strat.Normalize(space, cfg)
	w := 1
	if parallel {
		iopt = iopt.withDefaults(cfg.Options.PopSize)
		if err := iopt.validate(); err != nil {
			return nil, err
		}
		w = iopt.Islands
	}
	if strat.Restore == nil {
		if ctrl.Resume != nil {
			return nil, fmt.Errorf("optimizer: %s keeps no generation state; resume needs an evolutionary method", strat.Name)
		}
		// No resume support means no usable snapshots either.
		ctrl.Checkpointer = nil
	}
	run := newControlledRun(eval, ctrl, strat.Name, strat.Fingerprint(space, cfg, w, iopt))
	defer run.close()
	if err := run.checkResume(w); err != nil {
		return nil, err
	}
	islands := make([]islandEvolver, w)
	if snap := ctrl.Resume; snap != nil {
		for i := range islands {
			islands[i] = strat.Restore(space, eval, cfg, cfg.Options.Seed+int64(i), snap.States[i])
		}
	} else {
		spawn(len(islands), func(i int) {
			islands[i] = strat.New(space, eval, cfg, cfg.Options.Seed+int64(i))
		})
	}
	gens, partial, err := run.loop(islands, strat.MaxGenerations(cfg), iopt)
	if err != nil {
		return nil, err
	}
	var res *Result
	if parallel {
		res = mergeIslands(islands, eval, gens)
	} else {
		res = &Result{Front: islands[0].points(), Iterations: gens}
	}
	res.Evaluations = run.totalE()
	res.Partial = partial
	return res, nil
}

// randomWalker adapts the random-search baseline to the stepping
// evolver surface: the budget is pre-drawn up front and evaluated in
// cancellation-checked chunks per step — PopSize configurations when
// one is set (so a race generation costs the same across contenders),
// randomChunk otherwise. Warm-start seeds (capped at half the budget)
// are proposed first — they are typically primed in the shared cache
// and therefore free.
type randomWalker struct {
	eval    objective.Evaluator
	cfgs    []skeleton.Config
	chunk   int
	next    int
	archive *pareto.Archive
}

// walkerChunk is the number of configurations a randomWalker evaluates
// per step for the given (normalized) configuration.
func walkerChunk(cfg StrategyConfig) int {
	if cfg.Options.PopSize > 0 {
		return cfg.Options.PopSize
	}
	return randomChunk
}

func newRandomWalker(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, seed int64) islandEvolver {
	budget := cfg.RandomBudget
	rng := stats.NewRand(seed)
	cfgs := make([]skeleton.Config, 0, budget)
	for _, s := range cfg.Options.InitialPopulation {
		if len(cfgs) >= budget/2 {
			break
		}
		if len(s) == space.Dim() {
			cfgs = append(cfgs, space.Clip(s))
		}
	}
	for len(cfgs) < budget {
		cfgs = append(cfgs, space.Random(rng))
	}
	return &randomWalker{eval: eval, cfgs: cfgs, chunk: walkerChunk(cfg), archive: pareto.NewArchive()}
}

func (r *randomWalker) step() {
	hi := r.next + r.chunk
	if hi > len(r.cfgs) {
		hi = len(r.cfgs)
	}
	batch := r.cfgs[r.next:hi]
	r.next = hi
	objs := r.eval.Evaluate(batch)
	for i, o := range objs {
		if o != nil {
			r.archive.Add(pareto.Point{Payload: batch[i], Objectives: o})
		}
	}
}

func (r *randomWalker) done() bool { return r.next >= len(r.cfgs) }

func (r *randomWalker) population() []individual { return nil }

func (r *randomWalker) inject([]individual) {}

func (r *randomWalker) points() []pareto.Point { return r.archive.Points() }

// snapshot is never called: the random strategy registers no Restore
// hook, so checkpointing is disabled for it.
func (r *randomWalker) snapshot() IslandState { return IslandState{} }

// normalizeNSGA2 fills the effective NSGA-II options: explicit NSGA2
// fields win, zero fields derive from the shared Options counterparts,
// and the result carries the strategy defaults. The shared fields are
// mirrored back into cfg.Options so the generic machinery (island
// seeding, migrant clamping) sees the effective values.
func normalizeNSGA2(space skeleton.Space, cfg StrategyConfig) StrategyConfig {
	n := cfg.NSGA2
	if n.PopSize == 0 {
		n.PopSize = cfg.Options.PopSize
	}
	if n.Stagnation == 0 {
		n.Stagnation = cfg.Options.Stagnation
	}
	if n.MaxGenerations == 0 {
		n.MaxGenerations = cfg.Options.MaxIterations
	}
	if n.Seed == 0 {
		n.Seed = cfg.Options.Seed
	}
	if n.InitialPopulation == nil {
		n.InitialPopulation = cfg.Options.InitialPopulation
	}
	n = n.withDefaults(space.Dim())
	cfg.NSGA2 = n
	cfg.Options.PopSize = n.PopSize
	cfg.Options.Seed = n.Seed
	return cfg
}

func init() {
	gdeStrategy := func(name string, disableRoughSet bool) Strategy {
		return Strategy{
			Name: name,
			New: func(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, seed int64) islandEvolver {
				return newGDEIsland(space, eval, cfg.Options, seed)
			},
			Restore: func(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, seed int64, st IslandState) islandEvolver {
				return restoreGDEIsland(space, eval, cfg.Options, seed, st)
			},
			Fingerprint: func(space skeleton.Space, cfg StrategyConfig, islands int, iopt IslandOptions) string {
				return gdeFingerprint(space, cfg.Options, islands, iopt)
			},
			MaxGenerations: func(cfg StrategyConfig) int { return cfg.Options.MaxIterations },
			Normalize: func(space skeleton.Space, cfg StrategyConfig) StrategyConfig {
				cfg.Options = cfg.Options.withDefaults()
				cfg.Options.DisableRoughSet = disableRoughSet
				return cfg
			},
		}
	}
	RegisterStrategy(gdeStrategy("rs-gde3", false))
	RegisterStrategy(gdeStrategy("gde3", true))
	RegisterStrategy(Strategy{
		Name: "nsga2",
		New: func(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, seed int64) islandEvolver {
			return newNSGA2Island(space, eval, cfg.NSGA2, seed)
		},
		Restore: func(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, seed int64, st IslandState) islandEvolver {
			return restoreNSGA2Island(space, eval, cfg.NSGA2, seed, st)
		},
		Fingerprint: func(space skeleton.Space, cfg StrategyConfig, islands int, iopt IslandOptions) string {
			return nsga2Fingerprint(space, cfg.NSGA2, islands, iopt)
		},
		MaxGenerations: func(cfg StrategyConfig) int { return cfg.NSGA2.MaxGenerations },
		Normalize:      normalizeNSGA2,
	})
	RegisterStrategy(Strategy{
		Name: "random",
		New:  newRandomWalker,
		Fingerprint: func(space skeleton.Space, cfg StrategyConfig, islands int, iopt IslandOptions) string {
			return fingerprintOf("random", spaceKey(space), cfg.RandomBudget, cfg.Options.Seed, islands)
		},
		MaxGenerations: func(cfg StrategyConfig) int {
			chunk := walkerChunk(cfg)
			return (cfg.RandomBudget + chunk - 1) / chunk
		},
		Normalize: func(space skeleton.Space, cfg StrategyConfig) StrategyConfig {
			cfg.Options = cfg.Options.withDefaults()
			if cfg.RandomBudget == 0 {
				cfg.RandomBudget = 1000
			}
			return cfg
		},
	})
	RegisterStrategy(Strategy{
		Name: "motpe",
		New: func(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, seed int64) islandEvolver {
			return newMOTPEIsland(space, eval, cfg.Options, seed)
		},
		Restore: func(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, seed int64, st IslandState) islandEvolver {
			return restoreMOTPEIsland(space, eval, cfg.Options, seed, st)
		},
		Fingerprint: func(space skeleton.Space, cfg StrategyConfig, islands int, iopt IslandOptions) string {
			return motpeFingerprint(space, cfg.Options, islands, iopt)
		},
		MaxGenerations: func(cfg StrategyConfig) int { return cfg.Options.MaxIterations },
		Normalize: func(space skeleton.Space, cfg StrategyConfig) StrategyConfig {
			cfg.Options = cfg.Options.withDefaults()
			return cfg
		},
	})
}
