package optimizer

import (
	"encoding/json"
	"runtime"
	"testing"

	"autotune/internal/objective"
	"autotune/internal/surrogate"
)

// screenedSchaffer builds a shared cache over the Schaffer problem
// with a surrogate screen layered on top.
func screenedSchaffer(t *testing.T, opt surrogate.Options) (*surrogate.Screened, *objective.CachingEvaluator) {
	t.Helper()
	ce := objective.NewCachingEvaluator([]string{"f1", "f2"}, 4, schaffer)
	s, err := surrogate.NewScreened(schafferSpace(), ce, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s, ce
}

// TestSurrogateIslandsDeterministicAcrossGOMAXPROCS is the surrogate
// determinism gate demanded by the screen's design: the model syncs at
// generation barriers in canonical order and screens against frozen
// state, so a fixed seed yields byte-identical fronts however the
// islands are scheduled. CI runs this under -race with GOMAXPROCS 1
// and 4.
func TestSurrogateIslandsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	var want []byte
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		s, _ := screenedSchaffer(t, surrogate.Options{TopK: 3, MinSamples: 8})
		res, err := RSGDE3IslandsControlled(schafferSpace(), s,
			Options{PopSize: 8, MaxIterations: 8, Stagnation: 9, Seed: 1},
			IslandOptions{Islands: 4, MigrationInterval: 2, Migrants: 2}, Control{})
		s.Close()
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.Skipped == 0 {
			t.Fatalf("screen never pruned anything (stats %+v) — the determinism claim would be vacuous", st)
		}
		got, err := json.Marshal(res.Front)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("GOMAXPROCS=%d changes the screened front:\n%s\nvs\n%s", procs, got, want)
		}
	}
}

// TestSurrogateTopKAtPopulationMatchesBaseline: with ScreenTopK at or
// above the population size the screen admits everything, and the
// screened run's front must be byte-for-byte the baseline's.
func TestSurrogateTopKAtPopulationMatchesBaseline(t *testing.T) {
	opt := Options{PopSize: 10, MaxIterations: 10, Stagnation: 11, Seed: 2}

	base := objective.NewCachingEvaluator([]string{"f1", "f2"}, 4, schaffer)
	bres, err := RSGDE3(schafferSpace(), base, opt)
	if err != nil {
		t.Fatal(err)
	}

	s, _ := screenedSchaffer(t, surrogate.Options{TopK: opt.PopSize, MinSamples: 5})
	defer s.Close()
	sres, err := RSGDE3(schafferSpace(), s, opt)
	if err != nil {
		t.Fatal(err)
	}

	bb, _ := json.Marshal(bres.Front)
	sb, _ := json.Marshal(sres.Front)
	if string(bb) != string(sb) {
		t.Fatalf("ScreenTopK >= population diverged from baseline:\n%s\nvs\n%s", bb, sb)
	}
	if bres.Evaluations != sres.Evaluations {
		t.Fatalf("pass-through screen changed E: %d vs %d", sres.Evaluations, bres.Evaluations)
	}
}

// TestSurrogateScreeningCutsEvaluations: an aggressive screen spends
// fewer real evaluations than the unscreened baseline on the same
// options.
func TestSurrogateScreeningCutsEvaluations(t *testing.T) {
	opt := Options{PopSize: 12, MaxIterations: 12, Stagnation: 13, Seed: 3}

	base := objective.NewCachingEvaluator([]string{"f1", "f2"}, 4, schaffer)
	bres, err := RSGDE3(schafferSpace(), base, opt)
	if err != nil {
		t.Fatal(err)
	}

	s, _ := screenedSchaffer(t, surrogate.Options{TopK: 3, MinSamples: 12})
	defer s.Close()
	sres, err := RSGDE3(schafferSpace(), s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Evaluations >= bres.Evaluations {
		t.Fatalf("screened E=%d not below baseline E=%d", sres.Evaluations, bres.Evaluations)
	}
	if len(sres.Front) == 0 {
		t.Fatal("screened run produced no front")
	}
	st := s.Stats()
	if st.Skipped == 0 || st.TrainSamples == 0 {
		t.Fatalf("screen did not engage: %+v", st)
	}
}

// TestSurrogateRaceDeterministicAcrossGOMAXPROCS: racing contenders
// share one cache and therefore one model; the round-barrier sync
// keeps the race byte-identical across GOMAXPROCS with the screen on.
func TestSurrogateRaceDeterministicAcrossGOMAXPROCS(t *testing.T) {
	var want []byte
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		s, _ := screenedSchaffer(t, surrogate.Options{TopK: 3, MinSamples: 8})
		rr, err := Race(schafferSpace(), s, raceTestConfig(), raceTestOptions())
		s.Close()
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(struct {
			Front     interface{}
			Standings []Standing
		}{rr.Front, rr.Standings})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("GOMAXPROCS=%d changes the screened race outcome:\n%s\nvs\n%s", procs, got, want)
		}
	}
}

// TestSurrogateEveryStrategyCompletes: each registered strategy must
// finish a screened run and produce a front — the per-strategy
// screening support the registry promises.
func TestSurrogateEveryStrategyCompletes(t *testing.T) {
	for _, name := range StrategyNames() {
		s, _ := screenedSchaffer(t, surrogate.Options{TopK: 3, MinSamples: 8})
		cfg := StrategyConfig{
			Options:      Options{PopSize: 8, MaxIterations: 5, Stagnation: 6, Seed: 4},
			RandomBudget: 80,
		}
		res, err := runStrategy(name, schafferSpace(), s, cfg, IslandOptions{}, false, Control{})
		s.Close()
		if err != nil {
			t.Fatalf("%s under screen: %v", name, err)
		}
		if len(res.Front) == 0 {
			t.Fatalf("%s under screen produced no front", name)
		}
	}
}
