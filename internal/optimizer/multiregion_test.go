package optimizer

import (
	"sync"
	"testing"

	"autotune/internal/skeleton"
)

// jointFuncEvaluator wraps per-region functions for MultiRSGDE3 tests.
type jointFuncEvaluator struct {
	mu    sync.Mutex
	fns   []func(skeleton.Config) []float64
	execs int
}

func (e *jointFuncEvaluator) EvaluateJoint(cfgs [][]skeleton.Config) [][][]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][][]float64, len(cfgs))
	batch := 0
	for r := range cfgs {
		if len(cfgs[r]) > batch {
			batch = len(cfgs[r])
		}
		out[r] = make([][]float64, len(cfgs[r]))
		for i, c := range cfgs[r] {
			out[r][i] = e.fns[r](c)
		}
	}
	e.execs += batch
	return out
}

func (e *jointFuncEvaluator) Executions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.execs
}

func (e *jointFuncEvaluator) ObjectiveNames() []string { return []string{"f1", "f2"} }

func TestMultiRSGDE3TwoRegions(t *testing.T) {
	// Region 0: Schaffer; region 1: shifted Schaffer (optimum x in [1,3]).
	shifted := func(c skeleton.Config) []float64 {
		x := float64(c[0]) / 100
		return []float64{(x - 1) * (x - 1), (x - 3) * (x - 3)}
	}
	eval := &jointFuncEvaluator{fns: []func(skeleton.Config) []float64{schaffer, shifted}}
	spaces := []skeleton.Space{schafferSpace(), schafferSpace()}
	res, err := MultiRSGDE3(spaces, eval, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 2 {
		t.Fatalf("regions = %d", len(res.Regions))
	}
	for r, reg := range res.Regions {
		if len(reg.Front) == 0 {
			t.Fatalf("region %d: empty front", r)
		}
		if reg.Evaluations != res.Executions {
			t.Fatalf("region %d: E %d != executions %d", r, reg.Evaluations, res.Executions)
		}
	}
	// Region fronts converge to their own (different) Pareto sets.
	for _, p := range res.Regions[0].Front {
		x := float64(p.Payload.(skeleton.Config)[0]) / 100
		if x < -0.3 || x > 2.3 {
			t.Errorf("region 0 x = %v outside [0,2]", x)
		}
	}
	for _, p := range res.Regions[1].Front {
		x := float64(p.Payload.(skeleton.Config)[0]) / 100
		if x < 0.7 || x > 3.3 {
			t.Errorf("region 1 x = %v outside [1,3]", x)
		}
	}
}

func TestMultiRSGDE3SingleRegionMatchesShape(t *testing.T) {
	eval := &jointFuncEvaluator{fns: []func(skeleton.Config) []float64{schaffer}}
	res, err := MultiRSGDE3([]skeleton.Space{schafferSpace()}, eval, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions[0].Front) == 0 {
		t.Fatal("empty front")
	}
}

func TestMultiRSGDE3Validation(t *testing.T) {
	eval := &jointFuncEvaluator{fns: []func(skeleton.Config) []float64{schaffer}}
	if _, err := MultiRSGDE3(nil, eval, Options{}); err == nil {
		t.Error("no regions accepted")
	}
	if _, err := MultiRSGDE3([]skeleton.Space{{}}, eval, Options{}); err == nil {
		t.Error("invalid space accepted")
	}
}
