package optimizer_test

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"autotune/internal/objective"
	"autotune/internal/optimizer"
	"autotune/internal/pareto"
	"autotune/internal/rts"
	"autotune/internal/skeleton"
)

func islandSpace() skeleton.Space {
	return skeleton.Space{Params: []skeleton.Param{
		{Name: "t1", Kind: skeleton.TileSize, Min: 1, Max: 64},
		{Name: "t2", Kind: skeleton.TileSize, Min: 1, Max: 64},
		{Name: "threads", Kind: skeleton.ThreadCount, Min: 1, Max: 16},
	}}
}

// deterministicFn is a smooth two-objective landscape with a genuine
// trade-off (small tiles favour f1, large favour f2) and no randomness.
func deterministicFn(cfg skeleton.Config) []float64 {
	if len(cfg) != 3 {
		return nil
	}
	a, b, th := float64(cfg[0]), float64(cfg[1]), float64(cfg[2])
	f1 := math.Abs(a-20) + math.Abs(b-30) + 100/th
	f2 := a + b + 3*th
	return []float64{f1, f2}
}

func newDetEval() *objective.CachingEvaluator {
	return objective.NewCachingEvaluator([]string{"f1", "f2"}, 8, deterministicFn)
}

// frontFingerprint renders a front canonically so two fronts can be
// compared byte for byte.
func frontFingerprint(front []pareto.Point) string {
	var sb strings.Builder
	for _, p := range front {
		cfg, _ := p.Payload.(skeleton.Config)
		fmt.Fprintf(&sb, "%s=%v;", cfg.Key(), p.Objectives)
	}
	return sb.String()
}

// TestIslandDeterminism runs the island driver repeatedly — across
// GOMAXPROCS settings — with a fixed (seed, W, M) and requires
// byte-identical fronts every time. This is the reproducibility
// guarantee documented on the public API.
func TestIslandDeterminism(t *testing.T) {
	space := islandSpace()
	opt := optimizer.Options{PopSize: 16, MaxIterations: 8, Seed: 7}
	iopt := optimizer.IslandOptions{Islands: 4, MigrationInterval: 2}
	run := func() string {
		res, err := optimizer.RSGDE3Islands(space, newDetEval(), opt, iopt)
		if err != nil {
			t.Fatal(err)
		}
		return frontFingerprint(res.Front)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	want := run()
	if want == "" {
		t.Fatal("empty front")
	}
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 2; rep++ {
			if got := run(); got != want {
				t.Fatalf("GOMAXPROCS=%d rep %d: front diverged\n got: %s\nwant: %s",
					procs, rep, got, want)
			}
		}
	}
}

// TestIslandDeterminismNSGA2 covers the same guarantee for the NSGA-II
// island driver.
func TestIslandDeterminismNSGA2(t *testing.T) {
	space := islandSpace()
	opt := optimizer.NSGA2Options{PopSize: 16, MaxGenerations: 8, Seed: 11}
	iopt := optimizer.IslandOptions{Islands: 3, MigrationInterval: 2}
	run := func() string {
		res, err := optimizer.NSGA2Islands(space, newDetEval(), opt, iopt)
		if err != nil {
			t.Fatal(err)
		}
		return frontFingerprint(res.Front)
	}
	want := run()
	for rep := 0; rep < 3; rep++ {
		if got := run(); got != want {
			t.Fatalf("rep %d: front diverged\n got: %s\nwant: %s", rep, got, want)
		}
	}
}

// TestIslandSingleMatchesSerial anchors W=1 to the serial algorithm:
// one island with the serial seed must discover exactly the serial
// front (the island path adds only canonical ordering).
func TestIslandSingleMatchesSerial(t *testing.T) {
	space := islandSpace()
	opt := optimizer.Options{PopSize: 16, MaxIterations: 10, Seed: 3}
	serial, err := optimizer.RSGDE3(space, newDetEval(), opt)
	if err != nil {
		t.Fatal(err)
	}
	island, err := optimizer.RSGDE3Islands(space, newDetEval(), opt,
		optimizer.IslandOptions{Islands: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Evaluations != island.Evaluations {
		t.Fatalf("evaluations diverged: serial %d, island %d", serial.Evaluations, island.Evaluations)
	}
	want := map[string]bool{}
	for _, p := range serial.Front {
		want[frontFingerprint([]pareto.Point{p})] = true
	}
	if len(island.Front) != len(serial.Front) {
		t.Fatalf("front sizes diverged: serial %d, island %d", len(serial.Front), len(island.Front))
	}
	for _, p := range island.Front {
		if !want[frontFingerprint([]pareto.Point{p})] {
			t.Fatalf("island point %v not in serial front", p)
		}
	}
}

// TestIslandEvaluatorFaults drives the island driver over an evaluator
// whose failures come from the runtime fault injector: the search must
// absorb failed evaluations (nil vectors) without panicking, keep E
// strictly to successful distinct evaluations, and still produce a
// mutually non-dominating front. Run under -race this also exercises
// the shared-cache and injector locking.
func TestIslandEvaluatorFaults(t *testing.T) {
	injector := &rts.FaultInjector{ErrorRate: 0.3, Seed: 5}
	var failures atomic.Int64
	fn := func(cfg skeleton.Config) []float64 {
		if err := injector.Apply(0); err != nil {
			if !errors.Is(err, rts.ErrInjected) {
				t.Errorf("unexpected injector error: %v", err)
			}
			failures.Add(1)
			return nil
		}
		return deterministicFn(cfg)
	}
	eval := objective.NewCachingEvaluator([]string{"f1", "f2"}, 8, fn)
	res, err := optimizer.RSGDE3Islands(islandSpace(), eval, optimizer.Options{
		PopSize: 16, MaxIterations: 8, Seed: 9,
	}, optimizer.IslandOptions{Islands: 4, MigrationInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	if failures.Load() == 0 {
		t.Fatal("fault injector never fired; the test exercised nothing")
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front despite partial failures")
	}
	for i, p := range res.Front {
		for j, q := range res.Front {
			if i != j && pareto.Dominates(p.Objectives, q.Objectives) {
				t.Fatalf("front point %v dominates %v", p.Objectives, q.Objectives)
			}
		}
	}
	injected, _ := injector.Counts()
	if int64(injected) != failures.Load() {
		t.Fatalf("injector reports %d errors, evaluator observed %d", injected, failures.Load())
	}
}

// TestIslandWallClockSpeedup is the acceptance benchmark of the island
// model: with a 5ms-per-evaluation evaluator and an equal generation
// budget (serial runs W× the generations of the W-island run), four
// islands must finish at least 2× faster than the serial driver —
// sequential generation depth is traded for parallel width.
func TestIslandWallClockSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short mode")
	}
	space := islandSpace()
	const delay = 5 * time.Millisecond
	const w = 4
	slowEval := func() *objective.CachingEvaluator {
		return objective.NewCachingEvaluator([]string{"f1", "f2"}, w*64,
			func(cfg skeleton.Config) []float64 {
				time.Sleep(delay)
				return deterministicFn(cfg)
			})
	}
	opt := optimizer.Options{PopSize: 24, Seed: 1, Stagnation: 1 << 20}

	serialOpt := opt
	serialOpt.MaxIterations = 16
	start := time.Now()
	serial, err := optimizer.RSGDE3(space, slowEval(), serialOpt)
	if err != nil {
		t.Fatal(err)
	}
	serialTime := time.Since(start)

	islandOpt := opt
	islandOpt.MaxIterations = 16 / w
	start = time.Now()
	island, err := optimizer.RSGDE3Islands(space, slowEval(), islandOpt,
		optimizer.IslandOptions{Islands: w, MigrationInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	islandTime := time.Since(start)

	if len(serial.Front) == 0 || len(island.Front) == 0 {
		t.Fatal("empty front")
	}
	ratio := float64(serialTime) / float64(islandTime)
	t.Logf("serial %v (E=%d) vs %d islands %v (E=%d): %.2fx",
		serialTime, serial.Evaluations, w, islandTime, island.Evaluations, ratio)
	if ratio < 2 {
		t.Fatalf("islands only %.2fx faster than serial (serial %v, islands %v); want >= 2x",
			ratio, serialTime, islandTime)
	}
}

// TestGDE3IslandsDisablesRoughSet smoke-tests the GDE3 island variant
// and checks it behaves deterministically like its serial ablation.
func TestGDE3IslandsDisablesRoughSet(t *testing.T) {
	space := islandSpace()
	opt := optimizer.Options{PopSize: 12, MaxIterations: 6, Seed: 5}
	iopt := optimizer.IslandOptions{Islands: 2, MigrationInterval: 3}
	a, err := optimizer.GDE3Islands(space, newDetEval(), opt, iopt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := optimizer.GDE3Islands(space, newDetEval(), opt, iopt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Front) == 0 {
		t.Fatal("empty front")
	}
	if frontFingerprint(a.Front) != frontFingerprint(b.Front) {
		t.Fatal("GDE3 islands not deterministic")
	}
}

// TestIslandOptionsValidation rejects out-of-range island parameters
// (zero values select defaults; negatives are errors).
func TestIslandOptionsValidation(t *testing.T) {
	space := islandSpace()
	opt := optimizer.Options{PopSize: 8, MaxIterations: 2}
	cases := []optimizer.IslandOptions{
		{Islands: -1},
		{Islands: 2, MigrationInterval: -3},
		{Islands: 2, Migrants: -1},
	}
	for _, iopt := range cases {
		if _, err := optimizer.RSGDE3Islands(space, newDetEval(), opt, iopt); err == nil {
			t.Fatalf("RSGDE3Islands accepted invalid options %+v", iopt)
		}
		if _, err := optimizer.NSGA2Islands(space, newDetEval(),
			optimizer.NSGA2Options{PopSize: 8, MaxGenerations: 2}, iopt); err == nil {
			t.Fatalf("NSGA2Islands accepted invalid options %+v", iopt)
		}
	}
	bad := skeleton.Space{}
	if _, err := optimizer.RSGDE3Islands(bad, newDetEval(), opt, optimizer.IslandOptions{}); err == nil {
		t.Fatal("RSGDE3Islands accepted an empty space")
	}
	if _, err := optimizer.NSGA2Islands(bad, newDetEval(), optimizer.NSGA2Options{}, optimizer.IslandOptions{}); err == nil {
		t.Fatal("NSGA2Islands accepted an empty space")
	}
}
