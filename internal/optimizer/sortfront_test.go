package optimizer

import (
	"testing"

	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

// TestSortFrontCanonicalOrder pins the tie-breaking rules the island
// merge relies on for byte-identical reproducibility: objectives
// compare lexicographically, shorter vectors sort first on a shared
// prefix, and fully equal objectives fall back to the config key.
func TestSortFrontCanonicalOrder(t *testing.T) {
	pts := []pareto.Point{
		{Objectives: []float64{2, 1}, Payload: skeleton.Config{9}},
		{Objectives: []float64{1, 2}, Payload: skeleton.Config{8}},
		{Objectives: []float64{1, 1}, Payload: skeleton.Config{7}},
		{Objectives: []float64{1, 1}, Payload: skeleton.Config{3}},
		{Objectives: []float64{1}, Payload: skeleton.Config{5}},
	}
	wantKeys := []string{"5", "3", "7", "8", "9"}
	for rep := 0; rep < 2; rep++ { // second pass checks idempotence
		sortFront(pts)
		for i, want := range wantKeys {
			cfg, ok := pts[i].Payload.(skeleton.Config)
			if !ok || cfg.Key() != want {
				t.Fatalf("rep %d position %d: got payload %v, want key %s",
					rep, i, pts[i].Payload, want)
			}
		}
	}
}

// TestSortFrontForeignPayload checks sortFront tolerates payloads that
// are not configs (it still orders by objectives and must not panic).
func TestSortFrontForeignPayload(t *testing.T) {
	pts := []pareto.Point{
		{Objectives: []float64{3}, Payload: "b"},
		{Objectives: []float64{1}, Payload: "a"},
		{Objectives: []float64{2}, Payload: skeleton.Config{1}},
	}
	sortFront(pts)
	for i, want := range []float64{1, 2, 3} {
		if pts[i].Objectives[0] != want {
			t.Fatalf("position %d: got %v want %g", i, pts[i].Objectives, want)
		}
	}
}
