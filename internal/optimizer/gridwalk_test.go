package optimizer

import (
	"encoding/json"
	"runtime"
	"sort"
	"testing"

	"autotune/internal/skeleton"
)

// TestStridedOrderIsPermutation: the coprime-strided visit order is a
// permutation of 0..n-1 for a sweep of sizes.
func TestStridedOrderIsPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 100, 1000, 1024} {
		order := stridedOrder(n)
		if len(order) != n {
			t.Fatalf("n=%d: len=%d", n, len(order))
		}
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("n=%d: not a permutation at %d", n, i)
			}
			seen[i] = true
		}
	}
	if stridedOrder(0) != nil {
		t.Fatal("stridedOrder(0) != nil")
	}
}

// TestGridWalkerEarlyCoverage: a truncated prefix of the walk must
// already spread across the first dimension — the property that makes
// a budget-capped grid contender useful. A lexicographic sweep would
// pin the first dimension for the whole prefix.
func TestGridWalkerEarlyCoverage(t *testing.T) {
	cfg := StrategyConfig{Options: Options{PopSize: 8}.withDefaults(), RandomBudget: 256}
	cfg.Options.PopSize = 8
	g := newGridWalker(schafferSpace(), newFuncEvaluator(schaffer), cfg, 0).(*gridWalker)
	prefix := g.cfgs[:16]
	vals := map[int64]bool{}
	for _, c := range prefix {
		vals[c[0]] = true
	}
	if len(vals) < 8 {
		t.Fatalf("first 16 grid points hold only %d distinct first-dimension values", len(vals))
	}
}

// TestGridStrategyRunsAndRespectsBudget: the registered strategy
// sweeps at most RandomBudget configurations, deterministically.
func TestGridStrategyRunsAndRespectsBudget(t *testing.T) {
	run := func() *Result {
		eval := newFuncEvaluator(schaffer)
		cfg := StrategyConfig{Options: Options{PopSize: 8, Seed: 3}, RandomBudget: 100}
		res, err := runStrategy("grid", schafferSpace(), eval, cfg, IslandOptions{}, false, Control{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Evaluations == 0 || res.Evaluations > 100 {
			t.Fatalf("grid consumed %d evaluations, budget 100", res.Evaluations)
		}
		if len(res.Front) == 0 {
			t.Fatal("grid produced no front")
		}
		return res
	}
	a, _ := json.Marshal(run().Front)
	b, _ := json.Marshal(run().Front)
	if string(a) != string(b) {
		t.Fatal("grid sweep is not deterministic")
	}
}

// TestGridWalkerPointsScaleWithBudget: the per-dimension resolution
// follows the budget and clamps to the span.
func TestGridWalkerPointsScaleWithBudget(t *testing.T) {
	space := schafferSpace() // dims: 2001 x 11
	p := gridWalkerPoints(space, 100)
	if p[0] != 10 || p[1] != 10 {
		t.Fatalf("points(100) = %v, want [10 10]", p)
	}
	p = gridWalkerPoints(space, 3)
	if p[0] != 2 {
		t.Fatalf("points(3) = %v, want the floor of 2", p)
	}
	tiny := skeleton.Space{Params: []skeleton.Param{{Name: "only", Min: 5, Max: 5}}}
	g, err := RegularGrid(tiny, gridWalkerPoints(tiny, 100))
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 1 {
		t.Fatalf("1-value dimension produced %d grid points", g.Size())
	}
}

// TestGridRacesDeterministically: a race that includes the grid
// contender (the default set does, now) stays byte-identical across
// GOMAXPROCS.
func TestGridRacesDeterministically(t *testing.T) {
	var want []byte
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		rr, err := Race(schafferSpace(), newFuncEvaluator(schaffer), raceTestConfig(), RaceOptions{
			Strategies:   []string{"grid", "random", "rs-gde3"},
			Interval:     2,
			Budget:       120,
			MinSurvivors: 1,
		})
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, 0, len(rr.Standings))
		for _, s := range rr.Standings {
			names = append(names, s.Strategy)
		}
		sort.Strings(names)
		if names[0] != "grid" {
			t.Fatalf("grid missing from standings: %v", names)
		}
		got, _ := json.Marshal(rr.Front)
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("GOMAXPROCS=%d changes the grid race front", procs)
		}
	}
}
