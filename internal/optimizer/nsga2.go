// NSGA-II: the classic multi-objective genetic algorithm, provided as
// an additional comparison baseline beyond the paper's three
// strategies. It shares the non-dominated-sorting and crowding-distance
// machinery with GDE3's truncation step but uses binary-tournament
// selection, uniform crossover and integer mutation instead of
// differential evolution, making it a meaningful algorithmic contrast
// for the ablation benchmarks.

package optimizer

import (
	"math"

	"autotune/internal/objective"
	"autotune/internal/pareto"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

// NSGA2Options configures the NSGA-II baseline. Zero values pick
// defaults matching the RS-GDE3 configuration where applicable.
type NSGA2Options struct {
	// PopSize is the population size (default 30).
	PopSize int
	// CrossoverRate is the per-gene uniform crossover probability
	// (default 0.5).
	CrossoverRate float64
	// MutationRate is the per-gene mutation probability (default
	// 1/dim).
	MutationRate float64
	// Stagnation stops the run after this many non-improving
	// generations (default 3).
	Stagnation int
	// MaxGenerations caps the run (default 200).
	MaxGenerations int
	// Seed drives the random source.
	Seed int64
	// InitialPopulation holds warm-start configurations injected ahead
	// of the random members of the initial population (see
	// Options.InitialPopulation).
	InitialPopulation []skeleton.Config
}

func (o NSGA2Options) withDefaults(dim int) NSGA2Options {
	if o.PopSize == 0 {
		o.PopSize = 30
	}
	if o.CrossoverRate == 0 {
		o.CrossoverRate = 0.5
	}
	if o.MutationRate == 0 {
		o.MutationRate = 1 / float64(dim)
	}
	if o.Stagnation == 0 {
		o.Stagnation = 3
	}
	if o.MaxGenerations == 0 {
		o.MaxGenerations = 200
	}
	return o
}

// nsga2Island is one self-contained NSGA-II search instance — the
// NSGA-II counterpart of gdeIsland, sharing the same island-evolver
// surface so the island-model driver can run either algorithm.
type nsga2Island struct {
	space    skeleton.Space
	eval     objective.Evaluator
	opt      NSGA2Options
	rng      *stats.CountedRand
	pop      []individual
	archive  *pareto.Archive
	stagnant int
}

// newNSGA2Island seeds and evaluates the initial population. opt must
// already carry defaults.
func newNSGA2Island(space skeleton.Space, eval objective.Evaluator, opt NSGA2Options, seed int64) *nsga2Island {
	n := &nsga2Island{
		space:   space,
		eval:    eval,
		opt:     opt,
		rng:     stats.NewCountedRand(seed),
		archive: pareto.NewArchive(),
	}
	n.pop = make([]individual, opt.PopSize)
	cfgs := seededPopulation(space, opt.InitialPopulation, opt.PopSize, n.rng.Rand)
	objs := eval.Evaluate(cfgs)
	for i := range n.pop {
		n.pop[i] = individual{cfg: cfgs[i], objs: objs[i]}
		if objs[i] != nil {
			n.archive.Add(pareto.Point{Payload: cfgs[i], Objectives: objs[i]})
		}
	}
	return n
}

// done reports whether the stagnation stopping rule has fired.
func (n *nsga2Island) done() bool { return n.stagnant >= n.opt.Stagnation }

// step runs one NSGA-II generation: binary-tournament selection,
// uniform crossover, integer mutation, archive update and elitist
// environmental selection.
func (n *nsga2Island) step() {
	pop := n.pop
	rng := n.rng
	opt := n.opt
	ranks := nonDominatedSort(pop)
	rankOf := make([]int, len(pop))
	for r, members := range ranks {
		for _, i := range members {
			rankOf[i] = r
		}
	}
	// Crowding per rank for tournament tie-breaking.
	crowd := make([]float64, len(pop))
	for _, members := range ranks {
		d := crowdingDistance(pop, members)
		for k, i := range members {
			crowd[i] = d[k]
		}
	}
	tournament := func() individual {
		a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
		switch {
		case rankOf[a] < rankOf[b]:
			return pop[a]
		case rankOf[b] < rankOf[a]:
			return pop[b]
		case crowd[a] >= crowd[b]:
			return pop[a]
		default:
			return pop[b]
		}
	}
	// Offspring generation.
	children := make([]skeleton.Config, opt.PopSize)
	for i := range children {
		p1, p2 := tournament(), tournament()
		child := p1.cfg.Clone()
		for g := range child {
			if rng.Float64() < opt.CrossoverRate && g < len(p2.cfg) {
				child[g] = p2.cfg[g]
			}
			if rng.Float64() < opt.MutationRate {
				p := n.space.Params[g]
				// Polynomial-ish integer mutation: gaussian step
				// scaled to a tenth of the range.
				span := float64(p.Max - p.Min)
				step := int64(math.Round(rng.NormFloat64() * span / 10))
				child[g] += step
			}
		}
		children[i] = n.space.Clip(child)
	}
	childObjs := n.eval.Evaluate(children)
	improved := false
	combined := append([]individual{}, pop...)
	for i := range children {
		combined = append(combined, individual{cfg: children[i], objs: childObjs[i]})
		if childObjs[i] != nil &&
			n.archive.Add(pareto.Point{Payload: children[i], Objectives: childObjs[i]}) {
			improved = true
		}
	}
	n.pop = truncate(combined, opt.PopSize)
	if improved {
		n.stagnant = 0
	} else {
		n.stagnant++
	}
}

// population exposes the current individuals for migration.
func (n *nsga2Island) population() []individual { return n.pop }

// inject replaces the island's worst members with the given migrants.
func (n *nsga2Island) inject(migrants []individual) { replaceWorst(n.pop, migrants) }

// points returns the island's archived front.
func (n *nsga2Island) points() []pareto.Point { return n.archive.Points() }

// snapshot serializes the island's state for checkpointing.
func (n *nsga2Island) snapshot() IslandState {
	return snapshotState(n.pop, n.archive, n.stagnant, n.rng.Draws())
}

// restoreNSGA2Island rebuilds an island from a checkpointed state: the
// RNG is reseeded and fast-forwarded to the checkpointed draw count,
// and population and archive are restored verbatim (no re-evaluation —
// objective vectors travel with the snapshot). opt must already carry
// defaults.
func restoreNSGA2Island(space skeleton.Space, eval objective.Evaluator, opt NSGA2Options, seed int64, st IslandState) *nsga2Island {
	n := &nsga2Island{
		space:    space,
		eval:     eval,
		opt:      opt,
		rng:      stats.NewCountedRand(seed),
		archive:  restoreArchive(st.Archive),
		stagnant: st.Stagnant,
	}
	n.rng.Skip(st.Draws)
	n.pop = make([]individual, len(st.Pop))
	for i, m := range st.Pop {
		n.pop[i] = restoreMember(m)
	}
	return n
}

// NSGA2 runs the NSGA-II baseline on the given space and evaluator.
func NSGA2(space skeleton.Space, eval objective.Evaluator, opt NSGA2Options) (*Result, error) {
	return NSGA2Controlled(space, eval, opt, Control{})
}
