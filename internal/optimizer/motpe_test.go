package optimizer

import (
	"encoding/json"
	"testing"

	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

func motpeTestOptions() Options {
	return Options{PopSize: 12, MaxIterations: 12, Stagnation: 13, Seed: 1}
}

func TestMOTPEFindsSchafferFront(t *testing.T) {
	eval := newFuncEvaluator(schaffer)
	res, err := MOTPE(schafferSpace(), eval, motpeTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for i := range res.Front {
		for j := range res.Front {
			if i != j && pareto.Dominates(res.Front[i].Objectives, res.Front[j].Objectives) {
				t.Fatal("front contains dominated point")
			}
		}
	}
	if res.Evaluations <= 0 || res.Iterations <= 0 {
		t.Fatalf("metrics: E=%d iters=%d", res.Evaluations, res.Iterations)
	}
}

func TestMOTPEDeterministic(t *testing.T) {
	a, err := MOTPE(schafferSpace(), newFuncEvaluator(schaffer), motpeTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MOTPE(schafferSpace(), newFuncEvaluator(schaffer), motpeTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a.Front)
	bj, _ := json.Marshal(b.Front)
	if string(aj) != string(bj) || a.Evaluations != b.Evaluations {
		t.Fatalf("same seed differs: %d evals vs %d evals", a.Evaluations, b.Evaluations)
	}
}

func TestMOTPEHandlesFailedEvaluations(t *testing.T) {
	// Half the space fails: with fewer than four successful
	// observations MOTPE must fall back to uniform sampling instead of
	// fitting a density model, and failed points must never reach the
	// archive.
	eval := newFuncEvaluator(func(c skeleton.Config) []float64 {
		if c[0] < 0 {
			return nil
		}
		return schaffer(c)
	})
	res, err := MOTPE(schafferSpace(), eval, motpeTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Front {
		if p.Objectives == nil {
			t.Fatal("failed evaluation reached the front")
		}
		if p.Payload.(skeleton.Config)[0] < 0 {
			t.Fatal("front contains a config from the failing half-space")
		}
	}
}

func TestMOTPESnapshotRestoreRoundTrip(t *testing.T) {
	space := schafferSpace()
	opt := motpeTestOptions()
	eval := newFuncEvaluator(schaffer)
	orig := newMOTPEIsland(space, eval, opt, opt.Seed)
	orig.step()
	orig.step()
	st := orig.snapshot()

	restored := restoreMOTPEIsland(space, eval, opt, opt.Seed, st)
	orig.step()
	restored.step()

	oj, _ := json.Marshal(orig.points())
	rj, _ := json.Marshal(restored.points())
	if string(oj) != string(rj) {
		t.Fatalf("restored island diverges after one step:\n%s\nvs\n%s", oj, rj)
	}
}

func TestMOTPESplitNeedsFourSuccesses(t *testing.T) {
	m := &motpeIsland{space: schafferSpace(), opt: motpeTestOptions()}
	for i := 0; i < 3; i++ {
		m.obs = append(m.obs, individual{cfg: skeleton.Config{int64(i), 0}, objs: []float64{float64(i), float64(-i)}})
	}
	m.obs = append(m.obs, individual{cfg: skeleton.Config{9, 0}, objs: nil}) // failed
	if good, bad := m.splitObservations(); good != nil || bad != nil {
		t.Fatal("split fitted a model on fewer than four successful observations")
	}
	m.obs = append(m.obs, individual{cfg: skeleton.Config{4, 0}, objs: []float64{4, -4}})
	good, bad := m.splitObservations()
	if len(good) < 2 {
		t.Fatalf("good quartile has %d members, want at least 2", len(good))
	}
	if len(good)+len(bad) != 4 {
		t.Fatalf("split covers %d successful observations, want 4", len(good)+len(bad))
	}
}
