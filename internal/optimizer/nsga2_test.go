package optimizer

import (
	"testing"

	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

func TestNSGA2FindsSchafferFront(t *testing.T) {
	eval := newFuncEvaluator(schaffer)
	res, err := NSGA2(schafferSpace(), eval, NSGA2Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, p := range res.Front {
		x := float64(p.Payload.(skeleton.Config)[0]) / 100
		if x < -0.3 || x > 2.3 {
			t.Errorf("front point x = %v outside Pareto set", x)
		}
	}
	for i := range res.Front {
		for j := range res.Front {
			if i != j && pareto.Dominates(res.Front[i].Objectives, res.Front[j].Objectives) {
				t.Fatal("front contains dominated point")
			}
		}
	}
	if res.Evaluations == 0 || res.Iterations == 0 {
		t.Fatalf("metrics: %d/%d", res.Evaluations, res.Iterations)
	}
}

func TestNSGA2Deterministic(t *testing.T) {
	a, _ := NSGA2(schafferSpace(), newFuncEvaluator(schaffer), NSGA2Options{Seed: 4})
	b, _ := NSGA2(schafferSpace(), newFuncEvaluator(schaffer), NSGA2Options{Seed: 4})
	if len(a.Front) != len(b.Front) || a.Evaluations != b.Evaluations {
		t.Fatal("same seed differs")
	}
}

func TestNSGA2InvalidSpace(t *testing.T) {
	if _, err := NSGA2(skeleton.Space{}, newFuncEvaluator(schaffer), NSGA2Options{}); err == nil {
		t.Fatal("invalid space accepted")
	}
}

func TestNSGA2HandlesFailures(t *testing.T) {
	eval := newFuncEvaluator(func(c skeleton.Config) []float64 {
		if c[0]%2 == 0 {
			return nil
		}
		return schaffer(c)
	})
	res, err := NSGA2(schafferSpace(), eval, NSGA2Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Front {
		if p.Payload.(skeleton.Config)[0]%2 == 0 {
			t.Fatal("front contains failed configuration")
		}
	}
}

func TestNSGA2StagnationStops(t *testing.T) {
	eval := newFuncEvaluator(func(c skeleton.Config) []float64 { return []float64{1, 1} })
	res, err := NSGA2(schafferSpace(), eval, NSGA2Options{Seed: 3, Stagnation: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2", res.Iterations)
	}
}

// RS-GDE3 should converge with fewer evaluations than NSGA-II on the
// tiling-style problem (the reason the paper picked DE).
func TestNSGA2VersusRSGDE3(t *testing.T) {
	rsHV, nsHV := 0.0, 0.0
	hv := func(front []pareto.Point) float64 {
		var objs [][]float64
		for _, p := range front {
			objs = append(objs, p.Objectives)
		}
		v, err := pareto.NormalizedHypervolume(objs, []float64{0, 0}, []float64{4, 4})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for seed := int64(0); seed < 3; seed++ {
		rs, err := RSGDE3(schafferSpace(), newFuncEvaluator(schaffer), Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ns, err := NSGA2(schafferSpace(), newFuncEvaluator(schaffer), NSGA2Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rsHV += hv(rs.Front)
		nsHV += hv(ns.Front)
	}
	// Both must reach a decent front; exact ordering is problem
	// dependent, so only sanity is asserted.
	if rsHV/3 < 0.5 || nsHV/3 < 0.5 {
		t.Fatalf("poor convergence: rs=%.3f nsga2=%.3f", rsHV/3, nsHV/3)
	}
}
