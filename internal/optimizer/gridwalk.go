package optimizer

import (
	"math"

	"autotune/internal/objective"
	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

// gridWalker is the registered "grid" strategy: a deterministic coarse
// grid-subsampling sweep on the stepping evolver surface, the
// systematic counterpart of randomWalker. The per-dimension point
// count is derived from RandomBudget (the shared walker budget knob)
// so a grid contender races at the same cost as the random one, and
// the grid is visited in a coprime-strided order rather than
// lexicographically: after any prefix of the budget the visited points
// spread across the whole space instead of crawling along the first
// dimension, which is what makes a truncated sweep a usable racing
// contender. The walk is fully determined by the space and the budget
// — the seed is ignored.
type gridWalker struct {
	eval    objective.Evaluator
	cfgs    []skeleton.Config
	chunk   int
	next    int
	archive *pareto.Archive
}

// gridWalkerPoints derives the per-dimension point count: the largest
// k with k^dim <= budget, clamped to each dimension's span, never
// below 2 (a 1-point dimension pins the parameter to its minimum and
// explores nothing).
func gridWalkerPoints(space skeleton.Space, budget int) []int {
	d := space.Dim()
	k := int(math.Floor(math.Pow(float64(budget), 1/float64(d))))
	for k > 1 && pow(k, d) > budget {
		k--
	}
	if k < 2 {
		k = 2
	}
	points := make([]int, d)
	for i := range points {
		points[i] = k
	}
	return points
}

func pow(k, d int) int {
	out := 1
	for i := 0; i < d; i++ {
		out *= k
	}
	return out
}

// stridedOrder visits 0..n-1 by a fixed stride coprime to n (near the
// golden-ratio fraction of n, the classic low-discrepancy choice), so
// every prefix of the walk is spread uniformly over the index range.
func stridedOrder(n int) []int {
	if n <= 0 {
		return nil
	}
	stride := int(math.Round(float64(n) * 0.6180339887498949))
	if stride < 1 {
		stride = 1
	}
	for gcd(stride, n) != 1 {
		stride++
	}
	out := make([]int, n)
	at := 0
	for i := range out {
		out[i] = at
		at = (at + stride) % n
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func newGridWalker(space skeleton.Space, eval objective.Evaluator, cfg StrategyConfig, _ int64) islandEvolver {
	grid, err := RegularGrid(space, gridWalkerPoints(space, cfg.RandomBudget))
	if err != nil {
		// Unreachable for a validated space: point counts are >= 2.
		panic(err)
	}
	all := grid.configs(space)
	cfgs := make([]skeleton.Config, 0, len(all))
	for _, i := range stridedOrder(len(all)) {
		cfgs = append(cfgs, all[i])
	}
	if len(cfgs) > cfg.RandomBudget {
		cfgs = cfgs[:cfg.RandomBudget]
	}
	return &gridWalker{eval: eval, cfgs: cfgs, chunk: walkerChunk(cfg), archive: pareto.NewArchive()}
}

func (g *gridWalker) step() {
	hi := g.next + g.chunk
	if hi > len(g.cfgs) {
		hi = len(g.cfgs)
	}
	batch := g.cfgs[g.next:hi]
	g.next = hi
	objs := g.eval.Evaluate(batch)
	for i, o := range objs {
		if o != nil {
			g.archive.Add(pareto.Point{Payload: batch[i], Objectives: o})
		}
	}
}

func (g *gridWalker) done() bool { return g.next >= len(g.cfgs) }

func (g *gridWalker) population() []individual { return nil }

func (g *gridWalker) inject([]individual) {}

func (g *gridWalker) points() []pareto.Point { return g.archive.Points() }

// snapshot is never called: the grid strategy registers no Restore
// hook, so checkpointing is disabled for it.
func (g *gridWalker) snapshot() IslandState { return IslandState{} }

func init() {
	RegisterStrategy(Strategy{
		Name: "grid",
		New:  newGridWalker,
		Fingerprint: func(space skeleton.Space, cfg StrategyConfig, islands int, iopt IslandOptions) string {
			return fingerprintOf("grid", spaceKey(space), cfg.RandomBudget, islands)
		},
		MaxGenerations: func(cfg StrategyConfig) int {
			chunk := walkerChunk(cfg)
			return (cfg.RandomBudget + chunk - 1) / chunk
		},
		Normalize: func(space skeleton.Space, cfg StrategyConfig) StrategyConfig {
			cfg.Options = cfg.Options.withDefaults()
			if cfg.RandomBudget == 0 {
				cfg.RandomBudget = 1000
			}
			return cfg
		},
	})
}
