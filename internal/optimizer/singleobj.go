// Single-objective differential evolution: the classic DE/rand/1/bin
// scheme minimizing a fixed scalarization of the objectives. It exists
// as the contrast the paper's introduction draws — "most of these
// methods ... focus exclusively on a single optimization objective" —
// so the repository can quantify what multi-objective search buys:
// covering the whole trade-off with ONE run instead of re-running a
// single-objective tuner for every weight vector of interest.

package optimizer

import (
	"errors"
	"math"

	"autotune/internal/objective"
	"autotune/internal/pareto"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

// SingleObjectiveDE minimizes the weighted sum Σ w_c·f_c over the
// space using DE/rand/1/bin with the same CR/F/stagnation defaults as
// RS-GDE3. It returns a Result whose front holds exactly the single
// best configuration found (payload skeleton.Config).
func SingleObjectiveDE(space skeleton.Space, eval objective.Evaluator, weights []float64, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if len(weights) == 0 {
		return nil, errors.New("optimizer: single-objective DE needs weights")
	}
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, errors.New("optimizer: weights must be non-negative")
		}
	}
	scalar := func(objs []float64) float64 {
		if objs == nil || len(objs) != len(weights) {
			return math.Inf(1)
		}
		s := 0.0
		for c, w := range weights {
			s += w * objs[c]
		}
		return s
	}

	rng := stats.NewRand(opt.Seed)
	type member struct {
		cfg   skeleton.Config
		objs  []float64
		score float64
	}
	pop := make([]member, opt.PopSize)
	cfgs := make([]skeleton.Config, opt.PopSize)
	for i := range cfgs {
		cfgs[i] = space.Random(rng)
	}
	objs := eval.Evaluate(cfgs)
	best := member{score: math.Inf(1)}
	for i := range pop {
		pop[i] = member{cfg: cfgs[i], objs: objs[i], score: scalar(objs[i])}
		if pop[i].score < best.score {
			best = pop[i]
		}
	}

	box := space.FullBox()
	stagnant, iters := 0, 0
	for iters = 0; iters < opt.MaxIterations && stagnant < opt.Stagnation; iters++ {
		trials := make([]skeleton.Config, len(pop))
		for i := range pop {
			idx := pickDistinct(rng, len(pop), i, 3)
			b, c, d := pop[idx[0]].cfg, pop[idx[1]].cfg, pop[idx[2]].cfg
			dim := len(pop[i].cfg)
			r := make([]float64, dim)
			forced := rng.Intn(dim)
			for g := 0; g < dim; g++ {
				if rng.Float64() < opt.CR || g == forced {
					r[g] = float64(b[g]) + opt.F*float64(c[g]-d[g])
				} else {
					r[g] = float64(pop[i].cfg[g])
				}
			}
			trials[i] = box.ClosestTo(r)
		}
		trialObjs := eval.Evaluate(trials)
		improved := false
		for i := range trials {
			score := scalar(trialObjs[i])
			if score <= pop[i].score {
				pop[i] = member{cfg: trials[i], objs: trialObjs[i], score: score}
			}
			if score < best.score {
				best = member{cfg: trials[i], objs: trialObjs[i], score: score}
				improved = true
			}
		}
		if improved {
			stagnant = 0
		} else {
			stagnant++
		}
	}
	if math.IsInf(best.score, 1) {
		return nil, errors.New("optimizer: single-objective DE found no valid configuration")
	}
	return &Result{
		Front: []pareto.Point{{
			Payload:    best.cfg,
			Objectives: append([]float64(nil), best.objs...),
		}},
		Evaluations: eval.Evaluations(),
		Iterations:  iters,
	}, nil
}
