// Multi-region tuning: the paper's §III-A observes that when a program
// contains several tunable regions, "a single execution of the
// resulting program is sufficient to obtain measurements for all
// simultaneously tuned regions" — the compiler instantiates one
// candidate configuration per region per run and measures them all at
// once. MultiRSGDE3 implements exactly that coupling: one RS-GDE3
// population per region, advanced in lock-step, with each joint
// program execution carrying one trial from every region's population.

package optimizer

import (
	"errors"
	"fmt"

	"autotune/internal/pareto"
	"autotune/internal/roughset"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

// JointEvaluator evaluates aligned batches of per-region
// configurations: column i across all regions forms one program
// execution.
type JointEvaluator interface {
	// EvaluateJoint receives cfgs[r][i] — region r's configuration in
	// execution i (all rows share one length) — and returns
	// objs[r][i], the per-region objective vectors. A nil vector
	// marks a failed region instantiation.
	EvaluateJoint(cfgs [][]skeleton.Config) [][][]float64
	// Executions returns the number of program executions performed —
	// the multi-region counterpart of the E metric.
	Executions() int
	// ObjectiveNames labels the objective vector components.
	ObjectiveNames() []string
}

// MultiResult is the outcome of one multi-region run.
type MultiResult struct {
	// Regions holds one Result per region (evaluation counts are the
	// shared execution count).
	Regions []*Result
	// Executions is the total number of program executions.
	Executions int
	// Iterations is the number of lock-step iterations.
	Iterations int
}

// MultiRSGDE3 tunes all regions simultaneously. The run stops when
// every region's archive has stagnated for opt.Stagnation iterations
// (regions that converge early keep riding along at no extra cost —
// their trial slots are still filled, exactly as a real joint
// execution would).
func MultiRSGDE3(spaces []skeleton.Space, eval JointEvaluator, opt Options) (*MultiResult, error) {
	opt = opt.withDefaults()
	if len(spaces) == 0 {
		return nil, errors.New("optimizer: no regions")
	}
	for r, sp := range spaces {
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("optimizer: region %d: %w", r, err)
		}
	}
	rng := stats.NewRand(opt.Seed)
	nR := len(spaces)

	pops := make([][]individual, nR)
	archives := make([]*pareto.Archive, nR)
	stagnant := make([]int, nR)
	boxes := make([]skeleton.Box, nR)

	// Initial joint batch.
	init := make([][]skeleton.Config, nR)
	for r := range spaces {
		init[r] = make([]skeleton.Config, opt.PopSize)
		for i := range init[r] {
			init[r][i] = spaces[r].Random(rng)
		}
		boxes[r] = spaces[r].FullBox()
		archives[r] = pareto.NewArchive()
	}
	objs := eval.EvaluateJoint(init)
	if len(objs) != nR {
		return nil, errors.New("optimizer: joint evaluator returned wrong region count")
	}
	for r := range spaces {
		pops[r] = make([]individual, opt.PopSize)
		for i := range pops[r] {
			pops[r][i] = individual{cfg: init[r][i], objs: objs[r][i]}
			if objs[r][i] != nil {
				archives[r].Add(pareto.Point{Payload: init[r][i], Objectives: objs[r][i]})
			}
		}
	}

	allStagnated := func() bool {
		for r := range stagnant {
			if stagnant[r] < opt.Stagnation {
				return false
			}
		}
		return true
	}

	iters := 0
	for iters = 0; iters < opt.MaxIterations && !allStagnated(); iters++ {
		trials := make([][]skeleton.Config, nR)
		for r := range spaces {
			// A region that has stagnated for the full window is
			// frozen: subsequent joint executions simply replay its
			// current population (free — the execution happens for the
			// still-active regions anyway) and its search ends,
			// bounding the joint run by the slowest-converging region.
			if stagnant[r] >= opt.Stagnation {
				trials[r] = make([]skeleton.Config, len(pops[r]))
				for i := range pops[r] {
					trials[r][i] = pops[r][i].cfg
				}
				continue
			}
			if !opt.DisableRoughSet {
				nonDom, dom := splitPop(pops[r])
				if len(nonDom) >= 3 && stagnant[r] == 0 {
					boxes[r] = roughset.Reduce(spaces[r], nonDom, dom)
				} else {
					boxes[r] = spaces[r].FullBox()
				}
			}
			trials[r] = make([]skeleton.Config, len(pops[r]))
			for i := range pops[r] {
				trials[r][i] = mutate(pops[r][i].cfg, pops[r], i, boxes[r], opt, rng)
			}
		}
		trialObjs := eval.EvaluateJoint(trials)
		for r := range spaces {
			if stagnant[r] >= opt.Stagnation {
				continue // frozen
			}
			improved := false
			for i := range trials[r] {
				if trialObjs[r][i] == nil {
					continue
				}
				if archives[r].Add(pareto.Point{Payload: trials[r][i], Objectives: trialObjs[r][i]}) {
					improved = true
				}
			}
			pops[r] = gde3Select(pops[r], trials[r], trialObjs[r], opt.PopSize)
			if improved {
				stagnant[r] = 0
			} else {
				stagnant[r]++
			}
		}
	}
	out := &MultiResult{Executions: eval.Executions(), Iterations: iters}
	for r := range spaces {
		out.Regions = append(out.Regions, &Result{
			Front:       archives[r].Points(),
			Evaluations: eval.Executions(),
			Iterations:  iters,
		})
	}
	return out, nil
}
