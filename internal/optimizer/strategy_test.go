package optimizer

import (
	"reflect"
	"strings"
	"testing"

	"autotune/internal/skeleton"
)

func TestStrategyNamesSortedAndComplete(t *testing.T) {
	want := []string{"gde3", "grid", "motpe", "nsga2", "random", "rs-gde3"}
	if got := StrategyNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StrategyNames() = %v, want %v", got, want)
	}
	for _, name := range want {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatalf("%s not registered: %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("registry returned %q for %q", s.Name, name)
		}
	}
}

func TestStrategyByNameUnknown(t *testing.T) {
	_, err := StrategyByName("alien")
	if err == nil {
		t.Fatal("unknown strategy resolved")
	}
	// The error must list the valid names, sorted and deduplicated, so
	// the CLI can surface them verbatim (see cmd/autotune).
	msg := err.Error()
	names := StrategyNames()
	last := -1
	for _, name := range names {
		at := strings.Index(msg, name)
		if at < 0 {
			t.Fatalf("error %q does not mention %q", msg, name)
		}
		if at < last {
			t.Fatalf("error %q lists strategies out of sorted order", msg)
		}
		last = at
	}
	for _, name := range names {
		if strings.Count(msg, " "+name) > 1 {
			t.Fatalf("error %q lists %q more than once", msg, name)
		}
	}
}

func TestRegisterStrategyRejectsDuplicatesAndIncomplete(t *testing.T) {
	mustPanic := func(name string, s Strategy) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterStrategy did not panic", name)
			}
		}()
		RegisterStrategy(s)
	}
	dup, err := StrategyByName("gde3")
	if err != nil {
		t.Fatal(err)
	}
	mustPanic("duplicate", dup)
	mustPanic("incomplete", Strategy{Name: "test-incomplete"})
}

func TestWalkerChunkFollowsPopSize(t *testing.T) {
	if got := walkerChunk(StrategyConfig{}); got != randomChunk {
		t.Fatalf("default chunk = %d, want %d", got, randomChunk)
	}
	cfg := StrategyConfig{Options: Options{PopSize: 10}}
	if got := walkerChunk(cfg); got != 10 {
		t.Fatalf("chunk = %d, want PopSize 10", got)
	}
	// The registered generation cap must agree with the chunking, or a
	// raced random contender would stop before its budget is spent.
	strat, err := StrategyByName("random")
	if err != nil {
		t.Fatal(err)
	}
	cfg.RandomBudget = 25
	if got := strat.MaxGenerations(cfg); got != 3 {
		t.Fatalf("MaxGenerations = %d, want ceil(25/10) = 3", got)
	}
}

func TestIslandOptionsClampMigrantsToHalfPopulation(t *testing.T) {
	// Regression: Migrants >= PopSize used to let one migration wave
	// replace an entire island's population.
	base := IslandOptions{Islands: 2, MigrationInterval: 1}

	at := base
	at.Migrants = 8 // == PopSize: the boundary case
	if got := at.withDefaults(8).Migrants; got != 4 {
		t.Fatalf("Migrants == PopSize clamped to %d, want half the population (4)", got)
	}
	over := base
	over.Migrants = 100
	if got := over.withDefaults(8).Migrants; got != 4 {
		t.Fatalf("Migrants > PopSize clamped to %d, want 4", got)
	}
	tiny := base
	tiny.Migrants = 5
	if got := tiny.withDefaults(1).Migrants; got != 1 {
		t.Fatalf("single-member population clamped to %d, want 1", got)
	}
	within := base
	within.Migrants = 2
	if got := within.withDefaults(8).Migrants; got != 2 {
		t.Fatalf("in-range Migrants rewritten to %d, want 2 untouched", got)
	}
}

func TestIslandsSurviveMigrantsEqualPopSize(t *testing.T) {
	res, err := RSGDE3IslandsControlled(
		schafferSpace(), newFuncEvaluator(schaffer),
		Options{PopSize: 6, MaxIterations: 4, Stagnation: 5, Seed: 1},
		IslandOptions{Islands: 2, MigrationInterval: 1, Migrants: 6},
		Control{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front after boundary-migration run")
	}
}

func TestRandomWalkerSeedsWarmStartFirst(t *testing.T) {
	space := schafferSpace()
	cfg := StrategyConfig{
		Options: Options{
			Seed: 1,
			// One seed of the wrong dimension (skipped), one valid.
			InitialPopulation: []skeleton.Config{{1}, {150, 5}},
		},
		RandomBudget: 8,
	}
	w, ok := newRandomWalker(space, newFuncEvaluator(schaffer), cfg, 1).(*randomWalker)
	if !ok {
		t.Fatal("random strategy no longer builds a randomWalker")
	}
	if len(w.cfgs) != 8 {
		t.Fatalf("pre-drew %d configurations, want the budget of 8", len(w.cfgs))
	}
	if !reflect.DeepEqual(w.cfgs[0], skeleton.Config{150, 5}) {
		t.Fatalf("first proposal %v, want the warm-start seed", w.cfgs[0])
	}
	for _, c := range w.cfgs {
		if len(c) != space.Dim() {
			t.Fatalf("proposal %v has wrong dimension", c)
		}
	}
}
