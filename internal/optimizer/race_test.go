package optimizer

import (
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"autotune/internal/skeleton"
)

func raceTestConfig() StrategyConfig {
	return StrategyConfig{
		Options:      Options{PopSize: 8, MaxIterations: 6, Stagnation: 7, Seed: 1},
		RandomBudget: 64,
	}
}

func raceTestOptions() RaceOptions {
	return RaceOptions{
		Strategies:   StrategyNames(),
		Interval:     2,
		Budget:       150,
		MinSurvivors: 2,
	}
}

// TestRaceDeterministicAcrossGOMAXPROCS is the racing determinism
// gate: a fixed seed must yield a byte-identical merged front and
// standings regardless of runtime parallelism. CI runs this under
// -race with GOMAXPROCS 1 and 4.
func TestRaceDeterministicAcrossGOMAXPROCS(t *testing.T) {
	var want []byte
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		rr, err := Race(schafferSpace(), newFuncEvaluator(schaffer), raceTestConfig(), raceTestOptions())
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(struct {
			Front     interface{}
			Standings []Standing
		}{rr.Front, rr.Standings})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("GOMAXPROCS=%d changes the race outcome:\n%s\nvs\n%s", procs, got, want)
		}
	}
}

func TestRaceRespectsBudgetExactly(t *testing.T) {
	ropt := raceTestOptions()
	ropt.Budget = 60
	rr, err := Race(schafferSpace(), newFuncEvaluator(schaffer), raceTestConfig(), ropt)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Evaluations > ropt.Budget {
		t.Fatalf("race consumed %d evaluations, budget %d", rr.Evaluations, ropt.Budget)
	}
	if rr.Evaluations == 0 || len(rr.Front) == 0 {
		t.Fatalf("race did no work: E=%d |front|=%d", rr.Evaluations, len(rr.Front))
	}
}

func TestRaceCancellationReturnsPartialFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rr, err := RaceControlled(schafferSpace(), newFuncEvaluator(schaffer), raceTestConfig(), raceTestOptions(), Control{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Partial {
		t.Fatal("cancelled race not flagged Partial")
	}
	if len(rr.Front) == 0 {
		t.Fatal("cancelled race should still return the merged best-so-far front")
	}
}

func TestRaceResumeRejected(t *testing.T) {
	_, err := RaceControlled(schafferSpace(), newFuncEvaluator(schaffer), raceTestConfig(), raceTestOptions(), Control{Resume: &Snapshot{}})
	if err == nil || !strings.Contains(err.Error(), "cannot resume") {
		t.Fatalf("resume accepted: %v", err)
	}
}

func TestRaceOptionValidation(t *testing.T) {
	cases := []RaceOptions{
		{Strategies: []string{"rs-gde3"}},                       // one contender
		{Strategies: []string{"rs-gde3", "rs-gde3"}},            // duplicate
		{Strategies: []string{"rs-gde3", "alien"}},              // unregistered
		{Strategies: []string{"rs-gde3", "gde3"}, Interval: -1}, // bad interval
		{Strategies: []string{"rs-gde3", "gde3"}, Budget: -1},   // bad budget
		{Strategies: []string{"rs-gde3", "gde3"}, MinSurvivors: -1},
	}
	for i, ropt := range cases {
		if _, err := Race(schafferSpace(), newFuncEvaluator(schaffer), raceTestConfig(), ropt); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, ropt)
		}
	}
}

func TestRaceStandingsAndElimination(t *testing.T) {
	ropt := raceTestOptions()
	ropt.Interval = 1
	ropt.MinSurvivors = 1
	rr, err := Race(schafferSpace(), newFuncEvaluator(schaffer), raceTestConfig(), ropt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Standings) != len(ropt.Strategies) {
		t.Fatalf("standings cover %d contenders, want %d", len(rr.Standings), len(ropt.Strategies))
	}
	eliminated := 0
	for i, s := range rr.Standings {
		if i > 0 && s.Score > rr.Standings[i-1].Score {
			t.Fatal("standings not sorted best-first")
		}
		if s.Eliminated {
			eliminated++
			if s.EliminatedAt < 1 {
				t.Fatalf("%s eliminated at generation %d", s.Strategy, s.EliminatedAt)
			}
		}
	}
	if eliminated == 0 {
		t.Fatal("interval-1 race eliminated nobody")
	}
	if len(rr.Reference) == 0 {
		t.Fatal("no shared reference recorded")
	}
	// The merged front folds every contender's archive, so it must be
	// mutually non-dominated and non-empty.
	if len(rr.Front) == 0 {
		t.Fatal("empty merged front")
	}
}

func TestRaceWarmStartSeedsEveryContender(t *testing.T) {
	seed := skeleton.Config{150, 5}
	cfg := raceTestConfig()
	cfg.Options.InitialPopulation = []skeleton.Config{seed}
	eval := newFuncEvaluator(schaffer)
	if _, err := Race(schafferSpace(), eval, cfg, raceTestOptions()); err != nil {
		t.Fatal(err)
	}
	if _, ok := eval.seen[seed.Key()]; !ok {
		t.Fatal("warm-start seed configuration never evaluated by the race")
	}
}
