package optimizer

import (
	"math"
	"sync"
	"testing"

	"autotune/internal/pareto"
	"autotune/internal/skeleton"
)

// funcEvaluator adapts a plain function to objective.Evaluator for
// testing on synthetic problems with known Pareto fronts.
type funcEvaluator struct {
	mu    sync.Mutex
	fn    func(skeleton.Config) []float64
	seen  map[string][]float64
	names []string
}

func newFuncEvaluator(fn func(skeleton.Config) []float64) *funcEvaluator {
	return &funcEvaluator{fn: fn, seen: map[string][]float64{}, names: []string{"f1", "f2"}}
}

func (e *funcEvaluator) Evaluate(cfgs []skeleton.Config) [][]float64 {
	out := make([][]float64, len(cfgs))
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, c := range cfgs {
		key := c.Key()
		if v, ok := e.seen[key]; ok {
			out[i] = v
			continue
		}
		v := e.fn(c)
		e.seen[key] = v
		out[i] = v
	}
	return out
}

func (e *funcEvaluator) ObjectiveNames() []string { return e.names }

func (e *funcEvaluator) Evaluations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.seen)
}

// schaffer is a discretized Schaffer problem: f1 = x², f2 = (x-2)²
// with x = cfg[0]/100. The Pareto set is x in [0, 2].
func schaffer(c skeleton.Config) []float64 {
	x := float64(c[0]) / 100
	return []float64{x * x, (x - 2) * (x - 2)}
}

func schafferSpace() skeleton.Space {
	return skeleton.Space{Params: []skeleton.Param{
		{Name: "x", Min: -1000, Max: 1000},
		{Name: "pad", Min: 0, Max: 10}, // irrelevant dimension
	}}
}

func TestRSGDE3FindsSchafferFront(t *testing.T) {
	eval := newFuncEvaluator(schaffer)
	res, err := RSGDE3(schafferSpace(), eval, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, p := range res.Front {
		x := float64(p.Payload.(skeleton.Config)[0]) / 100
		if x < -0.2 || x > 2.2 {
			t.Errorf("front point x = %v outside Pareto set [0,2]", x)
		}
	}
	// Front members are mutually non-dominated.
	for i := range res.Front {
		for j := range res.Front {
			if i != j && pareto.Dominates(res.Front[i].Objectives, res.Front[j].Objectives) {
				t.Fatal("front contains dominated point")
			}
		}
	}
	if res.Evaluations <= 0 || res.Iterations <= 0 {
		t.Fatalf("metrics: E=%d iters=%d", res.Evaluations, res.Iterations)
	}
}

func TestRSGDE3Deterministic(t *testing.T) {
	a, _ := RSGDE3(schafferSpace(), newFuncEvaluator(schaffer), Options{Seed: 7})
	b, _ := RSGDE3(schafferSpace(), newFuncEvaluator(schaffer), Options{Seed: 7})
	if len(a.Front) != len(b.Front) || a.Evaluations != b.Evaluations {
		t.Fatalf("same seed differs: %d/%d vs %d/%d",
			len(a.Front), a.Evaluations, len(b.Front), b.Evaluations)
	}
}

func TestRSGDE3StopsOnStagnation(t *testing.T) {
	// Constant objective: the archive accepts one point and then never
	// improves; the run must stop after Stagnation iterations.
	eval := newFuncEvaluator(func(c skeleton.Config) []float64 { return []float64{1, 1} })
	res, err := RSGDE3(schafferSpace(), eval, Options{Seed: 3, Stagnation: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3 (stagnation window)", res.Iterations)
	}
	if len(res.Front) != 1 {
		t.Fatalf("front = %d points, want 1", len(res.Front))
	}
}

func TestRSGDE3HandlesFailedEvaluations(t *testing.T) {
	// Half the space is invalid (nil objectives).
	eval := newFuncEvaluator(func(c skeleton.Config) []float64 {
		if c[0] < 0 {
			return nil
		}
		return schaffer(c)
	})
	res, err := RSGDE3(schafferSpace(), eval, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("no front despite valid half-space")
	}
	for _, p := range res.Front {
		if p.Payload.(skeleton.Config)[0] < 0 {
			t.Fatal("front contains invalid configuration")
		}
	}
}

func TestGDE3AblationRuns(t *testing.T) {
	res, err := GDE3(schafferSpace(), newFuncEvaluator(schaffer), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("plain GDE3 found nothing")
	}
}

func TestRandomBaseline(t *testing.T) {
	eval := newFuncEvaluator(schaffer)
	res, err := Random(schafferSpace(), eval, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations == 0 || res.Evaluations > 200 {
		t.Fatalf("E = %d", res.Evaluations)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty random front")
	}
	if _, err := Random(schafferSpace(), eval, 0, 4); err == nil {
		t.Error("zero budget should fail")
	}
}

func TestRegularGrid(t *testing.T) {
	space := skeleton.Space{Params: []skeleton.Param{
		{Name: "a", Min: 1, Max: 10},
		{Name: "b", Min: 0, Max: 1},
	}}
	g, err := RegularGrid(space, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(g[0]) != 4 || g[0][0] != 1 || g[0][3] != 10 {
		t.Fatalf("dim 0 grid = %v", g[0])
	}
	// b has only 2 distinct values; 5 requested points collapse to 2.
	if len(g[1]) != 2 {
		t.Fatalf("dim 1 grid = %v", g[1])
	}
	if g.Size() != 8 {
		t.Fatalf("size = %d", g.Size())
	}
	if _, err := RegularGrid(space, []int{4}); err == nil {
		t.Error("wrong dims should fail")
	}
	if _, err := RegularGrid(space, []int{0, 1}); err == nil {
		t.Error("zero points should fail")
	}
}

func TestBruteForce(t *testing.T) {
	eval := newFuncEvaluator(schaffer)
	space := schafferSpace()
	g, err := RegularGrid(space, []int{41, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := BruteForce(space, eval, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 41 {
		t.Fatalf("E = %d, want 41", res.Evaluations)
	}
	if len(res.AllPoints) != 41 {
		t.Fatalf("all points = %d", len(res.AllPoints))
	}
	// Every front point lies within the Pareto set x in [0,2].
	for _, p := range res.Front {
		x := float64(p.Payload.(skeleton.Config)[0]) / 100
		if x < 0 || x > 2 {
			t.Errorf("brute-force front x = %v", x)
		}
	}
}

func TestBruteForceGridMismatch(t *testing.T) {
	eval := newFuncEvaluator(schaffer)
	if _, err := BruteForce(schafferSpace(), eval, Grid{{1}}); err == nil {
		t.Error("grid dim mismatch should fail")
	}
}

// RS-GDE3 must clearly beat random search at equal evaluation budget —
// the paper's central Table VI comparison.
func TestRSGDE3BeatsRandomAtEqualBudget(t *testing.T) {
	evalA := newFuncEvaluator(schaffer)
	res, err := RSGDE3(schafferSpace(), evalA, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	evalB := newFuncEvaluator(schaffer)
	rnd, err := Random(schafferSpace(), evalB, res.Evaluations, 11)
	if err != nil {
		t.Fatal(err)
	}
	hv := func(front []pareto.Point) float64 {
		var objs [][]float64
		for _, p := range front {
			objs = append(objs, p.Objectives)
		}
		v, err := pareto.NormalizedHypervolume(objs, []float64{0, 0}, []float64{4, 4})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if hv(res.Front) < hv(rnd.Front) {
		t.Fatalf("RS-GDE3 hv %v below random hv %v", hv(res.Front), hv(rnd.Front))
	}
}

// Rough-set reduction accelerates convergence: at the same stagnation
// rule RS-GDE3 should reach at least the quality of plain GDE3 on the
// separable test problem.
func TestRoughSetAblation(t *testing.T) {
	hvOf := func(disable bool, seed int64) (float64, int) {
		eval := newFuncEvaluator(schaffer)
		res, err := RSGDE3(schafferSpace(), eval, Options{Seed: seed, DisableRoughSet: disable})
		if err != nil {
			t.Fatal(err)
		}
		var objs [][]float64
		for _, p := range res.Front {
			objs = append(objs, p.Objectives)
		}
		v, err := pareto.NormalizedHypervolume(objs, []float64{0, 0}, []float64{4, 4})
		if err != nil {
			t.Fatal(err)
		}
		return v, res.Evaluations
	}
	var rsBetter int
	const trials = 5
	for seed := int64(0); seed < trials; seed++ {
		rs, _ := hvOf(false, seed)
		plain, _ := hvOf(true, seed)
		if rs >= plain-0.01 {
			rsBetter++
		}
	}
	if rsBetter < trials-1 {
		t.Fatalf("rough set reduction helped in only %d/%d trials", rsBetter, trials)
	}
}

func TestNonDominatedSortRanks(t *testing.T) {
	pop := []individual{
		{objs: []float64{1, 1}},
		{objs: []float64{2, 2}},
		{objs: []float64{1, 3}},
		{objs: nil},
		{objs: []float64{3, 3}},
	}
	ranks := nonDominatedSort(pop)
	if len(ranks) != 4 {
		t.Fatalf("ranks = %v", ranks)
	}
	if len(ranks[0]) != 1 || ranks[0][0] != 0 {
		t.Fatalf("rank 0 = %v", ranks[0])
	}
	// (2,2) and (1,3) are mutually non-dominated once (1,1) is gone.
	if len(ranks[1]) != 2 {
		t.Fatalf("rank 1 = %v", ranks[1])
	}
	// nil objectives land last.
	last := ranks[len(ranks)-1]
	if len(last) != 1 || last[0] != 3 {
		t.Fatalf("failed rank = %v", last)
	}
}

func TestCrowdingDistanceExtremesInfinite(t *testing.T) {
	pop := []individual{
		{objs: []float64{0, 4}},
		{objs: []float64{1, 2}},
		{objs: []float64{4, 0}},
	}
	d := crowdingDistance(pop, []int{0, 1, 2})
	if !math.IsInf(d[0], 1) || !math.IsInf(d[2], 1) {
		t.Fatalf("extremes not infinite: %v", d)
	}
	if math.IsInf(d[1], 1) || d[1] <= 0 {
		t.Fatalf("middle distance = %v", d[1])
	}
}

func TestTruncateKeepsBestRank(t *testing.T) {
	pop := []individual{
		{cfg: skeleton.Config{0}, objs: []float64{1, 1}},
		{cfg: skeleton.Config{1}, objs: []float64{5, 5}},
		{cfg: skeleton.Config{2}, objs: []float64{0, 3}},
		{cfg: skeleton.Config{3}, objs: []float64{3, 0}},
	}
	out := truncate(pop, 2)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	for _, ind := range out {
		if ind.objs[0] == 5 {
			t.Fatal("dominated individual survived truncation")
		}
	}
}

func TestPickDistinct(t *testing.T) {
	rng := fixedRand{vals: []int{1, 1, 2, 3, 0}}
	idx := pickDistinct(&rng, 5, 0, 3)
	if len(idx) != 3 {
		t.Fatalf("picked %v", idx)
	}
	seen := map[int]bool{0: true}
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate or self index in %v", idx)
		}
		seen[i] = true
	}
	// Tiny population: repeats allowed, but self (index 0) is still
	// excluded as long as another member exists.
	rng2 := fixedRand{vals: []int{0, 1, 0, 1, 0, 1}}
	got := pickDistinct(&rng2, 2, 0, 3)
	if len(got) != 3 {
		t.Fatalf("tiny population picks = %v", got)
	}
	for _, i := range got {
		if i == 0 {
			t.Fatalf("self picked in tiny population: %v", got)
		}
	}
	// A population of one has no choice but self.
	rng3 := fixedRand{vals: []int{0}}
	if got := pickDistinct(&rng3, 1, 0, 3); len(got) != 3 {
		t.Fatalf("singleton population picks = %v", got)
	}
}

type fixedRand struct {
	vals []int
	pos  int
}

func (f *fixedRand) Intn(n int) int {
	v := f.vals[f.pos%len(f.vals)] % n
	f.pos++
	return v
}

func (f *fixedRand) Float64() float64 { return 0.25 }

func TestMutateStaysInBox(t *testing.T) {
	pop := []individual{
		{cfg: skeleton.Config{10, 10}},
		{cfg: skeleton.Config{500, 5}},
		{cfg: skeleton.Config{900, 9}},
		{cfg: skeleton.Config{100, 2}},
	}
	box := skeleton.Box{Lo: []int64{0, 1}, Hi: []int64{1000, 10}}
	rng := fixedRand{vals: []int{1, 2, 3, 0, 1}}
	r := mutate(pop[0].cfg, pop, 0, box, Options{CR: 0.5, F: 0.5}.withDefaults(), &rng)
	if !box.Contains(r) {
		t.Fatalf("mutant %v escaped box", r)
	}
}

func TestResultConfigs(t *testing.T) {
	r := &Result{Front: []pareto.Point{{Payload: skeleton.Config{1, 2}}}}
	cfgs := r.Configs()
	if len(cfgs) != 1 || !cfgs[0].Equal(skeleton.Config{1, 2}) {
		t.Fatalf("configs = %v", cfgs)
	}
}

func TestInvalidSpaceRejected(t *testing.T) {
	bad := skeleton.Space{}
	if _, err := RSGDE3(bad, newFuncEvaluator(schaffer), Options{}); err == nil {
		t.Error("RSGDE3 accepted invalid space")
	}
	if _, err := Random(bad, newFuncEvaluator(schaffer), 10, 0); err == nil {
		t.Error("Random accepted invalid space")
	}
	if _, err := BruteForce(bad, newFuncEvaluator(schaffer), Grid{}); err == nil {
		t.Error("BruteForce accepted invalid space")
	}
}
