package metrics

import (
	"math/rand"
	"testing"

	"autotune/internal/pareto"
)

// TestHypervolumeMonotoneUnderArchiveGrowth asserts the defining
// property of the hypervolume indicator: feeding more points into a
// non-dominated archive can only grow (or keep) the dominated volume,
// never shrink it. Violations would make the Table VI V(S) comparisons
// meaningless.
func TestHypervolumeMonotoneUnderArchiveGrowth(t *testing.T) {
	ref := []float64{10, 10}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := pareto.NewArchive()
		prev := 0.0
		for i := 0; i < 40; i++ {
			obj := []float64{1 + 8*rng.Float64(), 1 + 8*rng.Float64()}
			a.Add(pareto.Point{Objectives: obj})
			var objs [][]float64
			for _, p := range a.Points() {
				objs = append(objs, p.Objectives)
			}
			hv, err := pareto.Hypervolume(objs, ref)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
			if hv < prev-1e-12 {
				t.Fatalf("seed %d step %d: hypervolume shrank from %g to %g after adding %v",
					seed, i, prev, hv, obj)
			}
			prev = hv
		}
	}
}

// TestHypervolumeDominatedPointNoEffect adds a strictly dominated point
// and requires the indicator to be unchanged — the archive must reject
// it and the volume must not move.
func TestHypervolumeDominatedPointNoEffect(t *testing.T) {
	ref := []float64{10, 10}
	a := pareto.NewArchive()
	a.Add(pareto.Point{Objectives: []float64{2, 5}})
	a.Add(pareto.Point{Objectives: []float64{5, 2}})
	base, err := pareto.Hypervolume(frontObjs(a), ref)
	if err != nil {
		t.Fatal(err)
	}
	if a.Add(pareto.Point{Objectives: []float64{6, 6}}) {
		t.Fatal("archive kept a dominated point")
	}
	after, err := pareto.Hypervolume(frontObjs(a), ref)
	if err != nil {
		t.Fatal(err)
	}
	if after != base {
		t.Fatalf("hypervolume moved from %g to %g on a rejected point", base, after)
	}
}

// TestCoverageReflexive pins C(A, A) = 1 for any non-empty front — a
// sanity anchor for the C-metric used by the extended comparison.
func TestCoverageReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var objs [][]float64
		for i := 0; i < 1+rng.Intn(20); i++ {
			objs = append(objs, []float64{rng.Float64(), rng.Float64()})
		}
		c, err := Coverage(objs, objs)
		if err != nil {
			t.Fatal(err)
		}
		if c != 1 {
			t.Fatalf("C(A,A) = %g, want 1", c)
		}
	}
}

func frontObjs(a *pareto.Archive) [][]float64 {
	var out [][]float64
	for _, p := range a.Points() {
		out = append(out, p.Objectives)
	}
	return out
}
