// Package metrics implements front-quality indicators from the
// multi-objective optimization literature beyond the hypervolume the
// paper reports: the additive epsilon indicator, the coverage
// (C-)metric, Schott's spacing, and (inverted) generational distance.
// They complement V(S) in the extended strategy comparison and the
// ablation benchmarks.
//
// All indicators assume minimized objective vectors.
package metrics

import (
	"errors"
	"math"

	"autotune/internal/pareto"
)

// ErrEmpty is returned when an indicator needs a non-empty front.
var ErrEmpty = errors.New("metrics: empty front")

// AdditiveEpsilon returns the smallest eps such that every point of
// reference is weakly dominated by some point of front after
// subtracting eps from each front objective — i.e. how far front must
// be shifted to cover reference. 0 means front covers reference.
func AdditiveEpsilon(front, reference [][]float64) (float64, error) {
	if len(front) == 0 || len(reference) == 0 {
		return 0, ErrEmpty
	}
	eps := math.Inf(-1)
	for _, r := range reference {
		best := math.Inf(1)
		for _, f := range front {
			if len(f) != len(r) {
				return 0, errors.New("metrics: dimension mismatch")
			}
			worst := math.Inf(-1)
			for c := range f {
				if d := f[c] - r[c]; d > worst {
					worst = d
				}
			}
			if worst < best {
				best = worst
			}
		}
		if best > eps {
			eps = best
		}
	}
	return eps, nil
}

// Coverage returns the C-metric C(A, B): the fraction of points in B
// weakly dominated by at least one point in A. C(A,B)=1 means A covers
// B entirely; the metric is not symmetric.
func Coverage(a, b [][]float64) (float64, error) {
	if len(b) == 0 {
		return 0, ErrEmpty
	}
	covered := 0
	for _, pb := range b {
		for _, pa := range a {
			if pareto.WeaklyDominates(pa, pb) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(b)), nil
}

// Spacing returns Schott's spacing metric: the standard deviation of
// nearest-neighbour Manhattan distances within the front. 0 means
// perfectly even spacing; a single-point front has spacing 0.
func Spacing(front [][]float64) (float64, error) {
	n := len(front)
	if n == 0 {
		return 0, ErrEmpty
	}
	if n == 1 {
		return 0, nil
	}
	d := make([]float64, n)
	for i := range front {
		best := math.Inf(1)
		for j := range front {
			if i == j {
				continue
			}
			dist := 0.0
			for c := range front[i] {
				dist += math.Abs(front[i][c] - front[j][c])
			}
			if dist < best {
				best = dist
			}
		}
		d[i] = best
	}
	mean := 0.0
	for _, x := range d {
		mean += x
	}
	mean /= float64(n)
	varsum := 0.0
	for _, x := range d {
		varsum += (x - mean) * (x - mean)
	}
	return math.Sqrt(varsum / float64(n-1)), nil
}

// GenerationalDistance returns the average Euclidean distance from
// each front point to its nearest reference point: how close the
// front sits to a (better) reference set.
func GenerationalDistance(front, reference [][]float64) (float64, error) {
	return meanNearest(front, reference)
}

// InvertedGenerationalDistance returns the average distance from each
// reference point to its nearest front point: how well the front
// covers the reference set.
func InvertedGenerationalDistance(front, reference [][]float64) (float64, error) {
	return meanNearest(reference, front)
}

func meanNearest(from, to [][]float64) (float64, error) {
	if len(from) == 0 || len(to) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, f := range from {
		best := math.Inf(1)
		for _, t := range to {
			if len(t) != len(f) {
				return 0, errors.New("metrics: dimension mismatch")
			}
			d := 0.0
			for c := range f {
				diff := f[c] - t[c]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(len(from)), nil
}

// Summary bundles all indicators of one front against a reference.
type Summary struct {
	Size     int
	Epsilon  float64
	Covers   float64 // C(front, reference)
	Covered  float64 // C(reference, front)
	Spacing  float64
	GD       float64
	IGD      float64
	HV       float64 // normalized hypervolume, if bounds provided
	HasHV    bool
	HVError  error
	ErrState error
}

// Summarize computes every indicator for front vs reference. ideal and
// nadir, when non-nil, also produce the normalized hypervolume.
func Summarize(front, reference [][]float64, ideal, nadir []float64) Summary {
	s := Summary{Size: len(front)}
	var err error
	if s.Epsilon, err = AdditiveEpsilon(front, reference); err != nil {
		s.ErrState = err
		return s
	}
	s.Covers, _ = Coverage(front, reference)
	s.Covered, _ = Coverage(reference, front)
	s.Spacing, _ = Spacing(front)
	s.GD, _ = GenerationalDistance(front, reference)
	s.IGD, _ = InvertedGenerationalDistance(front, reference)
	if ideal != nil && nadir != nil {
		hv, err := pareto.NormalizedHypervolume(front, ideal, nadir)
		s.HV, s.HasHV, s.HVError = hv, err == nil, err
	}
	return s
}
