package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAdditiveEpsilonIdentity(t *testing.T) {
	f := [][]float64{{1, 2}, {2, 1}}
	eps, err := AdditiveEpsilon(f, f)
	if err != nil || !approx(eps, 0) {
		t.Fatalf("eps = %v, %v", eps, err)
	}
}

func TestAdditiveEpsilonShift(t *testing.T) {
	front := [][]float64{{2, 2}}
	ref := [][]float64{{1, 1}}
	eps, err := AdditiveEpsilon(front, ref)
	if err != nil || !approx(eps, 1) {
		t.Fatalf("eps = %v, want 1", eps)
	}
	// A dominating front has negative epsilon.
	eps, _ = AdditiveEpsilon(ref, front)
	if !approx(eps, -1) {
		t.Fatalf("eps = %v, want -1", eps)
	}
}

func TestAdditiveEpsilonErrors(t *testing.T) {
	if _, err := AdditiveEpsilon(nil, [][]float64{{1}}); err != ErrEmpty {
		t.Fatal("empty front accepted")
	}
	if _, err := AdditiveEpsilon([][]float64{{1}}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestCoverage(t *testing.T) {
	a := [][]float64{{1, 1}}
	b := [][]float64{{2, 2}, {0.5, 3}}
	c, err := Coverage(a, b)
	if err != nil || !approx(c, 0.5) {
		t.Fatalf("C(a,b) = %v, want 0.5", c)
	}
	c, _ = Coverage(b, a)
	if !approx(c, 0) {
		t.Fatalf("C(b,a) = %v, want 0", c)
	}
	if _, err := Coverage(a, nil); err != ErrEmpty {
		t.Fatal("empty b accepted")
	}
}

func TestSpacing(t *testing.T) {
	// Perfectly even staircase: spacing 0.
	even := [][]float64{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}
	s, err := Spacing(even)
	if err != nil || !approx(s, 0) {
		t.Fatalf("spacing = %v, want 0", s)
	}
	uneven := [][]float64{{0, 10}, {1, 9}, {10, 0}}
	s2, _ := Spacing(uneven)
	if s2 <= 0 {
		t.Fatalf("uneven spacing = %v, want > 0", s2)
	}
	one, _ := Spacing([][]float64{{1, 1}})
	if one != 0 {
		t.Fatal("single point spacing should be 0")
	}
	if _, err := Spacing(nil); err != ErrEmpty {
		t.Fatal("empty front accepted")
	}
}

func TestGDAndIGD(t *testing.T) {
	front := [][]float64{{1, 0}, {0, 1}}
	ref := [][]float64{{0, 0}}
	gd, err := GenerationalDistance(front, ref)
	if err != nil || !approx(gd, 1) {
		t.Fatalf("GD = %v, want 1", gd)
	}
	igd, err := InvertedGenerationalDistance(front, ref)
	if err != nil || !approx(igd, 1) {
		t.Fatalf("IGD = %v, want 1", igd)
	}
	same, _ := GenerationalDistance(front, front)
	if !approx(same, 0) {
		t.Fatalf("GD to itself = %v", same)
	}
	if _, err := GenerationalDistance(front, [][]float64{{1}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestSummarize(t *testing.T) {
	front := [][]float64{{0.2, 0.8}, {0.8, 0.2}}
	ref := [][]float64{{0.1, 0.9}, {0.9, 0.1}, {0.4, 0.4}}
	s := Summarize(front, ref, []float64{0, 0}, []float64{1, 1})
	if s.ErrState != nil {
		t.Fatal(s.ErrState)
	}
	if s.Size != 2 || !s.HasHV || s.HV <= 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Epsilon <= 0 {
		t.Fatalf("epsilon = %v, want > 0 (ref not covered)", s.Epsilon)
	}
	// Without bounds, no hypervolume.
	s2 := Summarize(front, ref, nil, nil)
	if s2.HasHV {
		t.Fatal("hypervolume computed without bounds")
	}
	// Empty front reports the error.
	s3 := Summarize(nil, ref, nil, nil)
	if s3.ErrState == nil {
		t.Fatal("empty front not reported")
	}
}

// Property: epsilon(A, B) <= 0 whenever A weakly covers B point-wise,
// and Coverage is always within [0,1].
func TestIndicatorRangesProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var a, b [][]float64
		for i := 0; i+1 < len(raw); i += 2 {
			p := []float64{float64(raw[i] % 100), float64(raw[i+1] % 100)}
			if len(a) <= len(b) {
				a = append(a, p)
			} else {
				b = append(b, p)
			}
		}
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		c1, err1 := Coverage(a, b)
		c2, err2 := Coverage(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if c1 < 0 || c1 > 1 || c2 < 0 || c2 > 1 {
			return false
		}
		// Self-coverage is always 1 (every point weakly dominates
		// itself).
		self, _ := Coverage(a, a)
		return self == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: GD(front, ref) is zero iff every front point is in ref
// (checked in the "is in" direction), and always non-negative.
func TestGDNonNegativeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var pts [][]float64
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, []float64{float64(raw[i]), float64(raw[i+1])})
		}
		if len(pts) < 2 {
			return true
		}
		gd, err := GenerationalDistance(pts[:1], pts)
		if err != nil {
			return false
		}
		return gd == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
