// Package roughset implements the search-space reduction mechanism of
// RS-GDE3 (paper §III-B.4). Rough Set theory models imperfect
// knowledge through lower and upper approximations of a target set; in
// the auto-tuner the target is "the region of the parameter space
// containing non-dominated configurations".
//
// Following the construction the paper adopts from Durillo et al., the
// reduced search space is the largest axis-aligned hyper-rectangle that
// (a) encloses every non-dominated configuration of the most recent
// population and (b) is delimited by the coordinates of the dominated
// configurations surrounding them: in every dimension the nearest
// dominated coordinate below the non-dominated minimum becomes the new
// lower wall, and the nearest dominated coordinate above the
// non-dominated maximum becomes the new upper wall. Dimensions without
// such a wall keep the full space bound. The resulting box is the
// boundary B consulted by Algorithm 1's getClosestTo.
package roughset

import (
	"autotune/internal/skeleton"
)

// Reduce computes the reduced search space from the current
// population, split into non-dominated and dominated configurations.
//
//   - With no non-dominated points, the space cannot be narrowed and
//     the full box is returned.
//   - With no dominated points there are no walls, and the full box is
//     returned as well.
//
// The returned box always contains every non-dominated configuration.
func Reduce(space skeleton.Space, nonDom, dom []skeleton.Config) skeleton.Box {
	full := space.FullBox()
	if len(nonDom) == 0 || len(dom) == 0 {
		return full
	}
	d := space.Dim()
	box := skeleton.Box{Lo: make([]int64, d), Hi: make([]int64, d)}
	for dim := 0; dim < d; dim++ {
		// Extent of the non-dominated set in this dimension.
		ndLo, ndHi := nonDom[0][dim], nonDom[0][dim]
		for _, c := range nonDom[1:] {
			if c[dim] < ndLo {
				ndLo = c[dim]
			}
			if c[dim] > ndHi {
				ndHi = c[dim]
			}
		}
		// Nearest dominated walls outside that extent.
		lo, hi := full.Lo[dim], full.Hi[dim]
		for _, c := range dom {
			if v := c[dim]; v <= ndLo && v > lo {
				lo = v
			}
			if v := c[dim]; v >= ndHi && v < hi {
				hi = v
			}
		}
		box.Lo[dim] = lo
		box.Hi[dim] = hi
	}
	return box
}

// Split partitions a population into non-dominated and dominated
// configurations given their objective vectors (minimized). objs[i] is
// the objective vector of cfgs[i]. Configurations with nil objective
// vectors (failed evaluations) count as dominated.
func Split(cfgs []skeleton.Config, objs [][]float64,
	dominates func(a, b []float64) bool) (nonDom, dom []skeleton.Config) {
	for i, c := range cfgs {
		if objs[i] == nil {
			dom = append(dom, c)
			continue
		}
		isDominated := false
		for j := range cfgs {
			if i == j || objs[j] == nil {
				continue
			}
			if dominates(objs[j], objs[i]) {
				isDominated = true
				break
			}
		}
		if isDominated {
			dom = append(dom, c)
		} else {
			nonDom = append(nonDom, c)
		}
	}
	return nonDom, dom
}
