package roughset

import (
	"testing"
	"testing/quick"

	"autotune/internal/pareto"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

func space2() skeleton.Space {
	return skeleton.Space{Params: []skeleton.Param{
		{Name: "p1", Min: 0, Max: 100},
		{Name: "p2", Min: 0, Max: 100},
	}}
}

func TestReduceBasicWalls(t *testing.T) {
	s := space2()
	nonDom := []skeleton.Config{{40, 50}, {50, 40}}
	dom := []skeleton.Config{{10, 10}, {90, 90}, {30, 60}, {70, 20}}
	box := Reduce(s, nonDom, dom)
	// Dim 0: nd extent [40,50]; walls: below 40 -> max(10,30)=30;
	// above 50 -> min(90,70)=70.
	if box.Lo[0] != 30 || box.Hi[0] != 70 {
		t.Errorf("dim0 = [%d,%d], want [30,70]", box.Lo[0], box.Hi[0])
	}
	// Dim 1: nd extent [40,50]; below: max(10,20)=20; above: min(90,60)=60.
	if box.Lo[1] != 20 || box.Hi[1] != 60 {
		t.Errorf("dim1 = [%d,%d], want [20,60]", box.Lo[1], box.Hi[1])
	}
}

func TestReduceWallOnBoundaryOfExtent(t *testing.T) {
	// A dominated point sharing a coordinate with the non-dominated
	// extent becomes the wall (<= / >= comparison keeps it inside).
	s := space2()
	nonDom := []skeleton.Config{{40, 40}}
	dom := []skeleton.Config{{40, 80}, {80, 40}}
	box := Reduce(s, nonDom, dom)
	if box.Lo[0] != 40 || box.Lo[1] != 40 {
		t.Errorf("walls = %v, want both 40", box.Lo)
	}
	if !box.Contains(skeleton.Config{40, 40}) {
		t.Error("box must contain the non-dominated point")
	}
}

func TestReduceNoDominatedOrNoNonDominated(t *testing.T) {
	s := space2()
	full := s.FullBox()
	got := Reduce(s, nil, []skeleton.Config{{1, 1}})
	if got.Lo[0] != full.Lo[0] || got.Hi[1] != full.Hi[1] {
		t.Error("no non-dominated: expected full box")
	}
	got = Reduce(s, []skeleton.Config{{1, 1}}, nil)
	if got.Lo[0] != full.Lo[0] || got.Hi[1] != full.Hi[1] {
		t.Error("no dominated: expected full box")
	}
}

func TestReduceNeverExcludesNonDominated(t *testing.T) {
	s := space2()
	rng := stats.NewRand(11)
	for trial := 0; trial < 200; trial++ {
		var nonDom, dom []skeleton.Config
		for i := 0; i < 5; i++ {
			nonDom = append(nonDom, s.Random(rng))
		}
		for i := 0; i < 12; i++ {
			dom = append(dom, s.Random(rng))
		}
		box := Reduce(s, nonDom, dom)
		for _, c := range nonDom {
			if !box.Contains(c) {
				t.Fatalf("trial %d: box %v excludes non-dominated %v", trial, box, c)
			}
		}
		// Box stays within the space.
		full := s.FullBox()
		for dim := range box.Lo {
			if box.Lo[dim] < full.Lo[dim] || box.Hi[dim] > full.Hi[dim] {
				t.Fatalf("box escapes space: %v", box)
			}
		}
	}
}

func TestSplit(t *testing.T) {
	cfgs := []skeleton.Config{{1}, {2}, {3}, {4}}
	objs := [][]float64{
		{1, 5},
		{2, 2},
		{3, 3}, // dominated by {2,2}
		nil,    // failed evaluation
	}
	nonDom, dom := Split(cfgs, objs, pareto.Dominates)
	if len(nonDom) != 2 || len(dom) != 2 {
		t.Fatalf("split = %d/%d, want 2/2", len(nonDom), len(dom))
	}
	if !nonDom[0].Equal(skeleton.Config{1}) || !nonDom[1].Equal(skeleton.Config{2}) {
		t.Errorf("nonDom = %v", nonDom)
	}
	if !dom[0].Equal(skeleton.Config{3}) || !dom[1].Equal(skeleton.Config{4}) {
		t.Errorf("dom = %v", dom)
	}
}

func TestSplitAllNonDominated(t *testing.T) {
	cfgs := []skeleton.Config{{1}, {2}}
	objs := [][]float64{{1, 2}, {2, 1}}
	nonDom, dom := Split(cfgs, objs, pareto.Dominates)
	if len(nonDom) != 2 || len(dom) != 0 {
		t.Fatalf("split = %d/%d", len(nonDom), len(dom))
	}
}

// Property: Split conserves the population and the reduced box always
// contains the non-dominated subset.
func TestSplitReduceProperty(t *testing.T) {
	s := space2()
	f := func(seed int64, n uint8) bool {
		rng := stats.NewRand(seed)
		count := int(n%20) + 2
		cfgs := make([]skeleton.Config, count)
		objs := make([][]float64, count)
		for i := range cfgs {
			cfgs[i] = s.Random(rng)
			objs[i] = []float64{rng.Float64(), rng.Float64()}
		}
		nonDom, dom := Split(cfgs, objs, pareto.Dominates)
		if len(nonDom)+len(dom) != count {
			return false
		}
		if len(nonDom) == 0 {
			return false // at least one point is always non-dominated
		}
		box := Reduce(s, nonDom, dom)
		for _, c := range nonDom {
			if !box.Contains(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
