// Differential oracle tests: on spaces tiny enough to enumerate, the
// rough-set reduction must never wall off a configuration the
// brute-force path proves Pareto-optimal. A reduction that clipped a
// true optimum would silently bound RS-GDE3 away from the answer.
package roughset_test

import (
	"math/rand"
	"testing"

	"autotune/internal/objective"
	"autotune/internal/optimizer"
	"autotune/internal/pareto"
	"autotune/internal/roughset"
	"autotune/internal/skeleton"
)

// tinySpace is a 2-D space small enough for exhaustive enumeration.
func tinySpace() skeleton.Space {
	return skeleton.Space{Params: []skeleton.Param{
		{Name: "a", Kind: skeleton.TileSize, Min: 1, Max: 6},
		{Name: "b", Kind: skeleton.ThreadCount, Min: 1, Max: 5},
	}}
}

// fullGrid enumerates every configuration of a space.
func fullGrid(space skeleton.Space) optimizer.Grid {
	grid := make(optimizer.Grid, space.Dim())
	for d, p := range space.Params {
		for v := p.Min; v <= p.Max; v++ {
			grid[d] = append(grid[d], v)
		}
	}
	return grid
}

// tableEvaluator builds a deterministic evaluator whose objective
// vectors are drawn per-configuration from a seeded table — an
// arbitrary, reproducible landscape with no structure the reduction
// could exploit.
func tableEvaluator(space skeleton.Space, seed int64) objective.EvalFunc {
	rng := rand.New(rand.NewSource(seed))
	table := map[string][]float64{}
	var rec func(cfg skeleton.Config, d int)
	rec = func(cfg skeleton.Config, d int) {
		if d == space.Dim() {
			table[cfg.Key()] = []float64{rng.Float64(), rng.Float64()}
			return
		}
		p := space.Params[d]
		for v := p.Min; v <= p.Max; v++ {
			rec(append(cfg, v), d+1)
		}
	}
	rec(skeleton.Config{}, 0)
	return func(cfg skeleton.Config) []float64 {
		objs, ok := table[cfg.Key()]
		if !ok {
			return nil
		}
		return append([]float64(nil), objs...)
	}
}

// TestReduceKeepsBruteForceOptima enumerates tiny random landscapes,
// finds the exact Pareto set via the brute-force path, and asserts the
// rough-set box computed from the full population still contains every
// optimum.
func TestReduceKeepsBruteForceOptima(t *testing.T) {
	space := tinySpace()
	grid := fullGrid(space)
	for seed := int64(1); seed <= 25; seed++ {
		fn := tableEvaluator(space, seed)
		eval := objective.NewCachingEvaluator([]string{"f1", "f2"}, 4, fn)
		oracle, err := optimizer.BruteForce(space, eval, grid)
		if err != nil {
			t.Fatal(err)
		}

		// The population is the full space; split and reduce.
		var cfgs []skeleton.Config
		var cur skeleton.Config
		var rec func(d int)
		rec = func(d int) {
			if d == space.Dim() {
				cfgs = append(cfgs, cur.Clone())
				return
			}
			p := space.Params[d]
			for v := p.Min; v <= p.Max; v++ {
				cur = append(cur, v)
				rec(d + 1)
				cur = cur[:len(cur)-1]
			}
		}
		rec(0)
		objs := make([][]float64, len(cfgs))
		for i, c := range cfgs {
			objs[i] = fn(c)
		}
		nonDom, dom := roughset.Split(cfgs, objs, pareto.Dominates)
		box := roughset.Reduce(space, nonDom, dom)

		for _, p := range oracle.Front {
			cfg := p.Payload.(skeleton.Config)
			if !box.Contains(cfg) {
				t.Fatalf("seed %d: reduced box [%v, %v] excludes brute-force optimum %v (objs %v)",
					seed, box.Lo, box.Hi, cfg, p.Objectives)
			}
		}
	}
}

// TestReduceKeepsPopulationNonDominated is the documented contract for
// arbitrary (sub)populations: whatever subset of the space a generation
// holds, the reduced box must contain that subset's non-dominated
// members.
func TestReduceKeepsPopulationNonDominated(t *testing.T) {
	space := tinySpace()
	for seed := int64(1); seed <= 25; seed++ {
		fn := tableEvaluator(space, 1000+seed)
		rng := rand.New(rand.NewSource(seed))
		var cfgs []skeleton.Config
		for i := 0; i < 12; i++ {
			cfgs = append(cfgs, space.Random(rng))
		}
		objs := make([][]float64, len(cfgs))
		for i, c := range cfgs {
			objs[i] = fn(c)
		}
		nonDom, dom := roughset.Split(cfgs, objs, pareto.Dominates)
		box := roughset.Reduce(space, nonDom, dom)
		for _, c := range nonDom {
			if !box.Contains(c) {
				t.Fatalf("seed %d: reduced box [%v, %v] excludes non-dominated member %v",
					seed, box.Lo, box.Hi, c)
			}
		}
	}
}
