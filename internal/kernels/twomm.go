package kernels

import (
	"fmt"
	"sync"

	"autotune/internal/ir"
	"autotune/internal/perfmodel"
)

func init() {
	register(&Kernel{
		Name:       "2mm",
		Complexity: Complexity{Compute: "O(N^3)", Memory: "O(N^2)"},
		DefaultN:   1024,
		BenchN:     192,
		TileDims:   3,
		Collapse:   true,
		IR:         TwoMMProgram,
		Model:      twommModel(),
		Run:        RunTwoMM,
		Extension:  true, // beyond the paper's kernel set
	})
}

// TwoMMProgram builds the PolyBench-style 2mm kernel: D = A·B followed
// by E = D·C — a natural two-region program whose regions the
// framework can tune simultaneously.
func TwoMMProgram(n int64) *ir.Program {
	mk := func(out, in1, in2, label string) *ir.Loop {
		stmt := &ir.Stmt{
			Label:  label,
			Writes: []ir.Access{{Array: out, Indices: []ir.Affine{ir.Var("i" + label), ir.Var("j" + label)}}},
			Reads: []ir.Access{
				{Array: out, Indices: []ir.Affine{ir.Var("i" + label), ir.Var("j" + label)}},
				{Array: in1, Indices: []ir.Affine{ir.Var("i" + label), ir.Var("k" + label)}},
				{Array: in2, Indices: []ir.Affine{ir.Var("k" + label), ir.Var("j" + label)}},
			},
			Flops: 2,
		}
		kl := &ir.Loop{Var: "k" + label, Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{stmt}}
		jl := &ir.Loop{Var: "j" + label, Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{kl}}
		return &ir.Loop{Var: "i" + label, Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{jl}}
	}
	return &ir.Program{
		Name: "2mm",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "B", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "C", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "D", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "E", ElemBytes: 8, Dims: []int64{n, n}},
		},
		Root: []ir.Node{
			mk("D", "A", "B", "1"),
			mk("E", "D", "C", "2"),
		},
	}
}

// twommModel treats the kernel as two back-to-back matrix multiplies
// sharing one tiling configuration: the costs are mm's doubled, with
// the intermediate D adding one array of traffic and footprint.
func twommModel() *perfmodel.KernelModel {
	mm := mmModel()
	return &perfmodel.KernelModel{
		Name:     "2mm",
		TileDims: 3,
		Flops:    func(n int64) float64 { return 2 * mm.Flops(n) },
		Accesses: func(n int64) float64 { return 2 * mm.Accesses(n) },
		WorkingSet: func(n int64, t []int64) int64 {
			return mm.WorkingSet(n, t)
		},
		LevelTraffic: func(n int64, t []int64, c perfmodel.Capacity) float64 {
			return 2 * mm.LevelTraffic(n, t, c)
		},
		ParIters:  mm.ParIters,
		InnerTrip: mm.InnerTrip,
		TotalData: func(n int64) int64 { return 5 * 8 * n * n },
	}
}

// RunTwoMM executes the real tiled parallel 2mm: E = (A·B)·C with one
// shared tiling/thread configuration for both stages.
func RunTwoMM(n int64, tiles []int64, threads int) (float64, error) {
	if len(tiles) != 3 {
		return 0, fmt.Errorf("2mm: want 3 tile sizes, got %d", len(tiles))
	}
	if n < 1 || threads < 1 {
		return 0, fmt.Errorf("2mm: invalid n=%d threads=%d", n, threads)
	}
	ti, tj, tk := clip(tiles[0], n), clip(tiles[1], n), clip(tiles[2], n)
	N := int(n)
	A := make([]float64, N*N)
	B := make([]float64, N*N)
	C := make([]float64, N*N)
	D := make([]float64, N*N)
	E := make([]float64, N*N)
	for i := range A {
		A[i] = float64(i%13) * 0.25
		B[i] = float64(i%7) * 0.5
		C[i] = float64(i%5) * 0.75
	}
	stage := func(dst, src1, src2 []float64) {
		nti, ntj := int(ceilDiv(n, ti)), int(ceilDiv(n, tj))
		total := nti * ntj
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			lo, hi := t*total/threads, (t+1)*total/threads
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for it := lo; it < hi; it++ {
					i0 := (it / ntj) * int(ti)
					j0 := (it % ntj) * int(tj)
					i1, j1 := minInt(i0+int(ti), N), minInt(j0+int(tj), N)
					for k0 := 0; k0 < N; k0 += int(tk) {
						k1 := minInt(k0+int(tk), N)
						for i := i0; i < i1; i++ {
							for j := j0; j < j1; j++ {
								sum := dst[i*N+j]
								for k := k0; k < k1; k++ {
									sum += src1[i*N+k] * src2[k*N+j]
								}
								dst[i*N+j] = sum
							}
						}
					}
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	stage(D, A, B)
	stage(E, D, C)
	return checksum(E), nil
}
