package kernels

import (
	"fmt"
	"math"
	"sync"

	"autotune/internal/ir"
	"autotune/internal/perfmodel"
)

// bodyBytes is the modeled per-body footprint: position (3 doubles),
// mass (1 double) read stream plus a 3-double force accumulator.
const bodyBytes = 32

// lineBytesPerBody is the cache footprint of one body on the shared
// j stream: the array-of-structures layout spreads each record across
// a full 64-byte line.
const lineBytesPerBody = 64

// iBodyBytes is the private per-thread footprint of one i-tile body:
// its record line plus the force accumulator.
const iBodyBytes = lineBytesPerBody + 24

func init() {
	register(&Kernel{
		Name:       "n-body",
		Complexity: Complexity{Compute: "O(N^2)", Memory: "O(N)"},
		// 65536 bodies × ~56 B = 3.7 MB: fits comfortably into
		// Westmere's 30 MB L3 but never into Barcelona's 2 MB L3 —
		// the asymmetry behind the paper's Table V observation.
		DefaultN: 65536,
		BenchN:   4096,
		TileDims: 2,
		Collapse: false, // the j loop carries the force accumulation
		IR:       NBodyProgram,
		Model:    nbodyModel(),
		Run:      RunNBody,
	})
}

// NBodyProgram builds the naive all-pairs force computation:
// F[i] += interact(P[i], P[j]).
func NBodyProgram(n int64) *ir.Program {
	stmt := &ir.Stmt{
		Label:  "F[i] += interact(P[i],P[j])",
		Writes: []ir.Access{{Array: "F", Indices: []ir.Affine{ir.Var("i")}}},
		Reads: []ir.Access{
			{Array: "F", Indices: []ir.Affine{ir.Var("i")}},
			{Array: "P", Indices: []ir.Affine{ir.Var("i")}},
			{Array: "P", Indices: []ir.Affine{ir.Var("j")}},
		},
		Flops: 13,
	}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{stmt}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{jl}}
	return &ir.Program{
		Name: "n-body",
		Arrays: []ir.Array{
			{Name: "P", ElemBytes: bodyBytes, Dims: []int64{n}},
			{Name: "F", ElemBytes: 24, Dims: []int64{n}},
		},
		Root: []ir.Node{il},
	}
}

func nbodyModel() *perfmodel.KernelModel {
	return &perfmodel.KernelModel{
		Name:     "n-body",
		TileDims: 2,
		Flops:    func(n int64) float64 { return 13 * float64(n) * float64(n) },
		Accesses: func(n int64) float64 { return 4 * float64(n) * float64(n) },
		WorkingSet: func(n int64, t []int64) int64 {
			ti, tj := clip(t[0], n), clip(t[1], n)
			// i-tile bodies + force accumulators stay resident while a
			// j-tile of source bodies streams through; the strided AoS
			// layout costs a full line per body on the j stream.
			return ti*iBodyBytes + tj*lineBytesPerBody
		},
		LevelTraffic: nbodyLevelTraffic,
		ParIters:     func(n int64, t []int64) int64 { return ceilDiv(n, clip(t[0], n)) },
		InnerTrip: func(n int64, t []int64) float64 {
			return float64(clip(t[1], n))
		},
		TotalData: func(n int64) int64 { return n * (bodyBytes + 24) },
	}
}

// nbodyLevelTraffic: reuse tiers for the blocked all-pairs force
// computation. The j stream (the whole body array) is READ-ONLY and
// shared by every thread on a socket, so it is tested against the
// instance capacity minus the co-located threads' private i-tile
// footprints rather than against the per-thread share — the mechanism
// that keeps the kernel flat on a 30 MB L3 while collapsing on a 2 MB
// one as private tiles crowd the shared data out.
func nbodyLevelTraffic(n int64, t []int64, c perfmodel.Capacity) float64 {
	ti, tj := clip(t[0], n), clip(t[1], n)
	nf := float64(n)
	// Transient LRU occupancy of each thread's i-tile walk, capped at
	// half a fair share — a thread cannot crowd out more than that.
	crowd := ti * iBodyBytes
	if lim := c.Total / int64(2*c.Sharers); crowd > lim {
		crowd = lim
	}
	sharedCap := c.Total - int64(c.Sharers)*crowd
	// The i-record re-read per j-tile pass: free once the private
	// i-tile stays resident.
	iTerm := float64(ceilDiv(n, tj)) * nf * float64(iBodyBytes)
	if c.PerThread >= ti*iBodyBytes+tj*lineBytesPerBody/4 {
		iTerm = nf * float64(iBodyBytes)
	}
	if sharedCap >= n*lineBytesPerBody {
		// The whole body array stays resident beside the private
		// tiles: one shared pass suffices.
		return nf*lineBytesPerBody + iTerm
	}
	if sharedCap >= tj*lineBytesPerBody {
		// The j-tile is resident: it is refetched once per i-tile.
		return float64(ceilDiv(n, ti))*nf*lineBytesPerBody + iTerm
	}
	// The j-tile does not fit: the body array streams through for
	// every single i.
	return nf * nf * lineBytesPerBody
}

// RunNBody executes the real tiled parallel all-pairs n-body force
// computation. tiles = (ti, tj): the i loop is tiled and parallelized,
// the j loop is blocked for locality.
func RunNBody(n int64, tiles []int64, threads int) (float64, error) {
	if len(tiles) != 2 {
		return 0, fmt.Errorf("n-body: want 2 tile sizes, got %d", len(tiles))
	}
	if n < 1 || threads < 1 {
		return 0, fmt.Errorf("n-body: invalid n=%d threads=%d", n, threads)
	}
	ti, tj := clip(tiles[0], n), clip(tiles[1], n)
	N := int(n)
	px := make([]float64, N)
	py := make([]float64, N)
	pz := make([]float64, N)
	mass := make([]float64, N)
	fx := make([]float64, N)
	fy := make([]float64, N)
	fz := make([]float64, N)
	for i := 0; i < N; i++ {
		px[i] = float64(i%97) * 0.1
		py[i] = float64(i%89) * 0.2
		pz[i] = float64(i%83) * 0.3
		mass[i] = 1 + float64(i%7)
	}
	nti := int(ceilDiv(n, ti))
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo, hi := t*nti/threads, (t+1)*nti/threads
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for bt := lo; bt < hi; bt++ {
				i0 := bt * int(ti)
				i1 := minInt(i0+int(ti), N)
				for j0 := 0; j0 < N; j0 += int(tj) {
					j1 := minInt(j0+int(tj), N)
					for i := i0; i < i1; i++ {
						ax, ay, az := 0.0, 0.0, 0.0
						for j := j0; j < j1; j++ {
							dx := px[j] - px[i]
							dy := py[j] - py[i]
							dz := pz[j] - pz[i]
							d2 := dx*dx + dy*dy + dz*dz + 1e-9
							inv := mass[j] / (d2 * math.Sqrt(d2))
							ax += dx * inv
							ay += dy * inv
							az += dz * inv
						}
						fx[i] += ax
						fy[i] += ay
						fz[i] += az
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return checksum(fx) + checksum(fy) + checksum(fz), nil
}
