package kernels

import (
	"fmt"
	"sync"

	"autotune/internal/ir"
	"autotune/internal/perfmodel"
)

// jacobiSweeps is the number of time steps a jacobi-2d run performs.
const jacobiSweeps = 20

func init() {
	register(&Kernel{
		Name:       "jacobi-2d",
		Complexity: Complexity{Compute: "O(N^2)", Memory: "O(N^2)"},
		DefaultN:   4096,
		BenchN:     512,
		TileDims:   2,
		Collapse:   true,
		IR:         Jacobi2DProgram,
		Model:      jacobi2dModel(),
		Run:        RunJacobi2D,
	})
}

// Jacobi2DProgram builds one sweep of the two-array 5-point Jacobi
// stencil: B[i][j] = 0.2*(A[i][j] + A[i±1][j] + A[i][j±1]).
func Jacobi2DProgram(n int64) *ir.Program {
	rd := func(di, dj int64) ir.Access {
		return ir.Access{Array: "A", Indices: []ir.Affine{
			ir.Var("i").AddConst(di), ir.Var("j").AddConst(dj),
		}}
	}
	stmt := &ir.Stmt{
		Label:  "B[i][j] = avg5(A)",
		Writes: []ir.Access{{Array: "B", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}},
		Reads:  []ir.Access{rd(0, 0), rd(-1, 0), rd(1, 0), rd(0, -1), rd(0, 1)},
		Flops:  5,
	}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(1), Hi: ir.Con(n - 1), Step: 1, Body: []ir.Node{stmt}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(1), Hi: ir.Con(n - 1), Step: 1, Body: []ir.Node{jl}}
	return &ir.Program{
		Name: "jacobi-2d",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "B", ElemBytes: 8, Dims: []int64{n, n}},
		},
		Root: []ir.Node{il},
	}
}

func jacobi2dModel() *perfmodel.KernelModel {
	T := float64(jacobiSweeps)
	return &perfmodel.KernelModel{
		Name:     "jacobi-2d",
		TileDims: 2,
		Flops:    func(n int64) float64 { return 5 * T * float64(n) * float64(n) },
		Accesses: func(n int64) float64 { return 6 * T * float64(n) * float64(n) },
		WorkingSet: func(n int64, t []int64) int64 {
			ti, tj := clip(t[0], n), clip(t[1], n)
			return 8 * ((ti+2)*(tj+2) + ti*tj)
		},
		LevelTraffic: jacobi2dLevelTraffic,
		ParIters: func(n int64, t []int64) int64 {
			return ceilDiv(n, clip(t[0], n)) * ceilDiv(n, clip(t[1], n))
		},
		InnerTrip: func(n int64, t []int64) float64 { return float64(clip(t[1], n)) },
		TotalData: func(n int64) int64 { return 2 * 8 * n * n },
	}
}

// jacobi2dLevelTraffic: reuse tiers for the 5-point two-array sweep.
// With the tile resident, each sweep moves the tile working set once
// per tile visit (halo rows refetched between vertically adjacent
// tiles). With only three source rows of the tile width resident the
// vertical reuse inside the tile survives and the traffic is near
// compulsory; losing the rows costs a threefold refetch of the source
// grid; a level that cannot even hold a handful of cache lines per
// stream degenerates to line-per-access behaviour.
func jacobi2dLevelTraffic(n int64, t []int64, c perfmodel.Capacity) float64 {
	ti, tj := clip(t[0], n), clip(t[1], n)
	cap := c.PerThread
	T := float64(jacobiSweeps)
	n2 := 8 * float64(n) * float64(n)
	rows := 8 * 4 * (tj + 2) // 3 source rows + 1 destination row of tile width
	wsTile := 8 * ((ti+2)*(tj+2) + ti*tj)
	if cap < 8*4*8 {
		// Cannot hold even a few lines per stream: line per access.
		return T * 8 * 6 * n2
	}
	if cap < rows {
		// Row reuse lost: three read streams plus the write stream.
		return T * 4 * n2
	}
	// Rows resident: vertical in-tile reuse works but horizontal halo
	// columns are refetched; near-compulsory with the halo overhead of
	// narrow tiles.
	overhead := float64(tj+2) / float64(tj)
	rowTraffic := T * 2 * n2 * overhead
	if cap < wsTile {
		return rowTraffic
	}
	// Tile resident: per-visit tile working set — never worse than the
	// row-resident pattern the same cache could fall back to.
	tiles := float64(ceilDiv(n, ti) * ceilDiv(n, tj))
	tileTraffic := T * tiles * 8 * float64((ti+2)*(tj+2)+ti*tj)
	if tileTraffic < rowTraffic {
		return tileTraffic
	}
	return rowTraffic
}

// RunJacobi2D executes the real tiled parallel Jacobi sweep,
// alternating the role of the two arrays each time step.
func RunJacobi2D(n int64, tiles []int64, threads int) (float64, error) {
	if len(tiles) != 2 {
		return 0, fmt.Errorf("jacobi-2d: want 2 tile sizes, got %d", len(tiles))
	}
	if n < 3 || threads < 1 {
		return 0, fmt.Errorf("jacobi-2d: invalid n=%d threads=%d", n, threads)
	}
	ti, tj := clip(tiles[0], n), clip(tiles[1], n)
	N := int(n)
	A := make([]float64, N*N)
	B := make([]float64, N*N)
	for i := range A {
		A[i] = float64(i % 17)
	}
	src, dst := A, B
	inner := N - 2
	nti, ntj := int(ceilDiv(int64(inner), ti)), int(ceilDiv(int64(inner), tj))
	total := nti * ntj
	for sweep := 0; sweep < jacobiSweeps; sweep++ {
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			lo, hi := t*total/threads, (t+1)*total/threads
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(src, dst []float64, lo, hi int) {
				defer wg.Done()
				for it := lo; it < hi; it++ {
					i0 := 1 + (it/ntj)*int(ti)
					j0 := 1 + (it%ntj)*int(tj)
					i1, j1 := minInt(i0+int(ti), N-1), minInt(j0+int(tj), N-1)
					for i := i0; i < i1; i++ {
						for j := j0; j < j1; j++ {
							dst[i*N+j] = 0.2 * (src[i*N+j] + src[(i-1)*N+j] + src[(i+1)*N+j] +
								src[i*N+j-1] + src[i*N+j+1])
						}
					}
				}
			}(src, dst, lo, hi)
		}
		wg.Wait()
		src, dst = dst, src
	}
	return checksum(src), nil
}
