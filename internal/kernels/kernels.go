// Package kernels provides the five benchmark kernels of the paper's
// evaluation (mm, dsyrk, jacobi-2d, 3d-stencil, n-body), each in three
// coupled representations:
//
//  1. a MiniIR program for the analyzer/transformation pipeline,
//  2. an analytical KernelModel consumed by the simulated evaluator
//     (internal/perfmodel), and
//  3. a real, goroutine-parallel tiled Go implementation for measured
//     tuning and the runnable examples.
//
// Table IV of the paper (computation/memory complexity per kernel) is
// carried as metadata on each kernel.
package kernels

import (
	"fmt"
	"sort"

	"autotune/internal/ir"
	"autotune/internal/perfmodel"
)

// Complexity mirrors one row of the paper's Table IV.
type Complexity struct {
	Compute string // e.g. "O(N^3)"
	Memory  string // e.g. "O(N^2)"
}

// Runner executes the kernel once with the given problem size, tile
// sizes and thread count, returning a checksum for validation.
type Runner func(n int64, tiles []int64, threads int) (float64, error)

// Kernel bundles all representations of one benchmark.
type Kernel struct {
	Name       string
	Complexity Complexity
	// DefaultN is the problem size used throughout the paper-style
	// evaluation.
	DefaultN int64
	// BenchN is a smaller problem size for quick measured runs and CI.
	BenchN int64
	// TileDims is the number of tile-size parameters.
	TileDims int
	// Collapse reports whether the two outermost tile loops may be
	// collapsed before parallelization.
	Collapse bool
	// IR builds the kernel's MiniIR program.
	IR func(n int64) *ir.Program
	// Model is the analytical performance model.
	Model *perfmodel.KernelModel
	// Run executes the real Go implementation.
	Run Runner
	// Extension marks kernels beyond the paper's evaluation set; the
	// paper-reproduction experiments skip them.
	Extension bool
}

var registry = map[string]*Kernel{}

func register(k *Kernel) {
	if _, dup := registry[k.Name]; dup {
		panic("kernels: duplicate kernel " + k.Name)
	}
	registry[k.Name] = k
}

// ByName returns a registered kernel.
func ByName(name string) (*Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown kernel %q (have %v)", name, Names())
	}
	return k, nil
}

// Names lists all registered kernels in stable order.
func Names() []string {
	var names []string
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns all kernels in stable name order.
func All() []*Kernel {
	var out []*Kernel
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// Paper returns the five kernels of the paper's evaluation (extensions
// excluded), in stable name order.
func Paper() []*Kernel {
	var out []*Kernel
	for _, k := range All() {
		if !k.Extension {
			out = append(out, k)
		}
	}
	return out
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// clip bounds a tile size to [1, n].
func clip(t, n int64) int64 {
	if t < 1 {
		return 1
	}
	if t > n {
		return n
	}
	return t
}
