package kernels

import (
	"fmt"
	"sync"

	"autotune/internal/ir"
	"autotune/internal/perfmodel"
)

func init() {
	register(&Kernel{
		Name:       "atax",
		Complexity: Complexity{Compute: "O(N^2)", Memory: "O(N^2)"},
		DefaultN:   4096,
		BenchN:     512,
		TileDims:   2,
		Collapse:   false, // the j loop carries the dot-product reduction
		IR:         AtaxProgram,
		Model:      ataxModel(),
		Run:        RunAtax,
		Extension:  true,
	})
}

// AtaxProgram builds the PolyBench atax kernel's first stage
// w = A·x as the tunable region (the second stage y = Aᵀ·w has the
// mirrored structure; both stages appear in the program so multi-region
// tuning sees two distinct nests).
func AtaxProgram(n int64) *ir.Program {
	stage1 := &ir.Stmt{
		Label:  "w[i] += A[i][j]*x[j]",
		Writes: []ir.Access{{Array: "w", Indices: []ir.Affine{ir.Var("i")}}},
		Reads: []ir.Access{
			{Array: "w", Indices: []ir.Affine{ir.Var("i")}},
			{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}},
			{Array: "x", Indices: []ir.Affine{ir.Var("j")}},
		},
		Flops: 2,
	}
	j1 := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{stage1}}
	i1 := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{j1}}

	stage2 := &ir.Stmt{
		Label:  "y[p] += A[q][p]*w[q]",
		Writes: []ir.Access{{Array: "y", Indices: []ir.Affine{ir.Var("p")}}},
		Reads: []ir.Access{
			{Array: "y", Indices: []ir.Affine{ir.Var("p")}},
			{Array: "A", Indices: []ir.Affine{ir.Var("q"), ir.Var("p")}},
			{Array: "w", Indices: []ir.Affine{ir.Var("q")}},
		},
		Flops: 2,
	}
	q2 := &ir.Loop{Var: "q", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{stage2}}
	p2 := &ir.Loop{Var: "p", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{q2}}

	return &ir.Program{
		Name: "atax",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "x", ElemBytes: 8, Dims: []int64{n}},
			{Name: "w", ElemBytes: 8, Dims: []int64{n}},
			{Name: "y", ElemBytes: 8, Dims: []int64{n}},
		},
		Root: []ir.Node{i1, p2},
	}
}

func ataxModel() *perfmodel.KernelModel {
	return &perfmodel.KernelModel{
		Name:     "atax",
		TileDims: 2,
		// Both stages: 2 × 2N² flops.
		Flops:    func(n int64) float64 { return 4 * float64(n) * float64(n) },
		Accesses: func(n int64) float64 { return 8 * float64(n) * float64(n) },
		WorkingSet: func(n int64, t []int64) int64 {
			ti, tj := clip(t[0], n), clip(t[1], n)
			// A tile + x slice + w slice.
			return 8 * (ti*tj + tj + ti)
		},
		LevelTraffic: ataxLevelTraffic,
		ParIters:     func(n int64, t []int64) int64 { return ceilDiv(n, clip(t[0], n)) },
		InnerTrip:    func(n int64, t []int64) float64 { return float64(clip(t[1], n)) },
		TotalData:    func(n int64) int64 { return 8 * (n*n + 3*n) },
	}
}

// ataxLevelTraffic: the matrix A streams once per stage (no reuse —
// the defining property of BLAS-2), so traffic is near-compulsory for
// A; the vectors x and w are reused across rows and need residency.
// When the x slice falls out of the cache, it is refetched per row.
func ataxLevelTraffic(n int64, t []int64, c perfmodel.Capacity) float64 {
	ti, tj := clip(t[0], n), clip(t[1], n)
	nf := float64(n)
	aBytes := 2 * 8 * nf * nf // both stages stream A once
	vecSlice := 8 * tj
	if c.PerThread >= 8*n {
		// Whole vector resident: compulsory vector traffic.
		return aBytes + 6*8*nf
	}
	if c.PerThread >= vecSlice+8*ti {
		// The x slice persists across the rows of one tile: refetched
		// once per row-tile.
		return aBytes + float64(ceilDiv(n, ti))*8*nf
	}
	// Vector slice thrashes: refetched for every row.
	return aBytes + nf*8*nf
}

// RunAtax executes both stages with tiling (ti rows per parallel block,
// tj-wide dot-product blocking).
func RunAtax(n int64, tiles []int64, threads int) (float64, error) {
	if len(tiles) != 2 {
		return 0, fmt.Errorf("atax: want 2 tile sizes, got %d", len(tiles))
	}
	if n < 1 || threads < 1 {
		return 0, fmt.Errorf("atax: invalid n=%d threads=%d", n, threads)
	}
	ti, tj := clip(tiles[0], n), clip(tiles[1], n)
	N := int(n)
	A := make([]float64, N*N)
	x := make([]float64, N)
	w := make([]float64, N)
	y := make([]float64, N)
	for i := range A {
		A[i] = float64(i%9) * 0.125
	}
	for i := range x {
		x[i] = float64(i%11) * 0.25
	}
	parallelRows := func(body func(i int)) {
		blocks := int(ceilDiv(n, ti))
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			lo, hi := t*blocks/threads, (t+1)*blocks/threads
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for b := lo; b < hi; b++ {
					i0 := b * int(ti)
					i1 := minInt(i0+int(ti), N)
					for i := i0; i < i1; i++ {
						body(i)
					}
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	// Stage 1: w = A·x.
	parallelRows(func(i int) {
		sum := 0.0
		for j0 := 0; j0 < N; j0 += int(tj) {
			j1 := minInt(j0+int(tj), N)
			for j := j0; j < j1; j++ {
				sum += A[i*N+j] * x[j]
			}
		}
		w[i] = sum
	})
	// Stage 2: y = Aᵀ·w, parallel over output elements p.
	parallelRows(func(p int) {
		sum := 0.0
		for q0 := 0; q0 < N; q0 += int(tj) {
			q1 := minInt(q0+int(tj), N)
			for q := q0; q < q1; q++ {
				sum += A[q*N+p] * w[q]
			}
		}
		y[p] = sum
	})
	return checksum(y), nil
}
