package kernels

import (
	"fmt"
	"sync"

	"autotune/internal/ir"
	"autotune/internal/perfmodel"
)

func init() {
	register(&Kernel{
		Name:       "dsyrk",
		Complexity: Complexity{Compute: "O(N^3)", Memory: "O(N^2)"},
		DefaultN:   1400,
		BenchN:     256,
		TileDims:   3,
		Collapse:   true,
		IR:         DsyrkProgram,
		Model:      dsyrkModel(),
		Run:        RunDsyrk,
	})
}

// DsyrkProgram builds the BLAS-3 symmetric rank-k update
// B[i][j] += A[i][k] * A[j][k] (the on-the-fly transposition of the
// second operand keeps both streams row-aligned, unlike mm).
func DsyrkProgram(n int64) *ir.Program {
	stmt := &ir.Stmt{
		Label:  "B[i][j] += A[i][k]*A[j][k]",
		Writes: []ir.Access{{Array: "B", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}},
		Reads: []ir.Access{
			{Array: "B", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}},
			{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("k")}},
			{Array: "A", Indices: []ir.Affine{ir.Var("j"), ir.Var("k")}},
		},
		Flops: 2,
	}
	kl := &ir.Loop{Var: "k", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{stmt}}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{kl}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{jl}}
	return &ir.Program{
		Name: "dsyrk",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "B", ElemBytes: 8, Dims: []int64{n, n}},
		},
		Root: []ir.Node{il},
	}
}

func dsyrkModel() *perfmodel.KernelModel {
	return &perfmodel.KernelModel{
		Name:     "dsyrk",
		TileDims: 3,
		Flops:    func(n int64) float64 { return 2 * float64(n) * float64(n) * float64(n) },
		Accesses: func(n int64) float64 { return 4 * float64(n) * float64(n) * float64(n) },
		WorkingSet: func(n int64, t []int64) int64 {
			ti, tj, tk := clip(t[0], n), clip(t[1], n), clip(t[2], n)
			return 8 * (ti*tk + tj*tk + ti*tj)
		},
		LevelTraffic: dsyrkLevelTraffic,
		ParIters: func(n int64, t []int64) int64 {
			return ceilDiv(n, clip(t[0], n)) * ceilDiv(n, clip(t[1], n))
		},
		InnerTrip: func(n int64, t []int64) float64 { return float64(clip(t[2], n)) },
		TotalData: func(n int64) int64 { return 2 * 8 * n * n },
	}
}

// dsyrkLevelTraffic mirrors mmLevelTraffic with the crucial difference
// that the second operand A[j][k] is row-aligned (the on-the-fly
// transposition): losing the inner sub-tile costs a unit-stride
// restream (8·N³ bytes) and even the untiled fallback stays line-grain
// rather than paying a full line per scalar access as mm's column walk
// does.
func dsyrkLevelTraffic(n int64, t []int64, c perfmodel.Capacity) float64 {
	ti, tj, tk := clip(t[0], n), clip(t[1], n), clip(t[2], n)
	cap := c.PerThread
	n2 := 8 * float64(n) * float64(n)
	n3 := n2 * float64(n)
	slices := 8 * (2*tk + 2*tj)
	wsInner := 8*tj*tk + slices // A[j-tile][k-slice] block + slices
	if cap < slices {
		// Row-aligned streams: both A walks stay line-grain.
		return 2*n3 + 2*n2
	}
	if cap < wsInner {
		// The A[j] block is refetched for every i.
		return n3 + float64(ceilDiv(n, tj))*n2 + 2*float64(ceilDiv(n, tk))*n2
	}
	aLeft := float64(ceilDiv(n, tj)) * n2 // A row panel (ti×N) per j_t
	if 8*ti*n+wsInner <= cap {
		aLeft = n2
	}
	aRight := float64(ceilDiv(n, ti)) * n2 // A (as transposed) per i_t
	if int64(n2)+wsInner <= cap {
		aRight = n2
	}
	bTerm := 2 * float64(ceilDiv(n, tk)) * n2 // B block per k_t
	if 8*ti*tj+wsInner <= cap {
		bTerm = 2 * n2
	}
	return aLeft + aRight + bTerm
}

// RunDsyrk executes the real tiled parallel rank-k update.
func RunDsyrk(n int64, tiles []int64, threads int) (float64, error) {
	if len(tiles) != 3 {
		return 0, fmt.Errorf("dsyrk: want 3 tile sizes, got %d", len(tiles))
	}
	if n < 1 || threads < 1 {
		return 0, fmt.Errorf("dsyrk: invalid n=%d threads=%d", n, threads)
	}
	ti, tj, tk := clip(tiles[0], n), clip(tiles[1], n), clip(tiles[2], n)
	N := int(n)
	A := make([]float64, N*N)
	B := make([]float64, N*N)
	for i := range A {
		A[i] = float64(i%11) * 0.125
	}
	nti, ntj := int(ceilDiv(n, ti)), int(ceilDiv(n, tj))
	total := nti * ntj
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo, hi := t*total/threads, (t+1)*total/threads
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for it := lo; it < hi; it++ {
				i0 := (it / ntj) * int(ti)
				j0 := (it % ntj) * int(tj)
				i1, j1 := minInt(i0+int(ti), N), minInt(j0+int(tj), N)
				for k0 := 0; k0 < N; k0 += int(tk) {
					k1 := minInt(k0+int(tk), N)
					for i := i0; i < i1; i++ {
						for j := j0; j < j1; j++ {
							sum := B[i*N+j]
							for k := k0; k < k1; k++ {
								sum += A[i*N+k] * A[j*N+k]
							}
							B[i*N+j] = sum
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return checksum(B), nil
}
