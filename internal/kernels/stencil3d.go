package kernels

import (
	"fmt"
	"sync"

	"autotune/internal/ir"
	"autotune/internal/perfmodel"
)

// stencilSweeps is the number of time steps a 3d-stencil run performs.
const stencilSweeps = 4

func init() {
	register(&Kernel{
		Name:       "3d-stencil",
		Complexity: Complexity{Compute: "O(N^3)", Memory: "O(N^3)"},
		DefaultN:   384,
		BenchN:     96,
		TileDims:   3,
		Collapse:   true,
		IR:         Stencil3DProgram,
		Model:      stencil3dModel(),
		Run:        RunStencil3D,
	})
}

// Stencil3DProgram builds one sweep of a generic 3x3x3 stencil over a
// cubic grid: B[i][j][k] = f(27 neighbours of A).
func Stencil3DProgram(n int64) *ir.Program {
	var reads []ir.Access
	for di := int64(-1); di <= 1; di++ {
		for dj := int64(-1); dj <= 1; dj++ {
			for dk := int64(-1); dk <= 1; dk++ {
				reads = append(reads, ir.Access{Array: "A", Indices: []ir.Affine{
					ir.Var("i").AddConst(di), ir.Var("j").AddConst(dj), ir.Var("k").AddConst(dk),
				}})
			}
		}
	}
	stmt := &ir.Stmt{
		Label:  "B[i][j][k] = avg27(A)",
		Writes: []ir.Access{{Array: "B", Indices: []ir.Affine{ir.Var("i"), ir.Var("j"), ir.Var("k")}}},
		Reads:  reads,
		Flops:  27,
	}
	kl := &ir.Loop{Var: "k", Lo: ir.Con(1), Hi: ir.Con(n - 1), Step: 1, Body: []ir.Node{stmt}}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(1), Hi: ir.Con(n - 1), Step: 1, Body: []ir.Node{kl}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(1), Hi: ir.Con(n - 1), Step: 1, Body: []ir.Node{jl}}
	return &ir.Program{
		Name: "3d-stencil",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n, n, n}},
			{Name: "B", ElemBytes: 8, Dims: []int64{n, n, n}},
		},
		Root: []ir.Node{il},
	}
}

func stencil3dModel() *perfmodel.KernelModel {
	T := float64(stencilSweeps)
	return &perfmodel.KernelModel{
		Name:     "3d-stencil",
		TileDims: 3,
		Flops: func(n int64) float64 {
			return 30 * T * float64(n) * float64(n) * float64(n)
		},
		Accesses: func(n int64) float64 {
			return 28 * T * float64(n) * float64(n) * float64(n)
		},
		WorkingSet: func(n int64, t []int64) int64 {
			ti, tj, tk := clip(t[0], n), clip(t[1], n), clip(t[2], n)
			return 8 * ((ti+2)*(tj+2)*(tk+2) + ti*tj*tk)
		},
		LevelTraffic: stencil3dLevelTraffic,
		ParIters: func(n int64, t []int64) int64 {
			return ceilDiv(n, clip(t[0], n)) * ceilDiv(n, clip(t[1], n))
		},
		InnerTrip: func(n int64, t []int64) float64 { return float64(clip(t[2], n)) },
		TotalData: func(n int64) int64 { return 2 * 8 * n * n * n },
	}
}

// stencil3dLevelTraffic: reuse tiers for the 27-point two-array sweep.
// Plane reuse (three source planes of the tile cross-section resident)
// brings traffic near compulsory; with only rows resident each plane is
// refetched three times; below that the nine row streams all refetch.
func stencil3dLevelTraffic(n int64, t []int64, c perfmodel.Capacity) float64 {
	ti, tj, tk := clip(t[0], n), clip(t[1], n), clip(t[2], n)
	cap := c.PerThread
	T := float64(stencilSweeps)
	n3 := 8 * float64(n) * float64(n) * float64(n)
	rows := 8 * (3*3*(tk+2) + tk) // 3x3 source rows + destination row
	planes := 8 * (3*(tj+2)*(tk+2) + tj*tk)
	wsTile := 8 * ((ti+2)*(tj+2)*(tk+2) + ti*tj*tk)
	if cap < 8*10*8 {
		return T * 8 * 28 * n3 / 8 // line per access on all streams
	}
	if cap < rows {
		// Row reuse lost: nine read streams plus the write stream.
		return T * 10 * n3
	}
	if cap < planes {
		// Rows resident, planes not: each source plane read three
		// times (as k-1, k, k+1 neighbour), plus the write stream.
		return T * 4 * n3
	}
	// Planes resident: near-compulsory with 3-D halo overhead.
	overheadJ := float64(tj+2) / float64(tj)
	overheadK := float64(tk+2) / float64(tk)
	planeTraffic := T * 2 * n3 * overheadJ * overheadK
	if cap < wsTile {
		return planeTraffic
	}
	tiles := float64(ceilDiv(n, ti) * ceilDiv(n, tj) * ceilDiv(n, tk))
	tileTraffic := T * tiles * 8 * float64((ti+2)*(tj+2)*(tk+2)+ti*tj*tk)
	if tileTraffic < planeTraffic {
		return tileTraffic
	}
	return planeTraffic
}

// RunStencil3D executes the real tiled parallel 27-point stencil.
func RunStencil3D(n int64, tiles []int64, threads int) (float64, error) {
	if len(tiles) != 3 {
		return 0, fmt.Errorf("3d-stencil: want 3 tile sizes, got %d", len(tiles))
	}
	if n < 3 || threads < 1 {
		return 0, fmt.Errorf("3d-stencil: invalid n=%d threads=%d", n, threads)
	}
	ti, tj, tk := clip(tiles[0], n), clip(tiles[1], n), clip(tiles[2], n)
	N := int(n)
	A := make([]float64, N*N*N)
	B := make([]float64, N*N*N)
	for i := range A {
		A[i] = float64(i % 23)
	}
	src, dst := A, B
	inner := N - 2
	nti, ntj := int(ceilDiv(int64(inner), ti)), int(ceilDiv(int64(inner), tj))
	total := nti * ntj
	idx := func(i, j, k int) int { return (i*N+j)*N + k }
	for sweep := 0; sweep < stencilSweeps; sweep++ {
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			lo, hi := t*total/threads, (t+1)*total/threads
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(src, dst []float64, lo, hi int) {
				defer wg.Done()
				for it := lo; it < hi; it++ {
					i0 := 1 + (it/ntj)*int(ti)
					j0 := 1 + (it%ntj)*int(tj)
					i1, j1 := minInt(i0+int(ti), N-1), minInt(j0+int(tj), N-1)
					for k0 := 1; k0 < N-1; k0 += int(tk) {
						k1 := minInt(k0+int(tk), N-1)
						for i := i0; i < i1; i++ {
							for j := j0; j < j1; j++ {
								for k := k0; k < k1; k++ {
									s := 0.0
									for di := -1; di <= 1; di++ {
										for dj := -1; dj <= 1; dj++ {
											for dk := -1; dk <= 1; dk++ {
												s += src[idx(i+di, j+dj, k+dk)]
											}
										}
									}
									dst[idx(i, j, k)] = s / 27
								}
							}
						}
					}
				}
			}(src, dst, lo, hi)
		}
		wg.Wait()
		src, dst = dst, src
	}
	return checksum(src), nil
}
