package kernels

import (
	"fmt"
	"sync"

	"autotune/internal/ir"
	"autotune/internal/perfmodel"
)

func init() {
	register(&Kernel{
		Name:       "mm",
		Complexity: Complexity{Compute: "O(N^3)", Memory: "O(N^2)"},
		DefaultN:   1400,
		BenchN:     256,
		TileDims:   3,
		Collapse:   true,
		IR:         MMProgram,
		Model:      mmModel(),
		Run:        RunMM,
	})
}

// MMProgram builds the paper's Fig. 7 matrix-multiplication kernel in
// IJK order: C[i][j] += A[i][k] * B[k][j].
func MMProgram(n int64) *ir.Program {
	stmt := &ir.Stmt{
		Label:  "C[i][j] += A[i][k]*B[k][j]",
		Writes: []ir.Access{{Array: "C", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}},
		Reads: []ir.Access{
			{Array: "C", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}},
			{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("k")}},
			{Array: "B", Indices: []ir.Affine{ir.Var("k"), ir.Var("j")}},
		},
		Flops: 2,
	}
	kl := &ir.Loop{Var: "k", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{stmt}}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{kl}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{jl}}
	return &ir.Program{
		Name: "mm",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "B", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "C", ElemBytes: 8, Dims: []int64{n, n}},
		},
		Root: []ir.Node{il},
	}
}

func mmModel() *perfmodel.KernelModel {
	return &perfmodel.KernelModel{
		Name:     "mm",
		TileDims: 3,
		Flops:    func(n int64) float64 { return 2 * float64(n) * float64(n) * float64(n) },
		Accesses: func(n int64) float64 { return 4 * float64(n) * float64(n) * float64(n) },
		WorkingSet: func(n int64, t []int64) int64 {
			ti, tj, tk := clip(t[0], n), clip(t[1], n), clip(t[2], n)
			return 8 * (ti*tk + tk*tj + ti*tj)
		},
		LevelTraffic: mmLevelTraffic,
		ParIters: func(n int64, t []int64) int64 {
			return ceilDiv(n, clip(t[0], n)) * ceilDiv(n, clip(t[1], n))
		},
		InnerTrip: func(n int64, t []int64) float64 { return float64(clip(t[2], n)) },
		TotalData: func(n int64) int64 { return 3 * 8 * n * n },
	}
}

// mmLevelTraffic performs the reuse-distance analysis for tiled IJK
// matrix multiply with tile loops (i_t, j_t, k_t) outside point loops
// (i, j, k). Reuse patterns, innermost outward:
//
//   - The inner (i, j, k) point loops reuse the B sub-tile (tk×tj)
//     across i, the A row slice (tk) across j, and the C element
//     across k. If the level cannot hold that inner working set, B is
//     refetched for every i — an 8·N³ stream; without even the row
//     slices the untiled IJK pathology appears: B pulls a full cache
//     line per scalar access (64·N³ bytes).
//   - Across tile visits: A's row panel (ti×N) is reused over j_t, the
//     whole B over i_t, and the C block (ti×tj) over k_t; each such
//     structure staying resident removes that operand's refetch
//     factor.
func mmLevelTraffic(n int64, t []int64, c perfmodel.Capacity) float64 {
	ti, tj, tk := clip(t[0], n), clip(t[1], n), clip(t[2], n)
	cap := c.PerThread
	n2 := 8 * float64(n) * float64(n)
	n3 := n2 * float64(n)
	slices := 8 * (2*tk + 2*tj) // A row slice, C row slice, margins
	wsInner := 8*tk*tj + slices
	if cap < slices {
		// Untiled pathology: B misses a full line per access.
		return 8*n3 + n3/8 + 2*n2
	}
	if cap < wsInner {
		// B sub-tile refetched for every i.
		return n3 + float64(ceilDiv(n, tj))*n2 + 2*float64(ceilDiv(n, tk))*n2
	}
	aTerm := float64(ceilDiv(n, tj)) * n2
	if 8*ti*n+wsInner <= cap {
		aTerm = n2 // A row panel persists across j_t
	}
	bTerm := float64(ceilDiv(n, ti)) * n2
	if int64(n2)+wsInner <= cap {
		bTerm = n2 // whole B persists across i_t
	}
	cTerm := 2 * float64(ceilDiv(n, tk)) * n2
	if 8*ti*tj+wsInner <= cap {
		cTerm = 2 * n2 // C block persists across k_t
	}
	return aTerm + bTerm + cTerm
}

// RunMM executes the real tiled, collapsed, parallel matrix multiply.
// tiles = (ti, tj, tk). It returns a checksum of C for validation.
func RunMM(n int64, tiles []int64, threads int) (float64, error) {
	if len(tiles) != 3 {
		return 0, fmt.Errorf("mm: want 3 tile sizes, got %d", len(tiles))
	}
	if n < 1 || threads < 1 {
		return 0, fmt.Errorf("mm: invalid n=%d threads=%d", n, threads)
	}
	ti, tj, tk := clip(tiles[0], n), clip(tiles[1], n), clip(tiles[2], n)
	N := int(n)
	A := make([]float64, N*N)
	B := make([]float64, N*N)
	C := make([]float64, N*N)
	for i := range A {
		A[i] = float64(i%13) * 0.25
		B[i] = float64(i%7) * 0.5
	}
	// Collapsed parallel iteration space over (i_t, j_t).
	nti, ntj := int(ceilDiv(n, ti)), int(ceilDiv(n, tj))
	total := nti * ntj
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo, hi := t*total/threads, (t+1)*total/threads
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for it := lo; it < hi; it++ {
				i0 := (it / ntj) * int(ti)
				j0 := (it % ntj) * int(tj)
				i1, j1 := minInt(i0+int(ti), N), minInt(j0+int(tj), N)
				for k0 := 0; k0 < N; k0 += int(tk) {
					k1 := minInt(k0+int(tk), N)
					for i := i0; i < i1; i++ {
						for j := j0; j < j1; j++ {
							sum := C[i*N+j]
							for k := k0; k < k1; k++ {
								sum += A[i*N+k] * B[k*N+j]
							}
							C[i*N+j] = sum
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return checksum(C), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func checksum(xs []float64) float64 {
	s := 0.0
	for i := 0; i < len(xs); i += 97 {
		s += xs[i]
	}
	return s
}
