package kernels

import (
	"math"
	"testing"

	"autotune/internal/ir"
	"autotune/internal/machine"
	"autotune/internal/perfmodel"
	"autotune/internal/polyhedral"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"2mm", "3d-stencil", "atax", "dsyrk", "jacobi-2d", "mm", "n-body"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("kernels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kernels = %v, want %v", got, want)
		}
	}
	paper := Paper()
	if len(paper) != 5 {
		t.Fatalf("Paper() = %d kernels, want the paper's 5", len(paper))
	}
	for _, k := range paper {
		if k.Extension {
			t.Fatalf("Paper() contains extension %s", k.Name)
		}
	}
	if len(All()) != 7 {
		t.Fatal("All() wrong")
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("mm")
	if err != nil || k.Name != "mm" {
		t.Fatalf("ByName(mm) = %v, %v", k, err)
	}
	if _, err := ByName("fft"); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestTableIVComplexities(t *testing.T) {
	cases := map[string]Complexity{
		"2mm":        {Compute: "O(N^3)", Memory: "O(N^2)"},
		"atax":       {Compute: "O(N^2)", Memory: "O(N^2)"},
		"mm":         {Compute: "O(N^3)", Memory: "O(N^2)"},
		"dsyrk":      {Compute: "O(N^3)", Memory: "O(N^2)"},
		"jacobi-2d":  {Compute: "O(N^2)", Memory: "O(N^2)"},
		"3d-stencil": {Compute: "O(N^3)", Memory: "O(N^3)"},
		"n-body":     {Compute: "O(N^2)", Memory: "O(N)"},
	}
	for name, want := range cases {
		k, _ := ByName(name)
		if k.Complexity != want {
			t.Errorf("%s complexity = %+v, want %+v", name, k.Complexity, want)
		}
	}
}

func TestIRProgramsValid(t *testing.T) {
	for _, k := range All() {
		p := k.IR(32)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid IR: %v", k.Name, err)
		}
		loops, stmts := ir.PerfectNest(p.Root[0])
		if len(loops) < 2 || len(stmts) == 0 {
			t.Errorf("%s: unexpected nest shape %d loops %d stmts", k.Name, len(loops), len(stmts))
		}
	}
}

func TestIRLegality(t *testing.T) {
	// Every kernel's nest must be tilable over at least TileDims loops
	// and parallelizable at the outermost loop.
	for _, k := range All() {
		p := k.IR(32)
		loops, stmts := ir.PerfectNest(p.Root[0])
		deps := polyhedral.Analyze(loops, stmts)
		band := polyhedral.MaxTilableBand(deps, len(loops))
		if band < k.TileDims {
			t.Errorf("%s: tilable band %d < tile dims %d", k.Name, band, k.TileDims)
		}
		if !polyhedral.ParallelLoop(deps, 0) {
			t.Errorf("%s: outermost loop not parallel", k.Name)
		}
		if k.Collapse {
			if !polyhedral.CollapsibleLoops(loops, deps, 0) {
				t.Errorf("%s: expected collapsible outer loops", k.Name)
			}
		}
	}
}

func TestModelsValidate(t *testing.T) {
	for _, k := range All() {
		if err := k.Model.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		if k.Model.TileDims != k.TileDims {
			t.Errorf("%s: model dims %d != kernel dims %d", k.Name, k.Model.TileDims, k.TileDims)
		}
	}
}

func TestModelSanity(t *testing.T) {
	for _, k := range All() {
		n := k.BenchN
		if f := k.Model.Flops(n); f <= 0 {
			t.Errorf("%s: flops = %v", k.Name, f)
		}
		if a := k.Model.Accesses(n); a <= 0 {
			t.Errorf("%s: accesses = %v", k.Name, a)
		}
		tiles := make([]int64, k.TileDims)
		for i := range tiles {
			tiles[i] = 16
		}
		if ws := k.Model.WorkingSet(n, tiles); ws <= 0 {
			t.Errorf("%s: working set = %d", k.Name, ws)
		}
		if it := k.Model.ParIters(n, tiles); it <= 0 {
			t.Errorf("%s: par iters = %d", k.Name, it)
		}
		if d := k.Model.TotalData(n); d <= 0 {
			t.Errorf("%s: total data = %d", k.Name, d)
		}
	}
}

// Larger caches never see more traffic: LevelTraffic must be
// non-increasing in capacity for every kernel.
func TestLevelTrafficMonotoneInCapacity(t *testing.T) {
	for _, k := range All() {
		n := k.DefaultN
		tileSets := [][]int64{}
		base := []int64{8, 64, 16, 128, 32}
		for _, t0 := range base[:3] {
			tiles := make([]int64, k.TileDims)
			for i := range tiles {
				tiles[i] = t0 * int64(i+1)
			}
			tileSets = append(tileSets, tiles)
		}
		for _, tiles := range tileSets {
			prev := math.Inf(1)
			for capBytes := int64(1 << 10); capBytes <= 1<<30; capBytes *= 2 {
				c := perfmodel.Capacity{PerThread: capBytes, Total: capBytes, Sharers: 1}
				tr := k.Model.LevelTraffic(n, tiles, c)
				if tr < 0 || math.IsNaN(tr) {
					t.Fatalf("%s: traffic = %v", k.Name, tr)
				}
				if tr > prev*1.0000001 {
					t.Errorf("%s tiles %v: traffic grew from %v to %v at cap %d",
						k.Name, tiles, prev, tr, capBytes)
					break
				}
				prev = tr
			}
		}
	}
}

// bestTiles finds the best configuration on a coarse grid for the
// given kernel, machine and thread count.
func bestTiles(t *testing.T, k *Kernel, m *machine.Machine, threads int, grid []int64) ([]int64, float64) {
	t.Helper()
	mo := perfmodel.New(m)
	best := math.Inf(1)
	var bestT []int64
	var rec func(prefix []int64)
	rec = func(prefix []int64) {
		if len(prefix) == k.TileDims {
			tm, err := mo.Time(k.Model, k.DefaultN, prefix, threads, 0)
			if err != nil {
				return
			}
			if tm < best {
				best = tm
				bestT = append([]int64(nil), prefix...)
			}
			return
		}
		for _, g := range grid {
			if g > k.DefaultN {
				continue
			}
			rec(append(prefix, g))
		}
	}
	rec(nil)
	if bestT == nil {
		t.Fatalf("%s: no valid configuration found", k.Name)
	}
	return bestT, best
}

var coarseGrid = []int64{8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// Paper Fig. 1 / Table III shape: speedup grows monotonically with the
// thread count while efficiency decays.
func TestMMSpeedupEfficiencyShape(t *testing.T) {
	mm, _ := ByName("mm")
	for _, m := range []*machine.Machine{machine.Westmere(), machine.Barcelona()} {
		threadsList := []int{1, 5, 10, 20, 40}
		if m.Name == "Barcelona" {
			threadsList = []int{1, 2, 4, 8, 16, 32}
		}
		var tseq float64
		prevSpeedup := 0.0
		prevEff := 1.1
		for _, th := range threadsList {
			_, tm := bestTiles(t, mm, m, th, coarseGrid)
			if th == 1 {
				tseq = tm
			}
			sp := perfmodel.Speedup(tseq, tm)
			eff := perfmodel.Efficiency(tseq, tm, th)
			if sp < prevSpeedup {
				t.Errorf("%s: speedup not monotone at %d threads (%v < %v)", m.Name, th, sp, prevSpeedup)
			}
			if eff > prevEff+0.02 {
				t.Errorf("%s: efficiency increased at %d threads (%v > %v)", m.Name, th, eff, prevEff)
			}
			prevSpeedup, prevEff = sp, eff
		}
		// Efficiency at the largest thread count is clearly below 1.
		if prevEff > 0.9 {
			t.Errorf("%s: efficiency at max threads = %v, want < 0.9", m.Name, prevEff)
		}
	}
}

// Paper Table II shape: a configuration tuned for one thread count
// loses performance at another.
func TestMMCrossThreadLossExists(t *testing.T) {
	mm, _ := ByName("mm")
	m := machine.Westmere()
	mo := perfmodel.New(m)
	t1Tiles, _ := bestTiles(t, mm, m, 1, coarseGrid)
	_, best40 := bestTiles(t, mm, m, 40, coarseGrid)
	cross, err := mo.Time(mm.Model, mm.DefaultN, t1Tiles, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cross < best40 {
		t.Fatalf("1-thread tiles cannot beat 40-thread optimum: %v < %v", cross, best40)
	}
	loss := cross/best40 - 1
	if loss < 0.01 {
		t.Errorf("cross-thread loss = %.3f, want noticeable (> 1%%)", loss)
	}
}

// Paper Table V shape: n-body is insensitive to thread-specific tuning
// on Westmere (fits the 30 MB L3) but highly sensitive on Barcelona
// (2 MB L3).
func TestNBodyAsymmetryAcrossMachines(t *testing.T) {
	nb, _ := ByName("n-body")
	grid := []int64{64, 256, 1024, 4096, 16384}
	crossLoss := func(m *machine.Machine, fromThreads, toThreads int) float64 {
		mo := perfmodel.New(m)
		fromTiles, _ := bestTiles(t, nb, m, fromThreads, grid)
		_, bestTo := bestTiles(t, nb, m, toThreads, grid)
		cross, err := mo.Time(nb.Model, nb.DefaultN, fromTiles, toThreads, 0)
		if err != nil {
			t.Fatal(err)
		}
		return cross/bestTo - 1
	}
	wLoss := crossLoss(machine.Westmere(), 1, 40)
	bLoss := crossLoss(machine.Barcelona(), 1, 32)
	if wLoss > 0.10 {
		t.Errorf("Westmere n-body cross loss = %.3f, want ~0 (fits L3)", wLoss)
	}
	if bLoss < 0.5 {
		t.Errorf("Barcelona n-body cross loss = %.3f, want large (tiny L3)", bLoss)
	}
}

// The untiled configuration is far slower than the tuned one — the
// "GCC -O3 baseline" row of Table II.
func TestUntiledGap(t *testing.T) {
	mm, _ := ByName("mm")
	for _, m := range []*machine.Machine{machine.Westmere(), machine.Barcelona()} {
		mo := perfmodel.New(m)
		_, best := bestTiles(t, mm, m, 1, coarseGrid)
		untiled, err := mo.Time(mm.Model, mm.DefaultN, []int64{mm.DefaultN, mm.DefaultN, mm.DefaultN}, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if untiled/best < 3 {
			t.Errorf("%s: untiled/tiled = %.2f, want the enormous tiling gap (> 3x)", m.Name, untiled/best)
		}
	}
}

// dsyrk's aligned streams make its untiled fallback far less
// catastrophic than mm's column-walking one.
func TestDsyrkAlignedStreamsBeatMMUntiled(t *testing.T) {
	mm, _ := ByName("mm")
	dk, _ := ByName("dsyrk")
	m := machine.Westmere()
	mo := perfmodel.New(m)
	n := int64(1400)
	mmUntiled, _ := mo.Time(mm.Model, n, []int64{n, n, n}, 1, 0)
	dkUntiled, _ := mo.Time(dk.Model, n, []int64{n, n, n}, 1, 0)
	if dkUntiled >= mmUntiled {
		t.Fatalf("dsyrk untiled (%v) should beat mm untiled (%v)", dkUntiled, mmUntiled)
	}
}

func TestRunnersProduceConsistentChecksums(t *testing.T) {
	if testing.Short() {
		t.Skip("real kernel execution")
	}
	for _, k := range All() {
		n := k.BenchN / 4
		if n < 8 {
			n = 8
		}
		tiles := make([]int64, k.TileDims)
		for i := range tiles {
			tiles[i] = 16
		}
		seq, err := k.Run(n, tiles, 1)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		par, err := k.Run(n, tiles, 4)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if math.Abs(seq-par) > 1e-6*math.Max(1, math.Abs(seq)) {
			t.Errorf("%s: parallel checksum %v != sequential %v", k.Name, par, seq)
		}
		// Different tiling, same result.
		tiles2 := make([]int64, k.TileDims)
		for i := range tiles2 {
			tiles2[i] = 7
		}
		alt, err := k.Run(n, tiles2, 3)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if math.Abs(seq-alt) > 1e-6*math.Max(1, math.Abs(seq)) {
			t.Errorf("%s: tiled checksum %v != reference %v", k.Name, alt, seq)
		}
	}
}

func TestRunnersRejectBadArguments(t *testing.T) {
	for _, k := range All() {
		if _, err := k.Run(64, nil, 1); err == nil {
			t.Errorf("%s: nil tiles accepted", k.Name)
		}
		tiles := make([]int64, k.TileDims)
		for i := range tiles {
			tiles[i] = 8
		}
		if _, err := k.Run(64, tiles, 0); err == nil {
			t.Errorf("%s: 0 threads accepted", k.Name)
		}
	}
}

func TestCeilDivAndClip(t *testing.T) {
	if ceilDiv(10, 3) != 4 || ceilDiv(9, 3) != 3 || ceilDiv(10, 0) != 10 {
		t.Error("ceilDiv wrong")
	}
	if clip(0, 10) != 1 || clip(5, 10) != 5 || clip(20, 10) != 10 {
		t.Error("clip wrong")
	}
}
