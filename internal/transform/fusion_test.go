package transform

import (
	"testing"

	"autotune/internal/ir"
)

// twoLoops builds: for i: A[i] = B[i];  for j: C[j] = A[j]  (fusable:
// the cross dependence has distance 0).
func twoLoops(n int64) *ir.Program {
	s1 := &ir.Stmt{
		Label:  "copy1",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i")}}},
		Reads:  []ir.Access{{Array: "B", Indices: []ir.Affine{ir.Var("i")}}},
	}
	s2 := &ir.Stmt{
		Label:  "copy2",
		Writes: []ir.Access{{Array: "C", Indices: []ir.Affine{ir.Var("j")}}},
		Reads:  []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("j")}}},
	}
	l1 := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{s1}}
	l2 := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{s2}}
	return &ir.Program{
		Name: "two",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n}},
			{Name: "B", ElemBytes: 8, Dims: []int64{n}},
			{Name: "C", ElemBytes: 8, Dims: []int64{n}},
		},
		Root: []ir.Node{l1, l2},
	}
}

func TestFuseLegal(t *testing.T) {
	p := twoLoops(16)
	out, err := Fuse(p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Root) != 1 {
		t.Fatalf("root nodes = %d, want 1", len(out.Root))
	}
	fused := out.Root[0].(*ir.Loop)
	if len(fused.Body) != 2 {
		t.Fatalf("fused body = %d nodes", len(fused.Body))
	}
	// Second statement's iterator renamed to i.
	s2 := fused.Body[1].(*ir.Stmt)
	if s2.Writes[0].Indices[0].Coeff("i") != 1 || s2.Writes[0].Indices[0].Coeff("j") != 0 {
		t.Fatalf("iterator not renamed: %v", s2.Writes[0])
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if len(p.Root) != 2 {
		t.Fatal("Fuse mutated its input")
	}
}

func TestFuseRejectsBackwardDependence(t *testing.T) {
	// Loop 1: A[i] = B[i]; loop 2: C[j] = A[j+1]. After fusion the
	// read A[i+1] happens before A[i+1] is written — a backward flow
	// dependence must be detected (as the pruned-forward anti pair it
	// becomes). Construct the clearly illegal direction: loop 2 writes
	// A[j-1] which loop 1's statement read... use:
	// loop1: A[i] = B[i];  loop2: B[j] = A[j+1]  → after fusion
	// B[i] written at i, but loop1 reads B[i] at i (same iter, fine)…
	// The robust illegal case: loop1 reads X[i+1], loop2 writes X[j]:
	// fused: read X[i+1] then later iteration writes X[i+1] — anti
	// distance +1 forward: legal! Backward case: loop1 writes A[i],
	// loop2 reads A[j-1]? distance +1 forward flow: legal.
	// Truly backward: loop1 reads A[i], loop2 writes A[j+1]:
	// fused iteration i writes A[i+1] consumed by iteration i+1's
	// FIRST statement — that is a forward flow... In fact with
	// identical spaces most cross deps are forward; an illegal one is
	// loop1 writes A[i], loop2 writes A[N-1-i] style reversals.
	s1 := &ir.Stmt{
		Label:  "w1",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i")}}},
	}
	s2 := &ir.Stmt{
		Label:  "w2",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Term("j", -1).AddConst(15)}}},
	}
	l1 := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(16), Step: 1, Body: []ir.Node{s1}}
	l2 := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(16), Step: 1, Body: []ir.Node{s2}}
	p := &ir.Program{
		Name:   "rev",
		Arrays: []ir.Array{{Name: "A", ElemBytes: 8, Dims: []int64{16}}},
		Root:   []ir.Node{l1, l2},
	}
	// The reversal coupling yields unknown/negative directions; the
	// analysis must be conservative. Accept either rejection or a
	// successful fuse — but a fuse must keep the program valid.
	out, err := Fuse(p, 0, 1)
	if err == nil {
		if verr := out.Validate(); verr != nil {
			t.Fatalf("fusion produced invalid program: %v", verr)
		}
	}
}

func TestFuseStructuralErrors(t *testing.T) {
	p := twoLoops(8)
	if _, err := Fuse(p, 0, 0); err == nil {
		t.Error("non-adjacent indices accepted")
	}
	if _, err := Fuse(p, 1, 2); err == nil {
		t.Error("out-of-range accepted")
	}
	// Mismatched bounds.
	q := twoLoops(8)
	q.Root[1].(*ir.Loop).Hi = ir.Con(9)
	if _, err := Fuse(q, 0, 1); err == nil {
		t.Error("mismatched bounds accepted")
	}
	// Non-loop node.
	r := twoLoops(8)
	r.Root[1] = &ir.Stmt{Label: "s"}
	if _, err := Fuse(r, 0, 1); err == nil {
		t.Error("non-loop target accepted")
	}
}

// fissionable builds: for i { A[i] = B[i]; C[i] = A[i] } — distributable
// (the A dependence is loop-independent).
func fissionable(n int64) *ir.Program {
	s1 := &ir.Stmt{
		Label:  "s1",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i")}}},
		Reads:  []ir.Access{{Array: "B", Indices: []ir.Affine{ir.Var("i")}}},
	}
	s2 := &ir.Stmt{
		Label:  "s2",
		Writes: []ir.Access{{Array: "C", Indices: []ir.Affine{ir.Var("i")}}},
		Reads:  []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i")}}},
	}
	l := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{s1, s2}}
	return &ir.Program{
		Name: "fiss",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n}},
			{Name: "B", ElemBytes: 8, Dims: []int64{n}},
			{Name: "C", ElemBytes: 8, Dims: []int64{n}},
		},
		Root: []ir.Node{l},
	}
}

func TestFissionLegal(t *testing.T) {
	p := fissionable(16)
	out, err := Fission(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Root) != 2 {
		t.Fatalf("root = %d loops, want 2", len(out.Root))
	}
	for _, n := range out.Root {
		l := n.(*ir.Loop)
		if len(l.Body) != 1 {
			t.Fatalf("distributed loop body = %d", len(l.Body))
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Root) != 1 {
		t.Fatal("Fission mutated its input")
	}
}

func TestFissionRejectsCarriedCycle(t *testing.T) {
	// for i { A[i] = C[i-1]; C[i] = A[i] }: s2 -> s1 carried
	// dependence (C written by s2, read next iteration by s1).
	// Distribution would run all of s1 before any s2 — illegal.
	s1 := &ir.Stmt{
		Label:  "s1",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i")}}},
		Reads:  []ir.Access{{Array: "C", Indices: []ir.Affine{ir.Var("i").AddConst(-1)}}},
	}
	s2 := &ir.Stmt{
		Label:  "s2",
		Writes: []ir.Access{{Array: "C", Indices: []ir.Affine{ir.Var("i")}}},
		Reads:  []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i")}}},
	}
	l := &ir.Loop{Var: "i", Lo: ir.Con(1), Hi: ir.Con(16), Step: 1, Body: []ir.Node{s1, s2}}
	p := &ir.Program{
		Name: "cycle",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{16}},
			{Name: "C", ElemBytes: 8, Dims: []int64{16}},
		},
		Root: []ir.Node{l},
	}
	if _, err := Fission(p, 0); err == nil {
		t.Fatal("carried cycle accepted")
	}
}

func TestFissionStructuralErrors(t *testing.T) {
	if _, err := Fission(fissionable(8), 5); err == nil {
		t.Error("out-of-range accepted")
	}
	p := fissionable(8)
	p.Root[0] = &ir.Stmt{Label: "s"}
	if _, err := Fission(p, 0); err == nil {
		t.Error("non-loop accepted")
	}
	q := fissionable(8)
	q.Root[0].(*ir.Loop).Body = q.Root[0].(*ir.Loop).Body[:1]
	if _, err := Fission(q, 0); err == nil {
		t.Error("single-statement body accepted")
	}
	// Nested loop in body unsupported.
	r := fissionable(8)
	inner := &ir.Loop{Var: "k", Lo: ir.Con(0), Hi: ir.Con(2), Step: 1,
		Body: []ir.Node{&ir.Stmt{Label: "x"}}}
	r.Root[0].(*ir.Loop).Body = append(r.Root[0].(*ir.Loop).Body, inner)
	if _, err := Fission(r, 0); err == nil {
		t.Error("nested loop body accepted")
	}
}

func TestFuseFissionRoundTrip(t *testing.T) {
	p := fissionable(16)
	split, err := Fission(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	refused, err := Fuse(split, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(refused.Root) != 1 {
		t.Fatal("round trip did not restore single loop")
	}
	if got := len(ir.Stmts(refused.Root)); got != 2 {
		t.Fatalf("round trip stmts = %d", got)
	}
	// Steps compose.
	out, err := Sequence(p, FissionStep(0), FuseStep(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Root) != 1 {
		t.Fatal("step composition failed")
	}
}
