package transform

import (
	"strings"
	"testing"
	"testing/quick"

	"autotune/internal/ir"
)

func mmProgram(n int64) *ir.Program {
	stmt := &ir.Stmt{
		Label:  "mm",
		Writes: []ir.Access{{Array: "C", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}},
		Reads: []ir.Access{
			{Array: "C", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}},
			{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("k")}},
			{Array: "B", Indices: []ir.Affine{ir.Var("k"), ir.Var("j")}},
		},
		Flops: 2,
	}
	kl := &ir.Loop{Var: "k", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{stmt}}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{kl}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{jl}}
	return &ir.Program{
		Name: "mm",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "B", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "C", ElemBytes: 8, Dims: []int64{n, n}},
		},
		Root: []ir.Node{il},
	}
}

// iterationCount walks the loop tree executing bounds, counting
// innermost statement executions. It is the ground truth for semantic
// preservation: any legal restructuring must execute each statement the
// same number of times.
func iterationCount(ns []ir.Node, env map[string]int64) int64 {
	var count int64
	for _, n := range ns {
		switch x := n.(type) {
		case *ir.Stmt:
			count++
		case *ir.Loop:
			lo := x.Lo.Eval(env)
			hi := x.EffectiveHi(env)
			for v := lo; v < hi; v += x.Step {
				env[x.Var] = v
				count += iterationCount(x.Body, env)
			}
			delete(env, x.Var)
		}
	}
	return count
}

func TestTilePreservesIterationCount(t *testing.T) {
	const n = 12
	orig := mmProgram(n)
	want := iterationCount(orig.Root, map[string]int64{})
	if want != n*n*n {
		t.Fatalf("baseline count = %d", want)
	}
	for _, tiles := range [][]int64{{4, 4, 4}, {5, 3, 7}, {12, 12, 12}, {100, 1, 2}, {1, 1, 1}, {4}, {4, 6}} {
		tiled, err := Tile(orig, tiles)
		if err != nil {
			t.Fatalf("Tile(%v): %v", tiles, err)
		}
		if err := tiled.Validate(); err != nil {
			t.Fatalf("Tile(%v) produced invalid IR: %v", tiles, err)
		}
		got := iterationCount(tiled.Root, map[string]int64{})
		if got != want {
			t.Errorf("Tile(%v): iterations = %d, want %d", tiles, got, want)
		}
	}
}

func TestTileDoesNotModifyInput(t *testing.T) {
	orig := mmProgram(8)
	before := orig.String()
	if _, err := Tile(orig, []int64{4, 4, 4}); err != nil {
		t.Fatal(err)
	}
	if orig.String() != before {
		t.Fatal("Tile mutated its input program")
	}
}

func TestTileStructure(t *testing.T) {
	tiled, err := Tile(mmProgram(16), []int64{4, 8, 2})
	if err != nil {
		t.Fatal(err)
	}
	loops, _ := ir.PerfectNest(tiled.Root[0])
	var order []string
	for _, l := range loops {
		order = append(order, l.Var)
	}
	want := "i_t,j_t,k_t,i,j,k"
	if strings.Join(order, ",") != want {
		t.Fatalf("loop order = %v, want %s", order, want)
	}
	if loops[0].Step != 4 || loops[1].Step != 8 || loops[2].Step != 2 {
		t.Fatalf("tile loop steps = %d,%d,%d", loops[0].Step, loops[1].Step, loops[2].Step)
	}
	// Point loops are capped by the original bound.
	if len(loops[3].Caps) != 1 || loops[3].Caps[0].Const != 16 {
		t.Fatalf("point loop caps = %v", loops[3].Caps)
	}
}

func TestTilePartialAndUnit(t *testing.T) {
	// Tile size 1 leaves the level untiled: only j gets a tile loop.
	tiled, err := Tile(mmProgram(16), []int64{1, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	loops, _ := ir.PerfectNest(tiled.Root[0])
	var order []string
	for _, l := range loops {
		order = append(order, l.Var)
	}
	if strings.Join(order, ",") != "j_t,i,j,k" {
		t.Fatalf("loop order = %v", order)
	}
}

func TestTileErrors(t *testing.T) {
	if _, err := Tile(&ir.Program{Name: "empty"}, []int64{2}); err == nil {
		t.Error("empty program should fail")
	}
	if _, err := Tile(mmProgram(8), []int64{2, 2, 2, 2}); err == nil {
		t.Error("too many tile sizes should fail")
	}
	if _, err := Tile(mmProgram(8), []int64{-1}); err == nil {
		t.Error("negative tile size should fail")
	}
	p := mmProgram(8)
	loops, _ := ir.PerfectNest(p.Root[0])
	loops[0].Step = 2
	if _, err := Tile(p, []int64{4}); err == nil {
		t.Error("tiling a non-unit-step loop should fail")
	}
}

func TestInterchange(t *testing.T) {
	p := mmProgram(8)
	want := iterationCount(p.Root, map[string]int64{})
	ikj, err := Interchange(p, []int{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	loops, _ := ir.PerfectNest(ikj.Root[0])
	if loops[0].Var != "i" || loops[1].Var != "k" || loops[2].Var != "j" {
		t.Fatalf("order = %s,%s,%s, want i,k,j", loops[0].Var, loops[1].Var, loops[2].Var)
	}
	if got := iterationCount(ikj.Root, map[string]int64{}); got != want {
		t.Fatalf("iterations = %d, want %d", got, want)
	}
	if err := ikj.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInterchangeRejectsTriangularViolation(t *testing.T) {
	// j's bound depends on i; moving j outside i must fail.
	stmt := &ir.Stmt{Label: "s", Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}}}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Var("i"), Step: 1, Body: []ir.Node{stmt}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(8), Step: 1, Body: []ir.Node{jl}}
	p := &ir.Program{Name: "tri", Arrays: []ir.Array{{Name: "A", ElemBytes: 8, Dims: []int64{8, 8}}}, Root: []ir.Node{il}}
	if _, err := Interchange(p, []int{1, 0}); err == nil {
		t.Error("interchange across a triangular bound should fail")
	}
}

func TestInterchangeInvalidPerm(t *testing.T) {
	p := mmProgram(8)
	for _, perm := range [][]int{{0, 0, 1}, {0, 1, 3}, {-1, 0, 1}, {0, 1, 2, 3}} {
		if _, err := Interchange(p, perm); err == nil {
			t.Errorf("perm %v should fail", perm)
		}
	}
}

func TestParallelize(t *testing.T) {
	p, err := Parallelize(mmProgram(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	loops, _ := ir.PerfectNest(p.Root[0])
	if !loops[0].Parallel || loops[0].Collapse != 2 {
		t.Fatalf("outer loop parallel=%v collapse=%d", loops[0].Parallel, loops[0].Collapse)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelizeErrors(t *testing.T) {
	if _, err := Parallelize(mmProgram(8), 0); err == nil {
		t.Error("collapse 0 should fail")
	}
	if _, err := Parallelize(mmProgram(8), 4); err == nil {
		t.Error("collapse beyond depth should fail")
	}
	if _, err := Parallelize(&ir.Program{Name: "e"}, 1); err == nil {
		t.Error("empty program should fail")
	}
	// Non-rectangular collapse.
	stmt := &ir.Stmt{Label: "s", Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}}}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Var("i"), Step: 1, Body: []ir.Node{stmt}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(8), Step: 1, Body: []ir.Node{jl}}
	p := &ir.Program{Name: "tri", Arrays: []ir.Array{{Name: "A", ElemBytes: 8, Dims: []int64{8, 8}}}, Root: []ir.Node{il}}
	if _, err := Parallelize(p, 2); err == nil {
		t.Error("non-rectangular collapse should fail")
	}
}

func TestUnrollPreservesAccessesPerIteration(t *testing.T) {
	p := mmProgram(8)
	u, err := Unroll(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	loops, _ := ir.PerfectNest(u.Root[0])
	inner := loops[len(loops)-1]
	if inner.Step != 4 {
		t.Fatalf("unrolled step = %d, want 4", inner.Step)
	}
	if len(inner.Body) != 4 {
		t.Fatalf("unrolled body statements = %d, want 4", len(inner.Body))
	}
	// Statement copies access k, k+1, k+2, k+3.
	for off, n := range inner.Body {
		s := n.(*ir.Stmt)
		ix := s.Reads[1].Indices[1] // A[i][k+off]
		if ix.Coeff("k") != 1 || ix.Const != int64(off) {
			t.Errorf("unroll copy %d reads A[i][%s]", off, ix.String())
		}
	}
	// Total statement executions unchanged.
	if got, want := iterationCount(u.Root, map[string]int64{}), int64(8*8*8); got != want {
		t.Fatalf("iterations = %d, want %d", got, want)
	}
}

func TestUnrollErrors(t *testing.T) {
	if _, err := Unroll(mmProgram(8), 0); err == nil {
		t.Error("factor 0 should fail")
	}
	if _, err := Unroll(mmProgram(8), 3); err == nil {
		t.Error("non-divisible factor should fail")
	}
	if _, err := Unroll(&ir.Program{Name: "e"}, 2); err == nil {
		t.Error("empty program should fail")
	}
	u, err := Unroll(mmProgram(8), 1)
	if err != nil || len(ir.Stmts(u.Root)) != 1 {
		t.Error("factor 1 should be identity")
	}
}

func TestSequenceComposesAndStopsOnError(t *testing.T) {
	p := mmProgram(16)
	out, err := Sequence(p,
		TileStep([]int64{4, 4, 4}),
		ParallelizeStep(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	loops, _ := ir.PerfectNest(out.Root[0])
	if loops[0].Var != "i_t" || !loops[0].Parallel || loops[0].Collapse != 2 {
		t.Fatalf("sequence result wrong: %s parallel=%v", loops[0].Var, loops[0].Parallel)
	}
	if got := iterationCount(out.Root, map[string]int64{}); got != 16*16*16 {
		t.Fatalf("iterations = %d", got)
	}
	_, err = Sequence(p, TileStep([]int64{-2}), ParallelizeStep(1))
	if err == nil || !strings.Contains(err.Error(), "step 0") {
		t.Fatalf("expected step-0 error, got %v", err)
	}
	// Interchange and Unroll steps compose too.
	out2, err := Sequence(mmProgram(8), InterchangeStep([]int{1, 0, 2}), UnrollStep(2))
	if err != nil {
		t.Fatal(err)
	}
	loops2, _ := ir.PerfectNest(out2.Root[0])
	if loops2[0].Var != "j" {
		t.Fatalf("interchange step did not apply: %s", loops2[0].Var)
	}
}

// Property: tiling with arbitrary positive tile sizes preserves the
// exact iteration count for arbitrary (small) problem sizes.
func TestTileIterationCountProperty(t *testing.T) {
	f := func(rawN uint8, t1, t2, t3 uint8) bool {
		n := int64(rawN%20) + 1
		tiles := []int64{int64(t1%25) + 1, int64(t2%25) + 1, int64(t3%25) + 1}
		p := mmProgram(n)
		tiled, err := Tile(p, tiles)
		if err != nil {
			return false
		}
		return iterationCount(tiled.Root, map[string]int64{}) == n*n*n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tiling then parallelizing preserves iteration count and
// validity regardless of collapse depth within the tile-loop band.
func TestTileParallelizeProperty(t *testing.T) {
	f := func(rawN, t1, t2 uint8, c uint8) bool {
		n := int64(rawN%12) + 2
		tiles := []int64{int64(t1%8) + 2, int64(t2%8) + 2}
		p := mmProgram(n)
		out, err := Sequence(p, TileStep(tiles), ParallelizeStep(int(c%2)+1))
		if err != nil {
			return false
		}
		if out.Validate() != nil {
			return false
		}
		return iterationCount(out.Root, map[string]int64{}) == n*n*n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
