// Package transform implements the loop transformations the
// auto-tuner's transformation skeletons are built from: rectangular
// tiling of a permutable band, loop collapsing before parallelization,
// loop interchange, unrolling, and parallelization of the outermost
// loop.
//
// Transformations operate on MiniIR (internal/ir) and return new
// programs, leaving their input untouched. Legality is *not* re-checked
// here — the analyzer (internal/analyzer) combines the polyhedral
// legality tests with these mechanical rewrites; transform only
// validates structural applicability (nest depth, rectangularity where
// required).
package transform

import (
	"fmt"

	"autotune/internal/ir"
)

// Tile strip-mines the outermost band of `len(tiles)` loops of the
// perfect nest rooted at the program's first top-level node and sinks
// the point loops inside, producing the classic tiled form:
//
//	for it ...  for jt ...          (tile loops, step = tile size)
//	  for i = it; i < min(it+Ti, N) (point loops, step = 1)
//
// A tile size of 0 or 1 leaves the corresponding loop untiled but the
// loop still counts toward the band. Tile sizes larger than the
// iteration count are legal (single tile). The original program is not
// modified.
func Tile(p *ir.Program, tiles []int64) (*ir.Program, error) {
	out := p.Clone()
	if len(out.Root) == 0 {
		return nil, fmt.Errorf("transform: empty program")
	}
	loops, _ := ir.PerfectNest(out.Root[0])
	if len(tiles) == 0 {
		return out, nil
	}
	if len(tiles) > len(loops) {
		return nil, fmt.Errorf("transform: %d tile sizes for a %d-deep nest", len(tiles), len(loops))
	}
	for _, t := range tiles {
		if t < 0 {
			return nil, fmt.Errorf("transform: negative tile size %d", t)
		}
	}
	band := loops[:len(tiles)]

	// Build the new nest: tile loops for every tiled level, then the
	// remaining structure with point loops substituted in place.
	var tileLoops []*ir.Loop
	pointLoops := make([]*ir.Loop, len(band))
	for idx, l := range band {
		t := tiles[idx]
		if t <= 1 {
			// Untiled level: keep the loop as-is in point position.
			pointLoops[idx] = l
			continue
		}
		if l.Step != 1 {
			return nil, fmt.Errorf("transform: cannot tile loop %s with step %d", l.Var, l.Step)
		}
		tv := l.Var + "_t"
		caps := make([]ir.Affine, len(l.Caps))
		for ci, c := range l.Caps {
			caps[ci] = c.Copy()
		}
		tileLoops = append(tileLoops, &ir.Loop{
			Var:  tv,
			Lo:   l.Lo.Copy(),
			Hi:   l.Hi.Copy(),
			Caps: caps,
			Step: t,
		})
		pointCaps := make([]ir.Affine, 0, len(l.Caps)+1)
		for _, c := range l.Caps {
			pointCaps = append(pointCaps, c.Copy())
		}
		pointCaps = append(pointCaps, l.Hi.Copy())
		pointLoops[idx] = &ir.Loop{
			Var:  l.Var,
			Lo:   ir.Var(tv),
			Hi:   ir.Var(tv).AddConst(t),
			Caps: pointCaps,
			Step: 1,
		}
	}

	// Stitch: tile loops outermost, then point loops in original
	// order, then the body below the band.
	innerBody := band[len(band)-1].Body
	chain := append(append([]*ir.Loop{}, tileLoops...), pointLoops...)
	for i := 0; i < len(chain)-1; i++ {
		chain[i].Body = []ir.Node{chain[i+1]}
	}
	chain[len(chain)-1].Body = innerBody
	out.Root[0] = chain[0]
	return out, nil
}

// Interchange permutes the loops of the outermost perfect nest
// according to perm: the loop at original position perm[i] moves to
// position i. perm must be a permutation of 0..depth-1 covering a
// prefix of the nest.
func Interchange(p *ir.Program, perm []int) (*ir.Program, error) {
	out := p.Clone()
	if len(out.Root) == 0 {
		return nil, fmt.Errorf("transform: empty program")
	}
	loops, _ := ir.PerfectNest(out.Root[0])
	n := len(perm)
	if n > len(loops) {
		return nil, fmt.Errorf("transform: permutation of length %d exceeds nest depth %d", n, len(loops))
	}
	seen := make([]bool, n)
	for _, x := range perm {
		if x < 0 || x >= n || seen[x] {
			return nil, fmt.Errorf("transform: invalid permutation %v", perm)
		}
		seen[x] = true
	}
	// Rectangularity check: after interchange every loop bound must
	// still refer only to iterators that remain outer.
	pos := make([]int, n) // pos[orig] = new position
	for newPos, orig := range perm {
		pos[orig] = newPos
	}
	for orig := 0; orig < n; orig++ {
		for _, b := range append([]ir.Affine{loops[orig].Lo, loops[orig].Hi}, loops[orig].Caps...) {
			for _, v := range b.Vars() {
				for other := 0; other < n; other++ {
					if loops[other].Var == v && pos[other] > pos[orig] {
						return nil, fmt.Errorf("transform: interchange would move loop %s inside its bound dependency %s",
							loops[orig].Var, v)
					}
				}
			}
		}
	}
	innerBody := loops[n-1].Body
	reordered := make([]*ir.Loop, n)
	for newPos, orig := range perm {
		reordered[newPos] = loops[orig]
	}
	for i := 0; i < n-1; i++ {
		reordered[i].Body = []ir.Node{reordered[i+1]}
	}
	reordered[n-1].Body = innerBody
	out.Root[0] = reordered[0]
	return out, nil
}

// Parallelize marks the outermost loop of the program as parallel,
// collapsing the given number of perfectly nested loops into the
// parallel distribution (collapse=1 parallelizes just the outermost
// loop). The collapsed loops must be rectangular: bounds of an inner
// collapsed loop must not depend on outer collapsed iterators.
func Parallelize(p *ir.Program, collapse int) (*ir.Program, error) {
	if collapse < 1 {
		return nil, fmt.Errorf("transform: collapse must be >= 1, got %d", collapse)
	}
	out := p.Clone()
	if len(out.Root) == 0 {
		return nil, fmt.Errorf("transform: empty program")
	}
	loops, _ := ir.PerfectNest(out.Root[0])
	if len(loops) == 0 {
		return nil, fmt.Errorf("transform: no loop to parallelize")
	}
	if collapse > len(loops) {
		return nil, fmt.Errorf("transform: collapse %d exceeds nest depth %d", collapse, len(loops))
	}
	for i := 1; i < collapse; i++ {
		for _, b := range append([]ir.Affine{loops[i].Lo, loops[i].Hi}, loops[i].Caps...) {
			for j := 0; j < i; j++ {
				if b.Coeff(loops[j].Var) != 0 {
					return nil, fmt.Errorf("transform: collapsed loop %s has non-rectangular bound on %s",
						loops[i].Var, loops[j].Var)
				}
			}
		}
	}
	loops[0].Parallel = true
	loops[0].Collapse = collapse
	return out, nil
}

// Unroll unrolls the innermost loop of the outermost perfect nest by
// the given factor, replicating the loop body with substituted
// iterator values. The loop must have step 1 and a constant trip count
// divisible by the factor (the analyzer only proposes such factors).
func Unroll(p *ir.Program, factor int64) (*ir.Program, error) {
	if factor < 1 {
		return nil, fmt.Errorf("transform: unroll factor must be >= 1, got %d", factor)
	}
	out := p.Clone()
	if factor == 1 {
		return out, nil
	}
	if len(out.Root) == 0 {
		return nil, fmt.Errorf("transform: empty program")
	}
	loops, stmts := ir.PerfectNest(out.Root[0])
	if len(loops) == 0 {
		return nil, fmt.Errorf("transform: no loop to unroll")
	}
	l := loops[len(loops)-1]
	if l.Step != 1 {
		return nil, fmt.Errorf("transform: cannot unroll loop %s with step %d", l.Var, l.Step)
	}
	if !l.Lo.IsConst() || !l.Hi.IsConst() || len(l.Caps) > 0 {
		return nil, fmt.Errorf("transform: unroll requires constant rectangular bounds on %s", l.Var)
	}
	trip := l.Hi.Const - l.Lo.Const
	if trip%factor != 0 {
		return nil, fmt.Errorf("transform: trip count %d not divisible by unroll factor %d", trip, factor)
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("transform: loop %s has no statements to unroll", l.Var)
	}
	var newBody []ir.Node
	for u := int64(0); u < factor; u++ {
		for _, n := range l.Body {
			cp := n.CloneNode()
			if s, ok := cp.(*ir.Stmt); ok {
				s.SubstIter(l.Var, ir.Var(l.Var).AddConst(u))
				s.Label = fmt.Sprintf("%s (unroll %d)", s.Label, u)
			}
			newBody = append(newBody, cp)
		}
	}
	l.Body = newBody
	l.Step = factor
	return out, nil
}

// AnnotateUnroll marks the innermost loop of the outermost perfect
// nest with an unroll pragma of the given factor. Unlike Unroll it is
// legal for any bounds (the backend compiler handles remainders);
// factor 1 clears the annotation.
func AnnotateUnroll(p *ir.Program, factor int64) (*ir.Program, error) {
	if factor < 1 {
		return nil, fmt.Errorf("transform: unroll pragma factor must be >= 1, got %d", factor)
	}
	out := p.Clone()
	if len(out.Root) == 0 {
		return nil, fmt.Errorf("transform: empty program")
	}
	loops, _ := ir.PerfectNest(out.Root[0])
	if len(loops) == 0 {
		return nil, fmt.Errorf("transform: no loop to annotate")
	}
	inner := loops[len(loops)-1]
	if factor == 1 {
		inner.UnrollPragma = 0
	} else {
		inner.UnrollPragma = factor
	}
	return out, nil
}

// AnnotateUnrollStep returns a Step applying AnnotateUnroll.
func AnnotateUnrollStep(factor int64) Step {
	return func(p *ir.Program) (*ir.Program, error) { return AnnotateUnroll(p, factor) }
}

// Sequence applies a list of transformation steps in order. Each step
// is a function from program to program; Sequence stops at the first
// error.
type Step func(*ir.Program) (*ir.Program, error)

// TileStep returns a Step applying Tile with the given sizes.
func TileStep(tiles []int64) Step {
	return func(p *ir.Program) (*ir.Program, error) { return Tile(p, tiles) }
}

// InterchangeStep returns a Step applying Interchange.
func InterchangeStep(perm []int) Step {
	return func(p *ir.Program) (*ir.Program, error) { return Interchange(p, perm) }
}

// ParallelizeStep returns a Step applying Parallelize.
func ParallelizeStep(collapse int) Step {
	return func(p *ir.Program) (*ir.Program, error) { return Parallelize(p, collapse) }
}

// UnrollStep returns a Step applying Unroll.
func UnrollStep(factor int64) Step {
	return func(p *ir.Program) (*ir.Program, error) { return Unroll(p, factor) }
}

// Sequence applies steps left to right.
func Sequence(p *ir.Program, steps ...Step) (*ir.Program, error) {
	cur := p
	for i, s := range steps {
		next, err := s(cur)
		if err != nil {
			return nil, fmt.Errorf("transform: step %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}
