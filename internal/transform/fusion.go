package transform

import (
	"fmt"

	"autotune/internal/ir"
	"autotune/internal/polyhedral"
)

// Fuse merges two adjacent top-level loops with identical bounds and
// step into one loop whose body concatenates both bodies (loop
// fusion). Legality: fusing is safe when no dependence from the first
// loop's statements to the second's becomes backward-carried after
// fusion; with identical iteration spaces this reduces to requiring
// that every cross-loop dependence has a non-negative distance in the
// fused iterator — checked via the polyhedral tests. The second loop's
// iterator is renamed to the first's.
func Fuse(p *ir.Program, first, second int) (*ir.Program, error) {
	out := p.Clone()
	if first < 0 || second >= len(out.Root) || second != first+1 {
		return nil, fmt.Errorf("transform: Fuse wants adjacent top-level indices, got %d,%d", first, second)
	}
	l1, ok1 := out.Root[first].(*ir.Loop)
	l2, ok2 := out.Root[second].(*ir.Loop)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("transform: Fuse targets must be loops")
	}
	if !l1.Lo.Equal(l2.Lo) || !l1.Hi.Equal(l2.Hi) || l1.Step != l2.Step ||
		len(l1.Caps) != 0 || len(l2.Caps) != 0 {
		return nil, fmt.Errorf("transform: Fuse requires identical rectangular bounds")
	}
	// Rename l2's iterator throughout its body.
	if l2.Var != l1.Var {
		renameInBody(l2.Body, l2.Var, l1.Var)
	}
	// Legality: analyze the fused nest; dependences between the two
	// bodies must not be backward in the fused loop.
	fused := &ir.Loop{Var: l1.Var, Lo: l1.Lo, Hi: l1.Hi, Step: l1.Step,
		Body: append(append([]ir.Node{}, l1.Body...), l2.Body...)}
	stmts := ir.Stmts([]ir.Node{fused})
	deps := polyhedral.Analyze([]*ir.Loop{fused}, stmts)
	for _, d := range deps {
		if len(d.Directions) > 0 && d.Directions[0] == polyhedral.DirNeg {
			return nil, fmt.Errorf("transform: fusion would create a backward dependence on %s", d.Array)
		}
	}
	newRoot := append([]ir.Node{}, out.Root[:first]...)
	newRoot = append(newRoot, fused)
	newRoot = append(newRoot, out.Root[second+1:]...)
	out.Root = newRoot
	return out, nil
}

// Fission splits a top-level loop whose body holds several statements
// into one loop per statement (loop distribution). Legality: the
// original statement order must be preservable — a dependence from a
// later statement to an earlier one carried by the loop would be
// violated; such cycles are rejected. Perfectly nested inner loops are
// not split.
func Fission(p *ir.Program, index int) (*ir.Program, error) {
	out := p.Clone()
	if index < 0 || index >= len(out.Root) {
		return nil, fmt.Errorf("transform: Fission index %d out of range", index)
	}
	l, ok := out.Root[index].(*ir.Loop)
	if !ok {
		return nil, fmt.Errorf("transform: Fission target must be a loop")
	}
	if len(l.Body) < 2 {
		return nil, fmt.Errorf("transform: Fission needs at least two body nodes")
	}
	// Legality: between any pair of body statements, a loop-carried
	// dependence from a LATER statement to an EARLIER one would be
	// reversed by distribution. Analyze each ordered pair.
	var bodyStmts []*ir.Stmt
	for _, n := range l.Body {
		if s, ok := n.(*ir.Stmt); ok {
			bodyStmts = append(bodyStmts, s)
		} else {
			return nil, fmt.Errorf("transform: Fission supports statement bodies only")
		}
	}
	for i := range bodyStmts {
		for j := i + 1; j < len(bodyStmts); j++ {
			// Does statement j write something statement i reads or
			// writes (with a loop-carried distance)? Then after
			// distribution, loop j runs entirely after loop i and the
			// dependence j -> i (backward in text) must not exist
			// carried forward.
			deps := polyhedral.Analyze([]*ir.Loop{l}, []*ir.Stmt{bodyStmts[j], bodyStmts[i]})
			for _, d := range deps {
				if d.CarriedBy(0) && crossPair(d, bodyStmts[j], bodyStmts[i]) {
					return nil, fmt.Errorf("transform: fission would violate a carried dependence on %s", d.Array)
				}
			}
		}
	}
	var loops []ir.Node
	for _, s := range bodyStmts {
		nl := &ir.Loop{Var: l.Var, Lo: l.Lo.Copy(), Hi: l.Hi.Copy(), Step: l.Step,
			Parallel: l.Parallel, Collapse: l.Collapse,
			Body: []ir.Node{s.CloneNode()}}
		loops = append(loops, nl)
	}
	newRoot := append([]ir.Node{}, out.Root[:index]...)
	newRoot = append(newRoot, loops...)
	newRoot = append(newRoot, out.Root[index+1:]...)
	out.Root = newRoot
	return out, nil
}

// crossPair conservatively reports whether the dependence touches
// arrays used by both statements (Analyze already restricts to the
// pair, so any carried dependence between distinct statements is a
// cross dependence; self-dependences of one statement are filtered by
// checking both statements use the array).
func crossPair(d polyhedral.Dependence, a, b *ir.Stmt) bool {
	usesArray := func(s *ir.Stmt, arr string) bool {
		for _, ac := range s.Accesses() {
			if ac.Array == arr {
				return true
			}
		}
		return false
	}
	return usesArray(a, d.Array) && usesArray(b, d.Array)
}

func renameInBody(ns []ir.Node, old, newName string) {
	ir.Walk(ns, func(n ir.Node) bool {
		switch x := n.(type) {
		case *ir.Stmt:
			x.RenameIter(old, newName)
		case *ir.Loop:
			x.Lo = x.Lo.Rename(old, newName)
			x.Hi = x.Hi.Rename(old, newName)
			for i := range x.Caps {
				x.Caps[i] = x.Caps[i].Rename(old, newName)
			}
		}
		return true
	})
}

// FuseStep returns a Step applying Fuse.
func FuseStep(first, second int) Step {
	return func(p *ir.Program) (*ir.Program, error) { return Fuse(p, first, second) }
}

// FissionStep returns a Step applying Fission.
func FissionStep(index int) Step {
	return func(p *ir.Program) (*ir.Program, error) { return Fission(p, index) }
}
