package perfmodel

import (
	"testing"

	"autotune/internal/machine"
)

// computeBoundModel is a toy kernel whose runtime is dominated by
// computation, so loop-overhead effects (unrolling) are visible.
func computeBoundModel() *KernelModel {
	m := toyModel()
	m.Name = "compute-bound"
	m.Flops = func(n int64) float64 { return 100 * float64(n) * float64(n) }
	m.TotalData = func(n int64) int64 { return 8 * n }
	m.LevelTraffic = func(n int64, t []int64, c Capacity) float64 { return float64(8 * n) }
	return m
}

func TestTimeUnrolledValidation(t *testing.T) {
	mo := New(machine.Westmere())
	k := toyModel()
	if _, err := mo.TimeUnrolled(k, 1000, []int64{8, 8}, 1, 0, 0); err == nil {
		t.Fatal("unroll 0 accepted")
	}
	u1, err := mo.TimeUnrolled(k, 1000, []int64{8, 8}, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := mo.Time(k, 1000, []int64{8, 8}, 1, 0)
	if u1 != plain {
		t.Fatalf("unroll 1 (%v) != Time (%v)", u1, plain)
	}
}

func TestUnrollHelpsShortInnerLoops(t *testing.T) {
	mo := New(machine.Westmere())
	k := computeBoundModel() // inner trip = t[1]
	// Short inner loop: unrolling amortizes control overhead.
	short := []int64{64, 4}
	t1, _ := mo.TimeUnrolled(k, 100000, short, 1, 1, 0)
	t4, _ := mo.TimeUnrolled(k, 100000, short, 1, 4, 0)
	if t4 >= t1 {
		t.Fatalf("unroll 4 (%v) should beat unroll 1 (%v) on a short loop", t4, t1)
	}
}

func TestUnrollInteriorOptimum(t *testing.T) {
	mo := New(machine.Westmere())
	k := computeBoundModel()
	tiles := []int64{64, 16}
	best, bestU := 1e18, int64(0)
	var prev float64
	for u := int64(1); u <= 64; u *= 2 {
		tm, err := mo.TimeUnrolled(k, 100000, tiles, 1, u, 0)
		if err != nil {
			t.Fatal(err)
		}
		if tm < best {
			best, bestU = tm, u
		}
		prev = tm
	}
	_ = prev
	if bestU == 1 || bestU == 64 {
		t.Fatalf("optimal unroll = %d, want interior (register pressure vs overhead)", bestU)
	}
}

func TestUnrollChangesNoiseStream(t *testing.T) {
	mo := New(machine.Westmere())
	mo.NoiseAmp = 0.01
	k := toyModel()
	a, _ := mo.TimeUnrolled(k, 1000, []int64{8, 8}, 2, 2, 0)
	b, _ := mo.TimeUnrolled(k, 1000, []int64{8, 8}, 2, 4, 0)
	if a == b {
		t.Fatal("different unroll factors should measure differently")
	}
}
