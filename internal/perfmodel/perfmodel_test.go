package perfmodel

import (
	"math"
	"testing"

	"autotune/internal/machine"
)

// toyModel is a deliberately simple kernel model: N^2 flops, working
// set 8*t0*t1 bytes, traffic inversely proportional to tile sizes when
// resident and a large constant otherwise.
func toyModel() *KernelModel {
	return &KernelModel{
		Name:     "toy",
		TileDims: 2,
		Flops:    func(n int64) float64 { return float64(n) * float64(n) },
		Accesses: func(n int64) float64 { return 2 * float64(n) * float64(n) },
		WorkingSet: func(n int64, t []int64) int64 {
			return 8 * t[0] * t[1]
		},
		LevelTraffic: func(n int64, t []int64, c Capacity) float64 {
			if 8*t[0]*t[1] <= c.PerThread {
				return float64(n) * float64(n) / float64(t[0])
			}
			return 100 * float64(n) * float64(n)
		},
		ParIters:  func(n int64, t []int64) int64 { return (n + t[0] - 1) / t[0] },
		InnerTrip: func(n int64, t []int64) float64 { return float64(t[1]) },
		TotalData: func(n int64) int64 { return 8 * n * n },
	}
}

func TestValidateKernelModel(t *testing.T) {
	m := toyModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := toyModel()
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name should fail")
	}
	bad = toyModel()
	bad.TileDims = 0
	if bad.Validate() == nil {
		t.Error("zero tile dims should fail")
	}
	bad = toyModel()
	bad.LevelTraffic = nil
	if bad.Validate() == nil {
		t.Error("missing function should fail")
	}
}

func TestTimeArgumentChecks(t *testing.T) {
	mo := New(machine.Westmere())
	k := toyModel()
	if _, err := mo.Time(k, 1000, []int64{8}, 1, 0); err == nil {
		t.Error("wrong tile count should fail")
	}
	if _, err := mo.Time(k, 1000, []int64{0, 8}, 1, 0); err == nil {
		t.Error("tile size 0 should fail")
	}
	if _, err := mo.Time(k, 1000, []int64{8, 8}, 0, 0); err == nil {
		t.Error("0 threads should fail")
	}
	if _, err := mo.Time(k, 1000, []int64{8, 8}, 41, 0); err == nil {
		t.Error("41 threads on Westmere should fail")
	}
	if _, err := mo.Time(k, 1000, []int64{8, 8}, 1, 0); err != nil {
		t.Errorf("valid call failed: %v", err)
	}
}

func TestTimePositiveAndDeterministic(t *testing.T) {
	mo := New(machine.Westmere())
	k := toyModel()
	t1, err := mo.Time(k, 1000, []int64{16, 16}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if t1 <= 0 || math.IsNaN(t1) || math.IsInf(t1, 0) {
		t.Fatalf("time = %v", t1)
	}
	t2, _ := mo.Time(k, 1000, []int64{16, 16}, 4, 0)
	if t1 != t2 {
		t.Fatal("model is not deterministic")
	}
}

func TestMoreThreadsNeverSlowerForScalableKernel(t *testing.T) {
	mo := New(machine.Westmere())
	k := toyModel()
	prev := math.Inf(1)
	for threads := 1; threads <= 40; threads++ {
		tm, err := mo.Time(k, 100000, []int64{16, 64}, threads, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Allow tiny increases from imbalance granularity.
		if tm > prev*1.2 {
			t.Fatalf("time jumped from %v to %v at %d threads", prev, tm, threads)
		}
		if tm < prev {
			prev = tm
		}
	}
}

func TestOversizedWorkingSetIsPenalized(t *testing.T) {
	mo := New(machine.Westmere())
	k := toyModel()
	small, _ := mo.Time(k, 100000, []int64{16, 64}, 1, 0)
	// 8*4096*4096 = 128 MB working set fits nowhere.
	big, _ := mo.Time(k, 100000, []int64{4096, 4096}, 1, 0)
	if big <= small {
		t.Fatalf("oversized working set not penalized: %v vs %v", big, small)
	}
}

func TestImbalancePenalty(t *testing.T) {
	mo := New(machine.Westmere())
	k := toyModel()
	// t0 = n/2 leaves only 2 parallel iterations for 8 threads.
	balanced, _ := mo.Time(k, 4096, []int64{16, 64}, 8, 0)
	imbalanced, _ := mo.Time(k, 4096, []int64{2048, 64}, 8, 0)
	if imbalanced <= balanced {
		t.Fatalf("imbalance not penalized: %v vs %v", imbalanced, balanced)
	}
}

func TestNoisePlumbing(t *testing.T) {
	mo := New(machine.Westmere())
	mo.NoiseAmp = 0.01
	k := toyModel()
	a, _ := mo.Time(k, 1000, []int64{16, 16}, 2, 0)
	b, _ := mo.Time(k, 1000, []int64{16, 16}, 2, 1)
	if a == b {
		t.Fatal("different reps should yield different noisy times")
	}
	// Same rep is reproducible.
	a2, _ := mo.Time(k, 1000, []int64{16, 16}, 2, 0)
	if a != a2 {
		t.Fatal("noisy time not reproducible for same rep")
	}
	// Noise is bounded.
	mo2 := New(machine.Westmere())
	clean, _ := mo2.Time(k, 1000, []int64{16, 16}, 2, 0)
	if math.Abs(a-clean)/clean > 0.011 {
		t.Fatalf("noise out of bounds: %v vs %v", a, clean)
	}
}

func TestSpeedupEfficiencyResources(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Error("Speedup wrong")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("Speedup with 0 time should be +Inf")
	}
	if Efficiency(10, 2, 5) != 1 {
		t.Error("Efficiency wrong")
	}
	if Efficiency(10, 2, 0) != 0 {
		t.Error("Efficiency with 0 threads should be 0")
	}
	if Resources(2, 5) != 10 {
		t.Error("Resources wrong")
	}
}

func TestEnergyMonotoneInThreadsAndTime(t *testing.T) {
	mo := New(machine.Westmere())
	e1 := mo.Energy(1.0, 1)
	e2 := mo.Energy(1.0, 10)
	if e2 <= e1 {
		t.Fatal("more cores at same time should cost more energy")
	}
	e3 := mo.Energy(2.0, 1)
	if e3 <= e1 {
		t.Fatal("longer run should cost more energy")
	}
	if !math.IsInf(mo.Energy(1, 1000), 1) {
		t.Fatal("unpinnable thread count should yield +Inf energy")
	}
}

func TestUsableFraction(t *testing.T) {
	if usableFraction(0) != 1 {
		t.Error("assoc 0 should be fully usable")
	}
	lo := usableFraction(2)
	hi := usableFraction(32)
	if !(lo < hi && hi < 1) {
		t.Errorf("usableFraction not monotone: %v, %v", lo, hi)
	}
}

func TestTurboBoostRaisesLowOccupancyClock(t *testing.T) {
	m := machine.Westmere()
	mo := New(m)
	k := toyModel()
	// With turbo, the 1-thread run benefits from a higher clock; the
	// per-thread time at full socket occupancy is relatively slower.
	t1, _ := mo.Time(k, 100000, []int64{16, 64}, 1, 0)
	t10, _ := mo.Time(k, 100000, []int64{16, 64}, 10, 0)
	eff := Efficiency(t1, t10, 10)
	if eff >= 1 {
		t.Fatalf("turbo should cap parallel efficiency below 1, got %v", eff)
	}
}

func TestNUMAPenaltyReducesMultiSocketBandwidth(t *testing.T) {
	m := machine.Barcelona()
	mo := New(m)
	p1, _ := m.Pin(4)  // one socket
	p8, _ := m.Pin(32) // eight sockets
	bw1 := mo.memBandwidthPerThread(p1)
	bw8 := mo.memBandwidthPerThread(p8)
	if bw8 >= bw1 {
		t.Fatalf("NUMA penalty missing: %v vs %v", bw8, bw1)
	}
}
