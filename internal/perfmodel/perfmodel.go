// Package perfmodel is the deterministic analytical performance model
// that substitutes for native execution on the paper's two testbeds
// (see DESIGN.md §2). Given a machine description, a kernel model and a
// configuration (tile sizes + thread count) it predicts the execution
// time of the tiled, collapsed, parallelized kernel.
//
// The model is built from the physical mechanisms the paper's
// observations rest on, so the *shape* of its predictions matches the
// measurements the paper reports:
//
//   - Per-tile working sets are classified against the effective cache
//     capacity per thread. Private levels (L1/L2) offer their full
//     size; the shared L3 is divided among the threads co-located on a
//     socket — this makes optimal tile sizes depend on the thread
//     count (paper Fig. 2).
//   - Data traffic into the tile-holding level is charged against a
//     per-thread bandwidth for cache levels and against the *shared*
//     socket memory bandwidth for DRAM — speedup saturates and
//     efficiency decays with rising thread counts (paper Fig. 1).
//   - Work is distributed block-wise over the collapsed parallel
//     iteration space; the ceil-based imbalance factor penalizes large
//     tiles that leave too few parallel iterations (paper §IV:
//     collapsing mitigates load-balancing issues).
//   - A fixed fork/join overhead per parallel region and a loop
//     overhead term for very small innermost tiles round out the
//     model.
//
// A small deterministic "measurement noise" derived from a hash of the
// configuration can be added to mimic the run-to-run variation a real
// testbed exhibits; the evaluator takes medians over repetitions just
// like the paper does.
package perfmodel

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"autotune/internal/machine"
)

// KernelModel describes one kernel's analytic characteristics. All
// functions must be pure. Tile slices always have TileDims entries.
type KernelModel struct {
	Name     string
	TileDims int
	// Flops is the total floating-point operation count.
	Flops func(n int64) float64
	// Accesses is the total number of scalar memory accesses.
	Accesses func(n int64) float64
	// WorkingSet returns the bytes of the per-tile working set that
	// must reside in a cache level for the tiling to pay off fully.
	WorkingSet func(n int64, tiles []int64) int64
	// LevelTraffic returns the bytes that flow INTO a cache level of
	// the given effective capacity over the whole computation, given
	// the code's tile sizes. Implementations perform a reuse-distance
	// analysis with LRU cliffs: each reuse pattern of the kernel
	// either fits (its refetches are free) or does not (its stream is
	// charged in full). This per-level classification is what makes
	// optimal tile sizes depend on the effective capacity — and thus,
	// through shared-L3 division, on the thread count.
	LevelTraffic func(n int64, tiles []int64, c Capacity) float64
	// ParIters returns the number of parallel iterations the runtime
	// distributes (the collapsed outer tile loops).
	ParIters func(n int64, tiles []int64) int64
	// InnerTrip returns the innermost loop trip count, used for loop
	// overhead modeling.
	InnerTrip func(n int64, tiles []int64) float64
	// TotalData is the aggregate byte size of all arrays (compulsory
	// traffic floor).
	TotalData func(n int64) int64
}

// Validate checks that all required functions are present.
func (k *KernelModel) Validate() error {
	if k.Name == "" {
		return errors.New("perfmodel: kernel model without name")
	}
	if k.TileDims <= 0 {
		return fmt.Errorf("perfmodel: kernel %s has no tile dimensions", k.Name)
	}
	if k.Flops == nil || k.Accesses == nil || k.WorkingSet == nil ||
		k.LevelTraffic == nil || k.ParIters == nil || k.InnerTrip == nil || k.TotalData == nil {
		return fmt.Errorf("perfmodel: kernel %s has missing model functions", k.Name)
	}
	return nil
}

// Capacity describes the effective capacity of one cache level as seen
// by one thread of a parallel region. For private levels PerThread ==
// Total; for shared levels PerThread is the fair per-thread share.
// Kernels whose threads share read-only data (e.g. the n-body position
// array) may test such structures against Total minus the co-located
// threads' private footprints instead of PerThread.
type Capacity struct {
	// PerThread is the usable bytes available to one thread assuming
	// disjoint working sets.
	PerThread int64
	// Total is the usable bytes of the whole cache instance.
	Total int64
	// Sharers is the number of threads sharing one instance.
	Sharers int
}

// Model evaluates configurations on one machine.
type Model struct {
	Machine *machine.Machine
	// NoiseAmp is the relative amplitude of the deterministic
	// pseudo-noise (e.g. 0.01 for ±1%); 0 disables noise.
	NoiseAmp float64
	// Overlap is the fraction of the smaller of compute/memory time
	// hidden under the larger (0 = fully serialized, 1 = perfect
	// overlap). Default used by New: 0.75.
	Overlap float64
}

// New returns a Model for m with the default overlap factor and no
// noise.
func New(m *machine.Machine) *Model {
	return &Model{Machine: m, Overlap: 0.75}
}

// usableFraction models conflict misses: low associativity reduces the
// usable fraction of a cache's capacity.
func usableFraction(assoc int) float64 {
	if assoc <= 0 {
		return 1
	}
	return 1 - 1/(1+float64(assoc))
}

// perThreadCacheBandwidth returns the sustainable per-thread fill
// bandwidth (bytes/second) from the level with the given latency,
// assuming a handful of outstanding line fills.
func (mo *Model) perThreadCacheBandwidth(latencyCycles float64, lineBytes int) float64 {
	const outstanding = 4
	cyclesPerSec := mo.Machine.ClockGHz * 1e9
	return outstanding * float64(lineBytes) / latencyCycles * cyclesPerSec
}

// Time predicts the execution time in seconds of kernel k with problem
// size n under the given tile sizes and thread count. rep
// differentiates repeated "measurements" when noise is enabled.
func (mo *Model) Time(k *KernelModel, n int64, tiles []int64, threads int, rep int) (float64, error) {
	return mo.TimeUnrolled(k, n, tiles, threads, 1, rep)
}

// TimeUnrolled additionally models an innermost-loop unroll factor:
// unrolling amortizes the loop-control overhead over u iterations but
// costs instruction-cache and register pressure at larger factors,
// giving an interior optimum that depends on the innermost trip count.
func (mo *Model) TimeUnrolled(k *KernelModel, n int64, tiles []int64, threads int, unroll int64, rep int) (float64, error) {
	if unroll < 1 {
		return 0, fmt.Errorf("perfmodel: unroll factor %d out of range", unroll)
	}
	return mo.time(k, n, tiles, threads, unroll, rep)
}

func (mo *Model) time(k *KernelModel, n int64, tiles []int64, threads int, unroll int64, rep int) (float64, error) {
	if err := k.Validate(); err != nil {
		return 0, err
	}
	if len(tiles) != k.TileDims {
		return 0, fmt.Errorf("perfmodel: kernel %s wants %d tile sizes, got %d", k.Name, k.TileDims, len(tiles))
	}
	for _, t := range tiles {
		if t < 1 {
			return 0, fmt.Errorf("perfmodel: tile size %d out of range", t)
		}
	}
	m := mo.Machine
	placement, err := m.Pin(threads)
	if err != nil {
		return 0, err
	}

	flops := k.Flops(n)
	memBWPerThread := mo.memBandwidthPerThread(placement)

	// Sum per-boundary transfer times. Boundary i moves data into
	// cache level i from level i+1 (or from memory for the last
	// level); the traffic is the kernel's reuse-distance analysis
	// evaluated at the level's effective per-thread capacity.
	tMem := 0.0
	for i, lvl := range m.Caches {
		usable := usableFraction(lvl.Associativity)
		sharers := 1
		if lvl.Scope == machine.PerSocket {
			sharers = placement.MaxThreadsOnSocket()
		} else if lvl.Scope == machine.Global {
			sharers = threads
		}
		c := Capacity{
			PerThread: int64(float64(m.SharedCacheShare(lvl, placement)) * usable),
			Total:     int64(float64(lvl.SizeBytes) * usable),
			Sharers:   sharers,
		}
		traffic := k.LevelTraffic(n, tiles, c)
		var bw float64
		if i < len(m.Caches)-1 {
			outer := m.Caches[i+1]
			bw = mo.perThreadCacheBandwidth(outer.LatencyCycles, outer.LineBytes)
		} else {
			bw = memBWPerThread
		}
		tMem += traffic / float64(threads) / bw
	}

	// Compulsory floor: all data must cross the memory bus at least
	// once, whatever the reuse pattern.
	compulsory := float64(k.TotalData(n))
	socketsUsed := float64(placement.SocketsUsed())
	tCompulsory := compulsory / (m.MemBandwidthGBs * 1e9 * socketsUsed)

	// Per-thread compute time with loop-overhead efficiency: very
	// short innermost loops waste issue slots on control.
	inner := k.InnerTrip(n, tiles)
	if inner < 1 {
		inner = 1
	}
	// Unrolling spreads the per-iteration control overhead over u
	// iterations (effective factor capped by the trip count) at a mild
	// instruction-cache/register-pressure cost.
	u := float64(unroll)
	if u > inner {
		u = inner
	}
	loopEff := inner / (inner + 4/u)
	loopEff /= 1 + 0.015*(float64(unroll)-1)
	flopRate := m.EffectiveClockGHz(placement) * 1e9 * m.FlopsPerCycle * loopEff
	tCompute := flops / float64(threads) / flopRate

	// Partial overlap of compute and memory.
	hi, lo := tCompute, tMem
	if lo > hi {
		hi, lo = lo, hi
	}
	tBusy := hi + (1-mo.Overlap)*lo

	// Load imbalance over the collapsed parallel iteration space.
	iters := k.ParIters(n, tiles)
	if iters < 1 {
		iters = 1
	}
	imbalance := 1.0
	if threads > 1 {
		maxIters := (iters + int64(threads) - 1) / int64(threads)
		imbalance = float64(maxIters) * float64(threads) / float64(iters)
	}
	tBusy *= imbalance

	if tBusy < tCompulsory {
		tBusy = tCompulsory
	}

	// Fork/join overhead grows with the number of threads involved.
	tOverhead := m.ParallelOverheadUS * 1e-6 * float64(threads)
	total := tBusy + tOverhead

	if mo.NoiseAmp > 0 {
		total *= 1 + mo.NoiseAmp*noise(k.Name, m.Name, n, tiles, threads, int(unroll), rep)
	}
	return total, nil
}

// memBandwidthPerThread returns the DRAM bandwidth available to one
// thread on the most loaded socket, including the NUMA degradation
// once the computation spans several sockets.
func (mo *Model) memBandwidthPerThread(p machine.Placement) float64 {
	perSocket := mo.Machine.MemBandwidthGBs * 1e9
	perSocket /= 1 + mo.Machine.NUMAPenalty*float64(p.SocketsUsed()-1)
	nt := p.MaxThreadsOnSocket()
	if nt < 1 {
		nt = 1
	}
	// A single thread cannot saturate the socket's controllers; cap
	// its share at 60% of the socket bandwidth.
	share := perSocket / float64(nt)
	if bwCap := 0.6 * perSocket; share > bwCap {
		share = bwCap
	}
	// Latency-limited per-thread ceiling.
	lat := mo.Machine.MemLatencyCycles
	line := mo.Machine.Caches[0].LineBytes
	ceil := mo.perThreadCacheBandwidth(lat, line)
	if share > ceil {
		share = ceil
	}
	return share
}

// noise returns a deterministic pseudo-random value in [-1, 1] keyed on
// the full configuration identity and repetition index.
func noise(kernel, mach string, n int64, tiles []int64, threads, unroll, rep int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%v|%d|%d|%d", kernel, mach, n, tiles, threads, unroll, rep)
	v := h.Sum64()
	return float64(v%2000001)/1000000 - 1
}

// Speedup returns t_seq / t_par for convenience.
func Speedup(tSeq, tPar float64) float64 {
	if tPar <= 0 {
		return math.Inf(1)
	}
	return tSeq / tPar
}

// Efficiency returns Speedup / threads.
func Efficiency(tSeq, tPar float64, threads int) float64 {
	if threads <= 0 {
		return 0
	}
	return Speedup(tSeq, tPar) / float64(threads)
}

// Resources returns the resource-usage cost threads × time, the
// minimized counterpart of efficiency used as the second objective
// throughout the evaluation (paper Fig. 8: "resource usage").
func Resources(tPar float64, threads int) float64 {
	return tPar * float64(threads)
}

// Energy estimates the energy in joules consumed by a run: static
// socket power for the duration plus dynamic per-core power. It backs
// the optional third objective.
func (mo *Model) Energy(tPar float64, threads int) float64 {
	const (
		staticPerSocketW = 35.0
		dynamicPerCoreW  = 18.0
	)
	p, err := mo.Machine.Pin(threads)
	if err != nil {
		return math.Inf(1)
	}
	return tPar * (staticPerSocketW*float64(p.SocketsUsed()) + dynamicPerCoreW*float64(threads))
}
