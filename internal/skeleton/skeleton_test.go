package skeleton

import (
	"math"
	"testing"
	"testing/quick"

	"autotune/internal/ir"
	"autotune/internal/stats"
)

func space3() Space {
	return Space{Params: []Param{
		{Name: "t1", Kind: TileSize, Min: 1, Max: 700},
		{Name: "t2", Kind: TileSize, Min: 1, Max: 700},
		{Name: "threads", Kind: ThreadCount, Min: 1, Max: 40},
	}}
}

func TestSpaceValidate(t *testing.T) {
	if err := space3().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Space{
		{},
		{Params: []Param{{Name: "", Min: 0, Max: 1}}},
		{Params: []Param{{Name: "a", Min: 2, Max: 1}}},
		{Params: []Param{{Name: "a", Min: 0, Max: 1}, {Name: "a", Min: 0, Max: 1}}},
		{Params: []Param{{Name: "f", Kind: Flag, Min: 0, Max: 2}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSpaceSize(t *testing.T) {
	s := space3()
	if got := s.Size(); got != 700*700*40 {
		t.Fatalf("Size = %d", got)
	}
	huge := Space{Params: []Param{
		{Name: "a", Min: 0, Max: math.MaxInt64 - 1},
		{Name: "b", Min: 0, Max: math.MaxInt64 - 1},
	}}
	if huge.Size() != math.MaxInt64 {
		t.Fatal("Size should saturate")
	}
}

func TestConfigKeyEqualClone(t *testing.T) {
	c := Config{3, 5, 7}
	if c.Key() != "3,5,7" {
		t.Fatalf("Key = %q", c.Key())
	}
	d := c.Clone()
	d[0] = 9
	if c[0] != 3 {
		t.Fatal("Clone aliases")
	}
	if !c.Equal(Config{3, 5, 7}) || c.Equal(d) || c.Equal(Config{3, 5}) {
		t.Fatal("Equal wrong")
	}
}

func TestInClipRandom(t *testing.T) {
	s := space3()
	if !s.In(Config{1, 700, 40}) {
		t.Fatal("boundary config should be in space")
	}
	if s.In(Config{0, 1, 1}) || s.In(Config{1, 1, 41}) || s.In(Config{1, 1}) {
		t.Fatal("out-of-space configs accepted")
	}
	clipped := s.Clip(Config{-5, 9999, 12})
	if !clipped.Equal(Config{1, 700, 12}) {
		t.Fatalf("Clip = %v", clipped)
	}
	rng := stats.NewRand(1)
	for i := 0; i < 100; i++ {
		if !s.In(s.Random(rng)) {
			t.Fatal("Random produced out-of-space config")
		}
	}
}

func TestBoxOperations(t *testing.T) {
	s := space3()
	full := s.FullBox()
	if full.Volume() != s.Size() {
		t.Fatal("full box volume != space size")
	}
	b := Box{Lo: []int64{10, 20, 2}, Hi: []int64{20, 40, 8}}
	if !b.Contains(Config{10, 40, 5}) || b.Contains(Config{9, 30, 5}) || b.Contains(Config{10, 30}) {
		t.Fatal("Contains wrong")
	}
	if b.Volume() != 11*21*7 {
		t.Fatalf("Volume = %d", b.Volume())
	}
	got := b.ClosestTo([]float64{3.7, 29.4, 100})
	if !got.Equal(Config{10, 29, 8}) {
		t.Fatalf("ClosestTo = %v", got)
	}
	rng := stats.NewRand(2)
	for i := 0; i < 100; i++ {
		if !b.Contains(b.Random(rng)) {
			t.Fatal("Box.Random escaped the box")
		}
	}
}

func TestParamKindString(t *testing.T) {
	kinds := map[ParamKind]string{TileSize: "tile", ThreadCount: "threads", UnrollFactor: "unroll", Flag: "flag", Choice: "choice"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
	if ParamKind(42).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func mmProgram(n int64) *ir.Program {
	stmt := &ir.Stmt{
		Label:  "mm",
		Writes: []ir.Access{{Array: "C", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}},
		Reads: []ir.Access{
			{Array: "C", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}},
			{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("k")}},
			{Array: "B", Indices: []ir.Affine{ir.Var("k"), ir.Var("j")}},
		},
		Flops: 2,
	}
	kl := &ir.Loop{Var: "k", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{stmt}}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{kl}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{jl}}
	return &ir.Program{
		Name: "mm",
		Arrays: []ir.Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "B", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "C", ElemBytes: 8, Dims: []int64{n, n}},
		},
		Root: []ir.Node{il},
	}
}

func TestTiledParallelSkeleton(t *testing.T) {
	sk := TiledParallel("mm3d", 3, 700, 40, true)
	if err := sk.Space.Validate(); err != nil {
		t.Fatal(err)
	}
	if sk.Space.Dim() != 4 {
		t.Fatalf("dim = %d, want 4", sk.Space.Dim())
	}
	p := mmProgram(64)
	out, inst, err := sk.Apply(p, Config{16, 32, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Threads != 10 {
		t.Fatalf("threads = %d", inst.Threads)
	}
	loops, _ := ir.PerfectNest(out.Root[0])
	if loops[0].Var != "i_t" || !loops[0].Parallel || loops[0].Collapse != 2 {
		t.Fatalf("outer = %s parallel=%v collapse=%d", loops[0].Var, loops[0].Parallel, loops[0].Collapse)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTiledParallelUnitTilesFallBackToCollapse1(t *testing.T) {
	sk := TiledParallel("mm3d", 3, 700, 40, true)
	out, _, err := sk.Apply(mmProgram(64), Config{1, 1, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	loops, _ := ir.PerfectNest(out.Root[0])
	if loops[0].Var != "i" || loops[0].Collapse != 1 {
		t.Fatalf("unit tiles: outer=%s collapse=%d", loops[0].Var, loops[0].Collapse)
	}
}

func TestSkeletonApplyRejectsOutOfSpace(t *testing.T) {
	sk := TiledParallel("mm3d", 3, 700, 40, true)
	if _, _, err := sk.Apply(mmProgram(64), Config{0, 1, 1, 4}); err == nil {
		t.Fatal("expected out-of-space error")
	}
	if _, _, err := sk.Apply(mmProgram(64), Config{1, 1, 1}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestSkeletonNoCollapseVariant(t *testing.T) {
	sk := TiledParallel("mm3d-nc", 3, 700, 40, false)
	out, _, err := sk.Apply(mmProgram(64), Config{16, 16, 16, 4})
	if err != nil {
		t.Fatal(err)
	}
	loops, _ := ir.PerfectNest(out.Root[0])
	if loops[0].Collapse != 1 {
		t.Fatalf("collapse = %d, want 1", loops[0].Collapse)
	}
}

// Property: ClosestTo always lands inside the box.
func TestClosestToInBoxProperty(t *testing.T) {
	b := Box{Lo: []int64{1, 1, 1}, Hi: []int64{700, 700, 40}}
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return true
		}
		return b.Contains(b.ClosestTo([]float64{x, y, z}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clip result is always inside the space and is the identity
// for configurations already inside.
func TestClipProperty(t *testing.T) {
	s := space3()
	f := func(a, b, c int64) bool {
		cfg := Config{a % 2000, b % 2000, c % 100}
		clipped := s.Clip(cfg)
		if !s.In(clipped) {
			return false
		}
		if s.In(cfg) && !clipped.Equal(cfg) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
