// Package skeleton defines transformation skeletons: generic sequences
// of code transformations with unbound parameters (tile sizes, unroll
// factors, thread counts, optional flags), together with the parameter
// spaces the optimizer searches.
//
// A Skeleton couples a parameter Space with an instantiation function
// that binds a concrete Config to a transformation sequence
// (internal/transform steps) plus the execution parameters (thread
// count) the evaluator needs. The optimizer treats all tuning options
// uniformly as integer dimensions, exactly as the paper describes.
package skeleton

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"autotune/internal/ir"
	"autotune/internal/transform"
)

// ParamKind distinguishes how a parameter is interpreted when a
// configuration is instantiated.
type ParamKind int

const (
	// TileSize parameters feed the tiling transformation.
	TileSize ParamKind = iota
	// ThreadCount parameters select the number of worker threads.
	ThreadCount
	// UnrollFactor parameters feed the unrolling transformation.
	UnrollFactor
	// Flag parameters enable optional skeleton parts (0 or 1).
	Flag
	// Choice parameters select among alternatives (e.g. which
	// skeleton variant to use).
	Choice
)

// String returns the kind name.
func (k ParamKind) String() string {
	switch k {
	case TileSize:
		return "tile"
	case ThreadCount:
		return "threads"
	case UnrollFactor:
		return "unroll"
	case Flag:
		return "flag"
	case Choice:
		return "choice"
	default:
		return fmt.Sprintf("ParamKind(%d)", int(k))
	}
}

// Param is one tunable dimension with inclusive integer bounds.
type Param struct {
	Name     string
	Kind     ParamKind
	Min, Max int64
}

// Space is an ordered list of parameters; it defines the search space C
// of the multi-objective optimization problem.
type Space struct {
	Params []Param
}

// Dim returns the number of parameters.
func (s Space) Dim() int { return len(s.Params) }

// Size returns the cardinality |C| of the space, saturating at
// math.MaxInt64 on overflow.
func (s Space) Size() int64 {
	total := int64(1)
	for _, p := range s.Params {
		span := p.Max - p.Min + 1
		if span <= 0 {
			return 0
		}
		if total > math.MaxInt64/span {
			return math.MaxInt64
		}
		total *= span
	}
	return total
}

// Validate checks bounds sanity.
func (s Space) Validate() error {
	if len(s.Params) == 0 {
		return fmt.Errorf("skeleton: empty parameter space")
	}
	seen := map[string]bool{}
	for _, p := range s.Params {
		if p.Name == "" {
			return fmt.Errorf("skeleton: parameter with empty name")
		}
		if seen[p.Name] {
			return fmt.Errorf("skeleton: duplicate parameter %s", p.Name)
		}
		seen[p.Name] = true
		if p.Min > p.Max {
			return fmt.Errorf("skeleton: parameter %s has min %d > max %d", p.Name, p.Min, p.Max)
		}
		if p.Kind == Flag && (p.Min < 0 || p.Max > 1) {
			return fmt.Errorf("skeleton: flag %s must be within [0,1]", p.Name)
		}
	}
	return nil
}

// Config assigns one value per parameter, aligned with Space.Params.
type Config []int64

// Clone copies the configuration.
func (c Config) Clone() Config { return append(Config(nil), c...) }

// Key returns a map-key string identity for caching.
func (c Config) Key() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// Equal reports element-wise equality.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// In reports whether the configuration lies within the space bounds.
func (s Space) In(c Config) bool {
	if len(c) != len(s.Params) {
		return false
	}
	for i, p := range s.Params {
		if c[i] < p.Min || c[i] > p.Max {
			return false
		}
	}
	return true
}

// Clip clamps every component of c to the space bounds, returning a new
// configuration.
func (s Space) Clip(c Config) Config {
	out := c.Clone()
	for i, p := range s.Params {
		if i >= len(out) {
			break
		}
		if out[i] < p.Min {
			out[i] = p.Min
		}
		if out[i] > p.Max {
			out[i] = p.Max
		}
	}
	return out
}

// Random draws a uniform random configuration from the space.
func (s Space) Random(rng *rand.Rand) Config {
	c := make(Config, len(s.Params))
	for i, p := range s.Params {
		span := p.Max - p.Min + 1
		c[i] = p.Min + rng.Int63n(span)
	}
	return c
}

// Box is an axis-aligned hyper-rectangle inside a Space: the reduced
// search space computed by the rough-set mechanism. Bounds are
// inclusive.
type Box struct {
	Lo, Hi []int64
}

// FullBox returns the box spanning the entire space.
func (s Space) FullBox() Box {
	b := Box{Lo: make([]int64, len(s.Params)), Hi: make([]int64, len(s.Params))}
	for i, p := range s.Params {
		b.Lo[i] = p.Min
		b.Hi[i] = p.Max
	}
	return b
}

// Contains reports whether c lies within the box.
func (b Box) Contains(c Config) bool {
	if len(c) != len(b.Lo) {
		return false
	}
	for i := range c {
		if c[i] < b.Lo[i] || c[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// ClosestTo maps an arbitrary real-valued vector to the nearest
// configuration inside the box (the B.getClosestTo(r) operation of the
// paper's Algorithm 1): each component is rounded to the nearest
// integer and clamped to the box bounds.
func (b Box) ClosestTo(v []float64) Config {
	c := make(Config, len(b.Lo))
	for i := range b.Lo {
		x := int64(math.Round(v[i]))
		if x < b.Lo[i] {
			x = b.Lo[i]
		}
		if x > b.Hi[i] {
			x = b.Hi[i]
		}
		c[i] = x
	}
	return c
}

// Random draws a uniform random configuration from the box.
func (b Box) Random(rng *rand.Rand) Config {
	c := make(Config, len(b.Lo))
	for i := range b.Lo {
		span := b.Hi[i] - b.Lo[i] + 1
		c[i] = b.Lo[i] + rng.Int63n(span)
	}
	return c
}

// Volume returns the number of configurations inside the box,
// saturating at math.MaxInt64.
func (b Box) Volume() int64 {
	total := int64(1)
	for i := range b.Lo {
		span := b.Hi[i] - b.Lo[i] + 1
		if span <= 0 {
			return 0
		}
		if total > math.MaxInt64/span {
			return math.MaxInt64
		}
		total *= span
	}
	return total
}

// Instance is the result of binding a Config to a skeleton: the
// transformation steps to apply to the region's MiniIR plus the
// execution parameters consumed by the evaluator rather than the code
// generator.
type Instance struct {
	Steps   []transform.Step
	Threads int
	Unroll  int64
}

// Skeleton is a generic transformation sequence with unbound
// parameters.
type Skeleton struct {
	Name        string
	Space       Space
	Instantiate func(cfg Config) (Instance, error)
}

// Apply instantiates the skeleton for cfg and applies the resulting
// transformation sequence to the program.
func (sk *Skeleton) Apply(p *ir.Program, cfg Config) (*ir.Program, Instance, error) {
	if !sk.Space.In(cfg) {
		return nil, Instance{}, fmt.Errorf("skeleton %s: configuration %v outside space", sk.Name, cfg)
	}
	inst, err := sk.Instantiate(cfg)
	if err != nil {
		return nil, Instance{}, fmt.Errorf("skeleton %s: %w", sk.Name, err)
	}
	out, err := transform.Sequence(p, inst.Steps...)
	if err != nil {
		return nil, Instance{}, fmt.Errorf("skeleton %s: %w", sk.Name, err)
	}
	return out, inst, nil
}

// TiledParallel builds the paper's standard skeleton for a nest of
// depth `band`: tile the band with one tile-size parameter per loop,
// collapse the two outermost tile loops (when the band allows it) and
// parallelize the outermost loop with a tunable thread count.
//
// Parameter layout: [t1 .. t_band, threads].
// Tile sizes range over [1, maxTile]; thread counts over [1, maxThreads].
func TiledParallel(name string, band int, maxTile int64, maxThreads int, collapse bool) *Skeleton {
	space := Space{}
	for i := 0; i < band; i++ {
		space.Params = append(space.Params, Param{
			Name: fmt.Sprintf("t%d", i+1), Kind: TileSize, Min: 1, Max: maxTile,
		})
	}
	space.Params = append(space.Params, Param{
		Name: "threads", Kind: ThreadCount, Min: 1, Max: int64(maxThreads),
	})
	return &Skeleton{
		Name:  name,
		Space: space,
		Instantiate: func(cfg Config) (Instance, error) {
			if len(cfg) != band+1 {
				return Instance{}, fmt.Errorf("want %d parameters, got %d", band+1, len(cfg))
			}
			tiles := make([]int64, band)
			copy(tiles, cfg[:band])
			threads := int(cfg[band])
			col := 1
			// Collapsing needs two tiled outer loops; with unit tiles
			// the tile loops vanish, so fall back to collapse(1).
			if collapse && band >= 2 && tiles[0] > 1 && tiles[1] > 1 {
				col = 2
			}
			steps := []transform.Step{
				transform.TileStep(tiles),
				transform.ParallelizeStep(col),
			}
			return Instance{Steps: steps, Threads: threads, Unroll: 1}, nil
		},
	}
}

// TiledParallelUnroll extends TiledParallel with an innermost-loop
// unroll factor as one more tuning dimension ("unrolling factors" are
// among the paper's example parameters). Parameter layout:
// [t1 .. t_band, threads, unroll], unroll in [1, maxUnroll].
func TiledParallelUnroll(name string, band int, maxTile int64, maxThreads int, collapse bool, maxUnroll int64) *Skeleton {
	base := TiledParallel(name, band, maxTile, maxThreads, collapse)
	space := base.Space
	space.Params = append(space.Params, Param{
		Name: "unroll", Kind: UnrollFactor, Min: 1, Max: maxUnroll,
	})
	baseInst := base.Instantiate
	return &Skeleton{
		Name:  name,
		Space: space,
		Instantiate: func(cfg Config) (Instance, error) {
			if len(cfg) != band+2 {
				return Instance{}, fmt.Errorf("want %d parameters, got %d", band+2, len(cfg))
			}
			inst, err := baseInst(cfg[:band+1])
			if err != nil {
				return Instance{}, err
			}
			unroll := cfg[band+1]
			inst.Unroll = unroll
			inst.Steps = append(inst.Steps, transform.AnnotateUnrollStep(unroll))
			return inst, nil
		},
	}
}
