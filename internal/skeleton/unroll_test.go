package skeleton

import (
	"strings"
	"testing"

	"autotune/internal/ir"
)

func TestTiledParallelUnrollSkeleton(t *testing.T) {
	sk := TiledParallelUnroll("mm3du", 3, 700, 40, true, 8)
	if sk.Space.Dim() != 5 {
		t.Fatalf("dim = %d, want 5", sk.Space.Dim())
	}
	last := sk.Space.Params[4]
	if last.Kind != UnrollFactor || last.Min != 1 || last.Max != 8 {
		t.Fatalf("unroll param = %+v", last)
	}
	p := mmProgram(64)
	out, inst, err := sk.Apply(p, Config{16, 16, 16, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Unroll != 4 || inst.Threads != 4 {
		t.Fatalf("instance = %+v", inst)
	}
	loops, _ := ir.PerfectNest(out.Root[0])
	inner := loops[len(loops)-1]
	if inner.UnrollPragma != 4 {
		t.Fatalf("inner unroll pragma = %d", inner.UnrollPragma)
	}
	if !strings.Contains(out.String(), "#pragma unroll(4)") {
		t.Errorf("pragma missing in listing:\n%s", out.String())
	}
	// Factor 1 leaves no annotation.
	out1, _, err := sk.Apply(p, Config{16, 16, 16, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out1.String(), "#pragma unroll") {
		t.Error("factor 1 should not annotate")
	}
	// Wrong arity rejected.
	if _, _, err := sk.Apply(p, Config{16, 16, 16, 4}); err == nil {
		t.Error("missing unroll param accepted")
	}
}
