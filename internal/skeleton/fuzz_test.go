package skeleton

import (
	"math"
	"testing"
)

// fuzzSpace builds a small space whose bounds are derived from fuzz
// input, normalized so Min <= Max and spans stay positive.
func fuzzSpace(b1, b2, b3, b4 int64) Space {
	norm := func(lo, hi int64) (int64, int64) {
		lo, hi = lo%1000, hi%1000
		if lo < 0 {
			lo = -lo
		}
		if hi < 0 {
			hi = -hi
		}
		lo++
		hi++
		if hi < lo {
			lo, hi = hi, lo
		}
		return lo, hi
	}
	l1, h1 := norm(b1, b2)
	l2, h2 := norm(b3, b4)
	return Space{Params: []Param{
		{Name: "t", Kind: TileSize, Min: l1, Max: h1},
		{Name: "p", Kind: ThreadCount, Min: l2, Max: h2},
	}}
}

// FuzzConfigClamp asserts the two clamping paths the optimizer relies
// on always land inside the space: Space.Clip for full-length integer
// configurations and Box.ClosestTo for arbitrary real vectors
// (including NaN and infinities, which differential-evolution
// arithmetic can produce).
func FuzzConfigClamp(f *testing.F) {
	f.Add(int64(1), int64(64), int64(1), int64(16), int64(7), int64(-3), 2.5, -1e18)
	f.Add(int64(-5), int64(5), int64(100), int64(2), int64(0), int64(1<<40), math.Inf(1), math.NaN())
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(math.MinInt64), int64(math.MaxInt64), -0.0, 1e308)
	f.Fuzz(func(t *testing.T, b1, b2, b3, b4, v1, v2 int64, r1, r2 float64) {
		space := fuzzSpace(b1, b2, b3, b4)
		if err := space.Validate(); err != nil {
			t.Fatalf("fuzzSpace built an invalid space: %v", err)
		}

		clipped := space.Clip(Config{v1, v2})
		if !space.In(clipped) {
			t.Fatalf("Clip(%v) = %v escapes space %+v", Config{v1, v2}, clipped, space.Params)
		}

		box := space.FullBox()
		closest := box.ClosestTo([]float64{r1, r2})
		if !box.Contains(closest) || !space.In(closest) {
			t.Fatalf("ClosestTo([%g %g]) = %v escapes box [%v, %v]", r1, r2, closest, box.Lo, box.Hi)
		}

		// A narrowed box must also contain its clamp results.
		sub := Box{
			Lo: []int64{(box.Lo[0] + box.Hi[0]) / 2, box.Lo[1]},
			Hi: []int64{box.Hi[0], (box.Lo[1] + box.Hi[1]) / 2},
		}
		closest = sub.ClosestTo([]float64{r1, r2})
		if !sub.Contains(closest) {
			t.Fatalf("ClosestTo([%g %g]) = %v escapes narrowed box [%v, %v]", r1, r2, closest, sub.Lo, sub.Hi)
		}
	})
}
