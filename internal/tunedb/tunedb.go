// Package tunedb is the persistent tuning database: an embedded,
// concurrency-safe, on-disk store of tuning results keyed by (program
// fingerprint, machine signature, objective set, search-space hash).
// It turns the framework's in-memory evaluation cache and Pareto
// fronts into durable assets that outlive the process, so repeated or
// overlapping searches skip known configurations (the E metric counts
// only genuinely new evaluations), warm starts seed the initial
// population from stored fronts, and results tuned on one modeled
// machine transfer to the nearest-signature neighbor.
//
// Storage is an append-only JSONL journal (journal.jsonl) of versioned,
// CRC-checked records. Recovery is crash-tolerant: a torn tail — the
// partial record a crash mid-append leaves behind — is detected by CRC
// and truncated, keeping every complete record. Compact rewrites the
// journal retaining only live entries (the latest front per key plus
// the deduplicated evaluation set).
package tunedb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"autotune/internal/machine"
	"autotune/internal/skeleton"
)

// journalName is the journal file name inside the database directory.
const journalName = "journal.jsonl"

// schemaVersion is the journal record schema version.
const schemaVersion = 1

// Record type tags.
const (
	recEval  = "eval"
	recFront = "front"
)

// envelope is the on-disk frame of one journal record: schema version,
// record type, CRC-32C of the payload bytes, and the payload itself.
type envelope struct {
	V   int             `json:"v"`
	T   string          `json:"t"`
	CRC uint32          `json:"crc"`
	D   json.RawMessage `json:"d"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// evalRecord journals one evaluated configuration. Nil objectives mark
// a known-failed (invalid) configuration; storing failures lets warm
// runs skip re-evaluating them.
type evalRecord struct {
	Key        Key       `json:"key"`
	Config     []int64   `json:"config"`
	Objectives []float64 `json:"objectives"`
}

// FrontPoint is one stored Pareto point.
type FrontPoint struct {
	Config     []int64   `json:"config"`
	Objectives []float64 `json:"objectives"`
}

// FrontRecord is a finished Pareto front stored under its key together
// with the machine signature it was tuned on (kept structurally, not
// just as a key string, so the transfer path can compute signature
// distances) and the search's summary statistics.
type FrontRecord struct {
	Key            Key               `json:"key"`
	Machine        machine.Signature `json:"machine_sig"`
	ObjectiveNames []string          `json:"objective_names"`
	Points         []FrontPoint      `json:"points"`
	Evaluations    int               `json:"evaluations"`
	Iterations     int               `json:"iterations"`
}

// evalEntry is the in-memory form of one stored evaluation.
type evalEntry struct {
	cfg  skeleton.Config
	objs []float64
}

// DB is an open tuning database. All methods are safe for concurrent
// use; writes are serialized onto the append-only journal.
type DB struct {
	dir  string
	path string

	mu     sync.Mutex
	f      *os.File
	evals  map[string]map[string]evalEntry // key -> config key -> entry
	fronts map[string]FrontRecord          // key -> latest front
	keys   map[string]Key                  // key string -> structured key
}

// Open opens (creating if necessary) the database in dir, recovering
// from a torn journal tail left by a crash mid-append. Corruption
// elsewhere — an unreadable record followed by readable ones — is
// reported as an error rather than silently dropped.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tunedb: %w", err)
	}
	db := &DB{
		dir:    dir,
		path:   filepath.Join(dir, journalName),
		evals:  map[string]map[string]evalEntry{},
		fronts: map[string]FrontRecord{},
		keys:   map[string]Key{},
	}
	if err := db.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(db.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tunedb: %w", err)
	}
	db.f = f
	return db, nil
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// Close flushes and closes the journal. The DB must not be used after.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.f == nil {
		return nil
	}
	err := db.f.Sync()
	if cerr := db.f.Close(); err == nil {
		err = cerr
	}
	db.f = nil
	return err
}

// load replays the journal into memory, truncating a torn tail.
func (db *DB) load() error {
	data, err := os.ReadFile(db.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	offset := 0
	for offset < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			// No terminating newline: the crash hit mid-append.
			return db.truncateTail(data, offset)
		}
		line := data[offset : offset+nl]
		if err := db.apply(line); err != nil {
			// A bad record is a torn tail only if nothing readable
			// follows it; otherwise the journal is corrupt in a way
			// appending cannot explain.
			if anyValidRecord(data[offset+nl+1:]) {
				return fmt.Errorf("tunedb: corrupt journal record at byte %d: %w", offset, err)
			}
			return db.truncateTail(data, offset)
		}
		offset += nl + 1
	}
	return nil
}

// truncateTail cuts the journal back to offset, dropping the torn
// record(s) beyond it.
func (db *DB) truncateTail(data []byte, offset int) error {
	if err := os.WriteFile(db.path+".tmp", data[:offset], 0o644); err != nil {
		return fmt.Errorf("tunedb: recovering torn tail: %w", err)
	}
	if err := os.Rename(db.path+".tmp", db.path); err != nil {
		return fmt.Errorf("tunedb: recovering torn tail: %w", err)
	}
	return nil
}

// anyValidRecord reports whether rest contains at least one complete,
// CRC-valid record.
func anyValidRecord(rest []byte) bool {
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return false
		}
		if _, _, err := decodeRecord(rest[:nl]); err == nil {
			return true
		}
		rest = rest[nl+1:]
	}
	return false
}

// decodeRecord parses and CRC-verifies one journal line, returning the
// record type and payload bytes.
func decodeRecord(line []byte) (string, json.RawMessage, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return "", nil, err
	}
	if env.V != schemaVersion {
		return "", nil, fmt.Errorf("unsupported schema version %d", env.V)
	}
	if crc32.Checksum(env.D, crcTable) != env.CRC {
		return "", nil, fmt.Errorf("CRC mismatch")
	}
	return env.T, env.D, nil
}

// apply decodes one journal line and folds it into the in-memory state.
func (db *DB) apply(line []byte) error {
	t, payload, err := decodeRecord(line)
	if err != nil {
		return err
	}
	switch t {
	case recEval:
		var r evalRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return err
		}
		db.applyEval(r)
	case recFront:
		var r FrontRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return err
		}
		db.applyFront(r)
	default:
		return fmt.Errorf("unknown record type %q", t)
	}
	return nil
}

func (db *DB) applyEval(r evalRecord) {
	ks := r.Key.String()
	m := db.evals[ks]
	if m == nil {
		m = map[string]evalEntry{}
		db.evals[ks] = m
	}
	cfg := skeleton.Config(r.Config)
	m[cfg.Key()] = evalEntry{cfg: cfg, objs: r.Objectives}
	db.keys[ks] = r.Key
}

func (db *DB) applyFront(r FrontRecord) {
	ks := r.Key.String()
	db.fronts[ks] = r
	db.keys[ks] = r.Key
}

// appendRecord journals one record. Callers hold db.mu.
func (db *DB) appendRecord(t string, rec interface{}) error {
	if db.f == nil {
		return fmt.Errorf("tunedb: database is closed")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	env := envelope{V: schemaVersion, T: t, CRC: crc32.Checksum(payload, crcTable), D: payload}
	line, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	if _, err := db.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	return nil
}

// PutEval stores one evaluated configuration under key. Re-storing a
// configuration already present with the same result is a no-op, so
// repeated cold runs do not grow the journal.
func (db *DB) PutEval(key Key, cfg skeleton.Config, objs []float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	ks := key.String()
	if m := db.evals[ks]; m != nil {
		if old, ok := m[cfg.Key()]; ok && equalObjs(old.objs, objs) {
			return nil
		}
	}
	rec := evalRecord{Key: key, Config: cfg, Objectives: objs}
	if err := db.appendRecord(recEval, rec); err != nil {
		return err
	}
	db.applyEval(rec)
	return nil
}

// PutFront stores a finished Pareto front, superseding any previous
// front under the same key. Points are stored in canonical order
// (lexicographic by objective vector, then configuration) so exports
// are byte-stable.
func (db *DB) PutFront(rec FrontRecord) error {
	sortFrontPoints(rec.Points)
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.appendRecord(recFront, rec); err != nil {
		return err
	}
	db.applyFront(rec)
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	return nil
}

func sortFrontPoints(pts []FrontPoint) {
	sort.Slice(pts, func(a, b int) bool {
		oa, ob := pts[a].Objectives, pts[b].Objectives
		for i := 0; i < len(oa) && i < len(ob); i++ {
			if oa[i] != ob[i] {
				return oa[i] < ob[i]
			}
		}
		if len(oa) != len(ob) {
			return len(oa) < len(ob)
		}
		return skeleton.Config(pts[a].Config).Key() < skeleton.Config(pts[b].Config).Key()
	})
}

func equalObjs(a, b []float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Front returns the stored front for an exact key.
func (db *DB) Front(key Key) (FrontRecord, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.fronts[key.String()]
	return rec, ok
}

// EvalCount returns the number of stored evaluations for a key.
func (db *DB) EvalCount(key Key) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.evals[key.String()])
}

// Keys lists every key with stored data, sorted by canonical string.
func (db *DB) Keys() []Key {
	db.mu.Lock()
	defer db.mu.Unlock()
	strs := make([]string, 0, len(db.keys))
	for ks := range db.keys {
		strs = append(strs, ks)
	}
	sort.Strings(strs)
	out := make([]Key, len(strs))
	for i, ks := range strs {
		out[i] = db.keys[ks]
	}
	return out
}

// Compact rewrites the journal keeping only live entries: the latest
// front per key and the deduplicated evaluation set. The rewrite goes
// through a temp file and an atomic rename, so a crash during
// compaction leaves either the old or the new journal intact.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.f == nil {
		return fmt.Errorf("tunedb: database is closed")
	}
	tmpPath := db.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	write := func(t string, rec interface{}) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		env := envelope{V: schemaVersion, T: t, CRC: crc32.Checksum(payload, crcTable), D: payload}
		line, err := json.Marshal(env)
		if err != nil {
			return err
		}
		_, err = tmp.Write(append(line, '\n'))
		return err
	}
	var strs []string
	for ks := range db.keys {
		strs = append(strs, ks)
	}
	sort.Strings(strs)
	for _, ks := range strs {
		key := db.keys[ks]
		if rec, ok := db.fronts[ks]; ok {
			if err := write(recFront, rec); err != nil {
				tmp.Close()
				return fmt.Errorf("tunedb: compact: %w", err)
			}
		}
		var cfgKeys []string
		for ck := range db.evals[ks] {
			cfgKeys = append(cfgKeys, ck)
		}
		sort.Strings(cfgKeys)
		for _, ck := range cfgKeys {
			e := db.evals[ks][ck]
			if err := write(recEval, evalRecord{Key: key, Config: e.cfg, Objectives: e.objs}); err != nil {
				tmp.Close()
				return fmt.Errorf("tunedb: compact: %w", err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("tunedb: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tunedb: compact: %w", err)
	}
	if err := os.Rename(tmpPath, db.path); err != nil {
		return fmt.Errorf("tunedb: compact: %w", err)
	}
	// Reopen the append handle on the new inode.
	db.f.Close()
	f, err := os.OpenFile(db.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		db.f = nil
		return fmt.Errorf("tunedb: compact: %w", err)
	}
	db.f = f
	return nil
}

// Merge folds every record of the database at dir into this one
// (cross-machine transfer: carry a journal over from another host and
// merge it). It returns the number of evaluation and front records
// adopted. Fronts already present locally are only replaced when the
// incoming front is absent locally.
func (db *DB) Merge(dir string) (evals, fronts int, err error) {
	other, err := Open(dir)
	if err != nil {
		return 0, 0, err
	}
	defer other.Close()
	other.mu.Lock()
	defer other.mu.Unlock()
	for ks, m := range other.evals {
		key := other.keys[ks]
		var cfgKeys []string
		for ck := range m {
			cfgKeys = append(cfgKeys, ck)
		}
		sort.Strings(cfgKeys)
		for _, ck := range cfgKeys {
			e := m[ck]
			db.mu.Lock()
			_, exists := db.evals[ks][ck]
			db.mu.Unlock()
			if exists {
				continue
			}
			if err := db.PutEval(key, e.cfg, e.objs); err != nil {
				return evals, fronts, err
			}
			evals++
		}
	}
	var frontKeys []string
	for ks := range other.fronts {
		frontKeys = append(frontKeys, ks)
	}
	sort.Strings(frontKeys)
	for _, ks := range frontKeys {
		db.mu.Lock()
		_, exists := db.fronts[ks]
		db.mu.Unlock()
		if exists {
			continue
		}
		if err := db.PutFront(other.fronts[ks]); err != nil {
			return evals, fronts, err
		}
		fronts++
	}
	return evals, fronts, nil
}
