// Package tunedb is the persistent tuning database: an embedded,
// concurrency-safe, on-disk store of tuning results keyed by (program
// fingerprint, machine signature, objective set, search-space hash).
// It turns the framework's in-memory evaluation cache and Pareto
// fronts into durable assets that outlive the process, so repeated or
// overlapping searches skip known configurations (the E metric counts
// only genuinely new evaluations), warm starts seed the initial
// population from stored fronts, and results tuned on one modeled
// machine transfer to the nearest-signature neighbor.
//
// Storage is the internal/store LSM engine under <dir>/store: records
// live in sharded write-ahead logs and immutable sorted segment files
// with per-segment bloom filters, sharded by program fingerprint so
// concurrent searches of different programs never contend, with
// size-tiered compaction dropping superseded records in the background.
// Opening is O(segment metadata), not O(data). Databases written by the
// v1 append-only JSONL journal are migrated transparently (one-shot,
// atomic) on first open; see migrate.go.
//
// Record namespaces inside the store, all in canonical key order:
//
//	k|<key>            → the structured Key (registry; Keys scans it)
//	e|<key>|<cfg>      → one evaluated configuration's objectives
//	f|<key>            → the latest Pareto front for the key
package tunedb

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"autotune/internal/chaos"
	"autotune/internal/machine"
	"autotune/internal/skeleton"
	"autotune/internal/store"
)

// journalName is the v1 journal file name inside the database
// directory; v1 databases are migrated to the store engine on open.
const journalName = "journal.jsonl"

// schemaVersion is the journal record schema version (v1 journals and
// the exported EncodeRecord framing used by checkpoint files).
const schemaVersion = 1

// Record type tags.
const (
	recEval  = "eval"
	recFront = "front"
)

// Store key namespace tags.
const (
	nsKey   = "k|"
	nsEval  = "e|"
	nsFront = "f|"
)

// evalRecord journals one evaluated configuration (the v1 journal
// form, still used by migration). Nil objectives mark a known-failed
// (invalid) configuration; storing failures lets warm runs skip
// re-evaluating them.
type evalRecord struct {
	Key        Key       `json:"key"`
	Config     []int64   `json:"config"`
	Objectives []float64 `json:"objectives"`
}

// evalValue is the store-resident form of one evaluation: the key and
// config live in the store key, only the measurement in the value.
type evalValue struct {
	Config     []int64   `json:"config"`
	Objectives []float64 `json:"objectives"`
}

// FrontPoint is one stored Pareto point.
type FrontPoint struct {
	Config     []int64   `json:"config"`
	Objectives []float64 `json:"objectives"`
}

// FrontRecord is a finished Pareto front stored under its key together
// with the machine signature it was tuned on (kept structurally, not
// just as a key string, so the transfer path can compute signature
// distances) and the search's summary statistics.
type FrontRecord struct {
	Key            Key               `json:"key"`
	Machine        machine.Signature `json:"machine_sig"`
	ObjectiveNames []string          `json:"objective_names"`
	Points         []FrontPoint      `json:"points"`
	Evaluations    int               `json:"evaluations"`
	Iterations     int               `json:"iterations"`
}

// DB is an open tuning database. All methods are safe for concurrent
// use; writers on different programs land on different store shards
// and never contend.
type DB struct {
	dir string
	st  *store.Store
}

// storeOptions is the engine configuration every tunedb database uses.
// Sharding hashes only the program-fingerprint component of a key, so
// every record of one program — across machines, objective sets and
// spaces — stays in one shard and a cross-machine range scan stays a
// single-shard scan.
func storeOptions() store.Options {
	return store.Options{
		Shards:  16,
		ShardBy: shardHash,
	}
}

// shardHash extracts the program fingerprint from a namespaced store
// key ("e|<fingerprint>|...") and hashes it.
func shardHash(storeKey string) uint32 {
	rest := storeKey
	if i := strings.IndexByte(rest, '|'); i >= 0 {
		rest = rest[i+1:]
	}
	if i := strings.IndexByte(rest, '|'); i >= 0 {
		rest = rest[:i]
	}
	h := fnv.New32a()
	h.Write([]byte(rest))
	return h.Sum32()
}

func evalStoreKey(ks, cfgKey string) string { return nsEval + ks + "|" + cfgKey }
func frontStoreKey(ks string) string        { return nsFront + ks }
func keyStoreKey(ks string) string          { return nsKey + ks }

// Open opens (creating if necessary) the database in dir. A database
// last written by the v1 JSONL journal engine is migrated in place
// first: the journal (with any torn tail truncated, exactly as v1
// recovery did) is replayed into a fresh store, atomically renamed
// into place, and the journal archived as journal.jsonl.v1. Interior
// journal corruption — an unreadable record followed by readable ones —
// is reported as an error rather than silently dropped.
func Open(dir string) (*DB, error) { return OpenFS(dir, nil) }

// OpenFS opens the database over an explicit filesystem (the real OS
// when nil). Chaos tests inject a scripted chaos.Injector; production
// callers use Open.
func OpenFS(dir string, fsys chaos.FS) (*DB, error) {
	if err := migrateV1(dir); err != nil {
		return nil, err
	}
	opt := storeOptions()
	opt.FS = fsys
	st, err := store.Open(storeDir(dir), opt)
	if err != nil {
		return nil, fmt.Errorf("tunedb: %w", err)
	}
	return &DB{dir: dir, st: st}, nil
}

// Health reports the underlying store's degradation state: whether any
// write path has failed (the database serves reads but refuses writes)
// and why.
func (db *DB) Health() store.Health { return db.st.Health() }

// Recover attempts to return a degraded database to writable service
// once the underlying fault has cleared; see store.Recover.
func (db *DB) Recover() error {
	if err := db.st.Recover(); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	return nil
}

// IsReadOnly reports whether err means the database has degraded to
// read-only after an I/O fault (the write was refused, not lost in an
// unknown state). Callers that can proceed without persistence — a
// running search recording progress — may treat such errors as
// non-fatal and rely on Health for surfacing.
func IsReadOnly(err error) bool { return errors.Is(err, store.ErrReadOnly) }

// Fsck verifies the database's on-disk store offline — CRC frames,
// segment sort order and footers, bloom and index consistency — without
// opening it for writing. It works (by design) on databases too
// damaged for Open.
func Fsck(dir string) (store.FsckReport, error) { return store.Fsck(storeDir(dir)) }

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// Close flushes and closes the engine. The DB must not be used after;
// Close is idempotent.
func (db *DB) Close() error {
	if err := db.st.Close(); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	return nil
}

// PutEval stores one evaluated configuration under key. Re-storing a
// configuration already present with the same result is a no-op, so
// repeated cold runs do not grow the database.
func (db *DB) PutEval(key Key, cfg skeleton.Config, objs []float64) error {
	ks := key.String()
	sk := evalStoreKey(ks, cfg.Key())
	if old, ok, err := db.st.Get(sk); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	} else if ok {
		var v evalValue
		if json.Unmarshal(old, &v) == nil && equalObjs(v.Objectives, objs) {
			return nil
		}
	}
	val, err := json.Marshal(evalValue{Config: cfg, Objectives: objs})
	if err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	if err := db.st.Put(sk, val); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	return db.registerKey(key, ks)
}

// registerKey makes key discoverable by Keys()/ScanKeys().
func (db *DB) registerKey(key Key, ks string) error {
	kk := keyStoreKey(ks)
	if _, ok, err := db.st.Get(kk); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	} else if ok {
		return nil
	}
	val, err := json.Marshal(key)
	if err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	if err := db.st.Put(kk, val); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	return nil
}

// PutFront stores a finished Pareto front, superseding any previous
// front under the same key. Points are stored in canonical order
// (lexicographic by objective vector, then configuration) so exports
// are byte-stable. The write is made durable before PutFront returns.
func (db *DB) PutFront(rec FrontRecord) error {
	sortFrontPoints(rec.Points)
	ks := rec.Key.String()
	val, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	if err := db.st.Put(frontStoreKey(ks), val); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	if err := db.registerKey(rec.Key, ks); err != nil {
		return err
	}
	if err := db.st.Sync(); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	return nil
}

func sortFrontPoints(pts []FrontPoint) {
	sort.Slice(pts, func(a, b int) bool {
		oa, ob := pts[a].Objectives, pts[b].Objectives
		for i := 0; i < len(oa) && i < len(ob); i++ {
			if oa[i] != ob[i] {
				return oa[i] < ob[i]
			}
		}
		if len(oa) != len(ob) {
			return len(oa) < len(ob)
		}
		return skeleton.Config(pts[a].Config).Key() < skeleton.Config(pts[b].Config).Key()
	})
}

func equalObjs(a, b []float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Front returns the stored front for an exact key — a sharded,
// bloom-screened point lookup.
func (db *DB) Front(key Key) (FrontRecord, bool) {
	data, ok, err := db.st.Get(frontStoreKey(key.String()))
	if err != nil || !ok {
		return FrontRecord{}, false
	}
	var rec FrontRecord
	if json.Unmarshal(data, &rec) != nil {
		return FrontRecord{}, false
	}
	return rec, true
}

// GetEval point-looks one stored evaluation up. ok distinguishes "not
// stored" from a stored known-failure (ok with nil objectives).
func (db *DB) GetEval(key Key, cfg skeleton.Config) (objs []float64, ok bool) {
	data, ok, err := db.st.Get(evalStoreKey(key.String(), cfg.Key()))
	if err != nil || !ok {
		return nil, false
	}
	var v evalValue
	if json.Unmarshal(data, &v) != nil {
		return nil, false
	}
	return v.Objectives, true
}

// EvalCount returns the number of stored evaluations for a key.
func (db *DB) EvalCount(key Key) int {
	n := 0
	it := db.st.Iter(nsEval + key.String() + "|")
	defer it.Close()
	for it.Next() {
		n++
	}
	return n
}

// Keys lists every key with stored data, sorted by canonical string.
func (db *DB) Keys() []Key {
	keys, _ := db.ScanKeys("")
	return keys
}

// ScanKeys range-scans the key registry: every stored key whose
// canonical string starts with prefix, in canonical order. A program
// fingerprint prefix selects that program's results across every
// machine, objective set and space — the cross-machine query the
// portfolio work builds on.
func (db *DB) ScanKeys(prefix string) ([]Key, error) {
	it := db.st.Iter(nsKey + prefix)
	defer it.Close()
	var out []Key
	for it.Next() {
		var k Key
		if err := json.Unmarshal(it.Value(), &k); err != nil {
			return nil, fmt.Errorf("tunedb: key registry entry %q: %w", it.Key(), err)
		}
		out = append(out, k)
	}
	if err := it.Err(); err != nil {
		return nil, fmt.Errorf("tunedb: %w", err)
	}
	return out, nil
}

// ScanEvals streams every stored evaluation for keys matching the
// canonical-string prefix, in canonical order, invoking fn with the
// owning key string and the evaluation. Iteration stops early when fn
// returns false.
func (db *DB) ScanEvals(prefix string, fn func(keyStr string, cfg skeleton.Config, objs []float64) bool) error {
	it := db.st.Iter(nsEval + prefix)
	defer it.Close()
	for it.Next() {
		var v evalValue
		if err := json.Unmarshal(it.Value(), &v); err != nil {
			return fmt.Errorf("tunedb: eval entry %q: %w", it.Key(), err)
		}
		ks := strings.TrimPrefix(it.Key(), nsEval)
		if i := strings.LastIndexByte(ks, '|'); i >= 0 {
			ks = ks[:i]
		}
		if !fn(ks, skeleton.Config(v.Config), v.Objectives) {
			return nil
		}
	}
	if err := it.Err(); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	return nil
}

// Stats reports the storage engine's physical state (per-shard segment
// counts, live/dead record ratios, bloom filter effectiveness).
func (db *DB) Stats() (store.Stats, error) {
	s, err := db.st.Stats()
	if err != nil {
		return store.Stats{}, fmt.Errorf("tunedb: %w", err)
	}
	return s, nil
}

// Compact flushes memtables and merges every shard's segments down to
// one, dropping superseded eval/front records. Segment renames are
// followed by directory fsyncs, so a crash immediately after compaction
// cannot resurrect pre-compaction state.
func (db *DB) Compact() error {
	if err := db.st.Compact(); err != nil {
		return fmt.Errorf("tunedb: compact: %w", err)
	}
	return nil
}

// Merge folds every record of the database at dir into this one
// (cross-machine transfer: carry a database over from another host and
// merge it; a v1 journal directory is migrated on open). It returns
// the number of evaluation and front records adopted. Records already
// present locally are kept: an incoming front only lands when no local
// front exists under the same key. The adopted records are made
// durable before Merge returns.
func (db *DB) Merge(dir string) (evals, fronts int, err error) {
	other, err := Open(dir)
	if err != nil {
		return 0, 0, err
	}
	defer other.Close()

	byKS := map[string]Key{}
	otherKeys, err := other.ScanKeys("")
	if err != nil {
		return 0, 0, err
	}
	for _, k := range otherKeys {
		byKS[k.String()] = k
	}

	mergeErr := other.ScanEvals("", func(ks string, cfg skeleton.Config, objs []float64) bool {
		key, ok := byKS[ks]
		if !ok {
			return true // unregistered record: skip
		}
		if _, exists := db.GetEval(key, cfg); exists {
			return true
		}
		if err = db.PutEval(key, cfg, objs); err != nil {
			return false
		}
		evals++
		return true
	})
	if err == nil {
		err = mergeErr
	}
	if err != nil {
		return evals, fronts, err
	}

	for _, k := range otherKeys {
		rec, ok := other.Front(k)
		if !ok {
			continue
		}
		if _, exists := db.Front(k); exists {
			continue
		}
		if err := db.PutFront(rec); err != nil {
			return evals, fronts, err
		}
		fronts++
	}
	if err := db.st.Sync(); err != nil {
		return evals, fronts, fmt.Errorf("tunedb: %w", err)
	}
	return evals, fronts, nil
}
