// The v1 journal envelope: versioned, CRC-32C-checked JSONL frames.
// Still load-bearing after the store-engine rebase — EncodeRecord /
// ScanJournal (scan.go) frame the resilience checkpoints, and
// migrateV1 replays v1 journals through the same decoder.

package tunedb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// envelope is the on-disk frame of one journal record: schema version,
// record type, CRC-32C of the payload bytes, and the payload itself.
type envelope struct {
	V   int             `json:"v"`
	T   string          `json:"t"`
	CRC uint32          `json:"crc"`
	D   json.RawMessage `json:"d"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// decodeRecord parses and CRC-verifies one journal line, returning the
// record type and payload bytes.
func decodeRecord(line []byte) (string, json.RawMessage, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return "", nil, err
	}
	if env.V != schemaVersion {
		return "", nil, fmt.Errorf("unsupported schema version %d", env.V)
	}
	if crc32.Checksum(env.D, crcTable) != env.CRC {
		return "", nil, fmt.Errorf("CRC mismatch")
	}
	return env.T, env.D, nil
}

// anyValidRecord reports whether any complete, valid record follows —
// the discriminator between a torn tail (truncatable) and interior
// corruption (an error).
func anyValidRecord(rest []byte) bool {
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return false
		}
		if _, _, err := decodeRecord(rest[:nl]); err == nil {
			return true
		}
		rest = rest[nl+1:]
	}
	return false
}
