// One-shot migration of v1 journal databases onto the store engine.
//
// A v1 database is a directory holding journal.jsonl. Migration builds
// a complete store under store.migrating, atomically renames it to
// store/, fsyncs the directory, then archives the journal as
// journal.jsonl.v1 and fsyncs again. The protocol is crash-safe at
// every step:
//
//   - crash before the store rename: store.migrating is discarded and
//     migration restarts from the untouched journal;
//   - crash between the renames (store/ exists AND journal.jsonl
//     exists): the store is complete — only the archival rename is
//     redone;
//   - crash after both renames: nothing left to do.
//
// The journal is replayed through the same torn-tail/interior-
// corruption rules as v1 recovery: a torn tail migrates the valid
// prefix, interior corruption aborts with an error.

package tunedb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"autotune/internal/skeleton"
	"autotune/internal/store"
)

// storeDir is where the engine lives inside a database directory.
func storeDir(dir string) string { return filepath.Join(dir, "store") }

// migratingSuffix marks a store build that has not been renamed into
// place; such a directory is incomplete by definition and is discarded.
const migratingSuffix = ".migrating"

// archivedJournal is the name the v1 journal is preserved under after
// migration (kept, not deleted: it is the rollback path and the
// byte-identity audit trail).
const archivedJournal = journalName + ".v1"

// migrateV1 migrates a v1 journal database at dir onto the store
// engine, if one is present. It is a no-op for fresh directories and
// already-migrated databases.
func migrateV1(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	jpath := filepath.Join(dir, journalName)
	sdir := storeDir(dir)
	if _, err := os.Stat(jpath); os.IsNotExist(err) {
		return nil // fresh or already migrated
	} else if err != nil {
		return fmt.Errorf("tunedb: %w", err)
	}
	if _, err := os.Stat(sdir); err == nil {
		// Crash between the two renames: the store is complete, only
		// the journal archival is outstanding.
		return archiveJournal(dir, jpath)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("tunedb: %w", err)
	}

	data, err := os.ReadFile(jpath)
	if err != nil {
		return fmt.Errorf("tunedb: migrating: %w", err)
	}
	tmp := sdir + migratingSuffix
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("tunedb: migrating: %w", err)
	}
	st, err := store.Open(tmp, storeOptions())
	if err != nil {
		return fmt.Errorf("tunedb: migrating: %w", err)
	}
	replayErr := replayJournal(data, st)
	if cerr := st.Close(); replayErr == nil {
		replayErr = cerr
	}
	if replayErr != nil {
		os.RemoveAll(tmp)
		return replayErr
	}
	if err := os.Rename(tmp, sdir); err != nil {
		return fmt.Errorf("tunedb: migrating: %w", err)
	}
	if err := store.SyncDir(dir); err != nil {
		return fmt.Errorf("tunedb: migrating: %w", err)
	}
	return archiveJournal(dir, jpath)
}

// replayJournal folds every valid v1 journal record into st, applying
// v1's newest-wins semantics (the store's Put supersedes naturally).
func replayJournal(data []byte, st *store.Store) error {
	_, err := ScanJournal(data, func(t string, payload json.RawMessage) error {
		switch t {
		case recEval:
			var r evalRecord
			if err := json.Unmarshal(payload, &r); err != nil {
				return fmt.Errorf("tunedb: migrating eval record: %w", err)
			}
			ks := r.Key.String()
			val, err := json.Marshal(evalValue{Config: r.Config, Objectives: r.Objectives})
			if err != nil {
				return err
			}
			if err := st.Put(evalStoreKey(ks, skeleton.Config(r.Config).Key()), val); err != nil {
				return err
			}
			return putKeyOnce(st, r.Key, ks)
		case recFront:
			var r FrontRecord
			if err := json.Unmarshal(payload, &r); err != nil {
				return fmt.Errorf("tunedb: migrating front record: %w", err)
			}
			sortFrontPoints(r.Points)
			ks := r.Key.String()
			val, err := json.Marshal(r)
			if err != nil {
				return err
			}
			if err := st.Put(frontStoreKey(ks), val); err != nil {
				return err
			}
			return putKeyOnce(st, r.Key, ks)
		default:
			return fmt.Errorf("tunedb: migrating: unknown record type %q", t)
		}
	})
	return err
}

// putKeyOnce registers a key in the store's key namespace if absent.
func putKeyOnce(st *store.Store, key Key, ks string) error {
	kk := keyStoreKey(ks)
	if _, ok, err := st.Get(kk); err != nil || ok {
		return err
	}
	val, err := json.Marshal(key)
	if err != nil {
		return err
	}
	return st.Put(kk, val)
}

// archiveJournal renames the v1 journal aside and fsyncs the
// directory, completing (or resuming) a migration.
func archiveJournal(dir, jpath string) error {
	if err := os.Rename(jpath, filepath.Join(dir, archivedJournal)); err != nil {
		return fmt.Errorf("tunedb: migrating: %w", err)
	}
	if err := store.SyncDir(dir); err != nil {
		return fmt.Errorf("tunedb: migrating: %w", err)
	}
	return nil
}
