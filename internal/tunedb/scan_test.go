package tunedb

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

type scanRec struct {
	N int `json:"n"`
}

func journalOf(t *testing.T, ns ...int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, n := range ns {
		line, err := EncodeRecord("rec", scanRec{N: n})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestEncodeDecodeRecordRoundtrip: a framed line decodes back to its
// type and payload, and a flipped payload byte fails the CRC.
func TestEncodeDecodeRecordRoundtrip(t *testing.T) {
	line, err := EncodeRecord("rec", scanRec{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err := DecodeRecordLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if typ != "rec" {
		t.Fatalf("type = %q", typ)
	}
	var r scanRec
	if err := json.Unmarshal(payload, &r); err != nil || r.N != 7 {
		t.Fatalf("payload = %s (err %v)", payload, err)
	}
	bad := bytes.Replace(line, []byte(`"n":7`), []byte(`"n":9`), 1)
	if _, _, err := DecodeRecordLine(bad); err == nil {
		t.Fatal("CRC mismatch went undetected")
	}
}

// TestScanJournalReplaysInOrder: every record is replayed in journal
// order and the full length is reported valid.
func TestScanJournalReplaysInOrder(t *testing.T) {
	data := journalOf(t, 1, 2, 3)
	var seen []int
	n, err := ScanJournal(data, func(typ string, payload json.RawMessage) error {
		var r scanRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return err
		}
		seen = append(seen, r.N)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Fatalf("valid prefix %d, want the full %d bytes", n, len(data))
	}
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("replayed %v", seen)
	}
}

// TestScanJournalTornTail: truncating the final record anywhere stops
// the scan cleanly at the last complete record.
func TestScanJournalTornTail(t *testing.T) {
	data := journalOf(t, 1, 2)
	first := bytes.IndexByte(data, '\n') + 1
	for cut := first; cut < len(data); cut++ {
		var count int
		n, err := ScanJournal(data[:cut], func(string, json.RawMessage) error {
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if n != first || count != 1 {
			t.Fatalf("cut at %d: valid prefix %d with %d records, want %d with 1", cut, n, first, count)
		}
	}
}

// TestScanJournalInteriorCorruption: a bad record followed by a valid
// one is corruption, not a torn tail.
func TestScanJournalInteriorCorruption(t *testing.T) {
	data := journalOf(t, 1, 2)
	data[2] ^= 0xff
	if _, err := ScanJournal(data, func(string, json.RawMessage) error { return nil }); err == nil {
		t.Fatal("interior corruption went undetected")
	}
}

// TestScanJournalCallbackError: a callback error surfaces with the
// offset of the offending record.
func TestScanJournalCallbackError(t *testing.T) {
	data := journalOf(t, 1, 2)
	first := bytes.IndexByte(data, '\n') + 1
	sentinel := errors.New("stop here")
	calls := 0
	n, err := ScanJournal(data, func(string, json.RawMessage) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if n != first {
		t.Fatalf("offset %d, want the second record's start %d", n, first)
	}
}
