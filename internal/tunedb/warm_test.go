package tunedb

import (
	"testing"

	"autotune/internal/machine"
	"autotune/internal/objective"
	"autotune/internal/skeleton"
)

func testSpace() skeleton.Space {
	return skeleton.Space{Params: []skeleton.Param{
		{Name: "t1", Kind: skeleton.TileSize, Min: 1, Max: 128},
		{Name: "t2", Kind: skeleton.TileSize, Min: 1, Max: 128},
		{Name: "threads", Kind: skeleton.ThreadCount, Min: 1, Max: 16},
	}}
}

// TestWarmCacheSkipsStoredEvaluations is the warm-start acceptance
// property: re-requesting configurations the database already holds
// performs zero new evaluations — E stays 0 and the evaluation function
// never runs.
func TestWarmCacheSkipsStoredEvaluations(t *testing.T) {
	db := mustOpen(t, t.TempDir())
	defer db.Close()
	key := testKey()
	stored := []skeleton.Config{{64, 64, 8}, {32, 32, 16}, {16, 16, 4}}
	for i, cfg := range stored {
		if err := db.PutEval(key, cfg, []float64{float64(i), 8}); err != nil {
			t.Fatal(err)
		}
	}
	// A known failure is stored too, and must also be skipped.
	if err := db.PutEval(key, skeleton.Config{1, 1, 1}, nil); err != nil {
		t.Fatal(err)
	}

	calls := 0
	ce := objective.NewCachingEvaluator([]string{"time", "resources"}, 1,
		func(cfg skeleton.Config) []float64 {
			calls++
			return []float64{1, 1}
		})
	if primed := db.WarmCache(key, ce); primed != 4 {
		t.Fatalf("primed %d entries, want 4", primed)
	}
	// Priming again is a no-op: everything is already cached.
	if primed := db.WarmCache(key, ce); primed != 0 {
		t.Fatalf("re-priming inserted %d entries", primed)
	}

	out := ce.Evaluate(append(stored, skeleton.Config{1, 1, 1}))
	if calls != 0 {
		t.Fatalf("evaluation function ran %d times for cached configs", calls)
	}
	if ce.Evaluations() != 0 {
		t.Fatalf("E = %d after cache-only requests, want 0", ce.Evaluations())
	}
	if out[0][0] != 0 || out[1][0] != 1 {
		t.Fatalf("primed values wrong: %v", out)
	}
	if out[3] != nil {
		t.Fatalf("stored failure not preserved: %v", out[3])
	}

	// A genuinely new configuration still evaluates and counts.
	ce.EvaluateOne(skeleton.Config{128, 128, 2})
	if calls != 1 || ce.Evaluations() != 1 {
		t.Fatalf("fresh config: calls=%d E=%d", calls, ce.Evaluations())
	}
}

// TestWarmCacheExactKeyOnly: evaluations never transfer across
// machines — a different machine signature primes nothing.
func TestWarmCacheExactKeyOnly(t *testing.T) {
	db := mustOpen(t, t.TempDir())
	defer db.Close()
	key := testKey()
	if err := db.PutEval(key, skeleton.Config{64, 64, 8}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	other := key
	other.MachineSig = machine.SignatureOf(machine.Barcelona()).Key()
	ce := objective.NewCachingEvaluator(nil, 1, func(skeleton.Config) []float64 { return nil })
	if primed := db.WarmCache(other, ce); primed != 0 {
		t.Fatalf("cross-machine WarmCache primed %d entries", primed)
	}
}

func TestNearestFront(t *testing.T) {
	db := mustOpen(t, t.TempDir())
	defer db.Close()
	westmere := machine.SignatureOf(machine.Westmere())
	barcelona := machine.SignatureOf(machine.Barcelona())

	key := testKey()
	wRec := testFront(key)
	if err := db.PutFront(wRec); err != nil {
		t.Fatal(err)
	}
	bKey := key
	bKey.MachineSig = barcelona.Key()
	bRec := testFront(bKey)
	bRec.Machine = barcelona
	bRec.Points = bRec.Points[:1]
	if err := db.PutFront(bRec); err != nil {
		t.Fatal(err)
	}
	// A transferable-looking front for a different program must never
	// be considered.
	alien := bKey
	alien.Fingerprint = "pgffffffffffffffff"
	alienRec := testFront(alien)
	if err := db.PutFront(alienRec); err != nil {
		t.Fatal(err)
	}

	// Exact hit: distance 0, the Westmere front.
	rec, dist, ok := db.NearestFront(key, westmere)
	if !ok || dist != 0 || rec.Key != key {
		t.Fatalf("exact lookup: ok=%v dist=%v key=%v", ok, dist, rec.Key)
	}

	// Unknown machine: nearest transferable front wins. A signature
	// equal to Barcelona's but under a fresh key string has distance 0
	// to the Barcelona record and > 0 to Westmere's.
	probe := key
	probe.MachineSig = "s1.c1.t1.clk1.00.bw1.0"
	rec, dist, ok = db.NearestFront(probe, barcelona)
	if !ok || rec.Key != bKey {
		t.Fatalf("transfer lookup picked %v (dist %v)", rec.Key, dist)
	}
	if dist != 0 {
		t.Fatalf("distance to identical signature = %v", dist)
	}

	// No transferable front at all: different space hash.
	far := key
	far.SpaceHash = "spdeadbeefdeadbeef"
	if _, _, ok := db.NearestFront(far, westmere); ok {
		t.Fatal("non-transferable front returned")
	}
}

func TestSeedPopulation(t *testing.T) {
	db := mustOpen(t, t.TempDir())
	defer db.Close()
	key := testKey()
	sig := machine.SignatureOf(machine.Westmere())
	space := testSpace()

	rec := testFront(key)
	rec.Points = []FrontPoint{
		{Config: []int64{64, 64, 8}, Objectives: []float64{0.5, 8}},
		// Out of bounds: must be clamped into the space.
		{Config: []int64{512, 64, 99}, Objectives: []float64{0.4, 9}},
		// Clamps onto the first point: dropped as a duplicate.
		{Config: []int64{64, 64, 8}, Objectives: []float64{0.45, 8}},
		// Wrong dimensionality: dropped.
		{Config: []int64{64, 64}, Objectives: []float64{0.6, 6}},
		{Config: []int64{16, 16, 4}, Objectives: []float64{0.7, 4}},
	}
	if err := db.PutFront(rec); err != nil {
		t.Fatal(err)
	}

	seeds := db.SeedPopulation(key, sig, space, 10)
	if len(seeds) != 3 {
		t.Fatalf("seeds = %v", seeds)
	}
	for _, s := range seeds {
		if !space.In(s) {
			t.Fatalf("seed %v outside space", s)
		}
	}

	// The cap applies.
	if got := db.SeedPopulation(key, sig, space, 1); len(got) != 1 {
		t.Fatalf("capped seeds = %v", got)
	}
	// k <= 0 and absent fronts yield nil.
	if got := db.SeedPopulation(key, sig, space, 0); got != nil {
		t.Fatalf("k=0 seeds = %v", got)
	}
	missing := key
	missing.Fingerprint = "pg0000000000000000"
	if got := db.SeedPopulation(missing, sig, space, 5); got != nil {
		t.Fatalf("missing front seeds = %v", got)
	}
}
