package tunedb

import (
	"strings"
	"testing"

	"autotune/internal/irparse"
	"autotune/internal/kernels"
	"autotune/internal/skeleton"
)

func TestKeyStringAndTransferable(t *testing.T) {
	k := testKey()
	s := k.String()
	if got := strings.Count(s, "|"); got != 3 {
		t.Fatalf("canonical key %q has %d separators", s, got)
	}
	if !strings.HasPrefix(s, k.Fingerprint+"|") {
		t.Fatalf("key string %q does not lead with the fingerprint", s)
	}

	other := k
	other.MachineSig = "elsewhere"
	if !k.Transferable(other) {
		t.Fatal("machine-only difference must stay transferable")
	}
	for _, mutate := range []func(*Key){
		func(o *Key) { o.Fingerprint = "x" },
		func(o *Key) { o.Objectives = "x" },
		func(o *Key) { o.SpaceHash = "x" },
	} {
		o := k
		mutate(&o)
		if k.Transferable(o) {
			t.Fatalf("key %+v transferable to %+v", k, o)
		}
	}
}

func TestObjectiveKey(t *testing.T) {
	if got := ObjectiveKey([]string{"time", "resources"}); got != "time+resources" {
		t.Fatalf("ObjectiveKey = %q", got)
	}
	if got := ObjectiveKey(nil); got != "" {
		t.Fatalf("ObjectiveKey(nil) = %q", got)
	}
}

func TestSpaceHash(t *testing.T) {
	s1 := testSpace()
	if SpaceHash(s1) != SpaceHash(testSpace()) {
		t.Fatal("equal spaces hash differently")
	}
	if !strings.HasPrefix(SpaceHash(s1), "sp") {
		t.Fatalf("SpaceHash = %q", SpaceHash(s1))
	}
	wider := testSpace()
	wider.Params[0].Max = 256
	if SpaceHash(s1) == SpaceHash(wider) {
		t.Fatal("bound change not reflected in space hash")
	}
	renamed := testSpace()
	renamed.Params[0].Name = "tile1"
	if SpaceHash(s1) == SpaceHash(renamed) {
		t.Fatal("name change not reflected in space hash")
	}
	rekind := testSpace()
	rekind.Params[0].Kind = skeleton.UnrollFactor
	if SpaceHash(s1) == SpaceHash(rekind) {
		t.Fatal("kind change not reflected in space hash")
	}
}

func TestProgramFingerprint(t *testing.T) {
	mm, err := kernels.ByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	p1 := mm.IR(512)
	p2 := mm.IR(512)
	if ProgramFingerprint(p1) != ProgramFingerprint(p2) {
		t.Fatal("identical programs fingerprint differently")
	}
	if ProgramFingerprint(p1) == ProgramFingerprint(mm.IR(1024)) {
		t.Fatal("problem size not reflected in fingerprint")
	}
	if ProgramFingerprint(p1) == ProgramFingerprint(p1, "measured") {
		t.Fatal("extra components not mixed into fingerprint")
	}
	if !strings.HasPrefix(ProgramFingerprint(nil), "pg") {
		t.Fatalf("fingerprint = %q", ProgramFingerprint(nil))
	}

	// Kernels with non-identifier names (jacobi-2d) cannot round-trip
	// through the text renderer; the fingerprint must still be derived
	// (falling back to the program name) and stay deterministic.
	jac, err := kernels.ByName("jacobi-2d")
	if err != nil {
		t.Fatal(err)
	}
	jp := jac.IR(256)
	if _, err := irparse.Render(jp); err == nil {
		t.Skip("jacobi-2d now renders; fallback path untestable here")
	}
	if ProgramFingerprint(jp) != ProgramFingerprint(jac.IR(256)) {
		t.Fatal("fallback fingerprint not deterministic")
	}
	if ProgramFingerprint(jp) == ProgramFingerprint(nil) {
		t.Fatal("fallback fingerprint ignores the program")
	}
}
