// Package v1 is the frozen first-generation tunedb engine: one
// append-only JSONL journal replayed into memory at open. It exists
// for two jobs — writing authentic v1 databases in migration tests,
// and serving as the baseline in cmd/benchpr9's old-vs-new comparison.
// The live engine (internal/tunedb on internal/store) migrates these
// databases on open; nothing else should write this format.
package v1

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"autotune/internal/skeleton"
	"autotune/internal/tunedb"
)

// JournalName is the v1 journal file inside a database directory.
const JournalName = "journal.jsonl"

// Record type tags (the v1 journal schema).
const (
	recEval  = "eval"
	recFront = "front"
)

// evalRecord is the v1 journal form of one evaluation.
type evalRecord struct {
	Key        tunedb.Key `json:"key"`
	Config     []int64    `json:"config"`
	Objectives []float64  `json:"objectives"`
}

type evalEntry struct {
	cfg  skeleton.Config
	objs []float64
}

// DB is an open v1 database: the whole journal lives in memory.
type DB struct {
	dir  string
	path string

	mu     sync.Mutex
	f      *os.File
	evals  map[string]map[string]evalEntry
	fronts map[string]tunedb.FrontRecord
	keys   map[string]tunedb.Key
}

// Open opens (creating if necessary) a v1 database in dir, replaying
// the whole journal and truncating a torn tail.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tunedb/v1: %w", err)
	}
	db := &DB{
		dir:    dir,
		path:   filepath.Join(dir, JournalName),
		evals:  map[string]map[string]evalEntry{},
		fronts: map[string]tunedb.FrontRecord{},
		keys:   map[string]tunedb.Key{},
	}
	data, err := os.ReadFile(db.path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("tunedb/v1: %w", err)
	}
	if len(data) > 0 {
		valid, err := tunedb.ScanJournal(data, func(t string, payload json.RawMessage) error {
			return db.apply(t, payload)
		})
		if err != nil {
			return nil, err
		}
		if valid < len(data) {
			// Torn tail: truncate in place, exactly as v1 recovery did.
			if err := os.WriteFile(db.path+".tmp", data[:valid], 0o644); err != nil {
				return nil, fmt.Errorf("tunedb/v1: recovering torn tail: %w", err)
			}
			if err := os.Rename(db.path+".tmp", db.path); err != nil {
				return nil, fmt.Errorf("tunedb/v1: recovering torn tail: %w", err)
			}
		}
	}
	f, err := os.OpenFile(db.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tunedb/v1: %w", err)
	}
	db.f = f
	return db, nil
}

func (db *DB) apply(t string, payload json.RawMessage) error {
	switch t {
	case recEval:
		var r evalRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return err
		}
		db.applyEval(r)
	case recFront:
		var r tunedb.FrontRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return err
		}
		db.applyFront(r)
	default:
		return fmt.Errorf("tunedb/v1: unknown record type %q", t)
	}
	return nil
}

func (db *DB) applyEval(r evalRecord) {
	ks := r.Key.String()
	m := db.evals[ks]
	if m == nil {
		m = map[string]evalEntry{}
		db.evals[ks] = m
	}
	cfg := skeleton.Config(r.Config)
	m[cfg.Key()] = evalEntry{cfg: cfg, objs: r.Objectives}
	db.keys[ks] = r.Key
}

func (db *DB) applyFront(r tunedb.FrontRecord) {
	ks := r.Key.String()
	db.fronts[ks] = r
	db.keys[ks] = r.Key
}

// Close flushes and closes the journal; idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.f == nil {
		return nil
	}
	err := db.f.Sync()
	if cerr := db.f.Close(); err == nil {
		err = cerr
	}
	db.f = nil
	return err
}

func (db *DB) appendRecord(t string, rec interface{}) error {
	if db.f == nil {
		return fmt.Errorf("tunedb/v1: database is closed")
	}
	line, err := tunedb.EncodeRecord(t, rec)
	if err != nil {
		return err
	}
	if _, err := db.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("tunedb/v1: %w", err)
	}
	return nil
}

// PutEval stores one evaluated configuration (deduplicated, as v1 did).
func (db *DB) PutEval(key tunedb.Key, cfg skeleton.Config, objs []float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	ks := key.String()
	if m := db.evals[ks]; m != nil {
		if old, ok := m[cfg.Key()]; ok && equalObjs(old.objs, objs) {
			return nil
		}
	}
	rec := evalRecord{Key: key, Config: cfg, Objectives: objs}
	if err := db.appendRecord(recEval, rec); err != nil {
		return err
	}
	db.applyEval(rec)
	return nil
}

// PutFront stores a front (points canonically sorted, journal fsynced).
func (db *DB) PutFront(rec tunedb.FrontRecord) error {
	sortFrontPoints(rec.Points)
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.appendRecord(recFront, rec); err != nil {
		return err
	}
	db.applyFront(rec)
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("tunedb/v1: %w", err)
	}
	return nil
}

func sortFrontPoints(pts []tunedb.FrontPoint) {
	sort.Slice(pts, func(a, b int) bool {
		oa, ob := pts[a].Objectives, pts[b].Objectives
		for i := 0; i < len(oa) && i < len(ob); i++ {
			if oa[i] != ob[i] {
				return oa[i] < ob[i]
			}
		}
		if len(oa) != len(ob) {
			return len(oa) < len(ob)
		}
		return skeleton.Config(pts[a].Config).Key() < skeleton.Config(pts[b].Config).Key()
	})
}

func equalObjs(a, b []float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Front returns the stored front for an exact key.
func (db *DB) Front(key tunedb.Key) (tunedb.FrontRecord, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.fronts[key.String()]
	return rec, ok
}

// GetEval returns one stored evaluation.
func (db *DB) GetEval(key tunedb.Key, cfg skeleton.Config) ([]float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.evals[key.String()][cfg.Key()]
	return e.objs, ok
}

// EvalCount returns the number of stored evaluations for a key.
func (db *DB) EvalCount(key tunedb.Key) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.evals[key.String()])
}

// Keys lists every key with stored data, sorted by canonical string.
func (db *DB) Keys() []tunedb.Key {
	db.mu.Lock()
	defer db.mu.Unlock()
	strs := make([]string, 0, len(db.keys))
	for ks := range db.keys {
		strs = append(strs, ks)
	}
	sort.Strings(strs)
	out := make([]tunedb.Key, len(strs))
	for i, ks := range strs {
		out[i] = db.keys[ks]
	}
	return out
}

// HeapAlloc-friendly iteration for benchmarks: visit every eval.
func (db *DB) ScanEvals(fn func(ks string, cfg skeleton.Config, objs []float64) bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	var kss []string
	for ks := range db.evals {
		kss = append(kss, ks)
	}
	sort.Strings(kss)
	for _, ks := range kss {
		var cks []string
		for ck := range db.evals[ks] {
			cks = append(cks, ck)
		}
		sort.Strings(cks)
		for _, ck := range cks {
			e := db.evals[ks][ck]
			if !fn(ks, e.cfg, e.objs) {
				return
			}
		}
	}
}
