package v1

import (
	"os"
	"path/filepath"
	"testing"

	"autotune/internal/machine"
	"autotune/internal/skeleton"
	"autotune/internal/tunedb"
)

func testKey(i int) tunedb.Key {
	return tunedb.Key{
		Fingerprint: "pg000000000000000" + string(rune('a'+i)),
		MachineSig:  machine.SignatureOf(machine.Westmere()).Key(),
		Objectives:  "time+resources",
		SpaceHash:   "sp0000000000000001",
	}
}

func testFront(key tunedb.Key) tunedb.FrontRecord {
	return tunedb.FrontRecord{
		Key:            key,
		Machine:        machine.SignatureOf(machine.Westmere()),
		ObjectiveNames: []string{"time", "resources"},
		Points: []tunedb.FrontPoint{
			{Config: []int64{64, 64, 8}, Objectives: []float64{0.5, 8}},
			{Config: []int64{32, 32, 16}, Objectives: []float64{0.3, 16}},
		},
		Evaluations: 10,
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	if err := db.PutEval(key, skeleton.Config{1, 2, 3}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Identical re-put is a no-op; changed result supersedes.
	if err := db.PutEval(key, skeleton.Config{1, 2, 3}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.PutEval(key, skeleton.Config{1, 2, 3}, []float64{9, 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.PutFront(testFront(key)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := db.PutEval(key, skeleton.Config{4, 4, 4}, []float64{1, 1}); err == nil {
		t.Fatal("PutEval on closed database succeeded")
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := db2.EvalCount(key); n != 1 {
		t.Fatalf("EvalCount = %d", n)
	}
	objs, ok := db2.GetEval(key, skeleton.Config{1, 2, 3})
	if !ok || objs[0] != 9 {
		t.Fatalf("GetEval = %v %v", objs, ok)
	}
	if _, ok := db2.Front(key); !ok {
		t.Fatal("front missing")
	}
	keys := db2.Keys()
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v", keys)
	}
	seen := 0
	db2.ScanEvals(func(ks string, cfg skeleton.Config, objs []float64) bool {
		if ks != key.String() {
			t.Fatalf("ScanEvals key %q", ks)
		}
		seen++
		return true
	})
	if seen != 1 {
		t.Fatalf("ScanEvals visited %d", seen)
	}
	// Early stop.
	db2.ScanEvals(func(string, skeleton.Config, []float64) bool { return false })
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	for i := 0; i < 3; i++ {
		if err := db.PutEval(key, skeleton.Config{int64(i), 2, 3}, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, JournalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-way.
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := db2.EvalCount(key); n != 2 {
		t.Fatalf("recovered %d evals, want 2", n)
	}
	// The tail was truncated on disk.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(data)-10 {
		t.Fatalf("torn tail not truncated: %d bytes", len(after))
	}
}
