package tunedb

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"autotune/internal/machine"
	"autotune/internal/skeleton"
)

func testKey() Key {
	return Key{
		Fingerprint: "pg0123456789abcdef",
		MachineSig:  machine.SignatureOf(machine.Westmere()).Key(),
		Objectives:  "time+resources",
		SpaceHash:   "sp0000000000000001",
	}
}

func testFront(key Key) FrontRecord {
	return FrontRecord{
		Key:            key,
		Machine:        machine.SignatureOf(machine.Westmere()),
		ObjectiveNames: []string{"time", "resources"},
		Points: []FrontPoint{
			{Config: []int64{64, 64, 8}, Objectives: []float64{0.5, 8}},
			{Config: []int64{32, 32, 16}, Objectives: []float64{0.3, 16}},
		},
		Evaluations: 100,
		Iterations:  10,
	}
}

func mustOpen(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// totalRecords is the physical record count across memtables and
// segments — the store-engine analogue of "journal size" for no-growth
// assertions.
func totalRecords(t *testing.T, db *DB) int {
	t.Helper()
	stats, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return int(stats.SegmentRecords) + stats.MemtableEntries
}

func TestOpenEmptyAndReopen(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir)
	if got := db.Keys(); len(got) != 0 {
		t.Fatalf("fresh database has keys %v", got)
	}
	if db.Dir() != dir {
		t.Fatalf("Dir() = %q", db.Dir())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpen(t, dir)
	defer db2.Close()
	if got := db2.Keys(); len(got) != 0 {
		t.Fatalf("reopened empty database has keys %v", got)
	}
}

func TestEvalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	db := mustOpen(t, dir)
	if err := db.PutEval(key, skeleton.Config{64, 64, 8}, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	// A known failure: nil objectives.
	if err := db.PutEval(key, skeleton.Config{1, 1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if n := db.EvalCount(key); n != 2 {
		t.Fatalf("EvalCount = %d", n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, dir)
	defer db2.Close()
	if n := db2.EvalCount(key); n != 2 {
		t.Fatalf("EvalCount after reopen = %d", n)
	}
	keys := db2.Keys()
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestGetEvalDistinguishesFailureFromAbsent(t *testing.T) {
	db := mustOpen(t, t.TempDir())
	defer db.Close()
	key := testKey()
	if err := db.PutEval(key, skeleton.Config{64, 64, 8}, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	if err := db.PutEval(key, skeleton.Config{1, 1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	objs, ok := db.GetEval(key, skeleton.Config{64, 64, 8})
	if !ok || len(objs) != 2 || objs[0] != 0.5 {
		t.Fatalf("GetEval = %v %v", objs, ok)
	}
	// Stored known-failure: present, nil objectives.
	objs, ok = db.GetEval(key, skeleton.Config{1, 1, 1})
	if !ok || objs != nil {
		t.Fatalf("known failure GetEval = %v %v", objs, ok)
	}
	if _, ok := db.GetEval(key, skeleton.Config{7, 7, 7}); ok {
		t.Fatal("absent config reported present")
	}
}

func TestPutEvalDeduplicates(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	db := mustOpen(t, dir)
	defer db.Close()
	cfg := skeleton.Config{64, 64, 8}
	if err := db.PutEval(key, cfg, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	before := totalRecords(t, db)
	// Re-storing the identical result must not grow the database.
	if err := db.PutEval(key, cfg, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	if after := totalRecords(t, db); after != before {
		t.Fatalf("duplicate PutEval grew database %d -> %d records", before, after)
	}
	// A changed result is stored and supersedes the old one.
	if err := db.PutEval(key, cfg, []float64{0.4, 8}); err != nil {
		t.Fatal(err)
	}
	if n := db.EvalCount(key); n != 1 {
		t.Fatalf("EvalCount = %d", n)
	}
	if objs, ok := db.GetEval(key, cfg); !ok || objs[0] != 0.4 {
		t.Fatalf("superseded eval not updated: %v %v", objs, ok)
	}
}

func TestFrontSupersedesAndSorts(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	db := mustOpen(t, dir)
	if err := db.PutFront(testFront(key)); err != nil {
		t.Fatal(err)
	}
	newer := testFront(key)
	newer.Points = append(newer.Points,
		FrontPoint{Config: []int64{16, 16, 32}, Objectives: []float64{0.2, 32}},
		// Ties: equal objectives order by config; a shorter objective
		// vector that prefixes a longer one sorts first.
		FrontPoint{Config: []int64{1, 1, 1}, Objectives: []float64{0.3, 16}},
		FrontPoint{Config: []int64{2, 2, 2}, Objectives: []float64{0.3}})
	newer.Evaluations = 200
	if err := db.PutFront(newer); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, dir)
	defer db2.Close()
	rec, ok := db2.Front(key)
	if !ok {
		t.Fatal("front missing after reopen")
	}
	if rec.Evaluations != 200 || len(rec.Points) != 5 {
		t.Fatalf("latest front not retained: %+v", rec)
	}
	// Points stored in canonical order: lexicographic by objectives.
	for i := 1; i < len(rec.Points); i++ {
		if rec.Points[i-1].Objectives[0] > rec.Points[i].Objectives[0] {
			t.Fatalf("points not canonically ordered: %v", rec.Points)
		}
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	db := mustOpen(t, dir)
	cfg := skeleton.Config{64, 64, 8}
	// Many superseding writes leave dead records; flushing between them
	// pushes each generation into its own segment so the duplicates are
	// physical, not memtable overwrites.
	for i := 0; i < 20; i++ {
		if err := db.PutEval(key, cfg, []float64{float64(i), 8}); err != nil {
			t.Fatal(err)
		}
		if err := db.PutFront(testFront(key)); err != nil {
			t.Fatal(err)
		}
		if err := db.st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if before := totalRecords(t, db); before <= 3 {
		t.Fatalf("superseding writes left only %d records; test is vacuous", before)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	stats, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadRecords != 0 {
		t.Fatalf("compact left %d dead records: %+v", stats.DeadRecords, stats)
	}
	// Live set: one eval, one front, one key-registry entry.
	if stats.LiveKeys != 3 {
		t.Fatalf("live keys after compact = %d, want 3", stats.LiveKeys)
	}
	// The database stays usable after compaction.
	if err := db.PutEval(key, skeleton.Config{1, 2, 3}, []float64{9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, dir)
	defer db2.Close()
	if n := db2.EvalCount(key); n != 2 {
		t.Fatalf("EvalCount after compact+reopen = %d", n)
	}
	if rec, ok := db2.Front(key); !ok || len(rec.Points) != 2 {
		t.Fatalf("front lost in compaction: %v %v", rec, ok)
	}
}

func TestMerge(t *testing.T) {
	key := testKey()
	otherKey := testKey()
	otherKey.Fingerprint = "pgfedcba9876543210"

	srcDir := t.TempDir()
	src := mustOpen(t, srcDir)
	if err := src.PutEval(key, skeleton.Config{64, 64, 8}, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	if err := src.PutEval(otherKey, skeleton.Config{32, 32, 4}, []float64{0.7, 4}); err != nil {
		t.Fatal(err)
	}
	if err := src.PutFront(testFront(key)); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	dst := mustOpen(t, t.TempDir())
	defer dst.Close()
	// dst already has one of the evaluations; only the rest transfer.
	if err := dst.PutEval(key, skeleton.Config{64, 64, 8}, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	evals, fronts, err := dst.Merge(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	if evals != 1 || fronts != 1 {
		t.Fatalf("merge adopted %d evals, %d fronts", evals, fronts)
	}
	if n := dst.EvalCount(otherKey); n != 1 {
		t.Fatalf("merged eval missing: EvalCount = %d", n)
	}
	if _, ok := dst.Front(key); !ok {
		t.Fatal("merged front missing")
	}
	// A second merge is a no-op.
	evals, fronts, err = dst.Merge(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	if evals != 0 || fronts != 0 {
		t.Fatalf("re-merge adopted %d evals, %d fronts", evals, fronts)
	}
}

// TestConcurrentWriters exercises the sharded engine under -race: many
// goroutines storing evaluations and fronts for different programs at
// once (distinct fingerprints land on distinct shards).
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir)
	const writers = 8
	const perWriter = 25
	keys := make([]Key, writers)
	for w := range keys {
		keys[w] = testKey()
		keys[w].Fingerprint = fmt.Sprintf("pg%016x", w+1)
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				cfg := skeleton.Config{int64(w), int64(i), 8}
				if err := db.PutEval(keys[w], cfg, []float64{float64(w), float64(i)}); err != nil {
					errs <- err
					return
				}
			}
			if err := db.PutFront(testFront(keys[w])); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		if n := db.EvalCount(keys[w]); n != perWriter {
			t.Fatalf("EvalCount(writer %d) = %d, want %d", w, n, perWriter)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpen(t, dir)
	defer db2.Close()
	for w := 0; w < writers; w++ {
		if n := db2.EvalCount(keys[w]); n != perWriter {
			t.Fatalf("EvalCount(writer %d) after reopen = %d, want %d", w, n, perWriter)
		}
	}
	if got := len(db2.Keys()); got != writers {
		t.Fatalf("Keys = %d, want %d", got, writers)
	}
}

func TestClosedDBRejectsWrites(t *testing.T) {
	db := mustOpen(t, t.TempDir())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.PutEval(testKey(), skeleton.Config{1}, []float64{1}); err == nil {
		t.Error("PutEval on closed database succeeded")
	}
	if err := db.PutFront(testFront(testKey())); err == nil {
		t.Error("PutFront on closed database succeeded")
	}
	if err := db.Compact(); err == nil {
		t.Error("Compact on closed database succeeded")
	}
}

// TestScanKeysOrderProperty: ScanKeys("") must return exactly the
// stored key set sorted by canonical string — the range-scan order
// property surfaced through the tunedb API.
func TestScanKeysOrderProperty(t *testing.T) {
	db := mustOpen(t, t.TempDir())
	defer db.Close()
	var wantStrs []string
	for i := 0; i < 40; i++ {
		k := testKey()
		// Scatter fingerprints so keys cross shards and sort nontrivially.
		k.Fingerprint = fmt.Sprintf("pg%016x", (i*2654435761)%997)
		if err := db.PutEval(k, skeleton.Config{int64(i), 2, 3}, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
		wantStrs = append(wantStrs, k.String())
	}
	sort.Strings(wantStrs)
	got, err := db.ScanKeys("")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantStrs) {
		t.Fatalf("ScanKeys returned %d keys, want %d", len(got), len(wantStrs))
	}
	for i, k := range got {
		if k.String() != wantStrs[i] {
			t.Fatalf("ScanKeys[%d] = %q, want %q", i, k.String(), wantStrs[i])
		}
	}
	// Prefix scan: only the matching fingerprint.
	one := got[7]
	sub, err := db.ScanKeys(one.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sub {
		if k.Fingerprint != one.Fingerprint {
			t.Fatalf("prefix scan leaked key %q", k.String())
		}
	}
	if len(sub) == 0 {
		t.Fatal("prefix scan found nothing")
	}
}

func TestStatsReportsShards(t *testing.T) {
	db := mustOpen(t, t.TempDir())
	defer db.Close()
	key := testKey()
	for i := 0; i < 10; i++ {
		if err := db.PutEval(key, skeleton.Config{int64(i), 2, 3}, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 16 {
		t.Fatalf("shard count = %d, want 16", len(stats.Shards))
	}
	if stats.LiveKeys != 11 { // 10 evals + 1 key registry entry
		t.Fatalf("live keys = %d, want 11", stats.LiveKeys)
	}
	// One program: everything lands in a single shard.
	nonEmpty := 0
	for _, ss := range stats.Shards {
		if ss.LiveKeys > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("one program spread across %d shards", nonEmpty)
	}
}
