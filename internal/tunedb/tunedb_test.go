package tunedb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"autotune/internal/machine"
	"autotune/internal/skeleton"
)

func testKey() Key {
	return Key{
		Fingerprint: "pg0123456789abcdef",
		MachineSig:  machine.SignatureOf(machine.Westmere()).Key(),
		Objectives:  "time+resources",
		SpaceHash:   "sp0000000000000001",
	}
}

func testFront(key Key) FrontRecord {
	return FrontRecord{
		Key:            key,
		Machine:        machine.SignatureOf(machine.Westmere()),
		ObjectiveNames: []string{"time", "resources"},
		Points: []FrontPoint{
			{Config: []int64{64, 64, 8}, Objectives: []float64{0.5, 8}},
			{Config: []int64{32, 32, 16}, Objectives: []float64{0.3, 16}},
		},
		Evaluations: 100,
		Iterations:  10,
	}
}

func mustOpen(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenEmptyAndReopen(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir)
	if got := db.Keys(); len(got) != 0 {
		t.Fatalf("fresh database has keys %v", got)
	}
	if db.Dir() != dir {
		t.Fatalf("Dir() = %q", db.Dir())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpen(t, dir)
	defer db2.Close()
	if got := db2.Keys(); len(got) != 0 {
		t.Fatalf("reopened empty database has keys %v", got)
	}
}

func TestEvalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	db := mustOpen(t, dir)
	if err := db.PutEval(key, skeleton.Config{64, 64, 8}, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	// A known failure: nil objectives.
	if err := db.PutEval(key, skeleton.Config{1, 1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if n := db.EvalCount(key); n != 2 {
		t.Fatalf("EvalCount = %d", n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, dir)
	defer db2.Close()
	if n := db2.EvalCount(key); n != 2 {
		t.Fatalf("EvalCount after reopen = %d", n)
	}
	keys := db2.Keys()
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestPutEvalDeduplicates(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	db := mustOpen(t, dir)
	defer db.Close()
	cfg := skeleton.Config{64, 64, 8}
	if err := db.PutEval(key, cfg, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	// Re-storing the identical result must not grow the journal.
	if err := db.PutEval(key, cfg, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != after.Size() {
		t.Fatalf("duplicate PutEval grew journal %d -> %d", before.Size(), after.Size())
	}
	// A changed result is journaled and supersedes the old one.
	if err := db.PutEval(key, cfg, []float64{0.4, 8}); err != nil {
		t.Fatal(err)
	}
	if n := db.EvalCount(key); n != 1 {
		t.Fatalf("EvalCount = %d", n)
	}
}

func TestFrontSupersedesAndSorts(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	db := mustOpen(t, dir)
	if err := db.PutFront(testFront(key)); err != nil {
		t.Fatal(err)
	}
	newer := testFront(key)
	newer.Points = append(newer.Points, FrontPoint{Config: []int64{16, 16, 32}, Objectives: []float64{0.2, 32}})
	newer.Evaluations = 200
	if err := db.PutFront(newer); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, dir)
	defer db2.Close()
	rec, ok := db2.Front(key)
	if !ok {
		t.Fatal("front missing after reopen")
	}
	if rec.Evaluations != 200 || len(rec.Points) != 3 {
		t.Fatalf("latest front not retained: %+v", rec)
	}
	// Points stored in canonical order: lexicographic by objectives.
	for i := 1; i < len(rec.Points); i++ {
		if rec.Points[i-1].Objectives[0] > rec.Points[i].Objectives[0] {
			t.Fatalf("points not canonically ordered: %v", rec.Points)
		}
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	db := mustOpen(t, dir)
	cfg := skeleton.Config{64, 64, 8}
	// Many superseding writes inflate the journal; compaction shrinks
	// it back to the live set.
	for i := 0; i < 20; i++ {
		if err := db.PutEval(key, cfg, []float64{float64(i), 8}); err != nil {
			t.Fatal(err)
		}
		if err := db.PutFront(testFront(key)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.Stat(filepath.Join(dir, journalName))
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(filepath.Join(dir, journalName))
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink journal: %d -> %d", before.Size(), after.Size())
	}
	// The database stays usable after compaction.
	if err := db.PutEval(key, skeleton.Config{1, 2, 3}, []float64{9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, dir)
	defer db2.Close()
	if n := db2.EvalCount(key); n != 2 {
		t.Fatalf("EvalCount after compact+reopen = %d", n)
	}
	if rec, ok := db2.Front(key); !ok || len(rec.Points) != 2 {
		t.Fatalf("front lost in compaction: %v %v", rec, ok)
	}
}

func TestMerge(t *testing.T) {
	key := testKey()
	otherKey := testKey()
	otherKey.Fingerprint = "pgfedcba9876543210"

	srcDir := t.TempDir()
	src := mustOpen(t, srcDir)
	if err := src.PutEval(key, skeleton.Config{64, 64, 8}, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	if err := src.PutEval(otherKey, skeleton.Config{32, 32, 4}, []float64{0.7, 4}); err != nil {
		t.Fatal(err)
	}
	if err := src.PutFront(testFront(key)); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	dst := mustOpen(t, t.TempDir())
	defer dst.Close()
	// dst already has one of the evaluations; only the rest transfer.
	if err := dst.PutEval(key, skeleton.Config{64, 64, 8}, []float64{0.5, 8}); err != nil {
		t.Fatal(err)
	}
	evals, fronts, err := dst.Merge(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	if evals != 1 || fronts != 1 {
		t.Fatalf("merge adopted %d evals, %d fronts", evals, fronts)
	}
	if n := dst.EvalCount(otherKey); n != 1 {
		t.Fatalf("merged eval missing: EvalCount = %d", n)
	}
	if _, ok := dst.Front(key); !ok {
		t.Fatal("merged front missing")
	}
	// A second merge is a no-op.
	evals, fronts, err = dst.Merge(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	if evals != 0 || fronts != 0 {
		t.Fatalf("re-merge adopted %d evals, %d fronts", evals, fronts)
	}
}

// TestCrashToleranceSweep simulates a crash mid-append at every byte
// offset of the journal's last record: each truncation must open
// without error and recover every complete record before the tear.
func TestCrashToleranceSweep(t *testing.T) {
	// Build a reference journal: one front plus four evaluations.
	refDir := t.TempDir()
	key := testKey()
	db := mustOpen(t, refDir)
	if err := db.PutFront(testFront(key)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		cfg := skeleton.Config{int64(8 << i), 64, 8}
		if err := db.PutEval(key, cfg, []float64{float64(i), 8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(refDir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final record (the last evaluation).
	lastStart := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1

	for cut := lastStart; cut < len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at byte %d/%d: %v", cut, len(data), err)
		}
		// All complete records survive: the front and the first three
		// evaluations.
		if n := rec.EvalCount(key); n != 3 {
			t.Fatalf("cut at byte %d: recovered %d evals, want 3", cut, n)
		}
		if _, ok := rec.Front(key); !ok {
			t.Fatalf("cut at byte %d: front lost", cut)
		}
		// Recovery truncated the torn tail on disk, so writing and
		// reopening work normally.
		if err := rec.PutEval(key, skeleton.Config{1, 2, 3}, []float64{9, 9}); err != nil {
			t.Fatalf("cut at byte %d: append after recovery: %v", cut, err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at byte %d: reopen after recovery: %v", cut, err)
		}
		if n := again.EvalCount(key); n != 4 {
			t.Fatalf("cut at byte %d: post-recovery evals = %d, want 4", cut, n)
		}
		again.Close()
	}
}

// TestMidJournalCorruption distinguishes real corruption from a torn
// tail: a damaged record followed by valid ones must be an error, not a
// silent truncation.
func TestMidJournalCorruption(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	db := mustOpen(t, dir)
	for i := 0; i < 3; i++ {
		if err := db.PutEval(key, skeleton.Config{int64(i + 1), 2, 3}, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the first record.
	corrupt := append([]byte(nil), data...)
	corrupt[bytes.IndexByte(corrupt, '{')+20] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("mid-journal corruption opened without error")
	}
}

// TestConcurrentWriters exercises the journal's write serialization
// under -race: many goroutines storing evaluations and fronts at once.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir)
	key := testKey()
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				cfg := skeleton.Config{int64(w), int64(i), 8}
				if err := db.PutEval(key, cfg, []float64{float64(w), float64(i)}); err != nil {
					errs <- err
					return
				}
			}
			if err := db.PutFront(testFront(key)); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := db.EvalCount(key); n != writers*perWriter {
		t.Fatalf("EvalCount = %d, want %d", n, writers*perWriter)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpen(t, dir)
	defer db2.Close()
	if n := db2.EvalCount(key); n != writers*perWriter {
		t.Fatalf("EvalCount after reopen = %d, want %d", n, writers*perWriter)
	}
}

func TestClosedDBRejectsWrites(t *testing.T) {
	db := mustOpen(t, t.TempDir())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.PutEval(testKey(), skeleton.Config{1}, []float64{1}); err == nil {
		t.Error("PutEval on closed database succeeded")
	}
	if err := db.PutFront(testFront(testKey())); err == nil {
		t.Error("PutFront on closed database succeeded")
	}
	if err := db.Compact(); err == nil {
		t.Error("Compact on closed database succeeded")
	}
}

func TestUnsupportedSchemaVersion(t *testing.T) {
	dir := t.TempDir()
	line := fmt.Sprintf(`{"v":%d,"t":"eval","crc":0,"d":{}}`+"\n", schemaVersion+1)
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	// A single unreadable record with nothing valid after it is treated
	// as a torn tail (recovered), because nothing readable follows; but
	// the record must not be applied.
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Keys(); len(got) != 0 {
		t.Fatalf("future-schema record applied: %v", got)
	}
}
