package tunedb

import (
	"math"

	"autotune/internal/machine"
	"autotune/internal/objective"
	"autotune/internal/skeleton"
)

// WarmCache primes the shared evaluation cache with every stored
// evaluation for the exact key — including known failures — so
// repeated or overlapping searches re-pay nothing for configurations
// the database has already seen: the E metric counts only new
// evaluations. It returns the number of entries primed. Evaluations
// never warm across machines; objective values measured (or modeled)
// on one machine are meaningless on another.
func (db *DB) WarmCache(key Key, ce *objective.CachingEvaluator) int {
	db.mu.Lock()
	entries := make([]evalEntry, 0, len(db.evals[key.String()]))
	for _, e := range db.evals[key.String()] {
		entries = append(entries, e)
	}
	db.mu.Unlock()
	primed := 0
	for _, e := range entries {
		if ce.Prime(e.cfg, e.objs) {
			primed++
		}
	}
	return primed
}

// NearestFront finds the stored front best matching key: an exact
// match if present, otherwise the transferable front (same program,
// objectives and space) whose machine signature is nearest to sig —
// the cross-machine transfer path. The returned distance is 0 for an
// exact match.
func (db *DB) NearestFront(key Key, sig machine.Signature) (FrontRecord, float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if rec, ok := db.fronts[key.String()]; ok {
		return rec, 0, true
	}
	best := FrontRecord{}
	bestDist := math.Inf(1)
	found := false
	for _, rec := range db.fronts {
		if !key.Transferable(rec.Key) {
			continue
		}
		d := sig.Distance(rec.Machine)
		if d < bestDist || (d == bestDist && rec.Key.String() < best.Key.String()) {
			best, bestDist, found = rec, d, true
		}
	}
	return best, bestDist, found
}

// SeedPopulation returns up to k stored Pareto-front configurations to
// inject into an initial search population: the exact key's front when
// present, otherwise the nearest-signature transferable front. Every
// configuration is clamped into the current space; wrong-dimension and
// duplicate configurations are dropped. A nil result means no usable
// stored front exists.
func (db *DB) SeedPopulation(key Key, sig machine.Signature, space skeleton.Space, k int) []skeleton.Config {
	rec, _, ok := db.NearestFront(key, sig)
	if !ok || k <= 0 {
		return nil
	}
	seen := map[string]bool{}
	var out []skeleton.Config
	for _, p := range rec.Points {
		if len(out) == k {
			break
		}
		if len(p.Config) != space.Dim() {
			continue
		}
		cfg := space.Clip(skeleton.Config(p.Config))
		ck := cfg.Key()
		if seen[ck] {
			continue
		}
		seen[ck] = true
		out = append(out, cfg)
	}
	return out
}
