package tunedb

import (
	"encoding/json"
	"math"

	"autotune/internal/machine"
	"autotune/internal/objective"
	"autotune/internal/skeleton"
)

// WarmCache primes the shared evaluation cache with every stored
// evaluation for the exact key — including known failures — so
// repeated or overlapping searches re-pay nothing for configurations
// the database has already seen: the E metric counts only new
// evaluations. It returns the number of entries primed. Evaluations
// never warm across machines; objective values measured (or modeled)
// on one machine are meaningless on another.
func (db *DB) WarmCache(key Key, ce *objective.CachingEvaluator) int {
	primed := 0
	db.ScanEvals(key.String(), func(_ string, cfg skeleton.Config, objs []float64) bool {
		if ce.Prime(cfg, objs) {
			primed++
		}
		return true
	})
	return primed
}

// NearestFront finds the stored front best matching key: an exact
// match if present, otherwise the transferable front (same program,
// objectives and space) whose machine signature is nearest to sig —
// the cross-machine transfer path. Candidate fronts come from a
// single-shard range scan: sharding is by program fingerprint, so
// every machine's front for this program lives in one shard. The
// returned distance is 0 for an exact match.
func (db *DB) NearestFront(key Key, sig machine.Signature) (FrontRecord, float64, bool) {
	if rec, ok := db.Front(key); ok {
		return rec, 0, true
	}
	best := FrontRecord{}
	bestDist := math.Inf(1)
	found := false
	// All transferable fronts share key's program fingerprint — the
	// first component of the canonical string — so a fingerprint-prefix
	// scan covers every candidate.
	it := db.st.Iter(nsFront + key.Fingerprint + "|")
	defer it.Close()
	for it.Next() {
		var rec FrontRecord
		if err := json.Unmarshal(it.Value(), &rec); err != nil {
			continue
		}
		if !key.Transferable(rec.Key) {
			continue
		}
		d := sig.Distance(rec.Machine)
		if d < bestDist || (d == bestDist && rec.Key.String() < best.Key.String()) {
			best, bestDist, found = rec, d, true
		}
	}
	return best, bestDist, found
}

// SeedPopulation returns up to k stored Pareto-front configurations to
// inject into an initial search population: the exact key's front when
// present, otherwise the nearest-signature transferable front. Every
// configuration is clamped into the current space; wrong-dimension and
// duplicate configurations are dropped. A nil result means no usable
// stored front exists.
func (db *DB) SeedPopulation(key Key, sig machine.Signature, space skeleton.Space, k int) []skeleton.Config {
	rec, _, ok := db.NearestFront(key, sig)
	if !ok || k <= 0 {
		return nil
	}
	seen := map[string]bool{}
	var out []skeleton.Config
	for _, p := range rec.Points {
		if len(out) == k {
			break
		}
		if len(p.Config) != space.Dim() {
			continue
		}
		cfg := space.Clip(skeleton.Config(p.Config))
		ck := cfg.Key()
		if seen[ck] {
			continue
		}
		seen[ck] = true
		out = append(out, cfg)
	}
	return out
}
