package tunedb

import (
	"fmt"
	"hash/fnv"
	"strings"

	"autotune/internal/ir"
	"autotune/internal/irparse"
	"autotune/internal/skeleton"
)

// Key identifies one tuning problem in the database: the program (or
// region) being tuned, the machine it was tuned for, the objective set
// and the searched parameter space. Results are reusable verbatim only
// under the exact same key; the transfer path relaxes the machine
// component (nearest signature) while holding the rest fixed.
type Key struct {
	// Fingerprint identifies the program/region (see
	// ProgramFingerprint).
	Fingerprint string `json:"fingerprint"`
	// MachineSig is the canonical machine.Signature key.
	MachineSig string `json:"machine"`
	// Objectives is the "+"-joined ordered objective-name list, e.g.
	// "time+resources".
	Objectives string `json:"objectives"`
	// SpaceHash fingerprints the search space (see SpaceHash).
	SpaceHash string `json:"space"`
}

// String renders the key canonically ("|"-joined components).
func (k Key) String() string {
	return k.Fingerprint + "|" + k.MachineSig + "|" + k.Objectives + "|" + k.SpaceHash
}

// Transferable reports whether o solves the same problem on a
// (possibly) different machine: equal program, objectives and space.
func (k Key) Transferable(o Key) bool {
	return k.Fingerprint == o.Fingerprint &&
		k.Objectives == o.Objectives &&
		k.SpaceHash == o.SpaceHash
}

// ObjectiveKey joins objective names into the canonical Objectives
// component.
func ObjectiveKey(names []string) string { return strings.Join(names, "+") }

// SpaceHash fingerprints a parameter space: every parameter's name,
// kind and inclusive bounds feed the hash, so any change to the
// searched space invalidates stored results.
func SpaceHash(space skeleton.Space) string {
	h := fnv.New64a()
	for _, p := range space.Params {
		fmt.Fprintf(h, "%s/%s/%d/%d;", p.Name, p.Kind, p.Min, p.Max)
	}
	return fmt.Sprintf("sp%016x", h.Sum64())
}

// ProgramFingerprint fingerprints the tuned program: the canonical
// MiniIR text rendering when the program renders (covering loop
// structure, bounds and access patterns — so the same kernel at a
// different problem size gets a different fingerprint), the program
// name otherwise. extra components (kernel name, problem size,
// skeleton name, evaluator mode) are always mixed in.
func ProgramFingerprint(p *ir.Program, extra ...string) string {
	h := fnv.New64a()
	if p != nil {
		if src, err := irparse.Render(p); err == nil {
			h.Write([]byte(src))
		} else {
			h.Write([]byte("name:" + p.Name))
		}
	}
	for _, e := range extra {
		h.Write([]byte("|" + e))
	}
	return fmt.Sprintf("pg%016x", h.Sum64())
}
