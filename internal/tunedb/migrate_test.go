package tunedb_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"autotune/internal/machine"
	"autotune/internal/skeleton"
	"autotune/internal/tunedb"
	v1 "autotune/internal/tunedb/v1"
)

func migKey(i int) tunedb.Key {
	return tunedb.Key{
		Fingerprint: fmt.Sprintf("pg%016x", i+1),
		MachineSig:  machine.SignatureOf(machine.Westmere()).Key(),
		Objectives:  "time+resources",
		SpaceHash:   "sp0000000000000001",
	}
}

func migFront(key tunedb.Key, gen int) tunedb.FrontRecord {
	return tunedb.FrontRecord{
		Key:            key,
		Machine:        machine.SignatureOf(machine.Westmere()),
		ObjectiveNames: []string{"time", "resources"},
		Points: []tunedb.FrontPoint{
			{Config: []int64{64, 64, int64(gen + 1)}, Objectives: []float64{0.5, float64(gen + 8)}},
			{Config: []int64{32, 32, 16}, Objectives: []float64{0.3, 16}},
		},
		Evaluations: 100 + gen,
		Iterations:  10,
	}
}

// buildV1 writes an authentic v1 journal database with nKeys keys,
// evalsPer evaluations each, and a front (superseded once) per key.
func buildV1(t *testing.T, dir string, nKeys, evalsPer int) {
	t.Helper()
	db, err := v1.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < nKeys; k++ {
		key := migKey(k)
		for i := 0; i < evalsPer; i++ {
			cfg := skeleton.Config{int64(i + 1), 64, 8}
			if err := db.PutEval(key, cfg, []float64{float64(i), 8}); err != nil {
				t.Fatal(err)
			}
		}
		// A known failure, and a superseded front generation.
		if err := db.PutEval(key, skeleton.Config{999, 1, 1}, nil); err != nil {
			t.Fatal(err)
		}
		if err := db.PutFront(migFront(key, 0)); err != nil {
			t.Fatal(err)
		}
		if err := db.PutFront(migFront(key, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// frontJSON renders a front deterministically for byte-identity checks.
func frontJSON(t *testing.T, rec tunedb.FrontRecord, ok bool) []byte {
	t.Helper()
	if !ok {
		t.Fatal("front missing")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMigrationPreservesFrontsByteIdentically: Front results must be
// byte-identical (as canonical JSON) before and after migration, and
// every evaluation must carry over, including known failures.
func TestMigrationPreservesFrontsByteIdentically(t *testing.T) {
	dir := t.TempDir()
	const nKeys, evalsPer = 5, 7
	buildV1(t, dir, nKeys, evalsPer)

	// Capture v1-visible state.
	old, err := v1.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantFronts := make([][]byte, nKeys)
	for k := 0; k < nKeys; k++ {
		rec, ok := old.Front(migKey(k))
		wantFronts[k] = frontJSON(t, rec, ok)
	}
	wantKeys := old.Keys()
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	// Open with the live engine: migrates in place.
	db, err := tunedb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := 0; k < nKeys; k++ {
		key := migKey(k)
		rec, ok := db.Front(key)
		got := frontJSON(t, rec, ok)
		if !bytes.Equal(got, wantFronts[k]) {
			t.Fatalf("front %d differs after migration:\n old %s\n new %s", k, wantFronts[k], got)
		}
		if n := db.EvalCount(key); n != evalsPer+1 {
			t.Fatalf("EvalCount(%d) = %d, want %d", k, n, evalsPer+1)
		}
		// The known failure survived as a failure.
		objs, ok := db.GetEval(key, skeleton.Config{999, 1, 1})
		if !ok || objs != nil {
			t.Fatalf("known failure lost in migration: %v %v", objs, ok)
		}
	}
	gotKeys := db.Keys()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("key count %d != %d", len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("key[%d] = %v, want %v", i, gotKeys[i], wantKeys[i])
		}
	}

	// The journal is archived, not deleted; the store is in place.
	if _, err := os.Stat(filepath.Join(dir, "journal.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("journal still present after migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal.jsonl.v1")); err != nil {
		t.Fatalf("archived journal missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "store")); err != nil {
		t.Fatalf("store directory missing: %v", err)
	}
}

// TestMigrationIsOneShot: reopening an already-migrated database must
// not re-run migration or lose post-migration writes.
func TestMigrationIsOneShot(t *testing.T) {
	dir := t.TempDir()
	buildV1(t, dir, 1, 2)
	db, err := tunedb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	newKey := migKey(99)
	if err := db.PutEval(newKey, skeleton.Config{5, 5, 5}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := tunedb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := db2.EvalCount(newKey); n != 1 {
		t.Fatalf("post-migration write lost on reopen: %d", n)
	}
	if n := db2.EvalCount(migKey(0)); n != 3 {
		t.Fatalf("migrated evals = %d, want 3", n)
	}
}

// TestMigrationTornTailSweep truncates the v1 journal at every byte of
// its final record: migration must succeed with the valid prefix, as
// v1 recovery would have.
func TestMigrationTornTailSweep(t *testing.T) {
	ref := t.TempDir()
	buildV1(t, ref, 1, 3)
	data, err := os.ReadFile(filepath.Join(ref, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	key := migKey(0)
	for cut := lastStart; cut < len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := tunedb.Open(dir)
		if err != nil {
			t.Fatalf("cut at %d/%d: %v", cut, len(data), err)
		}
		// The torn record is the second PutFront; the prefix holds all
		// evals (3 + 1 failure) and the first front generation.
		if n := db.EvalCount(key); n != 4 {
			t.Fatalf("cut at %d: EvalCount = %d, want 4", cut, n)
		}
		rec, ok := db.Front(key)
		if !ok || rec.Evaluations != 100 {
			t.Fatalf("cut at %d: front = %+v %v, want generation 0", cut, rec, ok)
		}
		// The migrated database is writable and durable.
		if err := db.PutEval(key, skeleton.Config{7, 7, 7}, []float64{1, 1}); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := tunedb.Open(dir)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if n := again.EvalCount(key); n != 5 {
			t.Fatalf("cut at %d: post-recovery evals = %d, want 5", cut, n)
		}
		again.Close()
	}
}

// TestMigrationInteriorCorruptionErrors: a damaged record followed by
// valid ones must abort migration with an error, leaving the journal
// untouched.
func TestMigrationInteriorCorruptionErrors(t *testing.T) {
	dir := t.TempDir()
	buildV1(t, dir, 1, 3)
	path := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[bytes.IndexByte(corrupt, '{')+20] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tunedb.Open(dir); err == nil {
		t.Fatal("interior corruption migrated without error")
	}
	// The journal was not consumed: still there for forensics.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal removed by failed migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "store")); !os.IsNotExist(err) {
		t.Fatal("failed migration left a store directory in place")
	}
}

// TestMigrationCrashBetweenRenames simulates dying after the store
// rename but before the journal archival (satellite: kill-after-rename
// crash test): both store/ and journal.jsonl exist. Reopening must
// finish the archival without replaying the journal over the store.
func TestMigrationCrashBetweenRenames(t *testing.T) {
	dir := t.TempDir()
	buildV1(t, dir, 2, 3)
	db, err := tunedb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Post-migration write that a re-migration replay would clobber.
	key := migKey(0)
	if err := db.PutEval(key, skeleton.Config{1, 1, 2}, []float64{42, 42}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: resurrect the journal beside the store.
	if err := os.Rename(filepath.Join(dir, "journal.jsonl.v1"), filepath.Join(dir, "journal.jsonl")); err != nil {
		t.Fatal(err)
	}
	db2, err := tunedb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if objs, ok := db2.GetEval(key, skeleton.Config{1, 1, 2}); !ok || objs[0] != 42 {
		t.Fatalf("store state clobbered by resumed migration: %v %v", objs, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal.jsonl")); !os.IsNotExist(err) {
		t.Fatal("resumed migration did not archive the journal")
	}
	if _, err := os.Stat(filepath.Join(dir, "journal.jsonl.v1")); err != nil {
		t.Fatalf("archived journal missing after resume: %v", err)
	}
}

// TestMigrationAbandonedBuildDiscarded: a crash mid-build leaves
// store.migrating; the next open must discard it and migrate fresh.
func TestMigrationAbandonedBuildDiscarded(t *testing.T) {
	dir := t.TempDir()
	buildV1(t, dir, 1, 2)
	// Fake a half-built store.
	stale := filepath.Join(dir, "store.migrating")
	if err := os.MkdirAll(filepath.Join(stale, "shard-00"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "garbage"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := tunedb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if n := db.EvalCount(migKey(0)); n != 3 {
		t.Fatalf("EvalCount = %d, want 3", n)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("abandoned migration build not discarded")
	}
}

// TestMigrationFutureSchemaTornTail: a single future-schema record with
// nothing valid after it is a torn tail (v1 semantics): migration
// yields an empty database rather than an error.
func TestMigrationFutureSchemaTornTail(t *testing.T) {
	dir := t.TempDir()
	line := `{"v":2,"t":"eval","crc":0,"d":{}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := tunedb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Keys(); len(got) != 0 {
		t.Fatalf("future-schema record applied: %v", got)
	}
}
