// Exported journal framing: the CRC-32C envelope machinery of the
// tuning database, reusable by other append-only journals — notably
// the search checkpoints of internal/resilience, which share the
// database's crash-safety contract (torn tails are truncated, interior
// corruption is an error).

package tunedb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// EncodeRecord frames one record for an append-only journal: the
// payload is JSON-marshalled, CRC-32C-protected and wrapped in the
// database's versioned envelope. The returned line has no trailing
// newline; callers append one per record.
func EncodeRecord(t string, rec interface{}) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("tunedb: encoding record: %w", err)
	}
	env := envelope{V: schemaVersion, T: t, CRC: crc32.Checksum(payload, crcTable), D: payload}
	line, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("tunedb: encoding record: %w", err)
	}
	return line, nil
}

// DecodeRecordLine parses and CRC-verifies one journal line (without
// its newline), returning the record type and payload bytes.
func DecodeRecordLine(line []byte) (string, json.RawMessage, error) {
	return decodeRecord(line)
}

// ScanJournal replays a journal image record by record, calling fn for
// each valid record in order. It returns the byte length of the valid
// prefix: a torn tail — an unterminated or CRC-invalid final record,
// the signature of a crash mid-append — stops the scan cleanly, while
// a bad record followed by valid ones is interior corruption appending
// cannot explain and yields an error. Callers truncate their journal
// file to the returned length to recover from a torn tail.
func ScanJournal(data []byte, fn func(t string, payload json.RawMessage) error) (int, error) {
	offset := 0
	for offset < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			return offset, nil
		}
		t, payload, err := decodeRecord(data[offset : offset+nl])
		if err != nil {
			if anyValidRecord(data[offset+nl+1:]) {
				return offset, fmt.Errorf("tunedb: corrupt journal record at byte %d: %w", offset, err)
			}
			return offset, nil
		}
		if err := fn(t, payload); err != nil {
			return offset, err
		}
		offset += nl + 1
	}
	return offset, nil
}
