package objective

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"autotune/internal/skeleton"
)

// TestSetContextAbortsUncached: with a cancelled context, uncached
// configurations are aborted — not evaluated, not cached, not counted,
// not observed — while cached entries still answer.
func TestSetContextAbortsUncached(t *testing.T) {
	var calls atomic.Int64
	c := NewCachingEvaluator([]string{"a", "b"}, 4, countingFn(&calls))
	if out := c.EvaluateOne(skeleton.Config{1}); out == nil {
		t.Fatal("warm-up evaluation failed")
	}

	var observed atomic.Int64
	c.SetObserver(func(skeleton.Config, []float64) { observed.Add(1) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.SetContext(ctx)

	out := c.Evaluate([]skeleton.Config{{1}, {2}, {3}})
	if out[0] == nil {
		t.Fatal("cached entry stopped answering under a cancelled context")
	}
	if out[1] != nil || out[2] != nil {
		t.Fatalf("aborted evaluations returned %v, %v — want nil", out[1], out[2])
	}
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want only the warm-up", calls.Load())
	}
	if c.Evaluations() != 1 || observed.Load() != 0 {
		t.Fatalf("E = %d, observations = %d — aborts must not count", c.Evaluations(), observed.Load())
	}

	// Aborted configurations were not cached as failures: clearing the
	// context evaluates them fresh.
	c.SetContext(context.Background())
	if out := c.EvaluateOne(skeleton.Config{2}); out == nil {
		t.Fatal("previously aborted configuration stayed poisoned")
	}
	if c.Evaluations() != 2 {
		t.Fatalf("E = %d after re-evaluation, want 2", c.Evaluations())
	}
}

// TestAddObserverRemove: multiple observers fire per fresh evaluation
// and a removed observer stops firing without disturbing the rest.
func TestAddObserverRemove(t *testing.T) {
	var calls atomic.Int64
	c := NewCachingEvaluator([]string{"a", "b"}, 1, countingFn(&calls))
	var first, second atomic.Int64
	removeFirst := c.AddObserver(func(skeleton.Config, []float64) { first.Add(1) })
	c.AddObserver(func(skeleton.Config, []float64) { second.Add(1) })

	c.EvaluateOne(skeleton.Config{1})
	if first.Load() != 1 || second.Load() != 1 {
		t.Fatalf("observers fired %d/%d times, want 1/1", first.Load(), second.Load())
	}
	removeFirst()
	removeFirst() // removing twice is harmless
	c.EvaluateOne(skeleton.Config{2})
	if first.Load() != 1 || second.Load() != 2 {
		t.Fatalf("after remove, observers fired %d/%d times, want 1/2", first.Load(), second.Load())
	}
}

// TestWrapEvalFuncLayers: middleware composes around the base function
// in wrap order — the last wrap is outermost — and an error return is
// an abort (uncached, unobserved), not a recorded failure.
func TestWrapEvalFuncLayers(t *testing.T) {
	var calls atomic.Int64
	c := NewCachingEvaluator([]string{"a", "b"}, 1, countingFn(&calls))
	var order []string
	c.WrapEvalFunc(func(next CtxEvalFunc) CtxEvalFunc {
		return func(ctx context.Context, cfg skeleton.Config) ([]float64, error) {
			order = append(order, "inner")
			return next(ctx, cfg)
		}
	})
	c.WrapEvalFunc(func(next CtxEvalFunc) CtxEvalFunc {
		return func(ctx context.Context, cfg skeleton.Config) ([]float64, error) {
			order = append(order, "outer")
			if cfg[0] == 99 {
				return nil, errors.New("vetoed")
			}
			return next(ctx, cfg)
		}
	})

	if out := c.EvaluateOne(skeleton.Config{1}); out == nil {
		t.Fatal("wrapped evaluation failed")
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("middleware ran in order %v, want [outer inner]", order)
	}

	// A middleware error aborts: nothing cached, nothing counted, and a
	// later request re-enters the stack.
	if out := c.EvaluateOne(skeleton.Config{99}); out != nil {
		t.Fatalf("vetoed evaluation returned %v", out)
	}
	if c.Evaluations() != 1 {
		t.Fatalf("E = %d, want 1 (the veto must not count)", c.Evaluations())
	}
	before := len(order)
	c.EvaluateOne(skeleton.Config{99})
	if len(order) == before {
		t.Fatal("vetoed configuration was cached — middleware never re-entered")
	}
}
