package objective

import (
	"testing"

	"autotune/internal/kernels"
	"autotune/internal/machine"
	"autotune/internal/skeleton"
)

func newJoint(t *testing.T) *SimJoint {
	t.Helper()
	mm, _ := kernels.ByName("mm")
	j2, _ := kernels.ByName("jacobi-2d")
	s, err := NewSimJoint(machine.Westmere(), []*kernels.Kernel{mm, j2}, nil, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSimJointValidation(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	if _, err := NewSimJoint(nil, []*kernels.Kernel{mm}, nil, 0); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := NewSimJoint(machine.Westmere(), nil, nil, 0); err == nil {
		t.Error("no regions accepted")
	}
	if _, err := NewSimJoint(machine.Westmere(), []*kernels.Kernel{mm}, []int64{1, 2}, 0); err == nil {
		t.Error("size/region mismatch accepted")
	}
	s, err := NewSimJoint(machine.Westmere(), []*kernels.Kernel{mm}, []int64{512}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if names := s.ObjectiveNames(); len(names) != 2 || names[0] != "time" {
		t.Fatalf("names = %v", names)
	}
}

func TestEvaluateJointCountsExecutionsPerColumn(t *testing.T) {
	s := newJoint(t)
	cfgs := [][]skeleton.Config{
		{{64, 64, 64, 4}, {32, 32, 32, 8}}, // mm region: 2 candidates
		{{128, 128, 4}, {64, 64, 8}},       // jacobi region: 2 candidates
	}
	objs := s.EvaluateJoint(cfgs)
	if len(objs) != 2 || len(objs[0]) != 2 || len(objs[1]) != 2 {
		t.Fatalf("objs shape wrong: %v", objs)
	}
	for r := range objs {
		for i := range objs[r] {
			if objs[r][i] == nil || objs[r][i][0] <= 0 {
				t.Fatalf("region %d candidate %d = %v", r, i, objs[r][i])
			}
		}
	}
	// Two columns = two program executions, despite four region
	// measurements.
	if s.Executions() != 2 {
		t.Fatalf("executions = %d, want 2", s.Executions())
	}
	// Re-evaluating cached configs still costs executions (the program
	// must run for any region needing a measurement).
	s.EvaluateJoint(cfgs)
	if s.Executions() != 4 {
		t.Fatalf("executions = %d, want 4", s.Executions())
	}
}

func TestEvaluateJointInvalidConfigs(t *testing.T) {
	s := newJoint(t)
	objs := s.EvaluateJoint([][]skeleton.Config{
		{{64, 64, 64}},   // missing threads for mm
		{{128, 128, 99}}, // thread count beyond cores for jacobi
	})
	if objs[0][0] != nil {
		t.Error("short mm config accepted")
	}
	if objs[1][0] != nil {
		t.Error("oversubscribed jacobi config accepted")
	}
	// Wrong region count returns nil.
	if out := s.EvaluateJoint([][]skeleton.Config{{{1, 1, 1, 1}}}); out != nil {
		t.Error("region-count mismatch accepted")
	}
}

func TestEvaluateJointDeterministic(t *testing.T) {
	a, b := newJoint(t), newJoint(t)
	cfgs := [][]skeleton.Config{
		{{64, 64, 64, 4}},
		{{128, 128, 4}},
	}
	ra := a.EvaluateJoint(cfgs)
	rb := b.EvaluateJoint(cfgs)
	for r := range ra {
		for i := range ra[r] {
			for j := range ra[r][i] {
				if ra[r][i][j] != rb[r][i][j] {
					t.Fatal("joint evaluation not deterministic")
				}
			}
		}
	}
}

func TestSimParallelismOption(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	s, err := NewSim(SimConfig{Machine: machine.Westmere(), Kernel: mm, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []skeleton.Config
	for i := int64(1); i <= 16; i++ {
		cfgs = append(cfgs, skeleton.Config{8 * i, 8 * i, 8, 4})
	}
	objs := s.Evaluate(cfgs)
	for i, o := range objs {
		if o == nil {
			t.Fatalf("config %d failed", i)
		}
	}
	if s.Evaluations() != 16 {
		t.Fatalf("evaluations = %d", s.Evaluations())
	}
}
