package objective

import (
	"fmt"
	"sync"

	"autotune/internal/kernels"
	"autotune/internal/machine"
	"autotune/internal/perfmodel"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

// SimJoint evaluates several regions (kernels) at once on one
// simulated machine: column i of a joint batch forms one program
// execution instantiating every region's i-th candidate configuration.
// Each execution yields a measurement per region — the multi-region
// evaluation scheme of the paper's §III-A, under which tuning K
// regions costs no more program executions than tuning one.
type SimJoint struct {
	machine *machine.Machine
	kernels []*kernels.Kernel
	ns      []int64
	model   *perfmodel.Model
	reps    int
	noise   float64

	mu    sync.Mutex
	execs int
	cache map[string][]float64 // per-region config cache (model is region-separable)
}

// NewSimJoint builds a joint evaluator for the named regions. ns may
// be nil (kernel defaults) or hold one problem size per region.
func NewSimJoint(m *machine.Machine, regionKernels []*kernels.Kernel, ns []int64, noiseAmp float64) (*SimJoint, error) {
	if m == nil || len(regionKernels) == 0 {
		return nil, fmt.Errorf("objective: machine and regions required")
	}
	if ns == nil {
		ns = make([]int64, len(regionKernels))
	}
	if len(ns) != len(regionKernels) {
		return nil, fmt.Errorf("objective: %d sizes for %d regions", len(ns), len(regionKernels))
	}
	sizes := make([]int64, len(regionKernels))
	for i, k := range regionKernels {
		sizes[i] = ns[i]
		if sizes[i] == 0 {
			sizes[i] = k.DefaultN
		}
	}
	mo := perfmodel.New(m)
	mo.NoiseAmp = noiseAmp
	return &SimJoint{
		machine: m,
		kernels: regionKernels,
		ns:      sizes,
		model:   mo,
		reps:    3,
		noise:   noiseAmp,
		cache:   map[string][]float64{},
	}, nil
}

// ObjectiveNames implements optimizer.JointEvaluator.
func (s *SimJoint) ObjectiveNames() []string { return []string{"time", "resources"} }

// Executions implements optimizer.JointEvaluator.
func (s *SimJoint) Executions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execs
}

// EvaluateJoint implements optimizer.JointEvaluator. Every column is
// one program execution regardless of per-region cache hits — the
// program must run as long as any region needs a fresh measurement,
// and with the batch aligned the runs are shared.
func (s *SimJoint) EvaluateJoint(cfgs [][]skeleton.Config) [][][]float64 {
	if len(cfgs) != len(s.kernels) {
		return nil
	}
	batch := 0
	for _, row := range cfgs {
		if len(row) > batch {
			batch = len(row)
		}
	}
	out := make([][][]float64, len(s.kernels))
	for r := range s.kernels {
		out[r] = make([][]float64, len(cfgs[r]))
		for i, cfg := range cfgs[r] {
			out[r][i] = s.regionObjectives(r, cfg)
		}
	}
	s.mu.Lock()
	s.execs += batch
	s.mu.Unlock()
	return out
}

func (s *SimJoint) regionObjectives(r int, cfg skeleton.Config) []float64 {
	key := fmt.Sprintf("%d|%s", r, cfg.Key())
	s.mu.Lock()
	if v, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	k := s.kernels[r]
	if len(cfg) != k.TileDims+1 {
		return s.store(key, nil)
	}
	tiles := make([]int64, k.TileDims)
	copy(tiles, cfg[:k.TileDims])
	threads := int(cfg[k.TileDims])
	reps := s.reps
	if s.noise == 0 {
		reps = 1
	}
	times := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		t, err := s.model.Time(k.Model, s.ns[r], tiles, threads, rep)
		if err != nil {
			return s.store(key, nil)
		}
		times = append(times, t)
	}
	med := stats.MustMedian(times)
	return s.store(key, []float64{med, perfmodel.Resources(med, threads)})
}

func (s *SimJoint) store(key string, v []float64) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.cache[key]; ok {
		return existing
	}
	s.cache[key] = v
	return v
}
