package objective

import (
	"sync"
	"sync/atomic"
	"testing"

	"autotune/internal/skeleton"
)

// countingFn builds an EvalFunc that counts raw invocations and fails
// configurations whose first component is negative.
func countingFn(calls *atomic.Int64) EvalFunc {
	return func(cfg skeleton.Config) []float64 {
		calls.Add(1)
		if len(cfg) == 0 || cfg[0] < 0 {
			return nil
		}
		return []float64{float64(cfg[0]), float64(cfg[0]) * 2}
	}
}

func TestCachingEvaluatorDedupAcrossBatches(t *testing.T) {
	var calls atomic.Int64
	c := NewCachingEvaluator([]string{"a", "b"}, 4, countingFn(&calls))
	cfg := skeleton.Config{7}
	c.Evaluate([]skeleton.Config{cfg, cfg, cfg})
	c.Evaluate([]skeleton.Config{cfg})
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn called %d times, want 1", got)
	}
	if c.Evaluations() != 1 {
		t.Fatalf("evaluations = %d, want 1", c.Evaluations())
	}
}

func TestCachingEvaluatorFailuresCachedNotCounted(t *testing.T) {
	var calls atomic.Int64
	c := NewCachingEvaluator([]string{"a", "b"}, 2, countingFn(&calls))
	out := c.Evaluate([]skeleton.Config{{-1}, {3}})
	if out[0] != nil || out[1] == nil {
		t.Fatalf("out = %v", out)
	}
	if c.Evaluations() != 1 {
		t.Fatalf("evaluations = %d, want 1 (failure must not count)", c.Evaluations())
	}
	c.Evaluate([]skeleton.Config{{-1}})
	if got := calls.Load(); got != 2 {
		t.Fatalf("fn called %d times, want 2 (failures stay cached)", got)
	}
}

// TestCachingEvaluatorConcurrentBatches drives many concurrent callers
// over an overlapping key set: every distinct key must be evaluated
// exactly once process-wide (the shared-cache guarantee the island
// optimizer depends on), and all callers must observe identical
// results.
func TestCachingEvaluatorConcurrentBatches(t *testing.T) {
	var calls atomic.Int64
	c := NewCachingEvaluator([]string{"a", "b"}, 8, countingFn(&calls))
	const callers = 16
	const keys = 10
	results := make([][][]float64, callers)
	var wg sync.WaitGroup
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]skeleton.Config, keys)
			for i := range batch {
				batch[i] = skeleton.Config{int64(i)}
			}
			results[w] = c.Evaluate(batch)
		}(w)
	}
	wg.Wait()
	if got := calls.Load(); got != keys {
		t.Fatalf("fn called %d times, want %d (one per distinct key)", got, keys)
	}
	if c.Evaluations() != keys {
		t.Fatalf("evaluations = %d, want %d", c.Evaluations(), keys)
	}
	for w := 1; w < callers; w++ {
		for i := range results[w] {
			if results[w][i][0] != results[0][i][0] {
				t.Fatalf("caller %d observed %v at %d, caller 0 observed %v",
					w, results[w][i], i, results[0][i])
			}
		}
	}
}

// TestCachingEvaluatorSerializedAtParallelism1 asserts the global
// concurrency bound spans batches: with parallelism 1, two concurrent
// batches may never overlap inside fn (the Measured guarantee).
func TestCachingEvaluatorSerializedAtParallelism1(t *testing.T) {
	var inside atomic.Int64
	c := NewCachingEvaluator([]string{"a"}, 1, func(cfg skeleton.Config) []float64 {
		if inside.Add(1) > 1 {
			t.Error("two evaluations in flight despite parallelism 1")
		}
		defer inside.Add(-1)
		return []float64{float64(cfg[0])}
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.Evaluate([]skeleton.Config{{int64(w * 2)}, {int64(w*2 + 1)}})
		}(w)
	}
	wg.Wait()
}

// TestCachingEvaluatorPrime covers the warm-start hook: primed entries
// short-circuit evaluation without counting toward E, nil primes record
// known failures, and existing cache entries win over later primes.
func TestCachingEvaluatorPrime(t *testing.T) {
	var calls atomic.Int64
	c := NewCachingEvaluator([]string{"a", "b"}, 2, countingFn(&calls))
	if !c.Prime(skeleton.Config{5}, []float64{50, 100}) {
		t.Fatal("first prime rejected")
	}
	if c.Prime(skeleton.Config{5}, []float64{51, 101}) {
		t.Fatal("re-prime of a cached key accepted")
	}
	if !c.Prime(skeleton.Config{6}, nil) {
		t.Fatal("failure prime rejected")
	}
	out := c.Evaluate([]skeleton.Config{{5}, {6}})
	if calls.Load() != 0 {
		t.Fatalf("fn ran %d times for primed keys", calls.Load())
	}
	if c.Evaluations() != 0 {
		t.Fatalf("E = %d after primed-only requests, want 0", c.Evaluations())
	}
	if out[0][0] != 50 || out[1] != nil {
		t.Fatalf("primed results = %v", out)
	}
	// An already-evaluated key rejects priming too.
	c.EvaluateOne(skeleton.Config{7})
	if c.Prime(skeleton.Config{7}, []float64{0, 0}) {
		t.Fatal("prime overwrote an evaluated entry")
	}
}

// TestCachingEvaluatorObserver: the observer fires exactly once per
// fresh evaluation — not for cache hits, primed entries, or in-flight
// followers — and sees failures as nil objectives.
func TestCachingEvaluatorObserver(t *testing.T) {
	var calls atomic.Int64
	c := NewCachingEvaluator([]string{"a", "b"}, 4, countingFn(&calls))
	var mu sync.Mutex
	seen := map[string][]float64{}
	c.SetObserver(func(cfg skeleton.Config, objs []float64) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := seen[cfg.Key()]; dup {
			t.Errorf("observer fired twice for %v", cfg)
		}
		seen[cfg.Key()] = objs
	})
	c.Prime(skeleton.Config{9}, []float64{1, 2})
	c.Evaluate([]skeleton.Config{{1}, {1}, {-1}, {9}})
	c.Evaluate([]skeleton.Config{{1}})
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("observer saw %d keys, want 2: %v", len(seen), seen)
	}
	if objs := seen[skeleton.Config{1}.Key()]; len(objs) != 2 || objs[0] != 1 {
		t.Fatalf("observed objectives = %v", objs)
	}
	if objs, ok := seen[skeleton.Config{-1}.Key()]; !ok || objs != nil {
		t.Fatalf("failure observation = %v (present %v)", objs, ok)
	}
	// Detaching stops notifications.
	c.SetObserver(nil)
	c.EvaluateOne(skeleton.Config{2})
	if len(seen) != 2 {
		t.Fatal("observer fired after detach")
	}
}

// TestCachingEvaluatorParallelismClamp: non-positive parallelism is
// clamped to 1 rather than producing an unusable evaluator.
func TestCachingEvaluatorParallelismClamp(t *testing.T) {
	c := NewCachingEvaluator([]string{"a"}, 0, func(cfg skeleton.Config) []float64 {
		return []float64{float64(cfg[0])}
	})
	objs := c.Evaluate([]skeleton.Config{{4}})
	if len(objs) != 1 || objs[0][0] != 4 {
		t.Fatalf("clamped evaluator broken: %v", objs)
	}
	if c.Evaluations() != 1 {
		t.Fatalf("E = %d, want 1", c.Evaluations())
	}
}

// TestCachingEvaluatorPrimeObserver pins the two-channel observer
// contract the surrogate trains on: evaluation observers fire exactly
// once per fresh evaluation and never for primed entries; prime
// observers fire exactly once per inserted primed entry (rejected
// duplicates stay silent) and never for fresh evaluations. No result
// is delivered on both channels.
func TestCachingEvaluatorPrimeObserver(t *testing.T) {
	var calls atomic.Int64
	c := NewCachingEvaluator([]string{"a", "b"}, 2, countingFn(&calls))
	var mu sync.Mutex
	evaluated := map[string][]float64{}
	primed := map[string][]float64{}
	c.SetObserver(func(cfg skeleton.Config, objs []float64) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := evaluated[cfg.Key()]; dup {
			t.Errorf("evaluation observer fired twice for %v", cfg)
		}
		evaluated[cfg.Key()] = objs
	})
	remove := c.AddPrimeObserver(func(cfg skeleton.Config, objs []float64) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := primed[cfg.Key()]; dup {
			t.Errorf("prime observer fired twice for %v", cfg)
		}
		primed[cfg.Key()] = objs
	})

	c.Prime(skeleton.Config{3}, []float64{30, 60}) // inserted -> prime observer
	c.Prime(skeleton.Config{3}, []float64{31, 61}) // duplicate -> silent
	c.Prime(skeleton.Config{4}, nil)               // known failure -> prime observer, nil
	c.Evaluate([]skeleton.Config{{1}, {3}, {4}})   // one fresh eval, two cache hits
	c.Prime(skeleton.Config{1}, []float64{0, 0})   // evaluated key -> rejected, silent

	mu.Lock()
	if len(evaluated) != 1 || evaluated[skeleton.Config{1}.Key()] == nil {
		t.Fatalf("evaluation observer saw %v, want exactly the fresh eval of {1}", evaluated)
	}
	if len(primed) != 2 {
		t.Fatalf("prime observer saw %d keys, want 2: %v", len(primed), primed)
	}
	if objs, ok := primed[skeleton.Config{4}.Key()]; !ok || objs != nil {
		t.Fatalf("known-failure prime observation = %v (present %v)", objs, ok)
	}
	for key := range primed {
		if _, both := evaluated[key]; both {
			t.Fatalf("key %s delivered on both observer channels", key)
		}
	}
	mu.Unlock()

	// Removal stops notifications; insertion still succeeds.
	remove()
	if !c.Prime(skeleton.Config{5}, []float64{50, 100}) {
		t.Fatal("prime after observer removal rejected")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(primed) != 2 {
		t.Fatal("prime observer fired after removal")
	}
}

// TestCachingEvaluatorLookup: Lookup peeks at completed results —
// primed or evaluated, including cached failures — without ever
// triggering an evaluation.
func TestCachingEvaluatorLookup(t *testing.T) {
	var calls atomic.Int64
	c := NewCachingEvaluator([]string{"a", "b"}, 2, countingFn(&calls))
	if _, ok := c.Lookup(skeleton.Config{1}); ok {
		t.Fatal("Lookup hit on an empty cache")
	}
	c.Prime(skeleton.Config{1}, []float64{10, 20})
	c.EvaluateOne(skeleton.Config{2})
	c.EvaluateOne(skeleton.Config{-1})
	before := calls.Load()
	if objs, ok := c.Lookup(skeleton.Config{1}); !ok || objs[0] != 10 {
		t.Fatalf("primed Lookup = %v, %v", objs, ok)
	}
	if objs, ok := c.Lookup(skeleton.Config{2}); !ok || objs[0] != 2 {
		t.Fatalf("evaluated Lookup = %v, %v", objs, ok)
	}
	if objs, ok := c.Lookup(skeleton.Config{-1}); !ok || objs != nil {
		t.Fatalf("failure Lookup = %v, %v", objs, ok)
	}
	if calls.Load() != before {
		t.Fatal("Lookup triggered an evaluation")
	}
}
