package objective

import (
	"testing"

	"autotune/internal/kernels"
	"autotune/internal/machine"
	"autotune/internal/skeleton"
)

func newSim(t *testing.T, noise float64) *Sim {
	t.Helper()
	mm, err := kernels.ByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(SimConfig{Machine: machine.Westmere(), Kernel: mm, NoiseAmp: noise})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(SimConfig{}); err == nil {
		t.Fatal("missing machine/kernel should fail")
	}
}

func TestSimEvaluateBasics(t *testing.T) {
	s := newSim(t, 0)
	objs := s.Evaluate([]skeleton.Config{{64, 64, 64, 10}})
	if len(objs) != 1 || len(objs[0]) != 2 {
		t.Fatalf("objs = %v", objs)
	}
	tm, res := objs[0][0], objs[0][1]
	if tm <= 0 || res <= 0 {
		t.Fatalf("objectives = %v", objs[0])
	}
	// resources = threads*time.
	if diff := res - 10*tm; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("resources %v != 10*time %v", res, tm)
	}
	names := s.ObjectiveNames()
	if names[0] != "time" || names[1] != "resources" {
		t.Fatalf("names = %v", names)
	}
}

func TestSimInvalidConfigs(t *testing.T) {
	s := newSim(t, 0)
	objs := s.Evaluate([]skeleton.Config{
		{64, 64, 64},     // missing threads
		{64, 64, 64, 0},  // bad thread count
		{64, 64, 64, 41}, // exceeds cores
		{0, 64, 64, 4},   // bad tile
		{64, 64, 64, 4},  // valid
	})
	for i := 0; i < 4; i++ {
		if objs[i] != nil {
			t.Errorf("config %d should fail, got %v", i, objs[i])
		}
	}
	if objs[4] == nil {
		t.Error("valid config failed")
	}
}

func TestSimCachingCountsOnce(t *testing.T) {
	s := newSim(t, 0)
	cfg := skeleton.Config{32, 32, 32, 4}
	s.Evaluate([]skeleton.Config{cfg, cfg})
	s.Evaluate([]skeleton.Config{cfg})
	if s.Evaluations() != 1 {
		t.Fatalf("evaluations = %d, want 1 (cached)", s.Evaluations())
	}
	// A second distinct config increments.
	s.Evaluate([]skeleton.Config{{16, 16, 16, 2}})
	if s.Evaluations() != 2 {
		t.Fatalf("evaluations = %d, want 2", s.Evaluations())
	}
}

func TestSimDuplicatesInOneBatchModeledOnce(t *testing.T) {
	s := newSim(t, 0)
	cfg := skeleton.Config{32, 32, 32, 4}
	// 16 copies of the same key in one batch: without in-flight
	// deduplication every copy misses the cache and spawns its own
	// evaluation goroutine. The singleflight leader must model the
	// key exactly once while the followers wait for its result.
	batch := make([]skeleton.Config, 16)
	for i := range batch {
		batch[i] = cfg
	}
	out := s.Evaluate(batch)
	for i, objs := range out {
		if objs == nil || objs[0] != out[0][0] {
			t.Fatalf("duplicate %d got %v", i, objs)
		}
	}
	s.mu.Lock()
	modeled := s.modeled
	s.mu.Unlock()
	if modeled != 1 {
		t.Fatalf("modeled %d times, want 1", modeled)
	}
	if s.Evaluations() != 1 {
		t.Fatalf("evaluations = %d, want 1", s.Evaluations())
	}
}

func TestSimFailedEvaluationsDoNotCount(t *testing.T) {
	s := newSim(t, 0)
	out := s.Evaluate([]skeleton.Config{
		{64, 64, 64, 0},  // invalid thread count
		{64, 64, 64, 4},  // valid
		{64, 64, 64, 41}, // exceeds cores
	})
	if out[0] != nil || out[1] == nil || out[2] != nil {
		t.Fatalf("out = %v", out)
	}
	// The E metric counts successful distinct evaluations only.
	if s.Evaluations() != 1 {
		t.Fatalf("evaluations = %d, want 1 (failures must not count)", s.Evaluations())
	}
	// Failed configurations stay cached: retrying does not re-model
	// and still does not count.
	s.Evaluate([]skeleton.Config{{64, 64, 64, 0}})
	if s.Evaluations() != 1 {
		t.Fatalf("evaluations = %d after retry, want 1", s.Evaluations())
	}
}

func TestMeasuredFailedEvaluationsDoNotCount(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	m, err := NewMeasured(mm, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bad := m.Evaluate([]skeleton.Config{{16, 16}}); bad[0] != nil {
		t.Fatal("invalid config should fail")
	}
	if m.Evaluations() != 0 {
		t.Fatalf("evaluations = %d, want 0", m.Evaluations())
	}
}

func TestSimDeterministicAcrossBatches(t *testing.T) {
	a := newSim(t, 0.01)
	b := newSim(t, 0.01)
	cfgs := []skeleton.Config{{64, 64, 64, 10}, {32, 128, 8, 20}}
	ra := a.Evaluate(cfgs)
	rb := b.Evaluate(cfgs)
	for i := range ra {
		for j := range ra[i] {
			if ra[i][j] != rb[i][j] {
				t.Fatalf("evaluators disagree: %v vs %v", ra[i], rb[i])
			}
		}
	}
}

func TestSimNoiseMedianStable(t *testing.T) {
	noisy := newSim(t, 0.02)
	clean := newSim(t, 0)
	cfg := skeleton.Config{64, 64, 64, 10}
	n := noisy.EvaluateOne(cfg)
	c := clean.EvaluateOne(cfg)
	rel := (n[0] - c[0]) / c[0]
	if rel > 0.021 || rel < -0.021 {
		t.Fatalf("median-of-3 noise too large: %v", rel)
	}
}

func TestSimEnergyObjective(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	s, err := NewSim(SimConfig{
		Machine:    machine.Westmere(),
		Kernel:     mm,
		Objectives: []ObjectiveKind{TimeObjective, ResourceObjective, EnergyObjective},
	})
	if err != nil {
		t.Fatal(err)
	}
	objs := s.EvaluateOne(skeleton.Config{64, 64, 64, 10})
	if len(objs) != 3 || objs[2] <= 0 {
		t.Fatalf("objs = %v", objs)
	}
	if s.ObjectiveNames()[2] != "energy" {
		t.Fatalf("names = %v", s.ObjectiveNames())
	}
}

func TestObjectiveKindString(t *testing.T) {
	if TimeObjective.String() != "time" || ResourceObjective.String() != "resources" ||
		EnergyObjective.String() != "energy" {
		t.Error("objective names wrong")
	}
	if ObjectiveKind(9).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestMeasuredEvaluator(t *testing.T) {
	if testing.Short() {
		t.Skip("real kernel execution")
	}
	mm, _ := kernels.ByName("mm")
	m, err := NewMeasured(mm, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	objs := m.Evaluate([]skeleton.Config{{16, 16, 16, 2}, {16, 16, 16, 2}})
	if objs[0] == nil || len(objs[0]) != 2 || objs[0][0] <= 0 {
		t.Fatalf("objs = %v", objs)
	}
	if m.Evaluations() != 1 {
		t.Fatalf("evaluations = %d, want 1 (cached)", m.Evaluations())
	}
	if bad := m.Evaluate([]skeleton.Config{{16, 16}}); bad[0] != nil {
		t.Error("invalid config should fail")
	}
	if m.ObjectiveNames()[0] != "time" {
		t.Error("names wrong")
	}
}

func TestNewMeasuredValidation(t *testing.T) {
	if _, err := NewMeasured(nil, 0, 0); err == nil {
		t.Fatal("nil kernel should fail")
	}
}
