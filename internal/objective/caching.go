package objective

import (
	"sync"

	"autotune/internal/skeleton"
)

// EvalFunc computes the objective vector of a single configuration. A
// nil result marks a failed evaluation (invalid configuration); failed
// results are cached like successes but never counted in E.
type EvalFunc func(cfg skeleton.Config) []float64

// CachingEvaluator wraps a per-configuration evaluation function with
// the framework's shared evaluation infrastructure: a process-wide
// memoization cache keyed by Config.Key, in-flight deduplication
// (singleflight — duplicate requests of a configuration whose
// evaluation is still running wait for the leader instead of
// re-evaluating), bounded parallel batch evaluation, and the E metric
// (distinct successful evaluations).
//
// One CachingEvaluator can safely serve many concurrent Evaluate
// callers — e.g. the worker islands of the parallel optimizer — and
// guarantees each distinct configuration is evaluated exactly once no
// matter how many islands propose it. The concurrency bound is global
// across batches, so an inherently serial evaluation function
// (parallelism 1, like timed kernel execution) stays serialized even
// under concurrent batches.
type CachingEvaluator struct {
	names []string
	fn    EvalFunc
	sem   chan struct{}

	mu       sync.Mutex
	cache    map[string][]float64
	inflight map[string]*inflightEval
	evals    int
	observer func(cfg skeleton.Config, objs []float64)
}

// inflightEval is the rendezvous for duplicate requests of a
// configuration whose evaluation is still running: followers wait on
// done instead of evaluating the same key a second time.
type inflightEval struct {
	done chan struct{}
	objs []float64
}

// NewCachingEvaluator builds a caching evaluator around fn. names are
// the objective labels reported by ObjectiveNames; parallelism bounds
// concurrent fn invocations globally (minimum 1).
func NewCachingEvaluator(names []string, parallelism int, fn EvalFunc) *CachingEvaluator {
	if parallelism < 1 {
		parallelism = 1
	}
	return &CachingEvaluator{
		names:    append([]string(nil), names...),
		fn:       fn,
		sem:      make(chan struct{}, parallelism),
		cache:    map[string][]float64{},
		inflight: map[string]*inflightEval{},
	}
}

// ObjectiveNames implements Evaluator.
func (c *CachingEvaluator) ObjectiveNames() []string {
	return append([]string(nil), c.names...)
}

// Evaluations implements Evaluator: the number of distinct
// configurations successfully evaluated so far (the E metric). Cache
// hits do not count twice and failures do not count at all.
func (c *CachingEvaluator) Evaluations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evals
}

// SharedCache returns the evaluator's shared cache layer. Evaluators
// embedding a CachingEvaluator (Sim, Measured) inherit the method, so
// callers can reach the cache of any such evaluator through the
// SharedCacher interface without knowing the concrete type.
func (c *CachingEvaluator) SharedCache() *CachingEvaluator { return c }

// SharedCacher is implemented by every evaluator built on a
// CachingEvaluator.
type SharedCacher interface {
	SharedCache() *CachingEvaluator
}

// Prime inserts a known result into the memoization cache without
// counting toward E and without invoking the evaluation function: the
// warm-start path of the persistent tuning database. A nil objs
// records a known-failed configuration, so warm searches skip it too.
// Entries already cached or currently in flight are left untouched.
// Primed results are not reported to the observer. It reports whether
// the entry was inserted.
func (c *CachingEvaluator) Prime(cfg skeleton.Config, objs []float64) bool {
	key := cfg.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.cache[key]; ok {
		return false
	}
	if _, ok := c.inflight[key]; ok {
		return false
	}
	c.cache[key] = append([]float64(nil), objs...)
	return true
}

// SetObserver registers fn to be called exactly once per completed
// fresh evaluation (cache hits, in-flight followers and primed entries
// are not reported; failed evaluations are reported with nil
// objectives). The tuning database uses this to journal every result
// as it is produced. fn runs outside the evaluator's lock but must be
// safe for concurrent calls.
func (c *CachingEvaluator) SetObserver(fn func(cfg skeleton.Config, objs []float64)) {
	c.mu.Lock()
	c.observer = fn
	c.mu.Unlock()
}

// EvaluateOne evaluates a single configuration.
func (c *CachingEvaluator) EvaluateOne(cfg skeleton.Config) []float64 {
	return c.Evaluate([]skeleton.Config{cfg})[0]
}

// Evaluate implements Evaluator. Configurations are evaluated
// concurrently up to the parallelism bound and memoized. Duplicate
// keys — within one batch or across concurrent batches — are
// deduplicated in flight: one leader evaluates the configuration,
// followers wait for its result, so each distinct key is evaluated
// exactly once.
func (c *CachingEvaluator) Evaluate(cfgs []skeleton.Config) [][]float64 {
	out := make([][]float64, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		key := cfg.Key()
		c.mu.Lock()
		if cached, ok := c.cache[key]; ok {
			out[i] = cached
			c.mu.Unlock()
			continue
		}
		if fl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			// Follower: wait for the leader's result. Followers hold
			// no semaphore slot, so they cannot starve the leaders
			// they are waiting on.
			wg.Add(1)
			go func(i int, fl *inflightEval) {
				defer wg.Done()
				<-fl.done
				out[i] = fl.objs
			}(i, fl)
			continue
		}
		fl := &inflightEval{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()
		wg.Add(1)
		c.sem <- struct{}{}
		go func(i int, cfg skeleton.Config, key string, fl *inflightEval) {
			defer wg.Done()
			defer func() { <-c.sem }()
			objs := c.fn(cfg)
			c.mu.Lock()
			c.cache[key] = objs
			if objs != nil {
				c.evals++
			}
			observer := c.observer
			delete(c.inflight, key)
			c.mu.Unlock()
			if observer != nil {
				observer(cfg, objs)
			}
			fl.objs = objs
			close(fl.done)
			out[i] = objs
		}(i, cfg, key, fl)
	}
	wg.Wait()
	return out
}
