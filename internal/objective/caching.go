package objective

import (
	"context"
	"sync"

	"autotune/internal/skeleton"
)

// EvalFunc computes the objective vector of a single configuration. A
// nil result marks a failed evaluation (invalid configuration); failed
// results are cached like successes but never counted in E.
type EvalFunc func(cfg skeleton.Config) []float64

// CtxEvalFunc is the context-aware evaluation function the shared
// cache runs internally. A nil objective vector with a nil error marks
// a failed (invalid or timed-out) configuration: it is cached, never
// counted in E, and reported to observers — a recorded failure. A
// non-nil error marks an aborted evaluation (the context was
// cancelled): the result is NOT cached, NOT counted and NOT observed,
// so a resumed search re-evaluates the configuration from scratch.
type CtxEvalFunc func(ctx context.Context, cfg skeleton.Config) ([]float64, error)

// CachingEvaluator wraps a per-configuration evaluation function with
// the framework's shared evaluation infrastructure: a process-wide
// memoization cache keyed by Config.Key, in-flight deduplication
// (singleflight — duplicate requests of a configuration whose
// evaluation is still running wait for the leader instead of
// re-evaluating), bounded parallel batch evaluation, and the E metric
// (distinct successful evaluations).
//
// One CachingEvaluator can safely serve many concurrent Evaluate
// callers — e.g. the worker islands of the parallel optimizer — and
// guarantees each distinct configuration is evaluated exactly once no
// matter how many islands propose it. The concurrency bound is global
// across batches, so an inherently serial evaluation function
// (parallelism 1, like timed kernel execution) stays serialized even
// under concurrent batches.
//
// The evaluator is cancellation-aware: SetContext binds a
// context.Context, and once it is done, pending evaluations are
// abandoned (cache hits still return). Middleware installed with
// WrapEvalFunc — e.g. the watchdog/retry guard of internal/resilience
// — decides per evaluation whether an interruption is a recorded
// failure (cached, observed) or an abort (left unknown).
type CachingEvaluator struct {
	names []string
	sem   chan struct{}

	mu        sync.Mutex
	fn        CtxEvalFunc
	ctx       context.Context
	cache     map[string][]float64
	inflight  map[string]*inflightEval
	evals     int
	nextObs   int
	observers map[int]func(cfg skeleton.Config, objs []float64)
	nextPrime int
	primeObs  map[int]func(cfg skeleton.Config, objs []float64)
}

// inflightEval is the rendezvous for duplicate requests of a
// configuration whose evaluation is still running: followers wait on
// done instead of evaluating the same key a second time.
type inflightEval struct {
	done chan struct{}
	objs []float64
}

// NewCachingEvaluator builds a caching evaluator around fn. names are
// the objective labels reported by ObjectiveNames; parallelism bounds
// concurrent fn invocations globally (minimum 1).
func NewCachingEvaluator(names []string, parallelism int, fn EvalFunc) *CachingEvaluator {
	if parallelism < 1 {
		parallelism = 1
	}
	return &CachingEvaluator{
		names:     append([]string(nil), names...),
		fn:        func(_ context.Context, cfg skeleton.Config) ([]float64, error) { return fn(cfg), nil },
		sem:       make(chan struct{}, parallelism),
		cache:     map[string][]float64{},
		inflight:  map[string]*inflightEval{},
		observers: map[int]func(skeleton.Config, []float64){},
		primeObs:  map[int]func(skeleton.Config, []float64){},
	}
}

// ObjectiveNames implements Evaluator.
func (c *CachingEvaluator) ObjectiveNames() []string {
	return append([]string(nil), c.names...)
}

// Evaluations implements Evaluator: the number of distinct
// configurations successfully evaluated so far (the E metric). Cache
// hits do not count twice and failures do not count at all.
func (c *CachingEvaluator) Evaluations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evals
}

// SharedCache returns the evaluator's shared cache layer. Evaluators
// embedding a CachingEvaluator (Sim, Measured) inherit the method, so
// callers can reach the cache of any such evaluator through the
// SharedCacher interface without knowing the concrete type.
func (c *CachingEvaluator) SharedCache() *CachingEvaluator { return c }

// SharedCacher is implemented by every evaluator built on a
// CachingEvaluator.
type SharedCacher interface {
	SharedCache() *CachingEvaluator
}

// SetContext binds a context to subsequent evaluations: once it is
// done, new evaluations are abandoned (returning nil without caching)
// and in-flight ones are handed the done context so cancellation-aware
// evaluation functions can abort early. A nil ctx restores the default
// (never cancelled).
func (c *CachingEvaluator) SetContext(ctx context.Context) {
	c.mu.Lock()
	c.ctx = ctx
	c.mu.Unlock()
}

// WrapEvalFunc layers middleware around the evaluation function —
// watchdog timeouts, retries, fault injection. Install middleware
// before the search starts; evaluations already in flight keep the
// function they started with.
func (c *CachingEvaluator) WrapEvalFunc(mw func(CtxEvalFunc) CtxEvalFunc) {
	c.mu.Lock()
	c.fn = mw(c.fn)
	c.mu.Unlock()
}

// Prime inserts a known result into the memoization cache without
// counting toward E and without invoking the evaluation function: the
// warm-start path of the persistent tuning database. A nil objs
// records a known-failed configuration, so warm searches skip it too.
// Entries already cached or currently in flight are left untouched.
//
// Primed results are deliberately NOT reported to the evaluation
// observers (SetObserver/AddObserver): those fire exactly once per
// completed fresh evaluation, and a primed entry was produced by an
// earlier run — re-reporting it would double-journal it in the tuning
// database and double-charge checkpoint traces. Consumers that want
// the warm-start data anyway (the surrogate model trains on every
// known result) register through AddPrimeObserver, which fires exactly
// once per *inserted* primed entry. It reports whether the entry was
// inserted.
func (c *CachingEvaluator) Prime(cfg skeleton.Config, objs []float64) bool {
	key := cfg.Key()
	c.mu.Lock()
	if _, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return false
	}
	if _, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		return false
	}
	c.cache[key] = append([]float64(nil), objs...)
	observers := c.primeObserverList()
	c.mu.Unlock()
	for _, observe := range observers {
		observe(cfg, objs)
	}
	return true
}

// Lookup peeks at the memoization cache: it returns the cached
// objective vector (nil for a cached failure) and whether the
// configuration has a completed result — primed or freshly evaluated.
// In-flight evaluations do not count as cached. Lookup never triggers
// an evaluation; the surrogate screen uses it to pass already-known
// configurations through for free.
func (c *CachingEvaluator) Lookup(cfg skeleton.Config) (objs []float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	objs, ok = c.cache[cfg.Key()]
	return objs, ok
}

// AddPrimeObserver registers fn to be called exactly once per primed
// entry actually inserted by Prime (duplicates of cached or in-flight
// keys are not reported; known failures are reported with nil
// objectives) and returns its removal function. Together with
// AddObserver this gives a consumer the complete stream of results the
// cache ever learns: fresh evaluations arrive through the evaluation
// observers, warm-start insertions through the prime observers, and no
// result is ever delivered on both channels. fn runs outside the
// evaluator's lock but must be safe for concurrent calls.
func (c *CachingEvaluator) AddPrimeObserver(fn func(cfg skeleton.Config, objs []float64)) (remove func()) {
	c.mu.Lock()
	if c.primeObs == nil {
		c.primeObs = map[int]func(skeleton.Config, []float64){}
	}
	c.nextPrime++
	id := c.nextPrime
	c.primeObs[id] = fn
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		delete(c.primeObs, id)
		c.mu.Unlock()
	}
}

// primeObserverList snapshots the prime observers in registration
// order. Callers hold c.mu.
func (c *CachingEvaluator) primeObserverList() []func(skeleton.Config, []float64) {
	if len(c.primeObs) == 0 {
		return nil
	}
	out := make([]func(skeleton.Config, []float64), 0, len(c.primeObs))
	for id := 1; id <= c.nextPrime; id++ {
		if fn, ok := c.primeObs[id]; ok {
			out = append(out, fn)
		}
	}
	return out
}

// SetObserver registers fn to be called exactly once per completed
// fresh evaluation (cache hits, in-flight followers, primed entries
// and aborted evaluations are not reported; failed evaluations are
// reported with nil objectives). The tuning database uses this to
// journal every result as it is produced. fn runs outside the
// evaluator's lock but must be safe for concurrent calls. SetObserver
// manages one dedicated slot (nil clears it); additional independent
// observers register through AddObserver.
func (c *CachingEvaluator) SetObserver(fn func(cfg skeleton.Config, objs []float64)) {
	c.mu.Lock()
	if fn == nil {
		delete(c.observers, 0)
	} else {
		c.observers[0] = fn
	}
	c.mu.Unlock()
}

// AddObserver registers an additional observer with the same contract
// as SetObserver and returns its removal function. Checkpointing uses
// this to trace fresh evaluations without displacing the tuning
// database's journaling observer.
func (c *CachingEvaluator) AddObserver(fn func(cfg skeleton.Config, objs []float64)) (remove func()) {
	c.mu.Lock()
	c.nextObs++
	id := c.nextObs
	c.observers[id] = fn
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		delete(c.observers, id)
		c.mu.Unlock()
	}
}

// observerList snapshots the registered observers in registration
// order. Callers hold c.mu.
func (c *CachingEvaluator) observerList() []func(skeleton.Config, []float64) {
	if len(c.observers) == 0 {
		return nil
	}
	out := make([]func(skeleton.Config, []float64), 0, len(c.observers))
	for id := 0; id <= c.nextObs; id++ {
		if fn, ok := c.observers[id]; ok {
			out = append(out, fn)
		}
	}
	return out
}

// EvaluateOne evaluates a single configuration.
func (c *CachingEvaluator) EvaluateOne(cfg skeleton.Config) []float64 {
	return c.Evaluate([]skeleton.Config{cfg})[0]
}

// Evaluate implements Evaluator. Configurations are evaluated
// concurrently up to the parallelism bound and memoized. Duplicate
// keys — within one batch or across concurrent batches — are
// deduplicated in flight: one leader evaluates the configuration,
// followers wait for its result, so each distinct key is evaluated
// exactly once. When the bound context is done, uncached
// configurations come back nil without being evaluated, cached or
// counted.
func (c *CachingEvaluator) Evaluate(cfgs []skeleton.Config) [][]float64 {
	c.mu.Lock()
	fn := c.fn
	ctx := c.ctx
	c.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([][]float64, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		key := cfg.Key()
		c.mu.Lock()
		if cached, ok := c.cache[key]; ok {
			out[i] = cached
			c.mu.Unlock()
			continue
		}
		if fl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			// Follower: wait for the leader's result. Followers hold
			// no semaphore slot, so they cannot starve the leaders
			// they are waiting on.
			wg.Add(1)
			go func(i int, fl *inflightEval) {
				defer wg.Done()
				<-fl.done
				out[i] = fl.objs
			}(i, fl)
			continue
		}
		if ctx.Err() != nil {
			// Cancelled before this configuration became a leader:
			// abandon it uncached so a resumed search evaluates it.
			c.mu.Unlock()
			continue
		}
		fl := &inflightEval{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()
		wg.Add(1)
		select {
		case c.sem <- struct{}{}:
		case <-ctx.Done():
			// Cancelled while queued for an evaluation slot: withdraw
			// the in-flight registration and release any followers.
			c.mu.Lock()
			delete(c.inflight, key)
			c.mu.Unlock()
			close(fl.done)
			wg.Done()
			continue
		}
		go func(i int, cfg skeleton.Config, key string, fl *inflightEval) {
			defer wg.Done()
			defer func() { <-c.sem }()
			objs, err := fn(ctx, cfg)
			c.mu.Lock()
			if err != nil {
				// Aborted: leave the configuration unknown.
				delete(c.inflight, key)
				c.mu.Unlock()
				close(fl.done)
				return
			}
			c.cache[key] = objs
			if objs != nil {
				c.evals++
			}
			observers := c.observerList()
			delete(c.inflight, key)
			c.mu.Unlock()
			for _, observe := range observers {
				observe(cfg, objs)
			}
			fl.objs = objs
			close(fl.done)
			out[i] = objs
		}(i, cfg, key, fl)
	}
	wg.Wait()
	return out
}
