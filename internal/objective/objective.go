// Package objective defines the multi-objective evaluation layer: the
// objective function f: C -> R^m of the paper's §III-B, mapping a
// configuration (tile sizes + thread count) to a vector of minimized
// objective values.
//
// Two evaluator implementations are provided: a simulated evaluator
// backed by the analytical performance model (the reproducible path
// used by the paper-replication experiments) and a measured evaluator
// that runs the real goroutine-parallel kernels and times them.
// Both take medians over repetitions, cache evaluated configurations,
// evaluate batches in parallel (the paper's compiler evaluates
// configurations concurrently), and count evaluations — the E metric
// of Table VI.
package objective

import (
	"fmt"
	"math"
	"sync"
	"time"

	"autotune/internal/kernels"
	"autotune/internal/machine"
	"autotune/internal/perfmodel"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

// Evaluator evaluates configurations against m >= 2 objectives, all
// minimized.
type Evaluator interface {
	// Evaluate returns one objective vector per configuration, in
	// order. A nil vector marks a failed evaluation (invalid
	// configuration).
	Evaluate(cfgs []skeleton.Config) [][]float64
	// ObjectiveNames returns the objective labels, e.g.
	// ["time", "resources"].
	ObjectiveNames() []string
	// Evaluations returns the number of distinct configurations
	// successfully evaluated so far — the E metric of Table VI.
	// Cache hits do not count twice, and failed evaluations
	// (invalid configurations) do not count at all.
	Evaluations() int
}

// GenerationSyncer is implemented by evaluator layers that maintain
// per-generation state — the surrogate screen folds the evaluations
// observed during a generation into its model here. The search engines
// call SyncGeneration at deterministic generation barriers (after the
// initial populations and after every completed generation or racing
// round), never concurrently with Evaluate, so the layer can mutate
// shared state in a canonical order regardless of GOMAXPROCS.
type GenerationSyncer interface {
	SyncGeneration()
}

// ObjectiveKind selects an objective for the simulated evaluator.
type ObjectiveKind int

const (
	// TimeObjective is the predicted execution time in seconds.
	TimeObjective ObjectiveKind = iota
	// ResourceObjective is threads × time — the minimized counterpart
	// of parallel efficiency (paper Fig. 8's "resource usage").
	ResourceObjective
	// EnergyObjective is the modeled energy in joules (extension).
	EnergyObjective
)

// String returns the objective label.
func (o ObjectiveKind) String() string {
	switch o {
	case TimeObjective:
		return "time"
	case ResourceObjective:
		return "resources"
	case EnergyObjective:
		return "energy"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(o))
	}
}

// SimConfig configures a simulated evaluator.
type SimConfig struct {
	Machine *machine.Machine
	Kernel  *kernels.Kernel
	// N is the problem size; 0 uses the kernel's DefaultN.
	N int64
	// Reps is the number of repeated "measurements" whose median is
	// reported; 0 means 3. With zero noise a single evaluation is
	// performed regardless.
	Reps int
	// NoiseAmp is the relative measurement-noise amplitude (e.g.
	// 0.01); 0 disables noise.
	NoiseAmp float64
	// Objectives defaults to [TimeObjective, ResourceObjective].
	Objectives []ObjectiveKind
	// Parallelism bounds concurrent evaluations; 0 means 8.
	Parallelism int
	// UnrollDim extends the configuration layout with a trailing
	// innermost-loop unroll factor: [tiles..., threads, unroll].
	UnrollDim bool
}

// Sim is the simulated evaluator: the analytical performance model
// wrapped in the shared CachingEvaluator (memoization + singleflight
// dedup + bounded parallel batches).
type Sim struct {
	*CachingEvaluator
	cfg   SimConfig
	model *perfmodel.Model

	mu sync.Mutex
	// modeled counts raw model evaluations (including failed ones);
	// it differs from evals exactly when dedup or failure accounting
	// kicks in, which is what the tests observe.
	modeled int
}

// NewSim builds a simulated evaluator. The configuration layout is
// [tile_1 ... tile_d, threads].
func NewSim(cfg SimConfig) (*Sim, error) {
	if cfg.Machine == nil || cfg.Kernel == nil {
		return nil, fmt.Errorf("objective: machine and kernel required")
	}
	if cfg.N == 0 {
		cfg.N = cfg.Kernel.DefaultN
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	if len(cfg.Objectives) == 0 {
		cfg.Objectives = []ObjectiveKind{TimeObjective, ResourceObjective}
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 8
	}
	mo := perfmodel.New(cfg.Machine)
	mo.NoiseAmp = cfg.NoiseAmp
	names := make([]string, len(cfg.Objectives))
	for i, o := range cfg.Objectives {
		names[i] = o.String()
	}
	s := &Sim{cfg: cfg, model: mo}
	s.CachingEvaluator = NewCachingEvaluator(names, cfg.Parallelism, s.evaluate)
	return s, nil
}

func (s *Sim) evaluate(cfg skeleton.Config) []float64 {
	s.mu.Lock()
	s.modeled++
	s.mu.Unlock()
	d := s.cfg.Kernel.TileDims
	want := d + 1
	if s.cfg.UnrollDim {
		want++
	}
	if len(cfg) != want {
		return nil
	}
	tiles := make([]int64, d)
	copy(tiles, cfg[:d])
	threads := int(cfg[d])
	unroll := int64(1)
	if s.cfg.UnrollDim {
		unroll = cfg[d+1]
	}
	reps := s.cfg.Reps
	if s.cfg.NoiseAmp == 0 {
		reps = 1
	}
	times := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		t, err := s.model.TimeUnrolled(s.cfg.Kernel.Model, s.cfg.N, tiles, threads, unroll, r)
		if err != nil {
			return nil
		}
		times = append(times, t)
	}
	med := stats.MustMedian(times)
	objs := make([]float64, len(s.cfg.Objectives))
	for i, o := range s.cfg.Objectives {
		switch o {
		case TimeObjective:
			objs[i] = med
		case ResourceObjective:
			objs[i] = perfmodel.Resources(med, threads)
		case EnergyObjective:
			objs[i] = s.model.Energy(med, threads)
		default:
			objs[i] = math.NaN()
		}
	}
	return objs
}

// Measured evaluates configurations by executing the kernel's real Go
// implementation and timing it. It shares the CachingEvaluator
// infrastructure with Sim at parallelism 1: concurrent timed runs
// would perturb each other, and the global semaphore keeps them
// serialized even when several optimizer islands evaluate batches
// concurrently — while cache hits and in-flight dedup still let every
// island benefit from every other island's measurements.
type Measured struct {
	*CachingEvaluator
	kernel *kernels.Kernel
	n      int64
	reps   int
}

// NewMeasured builds a measured evaluator. n == 0 uses the kernel's
// BenchN (a size small enough for interactive tuning). Objectives are
// fixed to [time, resources].
func NewMeasured(k *kernels.Kernel, n int64, reps int) (*Measured, error) {
	if k == nil {
		return nil, fmt.Errorf("objective: kernel required")
	}
	if n == 0 {
		n = k.BenchN
	}
	if reps <= 0 {
		reps = 3
	}
	m := &Measured{kernel: k, n: n, reps: reps}
	m.CachingEvaluator = NewCachingEvaluator([]string{"time", "resources"}, 1, m.evaluate)
	return m, nil
}

func (m *Measured) evaluate(cfg skeleton.Config) []float64 {
	d := m.kernel.TileDims
	if len(cfg) != d+1 {
		return nil
	}
	tiles := make([]int64, d)
	copy(tiles, cfg[:d])
	threads := int(cfg[d])
	times := make([]float64, 0, m.reps)
	for r := 0; r < m.reps; r++ {
		start := time.Now()
		if _, err := m.kernel.Run(m.n, tiles, threads); err != nil {
			return nil
		}
		times = append(times, time.Since(start).Seconds())
	}
	med := stats.MustMedian(times)
	return []float64{med, perfmodel.Resources(med, threads)}
}
