// Package objective defines the multi-objective evaluation layer: the
// objective function f: C -> R^m of the paper's §III-B, mapping a
// configuration (tile sizes + thread count) to a vector of minimized
// objective values.
//
// Two evaluator implementations are provided: a simulated evaluator
// backed by the analytical performance model (the reproducible path
// used by the paper-replication experiments) and a measured evaluator
// that runs the real goroutine-parallel kernels and times them.
// Both take medians over repetitions, cache evaluated configurations,
// evaluate batches in parallel (the paper's compiler evaluates
// configurations concurrently), and count evaluations — the E metric
// of Table VI.
package objective

import (
	"fmt"
	"math"
	"sync"
	"time"

	"autotune/internal/kernels"
	"autotune/internal/machine"
	"autotune/internal/perfmodel"
	"autotune/internal/skeleton"
	"autotune/internal/stats"
)

// Evaluator evaluates configurations against m >= 2 objectives, all
// minimized.
type Evaluator interface {
	// Evaluate returns one objective vector per configuration, in
	// order. A nil vector marks a failed evaluation (invalid
	// configuration).
	Evaluate(cfgs []skeleton.Config) [][]float64
	// ObjectiveNames returns the objective labels, e.g.
	// ["time", "resources"].
	ObjectiveNames() []string
	// Evaluations returns the number of distinct configurations
	// successfully evaluated so far — the E metric of Table VI.
	// Cache hits do not count twice, and failed evaluations
	// (invalid configurations) do not count at all.
	Evaluations() int
}

// ObjectiveKind selects an objective for the simulated evaluator.
type ObjectiveKind int

const (
	// TimeObjective is the predicted execution time in seconds.
	TimeObjective ObjectiveKind = iota
	// ResourceObjective is threads × time — the minimized counterpart
	// of parallel efficiency (paper Fig. 8's "resource usage").
	ResourceObjective
	// EnergyObjective is the modeled energy in joules (extension).
	EnergyObjective
)

// String returns the objective label.
func (o ObjectiveKind) String() string {
	switch o {
	case TimeObjective:
		return "time"
	case ResourceObjective:
		return "resources"
	case EnergyObjective:
		return "energy"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(o))
	}
}

// SimConfig configures a simulated evaluator.
type SimConfig struct {
	Machine *machine.Machine
	Kernel  *kernels.Kernel
	// N is the problem size; 0 uses the kernel's DefaultN.
	N int64
	// Reps is the number of repeated "measurements" whose median is
	// reported; 0 means 3. With zero noise a single evaluation is
	// performed regardless.
	Reps int
	// NoiseAmp is the relative measurement-noise amplitude (e.g.
	// 0.01); 0 disables noise.
	NoiseAmp float64
	// Objectives defaults to [TimeObjective, ResourceObjective].
	Objectives []ObjectiveKind
	// Parallelism bounds concurrent evaluations; 0 means 8.
	Parallelism int
	// UnrollDim extends the configuration layout with a trailing
	// innermost-loop unroll factor: [tiles..., threads, unroll].
	UnrollDim bool
}

// Sim is the simulated evaluator.
type Sim struct {
	cfg   SimConfig
	model *perfmodel.Model

	mu       sync.Mutex
	cache    map[string][]float64
	inflight map[string]*inflightEval
	evals    int
	// modeled counts raw model evaluations (including failed ones);
	// it differs from evals exactly when dedup or failure accounting
	// kicks in, which is what the tests observe.
	modeled int
}

// inflightEval is the rendezvous for duplicate requests of a
// configuration whose evaluation is still running: followers wait on
// done instead of modeling the same key a second time.
type inflightEval struct {
	done chan struct{}
	objs []float64
}

// NewSim builds a simulated evaluator. The configuration layout is
// [tile_1 ... tile_d, threads].
func NewSim(cfg SimConfig) (*Sim, error) {
	if cfg.Machine == nil || cfg.Kernel == nil {
		return nil, fmt.Errorf("objective: machine and kernel required")
	}
	if cfg.N == 0 {
		cfg.N = cfg.Kernel.DefaultN
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	if len(cfg.Objectives) == 0 {
		cfg.Objectives = []ObjectiveKind{TimeObjective, ResourceObjective}
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 8
	}
	mo := perfmodel.New(cfg.Machine)
	mo.NoiseAmp = cfg.NoiseAmp
	return &Sim{cfg: cfg, model: mo, cache: map[string][]float64{}, inflight: map[string]*inflightEval{}}, nil
}

// ObjectiveNames implements Evaluator.
func (s *Sim) ObjectiveNames() []string {
	names := make([]string, len(s.cfg.Objectives))
	for i, o := range s.cfg.Objectives {
		names[i] = o.String()
	}
	return names
}

// Evaluations implements Evaluator.
func (s *Sim) Evaluations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evals
}

// EvaluateOne evaluates a single configuration.
func (s *Sim) EvaluateOne(cfg skeleton.Config) []float64 {
	return s.Evaluate([]skeleton.Config{cfg})[0]
}

// Evaluate implements Evaluator. Configurations are evaluated
// concurrently, mimicking the paper's parallel evaluation of
// independent configurations, and memoized. Duplicate keys — within
// one batch or across concurrent batches — are deduplicated in flight
// (singleflight): one leader models the configuration, followers wait
// for its result, so each distinct key is modeled exactly once.
func (s *Sim) Evaluate(cfgs []skeleton.Config) [][]float64 {
	out := make([][]float64, len(cfgs))
	sem := make(chan struct{}, s.cfg.Parallelism)
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		key := cfg.Key()
		s.mu.Lock()
		if cached, ok := s.cache[key]; ok {
			out[i] = cached
			s.mu.Unlock()
			continue
		}
		if fl, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			// Follower: wait for the leader's result. Followers hold
			// no semaphore slot, so they cannot starve the leaders
			// they are waiting on.
			wg.Add(1)
			go func(i int, fl *inflightEval) {
				defer wg.Done()
				<-fl.done
				out[i] = fl.objs
			}(i, fl)
			continue
		}
		fl := &inflightEval{done: make(chan struct{})}
		s.inflight[key] = fl
		s.mu.Unlock()
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, cfg skeleton.Config, key string, fl *inflightEval) {
			defer wg.Done()
			defer func() { <-sem }()
			objs := s.evaluate(cfg)
			s.mu.Lock()
			s.cache[key] = objs
			if objs != nil {
				s.evals++
			}
			delete(s.inflight, key)
			s.mu.Unlock()
			fl.objs = objs
			close(fl.done)
			out[i] = objs
		}(i, cfg, key, fl)
	}
	wg.Wait()
	return out
}

func (s *Sim) evaluate(cfg skeleton.Config) []float64 {
	s.mu.Lock()
	s.modeled++
	s.mu.Unlock()
	d := s.cfg.Kernel.TileDims
	want := d + 1
	if s.cfg.UnrollDim {
		want++
	}
	if len(cfg) != want {
		return nil
	}
	tiles := make([]int64, d)
	copy(tiles, cfg[:d])
	threads := int(cfg[d])
	unroll := int64(1)
	if s.cfg.UnrollDim {
		unroll = cfg[d+1]
	}
	reps := s.cfg.Reps
	if s.cfg.NoiseAmp == 0 {
		reps = 1
	}
	times := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		t, err := s.model.TimeUnrolled(s.cfg.Kernel.Model, s.cfg.N, tiles, threads, unroll, r)
		if err != nil {
			return nil
		}
		times = append(times, t)
	}
	med := stats.MustMedian(times)
	objs := make([]float64, len(s.cfg.Objectives))
	for i, o := range s.cfg.Objectives {
		switch o {
		case TimeObjective:
			objs[i] = med
		case ResourceObjective:
			objs[i] = perfmodel.Resources(med, threads)
		case EnergyObjective:
			objs[i] = s.model.Energy(med, threads)
		default:
			objs[i] = math.NaN()
		}
	}
	return objs
}

// Measured evaluates configurations by executing the kernel's real Go
// implementation and timing it.
type Measured struct {
	kernel *kernels.Kernel
	n      int64
	reps   int

	mu    sync.Mutex
	cache map[string][]float64
	evals int
}

// NewMeasured builds a measured evaluator. n == 0 uses the kernel's
// BenchN (a size small enough for interactive tuning). Objectives are
// fixed to [time, resources].
func NewMeasured(k *kernels.Kernel, n int64, reps int) (*Measured, error) {
	if k == nil {
		return nil, fmt.Errorf("objective: kernel required")
	}
	if n == 0 {
		n = k.BenchN
	}
	if reps <= 0 {
		reps = 3
	}
	return &Measured{kernel: k, n: n, reps: reps, cache: map[string][]float64{}}, nil
}

// ObjectiveNames implements Evaluator.
func (m *Measured) ObjectiveNames() []string { return []string{"time", "resources"} }

// Evaluations implements Evaluator.
func (m *Measured) Evaluations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evals
}

// Evaluate implements Evaluator. Measured evaluations run one at a
// time: concurrent timed runs would perturb each other.
func (m *Measured) Evaluate(cfgs []skeleton.Config) [][]float64 {
	out := make([][]float64, len(cfgs))
	for i, cfg := range cfgs {
		key := cfg.Key()
		m.mu.Lock()
		cached, ok := m.cache[key]
		m.mu.Unlock()
		if ok {
			out[i] = cached
			continue
		}
		objs := m.evaluate(cfg)
		m.mu.Lock()
		m.cache[key] = objs
		if objs != nil {
			m.evals++
		}
		m.mu.Unlock()
		out[i] = objs
	}
	return out
}

func (m *Measured) evaluate(cfg skeleton.Config) []float64 {
	d := m.kernel.TileDims
	if len(cfg) != d+1 {
		return nil
	}
	tiles := make([]int64, d)
	copy(tiles, cfg[:d])
	threads := int(cfg[d])
	times := make([]float64, 0, m.reps)
	for r := 0; r < m.reps; r++ {
		start := time.Now()
		if _, err := m.kernel.Run(m.n, tiles, threads); err != nil {
			return nil
		}
		times = append(times, time.Since(start).Seconds())
	}
	med := stats.MustMedian(times)
	return []float64{med, perfmodel.Resources(med, threads)}
}
