package polyhedral

import (
	"testing"

	"autotune/internal/ir"
)

// mmNest builds the Fig. 7 IJK matrix multiply nest and returns its
// loops and statements.
func mmNest(n int64) ([]*ir.Loop, []*ir.Stmt) {
	stmt := &ir.Stmt{
		Label:  "mm",
		Writes: []ir.Access{{Array: "C", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}},
		Reads: []ir.Access{
			{Array: "C", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}},
			{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("k")}},
			{Array: "B", Indices: []ir.Affine{ir.Var("k"), ir.Var("j")}},
		},
		Flops: 2,
	}
	kl := &ir.Loop{Var: "k", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{stmt}}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{kl}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(n), Step: 1, Body: []ir.Node{jl}}
	return []*ir.Loop{il, jl, kl}, []*ir.Stmt{stmt}
}

func TestMMDependences(t *testing.T) {
	loops, stmts := mmNest(64)
	deps := Analyze(loops, stmts)
	if len(deps) == 0 {
		t.Fatal("expected dependences on C")
	}
	for _, d := range deps {
		if d.Array != "C" {
			t.Errorf("unexpected dependence on read-only array: %v", d)
		}
		if d.Directions[0] != DirZero || d.Directions[1] != DirZero {
			t.Errorf("i/j should not carry deps: %v", d)
		}
		if d.Directions[2] != DirNonNeg {
			t.Errorf("k direction = %v, want <= (reduction)", d.Directions[2])
		}
	}
}

func TestMMLegality(t *testing.T) {
	loops, stmts := mmNest(64)
	deps := Analyze(loops, stmts)
	if !FullyPermutable(deps, 0, 2) {
		t.Error("mm nest should be fully permutable (3D tiling legal)")
	}
	if MaxTilableBand(deps, 3) != 3 {
		t.Errorf("MaxTilableBand = %d, want 3", MaxTilableBand(deps, 3))
	}
	if !ParallelLoop(deps, 0) {
		t.Error("i loop should be parallel")
	}
	if !ParallelLoop(deps, 1) {
		t.Error("j loop should be parallel")
	}
	if ParallelLoop(deps, 2) {
		t.Error("k loop carries the reduction and must not be parallel")
	}
	if !CollapsibleLoops(loops, deps, 0) {
		t.Error("i and j should be collapsible")
	}
	if CollapsibleLoops(loops, deps, 1) {
		t.Error("j and k must not be collapsible (k carries reduction)")
	}
}

// jacobiNest builds a two-array Jacobi sweep: B[i][j] = f(A[i±1][j±1]).
func jacobiNest(n int64) ([]*ir.Loop, []*ir.Stmt) {
	rd := func(di, dj int64) ir.Access {
		return ir.Access{Array: "A", Indices: []ir.Affine{
			ir.Var("i").AddConst(di), ir.Var("j").AddConst(dj),
		}}
	}
	stmt := &ir.Stmt{
		Label:  "jacobi",
		Writes: []ir.Access{{Array: "B", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}},
		Reads:  []ir.Access{rd(0, 0), rd(-1, 0), rd(1, 0), rd(0, -1), rd(0, 1)},
		Flops:  5,
	}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(1), Hi: ir.Con(n - 1), Step: 1, Body: []ir.Node{stmt}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(1), Hi: ir.Con(n - 1), Step: 1, Body: []ir.Node{jl}}
	return []*ir.Loop{il, jl}, []*ir.Stmt{stmt}
}

func TestJacobiTwoArrayFullyParallel(t *testing.T) {
	loops, stmts := jacobiNest(64)
	deps := Analyze(loops, stmts)
	if !ParallelLoop(deps, 0) || !ParallelLoop(deps, 1) {
		t.Errorf("two-array jacobi should be fully parallel; deps = %v", deps)
	}
	if !FullyPermutable(deps, 0, 1) {
		t.Error("jacobi nest should be tilable")
	}
	if !CollapsibleLoops(loops, deps, 0) {
		t.Error("jacobi loops should be collapsible")
	}
}

// seidelNest builds an in-place stencil A[i][j] = f(A[i-1][j], A[i][j-1])
// whose flow dependences have distance (1,0) and (0,1).
func seidelNest(n int64) ([]*ir.Loop, []*ir.Stmt) {
	stmt := &ir.Stmt{
		Label:  "seidel",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}},
		Reads: []ir.Access{
			{Array: "A", Indices: []ir.Affine{ir.Var("i").AddConst(-1), ir.Var("j")}},
			{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("j").AddConst(-1)}},
		},
		Flops: 2,
	}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(1), Hi: ir.Con(n), Step: 1, Body: []ir.Node{stmt}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(1), Hi: ir.Con(n), Step: 1, Body: []ir.Node{jl}}
	return []*ir.Loop{il, jl}, []*ir.Stmt{stmt}
}

func TestSeidelCarriedDependences(t *testing.T) {
	loops, stmts := seidelNest(64)
	deps := Analyze(loops, stmts)
	if ParallelLoop(deps, 0) {
		t.Error("i loop carries a flow dependence and must not be parallel")
	}
	if ParallelLoop(deps, 1) {
		t.Error("j loop carries a flow dependence and must not be parallel")
	}
	// Distances (1,0) and (0,1) are non-negative: tiling stays legal.
	if !FullyPermutable(deps, 0, 1) {
		t.Error("seidel nest is fully permutable despite carried deps")
	}
	if CollapsibleLoops(loops, deps, 0) {
		t.Error("seidel loops must not be collapsible")
	}
}

func TestFlowDistanceExact(t *testing.T) {
	loops, stmts := seidelNest(64)
	deps := Analyze(loops, stmts)
	foundDist10 := false
	for _, d := range deps {
		if d.Kind == Flow && d.Exact && len(d.Distance) == 2 &&
			d.Distance[0] == 1 && d.Distance[1] == 0 {
			foundDist10 = true
		}
	}
	if !foundDist10 {
		t.Errorf("expected exact flow distance (1,0); deps = %v", deps)
	}
	_ = loops
}

func TestGCDTestDisprovesDependence(t *testing.T) {
	// A[2i] written, A[2i+1] read: never alias.
	stmt := &ir.Stmt{
		Label:  "evenodd",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Term("i", 2)}}},
		Reads:  []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Term("i", 2).AddConst(1)}}},
	}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(64), Step: 1, Body: []ir.Node{stmt}}
	deps := Analyze([]*ir.Loop{il}, []*ir.Stmt{stmt})
	for _, d := range deps {
		if d.Kind == Flow || d.Kind == Anti {
			t.Errorf("GCD test should disprove even/odd aliasing: %v", d)
		}
	}
	if !ParallelLoop(deps, 0) {
		t.Error("loop should be parallel")
	}
}

func TestBackwardDependencePruned(t *testing.T) {
	// A[i] = A[i+1]: flow is (i -> i) reading the *next* element, so
	// the flow direction would be negative and must be pruned; the
	// corresponding anti dependence (read then overwritten next
	// iteration) has distance +1.
	stmt := &ir.Stmt{
		Label:  "shift",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i")}}},
		Reads:  []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i").AddConst(1)}}},
	}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(64), Step: 1, Body: []ir.Node{stmt}}
	deps := Analyze([]*ir.Loop{il}, []*ir.Stmt{stmt})
	var flows, antis int
	for _, d := range deps {
		switch d.Kind {
		case Flow:
			flows++
		case Anti:
			antis++
			if !d.Exact || d.Distance[0] != 1 {
				t.Errorf("anti distance = %v, want (1)", d.Distance)
			}
		}
	}
	if flows != 0 {
		t.Errorf("backward flow dependence should be pruned, got %d", flows)
	}
	if antis != 1 {
		t.Errorf("anti deps = %d, want 1", antis)
	}
	if ParallelLoop(deps, 0) {
		t.Error("loop carries an anti dependence and must not be parallel")
	}
}

func TestNBodyStyleReduction(t *testing.T) {
	// F[i] += f(P[i], P[j]) over loops i, j.
	stmt := &ir.Stmt{
		Label:  "nbody",
		Writes: []ir.Access{{Array: "F", Indices: []ir.Affine{ir.Var("i")}}},
		Reads: []ir.Access{
			{Array: "F", Indices: []ir.Affine{ir.Var("i")}},
			{Array: "P", Indices: []ir.Affine{ir.Var("i")}},
			{Array: "P", Indices: []ir.Affine{ir.Var("j")}},
		},
		Flops: 10,
	}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(64), Step: 1, Body: []ir.Node{stmt}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(64), Step: 1, Body: []ir.Node{jl}}
	loops := []*ir.Loop{il, jl}
	deps := Analyze(loops, []*ir.Stmt{stmt})
	if !ParallelLoop(deps, 0) {
		t.Error("i loop should be parallel")
	}
	if ParallelLoop(deps, 1) {
		t.Error("j loop carries the force accumulation")
	}
	if !FullyPermutable(deps, 0, 1) {
		t.Error("nbody nest should be tilable")
	}
}

func TestTriangularCollapseRejected(t *testing.T) {
	// Inner bound depends on the outer iterator: not collapsible even
	// with no dependences.
	stmt := &ir.Stmt{
		Label:  "tri",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}},
	}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Var("i"), Step: 1, Body: []ir.Node{stmt}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(64), Step: 1, Body: []ir.Node{jl}}
	loops := []*ir.Loop{il, jl}
	deps := Analyze(loops, []*ir.Stmt{stmt})
	if CollapsibleLoops(loops, deps, 0) {
		t.Error("triangular nest must not be collapsible")
	}
	if CollapsibleLoops(loops, deps, 1) {
		t.Error("level+1 out of range must be rejected")
	}
}

func TestReversalAccessLegality(t *testing.T) {
	// A[i] = A[N-1-i]: after lexicographic legalization all carried
	// dependences run forward, so strip-mining the single loop stays
	// legal (band = 1) but the loop must not run in parallel.
	stmt := &ir.Stmt{
		Label:  "rev",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i")}}},
		Reads:  []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Term("i", -1).AddConst(63)}}},
	}
	il := &ir.Loop{Var: "i", Lo: ir.Con(0), Hi: ir.Con(64), Step: 1, Body: []ir.Node{stmt}}
	deps := Analyze([]*ir.Loop{il}, []*ir.Stmt{stmt})
	if got := MaxTilableBand(deps, 1); got != 1 {
		t.Errorf("MaxTilableBand = %d, want 1 (strip-mining one loop is always legal)", got)
	}
	if ParallelLoop(deps, 0) {
		t.Error("reversal loop carries dependences and must not be parallel")
	}
}

func TestKindAndDirectionStrings(t *testing.T) {
	if Flow.String() != "flow" || Anti.String() != "anti" || Output.String() != "output" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind should stringify")
	}
	dirs := map[Direction]string{DirZero: "=", DirPos: "<", DirNeg: ">", DirNonNeg: "<=", DirAny: "*"}
	for d, want := range dirs {
		if d.String() != want {
			t.Errorf("Direction %d = %q, want %q", d, d.String(), want)
		}
	}
}

func TestDependenceString(t *testing.T) {
	d := Dependence{Kind: Flow, Array: "C", Directions: []Direction{DirZero, DirPos}}
	if d.String() != "flow C (=,<)" {
		t.Errorf("String = %q", d.String())
	}
}

func TestCarriedByOutOfRange(t *testing.T) {
	d := Dependence{Directions: []Direction{DirPos}}
	if d.CarriedBy(5) {
		t.Error("out-of-range level must not be carried")
	}
}

func TestPermutationLegal(t *testing.T) {
	// Seidel: distances (1,0) and (0,1) — any permutation keeps
	// lexicographic non-negativity.
	loops, stmts := seidelNest(32)
	deps := Analyze(loops, stmts)
	if !PermutationLegal(deps, []int{0, 1}) || !PermutationLegal(deps, []int{1, 0}) {
		t.Error("non-negative distance vectors permute freely")
	}
	// A skewed dependence (1,-1) forbids interchange: permuted to
	// (-1,1) it becomes lexicographically negative.
	stmt := &ir.Stmt{
		Label:  "skew",
		Writes: []ir.Access{{Array: "A", Indices: []ir.Affine{ir.Var("i"), ir.Var("j")}}},
		Reads: []ir.Access{{Array: "A", Indices: []ir.Affine{
			ir.Var("i").AddConst(-1), ir.Var("j").AddConst(1),
		}}},
	}
	jl := &ir.Loop{Var: "j", Lo: ir.Con(0), Hi: ir.Con(31), Step: 1, Body: []ir.Node{stmt}}
	il := &ir.Loop{Var: "i", Lo: ir.Con(1), Hi: ir.Con(32), Step: 1, Body: []ir.Node{jl}}
	skewDeps := Analyze([]*ir.Loop{il, jl}, []*ir.Stmt{stmt})
	if !PermutationLegal(skewDeps, []int{0, 1}) {
		t.Error("identity permutation must stay legal")
	}
	if PermutationLegal(skewDeps, []int{1, 0}) {
		t.Error("interchanging a (1,-1) dependence must be illegal")
	}
}

func TestPermutationLegalReductionLoop(t *testing.T) {
	// mm: deps (=,=,<=); moving k outermost keeps vectors
	// non-negative, so all permutations are legal.
	loops, stmts := mmNest(32)
	deps := Analyze(loops, stmts)
	for _, perm := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}, {2, 1, 0}} {
		if !PermutationLegal(deps, perm) {
			t.Errorf("mm permutation %v should be legal", perm)
		}
	}
}
