// Package polyhedral implements the dependence analysis the analyzer
// uses to prove transformation legality, mirroring the role of the
// polyhedral dependence tests in the Insieme compiler.
//
// The implementation covers the affine loop nests MiniIR can express:
// a GCD-based disproof test per array dimension, exact constant
// distance vectors for uniform dependences (equal iterator
// coefficients), and conservative direction vectors otherwise. On top
// of the dependence information it answers the three legality questions
// the auto-tuner asks:
//
//   - is a band of loops fully permutable (and therefore tilable)?
//   - is a loop parallelizable?
//   - may two adjacent loops be collapsed before parallelization?
package polyhedral

import (
	"fmt"
	"strings"

	"autotune/internal/ir"
)

// Kind classifies a dependence by the access types involved.
type Kind int

const (
	// Flow is a read-after-write (true) dependence.
	Flow Kind = iota
	// Anti is a write-after-read dependence.
	Anti
	// Output is a write-after-write dependence.
	Output
)

// String returns the dependence kind name.
func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Direction is one component of a direction vector.
type Direction int

const (
	// DirZero means the dependence is not carried by the loop (=).
	DirZero Direction = iota
	// DirPos means the sink iteration follows the source (<, forward).
	DirPos
	// DirNeg means the sink iteration precedes the source (>, backward).
	DirNeg
	// DirNonNeg means the component is either = or < ({=,<}); it arises
	// from an unconstrained iterator after lexicographic legalization,
	// e.g. the reduction loop of an accumulation statement.
	DirNonNeg
	// DirAny means the direction is unknown (*).
	DirAny
)

// String renders the direction in classic <,=,>,≤,* notation.
func (d Direction) String() string {
	switch d {
	case DirZero:
		return "="
	case DirPos:
		return "<"
	case DirNeg:
		return ">"
	case DirNonNeg:
		return "<="
	default:
		return "*"
	}
}

// Dependence describes one data dependence between two accesses within
// a loop nest.
type Dependence struct {
	Kind  Kind
	Array string
	// Directions has one entry per loop of the nest, outermost first.
	Directions []Direction
	// Distance holds the constant dependence distance per loop when
	// Exact is true (uniform dependence); otherwise it is nil.
	Distance []int64
	Exact    bool
}

// String renders e.g. "flow A (=,=,<)".
func (d Dependence) String() string {
	parts := make([]string, len(d.Directions))
	for i, dir := range d.Directions {
		parts[i] = dir.String()
	}
	return fmt.Sprintf("%s %s (%s)", d.Kind, d.Array, strings.Join(parts, ","))
}

// CarriedBy reports whether the dependence is (or may be) carried by
// the loop at nest position level.
func (d Dependence) CarriedBy(level int) bool {
	if level >= len(d.Directions) {
		return false
	}
	dir := d.Directions[level]
	return dir == DirPos || dir == DirNeg || dir == DirNonNeg || dir == DirAny
}

// gcd returns the greatest common divisor of non-negative a, b.
func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// gcdTestDimension applies the single-dimension GCD disproof: the
// equation Σ ai·xi - Σ bi·yi = cb - ca has an integer solution only if
// gcd of all coefficients divides the constant difference. It returns
// false when a dependence in this dimension is impossible.
func gcdTestDimension(a, b ir.Affine, loopVars []string) bool {
	g := int64(0)
	for _, v := range loopVars {
		g = gcd(g, a.Coeff(v))
		g = gcd(g, b.Coeff(v))
	}
	diff := b.Const - a.Const
	if g == 0 {
		// No iterator terms at all: dependence iff constants equal.
		return diff == 0
	}
	return diff%g == 0
}

// Analyze computes all dependences among the statements at the
// innermost level of the perfect nest formed by loops. The returned
// dependences include flow, anti and output dependences. Self output
// dependences on the same access (a statement writing the same cell it
// wrote, e.g. accumulation) are reported with the appropriate
// direction vector.
func Analyze(loops []*ir.Loop, stmts []*ir.Stmt) []Dependence {
	loopVars := make([]string, len(loops))
	for i, l := range loops {
		loopVars[i] = l.Var
	}
	var deps []Dependence
	add := func(k Kind, src, dst ir.Access) {
		if src.Array != dst.Array {
			return
		}
		d, ok := pairDependence(k, src, dst, loopVars)
		if ok {
			deps = append(deps, d)
		}
	}
	for _, s1 := range stmts {
		for _, s2 := range stmts {
			for _, w := range s1.Writes {
				for _, r := range s2.Reads {
					add(Flow, w, r)
				}
				for _, w2 := range s2.Writes {
					// Emit each unordered write pair once.
					if s1 == s2 || lessStmt(s1, s2) {
						add(Output, w, w2)
					}
				}
			}
			for _, r := range s1.Reads {
				for _, w := range s2.Writes {
					add(Anti, r, w)
				}
			}
		}
	}
	return dedup(deps)
}

func lessStmt(a, b *ir.Stmt) bool { return a.Label < b.Label }

// pairDependence tests whether src and dst (same array) may touch the
// same element at different iterations and, if so, computes the
// distance/direction vector.
func pairDependence(k Kind, src, dst ir.Access, loopVars []string) (Dependence, bool) {
	if len(src.Indices) != len(dst.Indices) {
		return Dependence{}, false
	}
	// GCD disproof per dimension.
	for dim := range src.Indices {
		if !gcdTestDimension(src.Indices[dim], dst.Indices[dim], loopVars) {
			return Dependence{}, false
		}
	}
	dep := Dependence{
		Kind:       k,
		Array:      src.Array,
		Directions: make([]Direction, len(loopVars)),
		Distance:   make([]int64, len(loopVars)),
		Exact:      true,
	}
	// Determine, per loop, the constraint the accesses impose. A
	// uniform dependence has equal coefficients per iterator in both
	// accesses; its distance in a loop is fixed by dimensions where
	// that loop's coefficient is non-zero and all other iterator
	// coefficients pair up.
	for li, v := range loopVars {
		dist, exact, involved := loopDistance(src, dst, v, loopVars)
		if !involved {
			// The iterator is unconstrained: whether or not the
			// accesses mention it, source and sink may run at any pair
			// of its values (e.g. the reduction pattern
			// write(v)->read(v+1)), so the raw direction set is
			// {<,=,>}. Legalization below narrows it under
			// lexicographic positivity.
			dep.Directions[li] = DirAny
			dep.Exact = false
			continue
		}
		if !exact {
			dep.Directions[li] = DirAny
			dep.Exact = false
			continue
		}
		dep.Distance[li] = dist
		switch {
		case dist == 0:
			dep.Directions[li] = DirZero
		case dist > 0:
			dep.Directions[li] = DirPos
		default:
			dep.Directions[li] = DirNeg
		}
	}
	if !legalize(&dep) {
		return Dependence{}, false
	}
	if !dep.Exact {
		dep.Distance = nil
	}
	return dep, true
}

// legalize narrows the direction vector under the requirement that the
// sink must not precede the source in execution order (lexicographic
// non-negativity). Backward components are only possible after an
// earlier component that may be positive. A vector whose first
// non-equal component is definitely negative describes the mirrored
// dependence (reported separately with kinds swapped) and is pruned by
// returning false. Purely-zero vectors for Flow/Anti/Output between
// distinct iterations degenerate to loop-independent dependences and
// are kept with all-= directions.
func legalize(d *Dependence) bool {
	prefixCanBePositive := false
	for i, dir := range d.Directions {
		switch dir {
		case DirPos:
			prefixCanBePositive = true
		case DirNeg:
			if !prefixCanBePositive {
				return false
			}
		case DirAny:
			if !prefixCanBePositive {
				// Negative impossible here: narrow {<,=,>} to {=,<}.
				d.Directions[i] = DirNonNeg
				prefixCanBePositive = true
			} else {
				prefixCanBePositive = true
			}
		}
	}
	return true
}

// loopDistance inspects every array dimension whose index uses loop
// iterator v and tries to derive a constant dependence distance for v:
// src index f and dst index g satisfy f(i_src) = g(i_dst). For uniform
// accesses (equal coefficients on every iterator) with coefficient c on
// v, any dimension using v alone fixes c·(v_dst - v_src) = constA -
// constB. Multiple dimensions must agree; non-uniform coefficients
// yield an unknown direction.
func loopDistance(src, dst ir.Access, v string, loopVars []string) (dist int64, exact, involved bool) {
	found := false
	var agreed int64
	for dim := range src.Indices {
		f, g := src.Indices[dim], dst.Indices[dim]
		cf, cg := f.Coeff(v), g.Coeff(v)
		if cf == 0 && cg == 0 {
			continue
		}
		involved = true
		if cf != cg || cf == 0 {
			return 0, false, true
		}
		// Other iterators must pair up for a uniform solution in which
		// their source/destination values coincide; otherwise the
		// distance in v is coupled to other loops and unknown.
		uniform := true
		for _, w := range loopVars {
			if w == v {
				continue
			}
			if f.Coeff(w) != g.Coeff(w) {
				uniform = false
				break
			}
		}
		if !uniform {
			return 0, false, true
		}
		diff := f.Const - g.Const // c·(v_dst - v_src) = f.Const - g.Const
		if diff%cf != 0 {
			// No integer distance in this dimension alone; treat as
			// unknown rather than absent (conservative).
			return 0, false, true
		}
		d := diff / cf
		if found && d != agreed {
			// Contradicting dimensions: the accesses can only meet if
			// both hold, which a uniform distance cannot satisfy;
			// conservatively unknown.
			return 0, false, true
		}
		found = true
		agreed = d
	}
	if !involved {
		return 0, true, false
	}
	return agreed, true, true
}

func dedup(deps []Dependence) []Dependence {
	seen := map[string]bool{}
	var out []Dependence
	for _, d := range deps {
		key := d.String()
		if d.Exact {
			key += fmt.Sprint(d.Distance)
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	return out
}

// FullyPermutable reports whether the loop band [from, to] (inclusive
// nest positions) is fully permutable — the standard legality condition
// for rectangular tiling: every dependence must have non-negative
// direction components throughout the band, with any unknown (*)
// component making the band illegal.
func FullyPermutable(deps []Dependence, from, to int) bool {
	for _, d := range deps {
		for l := from; l <= to && l < len(d.Directions); l++ {
			switch d.Directions[l] {
			case DirNeg, DirAny:
				return false
			}
		}
	}
	return true
}

// ParallelLoop reports whether the loop at nest position level can be
// run in parallel: no dependence may be carried by it. A dependence is
// carried at `level` if its component there may be non-zero while every
// outer component may be zero (outer components that are definitely
// non-zero mean the dependence is carried by an outer loop instead and
// does not inhibit parallelism here).
func ParallelLoop(deps []Dependence, level int) bool {
	for _, d := range deps {
		mayReachLevel := true
		for l := 0; l < level && l < len(d.Directions); l++ {
			if d.Directions[l] == DirPos || d.Directions[l] == DirNeg {
				mayReachLevel = false
				break
			}
		}
		if mayReachLevel && d.CarriedBy(level) {
			return false
		}
	}
	return true
}

// MaxTilableBand returns the largest prefix [0, k) of the nest that is
// fully permutable starting at the outermost loop, which is the band
// the analyzer tiles. Returns 0 when even the outermost loop
// participates in a negative or unknown direction.
func MaxTilableBand(deps []Dependence, nestDepth int) int {
	k := 0
	for k < nestDepth && FullyPermutable(deps, 0, k) {
		k++
	}
	return k
}

// PermutationLegal reports whether reordering the nest's loops by perm
// (the loop at original position perm[i] moves to position i) preserves
// every dependence: each permuted direction vector must remain
// lexicographically non-negative, i.e. scanning the new order, the
// first component that can be non-zero must not be negative. Unknown
// (*) components are conservative: a vector whose first possibly
// non-zero permuted component may be negative rejects the permutation.
func PermutationLegal(deps []Dependence, perm []int) bool {
	for _, d := range deps {
		legal := false
		sawPossiblyNegative := false
		for _, orig := range perm {
			if orig >= len(d.Directions) {
				continue
			}
			switch d.Directions[orig] {
			case DirPos:
				legal = true
			case DirZero:
				continue
			case DirNonNeg:
				// {=,<}: may already satisfy positivity; cannot be
				// negative, so keep scanning — if everything after is
				// non-negative too, the vector stays legal.
				continue
			case DirNeg, DirAny:
				sawPossiblyNegative = true
			}
			break
		}
		if !legal && sawPossiblyNegative {
			return false
		}
	}
	return true
}

// CollapsibleLoops reports whether the two adjacent loops at positions
// level and level+1 may be collapsed into a single loop before
// parallelizing the result. Requirements: the inner loop's bounds must
// not depend on the outer iterator (rectangular), and both loops must
// be parallelizable (no dependence carried by either).
func CollapsibleLoops(loops []*ir.Loop, deps []Dependence, level int) bool {
	if level+1 >= len(loops) {
		return false
	}
	inner := loops[level+1]
	outerVar := loops[level].Var
	if inner.Lo.Coeff(outerVar) != 0 || inner.Hi.Coeff(outerVar) != 0 {
		return false
	}
	return ParallelLoop(deps, level) && ParallelLoop(deps, level+1)
}
