package multiversion

import (
	"errors"
	"fmt"
)

// The paper (§IV) contrasts two code-specialization strategies: full
// multi-versioning (one compiled body per Pareto point — what Unit
// implements) and a single *parameterized* body reading its tile sizes
// and thread count at run time. Parameterization keeps the binary
// small and supports arbitrary configurations, but cannot express
// structural transformations (unrolling, fission/fusion) and denies
// the backend compiler constant-propagation opportunities. This file
// implements the parameterized alternative so the trade-off can be
// studied directly (see the dispatch ablation benchmark).

// ParamEntry executes the region with runtime-supplied parameters.
type ParamEntry func(tiles []int64, threads int) error

// Parameterized is the single-body counterpart of Unit: the same
// Pareto metadata table, but one generic entry point.
type Parameterized struct {
	Region         string
	ObjectiveNames []string
	Metas          []Meta
	Entry          ParamEntry
}

// FromUnit derives a parameterized region from a multi-versioned unit,
// discarding the specialized bodies in favour of the generic entry.
func FromUnit(u *Unit, entry ParamEntry) (*Parameterized, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if entry == nil {
		return nil, errors.New("multiversion: nil parameterized entry")
	}
	return &Parameterized{
		Region:         u.Region,
		ObjectiveNames: append([]string(nil), u.ObjectiveNames...),
		Metas:          u.Metas(),
		Entry:          entry,
	}, nil
}

// Invoke runs the configuration at the given metadata index.
func (p *Parameterized) Invoke(idx int) error {
	if idx < 0 || idx >= len(p.Metas) {
		return fmt.Errorf("multiversion: parameterized index %d out of range", idx)
	}
	m := p.Metas[idx]
	return p.Entry(m.Tiles, m.Threads)
}

// InvokeConfig runs an arbitrary configuration — the capability
// multi-versioning lacks: parameterized code can execute points
// outside the compiled Pareto set (e.g. interpolated configurations).
func (p *Parameterized) InvokeConfig(tiles []int64, threads int) error {
	if threads < 1 {
		return errors.New("multiversion: thread count must be positive")
	}
	return p.Entry(tiles, threads)
}

// SelectWeighted mirrors Unit.SelectWeighted over the metadata table.
func (p *Parameterized) SelectWeighted(weights []float64) (int, error) {
	u := Unit{Region: p.Region, ObjectiveNames: p.ObjectiveNames}
	for _, m := range p.Metas {
		u.Versions = append(u.Versions, Version{Meta: m})
	}
	return u.SelectWeighted(weights)
}
