package multiversion

import (
	"fmt"
	"math"
	"sort"
)

// Prune returns a copy of the unit keeping at most k versions, chosen
// to preserve the trade-off coverage of the front: the extreme version
// of every objective is always kept, and the remaining slots go to the
// versions with the largest crowding distance (the most isolated
// points). Embedded version tables cost binary size and selection
// time, so deployments may cap them; the paper's |S| of 10-30 versions
// motivates exactly this knob.
func Prune(u *Unit, k int) (*Unit, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("multiversion: prune target %d must be >= 1", k)
	}
	out := &Unit{
		Region:         u.Region,
		ObjectiveNames: append([]string(nil), u.ObjectiveNames...),
	}
	if u.Features != nil {
		out.Features = map[string]float64{}
		for key, v := range u.Features {
			out.Features[key] = v
		}
	}
	if len(u.Versions) <= k {
		out.Versions = append(out.Versions, u.Versions...)
		return out, nil
	}

	m := len(u.ObjectiveNames)
	n := len(u.Versions)
	keep := make([]bool, n)

	// Always keep each objective's best version.
	for c := 0; c < m; c++ {
		best, bestVal := 0, math.Inf(1)
		for i, v := range u.Versions {
			if v.Meta.Objectives[c] < bestVal {
				best, bestVal = i, v.Meta.Objectives[c]
			}
		}
		keep[best] = true
	}

	// Crowding distance over the whole table.
	dist := crowding(u.Versions)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dist[order[a]] > dist[order[b]] })
	kept := 0
	for i := range keep {
		if keep[i] {
			kept++
		}
	}
	for _, i := range order {
		if kept >= k {
			break
		}
		if !keep[i] {
			keep[i] = true
			kept++
		}
	}
	// If the extremes alone exceed k (tiny k, many objectives), drop
	// the least crowded extremes from the end of the order.
	if kept > k {
		for j := len(order) - 1; j >= 0 && kept > k; j-- {
			if keep[order[j]] {
				keep[order[j]] = false
				kept--
			}
		}
	}
	for i, v := range u.Versions {
		if keep[i] {
			out.Versions = append(out.Versions, v)
		}
	}
	return out, nil
}

// crowding computes the NSGA-II crowding distance over the version
// table's objective vectors.
func crowding(versions []Version) []float64 {
	n := len(versions)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	m := len(versions[0].Meta.Objectives)
	order := make([]int, n)
	for c := 0; c < m; c++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return versions[order[a]].Meta.Objectives[c] < versions[order[b]].Meta.Objectives[c]
		})
		lo := versions[order[0]].Meta.Objectives[c]
		hi := versions[order[n-1]].Meta.Objectives[c]
		dist[order[0]] = math.Inf(1)
		dist[order[n-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for j := 1; j < n-1; j++ {
			dist[order[j]] += (versions[order[j+1]].Meta.Objectives[c] -
				versions[order[j-1]].Meta.Objectives[c]) / (hi - lo)
		}
	}
	return dist
}
