package multiversion

import (
	"testing"

	"autotune/internal/skeleton"
)

func frontUnit(times []float64) *Unit {
	u := &Unit{Region: "r", ObjectiveNames: []string{"time", "resources"}}
	for i, tm := range times {
		u.Versions = append(u.Versions, Version{Meta: Meta{
			Config:     skeleton.Config{int64(i)},
			Tiles:      []int64{int64(i)},
			Threads:    i + 1,
			Objectives: []float64{tm, 2 - tm}, // staircase front
		}})
	}
	return u
}

func TestPruneKeepsExtremesAndCount(t *testing.T) {
	u := frontUnit([]float64{0.1, 0.2, 0.3, 0.9, 1.0, 1.5})
	p, err := Prune(u, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Versions) != 3 {
		t.Fatalf("pruned to %d versions", len(p.Versions))
	}
	haveMinTime, haveMinRes := false, false
	for _, v := range p.Versions {
		if v.Meta.Objectives[0] == 0.1 {
			haveMinTime = true
		}
		if v.Meta.Objectives[0] == 1.5 { // min resources = 2-1.5
			haveMinRes = true
		}
	}
	if !haveMinTime || !haveMinRes {
		t.Fatal("extremes dropped by pruning")
	}
}

func TestPruneNoOpWhenSmall(t *testing.T) {
	u := frontUnit([]float64{0.1, 0.5})
	p, err := Prune(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Versions) != 2 {
		t.Fatalf("no-op prune changed count: %d", len(p.Versions))
	}
}

func TestPruneToOne(t *testing.T) {
	u := frontUnit([]float64{0.1, 0.5, 0.9})
	p, err := Prune(u, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Versions) != 1 {
		t.Fatalf("pruned to %d", len(p.Versions))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPruneValidation(t *testing.T) {
	u := frontUnit([]float64{0.1})
	if _, err := Prune(u, 0); err == nil {
		t.Error("k=0 accepted")
	}
	bad := &Unit{}
	if _, err := Prune(bad, 2); err == nil {
		t.Error("invalid unit accepted")
	}
}

func TestPrunePreservesMetadataAndFeatures(t *testing.T) {
	u := frontUnit([]float64{0.1, 0.5, 0.9, 1.3})
	u.Features = map[string]float64{"nestDepth": 3}
	p, err := Prune(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Region != "r" || p.Features["nestDepth"] != 3 {
		t.Fatal("metadata lost")
	}
	// Features map is a copy.
	p.Features["nestDepth"] = 9
	if u.Features["nestDepth"] != 3 {
		t.Fatal("features aliased")
	}
}

func TestPruneSpreadBetterThanPrefix(t *testing.T) {
	// A clustered front: most points bunched near the fast end. The
	// pruned set must cover the full extent, not just the cluster.
	u := frontUnit([]float64{0.10, 0.11, 0.12, 0.13, 0.14, 1.0, 1.9})
	p, err := Prune(u, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 10.0, -10.0
	for _, v := range p.Versions {
		tm := v.Meta.Objectives[0]
		if tm < lo {
			lo = tm
		}
		if tm > hi {
			hi = tm
		}
	}
	if lo != 0.10 || hi != 1.9 {
		t.Fatalf("pruned range [%v, %v] does not span the front", lo, hi)
	}
}
