package multiversion

// Ranking accessors expose the full preference order behind the
// single-best Select* accessors. The runtime system's fallback
// machinery walks a ranking when the preferred version fails, so the
// retry order keeps following the active policy instead of degrading
// to an arbitrary version.

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// WeightedScores returns the weighted-sum score Σ w_c · f̂_c(v) of
// every version, over objectives normalized to [0,1] across the table
// — the scoring behind SelectWeighted. Weights need not sum to 1;
// negative weights are rejected.
func (u *Unit) WeightedScores(weights []float64) ([]float64, error) {
	if len(weights) != len(u.ObjectiveNames) {
		return nil, fmt.Errorf("multiversion: %d weights for %d objectives", len(weights), len(u.ObjectiveNames))
	}
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, errors.New("multiversion: weights must be non-negative")
		}
	}
	if len(u.Versions) == 0 {
		return nil, errors.New("multiversion: empty version table")
	}
	m := len(u.ObjectiveNames)
	lo := make([]float64, m)
	hi := make([]float64, m)
	for c := 0; c < m; c++ {
		lo[c], hi[c] = math.Inf(1), math.Inf(-1)
		for _, v := range u.Versions {
			x := v.Meta.Objectives[c]
			if x < lo[c] {
				lo[c] = x
			}
			if x > hi[c] {
				hi[c] = x
			}
		}
	}
	scores := make([]float64, len(u.Versions))
	for i, v := range u.Versions {
		score := 0.0
		for c := 0; c < m; c++ {
			span := hi[c] - lo[c]
			norm := 0.0
			if span > 0 {
				norm = (v.Meta.Objectives[c] - lo[c]) / span
			}
			score += weights[c] * norm
		}
		scores[i] = score
	}
	return scores, nil
}

// RankWeighted returns every version index ordered by ascending
// weighted-sum score, ties broken by index. The first element equals
// SelectWeighted's choice.
func (u *Unit) RankWeighted(weights []float64) ([]int, error) {
	scores, err := u.WeightedScores(weights)
	if err != nil {
		return nil, err
	}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return scores[order[a]] < scores[order[b]]
	})
	return order, nil
}

// RankConstrained returns every version index in the preference order
// behind SelectConstrained: versions whose `constrain` objective stays
// within budget first, ordered by ascending `optimize` objective, then
// the out-of-budget rest ordered by ascending constrained objective
// (the graceful-degradation order). The first element equals
// SelectConstrained's choice.
func (u *Unit) RankConstrained(optimize, constrain int, budget float64) ([]int, error) {
	m := len(u.ObjectiveNames)
	if optimize < 0 || optimize >= m || constrain < 0 || constrain >= m {
		return nil, errors.New("multiversion: objective index out of range")
	}
	if len(u.Versions) == 0 {
		return nil, errors.New("multiversion: empty version table")
	}
	var within, beyond []int
	for i, v := range u.Versions {
		if v.Meta.Objectives[constrain] <= budget {
			within = append(within, i)
		} else {
			beyond = append(beyond, i)
		}
	}
	sort.SliceStable(within, func(a, b int) bool {
		return u.Versions[within[a]].Meta.Objectives[optimize] < u.Versions[within[b]].Meta.Objectives[optimize]
	})
	sort.SliceStable(beyond, func(a, b int) bool {
		return u.Versions[beyond[a]].Meta.Objectives[constrain] < u.Versions[beyond[b]].Meta.Objectives[constrain]
	})
	return append(within, beyond...), nil
}
