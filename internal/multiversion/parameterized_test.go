package multiversion

import (
	"testing"
)

func TestFromUnitAndInvoke(t *testing.T) {
	u := sampleUnit()
	var gotTiles []int64
	var gotThreads int
	p, err := FromUnit(u, func(tiles []int64, threads int) error {
		gotTiles, gotThreads = tiles, threads
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Metas) != 3 || p.Region != u.Region {
		t.Fatalf("parameterized = %+v", p)
	}
	if err := p.Invoke(1); err != nil {
		t.Fatal(err)
	}
	if gotThreads != 10 || len(gotTiles) != 3 || gotTiles[0] != 32 {
		t.Fatalf("entry got %v/%d", gotTiles, gotThreads)
	}
	if err := p.Invoke(9); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestFromUnitValidation(t *testing.T) {
	u := sampleUnit()
	if _, err := FromUnit(u, nil); err == nil {
		t.Error("nil entry accepted")
	}
	bad := sampleUnit()
	bad.Versions = nil
	if _, err := FromUnit(bad, func([]int64, int) error { return nil }); err == nil {
		t.Error("invalid unit accepted")
	}
}

func TestInvokeConfigBeyondParetoSet(t *testing.T) {
	u := sampleUnit()
	var seen []int64
	p, _ := FromUnit(u, func(tiles []int64, threads int) error {
		seen = tiles
		return nil
	})
	// A configuration not in the table — parameterization's advantage.
	if err := p.InvokeConfig([]int64{48, 48, 48}, 5); err != nil {
		t.Fatal(err)
	}
	if seen[0] != 48 {
		t.Fatal("custom config not forwarded")
	}
	if err := p.InvokeConfig(nil, 0); err == nil {
		t.Error("invalid thread count accepted")
	}
}

func TestParameterizedSelectWeighted(t *testing.T) {
	u := sampleUnit()
	p, _ := FromUnit(u, func([]int64, int) error { return nil })
	idx, err := p.SelectWeighted([]float64{1, 0})
	if err != nil || idx != 2 {
		t.Fatalf("selection = %d, %v", idx, err)
	}
}
