package multiversion

import (
	"testing"

	"autotune/internal/skeleton"
)

func rankUnit() *Unit {
	return &Unit{
		Region:         "mm#0",
		ObjectiveNames: []string{"time", "resources"},
		Versions: []Version{
			{Meta: Meta{Config: skeleton.Config{64, 1}, Tiles: []int64{64}, Threads: 1, Objectives: []float64{1.0, 1.0}}},
			{Meta: Meta{Config: skeleton.Config{32, 10}, Tiles: []int64{32}, Threads: 10, Objectives: []float64{0.12, 1.2}}},
			{Meta: Meta{Config: skeleton.Config{16, 40}, Tiles: []int64{16}, Threads: 40, Objectives: []float64{0.04, 1.6}}},
		},
	}
}

func isPermutation(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("ranking %v has %d entries, want %d", order, len(order), n)
	}
	seen := map[int]bool{}
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			t.Fatalf("ranking %v is not a permutation of 0..%d", order, n-1)
		}
		seen[i] = true
	}
}

func TestRankWeightedAgreesWithSelect(t *testing.T) {
	u := rankUnit()
	for _, w := range [][]float64{{1, 0}, {0, 1}, {1, 1}, {0.3, 0.7}} {
		order, err := u.RankWeighted(w)
		if err != nil {
			t.Fatal(err)
		}
		isPermutation(t, order, len(u.Versions))
		best, err := u.SelectWeighted(w)
		if err != nil {
			t.Fatal(err)
		}
		if order[0] != best {
			t.Fatalf("weights %v: rank head %d != select %d", w, order[0], best)
		}
	}
	// Time priority ranks fastest-first.
	order, _ := u.RankWeighted([]float64{1, 0})
	if order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("time-priority rank = %v, want [2 1 0]", order)
	}
}

func TestRankWeightedValidation(t *testing.T) {
	u := rankUnit()
	if _, err := u.RankWeighted([]float64{1}); err == nil {
		t.Error("weight arity mismatch accepted")
	}
	if _, err := u.RankWeighted([]float64{-1, 0}); err == nil {
		t.Error("negative weight accepted")
	}
	empty := &Unit{Region: "r", ObjectiveNames: []string{"t", "r"}}
	if _, err := empty.RankWeighted([]float64{1, 0}); err == nil {
		t.Error("empty table accepted")
	}
}

func TestRankConstrainedAgreesWithSelect(t *testing.T) {
	u := rankUnit()
	for _, budget := range []float64{0.5, 1.0, 1.3, 2.0} {
		order, err := u.RankConstrained(0, 1, budget)
		if err != nil {
			t.Fatal(err)
		}
		isPermutation(t, order, len(u.Versions))
		best, err := u.SelectConstrained(0, 1, budget)
		if err != nil {
			t.Fatal(err)
		}
		if order[0] != best {
			t.Fatalf("budget %v: rank head %d != select %d", budget, order[0], best)
		}
	}
	// Budget 1.3 admits v0 and v1: fastest within budget first, then
	// the out-of-budget v2 as graceful degradation.
	order, _ := u.RankConstrained(0, 1, 1.3)
	if order[0] != 1 || order[1] != 0 || order[2] != 2 {
		t.Fatalf("constrained rank = %v, want [1 0 2]", order)
	}
	// An impossible budget degrades to ascending constrained value.
	order, _ = u.RankConstrained(0, 1, 0.1)
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("degraded rank = %v, want [0 1 2]", order)
	}
}

func TestRankConstrainedValidation(t *testing.T) {
	u := rankUnit()
	if _, err := u.RankConstrained(5, 1, 1); err == nil {
		t.Error("bad objective index accepted")
	}
	empty := &Unit{Region: "r", ObjectiveNames: []string{"t", "r"}}
	if _, err := empty.RankConstrained(0, 1, 1); err == nil {
		t.Error("empty table accepted")
	}
}

func TestWeightedScores(t *testing.T) {
	u := rankUnit()
	scores, err := u.WeightedScores([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Normalized time: v2 is the minimum (0), v0 the maximum (1).
	if scores[2] != 0 || scores[0] != 1 {
		t.Fatalf("scores = %v", scores)
	}
	if scores[1] <= scores[2] || scores[1] >= scores[0] {
		t.Fatalf("middle score out of order: %v", scores)
	}
}
