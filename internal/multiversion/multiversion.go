// Package multiversion implements the backend stage of the framework
// (label 5 in the paper's Fig. 3): for each tuned region it aggregates
// one specialized code version per Pareto-optimal configuration into a
// version table, annotated with the meta-information — the represented
// objective trade-off — the runtime system consults when selecting a
// version.
//
// A Unit is the analogue of the paper's "multi-versioned executable":
// serializable metadata plus (for in-process use) an executable entry
// point per version. The JSON form round-trips everything except the
// entry closures, which are re-attached on load via a Binder.
package multiversion

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"autotune/internal/skeleton"
)

// Meta is the per-version meta-information embedded in the version
// table: the configuration and the objective trade-off it represents.
type Meta struct {
	// Config is the raw optimizer configuration [tiles..., threads].
	Config skeleton.Config `json:"config"`
	// Tiles are the bound tile sizes.
	Tiles []int64 `json:"tiles"`
	// Threads is the bound thread count.
	Threads int `json:"threads"`
	// Unroll is the bound innermost-loop unroll factor (0 or 1 =
	// none).
	Unroll int64 `json:"unroll,omitempty"`
	// Objectives are the (minimized) objective values measured for
	// this version during tuning.
	Objectives []float64 `json:"objectives"`
}

// Entry executes one code version. It is attached in process and not
// serialized.
type Entry func() error

// Version is one specialized code version.
type Version struct {
	Meta Meta `json:"meta"`
	// Code is the human-readable listing of the transformed region
	// (the source the backend would emit).
	Code string `json:"code,omitempty"`
	// Entry runs the version; nil for deserialized units until bound.
	Entry Entry `json:"-"`
}

// Unit is the multi-versioned compilation result for one region.
type Unit struct {
	// Region names the tuned region.
	Region string `json:"region"`
	// ObjectiveNames labels the objective vector components.
	ObjectiveNames []string `json:"objectiveNames"`
	// Features carries the region's compiler-deduced static features
	// (internal/features), available to runtime decision making.
	Features map[string]float64 `json:"features,omitempty"`
	// Versions is the version table, one entry per Pareto point.
	Versions []Version `json:"versions"`
}

// Validate checks structural consistency.
func (u *Unit) Validate() error {
	if u.Region == "" {
		return errors.New("multiversion: unit without region name")
	}
	if len(u.Versions) == 0 {
		return errors.New("multiversion: unit without versions")
	}
	m := len(u.ObjectiveNames)
	if m == 0 {
		return errors.New("multiversion: unit without objective names")
	}
	for i, v := range u.Versions {
		if len(v.Meta.Objectives) != m {
			return fmt.Errorf("multiversion: version %d has %d objectives, want %d",
				i, len(v.Meta.Objectives), m)
		}
		if v.Meta.Threads < 1 {
			return fmt.Errorf("multiversion: version %d has invalid thread count %d", i, v.Meta.Threads)
		}
	}
	return nil
}

// Metas returns the version table's meta rows.
func (u *Unit) Metas() []Meta {
	out := make([]Meta, len(u.Versions))
	for i, v := range u.Versions {
		out[i] = v.Meta
	}
	return out
}

// SelectWeighted returns the index of the version minimizing the
// weighted sum Σ w_c · f̂_c(v) over objectives normalized to [0,1]
// across the table — the runtime policy described in the paper's §IV.
// Weights need not sum to 1; negative weights are rejected.
func (u *Unit) SelectWeighted(weights []float64) (int, error) {
	scores, err := u.WeightedScores(weights)
	if err != nil {
		return 0, err
	}
	best, bestScore := 0, math.Inf(1)
	for i, score := range scores {
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return best, nil
}

// SelectConstrained returns the version with the best value in the
// `optimize` objective among versions whose `constrain` objective does
// not exceed budget. If none qualifies, the version with the smallest
// constrained objective is returned (graceful degradation).
func (u *Unit) SelectConstrained(optimize, constrain int, budget float64) (int, error) {
	m := len(u.ObjectiveNames)
	if optimize < 0 || optimize >= m || constrain < 0 || constrain >= m {
		return 0, errors.New("multiversion: objective index out of range")
	}
	if len(u.Versions) == 0 {
		return 0, errors.New("multiversion: empty version table")
	}
	best, bestVal := -1, math.Inf(1)
	fallback, fallbackVal := 0, math.Inf(1)
	for i, v := range u.Versions {
		c := v.Meta.Objectives[constrain]
		if c < fallbackVal {
			fallback, fallbackVal = i, c
		}
		if c <= budget && v.Meta.Objectives[optimize] < bestVal {
			best, bestVal = i, v.Meta.Objectives[optimize]
		}
	}
	if best < 0 {
		return fallback, nil
	}
	return best, nil
}

// SelectMaxThreads returns the fastest version among those using at
// most maxThreads threads, supporting runtime adaptation to shrinking
// core budgets. The returned bool is false when no version fits.
func (u *Unit) SelectMaxThreads(maxThreads int, timeObjective int) (int, bool) {
	best, bestVal := -1, math.Inf(1)
	for i, v := range u.Versions {
		if v.Meta.Threads > maxThreads {
			continue
		}
		if v.Meta.Objectives[timeObjective] < bestVal {
			best, bestVal = i, v.Meta.Objectives[timeObjective]
		}
	}
	return best, best >= 0
}

// MarshalJSON-friendly encode/decode helpers.

// Encode serializes the unit (without entry closures).
func (u *Unit) Encode() ([]byte, error) {
	return json.MarshalIndent(u, "", "  ")
}

// Decode deserializes a unit. Entries are nil afterwards; use Bind.
func Decode(data []byte) (*Unit, error) {
	var u Unit
	if err := json.Unmarshal(data, &u); err != nil {
		return nil, fmt.Errorf("multiversion: %w", err)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return &u, nil
}

// Binder attaches an executable entry point to a version's metadata —
// the in-process analogue of the dynamic linker resolving the function
// pointers of the embedded version table.
type Binder func(m Meta) (Entry, error)

// Bind attaches entries to every version.
func (u *Unit) Bind(b Binder) error {
	for i := range u.Versions {
		e, err := b(u.Versions[i].Meta)
		if err != nil {
			return fmt.Errorf("multiversion: binding version %d: %w", i, err)
		}
		u.Versions[i].Entry = e
	}
	return nil
}
