package multiversion

import (
	"errors"
	"testing"

	"autotune/internal/skeleton"
)

func sampleUnit() *Unit {
	return &Unit{
		Region:         "mm#0",
		ObjectiveNames: []string{"time", "resources"},
		Versions: []Version{
			{Meta: Meta{Config: skeleton.Config{64, 64, 64, 1}, Tiles: []int64{64, 64, 64}, Threads: 1, Objectives: []float64{1.0, 1.0}}},
			{Meta: Meta{Config: skeleton.Config{32, 64, 64, 10}, Tiles: []int64{32, 64, 64}, Threads: 10, Objectives: []float64{0.12, 1.2}}},
			{Meta: Meta{Config: skeleton.Config{32, 32, 64, 40}, Tiles: []int64{32, 32, 64}, Threads: 40, Objectives: []float64{0.04, 1.6}}},
		},
	}
}

func TestValidate(t *testing.T) {
	u := sampleUnit()
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleUnit()
	bad.Region = ""
	if bad.Validate() == nil {
		t.Error("empty region accepted")
	}
	bad = sampleUnit()
	bad.Versions = nil
	if bad.Validate() == nil {
		t.Error("no versions accepted")
	}
	bad = sampleUnit()
	bad.ObjectiveNames = nil
	if bad.Validate() == nil {
		t.Error("no objective names accepted")
	}
	bad = sampleUnit()
	bad.Versions[1].Meta.Objectives = []float64{1}
	if bad.Validate() == nil {
		t.Error("objective arity mismatch accepted")
	}
	bad = sampleUnit()
	bad.Versions[0].Meta.Threads = 0
	if bad.Validate() == nil {
		t.Error("invalid thread count accepted")
	}
}

func TestSelectWeighted(t *testing.T) {
	u := sampleUnit()
	// All weight on time: fastest version (index 2).
	i, err := u.SelectWeighted([]float64{1, 0})
	if err != nil || i != 2 {
		t.Fatalf("time-only selection = %d, %v", i, err)
	}
	// All weight on resources: most efficient (index 0).
	i, err = u.SelectWeighted([]float64{0, 1})
	if err != nil || i != 0 {
		t.Fatalf("resource-only selection = %d, %v", i, err)
	}
	// Balanced: the middle trade-off wins (normalized sums: v0 = 0+1,
	// v1 ≈ 0.083+0.33, v2 = 1+0... wait v2 time norm 0 res norm 1 -> 1;
	// v1 ≈ 0.083 + 0.33 = 0.42 minimal).
	i, err = u.SelectWeighted([]float64{1, 1})
	if err != nil || i != 1 {
		t.Fatalf("balanced selection = %d, %v", i, err)
	}
}

func TestSelectWeightedErrors(t *testing.T) {
	u := sampleUnit()
	if _, err := u.SelectWeighted([]float64{1}); err == nil {
		t.Error("weight arity mismatch accepted")
	}
	if _, err := u.SelectWeighted([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	empty := &Unit{Region: "r", ObjectiveNames: []string{"a"}}
	if _, err := empty.SelectWeighted([]float64{1}); err == nil {
		t.Error("empty table accepted")
	}
}

func TestSelectWeightedDegenerateSpan(t *testing.T) {
	u := sampleUnit()
	for i := range u.Versions {
		u.Versions[i].Meta.Objectives[1] = 5 // constant objective
	}
	i, err := u.SelectWeighted([]float64{1, 1})
	if err != nil || i != 2 {
		t.Fatalf("selection with constant objective = %d, %v", i, err)
	}
}

func TestSelectConstrained(t *testing.T) {
	u := sampleUnit()
	// Fastest version with resources <= 1.3: index 1.
	i, err := u.SelectConstrained(0, 1, 1.3)
	if err != nil || i != 1 {
		t.Fatalf("constrained selection = %d, %v", i, err)
	}
	// Impossible budget: falls back to the smallest resources (index 0).
	i, err = u.SelectConstrained(0, 1, 0.5)
	if err != nil || i != 0 {
		t.Fatalf("fallback selection = %d, %v", i, err)
	}
	if _, err := u.SelectConstrained(0, 5, 1); err == nil {
		t.Error("bad objective index accepted")
	}
}

func TestSelectMaxThreads(t *testing.T) {
	u := sampleUnit()
	i, ok := u.SelectMaxThreads(16, 0)
	if !ok || i != 1 {
		t.Fatalf("max-threads selection = %d, %v", i, ok)
	}
	i, ok = u.SelectMaxThreads(40, 0)
	if !ok || i != 2 {
		t.Fatalf("full-machine selection = %d, %v", i, ok)
	}
	if _, ok := u.SelectMaxThreads(0, 0); ok {
		t.Error("no version fits 0 threads")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	u := sampleUnit()
	u.Versions[0].Code = "for (...) {}"
	data, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	v, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.Region != u.Region || len(v.Versions) != len(u.Versions) {
		t.Fatal("round trip lost structure")
	}
	if v.Versions[0].Code != "for (...) {}" {
		t.Fatal("round trip lost code listing")
	}
	if v.Versions[0].Meta.Threads != 1 || v.Versions[2].Meta.Objectives[0] != 0.04 {
		t.Fatal("round trip lost metadata")
	}
	if v.Versions[0].Entry != nil {
		t.Fatal("entries must not survive serialization")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := Decode([]byte(`{"region":"x"}`)); err == nil {
		t.Error("structurally invalid unit accepted")
	}
}

func TestBind(t *testing.T) {
	u := sampleUnit()
	calls := 0
	err := u.Bind(func(m Meta) (Entry, error) {
		threads := m.Threads
		return func() error {
			calls += threads
			return nil
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range u.Versions {
		if err := v.Entry(); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1+10+40 {
		t.Fatalf("calls = %d", calls)
	}
	// Binder failure propagates.
	err = u.Bind(func(m Meta) (Entry, error) { return nil, errors.New("nope") })
	if err == nil {
		t.Fatal("binder error swallowed")
	}
}

func TestMetas(t *testing.T) {
	u := sampleUnit()
	ms := u.Metas()
	if len(ms) != 3 || ms[1].Threads != 10 {
		t.Fatalf("metas = %v", ms)
	}
}
