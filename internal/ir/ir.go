// Package ir defines MiniIR, a compact loop-nest intermediate
// representation in the spirit of the Insieme Parallel Intermediate
// Representation (INSPIRE) restricted to what the auto-tuner needs:
// perfectly or imperfectly nested counted loops with affine bounds,
// statements with affine array accesses, and parallel annotations.
//
// The analyzer (internal/analyzer) finds tunable regions in a MiniIR
// program, the polyhedral package checks transformation legality, and
// the transform package rewrites MiniIR into tiled/collapsed/unrolled
// variants. MiniIR programs can also be lowered to memory-address
// traces (internal/trace) for cache simulation.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Affine is an affine expression over loop iterators:
// Const + Σ Coeffs[v]·v. Iterator names are strings; a missing name has
// coefficient zero.
type Affine struct {
	Const  int64
	Coeffs map[string]int64
}

// Con returns a constant affine expression.
func Con(c int64) Affine { return Affine{Const: c} }

// Var returns the affine expression 1·name.
func Var(name string) Affine {
	return Affine{Coeffs: map[string]int64{name: 1}}
}

// Term returns the affine expression coeff·name + 0.
func Term(name string, coeff int64) Affine {
	return Affine{Coeffs: map[string]int64{name: coeff}}
}

// Add returns a + b.
func (a Affine) Add(b Affine) Affine {
	out := Affine{Const: a.Const + b.Const, Coeffs: map[string]int64{}}
	for v, c := range a.Coeffs {
		out.Coeffs[v] += c
	}
	for v, c := range b.Coeffs {
		out.Coeffs[v] += c
	}
	out.normalize()
	return out
}

// AddConst returns a + c.
func (a Affine) AddConst(c int64) Affine { return a.Add(Con(c)) }

// Scale returns k·a.
func (a Affine) Scale(k int64) Affine {
	out := Affine{Const: a.Const * k, Coeffs: map[string]int64{}}
	for v, c := range a.Coeffs {
		out.Coeffs[v] = c * k
	}
	out.normalize()
	return out
}

// Sub returns a - b.
func (a Affine) Sub(b Affine) Affine { return a.Add(b.Scale(-1)) }

// Coeff returns the coefficient of iterator v (0 if absent).
func (a Affine) Coeff(v string) int64 { return a.Coeffs[v] }

// IsConst reports whether the expression has no iterator terms.
func (a Affine) IsConst() bool {
	for _, c := range a.Coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

// Vars returns the iterator names with non-zero coefficients, sorted.
func (a Affine) Vars() []string {
	var vs []string
	for v, c := range a.Coeffs {
		if c != 0 {
			vs = append(vs, v)
		}
	}
	sort.Strings(vs)
	return vs
}

// Eval evaluates the expression under the given iterator assignment.
// Iterators missing from env evaluate as zero.
func (a Affine) Eval(env map[string]int64) int64 {
	v := a.Const
	for name, c := range a.Coeffs {
		v += c * env[name]
	}
	return v
}

// Subst substitutes iterator v with expression e.
func (a Affine) Subst(v string, e Affine) Affine {
	c := a.Coeff(v)
	if c == 0 {
		return a.clone()
	}
	out := a.clone()
	delete(out.Coeffs, v)
	return out.Add(e.Scale(c))
}

// Rename renames iterator old to newName.
func (a Affine) Rename(old, newName string) Affine {
	return a.Subst(old, Var(newName))
}

// Equal reports structural equality after normalization.
func (a Affine) Equal(b Affine) bool {
	d := a.Sub(b)
	return d.Const == 0 && d.IsConst()
}

func (a *Affine) normalize() {
	for v, c := range a.Coeffs {
		if c == 0 {
			delete(a.Coeffs, v)
		}
	}
}

// Copy returns a deep copy of the expression (its coefficient map is
// not shared with the original).
func (a Affine) Copy() Affine { return a.clone() }

func (a Affine) clone() Affine {
	out := Affine{Const: a.Const, Coeffs: map[string]int64{}}
	for v, c := range a.Coeffs {
		out.Coeffs[v] = c
	}
	return out
}

// String renders the expression in source-like form, e.g. "2*i + j + 3".
func (a Affine) String() string {
	var parts []string
	for _, v := range a.Vars() {
		c := a.Coeffs[v]
		switch c {
		case 1:
			parts = append(parts, v)
		case -1:
			parts = append(parts, "-"+v)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, v))
		}
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.Const))
	}
	s := strings.Join(parts, " + ")
	return strings.ReplaceAll(s, "+ -", "- ")
}

// Array declares an array with an element size and per-dimension
// extents.
type Array struct {
	Name      string
	ElemBytes int
	Dims      []int64
}

// Bytes returns the total footprint of the array.
func (a Array) Bytes() int64 {
	n := int64(a.ElemBytes)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Access is an affine array reference A[f1(iv)][f2(iv)]...
type Access struct {
	Array   string
	Indices []Affine
}

// String renders the access.
func (ac Access) String() string {
	var b strings.Builder
	b.WriteString(ac.Array)
	for _, ix := range ac.Indices {
		fmt.Fprintf(&b, "[%s]", ix.String())
	}
	return b.String()
}

// Clone deep-copies the access.
func (ac Access) Clone() Access {
	out := Access{Array: ac.Array, Indices: make([]Affine, len(ac.Indices))}
	for i, ix := range ac.Indices {
		out.Indices[i] = ix.clone()
	}
	return out
}

// Rename renames an iterator in all index expressions.
func (ac Access) Rename(old, newName string) Access {
	out := Access{Array: ac.Array, Indices: make([]Affine, len(ac.Indices))}
	for i, ix := range ac.Indices {
		out.Indices[i] = ix.Rename(old, newName)
	}
	return out
}

// Subst substitutes iterator v with e in all index expressions.
func (ac Access) Subst(v string, e Affine) Access {
	out := Access{Array: ac.Array, Indices: make([]Affine, len(ac.Indices))}
	for i, ix := range ac.Indices {
		out.Indices[i] = ix.Subst(v, e)
	}
	return out
}

// Node is a MiniIR tree node: either *Loop or *Stmt.
type Node interface {
	isNode()
	// CloneNode returns a deep copy.
	CloneNode() Node
}

// Stmt is a computational statement characterized by its array reads,
// writes, and floating-point operation count. The actual arithmetic is
// irrelevant to the tuner; only the access pattern and cost matter.
type Stmt struct {
	Label  string
	Writes []Access
	Reads  []Access
	Flops  int64
}

func (*Stmt) isNode() {}

// CloneNode deep-copies the statement.
func (s *Stmt) CloneNode() Node {
	c := &Stmt{Label: s.Label, Flops: s.Flops}
	for _, w := range s.Writes {
		c.Writes = append(c.Writes, w.Clone())
	}
	for _, r := range s.Reads {
		c.Reads = append(c.Reads, r.Clone())
	}
	return c
}

// RenameIter renames an iterator in every access of the statement.
func (s *Stmt) RenameIter(old, newName string) {
	for i := range s.Writes {
		s.Writes[i] = s.Writes[i].Rename(old, newName)
	}
	for i := range s.Reads {
		s.Reads[i] = s.Reads[i].Rename(old, newName)
	}
}

// SubstIter substitutes iterator v by e in every access.
func (s *Stmt) SubstIter(v string, e Affine) {
	for i := range s.Writes {
		s.Writes[i] = s.Writes[i].Subst(v, e)
	}
	for i := range s.Reads {
		s.Reads[i] = s.Reads[i].Subst(v, e)
	}
}

// Accesses returns all accesses; writes first.
func (s *Stmt) Accesses() []Access {
	out := make([]Access, 0, len(s.Writes)+len(s.Reads))
	out = append(out, s.Writes...)
	out = append(out, s.Reads...)
	return out
}

// Loop is a counted loop: for Var := Lo; Var < min(Hi, Caps...); Var += Step.
//
// Caps holds additional upper bounds; the effective bound is the
// minimum of Hi and all Caps. Tiling produces point loops of the form
// "for i = it; i < min(it+T, N)", which is expressed as Hi = it+T with
// Caps = [N].
//
// Parallel marks the loop as parallelized across threads (the outermost
// loop of a tuned region after transformation). Collapse, when > 1,
// states that this parallel loop and the next Collapse-1 perfectly
// nested inner loops are distributed jointly (OpenMP collapse
// semantics); it does not change the iteration order, only the
// parallel-distribution granularity.
type Loop struct {
	Var      string
	Lo, Hi   Affine // half-open interval [Lo, Hi)
	Caps     []Affine
	Step     int64 // > 0
	Parallel bool
	Collapse int // 0 or 1 = no collapsing
	// UnrollPragma > 1 asks the backend compiler to unroll this loop
	// by the given factor (emitted as a pragma rather than performed
	// structurally, keeping non-constant bounds legal).
	UnrollPragma int64
	Body         []Node
}

func (*Loop) isNode() {}

// CloneNode deep-copies the loop and its body.
func (l *Loop) CloneNode() Node {
	c := &Loop{Var: l.Var, Lo: l.Lo.clone(), Hi: l.Hi.clone(), Step: l.Step,
		Parallel: l.Parallel, Collapse: l.Collapse, UnrollPragma: l.UnrollPragma}
	for _, cap := range l.Caps {
		c.Caps = append(c.Caps, cap.clone())
	}
	for _, n := range l.Body {
		c.Body = append(c.Body, n.CloneNode())
	}
	return c
}

// EffectiveHi evaluates min(Hi, Caps...) under env.
func (l *Loop) EffectiveHi(env map[string]int64) int64 {
	hi := l.Hi.Eval(env)
	for _, c := range l.Caps {
		if v := c.Eval(env); v < hi {
			hi = v
		}
	}
	return hi
}

// TripCount returns the number of iterations under env, i.e.
// ceil((min(Hi,Caps)-Lo)/Step), clamped at zero.
func (l *Loop) TripCount(env map[string]int64) int64 {
	span := l.EffectiveHi(env) - l.Lo.Eval(env)
	if span <= 0 {
		return 0
	}
	return (span + l.Step - 1) / l.Step
}

// Program is a MiniIR compilation unit: array declarations plus a
// top-level statement list.
type Program struct {
	Name   string
	Arrays []Array
	Root   []Node
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	c := &Program{Name: p.Name}
	for _, a := range p.Arrays {
		aa := a
		aa.Dims = append([]int64(nil), a.Dims...)
		c.Arrays = append(c.Arrays, aa)
	}
	for _, n := range p.Root {
		c.Root = append(c.Root, n.CloneNode())
	}
	return c
}

// ArrayByName returns the declaration of the named array.
func (p *Program) ArrayByName(name string) (Array, bool) {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a, true
		}
	}
	return Array{}, false
}

// Validate checks that every access targets a declared array with a
// matching dimensionality, every iterator used in an index or bound is
// bound by an enclosing loop, loop steps are positive, and loop
// variable names in a nest are unique.
func (p *Program) Validate() error {
	decl := map[string]Array{}
	for _, a := range p.Arrays {
		if a.Name == "" {
			return fmt.Errorf("ir: array with empty name")
		}
		if a.ElemBytes <= 0 {
			return fmt.Errorf("ir: array %s has non-positive element size", a.Name)
		}
		for _, d := range a.Dims {
			if d <= 0 {
				return fmt.Errorf("ir: array %s has non-positive dimension", a.Name)
			}
		}
		if _, dup := decl[a.Name]; dup {
			return fmt.Errorf("ir: duplicate array %s", a.Name)
		}
		decl[a.Name] = a
	}
	return validateNodes(p.Root, decl, map[string]bool{})
}

func validateNodes(ns []Node, decl map[string]Array, bound map[string]bool) error {
	for _, n := range ns {
		switch x := n.(type) {
		case *Loop:
			if x.Step <= 0 {
				return fmt.Errorf("ir: loop %s has non-positive step", x.Var)
			}
			if bound[x.Var] {
				return fmt.Errorf("ir: loop variable %s shadows an enclosing loop", x.Var)
			}
			bounds := append([]Affine{x.Lo, x.Hi}, x.Caps...)
			for _, bexpr := range bounds {
				for _, v := range bexpr.Vars() {
					if !bound[v] {
						return fmt.Errorf("ir: bound of loop %s uses unbound iterator %s", x.Var, v)
					}
				}
			}
			if x.Collapse < 0 {
				return fmt.Errorf("ir: loop %s has negative collapse count", x.Var)
			}
			bound[x.Var] = true
			if err := validateNodes(x.Body, decl, bound); err != nil {
				return err
			}
			delete(bound, x.Var)
		case *Stmt:
			for _, ac := range x.Accesses() {
				a, ok := decl[ac.Array]
				if !ok {
					return fmt.Errorf("ir: access to undeclared array %s", ac.Array)
				}
				if len(ac.Indices) != len(a.Dims) {
					return fmt.Errorf("ir: access %s has %d indices, array has %d dims",
						ac.String(), len(ac.Indices), len(a.Dims))
				}
				for _, ix := range ac.Indices {
					for _, v := range ix.Vars() {
						if !bound[v] {
							return fmt.Errorf("ir: access %s uses unbound iterator %s", ac.String(), v)
						}
					}
				}
			}
		default:
			return fmt.Errorf("ir: unknown node type %T", n)
		}
	}
	return nil
}

// PerfectNest returns the loops of the outermost perfect nest rooted at
// n and the statements at its innermost level. A nest is perfect while
// each loop body contains exactly one node that is a loop; the chain
// stops at the first multi-node or statement-only body.
func PerfectNest(n Node) (loops []*Loop, body []*Stmt) {
	cur := n
	for {
		l, ok := cur.(*Loop)
		if !ok {
			break
		}
		loops = append(loops, l)
		if len(l.Body) == 1 {
			if inner, ok := l.Body[0].(*Loop); ok {
				cur = inner
				continue
			}
		}
		for _, bn := range l.Body {
			if s, ok := bn.(*Stmt); ok {
				body = append(body, s)
			}
		}
		break
	}
	return loops, body
}

// Walk calls fn for every node in pre-order. Returning false from fn
// stops descent into that node's children.
func Walk(ns []Node, fn func(Node) bool) {
	for _, n := range ns {
		if !fn(n) {
			continue
		}
		if l, ok := n.(*Loop); ok {
			Walk(l.Body, fn)
		}
	}
}

// Stmts returns all statements in the subtree, in textual order.
func Stmts(ns []Node) []*Stmt {
	var out []*Stmt
	Walk(ns, func(n Node) bool {
		if s, ok := n.(*Stmt); ok {
			out = append(out, s)
		}
		return true
	})
	return out
}

// Loops returns all loops in the subtree, outermost first.
func Loops(ns []Node) []*Loop {
	var out []*Loop
	Walk(ns, func(n Node) bool {
		if l, ok := n.(*Loop); ok {
			out = append(out, l)
		}
		return true
	})
	return out
}

// String renders the program as pseudo-C for debugging and for the
// multi-versioning backend's human-readable code listing.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// program %s\n", p.Name)
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "double %s", a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&b, "[%d]", d)
		}
		b.WriteString(";\n")
	}
	printNodes(&b, p.Root, 0)
	return b.String()
}

func printNodes(b *strings.Builder, ns []Node, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, n := range ns {
		switch x := n.(type) {
		case *Loop:
			par := ""
			if x.Parallel {
				par = "#pragma omp parallel for"
				if x.Collapse > 1 {
					par += fmt.Sprintf(" collapse(%d)", x.Collapse)
				}
				par += "\n" + ind
			}
			step := ""
			if x.Step != 1 {
				step = fmt.Sprintf(" += %d", x.Step)
			} else {
				step = "++"
			}
			if x.UnrollPragma > 1 {
				fmt.Fprintf(b, "%s#pragma unroll(%d)\n", ind, x.UnrollPragma)
			}
			hi := x.Hi.String()
			for _, c := range x.Caps {
				hi = fmt.Sprintf("min(%s, %s)", hi, c.String())
			}
			fmt.Fprintf(b, "%s%sfor (%s = %s; %s < %s; %s%s) {\n",
				ind, par, x.Var, x.Lo.String(), x.Var, hi, x.Var, step)
			printNodes(b, x.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *Stmt:
			var lhs, rhs []string
			for _, w := range x.Writes {
				lhs = append(lhs, w.String())
			}
			for _, r := range x.Reads {
				rhs = append(rhs, r.String())
			}
			fmt.Fprintf(b, "%s%s = f(%s); // %s, %d flops\n",
				ind, strings.Join(lhs, ", "), strings.Join(rhs, ", "), x.Label, x.Flops)
		}
	}
}
