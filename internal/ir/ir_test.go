package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAffineArithmetic(t *testing.T) {
	a := Var("i").Scale(2).Add(Con(3)) // 2i + 3
	b := Var("j").Add(Var("i"))        // i + j
	sum := a.Add(b)                    // 3i + j + 3
	if sum.Coeff("i") != 3 || sum.Coeff("j") != 1 || sum.Const != 3 {
		t.Fatalf("sum = %v", sum)
	}
	diff := a.Sub(a)
	if !diff.IsConst() || diff.Const != 0 {
		t.Fatalf("a-a = %v, want 0", diff)
	}
}

func TestAffineEval(t *testing.T) {
	e := Term("i", 2).Add(Term("j", -1)).AddConst(5)
	got := e.Eval(map[string]int64{"i": 3, "j": 4})
	if got != 2*3-4+5 {
		t.Fatalf("eval = %d, want 7", got)
	}
	// Missing iterators evaluate as zero.
	if e.Eval(nil) != 5 {
		t.Fatalf("eval(nil) = %d, want 5", e.Eval(nil))
	}
}

func TestAffineSubst(t *testing.T) {
	// i -> 2t + 1 in expression 3i + j
	e := Term("i", 3).Add(Var("j"))
	got := e.Subst("i", Term("t", 2).AddConst(1))
	if got.Coeff("t") != 6 || got.Coeff("j") != 1 || got.Const != 3 {
		t.Fatalf("subst = %v", got)
	}
	// Substituting an absent iterator is identity.
	id := e.Subst("z", Con(9))
	if !id.Equal(e) {
		t.Fatalf("subst absent = %v", id)
	}
}

func TestAffineRenameAndVars(t *testing.T) {
	e := Var("i").Add(Var("k"))
	r := e.Rename("i", "ii")
	vs := r.Vars()
	if len(vs) != 2 || vs[0] != "ii" || vs[1] != "k" {
		t.Fatalf("vars = %v", vs)
	}
}

func TestAffineString(t *testing.T) {
	cases := []struct {
		e    Affine
		want string
	}{
		{Con(0), "0"},
		{Con(-4), "-4"},
		{Var("i"), "i"},
		{Term("i", -1), "-i"},
		{Term("i", 2).Add(Var("j")).AddConst(3), "2*i + j + 3"},
		{Var("i").AddConst(-1), "i - 1"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAffineNormalizeDropsZeros(t *testing.T) {
	e := Var("i").Sub(Var("i"))
	if len(e.Vars()) != 0 {
		t.Fatalf("zero coefficient not dropped: %v", e)
	}
}

func TestArrayBytes(t *testing.T) {
	a := Array{Name: "A", ElemBytes: 8, Dims: []int64{100, 50}}
	if a.Bytes() != 8*100*50 {
		t.Fatalf("Bytes = %d", a.Bytes())
	}
}

// mmProgram builds the paper's Fig. 7 IJK matrix-multiply nest.
func mmProgram(n int64) *Program {
	stmt := &Stmt{
		Label:  "C[i][j] += A[i][k]*B[k][j]",
		Writes: []Access{{Array: "C", Indices: []Affine{Var("i"), Var("j")}}},
		Reads: []Access{
			{Array: "C", Indices: []Affine{Var("i"), Var("j")}},
			{Array: "A", Indices: []Affine{Var("i"), Var("k")}},
			{Array: "B", Indices: []Affine{Var("k"), Var("j")}},
		},
		Flops: 2,
	}
	kl := &Loop{Var: "k", Lo: Con(0), Hi: Con(n), Step: 1, Body: []Node{stmt}}
	jl := &Loop{Var: "j", Lo: Con(0), Hi: Con(n), Step: 1, Body: []Node{kl}}
	il := &Loop{Var: "i", Lo: Con(0), Hi: Con(n), Step: 1, Body: []Node{jl}}
	return &Program{
		Name: "mm",
		Arrays: []Array{
			{Name: "A", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "B", ElemBytes: 8, Dims: []int64{n, n}},
			{Name: "C", ElemBytes: 8, Dims: []int64{n, n}},
		},
		Root: []Node{il},
	}
}

func TestValidateAcceptsMM(t *testing.T) {
	if err := mmProgram(16).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Program { return mmProgram(8) }
	cases := []struct {
		name   string
		mutate func(*Program)
	}{
		{"undeclared array", func(p *Program) {
			s := Stmts(p.Root)[0]
			s.Reads = append(s.Reads, Access{Array: "Z", Indices: []Affine{Con(0), Con(0)}})
		}},
		{"dimension mismatch", func(p *Program) {
			s := Stmts(p.Root)[0]
			s.Reads[0].Indices = s.Reads[0].Indices[:1]
		}},
		{"unbound iterator in access", func(p *Program) {
			s := Stmts(p.Root)[0]
			s.Reads[0] = s.Reads[0].Rename("i", "w")
		}},
		{"non-positive step", func(p *Program) {
			Loops(p.Root)[0].Step = 0
		}},
		{"shadowed loop var", func(p *Program) {
			Loops(p.Root)[2].Var = "i"
		}},
		{"unbound iterator in bound", func(p *Program) {
			Loops(p.Root)[0].Hi = Var("q")
		}},
		{"duplicate array", func(p *Program) {
			p.Arrays = append(p.Arrays, Array{Name: "A", ElemBytes: 8, Dims: []int64{1}})
		}},
		{"bad element size", func(p *Program) { p.Arrays[0].ElemBytes = 0 }},
		{"bad dim", func(p *Program) { p.Arrays[0].Dims[0] = 0 }},
	}
	for _, c := range cases {
		p := base()
		c.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := mmProgram(8)
	c := p.Clone()
	Loops(c.Root)[0].Hi = Con(99)
	Stmts(c.Root)[0].Flops = 42
	if Loops(p.Root)[0].Hi.Const != 8 {
		t.Fatal("clone shares loop bounds with original")
	}
	if Stmts(p.Root)[0].Flops != 2 {
		t.Fatal("clone shares statements with original")
	}
	c.Arrays[0].Dims[0] = 1
	if p.Arrays[0].Dims[0] != 8 {
		t.Fatal("clone shares array dims")
	}
}

func TestPerfectNest(t *testing.T) {
	p := mmProgram(8)
	loops, body := PerfectNest(p.Root[0])
	if len(loops) != 3 {
		t.Fatalf("nest depth = %d, want 3", len(loops))
	}
	if loops[0].Var != "i" || loops[1].Var != "j" || loops[2].Var != "k" {
		t.Fatalf("loop order = %s,%s,%s", loops[0].Var, loops[1].Var, loops[2].Var)
	}
	if len(body) != 1 {
		t.Fatalf("body stmts = %d, want 1", len(body))
	}
}

func TestPerfectNestStopsAtImperfection(t *testing.T) {
	p := mmProgram(8)
	// Insert a statement next to the k loop, making the j body imperfect.
	jl := Loops(p.Root)[1]
	jl.Body = append(jl.Body, &Stmt{Label: "extra"})
	loops, _ := PerfectNest(p.Root[0])
	if len(loops) != 2 {
		t.Fatalf("nest depth = %d, want 2 (stops at imperfect body)", len(loops))
	}
}

func TestTripCount(t *testing.T) {
	l := &Loop{Var: "i", Lo: Con(0), Hi: Con(10), Step: 3}
	if got := l.TripCount(nil); got != 4 {
		t.Fatalf("trip = %d, want 4", got)
	}
	l2 := &Loop{Var: "i", Lo: Con(5), Hi: Con(5), Step: 1}
	if got := l2.TripCount(nil); got != 0 {
		t.Fatalf("empty trip = %d, want 0", got)
	}
	// Bound depending on an outer iterator.
	l3 := &Loop{Var: "j", Lo: Con(0), Hi: Var("i"), Step: 1}
	if got := l3.TripCount(map[string]int64{"i": 7}); got != 7 {
		t.Fatalf("trip = %d, want 7", got)
	}
}

func TestWalkPreOrderAndPruning(t *testing.T) {
	p := mmProgram(8)
	var visited []string
	Walk(p.Root, func(n Node) bool {
		if l, ok := n.(*Loop); ok {
			visited = append(visited, l.Var)
			return l.Var != "j" // prune below j
		}
		visited = append(visited, "stmt")
		return true
	})
	if strings.Join(visited, ",") != "i,j" {
		t.Fatalf("visited = %v", visited)
	}
}

func TestStmtsAndLoops(t *testing.T) {
	p := mmProgram(8)
	if len(Stmts(p.Root)) != 1 {
		t.Fatal("Stmts wrong")
	}
	ls := Loops(p.Root)
	if len(ls) != 3 || ls[0].Var != "i" {
		t.Fatal("Loops wrong")
	}
}

func TestProgramString(t *testing.T) {
	s := mmProgram(4).String()
	for _, want := range []string{"program mm", "double A[4][4];", "for (i = 0; i < 4; i++)", "C[i][j]", "2 flops"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestProgramStringParallelAndStep(t *testing.T) {
	p := mmProgram(4)
	l := Loops(p.Root)[0]
	l.Parallel = true
	l.Step = 2
	s := p.String()
	if !strings.Contains(s, "#pragma omp parallel for") || !strings.Contains(s, "i += 2") {
		t.Errorf("parallel/step rendering missing:\n%s", s)
	}
}

func TestStmtRenameAndSubst(t *testing.T) {
	s := Stmts(mmProgram(4).Root)[0]
	s.RenameIter("i", "ii")
	if s.Writes[0].Indices[0].Coeff("ii") != 1 || s.Writes[0].Indices[0].Coeff("i") != 0 {
		t.Fatalf("rename failed: %v", s.Writes[0])
	}
	s.SubstIter("ii", Term("t", 4).Add(Var("u")))
	if s.Writes[0].Indices[0].Coeff("t") != 4 || s.Writes[0].Indices[0].Coeff("u") != 1 {
		t.Fatalf("subst failed: %v", s.Writes[0])
	}
}

func TestArrayByName(t *testing.T) {
	p := mmProgram(4)
	a, ok := p.ArrayByName("B")
	if !ok || a.Name != "B" {
		t.Fatal("ArrayByName failed")
	}
	if _, ok := p.ArrayByName("Q"); ok {
		t.Fatal("found nonexistent array")
	}
}

// Property: Add is commutative and Eval is linear w.r.t. Add.
func TestAffineAddProperty(t *testing.T) {
	f := func(c1, c2, i1, i2 int32, vi, vj int16) bool {
		a := Term("i", int64(c1)).AddConst(int64(i1))
		b := Term("j", int64(c2)).AddConst(int64(i2))
		env := map[string]int64{"i": int64(vi), "j": int64(vj)}
		ab := a.Add(b)
		ba := b.Add(a)
		return ab.Equal(ba) && ab.Eval(env) == a.Eval(env)+b.Eval(env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Subst then Eval equals Eval with the substituted value.
func TestAffineSubstEvalProperty(t *testing.T) {
	f := func(ci, cj, k int16, vj int16) bool {
		e := Term("i", int64(ci)).Add(Term("j", int64(cj))).AddConst(3)
		repl := Term("j", int64(k)).AddConst(1) // i := k*j + 1
		sub := e.Subst("i", repl)
		env := map[string]int64{"j": int64(vj)}
		envWithI := map[string]int64{"j": int64(vj), "i": repl.Eval(env)}
		return sub.Eval(env) == e.Eval(envWithI)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
