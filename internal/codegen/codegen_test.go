package codegen

import (
	"strings"
	"testing"

	"autotune/internal/driver"
	"autotune/internal/ir"
	"autotune/internal/kernels"
	"autotune/internal/machine"
	"autotune/internal/optimizer"
	"autotune/internal/skeleton"
	"autotune/internal/transform"
)

func balancedBraces(s string) bool {
	depth := 0
	for _, r := range s {
		switch r {
		case '{':
			depth++
		case '}':
			depth--
			if depth < 0 {
				return false
			}
		}
	}
	return depth == 0
}

func TestEmitProgramMM(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	p := mm.IR(64)
	code, err := EmitProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"void kernel(",
		"double (* A)[64]",
		"double (* B)[64]",
		"double (* C)[64]",
		"long i, j, k;",
		"for (i = 0; i < 64; i++)",
		"C[i][j] += A[i][k] * B[k][j];",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("missing %q in:\n%s", want, code)
		}
	}
	if !balancedBraces(code) {
		t.Fatal("unbalanced braces")
	}
}

func TestEmitProgramTiledParallel(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	tiled, err := transform.Sequence(mm.IR(64),
		transform.TileStep([]int64{16, 16, 8}),
		transform.ParallelizeStep(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	code, err := EmitProgram(tiled, Options{FuncName: "mm_tiled"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"void mm_tiled(",
		"#pragma omp parallel for collapse(2) schedule(static)",
		"for (i_t = 0; i_t < 64; i_t += 16)",
		"i < i_t + 16 && i < 64", // min() as chained condition
	} {
		if !strings.Contains(code, want) {
			t.Errorf("missing %q in:\n%s", want, code)
		}
	}
	if !balancedBraces(code) {
		t.Fatal("unbalanced braces")
	}
}

func TestEmitProgramNoOMP(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	tiled, _ := transform.Sequence(mm.IR(32),
		transform.TileStep([]int64{8, 8, 8}), transform.ParallelizeStep(1))
	code, err := EmitProgram(tiled, Options{NoOMP: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(code, "#pragma") {
		t.Error("NoOMP still emitted pragmas")
	}
}

func TestEmitProgramRestrictAndElemType(t *testing.T) {
	mm, _ := kernels.ByName("mm")
	code, err := EmitProgram(mm.IR(16), Options{Restrict: true, ElemType: "float"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "float (* restrict A)[16]") {
		t.Errorf("restrict/elem type missing:\n%s", code)
	}
}

func TestEmitProgramStencilAveraging(t *testing.T) {
	j2, _ := kernels.ByName("jacobi-2d")
	code, err := EmitProgram(j2.IR(32), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Jacobi writes B from 5 reads of A: emitted as scaled sum.
	if !strings.Contains(code, "B[i][j] =") || !strings.Contains(code, "* (1.0 / 5)") {
		t.Errorf("stencil form missing:\n%s", code)
	}
}

func TestEmitProgramAccumulationForm(t *testing.T) {
	nb, _ := kernels.ByName("n-body")
	code, err := EmitProgram(nb.IR(32), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "F[i] +=") {
		t.Errorf("accumulation form missing:\n%s", code)
	}
}

func TestEmitProgramRejectsInvalid(t *testing.T) {
	bad := &ir.Program{Name: "bad", Root: []ir.Node{
		&ir.Stmt{Writes: []ir.Access{{Array: "Z", Indices: []ir.Affine{ir.Con(0)}}}},
	}}
	if _, err := EmitProgram(bad, Options{}); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestEmitUnitFullPipeline(t *testing.T) {
	out, err := driver.TuneKernel("mm", driver.Options{
		Machine:   machine.Westmere(),
		N:         64,
		Optimizer: optimizer.Options{PopSize: 10, Seed: 1, MaxIterations: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the transformed program of each version.
	prog := out.Region.Outline(out.Kernel.IR(64))
	var programs []*ir.Program
	for _, v := range out.Unit.Versions {
		tp, _, err := out.Region.Skeleton.Apply(prog, skeleton.Config(v.Meta.Config))
		if err != nil {
			t.Fatal(err)
		}
		programs = append(programs, tp)
	}
	code, err := EmitUnit(out.Unit, programs, Options{FuncName: "mm"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"multi-versioned unit",
		"void mm_v0(",
		"static const double mm_objectives",
		"static const int mm_threads",
		"void mm_dispatch(int version,",
		"case 0: mm_v0(A, B, C); break;",
		"default: mm_v0(A, B, C); break;",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("missing %q", want)
		}
	}
	// One function per version.
	if got := strings.Count(code, "void mm_v"); got != len(out.Unit.Versions) {
		t.Errorf("emitted %d version functions for %d versions", got, len(out.Unit.Versions))
	}
	if !balancedBraces(code) {
		t.Fatal("unbalanced braces")
	}
}

func TestEmitUnitErrors(t *testing.T) {
	out, err := driver.TuneKernel("mm", driver.Options{
		Machine:   machine.Westmere(),
		N:         32,
		Optimizer: optimizer.Options{PopSize: 8, Seed: 2, MaxIterations: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EmitUnit(out.Unit, nil, Options{}); err == nil {
		t.Fatal("program/version count mismatch accepted")
	}
}

func TestParamNames(t *testing.T) {
	got := paramNames("double (* A)[64], double (* restrict B)[64], int n")
	want := []string{"A", "B", "n"}
	if len(got) != len(want) {
		t.Fatalf("paramNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paramNames = %v, want %v", got, want)
		}
	}
	if len(paramNames("")) != 0 {
		t.Fatal("empty params should yield none")
	}
}
