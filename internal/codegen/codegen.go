// Package codegen lowers MiniIR programs to compilable C/OpenMP source
// code — the concrete output format of the paper's multi-versioning
// backend (§IV: "Insieme supports exchangeable backends generating C
// ... code"). Besides single-program emission it can render a complete
// multi-versioned translation unit: one function per code version, the
// version table with trade-off metadata as static data, and a dispatch
// function mirroring the runtime system's table lookup.
//
// The emitted code is self-contained C99 + OpenMP. It is not compiled
// inside this repository (the module is pure Go), but the generator is
// exercised by tests that check structural properties: balanced
// braces, declared iterators, loop headers matching the IR, pragma
// placement and table contents.
package codegen

import (
	"fmt"
	"strings"

	"autotune/internal/ir"
	"autotune/internal/multiversion"
)

// Options controls the emission.
type Options struct {
	// FuncName is the name of the generated function (default
	// "kernel").
	FuncName string
	// ElemType is the array element type (default "double").
	ElemType string
	// Restrict adds C99 restrict qualifiers to array parameters.
	Restrict bool
	// OMP emits OpenMP pragmas for parallel loops (default true when
	// using EmitProgram; the zero Options value enables it).
	NoOMP bool
}

func (o Options) funcName() string {
	if o.FuncName == "" {
		return "kernel"
	}
	return o.FuncName
}

func (o Options) elemType() string {
	if o.ElemType == "" {
		return "double"
	}
	return o.ElemType
}

// EmitProgram renders one MiniIR program as a C function taking the
// program's arrays as parameters.
func EmitProgram(p *ir.Program, opt Options) (string, error) {
	if err := p.Validate(); err != nil {
		return "", fmt.Errorf("codegen: %w", err)
	}
	var b strings.Builder
	emitSignature(&b, p, opt)
	b.WriteString(" {\n")
	// Declare all iterators up front (C89-friendly, simplifies
	// emission of collapsed loops).
	iters := collectIterators(p.Root)
	if len(iters) > 0 {
		fmt.Fprintf(&b, "  long %s;\n", strings.Join(iters, ", "))
	}
	if err := emitNodes(&b, p, p.Root, 1, opt); err != nil {
		return "", err
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func emitSignature(b *strings.Builder, p *ir.Program, opt Options) {
	fmt.Fprintf(b, "void %s(", opt.funcName())
	for i, a := range p.Arrays {
		if i > 0 {
			b.WriteString(", ")
		}
		q := ""
		if opt.Restrict {
			q = "restrict "
		}
		fmt.Fprintf(b, "%s (* %s%s)", opt.elemType(), q, a.Name)
		for d := 1; d < len(a.Dims); d++ {
			fmt.Fprintf(b, "[%d]", a.Dims[d])
		}
	}
	b.WriteString(")")
}

func collectIterators(ns []ir.Node) []string {
	var out []string
	seen := map[string]bool{}
	ir.Walk(ns, func(n ir.Node) bool {
		if l, ok := n.(*ir.Loop); ok && !seen[l.Var] {
			seen[l.Var] = true
			out = append(out, l.Var)
		}
		return true
	})
	return out
}

func emitNodes(b *strings.Builder, p *ir.Program, ns []ir.Node, depth int, opt Options) error {
	ind := strings.Repeat("  ", depth)
	for _, n := range ns {
		switch x := n.(type) {
		case *ir.Loop:
			if x.Parallel && !opt.NoOMP {
				pragma := "#pragma omp parallel for"
				if x.Collapse > 1 {
					pragma += fmt.Sprintf(" collapse(%d)", x.Collapse)
				}
				pragma += " schedule(static)"
				fmt.Fprintf(b, "%s%s\n", ind, pragma)
			}
			cond, err := loopCondition(x)
			if err != nil {
				return err
			}
			step := fmt.Sprintf("%s += %d", x.Var, x.Step)
			if x.Step == 1 {
				step = x.Var + "++"
			}
			fmt.Fprintf(b, "%sfor (%s = %s; %s; %s) {\n",
				ind, x.Var, cExpr(x.Lo), cond, step)
			if err := emitNodes(b, p, x.Body, depth+1, opt); err != nil {
				return err
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *ir.Stmt:
			if err := emitStmt(b, p, x, ind); err != nil {
				return err
			}
		default:
			return fmt.Errorf("codegen: unknown node %T", n)
		}
	}
	return nil
}

// loopCondition renders `var < min(Hi, Caps...)` as chained
// comparisons (ANDed), avoiding a min() helper.
func loopCondition(l *ir.Loop) (string, error) {
	parts := []string{fmt.Sprintf("%s < %s", l.Var, cExpr(l.Hi))}
	for _, c := range l.Caps {
		parts = append(parts, fmt.Sprintf("%s < %s", l.Var, cExpr(c)))
	}
	return strings.Join(parts, " && "), nil
}

// cExpr renders an affine expression as C.
func cExpr(a ir.Affine) string {
	s := a.String()
	if s == "" {
		return "0"
	}
	return s
}

func cAccess(ac ir.Access) string {
	var b strings.Builder
	b.WriteString(ac.Array)
	for _, ix := range ac.Indices {
		fmt.Fprintf(&b, "[%s]", cExpr(ix))
	}
	return b.String()
}

// emitStmt renders the statement as an update of its first write from
// a combination of its reads. MiniIR statements carry access patterns
// and flop counts, not arithmetic, so the generated expression is a
// canonical sum/product form with the right access set: an
// accumulation when the statement reads its own write target, a plain
// assignment otherwise.
func emitStmt(b *strings.Builder, p *ir.Program, s *ir.Stmt, ind string) error {
	if len(s.Writes) == 0 {
		fmt.Fprintf(b, "%s/* %s */\n", ind, s.Label)
		return nil
	}
	target := s.Writes[0]
	var reads []string
	accumulates := false
	for _, r := range s.Reads {
		if r.Array == target.Array && sameIndices(r, target) {
			accumulates = true
			continue
		}
		reads = append(reads, cAccess(r))
	}
	var rhs string
	switch {
	case len(reads) == 0:
		rhs = "0.0"
	case len(reads) <= 2:
		rhs = strings.Join(reads, " * ")
	default:
		rhs = "(" + strings.Join(reads, " + ") + ")"
		rhs += fmt.Sprintf(" * (1.0 / %d)", len(reads))
	}
	op := "="
	if accumulates {
		op = "+="
	}
	fmt.Fprintf(b, "%s%s %s %s; /* %s */\n", ind, cAccess(target), op, rhs, s.Label)
	return nil
}

func sameIndices(a, b ir.Access) bool {
	if len(a.Indices) != len(b.Indices) {
		return false
	}
	for i := range a.Indices {
		if !a.Indices[i].Equal(b.Indices[i]) {
			return false
		}
	}
	return true
}

// EmitUnit renders a complete multi-versioned C translation unit for a
// tuned region: one function per version (the caller supplies each
// version's transformed program), the static version table with the
// objective metadata, and a dispatcher that selects by version index —
// the compiled analogue of internal/rts.
func EmitUnit(unit *multiversion.Unit, programs []*ir.Program, opt Options) (string, error) {
	if err := unit.Validate(); err != nil {
		return "", err
	}
	if len(programs) != len(unit.Versions) {
		return "", fmt.Errorf("codegen: %d programs for %d versions", len(programs), len(unit.Versions))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "/* multi-versioned unit for region %q — generated by autotune */\n", unit.Region)
	b.WriteString("#include <stddef.h>\n\n")

	base := opt.funcName()
	sigParams := ""
	for i := range programs {
		vopt := opt
		vopt.FuncName = fmt.Sprintf("%s_v%d", base, i)
		code, err := EmitProgram(programs[i], vopt)
		if err != nil {
			return "", fmt.Errorf("codegen: version %d: %w", i, err)
		}
		meta := unit.Versions[i].Meta
		fmt.Fprintf(&b, "/* version %d: tiles=%v threads=%d objectives=%v */\n",
			i, meta.Tiles, meta.Threads, meta.Objectives)
		b.WriteString(code)
		b.WriteString("\n")
		if i == 0 {
			// Capture the parameter list for the dispatcher from the
			// first version (all versions share the region signature).
			// Parameters may contain nested parentheses (array
			// pointers), so scan with depth tracking.
			open := strings.Index(code, "(")
			if open >= 0 {
				depth := 1
				for j := open + 1; j < len(code); j++ {
					switch code[j] {
					case '(':
						depth++
					case ')':
						depth--
						if depth == 0 {
							sigParams = code[open+1 : j]
							j = len(code)
						}
					}
				}
			}
		}
	}

	// The version table: objective metadata as static data.
	m := len(unit.ObjectiveNames)
	fmt.Fprintf(&b, "static const double %s_objectives[%d][%d] = {\n", base, len(unit.Versions), m)
	for _, v := range unit.Versions {
		vals := make([]string, m)
		for c, o := range v.Meta.Objectives {
			vals[c] = fmt.Sprintf("%g", o)
		}
		fmt.Fprintf(&b, "  {%s},\n", strings.Join(vals, ", "))
	}
	b.WriteString("};\n")
	fmt.Fprintf(&b, "static const int %s_threads[%d] = {", base, len(unit.Versions))
	for i, v := range unit.Versions {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v.Meta.Threads)
	}
	b.WriteString("};\n\n")

	// Argument names for forwarding.
	argNames := paramNames(sigParams)
	fmt.Fprintf(&b, "void %s_dispatch(int version, %s) {\n", base, sigParams)
	fmt.Fprintf(&b, "  switch (version) {\n")
	for i := range unit.Versions {
		fmt.Fprintf(&b, "  case %d: %s_v%d(%s); break;\n", i, base, i, strings.Join(argNames, ", "))
	}
	fmt.Fprintf(&b, "  default: %s_v0(%s); break;\n", base, strings.Join(argNames, ", "))
	b.WriteString("  }\n}\n")
	return b.String(), nil
}

// paramNames extracts the identifier of each parameter from a C
// parameter list like "double (* A)[64], double (* B)[64]".
func paramNames(params string) []string {
	var names []string
	for _, p := range strings.Split(params, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		// The name is the identifier right before the first ')' or,
		// without parentheses, the last identifier.
		if i := strings.Index(p, ")"); i >= 0 {
			inner := p[:i]
			if j := strings.LastIndexAny(inner, "* ("); j >= 0 {
				names = append(names, strings.TrimSpace(inner[j+1:]))
				continue
			}
		}
		fields := strings.Fields(p)
		if len(fields) > 0 {
			names = append(names, strings.TrimLeft(fields[len(fields)-1], "*"))
		}
	}
	return names
}
