// Package cachesim provides a trace-driven set-associative cache
// simulator with LRU replacement and multi-level, multi-threaded
// hierarchies in which inner levels are private per thread and outer
// levels may be shared by the threads of one socket — matching the
// machines modeled in internal/machine.
//
// The simulator grounds the analytical performance model
// (internal/perfmodel): tests replay small kernel traces through both
// and check that the analytical cache-fit classification agrees with
// simulated miss rates.
package cachesim

import (
	"errors"
	"fmt"

	"autotune/internal/machine"
)

// Stats accumulates access counts for one cache instance.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns Misses/Accesses (0 for an untouched cache).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	used  uint64 // LRU timestamp
}

// Cache is a single set-associative cache with LRU replacement. Set
// selection uses modulo indexing, so non-power-of-two set counts (e.g.
// the 24-way 30 MB Westmere L3) are supported.
type Cache struct {
	name      string
	lineBits  uint
	nSets     uint64
	assoc     int
	sets      [][]line
	clock     uint64
	stats     Stats
	lineBytes int
}

// NewCache builds a cache of the given total size. size must be
// divisible by lineBytes*assoc and lineBytes must be a power of two.
func NewCache(name string, size int64, lineBytes, assoc int) (*Cache, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d not a power of two", lineBytes)
	}
	if assoc <= 0 {
		return nil, errors.New("cachesim: associativity must be positive")
	}
	nLines := size / int64(lineBytes)
	if nLines <= 0 || nLines%int64(assoc) != 0 {
		return nil, fmt.Errorf("cachesim: size %d not divisible into %d-way sets of %d-byte lines",
			size, assoc, lineBytes)
	}
	nSets := nLines / int64(assoc)
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	c := &Cache{
		name:      name,
		lineBits:  lineBits,
		nSets:     uint64(nSets),
		assoc:     assoc,
		sets:      make([][]line, nSets),
		lineBytes: lineBytes,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, assoc)
	}
	return c, nil
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Stats returns the accumulated access statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

// Access simulates one load/store to addr and reports whether it hit.
// On a miss the line is installed, evicting the LRU way.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	blk := addr >> c.lineBits
	set := c.sets[blk%c.nSets]
	tag := blk // full block id as tag (set bits included; harmless)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].used < set[victim].used {
			victim = i
		}
	}
	c.stats.Misses++
	set[victim] = line{tag: tag, valid: true, used: c.clock}
	return false
}

// LevelStats pairs a level name with its statistics.
type LevelStats struct {
	Name  string
	Stats Stats
}

// Hierarchy simulates the full cache hierarchy of a machine for a
// parallel region: private levels are instantiated per thread, shared
// (per-socket) levels once per socket, with threads mapped to sockets
// by the machine's pinning policy.
type Hierarchy struct {
	mach *machine.Machine
	// perThread[t][l] is the cache instance thread t accesses at
	// level l (shared instances aliased across threads).
	perThread [][]*Cache
	// instances lists every distinct cache for statistics.
	instances []*Cache
	memAcc    uint64
}

// NewHierarchy builds the hierarchy for nThreads threads pinned on m.
func NewHierarchy(m *machine.Machine, nThreads int) (*Hierarchy, error) {
	placement, err := m.Pin(nThreads)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{mach: m, perThread: make([][]*Cache, nThreads)}
	// socketOf[t] under fill-socket-first pinning.
	socketOf := make([]int, 0, nThreads)
	for s, cnt := range placement.ThreadsPerSocket {
		for i := 0; i < cnt; i++ {
			socketOf = append(socketOf, s)
		}
	}
	sharedBySocket := map[string]map[int]*Cache{}
	for t := 0; t < nThreads; t++ {
		var chain []*Cache
		for _, lvl := range m.Caches {
			switch lvl.Scope {
			case machine.PerCore:
				c, err := NewCache(fmt.Sprintf("%s.t%d", lvl.Name, t), lvl.SizeBytes, lvl.LineBytes, lvl.Associativity)
				if err != nil {
					return nil, err
				}
				h.instances = append(h.instances, c)
				chain = append(chain, c)
			case machine.PerSocket:
				sock := socketOf[t]
				if sharedBySocket[lvl.Name] == nil {
					sharedBySocket[lvl.Name] = map[int]*Cache{}
				}
				c := sharedBySocket[lvl.Name][sock]
				if c == nil {
					c, err = NewCache(fmt.Sprintf("%s.s%d", lvl.Name, sock), lvl.SizeBytes, lvl.LineBytes, lvl.Associativity)
					if err != nil {
						return nil, err
					}
					sharedBySocket[lvl.Name][sock] = c
					h.instances = append(h.instances, c)
				}
				chain = append(chain, c)
			case machine.Global:
				if sharedBySocket[lvl.Name] == nil {
					sharedBySocket[lvl.Name] = map[int]*Cache{}
				}
				c := sharedBySocket[lvl.Name][0]
				if c == nil {
					c, err = NewCache(lvl.Name, lvl.SizeBytes, lvl.LineBytes, lvl.Associativity)
					if err != nil {
						return nil, err
					}
					sharedBySocket[lvl.Name][0] = c
					h.instances = append(h.instances, c)
				}
				chain = append(chain, c)
			}
		}
		h.perThread[t] = chain
	}
	return h, nil
}

// Access simulates one access by the given thread. It returns the
// index of the level that hit (0-based), or len(levels) when the
// access went to main memory.
func (h *Hierarchy) Access(thread int, addr uint64) int {
	chain := h.perThread[thread]
	for i, c := range chain {
		if c.Access(addr) {
			return i
		}
	}
	h.memAcc++
	return len(chain)
}

// MemoryAccesses returns the number of accesses that missed every
// level.
func (h *Hierarchy) MemoryAccesses() uint64 { return h.memAcc }

// Levels returns per-instance statistics for all distinct caches.
func (h *Hierarchy) Levels() []LevelStats {
	out := make([]LevelStats, len(h.instances))
	for i, c := range h.instances {
		out[i] = LevelStats{Name: c.name, Stats: c.stats}
	}
	return out
}

// LevelMissRate aggregates the miss rate across all instances whose
// name starts with the given level prefix (e.g. "L1").
func (h *Hierarchy) LevelMissRate(level string) float64 {
	var acc, miss uint64
	for _, c := range h.instances {
		if len(c.name) >= len(level) && c.name[:len(level)] == level {
			acc += c.stats.Accesses
			miss += c.stats.Misses
		}
	}
	if acc == 0 {
		return 0
	}
	return float64(miss) / float64(acc)
}

// Reset clears all caches and counters.
func (h *Hierarchy) Reset() {
	for _, c := range h.instances {
		c.Reset()
	}
	h.memAcc = 0
}
