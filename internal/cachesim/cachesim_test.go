package cachesim

import (
	"testing"

	"autotune/internal/machine"
)

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache("c", 1024, 63, 2); err == nil {
		t.Error("non-power-of-two line size should fail")
	}
	if _, err := NewCache("c", 1024, 64, 0); err == nil {
		t.Error("zero associativity should fail")
	}
	if _, err := NewCache("c", 64*3, 64, 2); err == nil {
		t.Error("size not divisible into sets should fail")
	}
	c, err := NewCache("c", 30<<20, 64, 24)
	if err != nil {
		t.Fatalf("Westmere L3 geometry rejected: %v", err)
	}
	if c.Name() != "c" {
		t.Error("Name wrong")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c, _ := NewCache("L1", 1024, 64, 2) // 8 sets, 2 ways
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(0) {
		t.Error("repeat access should hit")
	}
	if !c.Access(63) {
		t.Error("same-line access should hit")
	}
	if c.Access(64) {
		t.Error("next line should miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", st.MissRate())
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	c, _ := NewCache("L1", 1024, 64, 2) // 8 sets
	// Three blocks mapping to set 0: block ids 0, 8, 16.
	a0, a8, a16 := uint64(0), uint64(8*64), uint64(16*64)
	c.Access(a0)
	c.Access(a8)
	c.Access(a0)  // a0 most recently used
	c.Access(a16) // evicts a8 (LRU)
	if !c.Access(a0) {
		t.Error("a0 should still be resident")
	}
	if c.Access(a8) {
		t.Error("a8 should have been evicted")
	}
}

func TestCacheCapacityWorkingSet(t *testing.T) {
	c, _ := NewCache("L1", 32<<10, 64, 8)
	// Working set half the cache: second pass must hit entirely.
	lines := (32 << 10) / 64 / 2
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * 64))
		}
	}
	st := c.Stats()
	if st.Misses != uint64(lines) {
		t.Fatalf("misses = %d, want %d (cold only)", st.Misses, lines)
	}
}

func TestCacheThrashingWorkingSet(t *testing.T) {
	c, _ := NewCache("L1", 1024, 64, 2)
	// Working set 2x the cache, streamed cyclically: with LRU every
	// access misses after warmup.
	lines := 2 * 1024 / 64
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * 64))
		}
	}
	st := c.Stats()
	if st.MissRate() != 1.0 {
		t.Fatalf("cyclic thrashing miss rate = %v, want 1.0", st.MissRate())
	}
}

func TestCacheReset(t *testing.T) {
	c, _ := NewCache("L1", 1024, 64, 2)
	c.Access(0)
	c.Reset()
	if c.Stats().Accesses != 0 {
		t.Error("stats not cleared")
	}
	if c.Access(0) {
		t.Error("contents not cleared")
	}
}

func TestMissRateEmptyCache(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats should have 0 miss rate")
	}
}

func TestHierarchyPrivateAndShared(t *testing.T) {
	m := machine.Barcelona()     // 4 cores per socket
	h, err := NewHierarchy(m, 8) // 2 sockets
	if err != nil {
		t.Fatal(err)
	}
	// 8 threads × (L1+L2 private) + 2 shared L3 instances.
	want := 8*2 + 2
	if len(h.Levels()) != want {
		t.Fatalf("instances = %d, want %d", len(h.Levels()), want)
	}
}

func TestHierarchySharedL3Visibility(t *testing.T) {
	m := machine.Barcelona()
	h, err := NewHierarchy(m, 2) // both threads on socket 0
	if err != nil {
		t.Fatal(err)
	}
	// Thread 0 loads a line; thread 1's L1/L2 miss but shared L3 hits.
	if lvl := h.Access(0, 4096); lvl != 3 {
		t.Fatalf("cold access level = %d, want 3 (memory)", lvl)
	}
	if lvl := h.Access(1, 4096); lvl != 2 {
		t.Fatalf("cross-thread access level = %d, want 2 (shared L3)", lvl)
	}
	if h.MemoryAccesses() != 1 {
		t.Fatalf("memory accesses = %d, want 1", h.MemoryAccesses())
	}
}

func TestHierarchyCrossSocketNoSharing(t *testing.T) {
	m := machine.Barcelona()
	h, err := NewHierarchy(m, 5) // threads 0-3 socket 0, thread 4 socket 1
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 4096)
	if lvl := h.Access(4, 4096); lvl != 3 {
		t.Fatalf("cross-socket access level = %d, want 3 (memory)", lvl)
	}
}

func TestHierarchyLevelMissRateAndReset(t *testing.T) {
	m := machine.Westmere()
	h, err := NewHierarchy(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Access(0, uint64(i*64))
	}
	if mr := h.LevelMissRate("L1"); mr != 1.0 {
		t.Fatalf("streaming L1 miss rate = %v, want 1.0", mr)
	}
	for i := 0; i < 100; i++ {
		h.Access(0, uint64(i*64))
	}
	if mr := h.LevelMissRate("L1"); mr != 0.5 {
		t.Fatalf("after reuse pass L1 miss rate = %v, want 0.5", mr)
	}
	if h.LevelMissRate("L9") != 0 {
		t.Error("unknown level should report 0")
	}
	h.Reset()
	if h.MemoryAccesses() != 0 || h.LevelMissRate("L1") != 0 {
		t.Error("reset did not clear hierarchy")
	}
}

func TestHierarchyTooManyThreads(t *testing.T) {
	if _, err := NewHierarchy(machine.Barcelona(), 33); err == nil {
		t.Error("expected pin failure for 33 threads on 32 cores")
	}
}
