package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyDir snapshots a directory tree, simulating what a crash at this
// instant would leave on disk.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWALTruncateSweep cuts a shard WAL at every byte offset: each cut
// must open cleanly, recover exactly the complete frames before the
// cut, and stay writable afterwards.
func TestWALTruncateSweep(t *testing.T) {
	opt := small()
	opt.Shards = 1
	opt.MemtableBytes = 1 << 20 // never flush: everything stays in the WAL

	refDir := t.TempDir()
	st := mustOpen(t, refDir, opt)
	const n = 6
	var frameLens []int
	for i := 0; i < n; i++ {
		k, v := key(i), val(i, 0)
		frameLens = append(frameLens, 8+4+len(k)+4+len(v))
		if err := st.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(refDir, "shard-00", walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// A crash never truncates the store's own files, so snapshot the
	// directory instead of closing (Close would flush the memtable).
	ref := t.TempDir()
	copyDir(t, refDir, ref)
	st.Close()

	total := 0
	for _, l := range frameLens {
		total += l
	}
	if total != len(data) {
		t.Fatalf("wal is %d bytes, frames sum to %d", len(data), total)
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		copyDir(t, ref, dir)
		if err := os.Truncate(filepath.Join(dir, "shard-00", walName), int64(cut)); err != nil {
			t.Fatal(err)
		}
		// Complete frames before the cut survive; the torn one is gone.
		wantRecovered := 0
		for sum := 0; wantRecovered < n && sum+frameLens[wantRecovered] <= cut; wantRecovered++ {
			sum += frameLens[wantRecovered]
		}
		st2, err := Open(dir, opt)
		if err != nil {
			t.Fatalf("cut at byte %d/%d: %v", cut, len(data), err)
		}
		for i := 0; i < wantRecovered; i++ {
			v, ok, err := st2.Get(key(i))
			if err != nil || !ok || string(v) != string(val(i, 0)) {
				t.Fatalf("cut at %d: key %d lost (%q %v %v)", cut, i, v, ok, err)
			}
		}
		for i := wantRecovered; i < n; i++ {
			if _, ok, _ := st2.Get(key(i)); ok {
				t.Fatalf("cut at %d: torn key %d resurrected", cut, i)
			}
		}
		// The store stays writable and durable after recovery.
		if err := st2.Put("post-crash", []byte("ok")); err != nil {
			t.Fatalf("cut at %d: post-recovery put: %v", cut, err)
		}
		if err := st2.Close(); err != nil {
			t.Fatalf("cut at %d: close: %v", cut, err)
		}
		st3, err := Open(dir, opt)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if v, ok, _ := st3.Get("post-crash"); !ok || string(v) != "ok" {
			t.Fatalf("cut at %d: post-recovery key lost", cut)
		}
		st3.Close()
	}
}

// TestSegmentTruncateSweep cuts a segment file at every byte offset.
// Segments only reach their final name complete (temp file + fsync +
// rename), so a damaged one cannot be a crash artifact: every cut must
// produce a clean open error naming the segment — never a panic and
// never silent data loss.
func TestSegmentTruncateSweep(t *testing.T) {
	opt := small()
	opt.Shards = 1
	refDir := t.TempDir()
	st := mustOpen(t, refDir, opt)
	for i := 0; i < 20; i++ {
		if err := st.Put(key(i), val(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil { // flushes: one segment, empty WAL
		t.Fatal(err)
	}
	shardDir := filepath.Join(refDir, "shard-00")
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var segPath string
	for _, e := range entries {
		if isSegmentFile(e.Name()) {
			segPath = filepath.Join(shardDir, e.Name())
		}
	}
	if segPath == "" {
		t.Fatal("no segment written")
	}
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(data); cut++ {
		dir := t.TempDir()
		copyDir(t, refDir, dir)
		rel, _ := filepath.Rel(refDir, segPath)
		if err := os.Truncate(filepath.Join(dir, rel), int64(cut)); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(dir, opt)
		if err == nil {
			st2.Close()
			t.Fatalf("cut at byte %d/%d: truncated segment opened without error", cut, len(data))
		}
		if !strings.Contains(err.Error(), "segment") {
			t.Fatalf("cut at %d: error does not name the segment: %v", cut, err)
		}
	}
	// The untouched file still opens.
	st3, err := Open(refDir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if v, ok, _ := st3.Get(key(7)); !ok || string(v) != string(val(7, 0)) {
		t.Fatal("reference store damaged")
	}
}

// TestKillDuringCompactionSweep snapshots the directory at every stage
// of a compaction — mid-merge, after the output's rename but before the
// inputs are deleted, and after the swap — and reopens each snapshot:
// the data must be identical at every kill point (interval containment
// heals the rename/delete window).
func TestKillDuringCompactionSweep(t *testing.T) {
	for _, stage := range []string{"merge-start", "post-rename", "post-swap"} {
		t.Run(stage, func(t *testing.T) {
			opt := small()
			opt.Shards = 1
			opt.NoBackgroundCompaction = true
			snapshot := t.TempDir()
			dir := t.TempDir()
			taken := false
			opt.compactGate = func(s string) {
				if s == stage && !taken {
					taken = true
					copyDir(t, dir, snapshot)
				}
			}
			st := mustOpen(t, dir, opt)
			const n = 150
			for i := 0; i < n; i++ {
				if err := st.Put(key(i), val(i, 0)); err != nil {
					t.Fatal(err)
				}
			}
			// Several segments plus superseding writes: compaction has
			// real dead records to drop.
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i += 2 {
				st.Put(key(i), val(i, 1))
			}
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := st.Compact(); err != nil {
				t.Fatal(err)
			}
			if !taken {
				t.Fatalf("stage %s never reached", stage)
			}
			st.Close()

			check := func(label, d string) {
				t.Helper()
				opt2 := small()
				opt2.Shards = 1
				st2, err := Open(d, opt2)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				defer st2.Close()
				for i := 0; i < n; i++ {
					gen := 0
					if i%2 == 0 {
						gen = 1
					}
					v, ok, err := st2.Get(key(i))
					if err != nil || !ok || string(v) != string(val(i, gen)) {
						t.Fatalf("%s: key %d = %q %v %v", label, i, v, ok, err)
					}
				}
				stats, err := st2.Stats()
				if err != nil {
					t.Fatal(err)
				}
				if stats.LiveKeys != n {
					t.Fatalf("%s: live keys = %d, want %d", label, stats.LiveKeys, n)
				}
			}
			check("kill at "+stage, snapshot)
			check("completed compaction", dir)
		})
	}
}

// TestFlushCrashBeforeWALTruncate simulates a crash after the flushed
// segment reached its final name but before the WAL shrank: replaying
// the stale WAL over the segment is harmless (same values win).
func TestFlushCrashBeforeWALTruncate(t *testing.T) {
	opt := small()
	opt.Shards = 1
	opt.MemtableBytes = 1 << 20
	dir := t.TempDir()
	st := mustOpen(t, dir, opt)
	const n = 25
	for i := 0; i < n; i++ {
		if err := st.Put(key(i), val(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "shard-00", walName)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Resurrect the pre-flush WAL, as if the truncate never hit disk.
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir, opt)
	defer st2.Close()
	stats, err := st2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.LiveKeys != n {
		t.Fatalf("live keys = %d, want %d", stats.LiveKeys, n)
	}
	for i := 0; i < n; i++ {
		if v, ok, _ := st2.Get(key(i)); !ok || string(v) != string(val(i, 0)) {
			t.Fatalf("key %d wrong after WAL resurrection: %q %v", i, v, ok)
		}
	}
}

// TestStaleTempFilesRemoved: a crash mid-segment-write leaves a .tmp
// file; open removes it and proceeds.
func TestStaleTempFilesRemoved(t *testing.T) {
	opt := small()
	opt.Shards = 1
	dir := t.TempDir()
	st := mustOpen(t, dir, opt)
	st.Put("a", []byte("1"))
	st.Close()
	tmp := filepath.Join(dir, "shard-00", segName(99, 99)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial segment junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir, opt)
	defer st2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived open: %v", err)
	}
	if v, ok, _ := st2.Get("a"); !ok || string(v) != "1" {
		t.Fatal("data lost alongside temp cleanup")
	}
}

// TestCompactionDropsDeadAndShrinksDisk: superseded versions disappear
// from disk after Compact.
func TestCompactionDropsDeadAndShrinksDisk(t *testing.T) {
	opt := small()
	opt.Shards = 1
	st := mustOpen(t, t.TempDir(), opt)
	defer st.Close()
	for gen := 0; gen < 6; gen++ {
		for i := 0; i < 40; i++ {
			if err := st.Put(key(i), val(i, gen)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if before.DeadRecords == 0 {
		t.Fatalf("no dead records staged: %+v", before)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.DeadRecords != 0 || after.LiveKeys != 40 || after.Segments != 1 {
		t.Fatalf("compaction left %+v", after)
	}
	if after.DiskBytes >= before.DiskBytes {
		t.Fatalf("disk did not shrink: %d -> %d", before.DiskBytes, after.DiskBytes)
	}
	for i := 0; i < 40; i++ {
		if v, ok, _ := st.Get(key(i)); !ok || string(v) != string(val(i, 5)) {
			t.Fatalf("key %d lost newest gen: %q %v", i, v, ok)
		}
	}
}

// TestBackgroundCompactionBoundsSegments: with auto-compaction on,
// sustained writes keep the per-shard segment count bounded.
func TestBackgroundCompactionBoundsSegments(t *testing.T) {
	opt := small()
	opt.Shards = 1
	opt.CompactFanin = 3
	st := mustOpen(t, t.TempDir(), opt)
	for i := 0; i < 3000; i++ {
		if err := st.Put(fmt.Sprintf("k-%05d", i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil { // waits for background merges
		t.Fatal(err)
	}
}
