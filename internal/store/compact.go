package store

import (
	"fmt"
	"math/bits"
	"path/filepath"
)

// Size-tiered compaction: segments of similar size (same power-of-four
// tier) accumulate as memtables flush; once a contiguous run of the
// recency-ordered segment list shares a tier and reaches the configured
// fan-in, the run is merged into one segment covering the union of the
// inputs' sequence intervals, with superseded versions of a key dropped
// (newest input wins). Only contiguous runs are merged so that recency
// resolution against segments outside the run stays correct.

// tierOf buckets a segment by size: each tier spans 4x the previous.
func tierOf(size int64) int {
	if size < 0 {
		size = 0
	}
	return (bits.Len64(uint64(size)/4096 + 1) + 1) / 2
}

// pickRun finds the first contiguous run of >= fanin same-tier
// segments, oldest first. It returns lo > hi when nothing qualifies.
func pickRun(segs []*segment, fanin int) (lo, hi int) {
	runStart := 0
	for i := 1; i <= len(segs); i++ {
		if i == len(segs) || tierOf(segs[i].size) != tierOf(segs[runStart].size) {
			if i-runStart >= fanin {
				return runStart, i - 1
			}
			runStart = i
		}
	}
	return 1, 0
}

// compactRun merges one run of segments (the whole list when all is
// set). It reports whether a merge happened. The shard's compactMu
// serializes concurrent compactions; readers and writers proceed
// untouched during the merge and only wait for the brief list swap.
func (sh *shard) compactRun(all bool) (bool, error) {
	sh.compactMu.Lock()
	defer sh.compactMu.Unlock()

	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return false, nil
	}
	var lo, hi int
	if all {
		lo, hi = 0, len(sh.segs)-1
		if hi-lo < 1 {
			sh.mu.Unlock()
			return false, nil
		}
	} else {
		lo, hi = pickRun(sh.segs, sh.st.opt.CompactFanin)
		if lo > hi {
			sh.mu.Unlock()
			return false, nil
		}
	}
	inputs := append([]*segment(nil), sh.segs[lo:hi+1]...)
	for _, s := range inputs {
		s.refs++
	}
	sh.mu.Unlock()

	sh.st.gate("merge-start")
	streams := make([]stream, len(inputs))
	var approx int
	for i, s := range inputs {
		streams[i] = s.iter("")
		approx += int(s.count)
	}
	merged := newMergedIterator(streams, "", nil)
	seqMin, seqMax := inputs[0].seqMin, inputs[len(inputs)-1].seqMax
	_, err := writeSegment(sh.dir, seqMin, seqMax, iterSource{merged}, approx, &sh.st.opt)
	if err == nil {
		err = merged.Err()
	}
	if err != nil {
		sh.release(inputs)
		return false, err
	}
	out, err := openSegment(sh.st.fs, filepath.Join(sh.dir, segName(seqMin, seqMax)))
	if err != nil {
		sh.release(inputs)
		return false, err
	}
	sh.st.gate("post-rename")

	// Swap: replace the input run with the merged output in place.
	sh.mu.Lock()
	pos := -1
	for i, s := range sh.segs {
		if s == inputs[0] {
			pos = i
			break
		}
	}
	if sh.closed || pos < 0 {
		// The shard closed under us: abandon the merge. The output
		// supersedes its inputs by interval containment, so leaving it
		// on disk would also be correct, but removing it keeps close
		// deterministic.
		sh.mu.Unlock()
		out.close()
		sh.st.fs.Remove(out.path)
		sh.release(inputs)
		return false, nil
	}
	newSegs := make([]*segment, 0, len(sh.segs)-len(inputs)+1)
	newSegs = append(newSegs, sh.segs[:pos]...)
	newSegs = append(newSegs, out)
	newSegs = append(newSegs, sh.segs[pos+len(inputs):]...)
	sh.segs = newSegs
	for _, s := range inputs {
		s.dead = true
	}
	sh.mu.Unlock()
	sh.release(inputs) // drops our refs; unlinks inputs nobody else holds
	if err := sh.st.fs.SyncDir(sh.dir); err != nil {
		return true, err
	}
	sh.st.gate("post-swap")
	return true, nil
}

// iterSource adapts a merged iterator to the segment writer's source.
type iterSource struct{ it *Iterator }

func (s iterSource) next() (string, []byte, bool, error) {
	if !s.it.Next() {
		return "", nil, false, s.it.Err()
	}
	return s.it.Key(), s.it.Value(), true, nil
}

// maybeCompact runs background compaction until no run qualifies. A
// compaction fault degrades the store to read-only: partial outputs
// are already cleaned up and no input was removed, so reads stay
// correct, but the write path has proven untrustworthy.
func (sh *shard) maybeCompact() {
	for {
		if sh.st.writable() != nil {
			return
		}
		did, err := sh.compactRun(false)
		if err != nil {
			sh.st.noteCompactErr(err)
			sh.st.degrade(fmt.Errorf("shard %d compaction: %w", sh.id, err))
			return
		}
		if !did {
			return
		}
	}
}
