package store

import (
	"os"
	"path/filepath"
	"testing"

	"autotune/internal/chaos"
)

// FuzzWALReplay feeds arbitrary bytes through WAL recovery: replay
// must never panic, must apply only CRC-valid frames, and must leave
// the file truncated to exactly the bytes it applied, so a second
// replay reads an identical prefix (recovery is idempotent).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	var valid []byte
	valid = appendFrame(valid, "key-a", []byte("value-1"))
	valid = appendFrame(valid, "key-b", []byte("value-2"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                        // torn tail
	f.Add(append(append([]byte{}, valid...), 0, 1, 2)) // trailing garbage
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})  // oversized length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mem := map[string][]byte{}
		n, err := replayWAL(chaos.OS{}, path, mem)
		if err != nil {
			return // clean refusal is fine; panics and hangs are not
		}
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("replay consumed %d of %d bytes", n, len(data))
		}
		if got, err := os.ReadFile(path); err != nil || int64(len(got)) != n {
			t.Fatalf("torn tail not truncated: file %d bytes, applied %d (%v)", len(got), n, err)
		}
		mem2 := map[string][]byte{}
		n2, err := replayWAL(chaos.OS{}, path, mem2)
		if err != nil || n2 != n || len(mem2) != len(mem) {
			t.Fatalf("replay not idempotent: %d/%d keys, %d/%d bytes, %v", len(mem2), len(mem), n2, n, err)
		}
	})
}

// FuzzSegmentOpen feeds arbitrary bytes through segment open: a file
// under the final segment name is normally complete (rename protocol),
// but fsck, merge and open must still survive any bytes on disk —
// reject cleanly or serve exactly what validates, never panic or
// over-allocate.
func FuzzSegmentOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	// A real, valid segment as seed: mutations explore its neighborhood.
	dir := f.TempDir()
	opt := small().withDefaults()
	opt.FS = chaos.OS{}
	src := &memSource{mem: map[string][]byte{"a": []byte("1"), "b": []byte("2"), "c": []byte("3")}, keys: []string{"a", "b", "c"}}
	if _, err := writeSegment(dir, 1, 1, src, 3, &opt); err != nil {
		f.Fatal(err)
	}
	seg, err := os.ReadFile(filepath.Join(dir, segName(1, 1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1, 1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := openSegment(chaos.OS{}, path)
		if err != nil {
			return
		}
		defer s.close()
		// The segment opened: every read path must stay panic-free and
		// in-bounds even if interior bytes are damaged.
		for _, k := range []string{"a", "zz", ""} {
			s.get(k)
		}
		it := s.iter("")
		for {
			_, _, ok, err := it.next()
			if !ok || err != nil {
				break
			}
		}
	})
}
