package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// small returns options that exercise flushes and compactions with few
// records: a tiny memtable and index stride.
func small() Options {
	return Options{
		Shards:        4,
		MemtableBytes: 1 << 10,
		IndexInterval: 4,
		CompactFanin:  3,
	}
}

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func key(i int) string          { return fmt.Sprintf("key-%06d", i) }
func val(i, gen int) []byte     { return []byte(fmt.Sprintf("value-%d-gen-%d", i, gen)) }
func putN(t *testing.T, st *Store, n, gen int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := st.Put(key(i), val(i, gen)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPutGetAcrossFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, small())
	const n = 300 // far past the 1 KiB memtable: many flushed segments
	putN(t, st, n, 0)
	for i := 0; i < n; i++ {
		v, ok, err := st.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != string(val(i, 0)) {
			t.Fatalf("Get(%s) = %q, %v", key(i), v, ok)
		}
	}
	if _, ok, err := st.Get("absent"); err != nil || ok {
		t.Fatalf("Get(absent) = %v, %v", ok, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir, small())
	defer st2.Close()
	for i := 0; i < n; i++ {
		v, ok, err := st2.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != string(val(i, 0)) {
			t.Fatalf("after reopen Get(%s) = %q, %v", key(i), v, ok)
		}
	}
}

func TestNewestValueWins(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, small())
	const n = 120
	putN(t, st, n, 0)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	putN(t, st, n, 1) // supersede every key across segment boundaries
	for i := 0; i < n; i++ {
		v, ok, _ := st.Get(key(i))
		if !ok || string(v) != string(val(i, 1)) {
			t.Fatalf("Get(%s) = %q, want gen 1", key(i), v)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadRecords != 0 {
		t.Fatalf("dead records after full compaction: %+v", stats)
	}
	if stats.LiveKeys != n {
		t.Fatalf("live keys = %d, want %d", stats.LiveKeys, n)
	}
	for i := 0; i < n; i++ {
		v, ok, _ := st.Get(key(i))
		if !ok || string(v) != string(val(i, 1)) {
			t.Fatalf("after compact Get(%s) = %q", key(i), v)
		}
	}
	st.Close()
}

func TestShardingByCustomFunc(t *testing.T) {
	dir := t.TempDir()
	opt := small()
	// Everything with prefix "a" goes to one shard, "b" to another.
	opt.ShardBy = func(k string) uint32 {
		if k[0] == 'a' {
			return 0
		}
		return 1
	}
	st := mustOpen(t, dir, opt)
	for i := 0; i < 50; i++ {
		st.Put(fmt.Sprintf("a-%03d", i), []byte("x"))
		st.Put(fmt.Sprintf("b-%03d", i), []byte("y"))
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards[0].LiveKeys != 50 || stats.Shards[1].LiveKeys != 50 {
		t.Fatalf("shard routing wrong: %+v", stats.Shards)
	}
	if stats.Shards[2].LiveKeys != 0 || stats.Shards[3].LiveKeys != 0 {
		t.Fatalf("unexpected keys in unused shards: %+v", stats.Shards)
	}
	// Shard directories exist on disk with their own WAL.
	if _, err := os.Stat(filepath.Join(dir, "shard-00", walName)); err != nil {
		t.Fatal(err)
	}
	st.Close()
}

// TestConcurrentWritersAcrossShards exercises independent shard locks
// under the race detector: concurrent writers on disjoint shards plus
// readers iterating the whole store during in-flight background
// compactions.
func TestConcurrentWritersAcrossShards(t *testing.T) {
	dir := t.TempDir()
	opt := small()
	st := mustOpen(t, dir, opt)
	const writers = 4
	const perWriter = 400
	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-%05d", w, i)
				if err := st.Put(k, []byte(fmt.Sprintf("v%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Readers: point gets and full iterations while writes and
	// background compactions are in flight.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 10; pass++ {
				it := st.Iter("")
				prev := ""
				for it.Next() {
					if it.Key() <= prev {
						errs <- fmt.Errorf("iterator out of order: %q after %q", it.Key(), prev)
						it.Close()
						return
					}
					prev = it.Key()
				}
				if err := it.Err(); err != nil {
					errs <- err
					it.Close()
					return
				}
				it.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir, opt)
	defer st2.Close()
	stats, err := st2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.LiveKeys != writers*perWriter {
		t.Fatalf("live keys = %d, want %d", stats.LiveKeys, writers*perWriter)
	}
}

func TestClosedStoreRejectsUse(t *testing.T) {
	st := mustOpen(t, t.TempDir(), small())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := st.Put("k", []byte("v")); err == nil {
		t.Error("Put on closed store succeeded")
	}
	if _, _, err := st.Get("k"); err == nil {
		t.Error("Get on closed store succeeded")
	}
	if err := st.Sync(); err == nil {
		t.Error("Sync on closed store succeeded")
	}
}

func TestMetaPinsShardCount(t *testing.T) {
	dir := t.TempDir()
	opt := small()
	opt.Shards = 4
	st := mustOpen(t, dir, opt)
	putN(t, st, 40, 0)
	st.Close()
	// Reopen asking for a different shard count: meta.json wins.
	opt2 := small()
	opt2.Shards = 9
	st2 := mustOpen(t, dir, opt2)
	defer st2.Close()
	stats, err := st2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("shard count not pinned by meta: %d", len(stats.Shards))
	}
	if stats.LiveKeys != 40 {
		t.Fatalf("live keys = %d", stats.LiveKeys)
	}
}

func TestSyncAndDirAreReported(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, small())
	defer st.Close()
	if st.Dir() != dir {
		t.Fatalf("Dir() = %q", st.Dir())
	}
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncDirAndCompactErrBookkeeping(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on a missing directory succeeded")
	}
	st := mustOpen(t, t.TempDir(), small())
	defer st.Close()
	first, second := fmt.Errorf("first"), fmt.Errorf("second")
	st.noteCompactErr(first)
	st.noteCompactErr(second) // first error wins
	if err := st.takeCompactErr(); err != first {
		t.Fatalf("takeCompactErr = %v, want first", err)
	}
	if err := st.takeCompactErr(); err != nil {
		t.Fatalf("cleared error resurfaced: %v", err)
	}
}

func TestBloomFiltersSkipAbsentLookups(t *testing.T) {
	dir := t.TempDir()
	opt := small()
	opt.Shards = 1
	st := mustOpen(t, dir, opt)
	defer st.Close()
	const n = 200
	putN(t, st, n, 0)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	// Probe many absent keys: the bloom filters should prove almost
	// all of them absent without touching segment data.
	for i := 0; i < 500; i++ {
		if _, ok, err := st.Get(fmt.Sprintf("absent-%05d", i)); ok || err != nil {
			t.Fatalf("absent key found: %v %v", ok, err)
		}
	}
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ss := stats.Shards[0]
	if ss.BloomFiltered == 0 {
		t.Fatalf("bloom filtered nothing: %+v", ss)
	}
	if fpr := ss.MeasuredFPR(); fpr > 0.1 {
		t.Fatalf("measured FPR %.3f implausibly high (est %.4f)", fpr, ss.BloomFPREstimate)
	}
	if ss.BloomFPREstimate <= 0 || ss.BloomFPREstimate > 0.05 {
		t.Fatalf("estimated FPR out of range: %v", ss.BloomFPREstimate)
	}
}

func TestBloomRoundTrip(t *testing.T) {
	b := newBloom(100, 10, 7)
	for i := 0; i < 100; i++ {
		b.add(hashKey(key(i)))
	}
	raw := b.marshal(nil)
	b2, err := unmarshalBloom(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !b2.test(hashKey(key(i))) {
			t.Fatalf("inserted key %d missing after round trip", i)
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if b2.test(hashKey(fmt.Sprintf("other-%d", i))) {
			fp++
		}
	}
	if fp > 100 {
		t.Fatalf("%d/1000 false positives", fp)
	}
	if _, err := unmarshalBloom(raw[:4]); err == nil {
		t.Fatal("truncated bloom unmarshalled")
	}
}
