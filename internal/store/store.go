package store

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
)

var errClosed = fmt.Errorf("store: store is closed")

// Options tunes an open store. The zero value gets sensible defaults.
type Options struct {
	// Shards is the number of independent shards (default 16). The
	// count is fixed at creation and persisted in meta.json; reopening
	// ignores a different value.
	Shards int
	// ShardBy maps a key to a shard-selection hash; the default hashes
	// the whole key. Callers with structured keys (tunedb) hash only
	// the program-fingerprint component so one program's records stay
	// in one shard. The same function must be supplied on every open.
	ShardBy func(key string) uint32
	// MemtableBytes flushes a shard's memtable to a segment once its
	// in-memory footprint exceeds this many bytes (default 1 MiB).
	MemtableBytes int
	// IndexInterval is the sparse-index stride in records (default 32):
	// a point lookup scans at most this many frames.
	IndexInterval int
	// BloomBitsPerKey and BloomHashes size per-segment bloom filters
	// (defaults 10 and 7: ~1% false positives).
	BloomBitsPerKey int
	BloomHashes     int
	// CompactFanin is the number of contiguous same-tier segments that
	// triggers a background merge (default 4).
	CompactFanin int
	// NoBackgroundCompaction disables the automatic post-flush merge;
	// Compact still works. Benchmarks and deterministic tests use it.
	NoBackgroundCompaction bool

	// compactGate, when set (tests only), is called at named stages of
	// a compaction so crash and concurrency scenarios can be staged.
	compactGate func(stage string)
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.ShardBy == nil {
		o.ShardBy = func(key string) uint32 {
			h := fnv.New32a()
			h.Write([]byte(key))
			return h.Sum32()
		}
	}
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.IndexInterval <= 0 {
		o.IndexInterval = 32
	}
	if o.BloomBitsPerKey <= 0 {
		o.BloomBitsPerKey = 10
	}
	if o.BloomHashes <= 0 {
		o.BloomHashes = 7
	}
	if o.CompactFanin < 2 {
		o.CompactFanin = 4
	}
	return o
}

// meta is the store's persisted identity: schema version and shard
// count, written once at creation.
type meta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const metaName = "meta.json"

// Store is an open storage engine rooted at one directory.
type Store struct {
	dir    string
	opt    Options
	shards []*shard

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	compactErrMu sync.Mutex
	compactErr   error
}

// Open opens (creating if necessary) the store at dir.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	metaPath := filepath.Join(dir, metaName)
	if data, err := os.ReadFile(metaPath); err == nil {
		var m meta
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("store: reading %s: %w", metaName, err)
		}
		if m.Version != 1 {
			return nil, fmt.Errorf("store: unsupported store version %d", m.Version)
		}
		if m.Shards < 1 {
			return nil, fmt.Errorf("store: %s names %d shards", metaName, m.Shards)
		}
		opt.Shards = m.Shards
	} else if os.IsNotExist(err) {
		data, err := json.Marshal(meta{Version: 1, Shards: opt.Shards})
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		tmp := metaPath + tmpSuffix
		if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := os.Rename(tmp, metaPath); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := fsyncDir(dir); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	} else {
		return nil, fmt.Errorf("store: %w", err)
	}
	st := &Store{dir: dir, opt: opt}
	for i := 0; i < opt.Shards; i++ {
		sh, err := openShard(st, i, filepath.Join(dir, fmt.Sprintf("shard-%02d", i)))
		if err != nil {
			for _, prev := range st.shards {
				prev.close()
			}
			return nil, err
		}
		st.shards = append(st.shards, sh)
	}
	return st, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) shardFor(key string) *shard {
	return st.shards[int(st.opt.ShardBy(key))%len(st.shards)]
}

func (st *Store) gate(stage string) {
	if st.opt.compactGate != nil {
		st.opt.compactGate(stage)
	}
}

func (st *Store) noteCompactErr(err error) {
	st.compactErrMu.Lock()
	if st.compactErr == nil {
		st.compactErr = err
	}
	st.compactErrMu.Unlock()
}

// takeCompactErr returns (and clears) the first background-compaction
// error since the last call.
func (st *Store) takeCompactErr() error {
	st.compactErrMu.Lock()
	defer st.compactErrMu.Unlock()
	err := st.compactErr
	st.compactErr = nil
	return err
}

// Put stores value under key, superseding any previous value. The
// write is buffered in the OS (see Sync for durability).
func (st *Store) Put(key string, value []byte) error {
	sh := st.shardFor(key)
	flushed, err := sh.put(key, value)
	if err != nil {
		return err
	}
	if flushed && !st.opt.NoBackgroundCompaction {
		st.scheduleCompact(sh)
	}
	return st.takeCompactErr()
}

func (st *Store) scheduleCompact(sh *shard) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		sh.maybeCompact()
	}()
}

// Get returns the newest value stored under key.
func (st *Store) Get(key string) ([]byte, bool, error) {
	return st.shardFor(key).get(key)
}

// Iter returns an iterator over every key with the given prefix (the
// whole store for ""), in canonical bytewise key order, merged across
// shards. The iterator sees a point-in-time snapshot.
func (st *Store) Iter(prefix string) *Iterator {
	var streams []stream
	type pinned struct {
		sh   *shard
		segs []*segment
	}
	var pins []pinned
	for _, sh := range st.shards {
		memKeys, memVals, segs := sh.snapshot(prefix)
		pins = append(pins, pinned{sh: sh, segs: segs})
		for _, s := range segs {
			streams = append(streams, s.iter(prefix))
		}
		streams = append(streams, &memStream{keys: memKeys, vals: memVals})
	}
	release := func() {
		for _, p := range pins {
			p.sh.release(p.segs)
		}
	}
	return newMergedIterator(streams, prefix, release)
}

// Sync makes every completed Put durable (fsyncs each shard WAL).
func (st *Store) Sync() error {
	for _, sh := range st.shards {
		if err := sh.sync(); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes every shard's memtable to a segment.
func (st *Store) Flush() error {
	st.mu.Lock()
	closed := st.closed
	st.mu.Unlock()
	if closed {
		return errClosed
	}
	for _, sh := range st.shards {
		sh.mu.Lock()
		err := sh.flushLocked()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Compact flushes memtables and merges every shard's segments down to
// one, dropping superseded records. Renames are followed by directory
// fsyncs, so a crash immediately after compaction cannot resurrect
// pre-compaction state.
func (st *Store) Compact() error {
	if err := st.Flush(); err != nil {
		return err
	}
	for _, sh := range st.shards {
		if _, err := sh.compactRun(true); err != nil {
			return err
		}
	}
	return st.takeCompactErr()
}

// Close waits for background compaction, flushes memtables and closes
// every file. The store must not be used afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	st.mu.Unlock()
	st.wg.Wait()
	var err error
	for _, sh := range st.shards {
		if cerr := sh.close(); err == nil {
			err = cerr
		}
	}
	if cerr := st.takeCompactErr(); err == nil {
		err = cerr
	}
	return err
}
