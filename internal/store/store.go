package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"autotune/internal/chaos"
)

var errClosed = fmt.Errorf("store: store is closed")

// ErrReadOnly marks writes rejected because the store (or the target
// shard) has degraded to read-only after an I/O failure. Match with
// errors.Is; the wrapped message names the original fault. A degraded
// store keeps serving reads and can be returned to service by Recover
// (or by a clean reopen) once the underlying fault is gone.
var ErrReadOnly = errors.New("store: read-only")

// Options tunes an open store. The zero value gets sensible defaults.
type Options struct {
	// Shards is the number of independent shards (default 16). The
	// count is fixed at creation and persisted in meta.json; reopening
	// ignores a different value.
	Shards int
	// ShardBy maps a key to a shard-selection hash; the default hashes
	// the whole key. Callers with structured keys (tunedb) hash only
	// the program-fingerprint component so one program's records stay
	// in one shard. The same function must be supplied on every open.
	ShardBy func(key string) uint32
	// MemtableBytes flushes a shard's memtable to a segment once its
	// in-memory footprint exceeds this many bytes (default 1 MiB).
	MemtableBytes int
	// IndexInterval is the sparse-index stride in records (default 32):
	// a point lookup scans at most this many frames.
	IndexInterval int
	// BloomBitsPerKey and BloomHashes size per-segment bloom filters
	// (defaults 10 and 7: ~1% false positives).
	BloomBitsPerKey int
	BloomHashes     int
	// CompactFanin is the number of contiguous same-tier segments that
	// triggers a background merge (default 4).
	CompactFanin int
	// NoBackgroundCompaction disables the automatic post-flush merge;
	// Compact still works. Benchmarks and deterministic tests use it.
	NoBackgroundCompaction bool
	// FS is the filesystem the store runs on (default the real OS).
	// Chaos tests inject a scripted chaos.Injector here; production
	// never sets it.
	FS chaos.FS

	// compactGate, when set (tests only), is called at named stages of
	// a compaction so crash and concurrency scenarios can be staged.
	compactGate func(stage string)
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.ShardBy == nil {
		o.ShardBy = func(key string) uint32 {
			h := fnv.New32a()
			h.Write([]byte(key))
			return h.Sum32()
		}
	}
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.IndexInterval <= 0 {
		o.IndexInterval = 32
	}
	if o.BloomBitsPerKey <= 0 {
		o.BloomBitsPerKey = 10
	}
	if o.BloomHashes <= 0 {
		o.BloomHashes = 7
	}
	if o.CompactFanin < 2 {
		o.CompactFanin = 4
	}
	if o.FS == nil {
		o.FS = chaos.OS{}
	}
	return o
}

// meta is the store's persisted identity: schema version and shard
// count, written once at creation.
type meta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const metaName = "meta.json"

// Store is an open storage engine rooted at one directory.
type Store struct {
	dir    string
	opt    Options
	fs     chaos.FS
	shards []*shard

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// degradedErr, when set, puts the whole store in read-only mode:
	// an I/O failure during a flush or compaction means newly written
	// segments cannot be trusted to land, so writes are refused until
	// Recover clears the fault. Reads keep working throughout.
	degradedMu  sync.Mutex
	degradedErr error

	compactErrMu sync.Mutex
	compactErr   error
}

// Open opens (creating if necessary) the store at dir.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	fs := opt.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	metaPath := filepath.Join(dir, metaName)
	if data, err := fs.ReadFile(metaPath); err == nil {
		var m meta
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("store: reading %s: %w", metaName, err)
		}
		if m.Version != 1 {
			return nil, fmt.Errorf("store: unsupported store version %d", m.Version)
		}
		if m.Shards < 1 {
			return nil, fmt.Errorf("store: %s names %d shards", metaName, m.Shards)
		}
		opt.Shards = m.Shards
	} else if errors.Is(err, os.ErrNotExist) {
		data, err := json.Marshal(meta{Version: 1, Shards: opt.Shards})
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		tmp := metaPath + tmpSuffix
		if err := fs.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := fs.Rename(tmp, metaPath); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := fs.SyncDir(dir); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	} else {
		return nil, fmt.Errorf("store: %w", err)
	}
	st := &Store{dir: dir, opt: opt, fs: fs}
	for i := 0; i < opt.Shards; i++ {
		sh, err := openShard(st, i, filepath.Join(dir, fmt.Sprintf("shard-%02d", i)))
		if err != nil {
			for _, prev := range st.shards {
				prev.close()
			}
			return nil, err
		}
		st.shards = append(st.shards, sh)
	}
	return st, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) shardFor(key string) *shard {
	return st.shards[int(st.opt.ShardBy(key))%len(st.shards)]
}

func (st *Store) gate(stage string) {
	if st.opt.compactGate != nil {
		st.opt.compactGate(stage)
	}
}

// degrade puts the whole store in read-only mode; the first cause
// wins. It is called on flush and compaction failures, where a partial
// segment may have been cleaned up but the shared invariant — every
// acknowledged write is in WAL or segment — still holds, so serving
// reads stays safe while writes must stop.
func (st *Store) degrade(cause error) {
	st.degradedMu.Lock()
	if st.degradedErr == nil {
		st.degradedErr = cause
	}
	st.degradedMu.Unlock()
}

// writable returns nil when store-level writes are admitted.
func (st *Store) writable() error {
	st.degradedMu.Lock()
	defer st.degradedMu.Unlock()
	if st.degradedErr != nil {
		return fmt.Errorf("%w (degraded: %v)", ErrReadOnly, st.degradedErr)
	}
	return nil
}

func (st *Store) noteCompactErr(err error) {
	st.compactErrMu.Lock()
	if st.compactErr == nil {
		st.compactErr = err
	}
	st.compactErrMu.Unlock()
}

// takeCompactErr returns (and clears) the first background-compaction
// error since the last call.
func (st *Store) takeCompactErr() error {
	st.compactErrMu.Lock()
	defer st.compactErrMu.Unlock()
	err := st.compactErr
	st.compactErr = nil
	return err
}

// Put stores value under key, superseding any previous value. The
// write is buffered in the OS (see Sync for durability). An error
// means the write did NOT take effect: the key is not stored and will
// not reappear on reopen. Writes that fail at the disk degrade the
// owning shard (WAL faults) or the whole store (flush faults) to
// read-only; see Health and Recover.
func (st *Store) Put(key string, value []byte) error {
	if err := st.writable(); err != nil {
		return err
	}
	sh := st.shardFor(key)
	flushed, err := sh.put(key, value)
	if err != nil {
		return err
	}
	if flushed && !st.opt.NoBackgroundCompaction {
		st.scheduleCompact(sh)
	}
	return nil
}

func (st *Store) scheduleCompact(sh *shard) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		sh.maybeCompact()
	}()
}

// Get returns the newest value stored under key. Reads keep working on
// degraded (read-only) stores and failed shards.
func (st *Store) Get(key string) ([]byte, bool, error) {
	return st.shardFor(key).get(key)
}

// Iter returns an iterator over every key with the given prefix (the
// whole store for ""), in canonical bytewise key order, merged across
// shards. The iterator sees a point-in-time snapshot.
func (st *Store) Iter(prefix string) *Iterator {
	var streams []stream
	type pinned struct {
		sh   *shard
		segs []*segment
	}
	var pins []pinned
	for _, sh := range st.shards {
		memKeys, memVals, segs := sh.snapshot(prefix)
		pins = append(pins, pinned{sh: sh, segs: segs})
		for _, s := range segs {
			streams = append(streams, s.iter(prefix))
		}
		streams = append(streams, &memStream{keys: memKeys, vals: memVals})
	}
	release := func() {
		for _, p := range pins {
			p.sh.release(p.segs)
		}
	}
	return newMergedIterator(streams, prefix, release)
}

// Sync makes every completed Put durable (fsyncs each shard WAL). A
// failed fsync marks the shard failed/read-only: the kernel may have
// dropped the dirty pages, so retrying the fsync as if it could still
// persist them would silently lose data (the fsyncgate failure mode).
func (st *Store) Sync() error {
	if err := st.writable(); err != nil {
		return err
	}
	for _, sh := range st.shards {
		if err := sh.sync(); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes every shard's memtable to a segment.
func (st *Store) Flush() error {
	st.mu.Lock()
	closed := st.closed
	st.mu.Unlock()
	if closed {
		return errClosed
	}
	if err := st.writable(); err != nil {
		return err
	}
	for _, sh := range st.shards {
		sh.mu.Lock()
		err := sh.flushLocked()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Compact flushes memtables and merges every shard's segments down to
// one, dropping superseded records. Renames are followed by directory
// fsyncs, so a crash immediately after compaction cannot resurrect
// pre-compaction state.
func (st *Store) Compact() error {
	if err := st.Flush(); err != nil {
		return err
	}
	for _, sh := range st.shards {
		if _, err := sh.compactRun(true); err != nil {
			st.degrade(err)
			return err
		}
	}
	return st.takeCompactErr()
}

// Health describes the store's degradation state.
type Health struct {
	// ReadOnly reports whether any write path has failed: the store
	// serves reads but refuses (some or all) writes until Recover or a
	// clean reopen.
	ReadOnly bool `json:"read_only"`
	// Reason is the first fault that caused the degradation.
	Reason string `json:"reason,omitempty"`
	// FailedShards lists shards whose WAL hit an append or fsync
	// fault; writes hashing to them are refused.
	FailedShards []int `json:"failed_shards,omitempty"`
}

// Health reports whether the store is fully writable, degraded
// store-wide (flush/compaction fault) or degraded on specific shards
// (WAL faults). Reads work in every state.
func (st *Store) Health() Health {
	var h Health
	st.degradedMu.Lock()
	if st.degradedErr != nil {
		h.ReadOnly = true
		h.Reason = st.degradedErr.Error()
	}
	st.degradedMu.Unlock()
	for _, sh := range st.shards {
		sh.mu.RLock()
		failed := sh.failErr
		sh.mu.RUnlock()
		if failed != nil {
			h.ReadOnly = true
			h.FailedShards = append(h.FailedShards, sh.id)
			if h.Reason == "" {
				h.Reason = failed.Error()
			}
		}
	}
	return h
}

// Recover attempts to return a degraded store to writable service once
// the underlying fault (a full disk, a flaky device) has cleared. For
// every failed shard the memtable — which holds a superset of the
// suspect WAL's records — is flushed to a fresh fsynced segment and
// the WAL is recreated empty, so no acknowledged write depends on a
// file a failed fsync may not have persisted. Store-level degradation
// then clears and every memtable is flushed to prove the write path
// works. On error the store stays (or returns to) read-only; Recover
// may be retried.
func (st *Store) Recover() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return errClosed
	}
	st.mu.Unlock()
	for _, sh := range st.shards {
		sh.mu.Lock()
		err := sh.recoverLocked()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	st.degradedMu.Lock()
	st.degradedErr = nil
	st.degradedMu.Unlock()
	return st.Flush()
}

// Close waits for background compaction, flushes memtables and closes
// every file. The store must not be used afterwards. Degraded stores
// and failed shards skip the flush — their WAL and segments already
// hold every acknowledged write — so Close never writes through a
// handle a fault made untrustworthy.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	st.mu.Unlock()
	st.wg.Wait()
	var err error
	degraded := st.writable() != nil
	for _, sh := range st.shards {
		if cerr := sh.closeSkippingFlush(degraded); err == nil {
			err = cerr
		}
	}
	if cerr := st.takeCompactErr(); err == nil {
		err = cerr
	}
	return err
}
