package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"autotune/internal/chaos"
)

// Segment file layout:
//
//	magic "TSTSEG01"                                    (8 bytes)
//	data:   CRC frames, keys strictly increasing
//	index:  sparse entries  u32 keyLen | key | u64 off  (every IndexInterval-th record)
//	bloom:  u64 m | u32 k | bits
//	footer: u64 dataEnd | u64 indexOff | u64 bloomOff |
//	        u64 count | u64 seqMin | u64 seqMax |
//	        u32 crc32c(first 48 footer bytes) | magic "TSTFTR01"   (60 bytes)
//
// [seqMin, seqMax] is the interval of write sequence numbers the
// segment covers: a fresh memtable flush covers exactly one sequence,
// a compaction output covers the union of its inputs. Recency order of
// segments is seqMax order, and a segment whose interval is contained
// in another's is superseded by it (the healed half of an interrupted
// compaction).
const (
	segMagic    = "TSTSEG01"
	footerMagic = "TSTFTR01"
	footerSize  = 60
	segSuffix   = ".seg"
	tmpSuffix   = ".tmp"
)

// segment is an open, immutable, sorted segment file.
type segment struct {
	path     string
	f        chaos.File
	size     int64
	dataEnd  int64
	count    uint64
	seqMin   uint64
	seqMax   uint64
	index    []indexEntry
	filter   *bloom
	interval int // index interval the segment was written with

	// refs/dead are guarded by the owning shard's mutex: a segment is
	// closed and unlinked only when marked dead with no refs left.
	refs int
	dead bool
}

type indexEntry struct {
	key string
	off int64
}

// segName names a segment by the sequence interval it covers; the name
// is unique because an interval identifies one merge (or one flush).
func segName(seqMin, seqMax uint64) string {
	return fmt.Sprintf("seg-%016x-%016x%s", seqMin, seqMax, segSuffix)
}

// kvSource streams sorted key/value pairs into a segment writer.
type kvSource interface {
	next() (key string, val []byte, ok bool, err error)
}

// writeSegment streams src (sorted, unique keys) into a new segment
// file at dir/segName(seqMin,seqMax), going through a temp file, fsync
// and rename so the final name only ever holds a complete segment. It
// returns the number of records written.
func writeSegment(dir string, seqMin, seqMax uint64, src kvSource, approxKeys int, opt *Options) (uint64, error) {
	fs := opt.FS
	interval := opt.IndexInterval
	if interval < 1 {
		interval = 1
	}
	final := filepath.Join(dir, segName(seqMin, seqMax))
	tmp := final + tmpSuffix
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	fail := func(err error) (uint64, error) {
		f.Close()
		fs.Remove(tmp)
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	if _, err := w.WriteString(segMagic); err != nil {
		return fail(err)
	}
	filter := newBloom(approxKeys, opt.BloomBitsPerKey, opt.BloomHashes)
	var index []indexEntry
	var count uint64
	off := int64(len(segMagic))
	var frame []byte
	for {
		key, val, ok, err := src.next()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		if count%uint64(interval) == 0 {
			index = append(index, indexEntry{key: key, off: off})
		}
		filter.add(hashKey(key))
		frame = appendFrame(frame[:0], key, val)
		if _, err := w.Write(frame); err != nil {
			return fail(err)
		}
		off += int64(len(frame))
		count++
	}
	dataEnd := off
	indexOff := off
	var ibuf []byte
	for _, e := range index {
		ibuf = binary.LittleEndian.AppendUint32(ibuf[:0], uint32(len(e.key)))
		ibuf = append(ibuf, e.key...)
		ibuf = binary.LittleEndian.AppendUint64(ibuf, uint64(e.off))
		if _, err := w.Write(ibuf); err != nil {
			return fail(err)
		}
		off += int64(len(ibuf))
	}
	bloomOff := off
	bb := filter.marshal(nil)
	if _, err := w.Write(bb); err != nil {
		return fail(err)
	}
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(dataEnd))
	binary.LittleEndian.PutUint64(foot[8:], uint64(indexOff))
	binary.LittleEndian.PutUint64(foot[16:], uint64(bloomOff))
	binary.LittleEndian.PutUint64(foot[24:], count)
	binary.LittleEndian.PutUint64(foot[32:], seqMin)
	binary.LittleEndian.PutUint64(foot[40:], seqMax)
	binary.LittleEndian.PutUint32(foot[48:], crc32.Checksum(foot[:48], crcTable))
	copy(foot[52:], footerMagic)
	if _, err := w.Write(foot[:]); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		fs.Remove(tmp)
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return 0, fmt.Errorf("store: segment: %w", err)
	}
	return count, nil
}

// openSegment validates and opens one segment file, loading its sparse
// index and bloom filter into memory; the data section stays on disk.
func openSegment(fs chaos.FS, path string) (*segment, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s, err := loadSegment(path, f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: segment %s: %w", filepath.Base(path), err)
	}
	return s, nil
}

func loadSegment(path string, f chaos.File) (*segment, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(segMagic))+footerSize {
		return nil, fmt.Errorf("truncated (%d bytes)", size)
	}
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, err
	}
	if string(magic[:]) != segMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], size-footerSize); err != nil {
		return nil, err
	}
	if string(foot[52:60]) != footerMagic {
		return nil, fmt.Errorf("bad footer magic")
	}
	if crc32.Checksum(foot[:48], crcTable) != binary.LittleEndian.Uint32(foot[48:]) {
		return nil, fmt.Errorf("footer CRC mismatch")
	}
	s := &segment{
		path:    path,
		f:       f,
		size:    size,
		dataEnd: int64(binary.LittleEndian.Uint64(foot[0:])),
		count:   binary.LittleEndian.Uint64(foot[24:]),
		seqMin:  binary.LittleEndian.Uint64(foot[32:]),
		seqMax:  binary.LittleEndian.Uint64(foot[40:]),
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[8:]))
	bloomOff := int64(binary.LittleEndian.Uint64(foot[16:]))
	if s.dataEnd < int64(len(segMagic)) || indexOff < s.dataEnd || bloomOff < indexOff || bloomOff > size-footerSize || s.seqMin > s.seqMax {
		return nil, fmt.Errorf("inconsistent footer")
	}
	ibuf := make([]byte, bloomOff-indexOff)
	if _, err := io.ReadFull(io.NewSectionReader(f, indexOff, int64(len(ibuf))), ibuf); err != nil {
		return nil, fmt.Errorf("reading index: %w", err)
	}
	for len(ibuf) > 0 {
		if len(ibuf) < 4 {
			return nil, fmt.Errorf("index entry truncated")
		}
		klen := int(binary.LittleEndian.Uint32(ibuf))
		if klen < 0 || len(ibuf) < 4+klen+8 {
			return nil, fmt.Errorf("index entry truncated")
		}
		key := string(ibuf[4 : 4+klen])
		off := int64(binary.LittleEndian.Uint64(ibuf[4+klen:]))
		if off < int64(len(segMagic)) || off >= s.dataEnd && s.count > 0 {
			return nil, fmt.Errorf("index offset out of range")
		}
		s.index = append(s.index, indexEntry{key: key, off: off})
		ibuf = ibuf[4+klen+8:]
	}
	bb := make([]byte, size-footerSize-bloomOff)
	if _, err := io.ReadFull(io.NewSectionReader(f, bloomOff, int64(len(bb))), bb); err != nil {
		return nil, fmt.Errorf("reading bloom: %w", err)
	}
	s.filter, err = unmarshalBloom(bb)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (s *segment) close() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// get point-looks key up: the sparse index narrows the scan to one
// block of at most the write-time index interval, read with a single
// positioned reader. The caller has already consulted the bloom filter.
func (s *segment) get(key string) ([]byte, bool, error) {
	off, ok := s.seekOffset(key)
	if !ok {
		return nil, false, nil
	}
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, off, s.dataEnd-off), 4096)
	for {
		k, v, _, err := readFrameAt(r)
		if err == io.EOF {
			return nil, false, nil
		}
		if err != nil {
			return nil, false, fmt.Errorf("store: segment %s: %w", filepath.Base(s.path), err)
		}
		if k == key {
			return append([]byte(nil), v...), true, nil
		}
		if k > key {
			return nil, false, nil
		}
	}
}

// seekOffset returns the data offset of the last index entry at or
// before key; ok is false when every key in the segment is > key.
func (s *segment) seekOffset(key string) (int64, bool) {
	if len(s.index) == 0 {
		return 0, false
	}
	// First entry strictly greater than key, then step back one.
	i := sort.Search(len(s.index), func(i int) bool { return s.index[i].key > key })
	if i == 0 {
		if s.index[0].key > key {
			return 0, false
		}
		return s.index[0].off, true
	}
	return s.index[i-1].off, true
}

// iter streams the segment's records with key >= start in order.
func (s *segment) iter(start string) *segIter {
	off := int64(len(segMagic))
	if len(s.index) > 0 {
		if i := sort.Search(len(s.index), func(i int) bool { return s.index[i].key > start }); i > 0 {
			off = s.index[i-1].off
		}
	}
	return &segIter{
		seg:   s,
		r:     bufio.NewReaderSize(io.NewSectionReader(s.f, off, s.dataEnd-off), 1<<16),
		start: start,
	}
}

type segIter struct {
	seg     *segment
	r       *bufio.Reader
	start   string
	started bool
}

func (it *segIter) next() (string, []byte, bool, error) {
	for {
		k, v, _, err := readFrameAt(it.r)
		if err == io.EOF {
			return "", nil, false, nil
		}
		if err != nil {
			return "", nil, false, fmt.Errorf("store: segment %s: %w", filepath.Base(it.seg.path), err)
		}
		if !it.started {
			if k < it.start {
				continue
			}
			it.started = true
		}
		return k, append([]byte(nil), v...), true, nil
	}
}

// isSegmentFile reports whether a directory entry names a segment.
func isSegmentFile(name string) bool {
	return strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, segSuffix)
}
