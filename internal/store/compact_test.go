package store

import (
	"fmt"
	"sync"
	"testing"
)

func TestTierOf(t *testing.T) {
	if tierOf(100) != tierOf(3000) {
		t.Fatal("sub-4KiB sizes should share a tier")
	}
	if tierOf(4096) >= tierOf(4096*16) {
		t.Fatal("tiers must grow with size")
	}
	if tierOf(-1) != tierOf(0) {
		t.Fatal("negative size must not panic or diverge")
	}
}

func TestPickRun(t *testing.T) {
	segs := []*segment{{size: 100}, {size: 200}, {size: 150}, {size: 1 << 20}}
	lo, hi := pickRun(segs, 3)
	if lo != 0 || hi != 2 {
		t.Fatalf("pickRun = [%d,%d], want [0,2]", lo, hi)
	}
	if lo, hi = pickRun(segs, 4); lo <= hi {
		t.Fatalf("pickRun found a run where none qualifies: [%d,%d]", lo, hi)
	}
	if lo, hi = pickRun(nil, 2); lo <= hi {
		t.Fatal("pickRun on empty list found a run")
	}
}

// TestReadersDuringInFlightCompaction holds a compaction open at its
// mid-merge and post-rename stages while concurrent readers point-get
// and range-iterate the same shard under the race detector: readers
// must see complete, correct data at every stage.
func TestReadersDuringInFlightCompaction(t *testing.T) {
	opt := small()
	opt.Shards = 2
	opt.NoBackgroundCompaction = true

	gateHit := make(chan string)
	resume := make(chan struct{})
	opt.compactGate = func(stage string) {
		if stage == "merge-start" || stage == "post-rename" {
			gateHit <- stage
			<-resume
		}
	}
	st := mustOpen(t, t.TempDir(), opt)
	defer st.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := st.Put(key(i), val(i, 0)); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}

	compactDone := make(chan error, 1)
	go func() { compactDone <- st.Compact() }()

	verify := func(stage string) {
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				// Point gets.
				for i := r; i < n; i += 4 {
					v, ok, err := st.Get(key(i))
					if err != nil || !ok || string(v) != string(val(i, 0)) {
						errs <- fmt.Errorf("at %s: Get(%s) = %q %v %v", stage, key(i), v, ok, err)
						return
					}
				}
				// Full iteration.
				it := st.Iter("")
				defer it.Close()
				count := 0
				for it.Next() {
					count++
				}
				if err := it.Err(); err != nil {
					errs <- fmt.Errorf("at %s: iter: %w", stage, err)
					return
				}
				if count != n {
					errs <- fmt.Errorf("at %s: iterated %d keys, want %d", stage, count, n)
				}
			}(r)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	// Compact hits the gates once per compacting shard; readers verify
	// at every pause.
	pending := 1
	for pending > 0 {
		select {
		case stage := <-gateHit:
			verify(stage)
			resume <- struct{}{}
		case err := <-compactDone:
			if err != nil {
				t.Fatal(err)
			}
			pending = 0
		}
	}
	verify("after-compaction")
}
