package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autotune/internal/chaos"
)

// chaosOptions is the sweep configuration: tiny memtables so flushes
// (and their fault windows) happen constantly, and no background
// compaction so each seed's operation sequence is fully deterministic —
// compaction runs through explicit Compact calls inside the sweep.
func chaosOptions(fs chaos.FS) Options {
	opt := small()
	opt.FS = fs
	opt.NoBackgroundCompaction = true
	return opt
}

// runChaosSeed drives one seeded fault schedule end to end and checks
// the sweep invariant: every operation either succeeds or returns a
// clean error, a degraded store recovers once the faults clear, and
// the reopened store holds exactly the successfully acknowledged puts
// (the fault-free shadow model) — nothing lost, nothing resurrected.
func runChaosSeed(t *testing.T, dir string, seed int64) {
	t.Helper()
	inj := chaos.NewInjector(nil, chaos.Schedule(seed, 1+int(seed%4), 80)...)
	st, err := Open(dir, chaosOptions(inj))
	if err != nil {
		// A fault during open (mkdir, meta write, WAL create) is a
		// clean failure; the directory must still open faultlessly.
		inj.Clear()
		st, err = Open(dir, chaosOptions(inj))
		if err != nil {
			t.Fatalf("seed %d: open after clearing faults: %v", seed, err)
		}
	}

	// Shadow model: the puts the store acknowledged. A put that errors
	// must NOT take effect; one that returns nil must survive reopen.
	shadow := map[string]string{}
	const keys = 37 // overwrites guaranteed: ops cycle a small key space
	nops := 120 + int(seed%80)
	for i := 0; i < nops; i++ {
		k := key(i % keys)
		v := fmt.Sprintf("seed-%d-op-%d", seed, i)
		if err := st.Put(k, []byte(v)); err == nil {
			shadow[k] = v
		} else if !errors.Is(err, ErrReadOnly) && !strings.Contains(err.Error(), "store:") {
			t.Fatalf("seed %d: put %d: unclean error %v", seed, i, err)
		}
		switch {
		case i%17 == 16:
			st.Sync() // may fail the shard; tolerated
		case i%43 == 42:
			st.Compact() // may degrade the store; tolerated
		}
		// Reads must stay correct on every degradation path.
		if i%11 == 10 {
			probe := key((i / 3) % keys)
			got, ok, err := st.Get(probe)
			if err != nil {
				t.Fatalf("seed %d: get during faults: %v", seed, err)
			}
			if want, exists := shadow[probe]; exists && (!ok || string(got) != want) {
				t.Fatalf("seed %d: get(%s) = %q, %v; want %q", seed, probe, got, ok, want)
			}
		}
	}

	// Fault cleared (space freed, device back): recovery must return
	// the store to full writable service in-place.
	inj.Clear()
	if err := st.Recover(); err != nil {
		t.Fatalf("seed %d: recover after faults cleared: %v", seed, err)
	}
	if h := st.Health(); h.ReadOnly {
		t.Fatalf("seed %d: still read-only after recover: %+v", seed, h)
	}
	for i := 0; i < keys; i++ {
		k := key(i)
		v := fmt.Sprintf("seed-%d-recovered-%d", seed, i)
		if err := st.Put(k, []byte(v)); err != nil {
			t.Fatalf("seed %d: put after recover: %v", seed, err)
		}
		shadow[k] = v
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("seed %d: sync after recover: %v", seed, err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("seed %d: close after recover: %v", seed, err)
	}

	// Reopen on the real filesystem and compare against the shadow
	// model in both directions.
	st2 := mustOpen(t, dir, small())
	defer st2.Close()
	seen := 0
	it := st2.Iter("")
	for it.Next() {
		want, ok := shadow[it.Key()]
		if !ok {
			t.Fatalf("seed %d: reopened store resurrected %q (never acknowledged)", seed, it.Key())
		}
		if string(it.Value()) != want {
			t.Fatalf("seed %d: reopened %q = %q, want %q", seed, it.Key(), it.Value(), want)
		}
		seen++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("seed %d: reopened iteration: %v", seed, err)
	}
	it.Close()
	if seen != len(shadow) {
		t.Fatalf("seed %d: reopened store holds %d keys, shadow %d", seed, seen, len(shadow))
	}
}

// TestChaosSweepStore runs hundreds of seeded disk-fault schedules
// against the store. Every seed is reproducible: a failure names the
// seed, and re-running with it replays the identical fault script.
func TestChaosSweepStore(t *testing.T) {
	seeds := 240
	if testing.Short() {
		seeds = 40
	}
	root := t.TempDir()
	for seed := 0; seed < seeds; seed++ {
		runChaosSeed(t, filepath.Join(root, fmt.Sprintf("seed-%03d", seed)), int64(seed))
	}
}

// TestFsyncFailureMarksShardFailed pins the fsyncgate rule: a failed
// WAL fsync marks the shard failed/read-only, later syncs do NOT
// silently succeed as if the lost pages had persisted, reads continue,
// and recovery rebuilds the WAL rather than re-trusting it.
func TestFsyncFailureMarksShardFailed(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.NewInjector(nil, chaos.Fault{Op: chaos.OpSync, Path: walName})
	opt := chaosOptions(inj)
	opt.Shards = 1
	opt.MemtableBytes = 1 << 20 // no flushes: everything stays in the WAL
	st := mustOpen(t, dir, opt)

	if err := st.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err == nil {
		t.Fatal("sync with injected fsync fault succeeded")
	}
	h := st.Health()
	if !h.ReadOnly || len(h.FailedShards) != 1 || h.FailedShards[0] != 0 {
		t.Fatalf("health after fsync fault: %+v", h)
	}
	// The fault was one-shot — a bare retry would now "succeed" at the
	// syscall level, which is exactly the fsyncgate trap. The shard
	// must refuse instead.
	if err := st.Sync(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("sync retry on failed shard = %v, want ErrReadOnly", err)
	}
	if err := st.Put("b", []byte("2")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("put on failed shard = %v, want ErrReadOnly", err)
	}
	if v, ok, err := st.Get("a"); err != nil || !ok || string(v) != "1" {
		t.Fatalf("read on failed shard: %q %v %v", v, ok, err)
	}
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ReadOnly || stats.Shards[0].Failed == "" {
		t.Fatalf("stats do not surface the failure: %+v", stats)
	}

	if err := st.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if h := st.Health(); h.ReadOnly {
		t.Fatalf("still read-only after recover: %+v", h)
	}
	if err := st.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir, small())
	defer st2.Close()
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		if v, ok, err := st2.Get(k); err != nil || !ok || string(v) != want {
			t.Fatalf("after recovery reopen, %s = %q %v %v", k, v, ok, err)
		}
	}
}

// TestENOSPCFlushDegradesStore: running out of space while writing a
// segment degrades the whole store to read-only, cleans up the partial
// temp file, keeps serving reads, and loses nothing — the puts that
// were acknowledged are all present after reopen.
func TestENOSPCFlushDegradesStore(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.NewInjector(nil, chaos.Fault{Op: chaos.OpWrite, Path: segSuffix + tmpSuffix, Err: chaos.ENOSPC, TornBytes: 7})
	opt := chaosOptions(inj)
	opt.Shards = 1
	st := mustOpen(t, dir, opt)

	acked := map[string]string{}
	degradedAt := -1
	for i := 0; i < 200; i++ {
		k, v := key(i), fmt.Sprintf("v-%d", i)
		err := st.Put(k, []byte(v))
		if err == nil {
			acked[k] = v
		} else if !errors.Is(err, ErrReadOnly) {
			t.Fatalf("put %d: %v", i, err)
		}
		if st.Health().ReadOnly && degradedAt < 0 {
			degradedAt = i
		}
	}
	if degradedAt < 0 {
		t.Fatal("ENOSPC fault never degraded the store (no flush happened?)")
	}
	h := st.Health()
	if !h.ReadOnly || !strings.Contains(h.Reason, "no space left") {
		t.Fatalf("health: %+v", h)
	}
	// Partial segment artifacts must not linger.
	entries, err := os.ReadDir(filepath.Join(dir, "shard-00"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			t.Fatalf("partial segment artifact left behind: %s", e.Name())
		}
	}
	// Reads keep working while degraded.
	for k, want := range acked {
		if v, ok, err := st.Get(k); err != nil || !ok || string(v) != want {
			t.Fatalf("degraded read %s = %q %v %v", k, v, ok, err)
		}
	}
	st.Close()

	st2 := mustOpen(t, dir, small())
	defer st2.Close()
	for k, want := range acked {
		if v, ok, err := st2.Get(k); err != nil || !ok || string(v) != want {
			t.Fatalf("reopened %s = %q %v %v, want %q", k, v, ok, err, want)
		}
	}
}

// TestInjectorDeterminism: the same seed yields the same fault script,
// so a failing sweep seed reproduces exactly.
func TestInjectorDeterminism(t *testing.T) {
	a := chaos.Schedule(7, 5, 50)
	b := chaos.Schedule(7, 5, 50)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].After != b[i].After || a[i].TornBytes != b[i].TornBytes ||
			fmt.Sprint(a[i].Err) != fmt.Sprint(b[i].Err) {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
