package store

import (
	"fmt"
	"os"
)

const walName = "wal.log"

// replayWAL reads a shard's write-ahead log, applying every complete
// frame in append order to mem (later frames supersede earlier ones)
// and truncating a torn tail in place. WAL frames are length-prefixed
// with no resync marker, so the first damaged frame ends the readable
// prefix — exactly the crash-mid-append shape.
func replayWAL(path string, mem map[string][]byte) (int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: wal: %w", err)
	}
	valid := int64(0)
	rest := data
	for len(rest) > 0 {
		key, val, n, err := parseFrame(rest)
		if err != nil {
			break
		}
		mem[key] = val
		valid += int64(n)
		rest = rest[n:]
	}
	if valid < int64(len(data)) {
		if err := os.Truncate(path, valid); err != nil {
			return 0, fmt.Errorf("store: wal: truncating torn tail: %w", err)
		}
	}
	return valid, nil
}

// openWALAppend opens the shard WAL for appending.
func openWALAppend(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	return f, nil
}
