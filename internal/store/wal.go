package store

import (
	"errors"
	"fmt"
	"os"

	"autotune/internal/chaos"
)

const walName = "wal.log"

// replayWAL reads a shard's write-ahead log, applying every complete
// frame in append order to mem (later frames supersede earlier ones)
// and truncating a torn tail in place. WAL frames are length-prefixed
// with no resync marker, so the first damaged frame ends the readable
// prefix — exactly the crash-mid-append shape.
func replayWAL(fs chaos.FS, path string, mem map[string][]byte) (int64, error) {
	data, err := fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: wal: %w", err)
	}
	valid := int64(0)
	rest := data
	for len(rest) > 0 {
		key, val, n, err := parseFrame(rest)
		if err != nil {
			break
		}
		mem[key] = val
		valid += int64(n)
		rest = rest[n:]
	}
	if valid < int64(len(data)) {
		if err := fs.Truncate(path, valid); err != nil {
			return 0, fmt.Errorf("store: wal: truncating torn tail: %w", err)
		}
	}
	return valid, nil
}

// openWALAppend opens the shard WAL for appending.
func openWALAppend(fs chaos.FS, path string) (chaos.File, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	return f, nil
}

// recreateWAL replaces the WAL with a fresh empty file, used when the
// existing one cannot be trusted (a torn append or failed fsync): the
// truncation is itself fsynced so the discarded bytes cannot
// resurrect.
func recreateWAL(fs chaos.FS, path string) (chaos.File, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	return f, nil
}
