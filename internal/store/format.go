// Package store is an embedded LSM-style storage engine: string keys
// map to byte values inside sharded logs. Each shard owns a write-ahead
// log and an in-memory memtable; when the memtable fills it is flushed
// to an immutable, sorted, CRC-framed segment file with a per-segment
// bloom filter and a sparse key index, so point lookups touch only
// probable segments and read only one small block. Size-tiered
// background compaction merges runs of similar-sized segments, dropping
// superseded versions of a key. Shard assignment is pluggable
// (tunedb shards by program fingerprint), writers on different shards
// never contend, and Iter merges every shard back into one range scan
// in canonical (bytewise) key order.
//
// Crash safety follows the journal playbook of internal/tunedb: WAL
// appends are CRC-framed so a torn tail is detected and truncated;
// segments are written to a temp file, fsynced, renamed into place and
// the directory fsynced, so a segment under its final name is always
// complete; compaction output records the sequence interval of its
// inputs, so a crash between the output rename and the input deletion
// is healed at open by dropping any segment whose interval another
// segment contains.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"autotune/internal/chaos"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxFrame bounds a single frame's payload; anything larger in a file
// is treated as corruption rather than attempted as an allocation.
const maxFrame = 1 << 28

// errTorn marks a frame that is incomplete or CRC-invalid — the
// signature of a crash mid-append when found at the tail of a log.
var errTorn = fmt.Errorf("store: torn frame")

// appendFrame appends one CRC-framed key/value record to buf:
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//	payload = u32 keyLen | key | u32 valLen | value
func appendFrame(buf []byte, key string, val []byte) []byte {
	payloadLen := 4 + len(key) + 4 + len(val)
	start := len(buf)
	buf = append(buf, make([]byte, 8+payloadLen)...)
	p := buf[start:]
	binary.LittleEndian.PutUint32(p[0:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(p[8:], uint32(len(key)))
	copy(p[12:], key)
	binary.LittleEndian.PutUint32(p[12+len(key):], uint32(len(val)))
	copy(p[16+len(key):], val)
	binary.LittleEndian.PutUint32(p[4:], crc32.Checksum(p[8:], crcTable))
	return buf
}

// parseFrame decodes the frame at the start of data, returning the key,
// value and total frame length. A short, oversized or CRC-mismatched
// frame returns errTorn.
func parseFrame(data []byte) (key string, val []byte, frameLen int, err error) {
	if len(data) < 8 {
		return "", nil, 0, errTorn
	}
	payloadLen := int(binary.LittleEndian.Uint32(data))
	if payloadLen < 8 || payloadLen > maxFrame || len(data) < 8+payloadLen {
		return "", nil, 0, errTorn
	}
	payload := data[8 : 8+payloadLen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[4:]) {
		return "", nil, 0, errTorn
	}
	klen := int(binary.LittleEndian.Uint32(payload))
	if klen < 0 || 4+klen+4 > payloadLen {
		return "", nil, 0, errTorn
	}
	vlen := int(binary.LittleEndian.Uint32(payload[4+klen:]))
	if vlen < 0 || 4+klen+4+vlen != payloadLen {
		return "", nil, 0, errTorn
	}
	key = string(payload[4 : 4+klen])
	val = append([]byte(nil), payload[8+klen:8+klen+vlen]...)
	return key, val, 8 + payloadLen, nil
}

// readFrameAt decodes one frame from r at the current position. It
// returns io.EOF cleanly at end of stream and errTorn on a damaged
// frame.
func readFrameAt(r io.Reader) (key string, val []byte, frameLen int, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return "", nil, 0, io.EOF
		}
		return "", nil, 0, errTorn
	}
	payloadLen := int(binary.LittleEndian.Uint32(hdr[:]))
	if payloadLen < 8 || payloadLen > maxFrame {
		return "", nil, 0, errTorn
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return "", nil, 0, errTorn
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:]) {
		return "", nil, 0, errTorn
	}
	klen := int(binary.LittleEndian.Uint32(payload))
	if klen < 0 || 4+klen+4 > payloadLen {
		return "", nil, 0, errTorn
	}
	vlen := int(binary.LittleEndian.Uint32(payload[4+klen:]))
	if vlen < 0 || 4+klen+4+vlen != payloadLen {
		return "", nil, 0, errTorn
	}
	return string(payload[4 : 4+klen]), payload[8+klen : 8+klen+vlen], 8 + payloadLen, nil
}

// SyncDir flushes directory metadata so a just-renamed file cannot be
// lost (or a just-removed one resurrected) by a crash. Exported for
// callers performing their own atomic rename protocols around a store
// (tunedb's v1 migration renames a whole store directory into place).
func SyncDir(dir string) error { return chaos.OS{}.SyncDir(dir) }
